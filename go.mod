module hermit

go 1.24.0
