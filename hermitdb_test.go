package hermitdb_test

import (
	"math/rand"
	"testing"

	hermitdb "hermit"
	"hermit/internal/storage"
)

// TestFacadeEndToEnd exercises the README quick-start path through the
// public API only.
func TestFacadeEndToEnd(t *testing.T) {
	db := hermitdb.NewDB(hermitdb.PhysicalPointers)
	tb, err := db.CreateTable("stocks", []string{"day", "low", "high"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	price := 100.0
	for day := 0; day < 10000; day++ {
		price *= 1 + rng.NormFloat64()*0.02
		low := price
		high := low * (1 + rng.Float64()*0.02)
		if _, err := tb.Insert([]float64{float64(day), low, high}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.CreateBTreeIndex(1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateHermitIndex(2, 1, hermitdb.WithParams(hermitdb.DefaultParams())); err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn(2) != hermitdb.KindHermit {
		t.Fatalf("kind=%v", tb.IndexOn(2))
	}
	lo, hi, _ := tb.Store().ColumnBounds(2)
	rids, st, err := tb.RangeQuery(2, lo, (lo+hi)/2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != len(rids) || st.Rows == 0 {
		t.Fatalf("rows=%d rids=%d", st.Rows, len(rids))
	}
	m := tb.Memory()
	if m.NewBytes == 0 || m.NewBytes > m.ExistingBytes {
		t.Fatalf("hermit index not succinct: %+v", m)
	}
}

// TestFacadeAutoIndex exercises CreateIndexAuto through the facade.
func TestFacadeAutoIndex(t *testing.T) {
	db := hermitdb.NewDB(hermitdb.LogicalPointers)
	spec := hermitdb.SyntheticSpec{Rows: 5000, Fn: hermitdb.Sigmoid, Noise: 0.02, Seed: 1}
	tb, err := db.CreateTable("syn", spec.Columns(), spec.PKCol())
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := tb.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	kind, err := tb.CreateIndexAuto(spec.TargetCol(), hermitdb.DefaultDiscovery())
	if err != nil {
		t.Fatal(err)
	}
	if kind != hermitdb.KindHermit {
		t.Fatalf("auto index built %v, want hermit", kind)
	}
	q := hermitdb.QueryGen(0, 1000, 0.05, 2)()
	rids, _, err := tb.RangeQuery(spec.TargetCol(), q.Lo, q.Hi)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	err = tb.Store().ScanColumn(spec.TargetCol(), func(_ storage.RID, v float64) bool {
		if v >= q.Lo && v <= q.Hi {
			want++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != want {
		t.Fatalf("auto hermit returned %d rows, want %d", len(rids), want)
	}
}
