package hermitdb_test

import (
	"math/rand"
	"testing"

	hermitdb "hermit"
	"hermit/internal/storage"
)

// TestFacadeEndToEnd exercises the README quick-start path through the
// public API only.
func TestFacadeEndToEnd(t *testing.T) {
	db := hermitdb.NewDB(hermitdb.PhysicalPointers)
	tb, err := db.CreateTable("stocks", []string{"day", "low", "high"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	price := 100.0
	for day := 0; day < 10000; day++ {
		price *= 1 + rng.NormFloat64()*0.02
		low := price
		high := low * (1 + rng.Float64()*0.02)
		if _, err := tb.Insert([]float64{float64(day), low, high}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.CreateBTreeIndex(1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateHermitIndex(2, 1, hermitdb.WithParams(hermitdb.DefaultParams())); err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn(2) != hermitdb.KindHermit {
		t.Fatalf("kind=%v", tb.IndexOn(2))
	}
	lo, hi, _ := tb.Store().ColumnBounds(2)
	rids, st, err := tb.RangeQuery(2, lo, (lo+hi)/2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != len(rids) || st.Rows == 0 {
		t.Fatalf("rows=%d rids=%d", st.Rows, len(rids))
	}
	m := tb.Memory()
	if m.NewBytes == 0 || m.NewBytes > m.ExistingBytes {
		t.Fatalf("hermit index not succinct: %+v", m)
	}
}

// TestFacadeAutoIndex exercises CreateIndexAuto through the facade.
func TestFacadeAutoIndex(t *testing.T) {
	db := hermitdb.NewDB(hermitdb.LogicalPointers)
	spec := hermitdb.SyntheticSpec{Rows: 5000, Fn: hermitdb.Sigmoid, Noise: 0.02, Seed: 1}
	tb, err := db.CreateTable("syn", spec.Columns(), spec.PKCol())
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := tb.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	kind, err := tb.CreateIndexAuto(spec.TargetCol(), hermitdb.DefaultDiscovery())
	if err != nil {
		t.Fatal(err)
	}
	if kind != hermitdb.KindHermit {
		t.Fatalf("auto index built %v, want hermit", kind)
	}
	q := hermitdb.QueryGen(0, 1000, 0.05, 2)()
	rids, _, err := tb.RangeQuery(spec.TargetCol(), q.Lo, q.Hi)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	err = tb.Store().ScanColumn(spec.TargetCol(), func(_ storage.RID, v float64) bool {
		if v >= q.Lo && v <= q.Hi {
			want++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != want {
		t.Fatalf("auto hermit returned %d rows, want %d", len(rids), want)
	}
}

// TestPartitionedFacade exercises the README partitioned-table path
// through the public API only: creation, routed and scattered queries,
// Explain's fan-out, and the durable round trip.
func TestPartitionedFacade(t *testing.T) {
	spec := hermitdb.SyntheticSpec{Rows: 2000, Fn: hermitdb.Linear, Noise: 0.01, Seed: 4}
	pt, err := hermitdb.CreatePartitionedTable(hermitdb.PhysicalPointers,
		"syn", spec.Columns(), spec.PKCol(),
		hermitdb.PartitionOptions{Partitions: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := pt.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateHermitIndex(spec.TargetCol(), spec.HostCol(), hermitdb.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	rids, stats, err := pt.RangeQuery(spec.TargetCol(), 100, 120)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FanOut != 4 || stats.Routed {
		t.Fatalf("range stats: %+v, want 4-way scatter", stats)
	}
	if len(rids) == 0 {
		t.Fatal("range query returned no rows")
	}
	if _, st, err := pt.PointQuery(spec.PKCol(), 7); err != nil || !st.Routed {
		t.Fatalf("pk point query: routed=%v err=%v", st.Routed, err)
	}
	plan, err := pt.Explain(spec.TargetCol(), 100, 120)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FanOut != 4 || len(plan.PerPartition) != 4 {
		t.Fatalf("Explain fan-out: %+v", plan)
	}

	dir := t.TempDir()
	d, err := hermitdb.OpenDurable(dir, hermitdb.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := hermitdb.CreatePartitionedDurable(d, "orders",
		[]string{"id", "qty"}, 0, hermitdb.PartitionOptions{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := dt.Insert([]float64{float64(i), float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := hermitdb.OpenDurable(dir, hermitdb.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	dt2, err := hermitdb.OpenPartitionedDurable(d2, "orders", hermitdb.PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dt2.Len() != 100 {
		t.Fatalf("recovered %d rows, want 100", dt2.Len())
	}
	if rids, _, err := dt2.PointQuery(0, 42); err != nil || len(rids) != 1 {
		t.Fatalf("recovered pk lookup: %v, %v", rids, err)
	}
}
