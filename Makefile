# Make targets mirror the CI jobs (.github/workflows/ci.yml) exactly, so a
# local `make ci` reproduces what the gate runs.

GO ?= go

.PHONY: build build-examples test race bench bench-concurrency bench-durability bench-advisor fmt fmt-check vet doc-check ci

build:
	$(GO) build ./...

# Examples are package main and never imported, so build them explicitly:
# this is what keeps them from rotting against API changes.
build-examples:
	$(GO) build ./examples/...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: one figure at tiny scale proves the harness end-to-end.
bench: build
	$(GO) run ./cmd/hermit-bench -exp fig4 -scale 0.005 -json ''

# Concurrency sweep with the machine-readable BENCH_concurrency.json.
bench-concurrency: build
	$(GO) run ./cmd/hermit-bench -exp concurrency

# Durability sweep (sync policies + recovery) with BENCH_durability.json.
bench-durability: build
	$(GO) run ./cmd/hermit-bench -exp durability

# Advisor sweep (auto-indexing latency before/after, convergence time) with
# BENCH_advisor.json.
bench-advisor: build
	$(GO) run ./cmd/hermit-bench -exp advisor

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Godoc lint: every exported identifier in the public API and the engine
# must carry a doc comment.
doc-check:
	$(GO) run ./internal/tools/doccheck . ./internal/engine ./internal/advisor

ci: fmt-check vet doc-check test build-examples bench
