# Make targets mirror the CI jobs (.github/workflows/ci.yml) exactly, so a
# local `make ci` reproduces what the gate runs.

GO ?= go

# COVER_FLOOR is the minimum total statement coverage `make cover` accepts,
# in percent. Recorded at 78.0 when the floor was introduced (measured
# total: 80.6%); raise it when coverage rises, never lower it to make a
# regression pass.
COVER_FLOOR = 78.0

# STATICCHECK_VERSION pins the staticcheck release CI installs; bump it
# deliberately (new releases add checks, which can fail the gate).
STATICCHECK_VERSION = 2025.1.1

# BENCH_EXPERIMENTS is every experiment whose BENCH_*.json artifact CI
# records; bench-all runs them in one invocation after the fig4 smoke.
BENCH_EXPERIMENTS = concurrency,durability,compaction,advisor,partition,txn,server,repl,scenarios,hotpath

# PROFILE_DIR receives the pb.gz profiles `make profile` captures; CI
# uploads it as the profiles artifact.
PROFILE_DIR = profiles

# Propagate a `make bench-all GOMAXPROCS=4` override into the spawned
# bench processes (make variables are not exported to children by
# default). The multi-core CI lane relies on this.
ifdef GOMAXPROCS
export GOMAXPROCS
endif

.PHONY: build build-examples test race cover difftest bench bench-all bench-check bench-concurrency bench-durability bench-compaction bench-advisor bench-partition bench-txn bench-server bench-repl bench-scenarios bench-hotpath profile fmt fmt-check vet staticcheck doc-check ci

build:
	$(GO) build ./...

# Examples are package main and never imported, so build them explicitly:
# this is what keeps them from rotting against API changes.
build-examples:
	$(GO) build ./examples/...

test: build
	$(GO) test ./...

# The differential harness is excluded here: the `difftest` target runs it
# under -race at 5x the depth, so including it would only duplicate the
# slowest job's wall clock.
race:
	$(GO) test -race $$($(GO) list ./... | grep -v hermit/internal/difftest)

# Coverage floor: run the full suite with -coverprofile and fail if total
# statement coverage drops below COVER_FLOOR. The profile is a temp file
# and is removed whether the gate passes or fails.
cover:
	@rm -f coverage.out
	@$(GO) test -coverprofile=coverage.out ./... || { rm -f coverage.out; exit 1; }
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	rm -f coverage.out; \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Differential fuzz harness at CI depth: every configuration x seed runs a
# 10k-operation stream against the map-model oracle, under the race
# detector.
difftest:
	$(GO) test -race -run TestDifferential ./internal/difftest -difftest.ops 10000

# Bench smoke: one figure at tiny scale proves the harness end-to-end.
bench: build
	$(GO) run ./cmd/hermit-bench -exp fig4 -scale 0.005 -json ''

# The full artifact-producing suite in one invocation: the fig4 smoke,
# then every experiment in BENCH_EXPERIMENTS (each writes its
# BENCH_<id>.json to the repo root). This is what CI runs and uploads.
bench-all: bench
	$(GO) run ./cmd/hermit-bench -exp $(BENCH_EXPERIMENTS)

# Validate the emitted BENCH_*.json artifacts (header fields: experiment,
# seed, num_cpu, gomaxprocs). BENCH_CHECK_FLAGS lets the multi-core CI
# lane pin -expect-gomaxprocs.
bench-check:
	$(GO) run ./internal/tools/benchcheck $(BENCH_CHECK_FLAGS)

# Concurrency sweep with the machine-readable BENCH_concurrency.json.
bench-concurrency: build
	$(GO) run ./cmd/hermit-bench -exp concurrency

# Durability sweep (sync policies + recovery) with BENCH_durability.json.
bench-durability: build
	$(GO) run ./cmd/hermit-bench -exp durability

# Block-storage sweep (checkpoint pause vs table size, steady-state write
# amplification, bloom-gated cold reads) with BENCH_compaction.json.
bench-compaction: build
	$(GO) run ./cmd/hermit-bench -exp compaction

# Advisor sweep (auto-indexing latency before/after, convergence time) with
# BENCH_advisor.json.
bench-advisor: build
	$(GO) run ./cmd/hermit-bench -exp advisor

# Partition sweep (scatter-gather throughput vs partitions x goroutines,
# pk point overhead) with BENCH_partition.json.
bench-partition: build
	$(GO) run ./cmd/hermit-bench -exp partition

# Txn sweep (snapshot scans under writers, optimistic abort rate, snapshot
# registration overhead) with BENCH_txn.json.
bench-txn: build
	$(GO) run ./cmd/hermit-bench -exp txn

# Serving-tier sweep (loopback throughput/latency vs clients x mode x
# workload) with BENCH_server.json.
bench-server: build
	$(GO) run ./cmd/hermit-bench -exp server

# Replication sweep (follower read scaling, lag vs write rate, catch-up
# time) with BENCH_repl.json.
bench-repl: build
	$(GO) run ./cmd/hermit-bench -exp repl

# Trace-driven scenario replays (per-phase p50/p99/p999 and determinism
# hashes for every canned spec) with BENCH_scenarios.json.
bench-scenarios: build
	$(GO) run ./cmd/hermit-bench -exp scenarios

# Hot-path allocation/latency sweep (allocs/op, ns/op, throughput at
# GOMAXPROCS 1 vs 4 for the five hottest operations) with
# BENCH_hotpath.json.
bench-hotpath: build
	$(GO) run ./cmd/hermit-bench -exp hotpath

# Capture labeled CPU + allocation profiles (pb.gz) from the zipf-oltp and
# timeseries scenario replays. Inspect with `go tool pprof
# $(PROFILE_DIR)/cpu_zipf-oltp.pb.gz`; CI uploads the directory.
profile: build
	@mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/hermit-bench -scenario zipf-oltp -json '' \
		-cpuprofile $(PROFILE_DIR)/cpu_zipf-oltp.pb.gz \
		-memprofile $(PROFILE_DIR)/mem_zipf-oltp.pb.gz
	$(GO) run ./cmd/hermit-bench -scenario timeseries -json '' \
		-cpuprofile $(PROFILE_DIR)/cpu_timeseries.pb.gz \
		-memprofile $(PROFILE_DIR)/mem_timeseries.pb.gz
	$(GO) run ./cmd/hermit-bench -exp hotpath -json '' \
		-cpuprofile $(PROFILE_DIR)/cpu_hotpath.pb.gz \
		-memprofile $(PROFILE_DIR)/mem_hotpath.pb.gz
	@ls -l $(PROFILE_DIR)

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The check set lives in staticcheck.conf (the
# allowlist for accepted findings). Skips with a notice when the binary is
# not installed locally — CI installs the pinned $(STATICCHECK_VERSION).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION):" \
		     "go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Godoc lint: every exported identifier in the public API and the engine
# must carry a doc comment.
doc-check:
	$(GO) run ./internal/tools/doccheck . ./internal/engine ./internal/block ./internal/advisor ./internal/partition ./internal/difftest ./internal/server ./internal/server/proto ./internal/client ./internal/repl ./internal/scenario

ci: fmt-check vet staticcheck doc-check cover build-examples bench-all bench-check difftest
