# Make targets mirror the CI jobs (.github/workflows/ci.yml) exactly, so a
# local `make ci` reproduces what the gate runs.

GO ?= go

.PHONY: build test race bench bench-concurrency bench-durability fmt fmt-check vet ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: one figure at tiny scale proves the harness end-to-end.
bench: build
	$(GO) run ./cmd/hermit-bench -exp fig4 -scale 0.005 -json ''

# Concurrency sweep with the machine-readable BENCH_concurrency.json.
bench-concurrency: build
	$(GO) run ./cmd/hermit-bench -exp concurrency

# Durability sweep (sync policies + recovery) with BENCH_durability.json.
bench-durability: build
	$(GO) run ./cmd/hermit-bench -exp durability

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet test bench
