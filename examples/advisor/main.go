// Advisor: the paper's workflow made autonomous, on the Stock dataset.
// The table starts with complete indexes on the low-price columns only.
// Range queries arrive on a high-price column and are served by scans; the
// background advisor observes the query mix, discovers from samples that
// high correlates with low (daily bars), and auto-creates a succinct
// Hermit index — after which the cost-based planner routes the same
// queries through it. Explain shows the planner's costed decision at each
// stage.
package main

import (
	"fmt"
	"log"
	"time"

	hermitdb "hermit"
)

func main() {
	spec := hermitdb.StockSpec{Stocks: 8, Days: 20000, Seed: 7, CrashProb: 0.002}
	db := hermitdb.NewDB(hermitdb.PhysicalPointers)
	tb, err := db.CreateTable("stock_history", spec.Columns(), spec.PKCol())
	if err != nil {
		log.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := tb.Insert(row)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	// Pre-existing indexes on the low columns; the highs are bare.
	for i := 0; i < spec.Stocks; i++ {
		if _, err := tb.CreateBTreeIndex(spec.LowCol(i), false); err != nil {
			log.Fatal(err)
		}
	}

	const ticker = 3
	high := spec.HighCol(ticker)
	lo, hi, _ := tb.Store().ColumnBounds(high)
	y := lo + (hi-lo)*0.40
	z := lo + (hi-lo)*0.45

	// Before: the planner has nothing better than a scan for this column.
	plan, err := tb.Explain(high, y, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: planner serves %q queries via %s (est. cost %.0f units)\n",
		plan.Column, plan.Chosen, plan.Candidates[0].Cost)

	// Enable the advisor and keep querying; it needs to see real traffic
	// before it spends memory on an index.
	adv := db.EnableAdvisor(hermitdb.AdvisorOptions{
		Interval:   20 * time.Millisecond,
		MinQueries: 64,
	})
	defer adv.Stop()

	queries := 0
	start := time.Now()
	for len(adv.Actions()) == 0 {
		if time.Since(start) > 30*time.Second {
			log.Fatal("advisor did not act — is the dataset correlated?")
		}
		if _, _, err := tb.RangeQuery(high, y, z); err != nil {
			log.Fatal(err)
		}
		queries++
	}
	act := adv.Actions()[0]
	host := "(none)" // Host is -1 for every action kind but create-hermit
	if act.Host >= 0 {
		host = spec.Columns()[act.Host]
	}
	fmt.Printf("advisor acted after %d queries (%.0f ms): %s on %q hosted by %q\n",
		queries, float64(time.Since(start).Microseconds())/1000,
		act.Kind, spec.Columns()[act.Col], host)
	fmt.Printf("  reason: %s\n", act.Reason)

	// After: the planner routes through the auto-created index; Explain
	// itemises every candidate path it beat.
	plan, err = tb.Explain(high, y, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after: planner serves %q via %s\n", plan.Column, plan.Chosen)
	for _, c := range plan.Candidates {
		if !c.Available {
			continue
		}
		fmt.Printf("  %-10s cost %8.0f units  est rows %5d  est candidates %5d\n",
			c.Path, c.Cost, c.EstRows, c.EstCandidates)
	}
	rids, stats, err := tb.RangeQuery(high, y, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %d trading days matched via %s (fp ratio %.1f%%), %d rids\n",
		stats.Rows, stats.Path, stats.FalsePositiveRatio()*100, len(rids))

	m := tb.Memory()
	fmt.Printf("memory: new (auto-created) indexes %.2f KB vs table %.1f MB\n",
		float64(m.NewBytes)/(1<<10), float64(m.TableBytes)/(1<<20))
}
