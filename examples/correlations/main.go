// Correlations: the Appendix D.1 gallery (Fig. 25). Generates linear,
// sigmoid (monotonic) and sine (non-monotonic) column pairs, shows how
// Pearson and Spearman classify each, and demonstrates that the engine's
// auto index creation builds a Hermit index only where the correlation is
// usable — falling back to a complete B+-tree for the sine pair.
package main

import (
	"fmt"
	"log"
	"math/rand"

	hermitdb "hermit"
)

func main() {
	db := hermitdb.NewDB(hermitdb.PhysicalPointers)
	// Table: pk, host (uniform driver), then one column per shape.
	cols := []string{"pk", "host", "linear", "sigmoid", "sine"}
	tb, err := db.CreateTable("gallery", cols, 0)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 100_000; i++ {
		x := rng.Float64() * 1000
		row := []float64{
			float64(i),
			x,
			hermitdb.Linear.Eval(x),
			hermitdb.Sigmoid.Eval(x),
			hermitdb.Sin.Eval(x),
		}
		if _, err := tb.Insert(row); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tb.CreateBTreeIndex(1, false); err != nil {
		log.Fatal(err)
	}

	fmt.Println("auto index creation per correlation shape (paper App. D.1):")
	for col := 2; col <= 4; col++ {
		kind, err := tb.CreateIndexAuto(col, hermitdb.DefaultDiscovery())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s -> %s index\n", cols[col], kind)
	}

	// All three are still exact, whatever mechanism was chosen.
	for col := 2; col <= 4; col++ {
		lo, hi, _ := tb.Store().ColumnBounds(col)
		mid := lo + (hi-lo)/2
		width := (hi - lo) * 0.02
		rids, stats, err := tb.RangeQuery(col, mid, mid+width)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s range query: %d rows via %s (fp %.1f%%)\n",
			cols[col], len(rids), stats.Kind, stats.FalsePositiveRatio()*100)
	}
}
