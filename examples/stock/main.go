// Stock: the paper's running example (§3, Fig. 1). A STOCK_HISTORY-style
// wide table records daily low/high prices per ticker; an index exists on
// each low column, and queries like "during which periods did ticker X's
// high fall between Y and Z?" arrive on the unindexed high columns. Hermit
// answers them through the low-column indexes via TRS-Trees, buffering
// crash days (PG&E-style >50% moves) as outliers.
package main

import (
	"fmt"
	"log"

	hermitdb "hermit"
)

func main() {
	spec := hermitdb.StockSpec{Stocks: 20, Days: 15000, Seed: 7, CrashProb: 0.002}
	db := hermitdb.NewDB(hermitdb.LogicalPointers) // MySQL-style identifiers
	tb, err := db.CreateTable("stock_history", spec.Columns(), spec.PKCol())
	if err != nil {
		log.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := tb.Insert(row)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Pre-existing indexes on every low-price column.
	for i := 0; i < spec.Stocks; i++ {
		if _, err := tb.CreateBTreeIndex(spec.LowCol(i), false); err != nil {
			log.Fatal(err)
		}
	}
	// Hermit indexes on every high-price column, hosted on the lows.
	for i := 0; i < spec.Stocks; i++ {
		if _, err := tb.CreateHermitIndex(spec.HighCol(i), spec.LowCol(i)); err != nil {
			log.Fatal(err)
		}
	}

	// The paper's query: when did ticker 3's high sit between Y and Z?
	const ticker = 3
	lo, hi, _ := tb.Store().ColumnBounds(spec.HighCol(ticker))
	y := lo + (hi-lo)*0.40
	z := lo + (hi-lo)*0.45
	rids, stats, err := tb.RangeQuery(spec.HighCol(ticker), y, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ticker %d high in [%.2f, %.2f]: %d trading days (fp ratio %.1f%%)\n",
		ticker, y, z, stats.Rows, stats.FalsePositiveRatio()*100)
	if len(rids) > 0 {
		rows, err := tb.FetchRows(rids[:1], nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  first match: day=%.0f low=%.2f high=%.2f\n",
			rows[0][0], rows[0][spec.LowCol(ticker)], rows[0][spec.HighCol(ticker)])
	}

	// Crash days live in the outlier buffers.
	hx := tb.Hermit(spec.HighCol(ticker))
	st := hx.Tree().Stats()
	fmt.Printf("TRS-Tree for ticker %d: %d leaves, %d outliers (crash days), %.1f KB\n",
		ticker, st.Leaves, st.Outliers, float64(st.SizeBytes)/1024)

	// Fig. 5's space story across all 20 new indexes.
	m := tb.Memory()
	fmt.Printf("memory: table %.1f MB | existing (low) indexes %.1f MB | new (high) hermit indexes %.2f MB\n",
		mbf(m.TableBytes), mbf(m.ExistingBytes), mbf(m.NewBytes))
}

func mbf(b uint64) float64 { return float64(b) / (1 << 20) }
