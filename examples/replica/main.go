// Replica: the replication tier end to end, in one process — a leader
// node shipping its WAL to a tailing follower, a cluster client that
// routes writes to the leader and reads to the follower with
// read-your-writes freshness, the follower's read-only op surface, the
// leader's per-follower lag stats, and finally a failover: the follower
// is promoted to leader (fencing the old epoch) and starts taking
// writes.
//
// In production each node is a hermitd daemon: the leader runs plain
// `hermitd -dir ...` and each follower runs
// `hermitd -dir ... -replicate-from <leader-addr>`; promotion is
// `POST /v1/promote` on the follower's HTTP endpoint. This file wires
// the same pieces in-process.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	hermitdb "hermit"
)

func main() {
	dir, err := os.MkdirTemp("", "hermit-replica-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Leader node: a durable database, a replication leader shipping its
	// WAL, and a server exposing both the op surface and the replication
	// stream on one wire endpoint.
	ldb, err := hermitdb.OpenDurable(filepath.Join(dir, "leader"), hermitdb.PhysicalPointers)
	if err != nil {
		log.Fatal(err)
	}
	defer ldb.Close()
	leader, err := hermitdb.NewReplLeader(ldb, hermitdb.ReplLeaderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	lsrv := hermitdb.NewServer(ldb, hermitdb.ServerOptions{Leader: leader})
	if err := lsrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer lsrv.Close()
	fmt.Printf("leader serving on %s\n", lsrv.Addr())

	// Follower node: its own database directory, tailing the leader. The
	// engine-swap hook re-points the follower's server if a snapshot
	// bootstrap ever replaces the local database wholesale.
	f, err := hermitdb.OpenReplFollower(hermitdb.ReplFollowerOptions{
		Dir:        filepath.Join(dir, "follower"),
		ID:         "replica-1",
		LeaderAddr: lsrv.Addr().String(),
		Scheme:     hermitdb.PhysicalPointers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fsrv := hermitdb.NewServer(f.DB(), hermitdb.ServerOptions{Follower: f})
	f.SetOnEngineSwap(func(db *hermitdb.DurableDB) { fsrv.SwapEngine(db) })
	f.Start()
	if err := fsrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer fsrv.Close()
	fmt.Printf("follower serving on %s\n", fsrv.Addr())

	// A cluster client: writes go to the leader, reads round-robin over
	// the followers. ReadYourWrites makes every read observe the
	// cluster's own preceding writes — a read after a write either waits
	// out the follower's lag or falls back to the leader.
	cl, err := hermitdb.DialCluster(lsrv.Addr().String(),
		[]string{fsrv.Addr().String()},
		hermitdb.ClusterOptions{ReadYourWrites: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	if err := cl.CreateTable("trades", []string{"id", "price", "qty"}, 0, 0); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		row := []float64{float64(i), float64(100 + i%50), float64(1 + i%9)}
		if err := cl.Insert("trades", row); err != nil {
			log.Fatal(err)
		}
	}
	rows, err := cl.Point("trades", 0, 999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-your-writes point lookup: %v\n", rows)

	// The follower is read-only: writes sent straight at it bounce with
	// ErrNotLeader (the cluster client never does this; it routes writes
	// to the leader for you).
	direct, err := hermitdb.Dial(fsrv.Addr().String(), hermitdb.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := direct.Insert("trades", []float64{9999, 0, 0}); errors.Is(err, hermitdb.ErrNotLeader) {
		fmt.Println("direct write to the follower rejected: not the leader")
	}
	direct.Close()

	// The leader tracks each follower's acked watermark; once the
	// follower catches up its lag reaches zero.
	if err := f.WaitFor(ldb.LastLSN(), 10*time.Second); err != nil {
		log.Fatal(err)
	}
	for _, fl := range leader.Stats().Followers {
		fmt.Printf("follower %s: acked LSN %d, lag %d\n", fl.ID, fl.AckLSN, fl.Lag)
	}

	// Failover: the leader goes away, the follower is promoted. Promote
	// re-opens the local database writable, bumps the replication epoch
	// (fencing any zombie leader's stream), and returns the new handle;
	// the server swaps onto it and becomes the leader.
	lsrv.Close()
	ldb.Close()
	pdb, err := f.Promote()
	if err != nil {
		log.Fatal(err)
	}
	defer pdb.Close()
	nl, err := hermitdb.NewReplLeader(pdb, hermitdb.ReplLeaderOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fsrv.SwapEngine(pdb)
	fsrv.BecomeLeader(nl)
	fmt.Printf("follower promoted: epoch %d\n", nl.Epoch())

	// The promoted node takes writes.
	pc, err := hermitdb.Dial(fsrv.Addr().String(), hermitdb.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	if err := pc.Insert("trades", []float64{1000, 150, 1}); err != nil {
		log.Fatal(err)
	}
	rows, err = pc.Range("trades", 0, 998, 1001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows on the promoted leader in [998,1001]: %d\n", len(rows))
}
