// Txn: snapshot-isolation transactions over the MVCC engine — atomic
// multi-row commits, first-committer-wins conflict detection, consistent
// snapshot reads under concurrent writers, and atomic batches.
package main

import (
	"errors"
	"fmt"
	"log"

	hermitdb "hermit"
)

func main() {
	db := hermitdb.NewDB(hermitdb.PhysicalPointers)
	tb, err := db.CreateTable("accounts", []string{"id", "balance"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tb.Insert([]float64{float64(i), 100}); err != nil {
			log.Fatal(err)
		}
	}

	// A transfer is the classic atomic pair: debit one account, credit
	// another. No reader can ever observe the debit without the credit.
	transfer := func(from, to, amount float64) error {
		x := db.Begin()
		defer x.Rollback() // no-op after a successful commit
		src, ok, err := x.Get(tb, from)
		if err != nil || !ok {
			return fmt.Errorf("account %v: ok=%v err=%v", from, ok, err)
		}
		dst, ok, err := x.Get(tb, to)
		if err != nil || !ok {
			return fmt.Errorf("account %v: ok=%v err=%v", to, ok, err)
		}
		if src[1] < amount {
			return fmt.Errorf("insufficient funds in %v", from)
		}
		if err := x.Update(tb, from, 1, src[1]-amount); err != nil {
			return err
		}
		if err := x.Update(tb, to, 1, dst[1]+amount); err != nil {
			return err
		}
		_, err = x.Commit()
		return err
	}

	// A snapshot taken before the transfer keeps seeing the old balances;
	// a fresh read sees the new ones — atomically.
	before := db.Snapshot()
	defer before.Release()
	if err := transfer(0, 1, 30); err != nil {
		log.Fatal(err)
	}
	balance := func(snap *hermitdb.Snapshot, id float64) float64 {
		rids, _, err := tb.PointQueryAt(snap, 0, id)
		if err != nil || len(rids) != 1 {
			log.Fatalf("account %v: %v", id, err)
		}
		v, _ := tb.Store().Value(rids[0], 1)
		return v
	}
	now := db.Snapshot()
	defer now.Release()
	fmt.Printf("account 0: %3.0f before, %3.0f after\n", balance(before, 0), balance(now, 0))
	fmt.Printf("account 1: %3.0f before, %3.0f after\n", balance(before, 1), balance(now, 1))

	// First committer wins: a stale transaction loses and applies nothing.
	x1, x2 := db.Begin(), db.Begin()
	if err := x1.Update(tb, 2, 1, 150); err != nil {
		log.Fatal(err)
	}
	if err := x2.Update(tb, 2, 1, 90); err != nil {
		log.Fatal(err)
	}
	if _, err := x1.Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := x2.Commit(); errors.Is(err, hermitdb.ErrWriteConflict) {
		fmt.Println("second writer aborted:", err)
	} else {
		log.Fatalf("expected a write conflict, got %v", err)
	}

	// Batches with mutations are one atomic transaction: the duplicate
	// insert below aborts the whole batch, so account 99 never appears.
	res := tb.ExecuteBatch([]hermitdb.Op{
		{Kind: hermitdb.OpInsert, Row: []float64{99, 1000}},
		{Kind: hermitdb.OpInsert, Row: []float64{3, 0}}, // duplicate id
	}, 2)
	fmt.Printf("atomic batch: op0 err=%v\n", res[0].Err)
	if rids, _, _ := tb.PointQuery(0, 99); len(rids) == 0 {
		fmt.Println("account 99 was rolled back with the failing batch")
	}
}
