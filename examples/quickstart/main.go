// Quickstart: build a table, create a Hermit index on a correlated column,
// and compare its footprint and answers against a complete B+-tree index.
package main

import (
	"fmt"
	"log"
	"math/rand"

	hermitdb "hermit"
)

func main() {
	db := hermitdb.NewDB(hermitdb.PhysicalPointers)
	tb, err := db.CreateTable("trades", []string{"id", "price", "fee"}, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The exchange charges ~0.3% of price, so "fee" is strongly correlated
	// with "price" — exactly the situation Hermit exploits.
	rng := rand.New(rand.NewSource(42))
	const rows = 200_000
	for i := 0; i < rows; i++ {
		price := 10 + rng.Float64()*990
		fee := price * 0.003
		if rng.Float64() < 0.01 { // promo days: fee waived — an outlier
			fee = 0
		}
		if _, err := tb.Insert([]float64{float64(i), price, fee}); err != nil {
			log.Fatal(err)
		}
	}

	// A complete index already exists on price (the host column).
	if _, err := tb.CreateBTreeIndex(1, false); err != nil {
		log.Fatal(err)
	}

	// Ask for an index on fee: the engine discovers the correlation and
	// builds a Hermit index instead of a second complete B+-tree.
	kind, err := tb.CreateIndexAuto(2, hermitdb.DefaultDiscovery())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index on fee built as: %s\n", kind)

	// Query through it: fees between 1.50 and 1.53.
	rids, stats, err := tb.RangeQuery(2, 1.50, 1.53)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query fee in [1.50, 1.53]: %d rows (%d candidates fetched, %.1f%% false positives)\n",
		stats.Rows, stats.Candidates, stats.FalsePositiveRatio()*100)

	// Show a couple of matching rows.
	rows2, err := tb.FetchRows(rids[:min(3, len(rids))], nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows2 {
		fmt.Printf("  id=%.0f price=%.2f fee=%.4f\n", r[0], r[1], r[2])
	}

	// The space story (paper Figs. 19–20): the Hermit index is a tiny
	// fraction of what a complete index on fee would cost.
	m := tb.Memory()
	fmt.Printf("memory: table=%.1f MB, host index=%.1f MB, hermit index on fee=%.3f MB\n",
		mb(m.TableBytes), mb(m.ExistingBytes), mb(m.NewBytes))
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
