// Sensor: the paper's disk-based scenario (§7.2, §7.8). Sixteen gas-sensor
// channels are each nonlinearly correlated with the average-reading column.
// The base table and host index live on disk behind a small buffer pool
// (the PostgreSQL-style engine); Hermit's TRS-Tree stays in memory and
// routes range queries on an unindexed channel through the average's index.
package main

import (
	"fmt"
	"log"
	"os"

	hermitdb "hermit"
)

func main() {
	dir, err := os.MkdirTemp("", "hermit-sensor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	spec := hermitdb.DefaultSensorSpec(200_000)
	dt, err := hermitdb.OpenDiskTable(dir, spec.Columns(), spec.PKCol(), 256 /* pool pages */)
	if err != nil {
		log.Fatal(err)
	}
	defer dt.Close()

	if err := spec.Generate(func(row []float64) error {
		_, err := dt.Insert(row)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Host index on the average column (disk B+-tree), then a Hermit index
	// on sensor 5 whose TRS-Tree is memory-resident.
	if _, err := dt.CreateDiskBTreeIndex(spec.AvgCol()); err != nil {
		log.Fatal(err)
	}
	hx, err := dt.CreateDiskHermitIndex(spec.ReadingCol(5), spec.AvgCol(), hermitdb.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	dt.SetProfile(true)
	dt.Pool().ResetStats()

	// "During which period did sensor 5 read between 40 and 60?"
	rids, stats, err := dt.RangeQuery(spec.ReadingCol(5), 40, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor 5 in [40, 60]: %d rows (%d candidates)\n", stats.Rows, stats.Candidates)
	_ = rids

	fr := stats.Breakdown.Fractions()
	fmt.Printf("time breakdown: trs-tree %.1f%% | host index %.1f%% | validation %.1f%%\n",
		fr[0]*100, fr[1]*100, fr[3]*100)

	ps := dt.Pool().Stats()
	fmt.Printf("buffer pool: %d hits, %d misses, %d evictions\n", ps.Hits, ps.Misses, ps.Evictions)

	heap, idx, trs := dt.DiskMemory()
	fmt.Printf("footprint: heap %.1f MB on disk | index %.1f MB on disk | TRS-Tree %.1f KB in memory\n",
		float64(heap)/(1<<20), float64(idx)/(1<<20), float64(trs)/1024)
	st := hx.Tree().Stats()
	fmt.Printf("TRS-Tree: height=%d leaves=%d outliers=%d\n", st.Height, st.Leaves, st.Outliers)
}
