// Server: the network serving tier end to end, in one process — start an
// embedded hermitd Server over a durable database, dial it with the
// client package, and exercise the full wire surface: DDL, point/range
// queries, mutations, a pipelined read burst the server coalesces into
// batch executions, an atomic batch, and a snapshot-isolated transaction.
//
// In production the server side is the hermitd daemon (cmd/hermitd) and
// only the client half of this file runs in your process.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	hermitdb "hermit"
)

func main() {
	dir, err := os.MkdirTemp("", "hermit-server-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Server side: open a durable database and serve it on a loopback
	// port. cmd/hermitd does exactly this behind flags.
	db, err := hermitdb.OpenDurable(dir, hermitdb.PhysicalPointers)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	srv := hermitdb.NewServer(db, hermitdb.ServerOptions{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving on %s\n", srv.Addr())

	// Client side: one session, bound to the "demo" tenant namespace.
	conn, err := hermitdb.Dial(srv.Addr().String(), hermitdb.ClientOptions{Tenant: "demo"})
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// DDL and data over the wire: a 4-way hash-partitioned table with a
	// B+-tree on the "price" column.
	if err := conn.CreateTable("trades", []string{"id", "price", "qty"}, 0, 4); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		row := []float64{float64(i), float64(100 + i%50), float64(1 + i%9)}
		if err := conn.Insert("trades", row); err != nil {
			log.Fatal(err)
		}
	}

	rows, err := conn.Range("trades", 1, 100, 104)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range price in [100,104]: %d rows\n", len(rows))

	// Pipelining: 100 point queries written in one burst. The server
	// coalesces adjacent reads into engine batch executions instead of
	// 100 lockstep round trips.
	p := conn.Pipeline()
	for i := 0; i < 100; i++ {
		p.Point("trades", 0, float64(i*7%1000))
	}
	results, err := p.Flush()
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, r := range results {
		hits += len(r.Rows)
	}
	fmt.Printf("pipelined 100 point queries: %d hits, %d coalesced server-side\n",
		hits, srv.Stats().Coalesced)

	// An atomic batch: both mutations commit together or not at all.
	batch, err := conn.Batch([]hermitdb.ClientOp{
		{Kind: hermitdb.ClientOpInsert, Table: "trades", Row: []float64{5000, 120, 1}},
		{Kind: hermitdb.ClientOpDelete, Table: "trades", PK: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("atomic batch: insert err=%v, delete found=%v\n", batch[0].Err, batch[1].Found)

	// A snapshot-isolated transaction over the wire, with the classic
	// conflict: a second session updates the same row first.
	tx, err := conn.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Update("trades", 1, 2, 99); err != nil {
		log.Fatal(err)
	}
	rival, err := hermitdb.Dial(srv.Addr().String(), hermitdb.ClientOptions{Tenant: "demo"})
	if err != nil {
		log.Fatal(err)
	}
	defer rival.Close()
	if err := rival.Update("trades", 1, 2, 42); err != nil {
		log.Fatal(err)
	}
	err = tx.Commit()
	fmt.Printf("conflicting commit rejected: %v\n", errors.Is(err, hermitdb.ErrConflict))

	st := srv.Stats()
	fmt.Printf("server stats: %d requests over %d connections\n", st.Requests, st.Conns)
}
