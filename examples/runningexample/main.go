// Running example: the paper's §3 walkthrough, end to end. A STOCK_HISTORY
// table has columns (TIME, DJ, SP, VOL) and a composite index on (TIME, DJ).
// The DBA asks for an index on (TIME, SP); the engine detects that SP is
// highly correlated with DJ, builds a TRS-Tree mapping SP -> DJ instead of
// a second complete composite index, and answers
//
//	SELECT * FROM STOCK_HISTORY
//	WHERE (TIME BETWEEN ? AND ?) AND (SP BETWEEN ? AND ?)
//
// through the (TIME, DJ) host index. The demo finishes with the §6
// fault-tolerance flow: WAL + checkpoint, crash, recovery.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	hermitdb "hermit"
	"hermit/internal/engine"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

func main() {
	dir, err := os.MkdirTemp("", "hermit-running-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := engine.OpenDurable(dir, hermitdb.PhysicalPointers)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("STOCK_HISTORY", []string{"TIME", "DJ", "SP", "VOL"}, 0); err != nil {
		log.Fatal(err)
	}

	// 60 years of daily Dow-Jones and S&P-500 style indices: correlated in
	// most years, with occasional decoupled regime-shift days (Fig. 26).
	rng := rand.New(rand.NewSource(26))
	dj := 2500.0
	const days = 15000
	for day := 0; day < days; day++ {
		dj *= 1 + rng.NormFloat64()*0.01
		sp := dj/8 + rng.NormFloat64()*0.01
		if rng.Float64() < 0.002 {
			sp = rng.Float64() * dj / 4 // decoupled day
		}
		if _, err := db.Insert("STOCK_HISTORY", []float64{float64(day), dj, sp, rng.Float64() * 1e6}); err != nil {
			log.Fatal(err)
		}
	}

	// The DBA has already created the composite index on (TIME, DJ).
	if err := db.CreateIndex("STOCK_HISTORY", engine.IndexDef{
		Kind: "composite-btree", ACol: 0, Col: 1,
	}); err != nil {
		log.Fatal(err)
	}
	// Index request on (TIME, SP): served by a composite Hermit index that
	// models SP -> DJ and rides the existing (TIME, DJ) index.
	if err := db.CreateIndex("STOCK_HISTORY", engine.IndexDef{
		Kind: "composite-hermit", ACol: 0, Col: 2, Host: 1,
		Params: trstree.DefaultParams(),
	}); err != nil {
		log.Fatal(err)
	}

	tb, _ := db.Table("STOCK_HISTORY")
	// Query window taken from the data *within the TIME window* so the demo
	// always has matches.
	spLo, spHi := math.Inf(1), math.Inf(-1)
	tb.Store().Scan(func(_ storage.RID, row []float64) bool {
		if row[0] >= 5000 && row[0] <= 8000 {
			spLo = math.Min(spLo, row[2])
			spHi = math.Max(spHi, row[2])
		}
		return true
	})
	qLo := spLo + (spHi-spLo)*0.40
	qHi := spLo + (spHi-spLo)*0.45
	query := func(label string) {
		rids, stats, err := tb.RangeQuery2(0, 5000, 8000, 2, qLo, qHi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: TIME in [5000,8000] AND SP in [%.0f,%.0f] -> %d days (%d candidates, fp %.1f%%)\n",
			label, qLo, qHi, len(rids), stats.Candidates, stats.FalsePositiveRatio()*100)
	}
	query("before crash")

	hx := tb.CompositeHermit(0, 2)
	st := hx.Tree().Stats()
	m := tb.Memory()
	fmt.Printf("TRS-Tree on SP->DJ: %d leaves, %d outliers, %.1f KB (vs %.2f MB for the (TIME,DJ) host index)\n",
		st.Leaves, st.Outliers, float64(st.SizeBytes)/1024, float64(m.ExistingBytes)/(1<<20))

	// Fault tolerance (§6): checkpoint, more writes, crash, recover.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	for day := days; day < days+100; day++ {
		dj *= 1 + rng.NormFloat64()*0.01
		if _, err := db.Insert("STOCK_HISTORY", []float64{float64(day), dj, dj / 8, 0}); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Close(); err != nil { // "crash" after the WAL tail is on disk
		log.Fatal(err)
	}

	recovered, err := engine.OpenDurable(dir, hermitdb.PhysicalPointers)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	tb, _ = recovered.Table("STOCK_HISTORY")
	fmt.Printf("after recovery: %d rows (checkpoint + %d WAL-tail inserts)\n", tb.Len(), 100)
	query("after recovery")
}
