package proto

import (
	"bytes"
	"io"
	"testing"
)

// This file fuzzes the wire decoder the way internal/wal/fuzz_test.go
// fuzzes log replay: arbitrary bytes must never panic the decoder, never
// make ReadFrame consume bytes beyond one frame's declared extent, and a
// successfully decoded message must re-encode to a decodable frame.

// fuzzSeeds returns valid encoded frames (requests and responses) used as
// the fuzz corpus, so mutation explores near-valid inputs.
func fuzzSeeds(tb testing.TB) [][]byte {
	var seeds [][]byte
	for _, req := range sampleRequests() {
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, frame)
	}
	for _, resp := range sampleResponses() {
		frame, err := AppendResponse(nil, &resp)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, frame)
	}
	return seeds
}

// FuzzDecodeFrame feeds arbitrary bytes through ReadFrame + both decoders.
// Invariants: no panic; ReadFrame never consumes more than 4 bytes + the
// declared payload length; a decode that succeeds re-encodes to a frame
// that decodes back to the same message. `go test` runs the seed corpus;
// `go test -fuzz=FuzzDecodeFrame` explores.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, Version})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
		if len(s) > 3 {
			f.Add(s[:len(s)-3])
		}
		f.Add(append(append([]byte(nil), s...), 0xde, 0xad))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cr := &countingReader{r: bytes.NewReader(data)}
		payload, err := ReadFrame(cr)
		if err != nil {
			// Even on failure ReadFrame must not have consumed past one
			// frame's extent (4-byte header + declared length).
			if cr.n > len(data) {
				t.Fatalf("ReadFrame consumed %d of %d bytes", cr.n, len(data))
			}
			return
		}
		if cr.n != 4+len(payload) {
			t.Fatalf("ReadFrame consumed %d bytes for a %d-byte payload", cr.n, len(payload))
		}

		// Decoding must never panic; on success the message must survive a
		// re-encode/decode cycle (the server echoes decoded requests into
		// batches, so self-consistency matters).
		if req, err := DecodeRequest(payload); err == nil {
			frame, err := AppendRequest(nil, &req)
			if err != nil {
				t.Fatalf("decoded request does not re-encode: %v\nreq: %+v", err, req)
			}
			again, err := ReadRequest(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if !eqRequest(req, again) {
				t.Fatalf("request changed across re-encode\n was: %+v\n now: %+v", req, again)
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			frame, err := AppendResponse(nil, &resp)
			if err != nil {
				t.Fatalf("decoded response does not re-encode: %v\nresp: %+v", err, resp)
			}
			again, err := ReadResponse(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			if !eqResponse(resp, again) {
				t.Fatalf("response changed across re-encode\n was: %+v\n now: %+v", resp, again)
			}
		}
	})
}

// FuzzDecodeStream feeds arbitrary bytes as a stream and reads frames
// until error: the reader must terminate (bounded by input length) and
// never loop or panic on any prefix structure.
func FuzzDecodeStream(f *testing.F) {
	var stream []byte
	for _, s := range fuzzSeeds(f) {
		stream = append(stream, s...)
	}
	f.Add(stream)
	f.Add(stream[:len(stream)/2])
	f.Add([]byte{5, 0, 0, 0, Version, byte(ReqPing), 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; ; i++ {
			if i > len(data) {
				t.Fatal("stream reader failed to terminate")
			}
			if _, err := ReadFrame(r); err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					err != ErrFrameTooLarge {
					t.Fatalf("unexpected stream error: %v", err)
				}
				return
			}
		}
	})
}
