package proto

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// sampleRequests covers every request type with non-trivial field values,
// including the edge encodings (NaN/Inf floats, empty rows, empty batch).
func sampleRequests() []Request {
	return []Request{
		{Type: ReqHello, Tenant: "acme"},
		{Type: ReqHello, Tenant: ""},
		{Type: ReqPing},
		{Type: ReqPoint, Txn: 7, Table: "users", Col: 2, Lo: 42.5},
		{Type: ReqRange, Table: "t", Col: 0, Lo: math.Inf(-1), Hi: math.Inf(1)},
		{Type: ReqRange2, Txn: 1, Table: "t", Col: 1, Lo: -3, Hi: 9, BCol: 4, BLo: 0.25, BHi: 0.75},
		{Type: ReqInsert, Table: "t", Row: []float64{1, 2, 3, math.NaN()}},
		{Type: ReqInsert, Table: "t", Row: []float64{}},
		{Type: ReqUpdate, Txn: 99, Table: "t", PK: 12, Col: 3, Value: -7.5},
		{Type: ReqDelete, Table: "t", PK: 8},
		{Type: ReqBatch, Ops: []Request{
			{Type: ReqInsert, Table: "a", Row: []float64{1, 2}},
			{Type: ReqDelete, Table: "a", PK: 1},
			{Type: ReqPoint, Table: "b", Col: 0, Lo: 5},
		}},
		{Type: ReqBatch},
		{Type: ReqTxnBegin},
		{Type: ReqTxnCommit, Txn: 3},
		{Type: ReqTxnRollback, Txn: 4},
		{Type: ReqCreateTable, Table: "t", PKCol: 1, Cols: []string{"id", "x", "y"}},
		{Type: ReqCreateTable, Table: "p", PKCol: 0, Parts: 4, Cols: []string{"id", "x"}},
		{Type: ReqCreateIndex, Table: "t", Kind: IndexHermit, Col: 2, Host: 1},
		{Type: ReqCreateIndex, Table: "t", Kind: IndexBTree, Col: 1},
		{Type: ReqLSN},
		{Type: ReqReplSubscribe, LSN: 42, Epoch: 3, Follower: "replica-1"},
		{Type: ReqReplSubscribe},
		{Type: ReqReplAck, LSN: 17, Follower: "replica-1"},
	}
}

// sampleResponses covers every response type.
func sampleResponses() []Response {
	return []Response{
		{Type: RespOK},
		{Type: RespRows, Rows: [][]float64{{1, 2, 3}, {4, 5, math.Inf(1)}}},
		{Type: RespRows},
		{Type: RespFound, Found: true},
		{Type: RespFound, Found: false},
		{Type: RespTxn, Txn: 123456789},
		{Type: RespBatch, Results: []Response{
			{Type: RespOK},
			{Type: RespError, Code: CodeConflict, Msg: "write conflict"},
			{Type: RespRows, Rows: [][]float64{{9}}},
		}},
		{Type: RespBatch},
		{Type: RespError, Code: CodeOverloaded, Msg: "backpressure"},
		{Type: RespError, Code: CodeNotLeader, Msg: "read-only follower"},
		{Type: RespError, Code: CodeFenced, Msg: "stale epoch"},
		{Type: RespLSN, LSN: 99},
		{Type: RespReplState, LSN: 1000, Epoch: 5, NeedSnapshot: true},
		{Type: RespReplState},
		{Type: RespReplFrames, Recs: []WALRecord{
			{LSN: 1, Op: 8, Txn: 9},
			{LSN: 2, Op: 1, Part: 3, Txn: 9, Table: "t#1", Payload: []byte{1, 2, 3}},
			{LSN: 3, Op: 9, Txn: 9, Payload: []byte{}},
		}},
		{Type: RespReplFrames},
		{Type: RespReplSnapTable, Snap: &SnapTable{
			Name: "t", Cols: []string{"id", "x"}, PKCol: 0, Parts: 2,
			DefsJSON: []byte(`[{"kind":"btree","col":1}]`),
			Rows:     [][]float64{{1, 2}, {3, math.NaN()}},
		}},
		{Type: RespReplSnapTable, Snap: &SnapTable{Name: "empty", Cols: []string{"id"}}},
		{Type: RespReplSnapDone, LSN: 4096},
	}
}

// eqFloat compares with NaN == NaN (encode/decode must preserve NaN).
func eqFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func eqRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !eqFloat(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// eqRequest compares requests field-by-field, tolerating nil-vs-empty
// slices and NaN row values.
func eqRequest(a, b Request) bool {
	if a.Type != b.Type || a.Txn != b.Txn || a.Table != b.Table || a.Tenant != b.Tenant ||
		a.Col != b.Col || a.BCol != b.BCol || a.PKCol != b.PKCol || a.Parts != b.Parts ||
		a.Kind != b.Kind || a.Host != b.Host ||
		a.LSN != b.LSN || a.Epoch != b.Epoch || a.Follower != b.Follower ||
		!eqFloat(a.Lo, b.Lo) || !eqFloat(a.Hi, b.Hi) ||
		!eqFloat(a.BLo, b.BLo) || !eqFloat(a.BHi, b.BHi) ||
		!eqFloat(a.PK, b.PK) || !eqFloat(a.Value, b.Value) {
		return false
	}
	if !eqRows([][]float64{a.Row}, [][]float64{b.Row}) {
		return false
	}
	if len(a.Cols) != len(b.Cols) || (len(a.Cols) > 0 && !reflect.DeepEqual(a.Cols, b.Cols)) {
		return false
	}
	if len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if !eqRequest(a.Ops[i], b.Ops[i]) {
			return false
		}
	}
	return true
}

func eqResponse(a, b Response) bool {
	if a.Type != b.Type || a.Found != b.Found || a.Txn != b.Txn ||
		a.Code != b.Code || a.Msg != b.Msg ||
		a.LSN != b.LSN || a.Epoch != b.Epoch || a.NeedSnapshot != b.NeedSnapshot {
		return false
	}
	if !eqRows(a.Rows, b.Rows) {
		return false
	}
	if len(a.Recs) != len(b.Recs) {
		return false
	}
	for i := range a.Recs {
		if !eqWALRecord(a.Recs[i], b.Recs[i]) {
			return false
		}
	}
	if (a.Snap == nil) != (b.Snap == nil) {
		return false
	}
	if a.Snap != nil && !eqSnapTable(*a.Snap, *b.Snap) {
		return false
	}
	if len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		if !eqResponse(a.Results[i], b.Results[i]) {
			return false
		}
	}
	return true
}

func TestRequestRoundTrip(t *testing.T) {
	for i, req := range sampleRequests() {
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("request %d: encode: %v", i, err)
		}
		got, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("request %d: decode: %v", i, err)
		}
		if !eqRequest(req, got) {
			t.Fatalf("request %d: round trip mismatch\n in: %+v\nout: %+v", i, req, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for i, resp := range sampleResponses() {
		frame, err := AppendResponse(nil, &resp)
		if err != nil {
			t.Fatalf("response %d: encode: %v", i, err)
		}
		got, err := ReadResponse(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("response %d: decode: %v", i, err)
		}
		if !eqResponse(resp, got) {
			t.Fatalf("response %d: round trip mismatch\n in: %+v\nout: %+v", i, resp, got)
		}
	}
}

// TestStreamRoundTrip writes every sample message into one buffer and
// reads them back in order: the framing keeps a pipelined stream aligned.
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := sampleRequests()
	for i := range reqs {
		if err := WriteRequest(&buf, &reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("stream request %d: %v", i, err)
		}
		if !eqRequest(reqs[i], got) {
			t.Fatalf("stream request %d mismatch", i)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Fatalf("drained stream: want io.EOF, got %v", err)
	}
}

// TestTruncationSweep cuts every sample frame at every possible byte
// length: decoding a truncated frame must fail cleanly (no panic, no
// misparse into success) and ReadFrame must never read past the declared
// length.
func TestTruncationSweep(t *testing.T) {
	check := func(t *testing.T, frame []byte, decode func([]byte) error) {
		t.Helper()
		for cut := 0; cut < len(frame); cut++ {
			r := bytes.NewReader(frame[:cut])
			payload, err := ReadFrame(r)
			if err == nil {
				// A cut inside the trailing frame can only succeed if the
				// truncation landed exactly on... nothing: the frame is the
				// whole input, so any cut must fail.
				t.Fatalf("cut %d: ReadFrame succeeded on truncated frame", cut)
			}
			_ = payload
			// Decoding the truncated payload (without the length prefix)
			// must also fail cleanly.
			if cut > 4 {
				if err := decode(frame[4:cut]); err == nil {
					t.Fatalf("cut %d: decode succeeded on truncated payload", cut)
				}
			}
		}
		// Trailing garbage after a valid body must be rejected too.
		if err := decode(append(append([]byte(nil), frame[4:]...), 0xde)); !errors.Is(err, ErrTrailing) && err == nil {
			t.Fatal("trailing byte accepted")
		}
	}
	for i, req := range sampleRequests() {
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		t.Run("", func(t *testing.T) {
			_ = i
			check(t, frame, func(p []byte) error { _, err := DecodeRequest(p); return err })
		})
	}
	for _, resp := range sampleResponses() {
		frame, err := AppendResponse(nil, &resp)
		if err != nil {
			t.Fatal(err)
		}
		check(t, frame, func(p []byte) error { _, err := DecodeResponse(p); return err })
	}
}

func TestFrameLimits(t *testing.T) {
	// Zero-length and oversized length prefixes are rejected without
	// allocating the declared size.
	for _, hdr := range [][]byte{
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff},
		{1, 0, 0, 2}, // 2<<24 + 1 > MaxFrame
	} {
		if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("header % x: want ErrFrameTooLarge, got %v", hdr, err)
		}
	}
	// Unknown protocol version.
	req := Request{Type: ReqPing}
	frame, err := AppendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = 99
	if _, err := ReadRequest(bytes.NewReader(frame)); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestEncodeRejectsBadMessages(t *testing.T) {
	cases := []Request{
		{Type: ReqType(200)},
		{Type: ReqBatch, Ops: []Request{{Type: ReqTxnBegin}}},
		{Type: ReqBatch, Ops: []Request{{Type: ReqBatch}}},
		{Type: ReqPoint, Table: string(make([]byte, maxString+1))},
	}
	for i, req := range cases {
		if _, err := AppendRequest(nil, &req); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("case %d: want ErrBadMessage, got %v", i, err)
		}
	}
	resps := []Response{
		{Type: RespType(7)},
		{Type: RespBatch, Results: []Response{{Type: RespBatch}}},
		{Type: RespRows, Rows: [][]float64{{1, 2}, {3}}},
	}
	for i, resp := range resps {
		if _, err := AppendResponse(nil, &resp); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("response case %d: want ErrBadMessage, got %v", i, err)
		}
	}
}

// TestDecodeRejectsHostileCounts feeds payloads whose declared element
// counts exceed the bytes that could back them: the decoder must reject
// them without large allocations (cannot be asserted directly, but the
// count-vs-remaining validation paths are exercised).
func TestDecodeRejectsHostileCounts(t *testing.T) {
	// Insert with a row count of 2^31 backed by no bytes.
	payload := []byte{Version, byte(ReqInsert)}
	payload = appendU64(payload, 0)
	payload, _ = appendStr(payload, "t")
	payload = appendU32(payload, 1<<31-1)
	if _, err := DecodeRequest(payload); err == nil {
		t.Fatal("hostile insert row count accepted")
	}
	// Batch claiming 2^20 ops backed by 1 byte.
	payload = []byte{Version, byte(ReqBatch)}
	payload = appendU32(payload, 1<<20)
	payload = append(payload, 0)
	if _, err := DecodeRequest(payload); err == nil {
		t.Fatal("hostile batch count accepted")
	}
	// Rows claiming a million wide rows backed by nothing.
	payload = []byte{Version, byte(RespRows)}
	payload = appendU32(payload, 1<<20)
	payload = appendU16(payload, 64)
	if _, err := DecodeResponse(payload); err == nil {
		t.Fatal("hostile rows count accepted")
	}
	// Zero-width rows with a nonzero count would loop forever if accepted.
	payload = []byte{Version, byte(RespRows)}
	payload = appendU32(payload, 5)
	payload = appendU16(payload, 0)
	if _, err := DecodeResponse(payload); !errors.Is(err, ErrBadMessage) {
		t.Fatal("zero-width nonzero-count rows accepted")
	}
}

// countingReader tracks how many bytes ReadFrame consumed from the
// underlying stream.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestReadFrameNeverOverReads asserts ReadFrame consumes exactly the
// length prefix plus the declared payload — never bytes of the next
// frame — for every sample message followed by a sentinel frame.
func TestReadFrameNeverOverReads(t *testing.T) {
	for i, req := range sampleRequests() {
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		next, err := AppendRequest(nil, &Request{Type: ReqPing})
		if err != nil {
			t.Fatal(err)
		}
		cr := &countingReader{r: bytes.NewReader(append(append([]byte(nil), frame...), next...))}
		if _, err := ReadFrame(cr); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if cr.n != len(frame) {
			t.Fatalf("request %d: ReadFrame consumed %d bytes, frame is %d", i, cr.n, len(frame))
		}
	}
}
