package proto

import (
	"fmt"
)

// Replication wire messages. A follower opens an ordinary protocol
// connection and sends ReqReplSubscribe naming its resume LSN, leader
// epoch and follower id; the leader answers RespReplState (accepting,
// fencing, or demanding a snapshot bootstrap), then streams
// RespReplSnapTable/RespReplSnapDone (bootstrap only) followed by
// RespReplFrames batches for as long as the subscription lives. The
// follower sends ReqReplAck frames upstream on the same connection as its
// durable LSN advances; acks carry no response. Like the rest of the
// protocol these messages know nothing about engines — WALRecord mirrors
// internal/wal's record shape without importing it, so the framing stays
// fuzzable in isolation.

// Replication request types (continuing the ReqType space).
const (
	// ReqLSN asks for the peer's applied LSN watermark (RespLSN). On a
	// leader the watermark is its last written LSN.
	ReqLSN ReqType = 15
	// ReqReplSubscribe opens a replication stream: LSN is the last LSN the
	// follower holds (resume point), Epoch the leader epoch it last
	// followed, Follower its stable id.
	ReqReplSubscribe ReqType = 16
	// ReqReplAck reports a follower's durable LSN upstream (LSN +
	// Follower). It has no response frame.
	ReqReplAck ReqType = 17
)

// Replication response types (continuing the RespType space).
const (
	// RespLSN carries an applied-LSN watermark.
	RespLSN RespType = 70
	// RespReplState answers a subscribe: LSN is the leader's current last
	// LSN, Epoch its epoch, NeedSnapshot whether a bootstrap stream
	// (RespReplSnapTable... RespReplSnapDone) precedes the frame stream.
	RespReplState RespType = 71
	// RespReplFrames carries a batch of WAL records in strict LSN order.
	RespReplFrames RespType = 72
	// RespReplSnapTable carries one bootstrap chunk: a table's schema and
	// a slice of its rows (large tables span several chunks; the schema
	// repeats in each, so chunks are self-contained).
	RespReplSnapTable RespType = 73
	// RespReplSnapDone ends a bootstrap stream; LSN is the snapshot cut
	// the follower resumes from.
	RespReplSnapDone RespType = 74
)

// Replication error codes (continuing the ErrCode space).
const (
	// CodeNotLeader: the node is a read-only follower; writes (and
	// replication subscriptions) belong on the leader.
	CodeNotLeader ErrCode = 11
	// CodeFenced: the peer's leader epoch is stale — a newer leader was
	// promoted and the old epoch's streams are rejected.
	CodeFenced ErrCode = 12
)

// maxBlob bounds the variable-length byte fields replication messages
// carry (WAL payloads, index-definition JSON) well under MaxFrame.
const maxBlob = 4 << 20

// WALRecord is one WAL record on the wire: internal/wal's record shape
// (LSN, op, partition, txn id, table, payload) without the import.
type WALRecord struct {
	LSN     uint64
	Op      uint8
	Part    uint32
	Txn     uint64
	Table   string
	Payload []byte
}

// SnapTable is one snapshot-bootstrap chunk: the table's schema, its
// recovery index definitions (JSON, schema-owned by the engine), and a
// run of rows. Rows are uniform at len(Cols) width.
type SnapTable struct {
	Name     string
	Cols     []string
	PKCol    uint16
	Parts    uint16
	DefsJSON []byte
	Rows     [][]float64
}

func appendBlob(b, blob []byte) ([]byte, error) {
	if len(blob) > maxBlob {
		return nil, fmt.Errorf("%w: blob length %d", ErrBadMessage, len(blob))
	}
	b = appendU32(b, uint32(len(blob)))
	return append(b, blob...), nil
}

// blob reads a u32-counted byte field, validating the count against both
// the remaining payload and maxBlob before allocating.
func (c *cursor) blob() []byte {
	n := int(c.u32())
	if c.err != nil {
		return nil
	}
	if n < 0 || n > maxBlob {
		c.err = fmt.Errorf("%w: blob length %d", ErrBadMessage, n)
		return nil
	}
	if b := c.take(n); b != nil {
		return append([]byte(nil), b...)
	}
	return nil
}

func appendWALRecord(b []byte, rec *WALRecord) ([]byte, error) {
	b = appendU64(b, rec.LSN)
	b = append(b, rec.Op)
	b = appendU32(b, rec.Part)
	b = appendU64(b, rec.Txn)
	var err error
	if b, err = appendStr(b, rec.Table); err != nil {
		return nil, err
	}
	return appendBlob(b, rec.Payload)
}

func decodeWALRecord(c *cursor) WALRecord {
	var rec WALRecord
	rec.LSN = c.u64()
	rec.Op = c.u8()
	rec.Part = c.u32()
	rec.Txn = c.u64()
	rec.Table = c.str()
	rec.Payload = c.blob()
	return rec
}

func appendSnapTable(b []byte, st *SnapTable) ([]byte, error) {
	var err error
	if b, err = appendStr(b, st.Name); err != nil {
		return nil, err
	}
	b = appendU16(b, st.PKCol)
	b = appendU16(b, st.Parts)
	b = appendU16(b, uint16(len(st.Cols)))
	for _, col := range st.Cols {
		if b, err = appendStr(b, col); err != nil {
			return nil, err
		}
	}
	if b, err = appendBlob(b, st.DefsJSON); err != nil {
		return nil, err
	}
	width := len(st.Cols)
	b = appendU32(b, uint32(len(st.Rows)))
	for _, row := range st.Rows {
		if len(row) != width {
			return nil, fmt.Errorf("%w: snapshot row width %d != schema %d", ErrBadMessage, len(row), width)
		}
		for _, v := range row {
			b = appendF64(b, v)
		}
	}
	return b, nil
}

func decodeSnapTable(c *cursor) (*SnapTable, error) {
	st := &SnapTable{}
	st.Name = c.str()
	st.PKCol = c.u16()
	st.Parts = c.u16()
	ncols := int(c.u16())
	if c.err == nil && ncols > len(c.b)-c.off {
		return nil, fmt.Errorf("%w: snapshot column count %d", ErrBadMessage, ncols)
	}
	for i := 0; i < ncols && c.err == nil; i++ {
		st.Cols = append(st.Cols, c.str())
	}
	st.DefsJSON = c.blob()
	nrows := int(c.u32())
	width := len(st.Cols)
	if c.err == nil {
		if width == 0 && nrows != 0 {
			return nil, fmt.Errorf("%w: %d zero-width snapshot rows", ErrBadMessage, nrows)
		}
		if nrows < 0 || (width > 0 && nrows > (len(c.b)-c.off)/(width*8)) {
			c.fail()
			return nil, c.err
		}
	}
	for i := 0; i < nrows && c.err == nil; i++ {
		row := make([]float64, width)
		for j := range row {
			row[j] = c.f64()
		}
		st.Rows = append(st.Rows, row)
	}
	return st, c.err
}
