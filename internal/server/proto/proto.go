// Package proto is the hermitd wire protocol: length-prefixed binary
// frames carrying versioned request/response messages for the full
// operation surface (point/range/range2 queries, insert/update/delete,
// atomic batches, txn-begin/commit/rollback, DDL, hello/ping).
//
// Layering: this package knows nothing about sockets, sessions or the
// engine — it only turns messages into bytes and back. internal/server
// speaks it on the server side, internal/client on the client side, and
// the framing is strict enough to fuzz in isolation (see fuzz_test.go).
//
// # Frame layout
//
//	u32  payload length (little-endian; 0 < length <= MaxFrame)
//	u8   protocol version (Version)
//	u8   message type
//	...  type-specific body
//
// Every multi-byte integer is little-endian; floats are IEEE-754 bits.
// Strings are u16 length + bytes; float slices are u32 count + values.
// A decoder never reads past the declared payload length, and a payload
// with trailing bytes after the body is rejected — the two properties
// that keep a pipelined stream parseable after any single bad frame is
// refused at the framing layer.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version this package speaks. A frame carrying
// any other version is rejected with ErrVersion: versioned message types
// let a future server accept several versions side by side.
const Version = 1

// MaxFrame bounds a frame's payload length (16 MiB): the framing layer's
// defence against a hostile or corrupt length prefix allocating gigabytes.
const MaxFrame = 1 << 24

// maxString bounds any encoded string (table names, tenant names, error
// messages).
const maxString = 1 << 12

// Framing and decoding errors.
var (
	// ErrFrameTooLarge: the length prefix exceeds MaxFrame (or is zero).
	ErrFrameTooLarge = errors.New("proto: frame length out of range")
	// ErrVersion: the frame carries an unsupported protocol version.
	ErrVersion = errors.New("proto: unsupported protocol version")
	// ErrTruncated: the payload ended before the message body did.
	ErrTruncated = errors.New("proto: truncated message")
	// ErrTrailing: the payload continues past the message body.
	ErrTrailing = errors.New("proto: trailing bytes after message")
	// ErrBadMessage: unknown message type, nested batch, or a field out
	// of range.
	ErrBadMessage = errors.New("proto: malformed message")
)

// ReqType identifies a client-to-server message.
type ReqType uint8

// Request message types.
const (
	// ReqHello opens a session, naming the tenant namespace.
	ReqHello ReqType = 1
	// ReqPing is a no-op round trip (liveness, latency probes).
	ReqPing ReqType = 2
	// ReqPoint is a single-column equality query (Col, Lo as the value).
	ReqPoint ReqType = 3
	// ReqRange is a single-column range query (Col, [Lo, Hi]).
	ReqRange ReqType = 4
	// ReqRange2 is a conjunctive two-column range query.
	ReqRange2 ReqType = 5
	// ReqInsert appends Row to Table.
	ReqInsert ReqType = 6
	// ReqUpdate sets column Col of the row with primary key PK to Value.
	ReqUpdate ReqType = 7
	// ReqDelete removes the row with primary key PK.
	ReqDelete ReqType = 8
	// ReqBatch executes Ops as one atomic batch (see engine.ExecuteBatch).
	ReqBatch ReqType = 9
	// ReqTxnBegin opens a server-side transaction; the response carries
	// its id, which subsequent requests reference via Txn.
	ReqTxnBegin ReqType = 10
	// ReqTxnCommit commits the transaction Txn.
	ReqTxnCommit ReqType = 11
	// ReqTxnRollback discards the transaction Txn.
	ReqTxnRollback ReqType = 12
	// ReqCreateTable creates a table (Cols, PKCol) in the session tenant's
	// namespace.
	ReqCreateTable ReqType = 13
	// ReqCreateIndex creates an index (Kind, Col, Host) on Table.
	ReqCreateIndex ReqType = 14
)

// IndexKind selects the index mechanism in a ReqCreateIndex.
type IndexKind uint8

// Index kinds a client can request.
const (
	// IndexBTree is a complete secondary B+-tree.
	IndexBTree IndexKind = 0
	// IndexHermit is a succinct Hermit index on Col through host Host.
	IndexHermit IndexKind = 1
)

// Request is one decoded client-to-server message. Only the fields of the
// given Type are meaningful; the rest stay zero. One struct (rather than
// one type per message) keeps the server's dispatch and the batch
// encoding — Ops are Requests — flat.
type Request struct {
	Type ReqType
	// Txn references an open server-side transaction (0 = auto-commit).
	Txn uint64
	// Table names the target table in the session tenant's namespace.
	Table string
	// Col is the query/update column; Lo doubles as the point value and
	// the update/delete primary key is PK.
	Col    uint16
	Lo, Hi float64
	// BCol/BLo/BHi are the second predicate of a ReqRange2.
	BCol     uint16
	BLo, BHi float64
	// Row is the inserted row (ReqInsert).
	Row []float64
	// PK is the target primary key (ReqUpdate, ReqDelete).
	PK float64
	// Value is the new column value (ReqUpdate).
	Value float64
	// Ops are the batch operations (ReqBatch; no nested batches).
	Ops []Request
	// Tenant is the namespace a ReqHello binds the session to.
	Tenant string
	// Cols, PKCol and Parts describe a ReqCreateTable (Parts 0 = plain
	// table, >= 1 = hash-partitioned).
	Cols  []string
	PKCol uint16
	Parts uint16
	// Kind and Host describe a ReqCreateIndex.
	Kind IndexKind
	Host uint16
	// LSN, Epoch and Follower are the replication fields: the resume /
	// acked LSN (ReqReplSubscribe, ReqReplAck), the leader epoch the
	// sender last followed (ReqReplSubscribe), and the follower's stable
	// id (both).
	LSN      uint64
	Epoch    uint64
	Follower string
}

// RespType identifies a server-to-client message.
type RespType uint8

// Response message types.
const (
	// RespOK acknowledges a request with no payload.
	RespOK RespType = 64
	// RespRows carries a query's matching rows.
	RespRows RespType = 65
	// RespFound carries a delete's found flag.
	RespFound RespType = 66
	// RespTxn carries a fresh transaction id.
	RespTxn RespType = 67
	// RespBatch carries one nested response per batch op.
	RespBatch RespType = 68
	// RespError reports a failure (Code + Msg).
	RespError RespType = 69
)

// ErrCode classifies a RespError so clients can map failures onto
// sentinel errors without parsing message text.
type ErrCode uint8

// Error codes.
const (
	// CodeInternal is an unclassified server-side failure.
	CodeInternal ErrCode = 1
	// CodeBadRequest: the request was malformed or referenced an unknown
	// message type.
	CodeBadRequest ErrCode = 2
	// CodeOverloaded: admission control shed the request (max in-flight
	// reached); the client should back off and retry.
	CodeOverloaded ErrCode = 3
	// CodeQuota: the tenant exhausted its operation quota.
	CodeQuota ErrCode = 4
	// CodeConflict: first-committer-wins write-write conflict.
	CodeConflict ErrCode = 5
	// CodeAborted: a sibling mutation aborted this op's atomic batch.
	CodeAborted ErrCode = 6
	// CodeNoTable: the named table does not exist in this namespace.
	CodeNoTable ErrCode = 7
	// CodeTxnUnknown: the referenced transaction id is not open.
	CodeTxnUnknown ErrCode = 8
	// CodeDraining: the server is shutting down and refuses new work.
	CodeDraining ErrCode = 9
	// CodeDupKey: an insert collided with an existing primary key (or a
	// create-table with an existing table).
	CodeDupKey ErrCode = 10
)

// Response is one decoded server-to-client message. Like Request, only
// the fields of the given Type are meaningful.
type Response struct {
	Type RespType
	// Rows are a query's matching rows (uniform width).
	Rows [][]float64
	// Found is a delete's outcome.
	Found bool
	// Txn is the id RespTxn returns.
	Txn uint64
	// Results are the per-op responses of a RespBatch (no nesting).
	Results []Response
	// Code and Msg describe a RespError.
	Code ErrCode
	Msg  string
	// LSN is the watermark of a RespLSN, the leader's last LSN in a
	// RespReplState, or the snapshot cut of a RespReplSnapDone; Epoch and
	// NeedSnapshot complete a RespReplState.
	LSN          uint64
	Epoch        uint64
	NeedSnapshot bool
	// Recs are a RespReplFrames batch, in strict LSN order.
	Recs []WALRecord
	// Snap is a RespReplSnapTable bootstrap chunk.
	Snap *SnapTable
}

// --- encoding ------------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) ([]byte, error) {
	if len(s) > maxString {
		return nil, fmt.Errorf("%w: string length %d", ErrBadMessage, len(s))
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...), nil
}

func appendFloats(b []byte, vals []float64) []byte {
	b = appendU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = appendF64(b, v)
	}
	return b
}

// appendRequestBody encodes r's type byte and body. nested marks batch
// ops, which may not themselves be batches or session control messages.
func appendRequestBody(b []byte, r *Request, nested bool) ([]byte, error) {
	var err error
	b = append(b, byte(r.Type))
	if nested {
		switch r.Type {
		case ReqPoint, ReqRange, ReqRange2, ReqInsert, ReqUpdate, ReqDelete:
		default:
			return nil, fmt.Errorf("%w: type %d inside a batch", ErrBadMessage, r.Type)
		}
	}
	switch r.Type {
	case ReqHello:
		return appendStr(b, r.Tenant)
	case ReqPing, ReqTxnBegin:
		return b, nil
	case ReqPoint:
		b = appendU64(b, r.Txn)
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		b = appendU16(b, r.Col)
		return appendF64(b, r.Lo), nil
	case ReqRange:
		b = appendU64(b, r.Txn)
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		b = appendU16(b, r.Col)
		return appendF64(appendF64(b, r.Lo), r.Hi), nil
	case ReqRange2:
		b = appendU64(b, r.Txn)
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		b = appendU16(b, r.Col)
		b = appendF64(appendF64(b, r.Lo), r.Hi)
		b = appendU16(b, r.BCol)
		return appendF64(appendF64(b, r.BLo), r.BHi), nil
	case ReqInsert:
		b = appendU64(b, r.Txn)
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		return appendFloats(b, r.Row), nil
	case ReqUpdate:
		b = appendU64(b, r.Txn)
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		b = appendF64(b, r.PK)
		b = appendU16(b, r.Col)
		return appendF64(b, r.Value), nil
	case ReqDelete:
		b = appendU64(b, r.Txn)
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		return appendF64(b, r.PK), nil
	case ReqBatch:
		b = appendU32(b, uint32(len(r.Ops)))
		for i := range r.Ops {
			if b, err = appendRequestBody(b, &r.Ops[i], true); err != nil {
				return nil, err
			}
		}
		return b, nil
	case ReqTxnCommit, ReqTxnRollback:
		return appendU64(b, r.Txn), nil
	case ReqCreateTable:
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		b = appendU16(b, r.PKCol)
		b = appendU16(b, r.Parts)
		b = appendU16(b, uint16(len(r.Cols)))
		for _, c := range r.Cols {
			if b, err = appendStr(b, c); err != nil {
				return nil, err
			}
		}
		return b, nil
	case ReqCreateIndex:
		if b, err = appendStr(b, r.Table); err != nil {
			return nil, err
		}
		b = append(b, byte(r.Kind))
		b = appendU16(b, r.Col)
		return appendU16(b, r.Host), nil
	case ReqLSN:
		return b, nil
	case ReqReplSubscribe:
		b = appendU64(b, r.LSN)
		b = appendU64(b, r.Epoch)
		return appendStr(b, r.Follower)
	case ReqReplAck:
		b = appendU64(b, r.LSN)
		return appendStr(b, r.Follower)
	default:
		return nil, fmt.Errorf("%w: unknown request type %d", ErrBadMessage, r.Type)
	}
}

// appendResponseBody encodes r's type byte and body.
func appendResponseBody(b []byte, r *Response, nested bool) ([]byte, error) {
	var err error
	b = append(b, byte(r.Type))
	if nested && r.Type == RespBatch {
		return nil, fmt.Errorf("%w: nested batch response", ErrBadMessage)
	}
	switch r.Type {
	case RespOK:
		return b, nil
	case RespRows:
		width := 0
		if len(r.Rows) > 0 {
			width = len(r.Rows[0])
		}
		b = appendU32(b, uint32(len(r.Rows)))
		b = appendU16(b, uint16(width))
		for _, row := range r.Rows {
			if len(row) != width {
				return nil, fmt.Errorf("%w: ragged row set", ErrBadMessage)
			}
			for _, v := range row {
				b = appendF64(b, v)
			}
		}
		return b, nil
	case RespFound:
		if r.Found {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case RespTxn:
		return appendU64(b, r.Txn), nil
	case RespBatch:
		b = appendU32(b, uint32(len(r.Results)))
		for i := range r.Results {
			if b, err = appendResponseBody(b, &r.Results[i], true); err != nil {
				return nil, err
			}
		}
		return b, nil
	case RespError:
		b = append(b, byte(r.Code))
		return appendStr(b, r.Msg)
	case RespLSN, RespReplSnapDone:
		return appendU64(b, r.LSN), nil
	case RespReplState:
		b = appendU64(b, r.LSN)
		b = appendU64(b, r.Epoch)
		if r.NeedSnapshot {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case RespReplFrames:
		b = appendU32(b, uint32(len(r.Recs)))
		for i := range r.Recs {
			if b, err = appendWALRecord(b, &r.Recs[i]); err != nil {
				return nil, err
			}
		}
		return b, nil
	case RespReplSnapTable:
		if r.Snap == nil {
			return nil, fmt.Errorf("%w: snapshot chunk without table", ErrBadMessage)
		}
		return appendSnapTable(b, r.Snap)
	default:
		return nil, fmt.Errorf("%w: unknown response type %d", ErrBadMessage, r.Type)
	}
}

// AppendRequest appends r as one complete frame (length prefix included).
// The message encodes directly into dst — reserve the prefix, append the
// body, patch the length — so a caller reusing dst across frames encodes
// without any intermediate allocation.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	start := len(dst)
	dst = appendU32(dst, 0) // length, patched below
	out, err := appendRequestBody(append(dst, Version), r, false)
	if err != nil {
		return nil, err
	}
	return patchFrameLen(out, start)
}

// AppendResponse appends r as one complete frame (length prefix
// included), encoding directly into dst (see AppendRequest).
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	start := len(dst)
	dst = appendU32(dst, 0) // length, patched below
	out, err := appendResponseBody(append(dst, Version), r, false)
	if err != nil {
		return nil, err
	}
	return patchFrameLen(out, start)
}

// patchFrameLen writes the payload length into the prefix reserved at
// start, validating it against MaxFrame.
func patchFrameLen(b []byte, start int) ([]byte, error) {
	n := len(b) - start - 4
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(b[start:start+4], uint32(n))
	return b, nil
}

// WriteRequest writes r to w as one frame.
func WriteRequest(w io.Writer, r *Request) error {
	b, err := AppendRequest(nil, r)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteResponse writes r to w as one frame.
func WriteResponse(w io.Writer, r *Response) error {
	b, err := AppendResponse(nil, r)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// --- decoding ------------------------------------------------------------

// cursor is a bounds-checked little-endian reader over one payload. Every
// accessor reports truncation through the sticky err instead of panicking
// or reading out of range — the property FuzzDecodeFrame pins.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = ErrTruncated
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil || n < 0 || len(c.b)-c.off < n {
		c.fail()
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u8() uint8 {
	if b := c.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (c *cursor) u16() uint16 {
	if b := c.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (c *cursor) u32() uint32 {
	if b := c.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (c *cursor) u64() uint64 {
	if b := c.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) str() string {
	n := int(c.u16())
	if n > maxString {
		if c.err == nil {
			c.err = fmt.Errorf("%w: string length %d", ErrBadMessage, n)
		}
		return ""
	}
	if b := c.take(n); b != nil {
		return string(b)
	}
	return ""
}

// floats reads a u32-counted float slice, validating the count against the
// remaining bytes before allocating (a hostile count cannot force a huge
// allocation).
func (c *cursor) floats() []float64 {
	n := int(c.u32())
	if c.err != nil {
		return nil
	}
	if len(c.b)-c.off < n*8 || n < 0 {
		c.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = c.f64()
	}
	return out
}

// done rejects payloads with bytes left over after the message body.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return ErrTrailing
	}
	return nil
}

// decodeRequestBody parses one type byte + body from c.
func decodeRequestBody(c *cursor, nested bool) (Request, error) {
	var r Request
	r.Type = ReqType(c.u8())
	if nested {
		switch r.Type {
		case ReqPoint, ReqRange, ReqRange2, ReqInsert, ReqUpdate, ReqDelete:
		default:
			return r, fmt.Errorf("%w: type %d inside a batch", ErrBadMessage, r.Type)
		}
	}
	switch r.Type {
	case ReqHello:
		r.Tenant = c.str()
	case ReqPing, ReqTxnBegin:
	case ReqPoint:
		r.Txn, r.Table, r.Col, r.Lo = c.u64(), c.str(), c.u16(), c.f64()
	case ReqRange:
		r.Txn, r.Table, r.Col = c.u64(), c.str(), c.u16()
		r.Lo, r.Hi = c.f64(), c.f64()
	case ReqRange2:
		r.Txn, r.Table, r.Col = c.u64(), c.str(), c.u16()
		r.Lo, r.Hi = c.f64(), c.f64()
		r.BCol, r.BLo, r.BHi = c.u16(), c.f64(), c.f64()
	case ReqInsert:
		r.Txn, r.Table, r.Row = c.u64(), c.str(), c.floats()
	case ReqUpdate:
		r.Txn, r.Table, r.PK = c.u64(), c.str(), c.f64()
		r.Col, r.Value = c.u16(), c.f64()
	case ReqDelete:
		r.Txn, r.Table, r.PK = c.u64(), c.str(), c.f64()
	case ReqBatch:
		n := int(c.u32())
		// Each op carries at least a type byte: a count beyond the
		// remaining bytes is structurally impossible.
		if c.err == nil && (n < 0 || n > len(c.b)-c.off) {
			return r, fmt.Errorf("%w: batch op count %d", ErrBadMessage, n)
		}
		for i := 0; i < n && c.err == nil; i++ {
			op, err := decodeRequestBody(c, true)
			if err != nil {
				return r, err
			}
			r.Ops = append(r.Ops, op)
		}
	case ReqTxnCommit, ReqTxnRollback:
		r.Txn = c.u64()
	case ReqCreateTable:
		r.Table, r.PKCol, r.Parts = c.str(), c.u16(), c.u16()
		n := int(c.u16())
		for i := 0; i < n && c.err == nil; i++ {
			r.Cols = append(r.Cols, c.str())
		}
	case ReqCreateIndex:
		r.Table = c.str()
		r.Kind = IndexKind(c.u8())
		r.Col, r.Host = c.u16(), c.u16()
		if c.err == nil && r.Kind > IndexHermit {
			return r, fmt.Errorf("%w: index kind %d", ErrBadMessage, r.Kind)
		}
	case ReqLSN:
	case ReqReplSubscribe:
		r.LSN, r.Epoch, r.Follower = c.u64(), c.u64(), c.str()
	case ReqReplAck:
		r.LSN, r.Follower = c.u64(), c.str()
	default:
		return r, fmt.Errorf("%w: unknown request type %d", ErrBadMessage, r.Type)
	}
	return r, c.err
}

// decodeResponseBody parses one type byte + body from c.
func decodeResponseBody(c *cursor, nested bool) (Response, error) {
	var r Response
	r.Type = RespType(c.u8())
	if nested && r.Type == RespBatch {
		return r, fmt.Errorf("%w: nested batch response", ErrBadMessage)
	}
	switch r.Type {
	case RespOK:
	case RespRows:
		n, width := int(c.u32()), int(c.u16())
		if c.err == nil && (n < 0 || width < 0 || (width > 0 && n > (len(c.b)-c.off)/(width*8))) {
			c.fail()
			return r, c.err
		}
		if c.err == nil && width == 0 && n != 0 {
			return r, fmt.Errorf("%w: %d zero-width rows", ErrBadMessage, n)
		}
		for i := 0; i < n && c.err == nil; i++ {
			row := make([]float64, width)
			for j := range row {
				row[j] = c.f64()
			}
			r.Rows = append(r.Rows, row)
		}
	case RespFound:
		r.Found = c.u8() != 0
	case RespTxn:
		r.Txn = c.u64()
	case RespBatch:
		n := int(c.u32())
		if c.err == nil && (n < 0 || n > len(c.b)-c.off) {
			return r, fmt.Errorf("%w: batch result count %d", ErrBadMessage, n)
		}
		for i := 0; i < n && c.err == nil; i++ {
			res, err := decodeResponseBody(c, true)
			if err != nil {
				return r, err
			}
			r.Results = append(r.Results, res)
		}
	case RespError:
		r.Code = ErrCode(c.u8())
		r.Msg = c.str()
	case RespLSN, RespReplSnapDone:
		r.LSN = c.u64()
	case RespReplState:
		r.LSN = c.u64()
		r.Epoch = c.u64()
		r.NeedSnapshot = c.u8() != 0
	case RespReplFrames:
		n := int(c.u32())
		// Each record carries at least its fixed header: a count beyond
		// the remaining bytes is structurally impossible.
		if c.err == nil && (n < 0 || n > len(c.b)-c.off) {
			return r, fmt.Errorf("%w: frame batch count %d", ErrBadMessage, n)
		}
		last := uint64(0)
		for i := 0; i < n && c.err == nil; i++ {
			rec := decodeWALRecord(c)
			if c.err != nil {
				break
			}
			// The stream invariant — strictly increasing LSNs — is checked
			// at the framing layer so a corrupt batch is refused whole,
			// before any record could be applied.
			if rec.LSN <= last {
				return r, fmt.Errorf("%w: frame batch LSN %d after %d", ErrBadMessage, rec.LSN, last)
			}
			last = rec.LSN
			r.Recs = append(r.Recs, rec)
		}
	case RespReplSnapTable:
		st, err := decodeSnapTable(c)
		if err != nil {
			return r, err
		}
		r.Snap = st
	default:
		return r, fmt.Errorf("%w: unknown response type %d", ErrBadMessage, r.Type)
	}
	return r, c.err
}

// DecodeRequest parses one frame payload (version byte onward — the bytes
// ReadFrame returns). The whole payload must be consumed. Decoded
// messages never alias the payload (strings, float slices and blobs are
// all copied out), so the caller may reuse the payload buffer.
func DecodeRequest(payload []byte) (Request, error) {
	c, err := payloadCursor(payload)
	if err != nil {
		return Request{}, err
	}
	r, err := decodeRequestBody(&c, false)
	if err != nil {
		return r, err
	}
	return r, c.done()
}

// DecodeResponse parses one frame payload (version byte onward). Like
// DecodeRequest, the result never aliases the payload.
func DecodeResponse(payload []byte) (Response, error) {
	c, err := payloadCursor(payload)
	if err != nil {
		return Response{}, err
	}
	r, err := decodeResponseBody(&c, false)
	if err != nil {
		return r, err
	}
	return r, c.done()
}

// payloadCursor validates the version byte and positions a cursor over
// the body. The cursor is a value (it never escapes the decode call), so
// setting one up costs no allocation.
func payloadCursor(payload []byte) (cursor, error) {
	if len(payload) == 0 {
		return cursor{}, ErrTruncated
	}
	if payload[0] != Version {
		return cursor{}, fmt.Errorf("%w: %d", ErrVersion, payload[0])
	}
	return cursor{b: payload[1:]}, nil
}

// ReadFrame reads exactly one frame from r and returns its payload
// (version byte onward). It reads the 4-byte length prefix and then
// exactly that many bytes — never more, so a bad frame cannot desync the
// caller's stream position past its own declared length.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameBuf(r, nil)
}

// ReadFrameBuf is ReadFrame into a caller-supplied buffer: the payload
// lands in buf when it fits (buf is grown otherwise — never past
// MaxFrame, which the length prefix is checked against first) and the
// filled slice is returned. Decoded messages never alias the payload, so
// one buffer can serve a connection's whole read loop.
func ReadFrameBuf(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(r io.Reader) (Request, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(payload)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r io.Reader) (Response, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(payload)
}
