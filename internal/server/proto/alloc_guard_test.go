package proto

import (
	"runtime/debug"
	"testing"
)

// Allocation guards for the wire hot path: encoding into a reused buffer
// must not allocate at all (frames build directly in dst — reserve the
// length prefix, append the body, patch the length), and decoding must
// allocate only the copied-out message fields, never scratch.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector bookkeeping under -race")
	}
}

func TestAppendRequestZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	req := Request{Type: ReqPoint, Table: "orders", Col: 2, Lo: 17}
	buf, err := AppendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(200, func() {
		b, err := AppendRequest(buf[:0], &req)
		if err != nil {
			t.Fatal(err)
		}
		buf = b
	})
	if allocs != 0 {
		t.Fatalf("AppendRequest into reused buffer allocates %.2f/op, want 0", allocs)
	}
}

func TestAppendResponseZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	rows := [][]float64{{1, 2}, {3, 4}}
	resp := Response{Type: RespRows, Rows: rows}
	buf, err := AppendResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(200, func() {
		b, err := AppendResponse(buf[:0], &resp)
		if err != nil {
			t.Fatal(err)
		}
		buf = b
	})
	if allocs != 0 {
		t.Fatalf("AppendResponse into reused buffer allocates %.2f/op, want 0", allocs)
	}
}

// TestRoundTripSteadyStateAllocs pins the full encode+decode round trip
// for a point query: the only tolerated allocations are the decoded
// request's own copied-out fields (its table name), never encode or
// cursor scratch.
func TestRoundTripSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	req := Request{Type: ReqPoint, Table: "orders", Col: 2, Lo: 17}
	buf, err := AppendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(200, func() {
		b, err := AppendRequest(buf[:0], &req)
		if err != nil {
			t.Fatal(err)
		}
		buf = b
		got, err := DecodeRequest(buf[4:]) // past the length prefix
		if err != nil || got.Table != "orders" {
			t.Fatalf("decode: %v %+v", err, got)
		}
	})
	// One allocation: the decoded Table string (copied out of the payload
	// so the frame buffer can be reused).
	if allocs > 1 {
		t.Fatalf("point-read round trip allocates %.2f/op, want <= 1", allocs)
	}
}
