package proto

import (
	"bytes"
	"testing"
)

// This file stresses the replication wire messages specifically: torn
// streams (every truncation point), corrupted frames (every flipped
// bit), and fuzzed bytes must never panic the decoder, and any
// RespReplFrames that decodes successfully must uphold the stream
// invariant — strictly increasing LSNs — that the follower's
// partial-group protection builds on.

func eqWALRecord(a, b WALRecord) bool {
	return a.LSN == b.LSN && a.Op == b.Op && a.Part == b.Part && a.Txn == b.Txn &&
		a.Table == b.Table && bytes.Equal(a.Payload, b.Payload)
}

func eqSnapTable(a, b SnapTable) bool {
	if a.Name != b.Name || a.PKCol != b.PKCol || a.Parts != b.Parts ||
		!bytes.Equal(a.DefsJSON, b.DefsJSON) {
		return false
	}
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return eqRows(a.Rows, b.Rows)
}

// replSamples returns the repl subset of the sample messages as encoded
// frames.
func replSamples(tb testing.TB) [][]byte {
	var frames [][]byte
	for _, req := range sampleRequests() {
		if req.Type != ReqLSN && req.Type != ReqReplSubscribe && req.Type != ReqReplAck {
			continue
		}
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			tb.Fatal(err)
		}
		frames = append(frames, frame)
	}
	for _, resp := range sampleResponses() {
		switch resp.Type {
		case RespLSN, RespReplState, RespReplFrames, RespReplSnapTable, RespReplSnapDone:
		default:
			continue
		}
		frame, err := AppendResponse(nil, &resp)
		if err != nil {
			tb.Fatal(err)
		}
		frames = append(frames, frame)
	}
	if len(frames) < 8 {
		tb.Fatalf("only %d repl sample frames; sample sets lost their repl coverage", len(frames))
	}
	return frames
}

// checkReplInvariants asserts the properties the replication layer
// relies on for any successfully decoded response.
func checkReplInvariants(t *testing.T, resp Response) {
	t.Helper()
	if resp.Type == RespReplFrames {
		var last uint64
		for i, rec := range resp.Recs {
			if i > 0 && rec.LSN <= last {
				t.Fatalf("decoded frame batch with non-increasing LSN %d after %d", rec.LSN, last)
			}
			last = rec.LSN
		}
	}
	if resp.Type == RespReplSnapTable {
		if resp.Snap == nil {
			t.Fatal("RespReplSnapTable decoded with nil Snap")
		}
		for _, row := range resp.Snap.Rows {
			if len(row) != len(resp.Snap.Cols) {
				t.Fatalf("snapshot row width %d != schema %d", len(row), len(resp.Snap.Cols))
			}
		}
	}
}

// FuzzDecodeReplFrame explores the replication message space: seeds are
// valid repl frames plus truncated and bit-flipped variants; arbitrary
// mutations must never panic, and survivors must uphold the stream
// invariants. `go test` runs the corpus; -fuzz=FuzzDecodeReplFrame digs.
func FuzzDecodeReplFrame(f *testing.F) {
	for _, frame := range replSamples(f) {
		f.Add(frame)
		if len(frame) > 6 {
			f.Add(frame[:len(frame)/2])
			flipped := append([]byte(nil), frame...)
			flipped[6] ^= 0x10
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := ReadRequest(bytes.NewReader(data)); err == nil {
			frame, err := AppendRequest(nil, &req)
			if err != nil {
				t.Fatalf("decoded request does not re-encode: %v\nreq: %+v", err, req)
			}
			again, err := ReadRequest(bytes.NewReader(frame))
			if err != nil || !eqRequest(req, again) {
				t.Fatalf("request changed across re-encode (%v)\n was: %+v\n now: %+v", err, req, again)
			}
		}
		if resp, err := ReadResponse(bytes.NewReader(data)); err == nil {
			checkReplInvariants(t, resp)
			frame, err := AppendResponse(nil, &resp)
			if err != nil {
				t.Fatalf("decoded response does not re-encode: %v\nresp: %+v", err, resp)
			}
			again, err := ReadResponse(bytes.NewReader(frame))
			if err != nil || !eqResponse(resp, again) {
				t.Fatalf("response changed across re-encode (%v)\n was: %+v\n now: %+v", err, resp, again)
			}
		}
	})
}

// TestReplFrameTruncationSweep decodes every prefix of every repl sample
// frame: a torn stream must surface as an error (or a still-valid
// shorter message), never a panic, and never a frame batch violating the
// LSN invariant.
func TestReplFrameTruncationSweep(t *testing.T) {
	for _, frame := range replSamples(t) {
		for cut := 0; cut < len(frame); cut++ {
			if resp, err := ReadResponse(bytes.NewReader(frame[:cut])); err == nil {
				checkReplInvariants(t, resp)
			}
			// Requests too: a torn ack/subscribe must error, not panic.
			_, _ = ReadRequest(bytes.NewReader(frame[:cut]))
		}
	}
}

// TestReplFrameBitFlipSweep decodes every single-bit corruption of every
// repl sample frame. Most flips must fail decoding; any that slip
// through (flips in float payloads, say) must still satisfy the stream
// invariants and re-encode cleanly.
func TestReplFrameBitFlipSweep(t *testing.T) {
	for _, frame := range replSamples(t) {
		for pos := 0; pos < len(frame); pos++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), frame...)
				mut[pos] ^= 1 << bit
				if resp, err := ReadResponse(bytes.NewReader(mut)); err == nil {
					checkReplInvariants(t, resp)
					if _, err := AppendResponse(nil, &resp); err != nil {
						t.Fatalf("bit flip %d:%d decoded but does not re-encode: %v", pos, bit, err)
					}
				}
				if req, err := ReadRequest(bytes.NewReader(mut)); err == nil {
					if _, err := AppendRequest(nil, &req); err != nil {
						t.Fatalf("bit flip %d:%d decoded request does not re-encode: %v", pos, bit, err)
					}
				}
			}
		}
	}
}
