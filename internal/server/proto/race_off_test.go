//go:build !race

package proto

// raceEnabled reports whether this test binary was built with the race
// detector; allocation-count guards skip under it.
const raceEnabled = false
