// Package server is hermitd's serving tier: a TCP listener speaking the
// internal/server/proto wire protocol (plus an optional HTTP/JSON
// fallback, see http.go), per-connection sessions holding open
// transactions, read-request pipelining into the engine's batch executor,
// server-wide admission control, per-tenant namespaces with op quotas,
// and graceful drain on shutdown.
//
// Layering: proto knows bytes, this package knows connections and
// sessions, and backend.go is the only file that touches the engine — the
// separation ROADMAP item 1 asks for, so a replication router can later
// sit where the backend sits today.
package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hermit/internal/engine"
	"hermit/internal/repl"
	"hermit/internal/server/proto"
)

// Options tunes a Server. The zero value picks sensible defaults.
type Options struct {
	// MaxInflight caps requests admitted server-wide at once (queued or
	// executing, until their response is written). Beyond it, requests
	// are answered with CodeOverloaded instead of executing. Default 256.
	MaxInflight int
	// QueueDepth is each session's pipelining queue capacity. Default 128.
	QueueDepth int
	// Workers is the per-batch worker count handed to ExecuteBatch
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// TenantOps caps the total operations a tenant may issue over the
	// server's lifetime (a deliberately simple quota: batches cost their
	// op count). 0 means unlimited.
	TenantOps int64
	// DrainTimeout bounds Close's graceful drain before connections are
	// force-closed. Default 5s.
	DrainTimeout time.Duration
	// HTTPAddr, when non-empty, also serves the HTTP/JSON fallback
	// endpoint on that address.
	HTTPAddr string
	// Leader, when non-nil, enables replication subscriptions on this
	// server (and quorum write gating when the leader is configured for
	// AckQuorum).
	Leader *repl.Leader
	// Follower, when non-nil, puts the server in read-only follower mode:
	// mutations, transactions and DDL are refused with CodeNotLeader, and
	// reads serve from the follower's database at its applied watermark.
	Follower *repl.Follower
	// Promote, when non-nil, is invoked by POST /v1/promote — typically
	// wired by hermitd to promote a follower into a leader in place.
	Promote func() error
}

func (o Options) sanitized() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// Stats are the server's monotonic counters (except the two gauges,
// ConnsActive and TxnsOpen). Snapshot them with Server.Stats.
type Stats struct {
	// Conns counts accepted connections; ConnsActive is the live gauge.
	Conns, ConnsActive atomic.Int64
	// Requests counts requests dequeued for handling (including rejected
	// ones); Coalesced counts reads that rode along in a pipelined batch
	// instead of executing alone.
	Requests, Coalesced atomic.Int64
	// Rejected counts admission-control rejections; QuotaRejected counts
	// tenant-quota rejections.
	Rejected, QuotaRejected atomic.Int64
	// TxnsOpen is the gauge of wire transactions currently open.
	TxnsOpen atomic.Int64
}

// StatsSnapshot is a plain-value copy of Stats (JSON-friendly for the
// HTTP endpoint), plus the engine's block-storage counters — block
// counts, compaction backlog and write amplification — so an operator
// can watch the storage tier from the same /v1/stats poll.
type StatsSnapshot struct {
	Conns         int64 `json:"conns"`
	ConnsActive   int64 `json:"conns_active"`
	Requests      int64 `json:"requests"`
	Coalesced     int64 `json:"coalesced"`
	Rejected      int64 `json:"rejected"`
	QuotaRejected int64 `json:"quota_rejected"`
	TxnsOpen      int64 `json:"txns_open"`

	Storage engine.StorageStats `json:"storage"`
	Repl    *ReplStats          `json:"repl,omitempty"`
}

// ReplStats is the replication section of StatsSnapshot: the node's role
// plus the matching side's watermarks (per-follower lag on a leader, the
// applied/durable LSNs on a follower).
type ReplStats struct {
	Role     string              `json:"role"` // "leader" | "follower"
	Leader   *repl.LeaderStats   `json:"leader,omitempty"`
	Follower *repl.FollowerStats `json:"follower,omitempty"`
}

// tenantQuota is one tenant's remaining op budget.
type tenantQuota struct {
	remaining atomic.Int64
	unlimited bool
}

func (q *tenantQuota) charge(n int64) bool {
	if q == nil || q.unlimited {
		return true
	}
	if q.remaining.Add(-n) < 0 {
		// Leave the counter floored so one huge batch cannot be retried
		// into a free pass once the budget is gone.
		return false
	}
	return true
}

// Server serves a DurableDB over the wire protocol. Create with New,
// start with Serve or Start, stop with Close.
type Server struct{ s *server }

// server is the implementation (kept unexported so the session/backend
// files talk to a narrow internal surface).
type server struct {
	opts  Options
	stats Stats

	// backend is swappable: a follower's snapshot bootstrap replaces the
	// engine underneath the server (see SwapEngine), and promotion can
	// change the node's role. Sessions re-read these per request.
	backend  atomic.Pointer[backend]
	leader   atomic.Pointer[repl.Leader]
	follower atomic.Pointer[repl.Follower]
	promote  func() error

	inflight chan struct{}

	quotaMu sync.Mutex
	quotas  map[string]*tenantQuota

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	lnMu     sync.Mutex
	ln       net.Listener
	httpLn   net.Listener
	httpStop func() error
	draining atomic.Bool
	closed   atomic.Bool
	wg       sync.WaitGroup

	serveErr chan error
}

// New wraps an open DurableDB in a Server. The database must outlive the
// server; the server never closes it.
func New(d *engine.DurableDB, opts Options) *Server {
	opts = opts.sanitized()
	s := &server{
		opts:     opts,
		promote:  opts.Promote,
		inflight: make(chan struct{}, opts.MaxInflight),
		quotas:   make(map[string]*tenantQuota),
		conns:    make(map[net.Conn]struct{}),
		serveErr: make(chan error, 1),
	}
	s.backend.Store(newBackend(d, opts.Workers))
	if opts.Leader != nil {
		s.leader.Store(opts.Leader)
	}
	if opts.Follower != nil {
		s.follower.Store(opts.Follower)
	}
	return &Server{s: s}
}

// be returns the current backend (re-read per request: snapshot bootstrap
// swaps it).
func (sv *server) be() *backend { return sv.backend.Load() }

// SwapEngine re-points the server at a new database — the follower-mode
// hook for snapshot bootstrap, where the local database is wiped and
// rebuilt. Follower sessions hold no transactions (writes are refused),
// so in-flight requests at worst answer from the outgoing engine.
func (s *Server) SwapEngine(d *engine.DurableDB) {
	s.s.backend.Store(newBackend(d, s.s.opts.Workers))
}

// BecomeLeader switches a follower-mode server into leader mode in place
// (after repl.Follower.Promote): writes are accepted again and l serves
// replication subscriptions.
func (s *Server) BecomeLeader(l *repl.Leader) {
	s.s.leader.Store(l)
	s.s.follower.Store(nil)
}

// ErrServerClosed is returned by Serve after Close begins shutdown.
var ErrServerClosed = errors.New("server: closed")

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine. Use Addr to learn the bound address and Close to stop.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.s.setListener(ln)
	if err := s.s.startHTTP(); err != nil {
		ln.Close()
		return err
	}
	go func() { s.s.serveErr <- s.Serve(ln) }()
	return nil
}

// startHTTP binds the HTTP fallback listener once, if configured. It is
// synchronous so HTTPAddr is usable as soon as Start returns.
func (sv *server) startHTTP() error {
	sv.lnMu.Lock()
	defer sv.lnMu.Unlock()
	if sv.opts.HTTPAddr == "" || sv.httpLn != nil {
		return nil
	}
	stop, ln, err := sv.serveHTTP(sv.opts.HTTPAddr)
	if err != nil {
		return err
	}
	sv.httpLn, sv.httpStop = ln, stop
	return nil
}

func (sv *server) setListener(ln net.Listener) {
	sv.lnMu.Lock()
	sv.ln = ln
	sv.lnMu.Unlock()
}

func (sv *server) listener() net.Listener {
	sv.lnMu.Lock()
	defer sv.lnMu.Unlock()
	return sv.ln
}

// Serve accepts connections on ln until Close. It blocks; it returns
// ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	sv := s.s
	sv.setListener(ln)
	if err := sv.startHTTP(); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if sv.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		sv.stats.Conns.Add(1)
		sv.stats.ConnsActive.Add(1)
		sv.register(conn)
		sv.wg.Add(1)
		sess := &session{
			srv:     sv,
			conn:    conn,
			bw:      bufio.NewWriterSize(conn, 64<<10),
			txns:    make(map[uint64]*engine.DurableTxn),
			subStop: make(chan struct{}),
		}
		go sess.serve()
	}
}

// Addr returns the listener's address (nil before Serve/Start binds one).
func (s *Server) Addr() net.Addr {
	ln := s.s.listener()
	if ln == nil {
		return nil
	}
	return ln.Addr()
}

// HTTPAddr returns the HTTP fallback endpoint's bound address, or nil
// when Options.HTTPAddr was empty.
func (s *Server) HTTPAddr() net.Addr {
	s.s.lnMu.Lock()
	defer s.s.lnMu.Unlock()
	if s.s.httpLn == nil {
		return nil
	}
	return s.s.httpLn.Addr()
}

// Stats snapshots the server's counters.
func (s *Server) Stats() StatsSnapshot {
	st := &s.s.stats
	snap := StatsSnapshot{
		Conns:         st.Conns.Load(),
		ConnsActive:   st.ConnsActive.Load(),
		Requests:      st.Requests.Load(),
		Coalesced:     st.Coalesced.Load(),
		Rejected:      st.Rejected.Load(),
		QuotaRejected: st.QuotaRejected.Load(),
		TxnsOpen:      st.TxnsOpen.Load(),
		Storage:       s.s.be().d.StorageStats(),
	}
	if fo := s.s.follower.Load(); fo != nil {
		fs := fo.Stats()
		snap.Repl = &ReplStats{Role: "follower", Follower: &fs}
	} else if l := s.s.leader.Load(); l != nil {
		ls := l.Stats()
		snap.Repl = &ReplStats{Role: "leader", Leader: &ls}
	}
	return snap
}

// Close gracefully drains the server: stop accepting, stop reading new
// requests, finish queued work and write its responses, roll back
// transactions still open, then close connections. Sessions that do not
// drain within DrainTimeout are force-closed (their deferred cleanup
// still rolls back and releases snapshots). Safe to call once.
func (s *Server) Close() error {
	sv := s.s
	if sv.closed.Swap(true) {
		return nil
	}
	sv.draining.Store(true)
	if ln := sv.listener(); ln != nil {
		ln.Close()
	}
	sv.lnMu.Lock()
	httpStop := sv.httpStop
	sv.lnMu.Unlock()
	if httpStop != nil {
		httpStop()
	}

	// Unblock session readers parked in a frame read: an expired read
	// deadline ends the reader loop, the executor drains what was queued
	// (writes stay usable — only the read side is deadlined), and the
	// session's deferred cleanup rolls back open transactions.
	sv.connMu.Lock()
	for c := range sv.conns {
		c.SetReadDeadline(time.Now())
	}
	sv.connMu.Unlock()

	done := make(chan struct{})
	go func() { sv.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(sv.opts.DrainTimeout):
		// Stragglers get a hard close; their deferred cleanup still runs.
		sv.connMu.Lock()
		for c := range sv.conns {
			c.Close()
		}
		sv.connMu.Unlock()
		select {
		case <-done:
		case <-time.After(sv.opts.DrainTimeout):
		}
	}
	if sv.listener() != nil {
		select {
		case err := <-sv.serveErr:
			if err != ErrServerClosed {
				return err
			}
		default:
		}
	}
	return nil
}

// register/unregister maintain the live-connection set Close sweeps.
func (sv *server) register(c net.Conn) {
	sv.connMu.Lock()
	sv.conns[c] = struct{}{}
	sv.connMu.Unlock()
}

func (sv *server) unregister(c net.Conn) {
	sv.connMu.Lock()
	delete(sv.conns, c)
	sv.connMu.Unlock()
}

// acquireInflight takes one admission token without blocking.
func (sv *server) acquireInflight() bool {
	select {
	case sv.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseInflight returns one admission token.
func (sv *server) releaseInflight() { <-sv.inflight }

// quorumGate holds a successful write response until a quorum of
// followers acks the leader's log position — the AckQuorum contract: an
// acknowledged write survives leader loss, because the promoted
// highest-LSN follower necessarily holds it. On timeout the response is
// replaced with an error (the write is durable locally; its replication
// state is unknown, which the client must treat as commit-uncertain).
func (sv *server) quorumGate(resp proto.Response) proto.Response {
	l := sv.leader.Load()
	if l == nil || l.AckMode() != repl.AckQuorum || resp.Type == proto.RespError {
		return resp
	}
	if err := l.WaitQuorum(sv.be().d.LastLSN(), l.QuorumTimeout()); err != nil {
		return proto.Response{Type: proto.RespError, Code: proto.CodeInternal,
			Msg: "replication quorum not reached; commit state unknown"}
	}
	return resp
}

// quotaFor returns the (shared) quota bucket for a tenant.
func (sv *server) quotaFor(tenant string) *tenantQuota {
	sv.quotaMu.Lock()
	defer sv.quotaMu.Unlock()
	if q, ok := sv.quotas[tenant]; ok {
		return q
	}
	q := &tenantQuota{unlimited: sv.opts.TenantOps <= 0}
	q.remaining.Store(sv.opts.TenantOps)
	sv.quotas[tenant] = q
	return q
}
