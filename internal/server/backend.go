package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"hermit/internal/engine"
	"hermit/internal/partition"
	"hermit/internal/server/proto"
	"hermit/internal/storage"
)

// isQuery reports whether an op kind is one of the three read kinds.
func isQuery(k engine.OpKind) bool {
	switch k {
	case engine.OpPoint, engine.OpRange, engine.OpRange2:
		return true
	}
	return false
}

// backend adapts the wire protocol's operation surface onto a DurableDB.
// It owns the two impedance mismatches the engine does not hide:
//
//   - Partitioned logical tables. DurableDB mutations auto-route to hash
//     partitions, but queries on a partitioned logical name must go
//     through a partition.Table wrapper (the engine only knows the t#i
//     physical tables). The backend caches one wrapper per partitioned
//     table and routes per request.
//
//   - RID lifetime. Queries return version RIDs; between the query and
//     the row fetch, version GC could reclaim them. Every query path here
//     holds a guard snapshot — registered before the query's own snapshot,
//     so its timestamp is no newer — across the fetch, which pins the GC
//     horizon below anything the query can see.
//
// Tenant namespaces are pure name mangling at this layer: tenant "acme"'s
// table "users" is the engine table "acme@users". '@' is reserved in
// client-supplied names so tenants cannot collide or escape, and '#' is
// reserved by the partitioning layer.
type backend struct {
	d       *engine.DurableDB
	workers int

	mu    sync.Mutex
	parts map[string]*partition.Table
}

func newBackend(d *engine.DurableDB, workers int) *backend {
	return &backend{d: d, workers: workers, parts: make(map[string]*partition.Table)}
}

// errReject wraps a proto error code so session code can map engine
// failures onto wire responses without string matching.
type errReject struct {
	code proto.ErrCode
	msg  string
}

func (e errReject) Error() string { return e.msg }

func reject(code proto.ErrCode, format string, args ...any) error {
	return errReject{code: code, msg: fmt.Sprintf(format, args...)}
}

// errorResponse maps an error — errReject or a raw engine error — onto a
// wire error response.
func errorResponse(err error) proto.Response {
	code := proto.CodeInternal
	var rej errReject
	switch {
	case errors.As(err, &rej):
		code = rej.code
	case errors.Is(err, engine.ErrWriteConflict):
		code = proto.CodeConflict
	case errors.Is(err, engine.ErrTxnAborted):
		code = proto.CodeAborted
	case errors.Is(err, engine.ErrTxnDone):
		code = proto.CodeTxnUnknown
	case errors.Is(err, engine.ErrNoSuchTable):
		code = proto.CodeNoTable
	case errors.Is(err, engine.ErrDupKey), errors.Is(err, engine.ErrDupTable):
		code = proto.CodeDupKey
	}
	msg := err.Error()
	if len(msg) > 512 {
		msg = msg[:512]
	}
	return proto.Response{Type: proto.RespError, Code: code, Msg: msg}
}

// physical maps a client-visible table name into the tenant's namespace,
// rejecting names that could cross namespaces or collide with the
// partition layer's physical names.
func physical(tenant, table string) (string, error) {
	if table == "" || strings.ContainsAny(table, "@#") {
		return "", reject(proto.CodeBadRequest, "invalid table name %q", table)
	}
	if tenant == "" {
		return table, nil
	}
	return tenant + "@" + table, nil
}

// validTenant rejects tenant names that could escape the '@' mangling.
func validTenant(tenant string) error {
	if len(tenant) > 64 || strings.ContainsAny(tenant, "@#") {
		return reject(proto.CodeBadRequest, "invalid tenant name %q", tenant)
	}
	return nil
}

// resolve returns the partition wrapper for a partitioned logical table,
// or nil for a plain table. name is already physical (tenant-mangled).
func (b *backend) resolve(name string) (*partition.Table, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if pt, ok := b.parts[name]; ok {
		return pt, nil
	}
	n, err := b.d.Partitions(name)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	pt, err := partition.OpenDurable(b.d, name, partition.Options{Workers: b.workers})
	if err != nil {
		return nil, err
	}
	b.parts[name] = pt
	return pt, nil
}

// forget drops a cached wrapper (used when DDL changes a table's shape —
// currently only index creation, which the wrapper reflects lazily enough
// that a re-open is the simplest correctness story).
func (b *backend) forget(name string) {
	b.mu.Lock()
	delete(b.parts, name)
	b.mu.Unlock()
}

// engineOp converts a wire op into an engine.Op against physical table
// names. Only the six batchable kinds appear here (proto enforces that).
func engineOp(tenant string, r *proto.Request) (engine.Op, error) {
	name, err := physical(tenant, r.Table)
	if err != nil {
		return engine.Op{}, err
	}
	op := engine.Op{Table: name}
	switch r.Type {
	case proto.ReqPoint:
		op.Kind, op.Col, op.Lo = engine.OpPoint, int(r.Col), r.Lo
	case proto.ReqRange:
		op.Kind, op.Col, op.Lo, op.Hi = engine.OpRange, int(r.Col), r.Lo, r.Hi
	case proto.ReqRange2:
		op.Kind, op.Col, op.Lo, op.Hi = engine.OpRange2, int(r.Col), r.Lo, r.Hi
		op.BCol, op.BLo, op.BHi = int(r.BCol), r.BLo, r.BHi
	case proto.ReqInsert:
		op.Kind, op.Row = engine.OpInsert, r.Row
	case proto.ReqUpdate:
		op.Kind, op.PK, op.Col, op.Value = engine.OpUpdate, r.PK, int(r.Col), r.Value
	case proto.ReqDelete:
		op.Kind, op.PK = engine.OpDelete, r.PK
	default:
		return engine.Op{}, reject(proto.CodeBadRequest, "op type %d not batchable", r.Type)
	}
	return op, nil
}

// fetchPlain materialises query-result rows from a plain engine table.
func (b *backend) fetchPlain(table string, rids []storage.RID) ([][]float64, error) {
	tb, err := b.d.Table(table)
	if err != nil {
		return nil, err
	}
	rows, err := tb.FetchRows(rids, nil)
	if err != nil {
		return nil, err
	}
	// FetchRows reuses one backing buffer per call; copy before the next
	// fetch (and before the response outlives the guard snapshot scope).
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out, nil
}

// fetchPart materialises query-result rows from a partitioned table.
func fetchPart(pt *partition.Table, rids []partition.RID) ([][]float64, error) {
	out := make([][]float64, 0, len(rids))
	for _, rid := range rids {
		row, err := pt.FetchRow(rid)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// runReads executes a coalesced group of auto-commit read requests — the
// session's pipelining unit. Plain-table ops funnel into one
// DurableDB.ExecuteBatch call (shared snapshot, worker pool); ops on each
// partitioned table funnel into that table's ExecuteBatch. A guard
// snapshot taken before either call covers the row fetches. Responses
// align positionally with reqs.
func (b *backend) runReads(tenant string, reqs []proto.Request) []proto.Response {
	out := make([]proto.Response, len(reqs))

	guard := b.d.Snapshot()
	defer guard.Release()

	var plainOps []engine.Op
	var plainIdx []int
	partOps := make(map[*partition.Table][]engine.Op)
	partIdx := make(map[*partition.Table][]int)

	for i := range reqs {
		op, err := engineOp(tenant, &reqs[i])
		if err != nil {
			out[i] = errorResponse(err)
			continue
		}
		pt, err := b.resolve(op.Table)
		if err != nil {
			out[i] = errorResponse(err)
			continue
		}
		if pt == nil {
			plainOps, plainIdx = append(plainOps, op), append(plainIdx, i)
		} else {
			partOps[pt], partIdx[pt] = append(partOps[pt], op), append(partIdx[pt], i)
		}
	}

	if len(plainOps) > 0 {
		results := b.d.ExecuteBatch(plainOps, b.workers)
		for k, res := range results {
			i := plainIdx[k]
			if res.Err != nil {
				out[i] = errorResponse(res.Err)
				continue
			}
			rows, err := b.fetchPlain(plainOps[k].Table, res.RIDs)
			if err != nil {
				out[i] = errorResponse(err)
				continue
			}
			out[i] = proto.Response{Type: proto.RespRows, Rows: rows}
		}
	}
	for pt, ops := range partOps {
		results := pt.ExecuteBatch(ops, b.workers)
		for k, res := range results {
			i := partIdx[pt][k]
			if res.Err != nil {
				out[i] = errorResponse(res.Err)
				continue
			}
			rows, err := fetchPart(pt, res.RIDs)
			if err != nil {
				out[i] = errorResponse(err)
				continue
			}
			out[i] = proto.Response{Type: proto.RespRows, Rows: rows}
		}
	}
	return out
}

// runBatch executes a wire batch atomically. All-plain batches go through
// DurableDB.ExecuteBatch; a batch whose ops all target one partitioned
// table goes through that table's cross-partition ExecuteBatch. A batch
// that queries a partitioned table while also touching other tables is
// refused (the engine executor cannot resolve partitioned logical names
// for reads) — mutations on partitioned tables inside mixed batches are
// fine, since the transaction layer auto-routes them.
func (b *backend) runBatch(tenant string, r *proto.Request) proto.Response {
	if len(r.Ops) == 0 {
		return proto.Response{Type: proto.RespBatch}
	}
	ops := make([]engine.Op, len(r.Ops))
	for i := range r.Ops {
		op, err := engineOp(tenant, &r.Ops[i])
		if err != nil {
			return errorResponse(err)
		}
		ops[i] = op
	}

	// Classify the referenced tables.
	var singlePart *partition.Table
	singleTable, mixed := ops[0].Table, false
	for _, op := range ops {
		if op.Table != singleTable {
			mixed = true
		}
	}
	if !mixed {
		pt, err := b.resolve(singleTable)
		if err != nil {
			return errorResponse(err)
		}
		singlePart = pt
	}

	guard := b.d.Snapshot()
	defer guard.Release()

	var results []engine.OpResult
	var partResults []partition.OpResult
	if singlePart != nil {
		partResults = singlePart.ExecuteBatch(ops, b.workers)
	} else {
		for _, op := range ops {
			if !isQuery(op.Kind) {
				continue
			}
			pt, err := b.resolve(op.Table)
			if err != nil {
				return errorResponse(err)
			}
			if pt != nil {
				return errorResponse(reject(proto.CodeBadRequest,
					"query on partitioned table %q in a multi-table batch", op.Table))
			}
		}
		results = b.d.ExecuteBatch(ops, b.workers)
	}

	resp := proto.Response{Type: proto.RespBatch, Results: make([]proto.Response, len(ops))}
	for i, op := range ops {
		var err error
		var found bool
		var rows [][]float64
		if singlePart != nil {
			res := partResults[i]
			err, found = res.Err, res.Found
			if err == nil && isQuery(op.Kind) {
				rows, err = fetchPart(singlePart, res.RIDs)
			}
		} else {
			res := results[i]
			err, found = res.Err, res.Found
			if err == nil && isQuery(op.Kind) {
				rows, err = b.fetchPlain(op.Table, res.RIDs)
			}
		}
		switch {
		case err != nil:
			resp.Results[i] = errorResponse(err)
		case isQuery(op.Kind):
			resp.Results[i] = proto.Response{Type: proto.RespRows, Rows: rows}
		case op.Kind == engine.OpDelete:
			resp.Results[i] = proto.Response{Type: proto.RespFound, Found: found}
		default:
			resp.Results[i] = proto.Response{Type: proto.RespOK}
		}
	}
	return resp
}

// runMutation executes one auto-commit mutation request.
func (b *backend) runMutation(tenant string, r *proto.Request) proto.Response {
	name, err := physical(tenant, r.Table)
	if err != nil {
		return errorResponse(err)
	}
	switch r.Type {
	case proto.ReqInsert:
		if _, err := b.d.Insert(name, r.Row); err != nil {
			return errorResponse(err)
		}
		return proto.Response{Type: proto.RespOK}
	case proto.ReqUpdate:
		if err := b.d.UpdateColumn(name, r.PK, int(r.Col), r.Value); err != nil {
			return errorResponse(err)
		}
		return proto.Response{Type: proto.RespOK}
	case proto.ReqDelete:
		found, err := b.d.Delete(name, r.PK)
		if err != nil {
			return errorResponse(err)
		}
		return proto.Response{Type: proto.RespFound, Found: found}
	}
	return errorResponse(reject(proto.CodeBadRequest, "type %d is not a mutation", r.Type))
}

// runTxnQuery executes a read inside an open transaction, at the
// transaction's snapshot.
func (b *backend) runTxnQuery(tenant string, tx *engine.DurableTxn, r *proto.Request) proto.Response {
	op, err := engineOp(tenant, r)
	if err != nil {
		return errorResponse(err)
	}
	pt, err := b.resolve(op.Table)
	if err != nil {
		return errorResponse(err)
	}
	snap := tx.Snapshot()
	if snap == nil {
		return errorResponse(engine.ErrTxnDone)
	}
	var rows [][]float64
	if pt != nil {
		var rids []partition.RID
		switch op.Kind {
		case engine.OpPoint:
			rids, _, err = pt.PointQueryAt(snap, op.Col, op.Lo)
		case engine.OpRange:
			rids, _, err = pt.RangeQueryAt(snap, op.Col, op.Lo, op.Hi)
		case engine.OpRange2:
			rids, _, err = pt.RangeQuery2At(snap, op.Col, op.Lo, op.Hi, op.BCol, op.BLo, op.BHi)
		}
		if err == nil {
			rows, err = fetchPart(pt, rids)
		}
	} else {
		var tb *engine.Table
		if tb, err = b.d.Table(op.Table); err == nil {
			var rids []storage.RID
			switch op.Kind {
			case engine.OpPoint:
				rids, _, err = tb.PointQueryAt(snap, op.Col, op.Lo)
			case engine.OpRange:
				rids, _, err = tb.RangeQueryAt(snap, op.Col, op.Lo, op.Hi)
			case engine.OpRange2:
				rids, _, err = tb.RangeQuery2At(snap, op.Col, op.Lo, op.Hi, op.BCol, op.BLo, op.BHi)
			}
			if err == nil {
				rows, err = b.fetchPlain(op.Table, rids)
			}
		}
	}
	if err != nil {
		return errorResponse(err)
	}
	return proto.Response{Type: proto.RespRows, Rows: rows}
}

// runTxnMutation buffers one mutation into an open transaction.
func runTxnMutation(tenant string, tx *engine.DurableTxn, r *proto.Request) proto.Response {
	name, err := physical(tenant, r.Table)
	if err != nil {
		return errorResponse(err)
	}
	switch r.Type {
	case proto.ReqInsert:
		if err := tx.Insert(name, r.Row); err != nil {
			return errorResponse(err)
		}
		return proto.Response{Type: proto.RespOK}
	case proto.ReqUpdate:
		if err := tx.Update(name, r.PK, int(r.Col), r.Value); err != nil {
			return errorResponse(err)
		}
		return proto.Response{Type: proto.RespOK}
	case proto.ReqDelete:
		found, err := tx.Delete(name, r.PK)
		if err != nil {
			return errorResponse(err)
		}
		return proto.Response{Type: proto.RespFound, Found: found}
	}
	return errorResponse(reject(proto.CodeBadRequest, "type %d is not a mutation", r.Type))
}

// runDDL executes a create-table or create-index request.
func (b *backend) runDDL(tenant string, r *proto.Request) proto.Response {
	name, err := physical(tenant, r.Table)
	if err != nil {
		return errorResponse(err)
	}
	switch r.Type {
	case proto.ReqCreateTable:
		if len(r.Cols) == 0 || int(r.PKCol) >= len(r.Cols) {
			return errorResponse(reject(proto.CodeBadRequest,
				"create table %q: %d columns, pk %d", r.Table, len(r.Cols), r.PKCol))
		}
		if r.Parts > 0 {
			err = b.d.CreatePartitionedTable(name, r.Cols, int(r.PKCol), int(r.Parts))
		} else {
			_, err = b.d.CreateTable(name, r.Cols, int(r.PKCol))
		}
	case proto.ReqCreateIndex:
		def := engine.IndexDef{Col: int(r.Col)}
		switch r.Kind {
		case proto.IndexBTree:
			def.Kind = "btree"
		case proto.IndexHermit:
			def.Kind = "hermit"
			def.Host = int(r.Host)
		}
		if err = b.d.CreateIndex(name, def); err == nil {
			b.forget(name)
		}
	default:
		return errorResponse(reject(proto.CodeBadRequest, "type %d is not DDL", r.Type))
	}
	if err != nil {
		return errorResponse(err)
	}
	return proto.Response{Type: proto.RespOK}
}
