package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"hermit/internal/client"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/repl"
)

// replicaPair is a leader server plus one follower server wired exactly
// the way cmd/hermitd wires them.
type replicaPair struct {
	ld     *engine.DurableDB
	leader *repl.Leader
	lsrv   *Server
	f      *repl.Follower
	fsrv   *Server
}

func startReplicaPair(t *testing.T, lopts repl.LeaderOptions, httpAddr string) *replicaPair {
	t.Helper()
	ld, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ld.Close() })
	leader, err := repl.NewLeader(ld, lopts)
	if err != nil {
		t.Fatal(err)
	}
	lsrv := New(ld, Options{Leader: leader})
	if err := lsrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lsrv.Close() })

	f, err := repl.OpenFollower(repl.FollowerOptions{
		Dir: t.TempDir(), ID: "r1", LeaderAddr: lsrv.Addr().String(),
		Scheme:         hermit.PhysicalPointers,
		ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	fsrv := New(f.DB(), Options{Follower: f, HTTPAddr: httpAddr})
	f.SetOnEngineSwap(func(db *engine.DurableDB) { fsrv.SwapEngine(db) })
	f.Start()
	if err := fsrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fsrv.Close() })
	return &replicaPair{ld: ld, leader: leader, lsrv: lsrv, f: f, fsrv: fsrv}
}

// TestReplicatedServingEndToEnd drives writes through the leader's wire
// protocol and reads them back from the follower's: the full
// server-to-server replication path, plus the watermark endpoint, the
// read-only rejection, and the stats surfaces on both roles.
func TestReplicatedServingEndToEnd(t *testing.T) {
	p := startReplicaPair(t, repl.LeaderOptions{}, "")
	lc := dial(t, p.lsrv, client.Options{})
	fc := dial(t, p.fsrv, client.Options{})

	if err := lc.CreateTable("t", []string{"id", "v"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := lc.Insert("t", []float64{float64(i), float64(i * 3)}); err != nil {
			t.Fatal(err)
		}
	}
	last := p.ld.LastLSN()
	if err := p.f.WaitFor(last, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// The follower serves replicated reads over its own wire endpoint.
	rows, err := fc.Point("t", 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != 21 {
		t.Fatalf("follower read: %v", rows)
	}
	all, err := fc.Range("t", 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 50 {
		t.Fatalf("follower sees %d rows, want 50", len(all))
	}

	// Watermarks over the wire: leader reports its last LSN, the follower
	// its applied LSN (equal after catch-up).
	llsn, err := lc.LSN()
	if err != nil {
		t.Fatal(err)
	}
	flsn, err := fc.LSN()
	if err != nil {
		t.Fatal(err)
	}
	if llsn != last || flsn != last {
		t.Fatalf("LSN watermarks: leader %d follower %d, want %d", llsn, flsn, last)
	}

	// Every mutation class bounces off the follower with ErrNotLeader.
	if err := fc.Insert("t", []float64{1000, 0}); !errors.Is(err, client.ErrNotLeader) {
		t.Fatalf("follower insert: %v", err)
	}
	if _, err := fc.Delete("t", 1); !errors.Is(err, client.ErrNotLeader) {
		t.Fatalf("follower delete: %v", err)
	}
	if err := fc.Update("t", 1, 1, 0); !errors.Is(err, client.ErrNotLeader) {
		t.Fatalf("follower update: %v", err)
	}
	if err := fc.CreateTable("u", []string{"id"}, 0, 0); !errors.Is(err, client.ErrNotLeader) {
		t.Fatalf("follower DDL: %v", err)
	}
	if _, err := fc.Point("t", 0, 7); err != nil {
		t.Fatalf("follower read after rejections: %v", err)
	}

	// Stats expose the replication role on both sides, with per-follower
	// lag on the leader.
	lst := p.lsrv.Stats()
	if lst.Repl == nil || lst.Repl.Role != "leader" || lst.Repl.Leader == nil {
		t.Fatalf("leader stats: %+v", lst.Repl)
	}
	if len(lst.Repl.Leader.Followers) != 1 || lst.Repl.Leader.Followers[0].ID != "r1" {
		t.Fatalf("leader follower stats: %+v", lst.Repl.Leader.Followers)
	}
	fst := p.fsrv.Stats()
	if fst.Repl == nil || fst.Repl.Role != "follower" || fst.Repl.Follower == nil {
		t.Fatalf("follower stats: %+v", fst.Repl)
	}
	if fst.Repl.Follower.AppliedLSN != last {
		t.Fatalf("follower stats applied %d, want %d", fst.Repl.Follower.AppliedLSN, last)
	}
}

// TestQuorumGateBlocksAndReleases: with AckMode quorum and the only
// follower paused, writes time out with an explicit commit-state-unknown
// error; resuming the follower lets writes commit again.
func TestQuorumGateBlocksAndReleases(t *testing.T) {
	p := startReplicaPair(t, repl.LeaderOptions{
		AckMode: repl.AckQuorum, QuorumTimeout: 200 * time.Millisecond,
	}, "")
	lc := dial(t, p.lsrv, client.Options{})

	if err := lc.CreateTable("t", []string{"id"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("t", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.f.WaitFor(p.ld.LastLSN(), 30*time.Second); err != nil {
		t.Fatal(err)
	}

	p.f.Pause()
	err := lc.Insert("t", []float64{2})
	if err == nil {
		t.Fatal("quorum write succeeded with the only follower paused")
	}
	var serr *client.Error
	if !errors.As(err, &serr) {
		t.Fatalf("quorum failure not a server error: %v", err)
	}

	p.f.Resume()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := lc.Insert("t", []float64{3}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never recovered after resume")
		}
	}
	// The row rejected at the gate was still durable on the leader (the
	// error is about replication state, not local durability).
	rows, err := lc.Point("t", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("gated write not locally durable: %v", rows)
	}
}

// TestPromoteOverHTTP flips a running follower server into a leader via
// POST /v1/promote — the hermitd wiring — and verifies it starts taking
// writes with a bumped epoch while a second promote attempt fails.
func TestPromoteOverHTTP(t *testing.T) {
	p := startReplicaPair(t, repl.LeaderOptions{}, "127.0.0.1:0")
	lc := dial(t, p.lsrv, client.Options{})
	if err := lc.CreateTable("t", []string{"id"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("t", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.f.WaitFor(p.ld.LastLSN(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	oldEpoch := p.leader.Epoch()

	// Wire the promote hook the way cmd/hermitd does.
	var once sync.Once
	var newLeader *repl.Leader
	p.fsrv.s.promote = func() error {
		perr := errors.New("already promoted")
		once.Do(func() {
			db, err := p.f.Promote()
			if err != nil {
				perr = err
				return
			}
			l, err := repl.NewLeader(db, repl.LeaderOptions{})
			if err != nil {
				perr = err
				return
			}
			p.fsrv.SwapEngine(db)
			p.fsrv.BecomeLeader(l)
			newLeader = l
			perr = nil
		})
		return perr
	}

	base := fmt.Sprintf("http://%s", p.fsrv.HTTPAddr())
	resp, err := http.Post(base+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote status %d", resp.StatusCode)
	}
	if newLeader == nil || newLeader.Epoch() != oldEpoch+1 {
		t.Fatalf("promotion epoch: %+v", newLeader)
	}

	// The promoted node now takes writes over the wire.
	fc := dial(t, p.fsrv, client.Options{})
	if err := fc.Insert("t", []float64{2}); err != nil {
		t.Fatalf("promoted node rejects writes: %v", err)
	}
	if st := p.fsrv.Stats(); st.Repl == nil || st.Repl.Role != "leader" {
		t.Fatalf("promoted stats: %+v", st.Repl)
	}

	// Second promote: conflict.
	resp2, err := http.Post(base+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second promote status %d, want 409", resp2.StatusCode)
	}
}

// TestPromoteNotConfigured: a node without a promote hook answers 400.
func TestPromoteNotConfigured(t *testing.T) {
	d, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := New(d, Options{HTTPAddr: "127.0.0.1:0"})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/promote", srv.HTTPAddr()), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("promote status %d, want 400", resp.StatusCode)
	}
}
