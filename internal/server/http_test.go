package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/server/proto"
)

// postExec sends one JSON op to the fallback endpoint and decodes the
// result, also returning the HTTP status.
func postExec(t *testing.T, base string, op map[string]any) (httpResult, int) {
	t.Helper()
	body, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/exec", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res httpResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res, resp.StatusCode
}

// TestHTTPFallback drives the JSON endpoint across the op surface, the
// stats and health routes, and the error→status mapping.
func TestHTTPFallback(t *testing.T) {
	d, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := New(d, Options{HTTPAddr: "127.0.0.1:0"})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("http://%s", srv.HTTPAddr())

	if res, code := postExec(t, base, map[string]any{"op": "ping"}); !res.OK || code != 200 {
		t.Fatalf("ping: %+v code=%d", res, code)
	}
	if res, _ := postExec(t, base, map[string]any{
		"op": "create-table", "table": "t", "cols": []string{"id", "x", "y"},
	}); !res.OK {
		t.Fatalf("create-table: %+v", res)
	}
	if res, _ := postExec(t, base, map[string]any{
		"op": "create-index", "table": "t", "col": 1,
	}); !res.OK {
		t.Fatalf("create btree index: %+v", res)
	}
	if res, _ := postExec(t, base, map[string]any{
		"op": "create-index", "table": "t", "kind": "hermit", "col": 2, "host": 1,
	}); !res.OK {
		t.Fatalf("create hermit index: %+v", res)
	}
	for i := 0; i < 10; i++ {
		if res, _ := postExec(t, base, map[string]any{
			"op": "insert", "table": "t", "row": []float64{float64(i), float64(i * 2), float64(i * 3)},
		}); !res.OK {
			t.Fatalf("insert %d: %+v", i, res)
		}
	}

	res, _ := postExec(t, base, map[string]any{"op": "point", "table": "t", "col": 0, "lo": 4})
	if !res.OK || len(res.Rows) != 1 || res.Rows[0][1] != 8 {
		t.Fatalf("point: %+v", res)
	}
	res, _ = postExec(t, base, map[string]any{"op": "range", "table": "t", "col": 1, "lo": 2, "hi": 8})
	if !res.OK || len(res.Rows) != 4 {
		t.Fatalf("range: %+v", res)
	}
	res, _ = postExec(t, base, map[string]any{
		"op": "range2", "table": "t", "col": 1, "lo": 2, "hi": 8, "bcol": 2, "blo": 0, "bhi": 9,
	})
	if !res.OK || len(res.Rows) != 3 {
		t.Fatalf("range2: %+v", res)
	}
	if res, _ = postExec(t, base, map[string]any{
		"op": "update", "table": "t", "pk": 4, "col": 2, "value": 99,
	}); !res.OK {
		t.Fatalf("update: %+v", res)
	}
	res, _ = postExec(t, base, map[string]any{"op": "delete", "table": "t", "pk": 9})
	if !res.OK || res.Found == nil || !*res.Found {
		t.Fatalf("delete: %+v", res)
	}

	// Atomic batch: a dup-key insert aborts the whole batch with 409.
	res, code := postExec(t, base, map[string]any{
		"op": "batch", "table": "t", "ops": []map[string]any{
			{"op": "insert", "table": "t", "row": []float64{100, 1, 1}},
			{"op": "insert", "table": "t", "row": []float64{3, 1, 1}},
		},
	})
	if len(res.Results) != 2 || res.Results[1].Code != int(proto.CodeDupKey) {
		t.Fatalf("batch abort: %+v code=%d", res, code)
	}
	if res, _ := postExec(t, base, map[string]any{"op": "point", "table": "t", "col": 0, "lo": 100}); len(res.Rows) != 0 {
		t.Fatal("aborted batch leaked an insert")
	}

	// Error→status mapping.
	if res, code := postExec(t, base, map[string]any{"op": "nope"}); res.OK || code != http.StatusBadRequest {
		t.Fatalf("unknown op: %+v code=%d", res, code)
	}
	if res, code := postExec(t, base, map[string]any{
		"op": "create-index", "table": "t", "kind": "wat", "col": 1,
	}); res.OK || code != http.StatusBadRequest {
		t.Fatalf("unknown index kind: %+v code=%d", res, code)
	}
	if _, code := postExec(t, base, map[string]any{"op": "point", "table": "missing", "col": 0}); code != http.StatusNotFound {
		t.Fatalf("missing table status %d", code)
	}
	if _, code := postExec(t, base, map[string]any{
		"op": "insert", "table": "t", "row": []float64{3, 1, 1},
	}); code != http.StatusConflict {
		t.Fatalf("dup key status %d", code)
	}
	if _, code := postExec(t, base, map[string]any{"op": "ping", "tenant": "bad@t"}); code != http.StatusBadRequest {
		t.Fatalf("bad tenant status %d", code)
	}

	// Stats and health. A checkpoint first, so the storage section has
	// real block-tier numbers to report.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hr, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsSnapshot
	if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if st.Requests == 0 {
		t.Fatalf("stats did not count HTTP requests: %+v", st)
	}
	if st.Storage.Flushes < 1 || st.Storage.Blocks < 1 {
		t.Fatalf("stats missing block-storage tier: %+v", st.Storage)
	}
	if st.Storage.WriteAmplification < 1 {
		t.Fatalf("write amplification %v < 1 after a flush", st.Storage.WriteAmplification)
	}
	hr, err = http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != 200 {
		t.Fatalf("healthz: %v %d", err, hr.StatusCode)
	}
	hr.Body.Close()

	// After Close the health endpoint is gone with the server.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("healthz still serving after Close")
	}
}

// TestHTTPQuota exercises the per-tenant quota on the JSON path.
func TestHTTPQuota(t *testing.T) {
	d, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := New(d, Options{HTTPAddr: "127.0.0.1:0", TenantOps: 3})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	base := fmt.Sprintf("http://%s", srv.HTTPAddr())

	var last int
	for i := 0; i < 5; i++ {
		_, last = postExec(t, base, map[string]any{"op": "ping", "tenant": "q"})
	}
	if last != http.StatusTooManyRequests {
		t.Fatalf("quota exhaustion status %d", last)
	}
	if srv.Stats().QuotaRejected == 0 {
		t.Fatal("quota rejections not counted")
	}
}
