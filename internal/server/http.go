package server

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hermit/internal/server/proto"
)

// This file is the HTTP/JSON fallback endpoint: the same operation
// surface as the binary protocol (minus transactions, which need session
// state a stateless POST cannot carry), mapped onto one POST route. It
// exists for debuggability — curl a running hermitd — not performance.
//
//	POST /v1/exec          {"op":"range","table":"t","col":1,"lo":0,"hi":9}
//	GET  /v1/stats         server counters as JSON
//	GET  /healthz          200 once serving
//	GET  /debug/pprof/...  live profiling (net/http/pprof handlers)
//
// Supported ops: ping, point, range, range2, insert, update, delete,
// batch (ops array of the six data ops), create-table, create-index.
// An optional "tenant" field selects the namespace per call.

// httpOp is the JSON request body of POST /v1/exec.
type httpOp struct {
	Op     string    `json:"op"`
	Tenant string    `json:"tenant,omitempty"`
	Table  string    `json:"table,omitempty"`
	Col    int       `json:"col,omitempty"`
	Lo     float64   `json:"lo,omitempty"`
	Hi     float64   `json:"hi,omitempty"`
	BCol   int       `json:"bcol,omitempty"`
	BLo    float64   `json:"blo,omitempty"`
	BHi    float64   `json:"bhi,omitempty"`
	PK     float64   `json:"pk,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Row    []float64 `json:"row,omitempty"`
	Ops    []httpOp  `json:"ops,omitempty"`
	Cols   []string  `json:"cols,omitempty"`
	PKCol  int       `json:"pk_col,omitempty"`
	Parts  int       `json:"parts,omitempty"`
	Kind   string    `json:"kind,omitempty"`
	Host   int       `json:"host,omitempty"`
}

// httpResult is the JSON response body of POST /v1/exec.
type httpResult struct {
	OK      bool         `json:"ok"`
	Rows    [][]float64  `json:"rows,omitempty"`
	Found   *bool        `json:"found,omitempty"`
	Results []httpResult `json:"results,omitempty"`
	Code    int          `json:"code,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// toRequest maps a JSON op onto a wire request (the shared execution
// path), or an unknown-op error.
func (h *httpOp) toRequest() (proto.Request, error) {
	r := proto.Request{
		Table: h.Table, Col: uint16(h.Col), Lo: h.Lo, Hi: h.Hi,
		BCol: uint16(h.BCol), BLo: h.BLo, BHi: h.BHi,
		PK: h.PK, Value: h.Value, Row: h.Row,
		PKCol: uint16(h.PKCol), Parts: uint16(h.Parts), Cols: h.Cols,
		Host: uint16(h.Host),
	}
	switch h.Op {
	case "ping":
		r.Type = proto.ReqPing
	case "point":
		r.Type = proto.ReqPoint
	case "range":
		r.Type = proto.ReqRange
	case "range2":
		r.Type = proto.ReqRange2
	case "insert":
		r.Type = proto.ReqInsert
	case "update":
		r.Type = proto.ReqUpdate
	case "delete":
		r.Type = proto.ReqDelete
	case "batch":
		r.Type = proto.ReqBatch
		for i := range h.Ops {
			op, err := h.Ops[i].toRequest()
			if err != nil {
				return r, err
			}
			r.Ops = append(r.Ops, op)
		}
	case "create-table":
		r.Type = proto.ReqCreateTable
	case "create-index":
		r.Type = proto.ReqCreateIndex
		switch h.Kind {
		case "", "btree":
			r.Kind = proto.IndexBTree
		case "hermit":
			r.Kind = proto.IndexHermit
		default:
			return r, reject(proto.CodeBadRequest, "unknown index kind %q", h.Kind)
		}
	default:
		return r, reject(proto.CodeBadRequest, "unknown op %q", h.Op)
	}
	return r, nil
}

// fromResponse maps a wire response back onto the JSON shape.
func fromResponse(resp proto.Response) httpResult {
	switch resp.Type {
	case proto.RespRows:
		rows := resp.Rows
		if rows == nil {
			rows = [][]float64{}
		}
		return httpResult{OK: true, Rows: rows}
	case proto.RespFound:
		f := resp.Found
		return httpResult{OK: true, Found: &f}
	case proto.RespBatch:
		out := httpResult{OK: true, Results: make([]httpResult, len(resp.Results))}
		for i, r := range resp.Results {
			out.Results[i] = fromResponse(r)
		}
		return out
	case proto.RespError:
		return httpResult{Code: int(resp.Code), Error: resp.Msg}
	default:
		return httpResult{OK: true}
	}
}

// execHTTP runs one JSON op through the same backend paths the binary
// protocol uses (auto-commit only: no session, no txns, no pipelining).
func (sv *server) execHTTP(h *httpOp) httpResult {
	req, err := h.toRequest()
	if err != nil {
		return fromResponse(errorResponse(err))
	}
	if err := validTenant(h.Tenant); err != nil {
		return fromResponse(errorResponse(err))
	}
	if !sv.acquireInflight() {
		sv.stats.Rejected.Add(1)
		return httpResult{Code: int(proto.CodeOverloaded), Error: "server overloaded; retry later"}
	}
	defer sv.releaseInflight()
	sv.stats.Requests.Add(1)

	cost := int64(1)
	if req.Type == proto.ReqBatch {
		cost = int64(len(req.Ops))
	}
	if !sv.quotaFor(h.Tenant).charge(cost) {
		sv.stats.QuotaRejected.Add(1)
		return httpResult{Code: int(proto.CodeQuota), Error: "tenant op quota exhausted"}
	}

	b := sv.be()
	if sv.follower.Load() != nil && isMutating(&req) {
		return fromResponse(errorResponse(reject(proto.CodeNotLeader,
			"node is a read-only follower; send writes to the leader")))
	}
	var resp proto.Response
	switch req.Type {
	case proto.ReqPing:
		resp = proto.Response{Type: proto.RespOK}
	case proto.ReqPoint, proto.ReqRange, proto.ReqRange2:
		resp = b.runReads(h.Tenant, []proto.Request{req})[0]
	case proto.ReqInsert, proto.ReqUpdate, proto.ReqDelete:
		resp = sv.quorumGate(b.runMutation(h.Tenant, &req))
	case proto.ReqBatch:
		resp = b.runBatch(h.Tenant, &req)
		if isMutating(&req) {
			resp = sv.quorumGate(resp)
		}
	case proto.ReqCreateTable, proto.ReqCreateIndex:
		resp = sv.quorumGate(b.runDDL(h.Tenant, &req))
	}
	return fromResponse(resp)
}

// serveHTTP starts the fallback endpoint, returning its stop function
// and bound listener. The caller stores both under the server's lock.
func (sv *server) serveHTTP(addr string) (func() error, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/exec", func(w http.ResponseWriter, r *http.Request) {
		var op httpOp
		if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res := sv.execHTTP(&op)
		w.Header().Set("Content-Type", "application/json")
		if res.Error != "" {
			w.WriteHeader(httpStatus(proto.ErrCode(res.Code)))
		}
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode((&Server{s: sv}).Stats())
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if sv.promote == nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]any{"ok": false, "error": "promotion not configured"})
			return
		}
		if err := sv.promote(); err != nil {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{"ok": false, "error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if sv.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	// Live profiling endpoints (go tool pprof http://addr/debug/pprof/...).
	// The custom mux never sees net/http/pprof's DefaultServeMux
	// registrations, so the handlers are wired explicitly.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	return func() error { return hs.Close() }, ln, nil
}

// httpStatus maps wire error codes onto HTTP statuses.
func httpStatus(code proto.ErrCode) int {
	switch code {
	case proto.CodeBadRequest:
		return http.StatusBadRequest
	case proto.CodeOverloaded, proto.CodeDraining:
		return http.StatusServiceUnavailable
	case proto.CodeQuota:
		return http.StatusTooManyRequests
	case proto.CodeNoTable:
		return http.StatusNotFound
	case proto.CodeConflict, proto.CodeAborted, proto.CodeDupKey, proto.CodeFenced:
		return http.StatusConflict
	case proto.CodeNotLeader:
		return http.StatusMisdirectedRequest
	default:
		return http.StatusInternalServerError
	}
}
