package server

import (
	"bufio"
	"errors"
	"net"
	"sync"

	"hermit/internal/engine"
	"hermit/internal/server/proto"
)

// session is one client connection: a reader goroutine that decodes
// frames into a queue, and an executor (serve) that drains the queue,
// executes, and writes responses in request order.
//
// The queue is what makes pipelining work: a client may write hundreds of
// frames before reading a single response, and the reader keeps decoding
// while the executor works. The executor coalesces runs of consecutive
// auto-commit reads into one ExecuteBatch call (see backend.runReads), so
// a pipelined point-query storm executes on the engine's worker pool
// under a single shared snapshot instead of as N serial queries.
//
// Admission control happens at enqueue: each queued request holds one
// server-wide inflight token until its response is written. When no token
// is available the request is still queued — as a pre-rejected marker, so
// responses stay in order — but never executed.
type session struct {
	srv  *server
	conn net.Conn
	bw   *bufio.Writer

	tenant string
	quota  *tenantQuota

	// txns maps wire transaction ids to open engine transactions. Owned
	// by the executor goroutine; cleaned up (rolled back, snapshots
	// released) on any exit path so an abruptly dropped connection cannot
	// pin the GC horizon.
	txns   map[uint64]*engine.DurableTxn
	nextTx uint64

	// wmu serializes connection writes: normally only the executor
	// writes, but a replication subscription adds a second writer — the
	// stream goroutine ServeSubscriber runs on — interleaving whole
	// frames with the executor's responses (acks, the only requests a
	// subscribed follower keeps sending, produce no response at all).
	wmu sync.Mutex
	// subStop ends replication streams on session teardown; subWG waits
	// for them so cleanup never races a streaming write.
	subStop chan struct{}
	subWG   sync.WaitGroup

	// wbuf is the response encode scratch, guarded by wmu like the writes
	// it feeds. Oversized buffers are released after the write (see
	// maxRetainedBuf) so one huge response does not pin 16 MiB per session.
	wbuf []byte
}

// maxRetainedBuf caps the frame scratch a session keeps between
// requests. Frames run up to proto.MaxFrame (16 MiB); holding that per
// connection would dwarf the sessions themselves, so larger buffers are
// dropped after use and re-grown on demand.
const maxRetainedBuf = 64 << 10

// maxCoalesce bounds one coalesced read batch (and thus response latency
// for the op at the head of the run).
const maxCoalesce = 64

// respNone is handleOne's no-response sentinel: replication acks consume
// no response frame, and a subscription's frames are written by its own
// stream goroutine rather than the executor.
const respNone proto.RespType = 0

// errConnClosed reports a failed stream write (the subscriber hung up).
var errConnClosed = errors.New("server: connection closed")

// maxOpenTxns bounds a session's concurrently open transactions: each
// pins a snapshot, so an unbounded map would let one client stall GC.
const maxOpenTxns = 64

// queued is one queue entry: a decoded request, or a pre-rejected one.
type queued struct {
	req      proto.Request
	rejected *proto.Response // non-nil: skip execution, write this
	admitted bool            // holds one inflight token
}

// serve runs the session to completion. It is the executor; it spawns the
// reader and owns all writes to the connection and all token releases for
// consumed queue entries.
func (s *session) serve() {
	defer s.srv.wg.Done()
	defer s.srv.stats.ConnsActive.Add(-1)
	defer s.srv.unregister(s.conn)
	defer s.conn.Close()
	defer s.cleanup()

	q := make(chan queued, s.srv.opts.QueueDepth)
	go s.read(q)

	var carry *queued
	writable := true
	for writable {
		var item queued
		if carry != nil {
			item, carry = *carry, nil
		} else {
			it, ok := <-q
			if !ok {
				break
			}
			item = it
		}
		s.srv.stats.Requests.Add(1)
		switch {
		case item.rejected != nil:
			writable = s.write(*item.rejected)
		case isAutoRead(&item.req):
			writable, carry = s.runCoalesced(item, q)
		default:
			resp := s.handleOne(&item.req)
			if resp.Type != respNone {
				writable = s.write(resp)
			}
			if item.admitted {
				s.srv.releaseInflight()
			}
		}
	}
	if carry != nil && carry.admitted {
		s.srv.releaseInflight()
	}
	// The reader may still be running (executor stopped on a write
	// error): closing the connection in the deferred chain unblocks it;
	// meanwhile drain the queue so enqueues never block and every token
	// is returned.
	s.conn.Close()
	for item := range q {
		if item.admitted {
			s.srv.releaseInflight()
		}
	}
}

// read decodes frames into q until the connection fails, the server
// drains, or a frame is malformed. It closes q on exit.
func (s *session) read(q chan queued) {
	defer close(q)
	br := bufio.NewReaderSize(s.conn, 64<<10)
	var payload []byte // frame read scratch; decoded requests never alias it
	for {
		if s.srv.draining.Load() {
			return
		}
		var err error
		payload, err = proto.ReadFrameBuf(br, payload)
		if err != nil {
			return
		}
		req, err := proto.DecodeRequest(payload)
		if cap(payload) > maxRetainedBuf {
			payload = nil // drop oversized buffers (16 MiB cap policy)
		}
		if err != nil {
			// A clean EOF is the client hanging up; anything else —
			// malformed frame, bad version, torn read — also ends the
			// session (framing errors are not recoverable mid-stream
			// without trusting the hostile length prefix just refused).
			return
		}
		item := queued{req: req}
		if s.srv.acquireInflight() {
			item.admitted = true
		} else {
			s.srv.stats.Rejected.Add(1)
			r := proto.Response{Type: proto.RespError, Code: proto.CodeOverloaded,
				Msg: "server overloaded; retry later"}
			item.rejected = &r
		}
		q <- item
	}
}

// isAutoRead reports whether a request is an auto-commit read — the
// coalescable kind.
func isAutoRead(r *proto.Request) bool {
	if r.Txn != 0 {
		return false
	}
	switch r.Type {
	case proto.ReqPoint, proto.ReqRange, proto.ReqRange2:
		return true
	}
	return false
}

// runCoalesced executes first plus any auto-commit reads already queued
// behind it (up to maxCoalesce) as one batch, writing responses in order.
// A non-coalescable entry encountered first is returned as carry for the
// main loop. It releases the tokens of every entry it consumed.
func (s *session) runCoalesced(first queued, q chan queued) (writable bool, carry *queued) {
	items := []queued{first}
gather:
	for len(items) < maxCoalesce {
		select {
		case it, ok := <-q:
			if !ok {
				break gather
			}
			if it.rejected == nil && isAutoRead(&it.req) {
				s.srv.stats.Requests.Add(1)
				items = append(items, it)
				continue
			}
			carry = &it
			break gather
		default:
			break gather
		}
	}

	// Quota failures get positional error responses; the rest execute as
	// one batch.
	resps := make([]proto.Response, len(items))
	var runIdx []int
	var runReqs []proto.Request
	for i := range items {
		if resp, ok := s.checkQuota(&items[i].req); !ok {
			resps[i] = resp
		} else {
			runIdx = append(runIdx, i)
			runReqs = append(runReqs, items[i].req)
		}
	}
	if len(runReqs) > 0 {
		s.srv.stats.Coalesced.Add(int64(len(runReqs) - 1))
		out := s.srv.be().runReads(s.tenant, runReqs)
		for k, i := range runIdx {
			resps[i] = out[k]
		}
	}

	writable = true
	for i := range resps {
		if writable {
			writable = s.write(resps[i])
		}
		if items[i].admitted {
			s.srv.releaseInflight()
		}
	}
	return writable, carry
}

// checkQuota charges the request against the session tenant's op quota.
func (s *session) checkQuota(r *proto.Request) (proto.Response, bool) {
	cost := int64(1)
	if r.Type == proto.ReqBatch {
		cost = int64(len(r.Ops))
	}
	if s.quota != nil && !s.quota.charge(cost) {
		s.srv.stats.QuotaRejected.Add(1)
		return proto.Response{Type: proto.RespError, Code: proto.CodeQuota,
			Msg: "tenant op quota exhausted"}, false
	}
	return proto.Response{}, true
}

// isMutating reports whether a request changes state — the kinds a
// read-only follower refuses with CodeNotLeader. Transactions count
// (their commits could not be logged locally), as does any batch carrying
// a mutation; read-only batches pass.
func isMutating(r *proto.Request) bool {
	switch r.Type {
	case proto.ReqInsert, proto.ReqUpdate, proto.ReqDelete,
		proto.ReqTxnBegin, proto.ReqCreateTable, proto.ReqCreateIndex:
		return true
	case proto.ReqBatch:
		for i := range r.Ops {
			switch r.Ops[i].Type {
			case proto.ReqInsert, proto.ReqUpdate, proto.ReqDelete:
				return true
			}
		}
	}
	return false
}

// handleOne runs one non-coalesced request to a response (or respNone for
// requests that answer out-of-band or not at all).
func (s *session) handleOne(r *proto.Request) proto.Response {
	if resp, ok := s.checkQuota(r); !ok {
		return resp
	}
	b := s.srv.be()
	if s.srv.follower.Load() != nil && isMutating(r) {
		return errorResponse(reject(proto.CodeNotLeader,
			"node is a read-only follower; send writes to the leader"))
	}
	switch r.Type {
	case proto.ReqHello:
		if err := validTenant(r.Tenant); err != nil {
			return errorResponse(err)
		}
		s.tenant = r.Tenant
		s.quota = s.srv.quotaFor(r.Tenant)
		return proto.Response{Type: proto.RespOK}
	case proto.ReqPing:
		return proto.Response{Type: proto.RespOK}
	case proto.ReqPoint, proto.ReqRange, proto.ReqRange2:
		// Only reachable with Txn != 0 (auto-commit reads coalesce).
		tx, ok := s.txns[r.Txn]
		if !ok {
			return errorResponse(reject(proto.CodeTxnUnknown, "unknown txn %d", r.Txn))
		}
		return b.runTxnQuery(s.tenant, tx, r)
	case proto.ReqInsert, proto.ReqUpdate, proto.ReqDelete:
		if r.Txn != 0 {
			tx, ok := s.txns[r.Txn]
			if !ok {
				return errorResponse(reject(proto.CodeTxnUnknown, "unknown txn %d", r.Txn))
			}
			return runTxnMutation(s.tenant, tx, r)
		}
		return s.srv.quorumGate(b.runMutation(s.tenant, r))
	case proto.ReqBatch:
		if r.Txn != 0 {
			return errorResponse(reject(proto.CodeBadRequest,
				"batches are their own transaction; Txn must be 0"))
		}
		resp := b.runBatch(s.tenant, r)
		if isMutating(r) {
			resp = s.srv.quorumGate(resp)
		}
		return resp
	case proto.ReqTxnBegin:
		if s.srv.draining.Load() {
			return errorResponse(reject(proto.CodeDraining, "server draining"))
		}
		if len(s.txns) >= maxOpenTxns {
			return errorResponse(reject(proto.CodeBadRequest,
				"session holds %d open transactions", len(s.txns)))
		}
		s.nextTx++
		s.txns[s.nextTx] = b.d.Begin()
		s.srv.stats.TxnsOpen.Add(1)
		return proto.Response{Type: proto.RespTxn, Txn: s.nextTx}
	case proto.ReqTxnCommit:
		tx, ok := s.txns[r.Txn]
		if !ok {
			return errorResponse(reject(proto.CodeTxnUnknown, "unknown txn %d", r.Txn))
		}
		delete(s.txns, r.Txn)
		s.srv.stats.TxnsOpen.Add(-1)
		if err := tx.Commit(); err != nil {
			return errorResponse(err)
		}
		return s.srv.quorumGate(proto.Response{Type: proto.RespOK})
	case proto.ReqTxnRollback:
		tx, ok := s.txns[r.Txn]
		if !ok {
			return errorResponse(reject(proto.CodeTxnUnknown, "unknown txn %d", r.Txn))
		}
		delete(s.txns, r.Txn)
		s.srv.stats.TxnsOpen.Add(-1)
		tx.Rollback()
		return proto.Response{Type: proto.RespOK}
	case proto.ReqCreateTable, proto.ReqCreateIndex:
		return s.srv.quorumGate(b.runDDL(s.tenant, r))
	case proto.ReqLSN:
		if fo := s.srv.follower.Load(); fo != nil {
			return proto.Response{Type: proto.RespLSN, LSN: fo.AppliedLSN()}
		}
		return proto.Response{Type: proto.RespLSN, LSN: b.d.LastLSN()}
	case proto.ReqReplSubscribe:
		return s.startSubscription(r)
	case proto.ReqReplAck:
		if l := s.srv.leader.Load(); l != nil {
			l.Ack(r.Follower, r.LSN)
		}
		return proto.Response{Type: respNone}
	}
	return errorResponse(reject(proto.CodeBadRequest, "unknown request type %d", r.Type))
}

// startSubscription hands the connection's write side to a replication
// stream goroutine. The executor keeps running — the only requests a
// subscribed follower sends afterwards are acks, which answer nothing —
// and the write mutex keeps stream frames and any responses whole.
func (s *session) startSubscription(r *proto.Request) proto.Response {
	l := s.srv.leader.Load()
	if l == nil {
		if s.srv.follower.Load() != nil {
			return errorResponse(reject(proto.CodeNotLeader,
				"followers do not serve replication; subscribe to the leader"))
		}
		return errorResponse(reject(proto.CodeBadRequest, "replication not enabled"))
	}
	if r.Follower == "" {
		return errorResponse(reject(proto.CodeBadRequest, "subscription needs a follower id"))
	}
	fromLSN, epoch, id := r.LSN, r.Epoch, r.Follower
	s.subWG.Add(1)
	go func() {
		defer s.subWG.Done()
		l.ServeSubscriber(fromLSN, epoch, id, s.send, s.subStop)
	}()
	return proto.Response{Type: respNone}
}

// send adapts write to the stream goroutine's error-returning signature.
func (s *session) send(resp *proto.Response) error {
	if !s.write(*resp) {
		return errConnClosed
	}
	return nil
}

// write encodes one response frame into the session's reused scratch and
// writes it out. Flushing per response keeps one-shot clients snappy; the
// bufio layer still batches a coalesced run's responses written
// back-to-back.
func (s *session) write(resp proto.Response) bool {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	frame, err := proto.AppendResponse(s.wbuf[:0], &resp)
	if err != nil {
		return false
	}
	if cap(frame) <= maxRetainedBuf {
		s.wbuf = frame
	} else {
		s.wbuf = nil
	}
	if _, err := s.bw.Write(frame); err != nil {
		return false
	}
	return s.bw.Flush() == nil
}

// cleanup rolls back every transaction the session still holds. This is
// the abrupt-disconnect path's GC-safety valve: Rollback releases each
// transaction's snapshot registration, letting Clock.OldestActive advance
// past it.
func (s *session) cleanup() {
	close(s.subStop)
	s.subWG.Wait()
	for id, tx := range s.txns {
		tx.Rollback()
		delete(s.txns, id)
		s.srv.stats.TxnsOpen.Add(-1)
	}
}
