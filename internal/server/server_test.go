package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"hermit/internal/client"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/server/proto"
)

// startServer opens a DurableDB in a temp dir, serves it on a loopback
// port, and tears both down with the test.
func startServer(t *testing.T, opts Options) (*Server, *engine.DurableDB) {
	t.Helper()
	d, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := New(d, opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, d
}

func dial(t *testing.T, srv *Server, opts client.Options) *client.Conn {
	t.Helper()
	c, err := client.Dial(srv.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFullOpSurfaceRoundTrip drives every wire operation — DDL, point,
// range, range2, insert, update, delete, atomic batch, pipeline, txn —
// through a loopback client against both a plain and a partitioned table.
func TestFullOpSurfaceRoundTrip(t *testing.T) {
	srv, _ := startServer(t, Options{})
	c := dial(t, srv, client.Options{})

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("plain", []string{"id", "x", "y"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("parted", []string{"id", "x"}, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBTreeIndex("plain", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateHermitIndex("plain", 2, 1); err != nil {
		t.Fatal(err)
	}

	for _, table := range []string{"plain", "parted"} {
		width := 3
		if table == "parted" {
			width = 2
		}
		for i := 0; i < 50; i++ {
			row := []float64{float64(i), float64(i * 2), float64(i * 3)}[:width]
			if err := c.Insert(table, row); err != nil {
				t.Fatalf("%s insert %d: %v", table, i, err)
			}
		}
		// Point on the pk column.
		rows, err := c.Point(table, 0, 7)
		if err != nil {
			t.Fatalf("%s point: %v", table, err)
		}
		if len(rows) != 1 || rows[0][1] != 14 {
			t.Fatalf("%s point: got %v", table, rows)
		}
		// Range over the secondary column.
		rows, err = c.Range(table, 1, 10, 20)
		if err != nil {
			t.Fatalf("%s range: %v", table, err)
		}
		if len(rows) != 6 { // x = 10,12,...,20
			t.Fatalf("%s range: %d rows, want 6: %v", table, len(rows), rows)
		}
		// Update + verify, delete + verify.
		if err := c.Update(table, 7, 1, 1000); err != nil {
			t.Fatalf("%s update: %v", table, err)
		}
		rows, err = c.Point(table, 0, 7)
		if err != nil || len(rows) != 1 || rows[0][1] != 1000 {
			t.Fatalf("%s post-update point: rows=%v err=%v", table, rows, err)
		}
		found, err := c.Delete(table, 7)
		if err != nil || !found {
			t.Fatalf("%s delete: found=%v err=%v", table, found, err)
		}
		found, err = c.Delete(table, 7)
		if err != nil || found {
			t.Fatalf("%s double delete: found=%v err=%v", table, found, err)
		}
		if err := c.Insert(table, []float64{7, 7, 7}[:width]); err != nil {
			t.Fatalf("%s reinsert: %v", table, err)
		}
	}

	// Range2 (plain table only: conjunctive two-column predicate).
	rows, err := c.Range2("plain", 1, 0, 40, 2, 0, 30)
	if err != nil {
		t.Fatalf("range2: %v", err)
	}
	for _, r := range rows {
		if r[1] < 0 || r[1] > 40 || r[2] < 0 || r[2] > 30 {
			t.Fatalf("range2 row outside predicate: %v", r)
		}
	}

	// Atomic batch: all-or-nothing on a duplicate-key failure.
	res, err := c.Batch([]client.Op{
		{Kind: client.OpInsert, Table: "plain", Row: []float64{500, 0, 0}},
		{Kind: client.OpInsert, Table: "plain", Row: []float64{3, 0, 0}}, // dup pk
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if res[0].Err == nil || !errors.Is(res[0].Err, client.ErrAborted) {
		t.Fatalf("batch result 0: want ErrAborted, got %v", res[0].Err)
	}
	if res[1].Err == nil || errors.Is(res[1].Err, client.ErrAborted) {
		t.Fatalf("batch result 1 should carry its own error, got %v", res[1].Err)
	}
	if rows, err := c.Point("plain", 0, 500); err != nil || len(rows) != 0 {
		t.Fatalf("aborted batch leaked row 500: rows=%v err=%v", rows, err)
	}

	// Successful mixed batch, including a read at the batch snapshot.
	res, err = c.Batch([]client.Op{
		{Kind: client.OpInsert, Table: "plain", Row: []float64{600, 1, 1}},
		{Kind: client.OpDelete, Table: "plain", PK: 5},
		{Kind: client.OpUpdate, Table: "plain", PK: 6, Col: 2, Value: -1},
		{Kind: client.OpRange, Table: "plain", Col: 0, Lo: 0, Hi: 3},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, r := range res[:3] {
		if r.Err != nil {
			t.Fatalf("batch op %d: %v", i, r.Err)
		}
	}
	if !res[1].Found {
		t.Fatal("batch delete did not find row 5")
	}
	if len(res[3].Rows) != 4 {
		t.Fatalf("batch range: %d rows, want 4", len(res[3].Rows))
	}

	// Pipeline: a mixed burst, responses in order.
	p := c.Pipeline()
	for i := 0; i < 30; i++ {
		p.Point("plain", 0, float64(i%10))
	}
	p.Insert("plain", []float64{700, 0, 0})
	p.Point("plain", 0, 700)
	results, err := p.Flush()
	if err != nil {
		t.Fatalf("pipeline flush: %v", err)
	}
	if len(results) != 32 {
		t.Fatalf("pipeline: %d results, want 32", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("pipeline result %d: %v", i, r.Err)
		}
	}
	if len(results[31].Rows) != 1 || results[31].Rows[0][0] != 700 {
		t.Fatalf("pipelined insert not visible to later pipelined read: %v", results[31].Rows)
	}

	// Transactions: snapshot isolation + commit visibility.
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("plain", []float64{800, 8, 8}); err != nil {
		t.Fatal(err)
	}
	if rows, err := tx.Point("plain", 0, 800); err != nil || len(rows) != 0 {
		// Buffered writes are invisible until commit (engine contract).
		t.Fatalf("txn read-own-write: rows=%v err=%v (buffered writes must be invisible)", rows, err)
	}
	if rows, err := c.Point("plain", 0, 800); err != nil || len(rows) != 0 {
		t.Fatalf("uncommitted insert visible outside txn: %v %v", rows, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if rows, err := c.Point("plain", 0, 800); err != nil || len(rows) != 1 {
		t.Fatalf("committed insert not visible: rows=%v err=%v", rows, err)
	}

	// Write-write conflict: first committer wins.
	c2 := dial(t, srv, client.Options{})
	tx1, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Update("plain", 800, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update("plain", 800, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("second committer: want ErrConflict, got %v", err)
	}

	// Rollback discards.
	tx, err = c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("plain", []float64{900, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if rows, _ := c.Point("plain", 0, 900); len(rows) != 0 {
		t.Fatalf("rolled-back insert visible: %v", rows)
	}

	// Unknown txn id.
	if err := tx.Commit(); !errors.Is(err, client.ErrTxnUnknown) {
		t.Fatalf("commit after rollback: want ErrTxnUnknown, got %v", err)
	}
}

// TestSessionTxnLeakOnAbruptDisconnect opens a transaction (which pins a
// snapshot at its begin timestamp), kills the connection without commit
// or rollback, and asserts the server's session teardown releases the
// snapshot: the clock's GC horizon must advance past the orphaned
// transaction's timestamp.
func TestSessionTxnLeakOnAbruptDisconnect(t *testing.T) {
	srv, d := startServer(t, Options{})
	c := dial(t, srv, client.Options{})
	if err := c.CreateTable("t", []string{"id", "x"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("t", []float64{1, 1}); err != nil {
		t.Fatal(err)
	}

	clk := d.Clock()
	victim := dial(t, srv, client.Options{})
	if _, err := victim.Begin(); err != nil {
		t.Fatal(err)
	}
	pinned := clk.OldestActive()

	// Commit a few more transactions so the clock moves past the pin.
	for i := 2; i < 6; i++ {
		if err := c.Insert("t", []float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := clk.OldestActive(); got != pinned {
		t.Fatalf("open wire txn does not pin the GC horizon: %d, want %d", got, pinned)
	}

	// Abrupt disconnect: no rollback, no commit, just a dead socket.
	victim.Close()

	deadline := time.Now().Add(5 * time.Second)
	for clk.OldestActive() <= pinned {
		if time.Now().After(deadline) {
			t.Fatalf("GC horizon still pinned at %d after disconnect", clk.OldestActive())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if open := srv.Stats().TxnsOpen; open != 0 {
		t.Fatalf("%d wire txns still open after disconnect", open)
	}
}

// TestAdmissionControlBackpressure floods a tiny-MaxInflight server with
// a pipelined burst and asserts overload rejections are real, positional,
// and non-fatal: every request gets a response, rejected ones carry
// CodeOverloaded, and the session keeps working afterwards.
func TestAdmissionControlBackpressure(t *testing.T) {
	srv, _ := startServer(t, Options{MaxInflight: 2, QueueDepth: 512})
	c := dial(t, srv, client.Options{})
	if err := c.CreateTable("t", []string{"id", "x"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Insert("t", []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	const burst = 400
	p := c.Pipeline()
	for i := 0; i < burst; i++ {
		p.Range("t", 1, 0, 20)
	}
	results, err := p.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	rejected := 0
	for _, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, client.ErrOverloaded) {
				t.Fatalf("non-overload error in burst: %v", r.Err)
			}
			rejected++
		}
	}
	if got := srv.Stats().Rejected; got != int64(rejected) {
		t.Fatalf("stats.Rejected=%d, client saw %d", got, rejected)
	}
	if rejected == 0 {
		// With MaxInflight 2 and a 400-deep burst arriving faster than
		// single-CPU execution drains it, shedding is effectively certain;
		// if the race somehow admits everything, the test is inconclusive
		// rather than wrong.
		t.Skip("burst fully admitted; backpressure not exercised on this run")
	}
	// The session survives shedding.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after burst: %v", err)
	}
}

// TestTenantNamespacesAndQuota verifies namespace isolation (same table
// name, different tenants, different data; '@' rejected in table names)
// and the per-tenant op quota.
func TestTenantNamespacesAndQuota(t *testing.T) {
	srv, _ := startServer(t, Options{TenantOps: 40})
	alice := dial(t, srv, client.Options{Tenant: "alice"})
	bob := dial(t, srv, client.Options{Tenant: "bob"})

	for who, c := range map[string]*client.Conn{"alice": alice, "bob": bob} {
		if err := c.CreateTable("t", []string{"id", "x"}, 0, 0); err != nil {
			t.Fatalf("%s create: %v", who, err)
		}
	}
	if err := alice.Insert("t", []float64{1, 10}); err != nil {
		t.Fatal(err)
	}
	if err := bob.Insert("t", []float64{1, 20}); err != nil {
		t.Fatal(err)
	}
	rows, err := alice.Point("t", 0, 1)
	if err != nil || len(rows) != 1 || rows[0][1] != 10 {
		t.Fatalf("alice sees %v (err %v), want her own row", rows, err)
	}
	rows, err = bob.Point("t", 0, 1)
	if err != nil || len(rows) != 1 || rows[0][1] != 20 {
		t.Fatalf("bob sees %v (err %v), want his own row", rows, err)
	}
	if err := alice.Insert("evil@t", []float64{9, 9}); err == nil {
		t.Fatal("'@' accepted in a client table name")
	}
	if err := alice.Insert("t#0", []float64{9, 9}); err == nil {
		t.Fatal("'#' accepted in a client table name")
	}

	// Exhaust alice's quota; bob must be unaffected.
	var quotaErr error
	for i := 0; i < 60 && quotaErr == nil; i++ {
		_, quotaErr = alice.Point("t", 0, 1)
	}
	if !errors.Is(quotaErr, client.ErrQuota) {
		t.Fatalf("alice never hit her quota: %v", quotaErr)
	}
	if _, err := bob.Point("t", 0, 1); err != nil {
		t.Fatalf("bob collateral damage from alice's quota: %v", err)
	}
	if srv.Stats().QuotaRejected == 0 {
		t.Fatal("QuotaRejected counter untouched")
	}
}

// TestGracefulDrain verifies Close lets queued pipelined work finish and
// that open transactions are rolled back (snapshots released) rather than
// leaked.
func TestGracefulDrain(t *testing.T) {
	srv, d := startServer(t, Options{DrainTimeout: 3 * time.Second})
	c := dial(t, srv, client.Options{})
	if err := c.CreateTable("t", []string{"id", "x"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("t", []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	// Leave a transaction open across the drain.
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	before := d.Clock().OldestActive()

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if open := srv.Stats().TxnsOpen; open != 0 {
		t.Fatalf("%d txns open after drain", open)
	}
	if got := d.Clock().OldestActive(); got < before {
		t.Fatalf("GC horizon regressed across drain: %d < %d", got, before)
	}
	// New connections are refused.
	if _, err := client.Dial(srv.Addr().String(), client.Options{}); err == nil {
		t.Fatal("dial succeeded after Close")
	}
	// Closing twice is safe.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMalformedFrameEndsSessionCleanly writes garbage bytes and asserts
// the server drops the connection without wedging the listener.
func TestMalformedFrameEndsSessionCleanly(t *testing.T) {
	srv, _ := startServer(t, Options{})
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A frame with a hostile length prefix.
	nc.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	buf := make([]byte, 16)
	nc.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		// Any response at all would mean the server tried to parse past a
		// refused frame; it must just hang up.
		t.Fatal("server responded to a hostile frame instead of closing")
	}
	// The listener is still fine.
	c := dial(t, srv, client.Options{})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolErrorResponses exercises error mapping end to end: missing
// table, duplicate key, bad batch nesting.
func TestProtocolErrorResponses(t *testing.T) {
	srv, _ := startServer(t, Options{})
	c := dial(t, srv, client.Options{})
	if _, err := c.Point("missing", 0, 1); !errors.Is(err, client.ErrNoTable) {
		t.Fatalf("want ErrNoTable, got %v", err)
	}
	if err := c.CreateTable("t", []string{"id"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t", []string{"id"}, 0, 0); !errors.Is(err, client.ErrDupKey) {
		t.Fatalf("duplicate create-table: want ErrDupKey, got %v", err)
	}
	if err := c.Insert("t", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("t", []float64{1}); !errors.Is(err, client.ErrDupKey) {
		t.Fatalf("duplicate insert: want ErrDupKey, got %v", err)
	}
	var serr *client.Error
	if err := c.Insert("t", []float64{1}); !errors.As(err, &serr) || serr.Code != proto.CodeDupKey {
		t.Fatalf("error does not expose wire code: %v", err)
	}
}
