package correlation

import (
	"math"
	"math/rand"
	"testing"

	"hermit/internal/storage"
)

// buildTable creates a 4-column table: col0 = key, col1 = 2*col0+5 (linear),
// col2 = sigmoid(col0) (monotonic), col3 = random (uncorrelated).
func buildTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tb := storage.NewTable(4)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		sig := 100 / (1 + math.Exp(-(x-500)/100))
		if _, err := tb.Insert([]float64{x, 2*x + 5, sig, rng.Float64() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestMeasurePairLinear(t *testing.T) {
	tb := buildTable(t, 5000)
	m, err := MeasurePair(tb, 0, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Linear {
		t.Fatalf("kind=%v pearson=%v", m.Kind, m.Pearson)
	}
	if m.Pearson < 0.999 {
		t.Fatalf("pearson=%v", m.Pearson)
	}
}

func TestMeasurePairMonotonic(t *testing.T) {
	tb := buildTable(t, 5000)
	m, err := MeasurePair(tb, 0, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind == None {
		t.Fatalf("sigmoid pair not detected: %+v", m)
	}
	if m.Spearman < 0.999 {
		t.Fatalf("spearman=%v", m.Spearman)
	}
}

func TestMeasurePairUncorrelated(t *testing.T) {
	tb := buildTable(t, 5000)
	m, err := MeasurePair(tb, 0, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != None {
		t.Fatalf("random pair misclassified: %+v", m)
	}
}

func TestMeasurePairEmpty(t *testing.T) {
	tb := storage.NewTable(2)
	if _, err := MeasurePair(tb, 0, 1, DefaultConfig()); err != ErrEmptyTable {
		t.Fatalf("want ErrEmptyTable, got %v", err)
	}
}

func TestDiscoverOrdering(t *testing.T) {
	tb := buildTable(t, 5000)
	ms, err := Discover(tb, []int{0}, []int{1, 2, 3}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("found %d correlations, want 2 (linear+sigmoid): %+v", len(ms), ms)
	}
	// Linear should rank first on the tie-break.
	if ms[0].Host != 1 {
		t.Fatalf("best host=%d, want 1 (linear)", ms[0].Host)
	}
	// Self-pair skipped.
	ms2, err := Discover(tb, []int{1}, []int{1}, DefaultConfig())
	if err != nil || len(ms2) != 0 {
		t.Fatalf("self pair: %v %v", ms2, err)
	}
}

func TestBestHost(t *testing.T) {
	tb := buildTable(t, 3000)
	m, ok, err := BestHost(tb, 0, []int{1, 2, 3}, DefaultConfig())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m.Host != 1 {
		t.Fatalf("host=%d", m.Host)
	}
	_, ok, err = BestHost(tb, 3, []int{0}, DefaultConfig())
	if err != nil || ok {
		t.Fatalf("random target should find no host, ok=%v err=%v", ok, err)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	tb := buildTable(t, 20000)
	cfg := DefaultConfig()
	cfg.SampleSize = 500
	a, err := MeasurePair(tb, 0, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasurePair(tb, 0, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spearman != b.Spearman || a.Pearson != b.Pearson {
		t.Fatalf("sampling not deterministic: %+v vs %+v", a, b)
	}
	// Sampled estimate close to full-scan estimate.
	cfg.SampleSize = 0
	full, err := MeasurePair(tb, 0, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Spearman-a.Spearman) > 0.05 {
		t.Fatalf("sampled %v vs full %v", a.Spearman, full.Spearman)
	}
}

func TestNonMonotonicRejected(t *testing.T) {
	// Appendix D.1: sin correlations must be rejected (Spearman ~ 0).
	tb := storage.NewTable(2)
	for i := 0; i < 5000; i++ {
		x := -10 + 20*float64(i)/4999
		tb.Insert([]float64{x, math.Sin(x)})
	}
	m, err := MeasurePair(tb, 0, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != None {
		t.Fatalf("sin misclassified as %v (pearson=%v spearman=%v)", m.Kind, m.Pearson, m.Spearman)
	}
}

func TestKindString(t *testing.T) {
	if None.String() != "none" || Linear.String() != "linear" || Monotonic.String() != "monotonic" {
		t.Fatal("Kind.String broken")
	}
}
