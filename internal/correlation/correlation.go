// Package correlation implements the correlation discovery substrate Hermit
// relies on (paper §2.2 and Appendix D.1). It evaluates candidate column
// pairs with Pearson and Spearman coefficients — the two measures the paper
// recommends a DBA use — and offers a CORDS-style sampled search that finds
// soft functional dependencies without scanning the full table.
package correlation

import (
	"errors"
	"sort"

	"hermit/internal/stats"
	"hermit/internal/storage"
)

// Kind classifies a detected correlation the way Appendix D.1 does: linear
// correlations are found by Pearson, monotonic ones by Spearman, and
// non-monotonic relations (e.g. sine) are flagged as unusable because a
// single host value maps back to many target values.
type Kind int

const (
	// None means no usable correlation was detected.
	None Kind = iota
	// Linear means |Pearson| is above the threshold.
	Linear
	// Monotonic means |Spearman| is above the threshold but Pearson is not:
	// the relation is curved yet order-preserving (e.g. sigmoid).
	Monotonic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Monotonic:
		return "monotonic"
	default:
		return "none"
	}
}

// Measure is the correlation strength of one column pair.
type Measure struct {
	Target   int // column the new index is requested on (M)
	Host     int // existing indexed column (N)
	Pearson  float64
	Spearman float64
	Kind     Kind
}

// Config tunes discovery.
type Config struct {
	// PearsonThreshold above which a pair counts as Linear. Default 0.9.
	PearsonThreshold float64
	// SpearmanThreshold above which a pair counts as Monotonic. Default 0.9.
	SpearmanThreshold float64
	// SampleSize caps the number of rows examined per pair, following
	// CORDS' observation that a few thousand samples suffice. Zero means
	// scan everything.
	SampleSize int
	// Seed makes sampling deterministic for tests; 0 uses seed 1.
	Seed int64
}

// DefaultConfig returns thresholds suitable for the paper's workloads.
func DefaultConfig() Config {
	return Config{
		PearsonThreshold:  0.9,
		SpearmanThreshold: 0.9,
		SampleSize:        10000,
		Seed:              1,
	}
}

func (c Config) sanitized() Config {
	if c.PearsonThreshold <= 0 {
		c.PearsonThreshold = 0.9
	}
	if c.SpearmanThreshold <= 0 {
		c.SpearmanThreshold = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrEmptyTable is returned when discovery runs over a table with no rows.
var ErrEmptyTable = errors.New("correlation: empty table")

// MeasurePair computes the coefficients for one (target, host) column pair,
// sampling per cfg.
func MeasurePair(t *storage.Table, target, host int, cfg Config) (Measure, error) {
	cfg = cfg.sanitized()
	xs, ys, err := samplePairs(t, target, host, cfg)
	if err != nil {
		return Measure{}, err
	}
	m := Measure{
		Target:   target,
		Host:     host,
		Pearson:  stats.Pearson(xs, ys),
		Spearman: stats.Spearman(xs, ys),
	}
	m.Kind = classify(m, cfg)
	return m, nil
}

func classify(m Measure, cfg Config) Kind {
	switch {
	case abs(m.Pearson) >= cfg.PearsonThreshold:
		return Linear
	case abs(m.Spearman) >= cfg.SpearmanThreshold:
		return Monotonic
	default:
		return None
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Discover evaluates every (target, host) combination where target is an
// unindexed column and host is an indexed one, and returns the usable
// correlations sorted by strength (best first). This is the hook an RDBMS's
// index-creation path calls to decide whether a requested index can be
// built as a Hermit index instead of a complete B+-tree.
func Discover(t *storage.Table, targets, hosts []int, cfg Config) ([]Measure, error) {
	cfg = cfg.sanitized()
	var out []Measure
	for _, tc := range targets {
		for _, hc := range hosts {
			if tc == hc {
				continue
			}
			m, err := MeasurePair(t, tc, hc, cfg)
			if err != nil {
				return nil, err
			}
			if m.Kind != None {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return strength(out[a]) > strength(out[b])
	})
	return out, nil
}

// BestHost returns the strongest usable correlation for the target column,
// with ok=false when none clears the thresholds.
func BestHost(t *storage.Table, target int, hosts []int, cfg Config) (Measure, bool, error) {
	ms, err := Discover(t, []int{target}, hosts, cfg)
	if err != nil {
		return Measure{}, false, err
	}
	if len(ms) == 0 {
		return Measure{}, false, nil
	}
	return ms[0], true, nil
}

// strength orders candidates: prefer the higher of the two coefficients,
// breaking ties toward linear relations, which TRS-Tree fits with fewer
// leaves.
func strength(m Measure) float64 {
	s := abs(m.Spearman)
	if p := abs(m.Pearson); p > s {
		s = p
	}
	if m.Kind == Linear {
		s += 1e-6
	}
	return s
}

// samplePairs extracts up to cfg.SampleSize (target, host) pairs with a
// stats.Reservoir over one table scan, so discovery costs one pass no
// matter the table size.
func samplePairs(t *storage.Table, target, host int, cfg Config) (xs, ys []float64, err error) {
	if t.Len() == 0 {
		return nil, nil, ErrEmptyTable
	}
	limit := cfg.SampleSize
	if limit <= 0 || limit > t.Len() {
		limit = t.Len()
	}
	res := stats.NewReservoir(limit, cfg.Seed)
	err = t.ScanPairs(target, host, func(_ storage.RID, m, n float64) bool {
		res.Add(m, n)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	xs, ys = res.Sample()
	return xs, ys, nil
}
