// Command benchcheck validates the machine-readable BENCH_*.json
// artifacts the bench suite emits: every artifact must parse as JSON and
// record the experiment id, the generation seed, and the CPU topology
// (num_cpu, gomaxprocs) the numbers were measured under — without those
// a stored artifact cannot be compared against a later run. CI runs it
// after `make bench-all` via `make bench-check`; the multi-core lane
// additionally pins the expected GOMAXPROCS.
//
// BENCH_scenarios.json gets deeper validation: at least four scenarios,
// each with a spec hash, matching trace_hash and trace_hash_recheck (the
// compile-determinism proof), and per-phase quantiles present and
// ordered p50 <= p99 <= p999.
//
// Usage:
//
//	go run ./internal/tools/benchcheck [-dir .] [-expect-gomaxprocs N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// artifact is the header every BENCH_*.json report shares; experiment
// files carry more fields, which benchcheck deliberately ignores.
type artifact struct {
	Experiment string          `json:"experiment"`
	Seed       *int64          `json:"seed"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Caveat     string          `json:"caveat"`
	Raw        json.RawMessage `json:"-"`
}

func main() {
	var (
		dir    = flag.String("dir", ".", "directory holding BENCH_*.json artifacts")
		expect = flag.Int("expect-gomaxprocs", 0, "require every artifact to record this gomaxprocs (0 = only require presence)")
	)
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no BENCH_*.json artifacts in %s\n", *dir)
		os.Exit(1)
	}
	sort.Strings(paths)

	bad := 0
	for _, path := range paths {
		if err := check(path, *expect); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", filepath.Base(path), err)
			bad++
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", filepath.Base(path))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d of %d artifacts failed\n", bad, len(paths))
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d artifacts ok\n", len(paths))
}

// check validates one artifact file.
func check(path string, expectGomaxprocs int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var a artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if a.Experiment == "" {
		return fmt.Errorf("missing \"experiment\"")
	}
	if a.Seed == nil {
		return fmt.Errorf("missing \"seed\"")
	}
	if a.NumCPU <= 0 {
		return fmt.Errorf("\"num_cpu\" is %d, want > 0", a.NumCPU)
	}
	if a.GOMAXPROCS <= 0 {
		return fmt.Errorf("\"gomaxprocs\" is %d, want > 0", a.GOMAXPROCS)
	}
	if expectGomaxprocs > 0 && a.GOMAXPROCS != expectGomaxprocs {
		return fmt.Errorf("\"gomaxprocs\" is %d, want %d (was the bench run with GOMAXPROCS set?)",
			a.GOMAXPROCS, expectGomaxprocs)
	}
	if a.Experiment == "scenarios" {
		return checkScenarios(raw)
	}
	if a.Experiment == "hotpath" {
		return checkHotpath(raw)
	}
	return nil
}

// hotpathArtifact is the slice of BENCH_hotpath.json benchcheck verifies
// beyond the shared header.
type hotpathArtifact struct {
	Lanes []struct {
		Workload    string   `json:"workload"`
		GOMAXPROCS  int      `json:"gomaxprocs"`
		Ops         int      `json:"ops"`
		NsPerOp     *float64 `json:"ns_per_op"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
		OpsPerSec   *float64 `json:"ops_per_sec"`
	} `json:"lanes"`
}

// hotpathLaneProcs are the GOMAXPROCS values every hotpath workload must
// record a lane for — the single-core number and the multi-core proof.
var hotpathLaneProcs = []int{1, 4}

// checkHotpath enforces the hotpath artifact's extra contract: every
// workload carries a complete measurement (ops, ns/op, allocs/op,
// throughput) at both GOMAXPROCS lanes, so allocation regressions and
// multi-core claims are both checkable from the stored artifact.
func checkHotpath(raw []byte) error {
	var ha hotpathArtifact
	if err := json.Unmarshal(raw, &ha); err != nil {
		return fmt.Errorf("hotpath block: %v", err)
	}
	if len(ha.Lanes) == 0 {
		return fmt.Errorf("no lanes recorded")
	}
	procsSeen := map[string]map[int]bool{}
	for _, l := range ha.Lanes {
		if l.Workload == "" {
			return fmt.Errorf("lane with empty workload")
		}
		if l.GOMAXPROCS <= 0 {
			return fmt.Errorf("%s: lane \"gomaxprocs\" is %d, want > 0", l.Workload, l.GOMAXPROCS)
		}
		if l.Ops <= 0 {
			return fmt.Errorf("%s@%d: no ops recorded", l.Workload, l.GOMAXPROCS)
		}
		if l.NsPerOp == nil || *l.NsPerOp <= 0 {
			return fmt.Errorf("%s@%d: missing ns_per_op", l.Workload, l.GOMAXPROCS)
		}
		if l.AllocsPerOp == nil || *l.AllocsPerOp < 0 {
			return fmt.Errorf("%s@%d: missing allocs_per_op", l.Workload, l.GOMAXPROCS)
		}
		if l.OpsPerSec == nil || *l.OpsPerSec <= 0 {
			return fmt.Errorf("%s@%d: missing ops_per_sec", l.Workload, l.GOMAXPROCS)
		}
		if procsSeen[l.Workload] == nil {
			procsSeen[l.Workload] = map[int]bool{}
		}
		procsSeen[l.Workload][l.GOMAXPROCS] = true
	}
	for w, seen := range procsSeen {
		for _, p := range hotpathLaneProcs {
			if !seen[p] {
				return fmt.Errorf("%s: no GOMAXPROCS=%d lane (multi-core numbers must be recorded)", w, p)
			}
		}
	}
	return nil
}

// scenariosArtifact is the slice of BENCH_scenarios.json benchcheck
// verifies beyond the shared header.
type scenariosArtifact struct {
	Scenarios []struct {
		Name             string `json:"name"`
		Target           string `json:"target"`
		SpecHash         string `json:"spec_hash"`
		TraceHash        string `json:"trace_hash"`
		TraceHashRecheck string `json:"trace_hash_recheck"`
		Phases           []struct {
			Name       string   `json:"name"`
			Ops        int      `json:"ops"`
			P50Micros  *float64 `json:"p50_us"`
			P99Micros  *float64 `json:"p99_us"`
			P999Micros *float64 `json:"p999_us"`
		} `json:"phases"`
	} `json:"scenarios"`
}

// checkScenarios enforces the scenario artifact's extra contract: the
// canned-spec coverage floor, the trace-hash determinism proof, and
// complete, ordered tail quantiles per phase.
func checkScenarios(raw []byte) error {
	var sa scenariosArtifact
	if err := json.Unmarshal(raw, &sa); err != nil {
		return fmt.Errorf("scenarios block: %v", err)
	}
	if len(sa.Scenarios) < 4 {
		return fmt.Errorf("only %d scenarios recorded, want >= 4", len(sa.Scenarios))
	}
	for _, s := range sa.Scenarios {
		if s.Name == "" || s.Target == "" {
			return fmt.Errorf("scenario with empty name/target")
		}
		if s.SpecHash == "" || s.TraceHash == "" || s.TraceHashRecheck == "" {
			return fmt.Errorf("%s: missing spec/trace hashes", s.Name)
		}
		if s.TraceHash != s.TraceHashRecheck {
			return fmt.Errorf("%s: trace_hash %s != trace_hash_recheck %s — op trace is not deterministic",
				s.Name, s.TraceHash, s.TraceHashRecheck)
		}
		if len(s.Phases) == 0 {
			return fmt.Errorf("%s: no phases", s.Name)
		}
		for _, ph := range s.Phases {
			if ph.Ops <= 0 {
				return fmt.Errorf("%s/%s: no ops recorded", s.Name, ph.Name)
			}
			if ph.P50Micros == nil || ph.P99Micros == nil || ph.P999Micros == nil {
				return fmt.Errorf("%s/%s: missing p50/p99/p999", s.Name, ph.Name)
			}
			if *ph.P50Micros <= 0 || *ph.P99Micros < *ph.P50Micros || *ph.P999Micros < *ph.P99Micros {
				return fmt.Errorf("%s/%s: quantiles out of order: p50=%g p99=%g p999=%g",
					s.Name, ph.Name, *ph.P50Micros, *ph.P99Micros, *ph.P999Micros)
			}
		}
	}
	return nil
}
