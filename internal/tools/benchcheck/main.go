// Command benchcheck validates the machine-readable BENCH_*.json
// artifacts the bench suite emits: every artifact must parse as JSON and
// record the experiment id, the generation seed, and the CPU topology
// (num_cpu, gomaxprocs) the numbers were measured under — without those
// a stored artifact cannot be compared against a later run. CI runs it
// after `make bench-all` via `make bench-check`; the multi-core lane
// additionally pins the expected GOMAXPROCS.
//
// Usage:
//
//	go run ./internal/tools/benchcheck [-dir .] [-expect-gomaxprocs N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// artifact is the header every BENCH_*.json report shares; experiment
// files carry more fields, which benchcheck deliberately ignores.
type artifact struct {
	Experiment string          `json:"experiment"`
	Seed       *int64          `json:"seed"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Caveat     string          `json:"caveat"`
	Raw        json.RawMessage `json:"-"`
}

func main() {
	var (
		dir    = flag.String("dir", ".", "directory holding BENCH_*.json artifacts")
		expect = flag.Int("expect-gomaxprocs", 0, "require every artifact to record this gomaxprocs (0 = only require presence)")
	)
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no BENCH_*.json artifacts in %s\n", *dir)
		os.Exit(1)
	}
	sort.Strings(paths)

	bad := 0
	for _, path := range paths {
		if err := check(path, *expect); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", filepath.Base(path), err)
			bad++
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", filepath.Base(path))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d of %d artifacts failed\n", bad, len(paths))
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d artifacts ok\n", len(paths))
}

// check validates one artifact file.
func check(path string, expectGomaxprocs int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var a artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if a.Experiment == "" {
		return fmt.Errorf("missing \"experiment\"")
	}
	if a.Seed == nil {
		return fmt.Errorf("missing \"seed\"")
	}
	if a.NumCPU <= 0 {
		return fmt.Errorf("\"num_cpu\" is %d, want > 0", a.NumCPU)
	}
	if a.GOMAXPROCS <= 0 {
		return fmt.Errorf("\"gomaxprocs\" is %d, want > 0", a.GOMAXPROCS)
	}
	if expectGomaxprocs > 0 && a.GOMAXPROCS != expectGomaxprocs {
		return fmt.Errorf("\"gomaxprocs\" is %d, want %d (was the bench run with GOMAXPROCS set?)",
			a.GOMAXPROCS, expectGomaxprocs)
	}
	return nil
}
