// Command doccheck is the repository's godoc lint: it fails when an
// exported identifier in the given packages lacks a doc comment. It walks
// top-level declarations — functions, methods, types, and const/var
// groups — and accepts either a comment on the group or one on the
// individual specification, matching standard Go practice.
//
// Usage:
//
//	go run ./internal/tools/doccheck <pkg-dir> [<pkg-dir>...]
//
// Test files are skipped. The tool exists so the public API (package
// hermitdb) and the engine it fronts can never again accumulate exported
// identifiers without documentation; CI runs it via `make doc-check`.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <pkg-dir> [<pkg-dir>...]")
		os.Exit(2)
	}
	var missing []string
	for _, dir := range os.Args[1:] {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns its undocumented
// exported declarations as "file:line: name" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "func "+funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (functions without receivers count as exported).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// funcName renders Func or (Recv).Method for messages.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		b.WriteString("*")
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		b.WriteString(id.Name)
	}
	b.WriteString(").")
	b.WriteString(d.Name.Name)
	return b.String()
}

// checkGenDecl handles type/const/var declarations: a doc comment on the
// group covers every spec; otherwise each exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), d.Tok.String()+" "+name.Name)
				}
			}
		}
	}
}
