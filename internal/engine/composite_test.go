package engine

import (
	"math/rand"
	"sort"
	"testing"

	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// newStockHistory builds the paper's running-example table:
// 0=TIME, 1=DJ, 2=SP (correlated with DJ), 3=VOL, with the (TIME, DJ)
// composite host index in place.
func newStockHistory(t testing.TB, n int, seed int64) *Table {
	t.Helper()
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("stock_history", []string{"TIME", "DJ", "SP", "VOL"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	dj := 2500.0
	for day := 0; day < n; day++ {
		dj *= 1 + rng.NormFloat64()*0.01
		sp := dj/8 + rng.NormFloat64()*0.05
		if rng.Float64() < 0.003 {
			sp = rng.Float64() * dj / 4 // decoupled day
		}
		if _, err := tb.Insert([]float64{float64(day), dj, sp, rng.Float64() * 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.CreateCompositeBTreeIndex(0, 1, false); err != nil {
		t.Fatal(err)
	}
	return tb
}

func expected2(tb *Table, aCol int, aLo, aHi float64, bCol int, bLo, bHi float64) []storage.RID {
	var out []storage.RID
	tb.Store().Scan(func(rid storage.RID, row []float64) bool {
		if row[aCol] >= aLo && row[aCol] <= aHi && row[bCol] >= bLo && row[bCol] <= bHi {
			out = append(out, rid)
		}
		return true
	})
	return out
}

func TestCompositeEngineRunningExample(t *testing.T) {
	tbH := newStockHistory(t, 15000, 1)
	tbB := newStockHistory(t, 15000, 1)
	if _, err := tbH.CreateCompositeHermitIndex(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbB.CreateCompositeBTreeIndex(0, 2, true); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		aLo := rng.Float64() * 14000
		aHi := aLo + rng.Float64()*2000
		spLo := 100 + rng.Float64()*400
		spHi := spLo + rng.Float64()*100
		want := expected2(tbH, 0, aLo, aHi, 2, spLo, spHi)
		rh, sh, err := tbH.RangeQuery2(0, aLo, aHi, 2, spLo, spHi)
		if err != nil {
			t.Fatal(err)
		}
		rb, sb, err := tbB.RangeQuery2(0, aLo, aHi, 2, spLo, spHi)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRIDs(rh, want) {
			t.Fatalf("composite hermit wrong for TIME[%v,%v] SP[%v,%v]", aLo, aHi, spLo, spHi)
		}
		if !sameRIDs(rb, want) {
			t.Fatal("composite baseline wrong")
		}
		if sh.Kind != KindHermit || sb.Kind != KindBTree {
			t.Fatalf("kinds %v/%v", sh.Kind, sb.Kind)
		}
	}
	// The composite hermit's TRS-Tree is far smaller than the complete
	// composite index.
	mH, mB := tbH.Memory(), tbB.Memory()
	if mH.NewBytes*3 > mB.NewBytes {
		t.Fatalf("composite hermit new=%d not ≪ baseline new=%d", mH.NewBytes, mB.NewBytes)
	}
	if tbH.CompositeHermit(0, 2) == nil {
		t.Fatal("accessor")
	}
}

func TestCompositeEngineErrors(t *testing.T) {
	tb := newStockHistory(t, 500, 3)
	if _, err := tb.CreateCompositeBTreeIndex(0, 99, false); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
	if _, err := tb.CreateCompositeBTreeIndex(0, 1, false); err != ErrDupIndex {
		t.Fatal(err)
	}
	if _, err := tb.CreateCompositeHermitIndex(0, 2, 3); err != ErrNoHostIndex {
		t.Fatal(err)
	}
	if _, err := tb.CreateCompositeHermitIndex(0, 99, 1); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
	if _, err := tb.CreateCompositeHermitIndex(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateCompositeHermitIndex(0, 2, 1); err != ErrDupIndex {
		t.Fatal(err)
	}
	if _, _, err := tb.RangeQuery2(99, 0, 1, 0, 0, 1); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
	// Logical-pointer DB rejects composite indexes.
	db := NewDB(hermit.LogicalPointers)
	tb2, _ := db.CreateTable("t", []string{"a", "b"}, 0)
	tb2.Insert([]float64{1, 2})
	if _, err := tb2.CreateCompositeBTreeIndex(0, 1, false); err == nil {
		t.Fatal("logical composite accepted")
	}
	if _, err := tb2.CreateCompositeHermitIndex(0, 1, 0); err == nil {
		t.Fatal("logical composite hermit accepted")
	}
}

func TestRangeQuery2SingleColumnFallback(t *testing.T) {
	// No composite index on (0, 3): falls back to the TIME index plus a
	// residual filter on VOL.
	tb := newStockHistory(t, 3000, 4)
	rids, st, err := tb.RangeQuery2(0, 100, 200, 3, 0, 5e5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindPrimary {
		t.Fatalf("fallback kind=%v", st.Kind)
	}
	if !sameRIDs(rids, expected2(tb, 0, 100, 200, 3, 0, 5e5)) {
		t.Fatal("fallback results wrong")
	}
}

func TestCompositeMaintenanceThroughEngine(t *testing.T) {
	tb := newStockHistory(t, 2000, 5)
	if _, err := tb.CreateCompositeHermitIndex(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Insert, query, delete.
	row := []float64{99999, 3000, 375, 1}
	if _, err := tb.Insert(row); err != nil {
		t.Fatal(err)
	}
	rids, _, err := tb.RangeQuery2(0, 99999, 99999, 2, 375, 375)
	if err != nil || len(rids) != 1 {
		t.Fatalf("inserted row not found: %v %v", rids, err)
	}
	if ok, err := tb.Delete(99999); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	rids, _, err = tb.RangeQuery2(0, 99999, 99999, 2, 375, 375)
	if err != nil || len(rids) != 0 {
		t.Fatalf("deleted row visible: %v %v", rids, err)
	}
	// Order check on the composite scan output.
	rids, _, err = tb.RangeQuery2(0, 0, 2000, 2, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(rids, func(a, b int) bool { return rids[a] < rids[b] }) {
		// Hermit output is sorted by RID after dedup; baseline by key. Both
		// are fine — just ensure exactness.
		t.Log("composite hermit output not RID-sorted (acceptable)")
	}
	if !sameRIDs(rids, expected2(tb, 0, 0, 2000, 2, 0, 1e9)) {
		t.Fatal("full-range composite query wrong after maintenance")
	}
}
