package engine

import (
	"math"
	"sync"
	"sync/atomic"

	"hermit/internal/block"
	"hermit/internal/storage"
)

// This file is the multi-version concurrency-control substrate. Every
// logical row is a chain of immutable versions, newest first, each stamped
// with the half-open commit-timestamp interval [beginTS, endTS) during
// which it is the row's visible incarnation (endTS == 0 means "still
// live"). Versions live in the ordinary row store — one storage RID per
// version — and every index keeps one entry per version, so index code is
// untouched by MVCC: indexes return candidate RIDs and visibility is
// decided at row resolution against a Snapshot (see query.go).
//
// The commit protocol (shared by the auto-commit paths in engine.go and
// Txn.Commit in txn.go):
//
//  1. Acquire the primary-key stripes of every written key (sorted, so
//     multi-key committers never deadlock). Chain heads are stable while a
//     key's stripe is held — every committer of that key holds it.
//  2. Validate against the chain heads (duplicate keys, write-write
//     conflicts) and apply the heavy work: append version rows to the
//     store, insert index entries. Unstamped versions are invisible to
//     every reader, so this phase runs outside the commit lock.
//  3. Under the clock's commit lock: stamp all the transaction's versions
//     with commitTS = clock+1 (ending the superseded versions at the same
//     instant), then publish the clock. Readers snapshot the clock without
//     taking the lock, so a commit becomes visible atomically — a snapshot
//     sees all of a transaction's writes or none of them.
//
// Version garbage collection (GCVersions) reclaims versions whose endTS is
// at or below the oldest timestamp any live snapshot could read, removing
// their index entries and tombstoning their store rows. The durable layer
// runs it during block compaction — off the checkpoint critical path — and
// pins a snapshot at its last flush cut so GC can never erase a change
// (in particular a whole-chain delete) that no block has recorded yet; it
// is also exported via DB.GC.

// Clock is the global commit clock a database (or a set of partitioned
// databases) orders its transactions with. It also registers live
// snapshots so version GC never reclaims a version a reader could still
// resolve.
type Clock struct {
	ts atomic.Uint64 // last published commit timestamp

	// commitMu serialises the stamp-and-publish step of every commit.
	commitMu sync.Mutex

	// regMu guards the live-snapshot registry and the free-list.
	regMu  sync.Mutex
	active map[uint64]int // snapshot ts -> open snapshot count
	// free recycles Snapshot objects returned through Recycle, so the
	// register/deregister cycle of every auto-commit read stops feeding
	// the allocator. Objects only enter via Recycle (whose contract
	// forbids further use), so a pooled object can never receive a stale
	// Release from a previous holder.
	free []*Snapshot
}

// maxSnapshotFree bounds the per-clock snapshot free-list; beyond it
// released snapshots are left to the garbage collector.
const maxSnapshotFree = 64

// NewClock creates a commit clock starting at timestamp 0.
func NewClock() *Clock {
	return &Clock{active: make(map[uint64]int)}
}

// Now returns the last published commit timestamp: the timestamp a new
// snapshot would read at.
func (c *Clock) Now() uint64 { return c.ts.Load() }

// Snapshot registers and returns a read snapshot at the current commit
// timestamp. The caller must Release (or Recycle) it, or version GC will
// treat it as live forever. The returned object may come from the clock's
// free-list — a recycled registration slot rather than a fresh allocation.
func (c *Clock) Snapshot() *Snapshot {
	c.regMu.Lock()
	ts := c.ts.Load()
	c.active[ts]++
	var s *Snapshot
	if n := len(c.free); n > 0 {
		s, c.free[n-1] = c.free[n-1], nil
		c.free = c.free[:n-1]
	}
	c.regMu.Unlock()
	if s == nil {
		return &Snapshot{clock: c, ts: ts}
	}
	s.ts = ts
	s.released.Store(false)
	return s
}

// release drops one registration of ts.
func (c *Clock) release(ts uint64) {
	c.regMu.Lock()
	if n := c.active[ts]; n <= 1 {
		delete(c.active, ts)
	} else {
		c.active[ts] = n - 1
	}
	c.regMu.Unlock()
}

// OldestActive returns the oldest timestamp any live snapshot reads at, or
// the current clock when no snapshot is open: the horizon below which
// version GC may reclaim.
func (c *Clock) OldestActive() uint64 {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	oldest := c.ts.Load()
	for ts := range c.active {
		if ts < oldest {
			oldest = ts
		}
	}
	return oldest
}

// Snapshot is a consistent read view: it resolves exactly the row versions
// committed at or before its timestamp, unaffected by later commits. A
// snapshot either observes all of a committed transaction's writes or none
// of them. Obtain one with DB.Snapshot (or Clock.Snapshot) and Release it
// when done.
type Snapshot struct {
	clock    *Clock
	ts       uint64
	released atomic.Bool
}

// TS returns the snapshot's commit timestamp.
func (s *Snapshot) TS() uint64 { return s.ts }

// Release unregisters the snapshot, allowing version GC to reclaim
// versions only it could see. Releasing twice is a no-op.
func (s *Snapshot) Release() {
	if s != nil && !s.released.Swap(true) {
		s.clock.release(s.ts)
	}
}

// Recycle is Release plus free-list return: the Snapshot object goes back
// to its clock for reuse by a later Snapshot call. Unlike Release it is
// NOT idempotent-safe — the caller must drop every reference and must not
// touch the snapshot (including calling Release) afterwards, because the
// object may already be serving another reader. The engine's auto-snapshot
// query paths use it; prefer Release when the snapshot's lifetime is not
// strictly scoped.
func (s *Snapshot) Recycle() {
	if s == nil || s.released.Swap(true) {
		return
	}
	c := s.clock
	c.regMu.Lock()
	if n := c.active[s.ts]; n <= 1 {
		delete(c.active, s.ts)
	} else {
		c.active[s.ts] = n - 1
	}
	if len(c.free) < maxSnapshotFree {
		c.free = append(c.free, s)
	}
	c.regMu.Unlock()
}

// visibleAt reports whether version v is the visible incarnation at ts.
func visibleAt(v *version, ts uint64) bool {
	return v != nil && v.beginTS <= ts && (v.endTS == 0 || ts < v.endTS)
}

// version is one immutable incarnation of a logical row. beginTS/endTS are
// written once, at commit, under both the clock's commit lock and the
// table's verMu; prev links to the superseded version (or nil).
type version struct {
	rid     storage.RID
	pk      float64
	beginTS uint64
	endTS   uint64 // 0 while this is the live version
	prev    *version
}

// Snapshot registers a read snapshot on the database's commit clock.
func (db *DB) Snapshot() *Snapshot { return db.clock.Snapshot() }

// Snapshot registers a read snapshot on the table's commit clock — the
// handle the *At query variants read through. Release it when done.
func (t *Table) Snapshot() *Snapshot { return t.clock.Snapshot() }

// Clock returns the database's commit clock (shared across partitions of a
// partitioned table so cross-partition snapshots are consistent).
func (db *DB) Clock() *Clock { return db.clock }

// GC runs one version-garbage-collection pass over every table: versions
// no snapshot can resolve any more — endTS at or below the oldest live
// snapshot — lose their index entries and store rows. It returns the
// number of versions reclaimed.
func (db *DB) GC() int { return db.GCBelow(^uint64(0)) }

// GCBelow is GC with an additional horizon cap: versions are reclaimed
// only below min(oldest live snapshot, limit). The durable layer uses the
// cap to keep every change committed after its last flush cut alive until
// a delta block has recorded it, without registering a snapshot that
// would pin Clock.OldestActive for everyone else.
func (db *DB) GCBelow(limit uint64) int {
	horizon := db.clock.OldestActive()
	if limit < horizon {
		horizon = limit
	}
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	n := 0
	for _, t := range tables {
		n += t.GCVersions(horizon)
	}
	return n
}

// chainKey normalises a primary key to the version-chain map key: the
// block tier's bit-pattern normalisation (block.KeyBits), under which ±0
// are one key and each NaN payload is its own key. Keying chains by raw
// float64 would break for NaN — Go map lookups never find a NaN key, so
// repeated NaN inserts would grow duplicate chains with identical bits
// and the delta flush would emit duplicate entries block.Encode rejects.
func chainKey(pk float64) uint64 { return block.KeyBits(pk) }

// head returns pk's chain head (the newest version, live or not) under
// verMu; nil when the key has never existed (or was fully reclaimed).
func (t *Table) head(pk float64) *version {
	t.verMu.RLock()
	v := t.chains[chainKey(pk)]
	t.verMu.RUnlock()
	return v
}

// resolveVisible walks pk's chain to the version visible at ts; nil when
// the key has no visible incarnation.
func (t *Table) resolveVisible(pk float64, ts uint64) *version {
	t.verMu.RLock()
	v := t.resolveVisibleLocked(pk, ts)
	t.verMu.RUnlock()
	return v
}

// resolveVisibleLocked is resolveVisible with t.verMu already held
// (shared). The batched candidate-filtering paths in query.go use it to
// resolve a whole harvest under one latch acquisition instead of one per
// key.
func (t *Table) resolveVisibleLocked(pk float64, ts uint64) *version {
	v := t.chains[chainKey(pk)]
	for v != nil && !visibleAt(v, ts) {
		v = v.prev
	}
	return v
}

// versionVisible reports whether the version owning rid is visible at ts.
// An unknown rid — a version applied but not yet stamped by its committer,
// or one already reclaimed by GC — is invisible.
func (t *Table) versionVisible(rid storage.RID, ts uint64) bool {
	t.verMu.RLock()
	v := t.verOf[rid]
	ok := visibleAt(v, ts)
	t.verMu.RUnlock()
	return ok
}

// stampInsert publishes a brand-new version chain entry for pk at
// commitTS. Called with the key's stripe held and the clock's commit lock
// held; prev is the (dead) head observed during validation, if any.
func (t *Table) stampInsert(rid storage.RID, pk float64, commitTS uint64) {
	k := chainKey(pk)
	t.verMu.Lock()
	v := &version{rid: rid, pk: pk, beginTS: commitTS, prev: t.chains[k]}
	t.chains[k] = v
	t.verOf[rid] = v
	t.liveRows++
	t.verMu.Unlock()
}

// stampUpdate ends old and publishes its replacement version at commitTS.
func (t *Table) stampUpdate(old *version, rid storage.RID, commitTS uint64) {
	t.verMu.Lock()
	old.endTS = commitTS
	v := &version{rid: rid, pk: old.pk, beginTS: commitTS, prev: old}
	t.chains[chainKey(old.pk)] = v
	t.verOf[rid] = v
	t.verMu.Unlock()
}

// stampDelete ends old at commitTS without a successor.
func (t *Table) stampDelete(old *version, commitTS uint64) {
	t.verMu.Lock()
	old.endTS = commitTS
	t.liveRows--
	t.verMu.Unlock()
}

// Len returns the number of live rows (at the latest commit timestamp).
func (t *Table) Len() int {
	t.verMu.RLock()
	n := t.liveRows
	t.verMu.RUnlock()
	return n
}

// ScanLive calls fn for every row live at the latest commit timestamp, in
// unspecified order. The row slice is reused between calls; fn must not
// retain it. Scanning stops early if fn returns false. It is the
// MVCC-aware replacement for scanning the row store directly (which also
// holds superseded and deleted versions awaiting GC).
func (t *Table) ScanLive(fn func(rid storage.RID, row []float64) bool) {
	ts := t.clock.Now()
	t.verMu.RLock()
	rids := make([]storage.RID, 0, t.liveRows)
	for _, head := range t.chains {
		// Walk to the version visible at ts: a commit racing between the
		// clock read above and this loop may already have stamped a newer
		// head, in which case its predecessor is the one live at ts.
		for v := head; v != nil; v = v.prev {
			if visibleAt(v, ts) {
				rids = append(rids, v.rid)
				break
			}
		}
	}
	t.verMu.RUnlock()
	var buf []float64
	for _, rid := range rids {
		row, err := t.store.Get(rid, buf)
		if err != nil {
			continue // reclaimed between harvest and fetch
		}
		buf = row
		if !fn(rid, row) {
			return
		}
	}
}

// DeltaVersions harvests the changes committed in the half-open window
// (prevTS, ts]: for every key whose visible-at-ts incarnation began after
// prevTS an upsert entry carrying the full row, and for every key whose
// chain died in the window a tombstone entry. Replaying the resulting
// block on top of the state at prevTS reproduces exactly the live rows at
// ts. Entries come back sorted by key (the order block.Encode requires).
//
// The caller must pin a snapshot at or below prevTS for the duration (the
// durable layer's flush snapshot), so no version visible at ts can be
// reclaimed between the chain walk and the row fetch.
func (t *Table) DeltaVersions(prevTS, ts uint64) []block.Entry {
	type cand struct {
		rid  storage.RID
		pk   float64
		tomb bool
	}
	t.verMu.RLock()
	cands := make([]cand, 0, 64)
	for _, head := range t.chains {
		// Walk to the newest version begun at or before ts: the key's
		// incarnation as of the flush cut (a commit racing past ts may
		// already have stamped newer heads).
		v := head
		for v != nil && v.beginTS > ts {
			v = v.prev
		}
		if v == nil {
			continue
		}
		if v.endTS == 0 || ts < v.endTS {
			if v.beginTS > prevTS {
				cands = append(cands, cand{rid: v.rid, pk: v.pk})
			}
		} else if v.endTS > prevTS {
			// Dead at ts, and the death is inside the window: the key was
			// deleted since the last flush.
			cands = append(cands, cand{pk: v.pk, tomb: true})
		}
	}
	t.verMu.RUnlock()
	entries := make([]block.Entry, 0, len(cands))
	for _, c := range cands {
		if c.tomb {
			entries = append(entries, block.Entry{PK: c.pk, Tombstone: true})
			continue
		}
		row, err := t.store.Get(c.rid, nil)
		if err != nil {
			continue // unreachable with the flush snapshot pinned; defensive
		}
		entries = append(entries, block.Entry{PK: c.pk, Row: row})
	}
	block.SortEntries(entries)
	return entries
}

// GCVersions reclaims every version whose endTS is at or below horizon:
// its index entries are removed, its store row tombstoned, and the chain
// unlinked. A fully dead chain (deleted key old enough to reclaim) also
// gives up its primary-index entry. It returns the number of versions
// reclaimed. Safe to run concurrently with readers and writers: each
// chain is reclaimed under its key's stripe, and only versions invisible
// to every snapshot at or after horizon are touched.
func (t *Table) GCVersions(horizon uint64) int {
	t.catalog.RLock()
	defer t.catalog.RUnlock()

	// Harvest candidate keys first; chain surgery happens per key under
	// its stripe so writers never observe a half-unlinked chain.
	t.verMu.RLock()
	keys := make([]uint64, 0, len(t.chains))
	for k, head := range t.chains {
		if (head.endTS != 0 && head.endTS <= horizon) || head.prev != nil {
			keys = append(keys, k)
		}
	}
	t.verMu.RUnlock()

	reclaimed := 0
	for _, k := range keys {
		// The chain key's bit pattern round-trips to the float every
		// version of the chain stamped (±0 normalised), so the stripe here
		// is the one writers of this key hold.
		unlock := t.rows.lock(math.Float64frombits(k))
		var dead []*version
		t.verMu.Lock()
		head := t.chains[k]
		if head == nil {
			t.verMu.Unlock()
			unlock()
			continue
		}
		if head.endTS != 0 && head.endTS <= horizon {
			// The whole chain is reclaimable; drop the key.
			for v := head; v != nil; v = v.prev {
				dead = append(dead, v)
				delete(t.verOf, v.rid)
			}
			delete(t.chains, k)
		} else {
			// Keep the newest reachable suffix; cut below the first
			// version old enough that no snapshot can reach past it.
			for v := head; v.prev != nil; v = v.prev {
				if v.prev.endTS != 0 && v.prev.endTS <= horizon {
					for d := v.prev; d != nil; d = d.prev {
						dead = append(dead, d)
						delete(t.verOf, d.rid)
					}
					v.prev = nil
					break
				}
			}
		}
		t.verMu.Unlock()
		for i, v := range dead {
			row, err := t.store.Get(v.rid, nil)
			if err == nil {
				// The newest reclaimed version of a fully dead chain still
				// owns the primary-index entry.
				wholeChain := v == head
				t.removeIndexEntries(v.rid, row, wholeChain && i == 0)
				t.store.Delete(v.rid)
			}
			reclaimed++
		}
		unlock()
	}
	return reclaimed
}
