package engine

import (
	"path/filepath"
	"sort"
	"testing"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/wal"
)

// replRecords drains every retained WAL segment of d in LSN order.
func replRecords(t *testing.T, d *DurableDB) []wal.Record {
	t.Helper()
	var out []wal.Record
	for _, seg := range d.ReplWALSegments() {
		tl, err := wal.OpenTailer(seg.Path, 0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			rec, ok, err := tl.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, rec)
		}
		tl.Close()
	}
	return out
}

// replGroups slices a record stream the way a follower does: each DDL
// record and each auto-committed mutation is its own group; a committed
// transaction's mutations (minus begin/commit framing) form one group.
// Open transactions are dropped.
func replGroups(recs []wal.Record) [][]wal.Record {
	var groups [][]wal.Record
	open := map[uint64][]wal.Record{}
	for _, rec := range recs {
		switch rec.Op {
		case wal.OpTxnBegin:
			open[rec.Txn] = nil
		case wal.OpTxnCommit:
			groups = append(groups, open[rec.Txn])
			delete(open, rec.Txn)
		default:
			if rec.Txn != 0 {
				open[rec.Txn] = append(open[rec.Txn], rec)
			} else {
				groups = append(groups, []wal.Record{rec})
			}
		}
	}
	return groups
}

func liveRows(t *testing.T, d *DurableDB, name string) [][]float64 {
	t.Helper()
	tb, err := d.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]float64
	tb.ScanLive(func(_ storage.RID, row []float64) bool {
		rows = append(rows, append([]float64(nil), row...))
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	return rows
}

// TestReplWALSurface covers the observability half of the replication
// surface: LSN/size/position accessors, segment listings, WAL growth
// wakeups, and the txn-sequence floor bump a promotion relies on.
func TestReplWALSurface(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", d.Dir(), dir)
	}
	if d.LastLSN() != 0 {
		t.Fatalf("fresh database at LSN %d", d.LastLSN())
	}

	wake := make(chan struct{}, 1)
	d.WatchWAL(wake)

	if _, err := d.CreateTable("t", []string{"id", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("t", []float64{1, 10}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wake:
	case <-time.After(5 * time.Second):
		t.Fatal("no WAL growth wakeup")
	}
	if d.LastLSN() == 0 {
		t.Fatal("LSN did not advance")
	}
	if d.WALSize() <= wal.HeaderLen {
		t.Fatalf("WALSize %d, want > header", d.WALSize())
	}
	seg, base, last := d.WALPosition()
	if base > last || last != d.LastLSN() {
		t.Fatalf("WALPosition (%d, %d, %d) inconsistent with LastLSN %d", seg, base, last, d.LastLSN())
	}

	// A checkpoint rotates; the listing ends at the new current segment.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs := d.ReplWALSegments()
	if len(segs) == 0 {
		t.Fatal("no WAL segments listed")
	}
	for i, s := range segs {
		if i > 0 && s.Seg <= segs[i-1].Seg {
			t.Fatalf("segments out of order: %+v", segs)
		}
		if s.Current != (i == len(segs)-1) {
			t.Fatalf("Current mis-marked at %d: %+v", i, segs)
		}
		if filepath.Dir(s.Path) != dir {
			t.Fatalf("segment path %q outside the database dir", s.Path)
		}
	}

	// The watcher survives rotation: post-checkpoint appends still wake.
	for len(wake) > 0 {
		<-wake
	}
	if _, err := d.Insert("t", []float64{2, 20}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wake:
	case <-time.After(5 * time.Second):
		t.Fatal("no wakeup after segment rotation")
	}

	d.BumpTxnSeq(1000)
	if got := d.txnSeq.Load(); got != 1000 {
		t.Fatalf("txnSeq %d after bump, want 1000", got)
	}
	d.BumpTxnSeq(5) // floor only, never rewinds
	if got := d.txnSeq.Load(); got != 1000 {
		t.Fatalf("txnSeq rewound to %d", got)
	}
}

// TestReplAppendApplyGroup mirrors a leader's WAL into a second database
// record-for-record and applies the committed groups, checking the
// replica converges to the leader's state with the leader's LSNs.
func TestReplAppendApplyGroup(t *testing.T) {
	ld, err := OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	if _, err := ld.CreateTable("t", []string{"id", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ld.Insert("t", []float64{float64(i), float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ld.Delete("t", 3); err != nil {
		t.Fatal(err)
	}
	if err := ld.UpdateColumn("t", 4, 1, 99); err != nil {
		t.Fatal(err)
	}
	tx := ld.Begin()
	if err := tx.Insert("t", []float64{100, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", 5, 1, 55); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete("t", 6); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	recs := replRecords(t, ld)
	f, err := OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.ReplAppend(recs); err != nil {
		t.Fatal(err)
	}
	if err := f.ReplAppend(nil); err != nil {
		t.Fatal(err)
	}
	for _, g := range replGroups(recs) {
		if err := f.ReplApplyGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.ReplApplyGroup(nil); err != nil {
		t.Fatal(err)
	}
	if f.LastLSN() != ld.LastLSN() {
		t.Fatalf("replica at LSN %d, leader at %d", f.LastLSN(), ld.LastLSN())
	}
	want, got := liveRows(t, ld, "t"), liveRows(t, f, "t")
	if len(want) != len(got) {
		t.Fatalf("replica has %d rows, leader %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if want[i][c] != got[i][c] {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}

	// Malformed groups are rejected without corrupting state.
	if err := f.ReplApplyGroup([]wal.Record{
		{Op: wal.OpCreateTable, Table: "x"}, {Op: wal.OpCreateTable, Table: "y"},
	}); err == nil {
		t.Fatal("multi-record DDL group accepted")
	}
	if err := f.ReplApplyGroup([]wal.Record{
		{Op: wal.OpDelete, Table: "t", Payload: encodeFloats([]float64{424242})},
	}); err == nil {
		t.Fatal("delete of an absent key accepted (divergence went undetected)")
	}
	if err := f.ReplApplyGroup([]wal.Record{
		{Op: wal.OpUpdate, Table: "t", Payload: encodeFloats([]float64{1})},
	}); err == nil {
		t.Fatal("malformed update record accepted")
	}
	if err := f.ReplApplyGroup([]wal.Record{{Op: wal.OpTxnBegin, Txn: 7}}); err == nil {
		t.Fatal("framing op inside a group accepted")
	}
	if n := len(liveRows(t, f, "t")); n != len(want) {
		t.Fatalf("rejected groups changed state: %d rows", n)
	}
}

// TestRecoveredPendingSurvivesReopen: mirrored frames of a transaction
// whose commit never arrived must surface via RecoveredPending after a
// restart, unapplied.
func TestRecoveredPendingSurvivesReopen(t *testing.T) {
	ld, err := OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	if _, err := ld.CreateTable("t", []string{"id"}, 0); err != nil {
		t.Fatal(err)
	}
	tx := ld.Begin()
	if err := tx.Insert("t", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	recs := replRecords(t, ld)
	if recs[len(recs)-1].Op != wal.OpTxnCommit {
		t.Fatalf("last leader record is op %d", recs[len(recs)-1].Op)
	}

	fdir := t.TempDir()
	f, err := OpenDurable(fdir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ReplAppend(recs[:len(recs)-1]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenDurable(fdir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	pending := f2.RecoveredPending()
	if len(pending) != 1 {
		t.Fatalf("%d pending groups after reopen, want 1", len(pending))
	}
	for id, prs := range pending {
		if id == 0 || len(prs) != 2 {
			t.Fatalf("pending group garbled: txn %d with %d records", id, len(prs))
		}
	}
	if rows := liveRows(t, f2, "t"); len(rows) != 0 {
		t.Fatalf("open group applied across reopen: %d rows", len(rows))
	}
}

// TestReplSnapshotRestore round-trips a bootstrap image: plain and
// partitioned tables with index definitions, restored into an empty
// database whose WAL re-bases at the cut, surviving a further reopen.
func TestReplSnapshotRestore(t *testing.T) {
	ld, err := OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	if _, err := ld.CreateTable("plain", []string{"id", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := ld.CreateIndex("plain", IndexDef{Kind: "btree", Col: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ld.CreatePartitionedTable("parts", []string{"id", "v"}, 0, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := ld.Insert("plain", []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := ld.Insert("parts", []float64{float64(i), float64(-i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := ld.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.LSN != ld.LastLSN() {
		t.Fatalf("snapshot cut %d, leader at %d", snap.LSN, ld.LastLSN())
	}
	if len(snap.Tables) != 2 {
		t.Fatalf("snapshot has %d tables, want 2", len(snap.Tables))
	}

	fdir := t.TempDir()
	f, err := OpenDurable(fdir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ReplRestore(snap); err != nil {
		t.Fatal(err)
	}
	if f.LastLSN() != snap.LSN {
		t.Fatalf("restored database at LSN %d, want the cut %d", f.LastLSN(), snap.LSN)
	}
	if got := liveRows(t, f, "plain"); len(got) != 50 {
		t.Fatalf("plain restored with %d rows", len(got))
	}
	total := 0
	for p := 0; p < 4; p++ {
		total += len(liveRows(t, f, PartitionName("parts", p)))
	}
	if total != 50 {
		t.Fatalf("partitions restored with %d rows total", total)
	}
	// Restoring into a non-empty database is a caller bug.
	if err := f.ReplRestore(snap); err == nil {
		t.Fatal("ReplRestore accepted a non-empty database")
	}
	// Mirrored frames continue numbering from the cut.
	if err := f.ReplAppend([]wal.Record{{
		LSN: snap.LSN + 1, Op: wal.OpInsert, Table: "plain",
		Payload: encodeFloats([]float64{100, 100}),
	}}); err != nil {
		t.Fatal(err)
	}
	if f.LastLSN() != snap.LSN+1 {
		t.Fatalf("post-restore append landed at %d, want %d", f.LastLSN(), snap.LSN+1)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenDurable(fdir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := liveRows(t, f2, "plain"); len(got) != 51 {
		t.Fatalf("reopen after restore: plain has %d rows, want 51", len(got))
	}
}
