// Package engine is the mini-RDBMS that hosts both indexing mechanisms for
// the experiments: a main-memory engine (the paper's DBMS-X stand-in) whose
// tables are storage.Tables with B+-tree primary/secondary indexes and
// Hermit indexes, plus a disk engine (disk.go) over the pager substrate for
// the PostgreSQL experiments.
//
// The engine is deliberately small — catalog, index maintenance on writes,
// and point/range query routing — because the paper's evaluation only
// exercises those paths; there is no SQL front end.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hermit/internal/btree"
	"hermit/internal/cm"
	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// Errors returned by engine operations.
var (
	ErrNoSuchTable  = errors.New("engine: no such table")
	ErrNoSuchColumn = errors.New("engine: no such column")
	ErrDupIndex     = errors.New("engine: index already exists on column")
	ErrNoHostIndex  = errors.New("engine: hermit host column has no complete index")
	ErrDupTable     = errors.New("engine: table already exists")
	ErrDupKey       = errors.New("engine: duplicate primary key")
)

// DB is a catalog of tables sharing one tuple-identifier scheme and one
// commit clock. The catalog map has its own latch so tables can be created
// while other tables serve queries.
type DB struct {
	scheme hermit.PointerScheme
	clock  *Clock
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates a database using the given tuple-identifier scheme (§5.1),
// with its own commit clock.
func NewDB(scheme hermit.PointerScheme) *DB {
	return NewDBWithClock(scheme, NewClock())
}

// NewDBWithClock creates a database ordering its commits on an existing
// clock. Partitioned tables use it to share one clock across their
// per-partition databases, which is what makes a cross-partition snapshot
// consistent (see internal/partition).
func NewDBWithClock(scheme hermit.PointerScheme, clock *Clock) *DB {
	return &DB{scheme: scheme, clock: clock, tables: make(map[string]*Table)}
}

// tableSeq issues process-wide unique table ids; commit lock ordering
// (txn.go) sorts by them, so they must never repeat even across databases.
var tableSeq atomic.Uint64

// Scheme returns the database's tuple-identifier scheme.
func (db *DB) Scheme() hermit.PointerScheme { return db.scheme }

// CreateTable registers a table with the given column names; pkCol is the
// primary-key column, which receives a primary index automatically.
func (db *DB) CreateTable(name string, cols []string, pkCol int) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, ErrDupTable
	}
	if pkCol < 0 || pkCol >= len(cols) {
		return nil, ErrNoSuchColumn
	}
	t := &Table{
		name:         name,
		tid:          tableSeq.Add(1),
		cols:         append([]string(nil), cols...),
		pkCol:        pkCol,
		scheme:       db.scheme,
		clock:        db.clock,
		store:        storage.NewTable(len(cols)),
		chains:       make(map[uint64]*version),
		verOf:        make(map[storage.RID]*version),
		primary:      btree.New(btree.DefaultOrder),
		secondary:    make(map[int]*btree.Tree),
		hermits:      make(map[int]*hermit.Index),
		cms:          make(map[int]*cm.Index),
		hostOf:       make(map[int]int),
		cmHostOf:     make(map[int]int),
		newCols:      make(map[int]bool),
		secondaryMu:  newLatchSet[int](),
		cmMu:         newLatchSet[int](),
		compositeMu:  newLatchSet[colPair](),
		hermitHostMu: make(map[int]*sync.RWMutex),
		cmHostMu:     make(map[int]*sync.RWMutex),
		runtime:      newColRuntime(len(cols)),
	}
	db.tables[name] = t
	return t, nil
}

// dropTable removes a table from the catalog — the unwind path for a
// partially failed partitioned create (there is no public DROP TABLE yet).
func (db *DB) dropTable(name string) {
	db.mu.Lock()
	delete(db.tables, name)
	db.mu.Unlock()
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Table is one relation plus its indexes. Rows are multi-versioned (see
// mvcc.go): every mutation appends an immutable version row to the store,
// every index keeps one entry per version, and reads resolve visibility
// against a commit-timestamp snapshot.
type Table struct {
	name   string
	tid    uint64 // process-wide unique id; commit lock ordering key
	cols   []string
	pkCol  int
	scheme hermit.PointerScheme
	clock  *Clock
	store  *storage.Table

	// MVCC state (mvcc.go): per-key version chains (newest first), the
	// reverse RID -> version map queries filter candidates through, and
	// the live-row count at the latest timestamp. All guarded by verMu.
	// Chains are keyed by chainKey (the block tier's key-bit
	// normalisation), not raw float64 — a float64-keyed map could never
	// find, overwrite or delete a NaN key's chain.
	verMu    sync.RWMutex
	chains   map[uint64]*version
	verOf    map[storage.RID]*version
	liveRows int

	primary   *btree.Tree           // pk value -> RID
	secondary map[int]*btree.Tree   // complete B+-tree indexes (the Baseline)
	hermits   map[int]*hermit.Index // Hermit indexes
	cms       map[int]*cm.Index     // Correlation Map indexes (App. E)

	// hostOf / cmHostOf record the host column for each Hermit / CM target.
	hostOf   map[int]int
	cmHostOf map[int]int

	// Two-column access paths (paper §3): complete composite indexes and
	// composite Hermit indexes, keyed by their (leading, second) columns.
	composites       map[colPair]*btree.CompositeTree
	compositeHermits map[colPair]*hermit.CompositeIndex
	compositeNew     map[colPair]bool
	compositeHostOf  map[colPair]int // (A,M) -> N
	// newCols marks complete indexes created as "new" for the Fig. 22b
	// insert-cost breakdown (as opposed to pre-existing host indexes).
	newCols map[int]bool

	// Concurrency control (see latches.go for the full protocol): catalog
	// guards the index maps above against DDL; rows serialises same-key
	// row mutations; primaryMu and the latch sets give every unsynchronised
	// index structure its own reader/writer latch, so concurrent readers on
	// different indexes never contend and writers only block the structures
	// they touch. TRS-Trees (inside Hermit indexes) latch themselves.
	catalog     sync.RWMutex
	rows        stripedLock
	primaryMu   sync.RWMutex
	secondaryMu latchSet[int]
	cmMu        latchSet[int]
	compositeMu latchSet[colPair]

	// hermitHostMu / cmHostMu record, per target column, the latch of the
	// structure its index was bound to at creation time (the host column's
	// secondary B+-tree, or the primary index when the primary key hosts).
	// Bound at creation — resolving the latch dynamically would pick up a
	// B+-tree created later on the host column while the lookup still
	// scans the originally bound structure.
	hermitHostMu map[int]*sync.RWMutex
	cmHostMu     map[int]*sync.RWMutex

	// runtime holds the planner's per-column statistics (query/update
	// counters, cached bounds, per-path latency and false-positive EWMAs);
	// writes counts all row mutations. Both are written lock-free on hot
	// paths (see planner.go) and read by the planner and the advisor.
	runtime []colRuntime
	writes  atomic.Uint64
	routing atomic.Int32 // RoutingMode; RouteCost by default
	// Table-wide latency calibration (planner.go): EWMAs of observed
	// nanoseconds and of the model cost across all timed queries. The
	// global ratio anchors per-path calibration so a path that has never
	// run (e.g. scan on an indexed column) is compared on the same scale
	// as the paths that have.
	calLat  atomic.Uint64 // float64 bits
	calCost atomic.Uint64 // float64 bits
	calObs  atomic.Uint64

	profile atomic.Bool
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Scheme returns the table's tuple-identifier scheme.
func (t *Table) Scheme() hermit.PointerScheme { return t.scheme }

// Store exposes the underlying row store (used by workload loaders).
func (t *Table) Store() *storage.Table { return t.store }

// Primary exposes the primary index.
func (t *Table) Primary() *btree.Tree { return t.primary }

// Columns returns the column names.
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// SetProfile toggles per-phase timing on queries and inserts.
func (t *Table) SetProfile(on bool) { t.profile.Store(on) }

// colIndex resolves a column name.
func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoSuchColumn, name)
}

// identify maps a RID to the identifier stored in secondary indexes.
func (t *Table) identify(rid storage.RID, row []float64) uint64 {
	if t.scheme == hermit.PhysicalPointers {
		return uint64(rid)
	}
	return uint64(row[t.pkCol])
}

// InsertStats breaks an insert's cost into the paper's Fig. 22b categories.
type InsertStats struct {
	Table    time.Duration // base table + primary index
	Existing time.Duration // pre-existing (host) secondary indexes
	New      time.Duration // newly created indexes (Hermit or baseline)
}

// Insert appends a row, maintaining the primary index and every secondary
// structure. Duplicate primary keys are rejected.
func (t *Table) Insert(row []float64) (storage.RID, error) {
	rid, _, err := t.insert(row)
	return rid, err
}

// InsertProfiled is Insert plus the per-category timing used by Fig. 22b.
func (t *Table) InsertProfiled(row []float64) (storage.RID, InsertStats, error) {
	return t.insert(row)
}

func (t *Table) insert(row []float64) (storage.RID, InsertStats, error) {
	var st InsertStats
	// Validate the width up front: row[t.pkCol] below must not panic on a
	// short row (e.g. a malformed ExecuteBatch op).
	if len(row) != len(t.cols) {
		return 0, st, storage.ErrBadRow
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	profile := t.profile.Load()

	var t0 time.Time
	if profile {
		t0 = time.Now()
	}
	pk := row[t.pkCol]
	// The stripe serialises check-then-act sequences on the same key (the
	// duplicate check against the version chain; every committer of this
	// key holds the stripe, so the head is stable until we stamp).
	stripe := t.rows.mu(pk)
	stripe.Lock()
	defer stripe.Unlock()
	old := t.head(pk)
	if old != nil && old.endTS == 0 {
		return 0, st, fmt.Errorf("%w: %v", ErrDupKey, pk)
	}
	rid, err := t.store.Insert(row)
	if err != nil {
		return 0, st, err
	}
	t.writes.Add(1)
	for i, v := range row {
		t.runtime[i].widen(v)
	}
	t.movePrimary(pk, old, rid)
	if profile {
		st.Table = time.Since(t0)
		t0 = time.Now()
	}
	id := t.identify(rid, row)
	// Pre-existing complete indexes (e.g. the host index).
	for col, tr := range t.secondary {
		if !t.newCols[col] {
			t.withSecondary(col, func() { tr.Insert(row[col], id) })
		}
	}
	if profile {
		st.Existing = time.Since(t0)
		t0 = time.Now()
	}
	// Newly created indexes: baseline complete indexes marked new, Hermit
	// indexes, and Correlation Maps.
	for col, tr := range t.secondary {
		if t.newCols[col] {
			t.withSecondary(col, func() { tr.Insert(row[col], id) })
		}
	}
	for col, hx := range t.hermits {
		hx.Insert(rid, row[col], row[t.hostOf[col]]) // TRS-Tree self-latches
	}
	for col, cx := range t.cms {
		t.withCM(col, func() { cx.Insert(row[col], row[t.cmHostOf[col]]) })
	}
	for key, tr := range t.composites {
		t.withComposite(key, func() { tr.Insert(row[key[0]], row[key[1]], uint64(rid)) })
	}
	for key, hx := range t.compositeHermits {
		hx.Insert(rid, row[key[1]], row[t.compositeHostOf[key]])
	}
	if profile {
		st.New = time.Since(t0)
	}
	// Commit: stamp the version and publish the clock atomically, making
	// the row visible to subsequent snapshots.
	c := t.clock
	c.commitMu.Lock()
	commitTS := c.ts.Load() + 1
	t.stampInsert(rid, pk, commitTS)
	c.ts.Store(commitTS)
	c.commitMu.Unlock()
	return rid, st, nil
}

// movePrimary points the primary-index entry for pk at rid. The primary
// keeps exactly one entry per key — the newest version's RID — so a
// re-insert over a dead chain (or an update) moves the old entry; older
// versions stay reachable through the chain, which is how snapshot reads
// resolve them.
func (t *Table) movePrimary(pk float64, old *version, rid storage.RID) {
	t.primaryMu.Lock()
	if old != nil {
		t.primary.Delete(pk, uint64(old.rid))
	}
	t.primary.Insert(pk, uint64(rid))
	t.primaryMu.Unlock()
}

// insertIndexEntries inserts one version's entries into every index — the
// shared maintenance step of UpdateColumn and Txn.Commit (Insert keeps its
// own inlined copy for the Fig. 22b phase timing). The primary index is
// handled separately by movePrimary.
func (t *Table) insertIndexEntries(rid storage.RID, row []float64) {
	id := t.identify(rid, row)
	for col, tr := range t.secondary {
		t.withSecondary(col, func() { tr.Insert(row[col], id) })
	}
	for col, hx := range t.hermits {
		hx.Insert(rid, row[col], row[t.hostOf[col]])
	}
	for col, cx := range t.cms {
		t.withCM(col, func() { cx.Insert(row[col], row[t.cmHostOf[col]]) })
	}
	for key, tr := range t.composites {
		t.withComposite(key, func() { tr.Insert(row[key[0]], row[key[1]], uint64(rid)) })
	}
	for key, hx := range t.compositeHermits {
		hx.Insert(rid, row[key[1]], row[t.compositeHostOf[key]])
	}
}

// removeIndexEntries removes one version's entries from every index — the
// GC-side inverse of insertIndexEntries. dropPrimary additionally removes
// the key's primary-index entry (set when the whole chain is reclaimed).
// Caller holds t.catalog shared.
func (t *Table) removeIndexEntries(rid storage.RID, row []float64, dropPrimary bool) {
	id := t.identify(rid, row)
	for col, tr := range t.secondary {
		t.withSecondary(col, func() { tr.Delete(row[col], id) })
	}
	for col, hx := range t.hermits {
		hx.Delete(rid, row[col], row[t.hostOf[col]])
	}
	for col, cx := range t.cms {
		t.withCM(col, func() { cx.Delete(row[col], row[t.cmHostOf[col]]) })
	}
	for key, tr := range t.composites {
		t.withComposite(key, func() { tr.Delete(row[key[0]], row[key[1]], uint64(rid)) })
	}
	for key, hx := range t.compositeHermits {
		hx.Delete(rid, row[key[1]], row[t.compositeHostOf[key]])
	}
	if dropPrimary {
		t.primaryMu.Lock()
		t.primary.Delete(row[t.pkCol], uint64(rid))
		t.primaryMu.Unlock()
	}
}

// withLatch runs fn holding a structure's write latch.
func withLatch(mu *sync.RWMutex, fn func()) {
	mu.Lock()
	fn()
	mu.Unlock()
}

// withSecondary runs fn holding col's secondary-index write latch.
func (t *Table) withSecondary(col int, fn func()) { withLatch(t.secondaryMu.get(col), fn) }

// withCM runs fn holding col's Correlation Map write latch.
func (t *Table) withCM(col int, fn func()) { withLatch(t.cmMu.get(col), fn) }

// withComposite runs fn holding the composite index write latch for key.
func (t *Table) withComposite(key colPair, fn func()) { withLatch(t.compositeMu.get(key), fn) }

// hostLatchFor returns the latch to bind for an index hosted on hostCol:
// the host column's secondary B+-tree latch, or the primary latch when the
// lookup will scan the primary index (host == t.primary).
func (t *Table) hostLatchFor(hostCol int, host *btree.Tree) *sync.RWMutex {
	if mu := t.secondaryMu.get(hostCol); mu != nil && host != t.primary {
		return mu
	}
	return &t.primaryMu
}

// Delete removes the row with the given primary key, reporting whether the
// key existed. Under MVCC a delete only ends the live version's timestamp
// interval: index entries and the store row stay until version GC reclaims
// them, so snapshots older than the delete keep resolving the row.
func (t *Table) Delete(pk float64) (bool, error) {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	stripe := t.rows.mu(pk)
	stripe.Lock()
	defer stripe.Unlock()
	cur := t.head(pk)
	if cur == nil || cur.endTS != 0 {
		return false, nil
	}
	t.writes.Add(1)
	c := t.clock
	c.commitMu.Lock()
	commitTS := c.ts.Load() + 1
	t.stampDelete(cur, commitTS)
	c.ts.Store(commitTS)
	c.commitMu.Unlock()
	return true, nil
}

// UpdateColumn changes one column of the row with the given primary key.
// Under MVCC the update appends a fresh version row carrying the new value
// and indexes it everywhere; the superseded version keeps its entries (for
// older snapshots) until GC. The primary-key column itself cannot be
// changed — the version chains and the per-key write stripes are keyed by
// it; delete and re-insert instead.
func (t *Table) UpdateColumn(pk float64, col int, v float64) error {
	if col == t.pkCol {
		return fmt.Errorf("engine: update: cannot change primary-key column %q (delete and re-insert)", t.cols[col])
	}
	if col < 0 || col >= len(t.cols) {
		return ErrNoSuchColumn
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	stripe := t.rows.mu(pk)
	stripe.Lock()
	defer stripe.Unlock()
	cur := t.head(pk)
	if cur == nil || cur.endTS != 0 {
		return fmt.Errorf("engine: update: no row with pk %v", pk)
	}
	row, err := t.store.Get(cur.rid, nil)
	if err != nil {
		return err
	}
	t.writes.Add(1)
	t.runtime[col].updates.Add(1)
	t.runtime[col].widen(v)
	if row[col] == v {
		return nil
	}
	row[col] = v // store.Get returned a private copy: the new version's row
	rid, err := t.store.Insert(row)
	if err != nil {
		return err
	}
	t.movePrimary(pk, cur, rid)
	t.insertIndexEntries(rid, row)
	c := t.clock
	c.commitMu.Lock()
	commitTS := c.ts.Load() + 1
	t.stampUpdate(cur, rid, commitTS)
	c.ts.Store(commitTS)
	c.commitMu.Unlock()
	return nil
}
