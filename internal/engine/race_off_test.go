//go:build !race

package engine

// raceEnabled reports whether this test binary was built with the race
// detector; allocation-count guards skip under it.
const raceEnabled = false
