package engine

import (
	"hermit/internal/advisor"
	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// This file binds the advisor's Catalog interface to the two engines. The
// advisor package cannot import the engine (the engine imports it), so the
// engine implements the interface with thin adapters: one over the
// in-memory DB (DDL straight into the catalog) and one over DurableDB
// (DDL through the quiesce-and-WAL path, so advisor decisions are
// replayed by recovery like any operator DDL).

// AdvisorOptions configures the background advisor; see advisor.Options.
type AdvisorOptions = advisor.Options

// EnableAdvisor attaches a self-tuning advisor to the database and starts
// its background loop (Options.Interval <= 0 yields a manual advisor that
// only acts on RunOnce). The advisor samples tables, discovers correlated
// column pairs, and creates or drops Hermit/B+-tree indexes from the
// observed query mix; call Stop on the returned advisor to halt it.
func (db *DB) EnableAdvisor(opts AdvisorOptions) *advisor.Advisor {
	a := advisor.New(dbCatalog{db}, opts)
	a.Start()
	return a
}

// EnableAdvisor is DB.EnableAdvisor for the durable engine: advisor DDL
// goes through the WAL-logged CreateIndex/DropIndex paths, so auto-created
// indexes survive close/reopen and crashes.
func (d *DurableDB) EnableAdvisor(opts AdvisorOptions) *advisor.Advisor {
	a := advisor.New(durableCatalog{d}, opts)
	a.Start()
	return a
}

// advisorKind converts the engine's IndexKind to the advisor's mirror.
func advisorKind(k IndexKind) advisor.IndexKind {
	switch k {
	case KindBTree:
		return advisor.KindBTree
	case KindHermit:
		return advisor.KindHermit
	case KindCM:
		return advisor.KindCM
	case KindPrimary:
		return advisor.KindPrimary
	default:
		return advisor.KindNone
	}
}

// KindFromAdvisor converts the advisor's IndexKind mirror back to the
// engine's vocabulary — shared by the engine's Catalog adapters and by
// internal/partition's.
func KindFromAdvisor(k advisor.IndexKind) IndexKind {
	switch k {
	case advisor.KindBTree:
		return KindBTree
	case advisor.KindHermit:
		return KindHermit
	case advisor.KindCM:
		return KindCM
	case advisor.KindPrimary:
		return KindPrimary
	default:
		return KindNone
	}
}

// AdvisorInfo snapshots the table for the advisor: per-column index kinds,
// workload counters, false-positive EWMAs and index footprints. It is the
// Catalog.Info building block shared by the engine's adapters and by
// internal/partition, which aggregates one snapshot per partition.
func (t *Table) AdvisorInfo() advisor.TableInfo {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	info := advisor.TableInfo{
		Name:             t.name,
		PKCol:            t.pkCol,
		Rows:             t.store.Len(),
		Writes:           t.writes.Load(),
		PhysicalPointers: t.scheme == hermit.PhysicalPointers,
		Columns:          make([]advisor.ColumnInfo, len(t.cols)),
	}
	for col := range t.cols {
		rt := &t.runtime[col]
		kind := t.indexOnLocked(col)
		ci := advisor.ColumnInfo{
			Name:    t.cols[col],
			Kind:    advisorKind(kind),
			Queries: rt.queries.Load(),
			Updates: rt.updates.Load(),
		}
		switch kind {
		case KindHermit:
			ci.IndexBytes = t.hermits[col].SizeBytes() // TRS-Tree self-latches
		case KindCM:
			mu := t.cmMu.get(col)
			mu.RLock()
			ci.IndexBytes = t.cms[col].SizeBytes()
			mu.RUnlock()
		case KindBTree:
			mu := t.secondaryMu.get(col)
			mu.RLock()
			ci.IndexBytes = t.secondary[col].SizeBytes()
			mu.RUnlock()
		}
		path := pathForKind(kind)
		ci.ObservedFP = ewmaValue(&rt.paths[path].fp)
		ci.FPObservations = rt.paths[path].fpObs.Load()
		info.Columns[col] = ci
	}
	return info
}

// dbCatalog adapts the in-memory DB.
type dbCatalog struct{ db *DB }

func (c dbCatalog) TableNames() []string {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	names := make([]string, 0, len(c.db.tables))
	for name := range c.db.tables {
		names = append(names, name)
	}
	return names
}

func (c dbCatalog) Info(table string) (advisor.TableInfo, error) {
	tb, err := c.db.Table(table)
	if err != nil {
		return advisor.TableInfo{}, err
	}
	return tb.AdvisorInfo(), nil
}

func (c dbCatalog) Store(table string) (*storage.Table, error) {
	tb, err := c.db.Table(table)
	if err != nil {
		return nil, err
	}
	return tb.Store(), nil
}

func (c dbCatalog) CreateHermitIndex(table string, col, host int, params trstree.Params) error {
	tb, err := c.db.Table(table)
	if err != nil {
		return err
	}
	_, err = tb.CreateHermitIndex(col, host, WithParams(params))
	return err
}

func (c dbCatalog) CreateBTreeIndex(table string, col int) error {
	tb, err := c.db.Table(table)
	if err != nil {
		return err
	}
	_, err = tb.CreateBTreeIndex(col, true)
	return err
}

func (c dbCatalog) DropIndex(table string, col int, kind advisor.IndexKind) error {
	tb, err := c.db.Table(table)
	if err != nil {
		return err
	}
	return tb.DropIndex(col, KindFromAdvisor(kind))
}

// durableCatalog adapts DurableDB: DDL goes through the quiesced,
// WAL-logged paths.
type durableCatalog struct{ d *DurableDB }

func (c durableCatalog) TableNames() []string {
	c.d.mu.RLock()
	defer c.d.mu.RUnlock()
	names := make([]string, 0, len(c.d.tables))
	for name, meta := range c.d.tables {
		// Partitioned tables are advised through their scatter-gather
		// wrapper (internal/partition), which aggregates per-partition
		// counters; the logical name has no single engine table behind it.
		if meta.Partitions > 0 {
			continue
		}
		names = append(names, name)
	}
	return names
}

func (c durableCatalog) Info(table string) (advisor.TableInfo, error) {
	tb, err := c.d.Table(table)
	if err != nil {
		return advisor.TableInfo{}, err
	}
	return tb.AdvisorInfo(), nil
}

func (c durableCatalog) Store(table string) (*storage.Table, error) {
	tb, err := c.d.Table(table)
	if err != nil {
		return nil, err
	}
	return tb.Store(), nil
}

func (c durableCatalog) CreateHermitIndex(table string, col, host int, params trstree.Params) error {
	return c.d.CreateIndex(table, IndexDef{Kind: "hermit", Col: col, Host: host, Params: params})
}

func (c durableCatalog) CreateBTreeIndex(table string, col int) error {
	return c.d.CreateIndex(table, IndexDef{Kind: "btree", Col: col, MarkNew: true})
}

func (c durableCatalog) DropIndex(table string, col int, kind advisor.IndexKind) error {
	return c.d.DropIndex(table, col, KindFromAdvisor(kind).String())
}
