package engine

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/stats"
	"hermit/internal/storage"
)

// This file is the cost-based access-path planner. Instead of the fixed
// routing priority the engine shipped with (Hermit, then CM, then B+-tree,
// then primary, then scan), every point/range query is planned: the engine
// enumerates the access paths that can serve the predicate, estimates each
// one's cost from table statistics (cached column bounds, row count) and
// per-path runtime feedback (hit counts, false-positive EWMAs, latency
// EWMAs recorded by execution), and runs the cheapest. Table.Explain
// exposes the same computation without executing, which is what the
// advisor's decisions and the planner tests are built on.
//
// The model is a classic abstract-cost optimizer: descents through index
// levels, per-entry harvest costs, per-candidate random fetches, and
// per-row sequential scan costs, expressed in abstract units. Execution
// feeds observed latency back per (column, path); once a path has enough
// timed observations its unit cost is calibrated to observed nanoseconds,
// so persistent mis-estimates correct themselves.

// AccessPath identifies one way the engine can serve a single-column
// predicate.
type AccessPath int

const (
	// PathScan is the unindexed fallback: a sequential column scan.
	PathScan AccessPath = iota
	// PathPrimary scans the primary index (predicate on the key column).
	PathPrimary
	// PathBTree scans a complete secondary B+-tree index.
	PathBTree
	// PathHermit runs the Hermit mechanism: TRS-Tree, host index,
	// (primary index under logical pointers), base-table validation.
	PathHermit
	// PathCM runs a Correlation Map lookup against its host index.
	PathCM
	// PathTRSDirect resolves the TRS-Tree's predicted host ranges by a
	// sequential scan of the host column instead of the host B+-tree: no
	// host/primary latches and no per-candidate primary probes. In this
	// row-store a plain scan qualifies the target column at the same
	// per-row cost, so the path is cost-dominated by PathScan and mainly
	// serves Explain; it becomes competitive in engines where the host
	// column is clustered or cheaper to stream.
	PathTRSDirect
	// numPaths bounds per-path arrays.
	numPaths
)

// String implements fmt.Stringer.
func (p AccessPath) String() string {
	switch p {
	case PathPrimary:
		return "primary"
	case PathBTree:
		return "btree"
	case PathHermit:
		return "hermit"
	case PathCM:
		return "cm"
	case PathTRSDirect:
		return "trs-direct"
	default:
		return "scan"
	}
}

// Kind maps an access path to the index mechanism that serves it (the
// QueryStats.Kind vocabulary predating the planner).
func (p AccessPath) Kind() IndexKind {
	switch p {
	case PathPrimary:
		return KindPrimary
	case PathBTree:
		return KindBTree
	case PathHermit, PathTRSDirect:
		return KindHermit
	case PathCM:
		return KindCM
	default:
		return KindNone
	}
}

// RoutingMode selects how RangeQuery picks its access path.
type RoutingMode int32

const (
	// RouteCost plans every query with the cost model (the default).
	RouteCost RoutingMode = iota
	// RouteStatic uses the fixed pre-planner priority (Hermit, CM, B+-tree,
	// primary, scan). The figure benchmarks pin tables to this mode so each
	// experiment measures the mechanism it names rather than the planner's
	// choice.
	RouteStatic
)

// SetRouting selects the table's routing mode (default RouteCost).
func (t *Table) SetRouting(m RoutingMode) { t.routing.Store(int32(m)) }

// Abstract cost units. One unit is roughly one B+-tree level descent; the
// other constants are multiples of that calibrated to the in-memory
// substrates (random row fetches dominate, sequential column visits are
// cheap, entry harvesting within a leaf is cheaper still).
const (
	costLevel   = 1.0  // descending one index level
	costEntry   = 0.25 // harvesting one entry from an index range scan
	costFetch   = 4.0  // one random base-table access (resolve + validate)
	costScanRow = 0.75 // one sequential row visit in a column scan

	// defaultNSPerUnit converts model units to nanoseconds until the table
	// has latencyCalibrationObs timed observations to calibrate with.
	defaultNSPerUnit      = 100.0
	latencyCalibrationObs = 8
	minCalibrationNSPerU  = 5.0
	maxCalibrationNSPerU  = 2000.0
	// pathCalibrationBand bounds how far a single path's calibrated
	// nanoseconds-per-unit may drift from the table-wide ratio. Paths that
	// never execute (a scan on a well-indexed column) carry no latency
	// observations, so without the band a jittery sample on a running path
	// could make it look arbitrarily worse than a path costed at the
	// table-wide ratio — flipping plans on noise rather than signal.
	pathCalibrationBand    = 4.0
	latencySampleMask      = 7   // time 1 query in 8
	hermitAuxRefreshPeriod = 256 // queries between TRS-Tree stat refreshes
)

// pathRuntime is the execution feedback for one (column, path) pair. All
// fields are atomics: queries on different columns never contend, and
// queries on the same column only CAS.
type pathRuntime struct {
	count  atomic.Uint64 // queries served by this path
	latNS  atomic.Uint64 // float64 bits: EWMA of observed latency (sampled)
	latObs atomic.Uint64 // timed observations folded into latNS
	fp     atomic.Uint64 // float64 bits: EWMA of observed false-positive ratio
	fpObs  atomic.Uint64 // observations folded into fp
	cost   atomic.Uint64 // float64 bits: EWMA of the model cost at execution
}

// colRuntime is the per-column statistics block backing the planner and the
// advisor: query/update counters, cached value bounds (maintained by writes,
// bootstrapped by one lazy scan for stores loaded out-of-band), per-path
// feedback, and a cached view of the Hermit TRS-Tree's structure.
type colRuntime struct {
	queries atomic.Uint64 // queries whose predicate targets this column
	updates atomic.Uint64 // UpdateColumn calls on this column

	boundsLo atomic.Uint64 // float64 bits; +Inf until a value is observed
	boundsHi atomic.Uint64 // float64 bits; -Inf until a value is observed

	paths [numPaths]pathRuntime

	// Cached TRS-Tree structure for the Hermit index on this column,
	// refreshed every hermitAuxRefreshPeriod queries (walking the tree per
	// query would be O(leaves)).
	hermitOutlierFrac atomic.Uint64 // float64 bits
	hermitHeight      atomic.Uint64
	hermitAuxAt       atomic.Uint64 // query count at last refresh (+1)
}

// newColRuntime initialises the bounds sentinels.
func newColRuntime(n int) []colRuntime {
	rt := make([]colRuntime, n)
	for i := range rt {
		rt[i].boundsLo.Store(math.Float64bits(math.Inf(1)))
		rt[i].boundsHi.Store(math.Float64bits(math.Inf(-1)))
	}
	return rt
}

// widen folds an observed value into the column's cached bounds. Bounds
// only widen — deletes never shrink them — which can only overestimate
// scan selectivity, a conservative error.
func (c *colRuntime) widen(v float64) {
	casMin(&c.boundsLo, v)
	casMax(&c.boundsHi, v)
}

func casMin(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// ewmaObserve folds v into the float64-bits EWMA at a with stats.EWMAStep,
// returning the new observation count. obs is the matching counter.
func ewmaObserve(a *atomic.Uint64, obs *atomic.Uint64, v float64) uint64 {
	n := obs.Add(1)
	for {
		old := a.Load()
		cur := math.Float64frombits(old)
		nw := stats.EWMAStep(cur, v, stats.DefaultEWMAAlpha, int(n-1))
		if a.CompareAndSwap(old, math.Float64bits(nw)) {
			return n
		}
	}
}

func ewmaValue(a *atomic.Uint64) float64 { return math.Float64frombits(a.Load()) }

// bounds returns the column's cached value bounds, falling back to one
// column scan when the cache is cold (rows loaded directly into the store
// rather than through Table.Insert). A racing scan is harmless: both
// writers widen toward the same result.
func (t *Table) bounds(col int) (lo, hi float64, ok bool) {
	rt := &t.runtime[col]
	lo = math.Float64frombits(rt.boundsLo.Load())
	hi = math.Float64frombits(rt.boundsHi.Load())
	if lo <= hi {
		return lo, hi, true
	}
	if t.store.Len() == 0 {
		return 0, 0, false
	}
	if slo, shi, sok := t.store.ColumnBounds(col); sok {
		rt.widen(slo)
		rt.widen(shi)
		return slo, shi, true
	}
	return 0, 0, false
}

// hermitAux returns the cached (outlier fraction, tree height) of the
// Hermit index on col, refreshing from the self-latching tree when the
// table has seen enough queries or writes since the last walk (walking the
// tree is O(nodes), too dear per query) — or unconditionally when force is
// set (Explain and the planner tests want current structure).
func (t *Table) hermitAux(col int, hx *hermit.Index, rows int, force bool) (outFrac float64, treeH float64) {
	rt := &t.runtime[col]
	stamp := rt.queries.Load() + t.writes.Load()
	if at := rt.hermitAuxAt.Load(); force || at == 0 || stamp-(at-1) >= hermitAuxRefreshPeriod {
		st := hx.Tree().Stats()
		f := 0.0
		if rows > 0 {
			f = float64(st.Outliers) / float64(rows)
		}
		rt.hermitOutlierFrac.Store(math.Float64bits(f))
		rt.hermitHeight.Store(uint64(st.Height))
		rt.hermitAuxAt.Store(stamp + 1)
	}
	outFrac = math.Float64frombits(rt.hermitOutlierFrac.Load())
	treeH = float64(rt.hermitHeight.Load())
	if treeH == 0 {
		treeH = 3
	}
	return outFrac, treeH
}

// resetPathStats clears the runtime feedback of the given paths on col —
// called by DropIndex (under the exclusive catalog latch) so an index
// recreated later starts with fresh statistics instead of inheriting the
// dropped index's false-positive and latency history.
func (t *Table) resetPathStats(col int, paths ...AccessPath) {
	rt := &t.runtime[col]
	for _, p := range paths {
		pr := &rt.paths[p]
		pr.count.Store(0)
		pr.latNS.Store(0)
		pr.latObs.Store(0)
		pr.fp.Store(0)
		pr.fpObs.Store(0)
		pr.cost.Store(0)
		if p == PathHermit {
			rt.hermitOutlierFrac.Store(0)
			rt.hermitHeight.Store(0)
			rt.hermitAuxAt.Store(0)
		}
	}
}

// pathForKind maps an index kind to the access path that mechanism
// executes — the static routing priority's vocabulary, shared by
// staticPathLocked, QueryStatsFor and the advisor snapshot.
func pathForKind(k IndexKind) AccessPath {
	switch k {
	case KindHermit:
		return PathHermit
	case KindCM:
		return PathCM
	case KindBTree:
		return PathBTree
	case KindPrimary:
		return PathPrimary
	default:
		return PathScan
	}
}

// PathEstimate is one access path's entry in a query plan.
type PathEstimate struct {
	// Path names the access path.
	Path AccessPath
	// Available reports whether the path can serve this predicate.
	Available bool
	// Cost is the model cost in abstract units (lower is better).
	Cost float64
	// CostNS is the calibrated latency prediction in nanoseconds — the
	// quantity the planner minimises.
	CostNS float64
	// EstRows is the estimated number of qualifying rows.
	EstRows int
	// EstCandidates is the estimated number of tuples the path must fetch
	// and validate (≥ EstRows for inexact mechanisms).
	EstCandidates int
	// FPEstimate is the false-positive ratio the candidate estimate used:
	// the observed EWMA when available, else a structural default.
	FPEstimate float64
	// Observed execution feedback for this (column, path) pair.
	ObservedQueries uint64
	ObservedLatency time.Duration // EWMA of sampled latencies; 0 if unobserved
	ObservedFP      float64       // EWMA of observed false-positive ratios
	// Reason is a one-line account of the estimate (or of unavailability).
	Reason string
}

// Plan is the planner's costed decision for one predicate, as returned by
// Table.Explain.
type Plan struct {
	// Table and Column identify the predicate target; Lo/Hi its range.
	Table  string
	Column string
	Col    int
	Lo, Hi float64
	// Rows is the table's live row count at planning time.
	Rows int
	// Selectivity is the estimated fraction of rows qualifying.
	Selectivity float64
	// Chosen is the path RangeQuery would execute.
	Chosen AccessPath
	// Candidates holds every path's estimate, cheapest available first
	// (unavailable paths trail, in path order).
	Candidates []PathEstimate
}

// Explain plans the range predicate lo <= col <= hi without executing it:
// it reports the access path RangeQuery would choose and the per-path cost
// estimates behind the choice. A point query is Explain(col, v, v).
func (t *Table) Explain(col int, lo, hi float64) (Plan, error) {
	if col < 0 || col >= len(t.cols) {
		return Plan{}, ErrNoSuchColumn
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	chosen, ests, sel, n := t.planLockedForce(col, lo, hi, true)
	plan := Plan{
		Table:       t.name,
		Column:      t.cols[col],
		Col:         col,
		Lo:          lo,
		Hi:          hi,
		Rows:        n,
		Selectivity: sel,
		Chosen:      chosen,
	}
	// Available paths sorted by predicted latency, then unavailable ones.
	for phase := 0; phase < 2; phase++ {
		avail := phase == 0
		var idxs []int
		for i := range ests {
			if ests[i].Available == avail {
				idxs = append(idxs, i)
			}
		}
		if avail {
			for a := 1; a < len(idxs); a++ {
				for b := a; b > 0 && ests[idxs[b]].CostNS < ests[idxs[b-1]].CostNS; b-- {
					idxs[b], idxs[b-1] = idxs[b-1], idxs[b]
				}
			}
		}
		for _, i := range idxs {
			plan.Candidates = append(plan.Candidates, ests[i])
		}
	}
	return plan, nil
}

// planLocked estimates every path for the predicate and picks the cheapest
// available one. t.catalog is held shared.
func (t *Table) planLocked(col int, lo, hi float64) (AccessPath, [numPaths]PathEstimate, float64, int) {
	return t.planLockedForce(col, lo, hi, false)
}

// planLockedForce is planLocked with control over the TRS-Tree stat
// refresh (Explain forces it so plans reflect current structure).
func (t *Table) planLockedForce(col int, lo, hi float64, refresh bool) (AccessPath, [numPaths]PathEstimate, float64, int) {
	n := t.Len() // live rows: dead versions awaiting GC are not results
	sel := t.selectivity(col, lo, hi, n)
	estRows := sel * float64(n)
	levels := btreeLevels(n)
	logical := t.scheme == hermit.LogicalPointers
	// Per-candidate resolution cost: random fetch, plus a primary-index
	// point probe under logical pointers.
	resolve := costFetch
	if logical {
		resolve += levels * costLevel
	}

	var ests [numPaths]PathEstimate
	for p := AccessPath(0); p < numPaths; p++ {
		ests[p] = PathEstimate{Path: p, EstRows: int(math.Ceil(estRows))}
	}

	// Scan: always available; qualifies the target column directly, so no
	// fetch phase and no pointer resolution.
	ests[PathScan].Available = true
	ests[PathScan].Cost = float64(n) * costScanRow
	ests[PathScan].EstCandidates = n
	ests[PathScan].Reason = "sequential column scan; no latches, no fetches"

	if col == t.pkCol {
		e := &ests[PathPrimary]
		e.Available = true
		e.Cost = levels*costLevel + estRows*(costEntry+costFetch)
		e.EstCandidates = e.EstRows
		e.Reason = "primary index range scan (exact)"
	} else {
		ests[PathPrimary].Reason = "predicate is not on the primary-key column"
	}

	if t.secondary[col] != nil {
		e := &ests[PathBTree]
		e.Available = true
		e.Cost = levels*costLevel + estRows*(costEntry+resolve)
		e.EstCandidates = e.EstRows
		e.Reason = "complete B+-tree (exact)"
		if logical {
			e.Reason = "complete B+-tree (exact); +primary probe per row"
		}
	} else {
		ests[PathBTree].Reason = "no complete B+-tree on this column"
	}

	if hx := t.hermits[col]; hx != nil {
		outFrac, treeH := t.hermitAux(col, hx, n, refresh)
		rt := &t.runtime[col].paths[PathHermit]
		fpEst := clamp(0.1+2*outFrac, 0.05, 0.95)
		observed := false
		if rt.fpObs.Load() >= latencyCalibrationObs {
			fpEst = clamp(ewmaValue(&rt.fp), 0, 0.95)
			observed = true
		}
		bloat := 1 / (1 - fpEst)
		estCand := estRows * bloat
		e := &ests[PathHermit]
		e.Available = true
		e.FPEstimate = fpEst
		e.EstCandidates = int(math.Ceil(estCand))
		e.Cost = treeH*costLevel + estCand*(costEntry+resolve)
		// Formatted Reason strings allocate; only Explain (refresh) reads
		// them, so the per-query planning pass skips building them.
		if refresh {
			if observed {
				e.Reason = fmt.Sprintf("TRS-Tree + host index + validation; observed fp EWMA over %d queries", rt.fpObs.Load())
			} else {
				e.Reason = fmt.Sprintf("TRS-Tree + host index + validation; structural fp default (outlier frac %.2f)", outFrac)
			}
		}

		ed := &ests[PathTRSDirect]
		ed.Available = true
		ed.FPEstimate = fpEst
		ed.EstCandidates = e.EstCandidates
		ed.Cost = treeH*costLevel + float64(n)*costScanRow + estCand*costFetch
		ed.Reason = "TRS-Tree + sequential host-column scan; skips host/primary latches and probes"
	} else {
		ests[PathHermit].Reason = "no Hermit index on this column"
		ests[PathTRSDirect].Reason = "no Hermit index (TRS-Tree) on this column"
	}

	if t.cms[col] != nil {
		rt := &t.runtime[col].paths[PathCM]
		fpEst := 0.3
		observed := false
		if rt.fpObs.Load() >= latencyCalibrationObs {
			fpEst = clamp(ewmaValue(&rt.fp), 0, 0.95)
			observed = true
		}
		estCand := estRows / (1 - fpEst)
		e := &ests[PathCM]
		e.Available = true
		e.FPEstimate = fpEst
		e.EstCandidates = int(math.Ceil(estCand))
		e.Cost = costLevel + estCand*(costEntry+costFetch)
		e.Reason = "Correlation Map buckets + host index + validation; structural fp default"
		if refresh && observed {
			// Formatted Reasons allocate; built for Explain only.
			e.Reason = fmt.Sprintf("Correlation Map buckets + host index + validation; observed fp EWMA over %d queries", rt.fpObs.Load())
		}
	} else {
		ests[PathCM].Reason = "no Correlation Map on this column"
	}

	// Calibrate model units to nanoseconds and choose the smallest
	// predicted latency. The table-wide ratio (all timed queries) anchors
	// the scale; a path with its own observations may pull away from that
	// anchor by at most pathCalibrationBand in either direction.
	globalNS := defaultNSPerUnit
	if t.calObs.Load() >= latencyCalibrationObs {
		if cu := ewmaValue(&t.calCost); cu > 0 {
			globalNS = clamp(ewmaValue(&t.calLat)/cu, minCalibrationNSPerU, maxCalibrationNSPerU)
		}
	}
	chosen := PathScan
	best := math.Inf(1)
	for p := AccessPath(0); p < numPaths; p++ {
		e := &ests[p]
		rt := &t.runtime[col].paths[p]
		e.ObservedQueries = rt.count.Load()
		e.ObservedFP = ewmaValue(&rt.fp)
		e.ObservedLatency = time.Duration(ewmaValue(&rt.latNS))
		if !e.Available {
			continue
		}
		nsPer := globalNS
		if rt.latObs.Load() >= latencyCalibrationObs {
			if cu := ewmaValue(&rt.cost); cu > 0 {
				nsPer = clamp(ewmaValue(&rt.latNS)/cu,
					math.Max(minCalibrationNSPerU, globalNS/pathCalibrationBand),
					math.Min(maxCalibrationNSPerU, globalNS*pathCalibrationBand))
			}
		}
		e.CostNS = e.Cost * nsPer
		if e.CostNS < best {
			best = e.CostNS
			chosen = p
		}
	}
	return chosen, ests, sel, n
}

// selectivity estimates the fraction of rows with col in [lo, hi] from the
// cached column bounds, assuming a uniform marginal (no histogram yet).
// Point predicates and unknown bounds floor at one row's worth.
func (t *Table) selectivity(col int, lo, hi float64, n int) float64 {
	if n == 0 || hi < lo {
		return 0
	}
	floor := 1 / float64(n)
	blo, bhi, ok := t.bounds(col)
	if !ok || bhi <= blo {
		return 1 // degenerate column: every row has the same value
	}
	l, h := math.Max(lo, blo), math.Min(hi, bhi)
	if h < l {
		return floor
	}
	return clamp((h-l)/(bhi-blo), floor, 1)
}

// btreeLevels estimates a B+-tree descent depth for n keys.
func btreeLevels(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Max(1, math.Ceil(math.Log(float64(n))/math.Log(16)))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// recordQuery feeds execution results back into the planner's runtime
// statistics: hit count, false-positive EWMA, and (sampled) latency plus
// the model cost needed for unit calibration.
func (t *Table) recordQuery(col int, path AccessPath, modelCost float64, elapsed time.Duration, st QueryStats) {
	rt := &t.runtime[col]
	rt.queries.Add(1)
	pr := &rt.paths[path]
	pr.count.Add(1)
	if st.Candidates > 0 {
		ewmaObserve(&pr.fp, &pr.fpObs, st.FalsePositiveRatio())
	}
	if elapsed > 0 && modelCost > 0 {
		ewmaObserve(&pr.latNS, &pr.latObs, float64(elapsed))
		ewmaFold(&pr.cost, modelCost, pr.latObs.Load())
		// Table-wide calibration anchor.
		ewmaObserve(&t.calLat, &t.calObs, float64(elapsed))
		ewmaFold(&t.calCost, modelCost, t.calObs.Load())
	}
}

// ewmaFold is ewmaObserve for a value whose observation count is tracked
// elsewhere (n is the count including this observation).
func ewmaFold(a *atomic.Uint64, v float64, n uint64) {
	for {
		old := a.Load()
		cur := math.Float64frombits(old)
		nw := stats.EWMAStep(cur, v, stats.DefaultEWMAAlpha, int(n-1))
		if a.CompareAndSwap(old, math.Float64bits(nw)) {
			return
		}
	}
}

// ColumnQueryStats is the advisor-facing summary of one column's observed
// workload and serving state.
type ColumnQueryStats struct {
	// Queries counts predicates targeting the column; Updates counts
	// UpdateColumn calls on it.
	Queries uint64
	Updates uint64
	// ServingPath is the access path of the column's serving index
	// mechanism (the static routing priority) — the path whose observed
	// statistics are reported below. The cost planner may still route an
	// individual query elsewhere; use Table.Explain for a costed decision.
	ServingPath AccessPath
	// ObservedFP and FPObservations describe the serving path's
	// false-positive EWMA.
	ObservedFP     float64
	FPObservations uint64
}

// QueryStatsFor returns the column's observed workload counters — the
// query-mix feedback the advisor consumes.
func (t *Table) QueryStatsFor(col int) (ColumnQueryStats, error) {
	if col < 0 || col >= len(t.cols) {
		return ColumnQueryStats{}, ErrNoSuchColumn
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	rt := &t.runtime[col]
	out := ColumnQueryStats{
		Queries: rt.queries.Load(),
		Updates: rt.updates.Load(),
	}
	path := pathForKind(t.indexOnLocked(col))
	out.ServingPath = path
	out.ObservedFP = ewmaValue(&rt.paths[path].fp)
	out.FPObservations = rt.paths[path].fpObs.Load()
	return out, nil
}

// Writes returns the table's lifetime mutation count (inserts + deletes +
// updates), the write side of the advisor's query-mix ratio.
func (t *Table) Writes() uint64 { return t.writes.Load() }

// trsDirectRange executes PathTRSDirect: a TRS-Tree lookup resolved by one
// sequential pass over the host column (version rows whose host value
// falls in a predicted range, plus the buffered outliers) with
// target-column validation and snapshot visibility resolution — no
// host-index or primary-index latches.
func (t *Table) trsDirectRange(snap *Snapshot, col int, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	hx := t.hermits[col]
	hostCol := t.hostOf[col]
	tres := hx.Tree().Lookup(lo, hi)
	sc := getScratch()
	defer putScratch(sc)
	sc.rids = sc.rids[:0]
	// Outlier identifiers resolve like Hermit candidates: directly under
	// physical pointers, through the version chains under logical pointers
	// (the chain, not the primary index, knows which incarnation the
	// snapshot reads).
	if t.scheme == hermit.LogicalPointers {
		for _, pk := range tres.IDs {
			if v := t.resolveVisible(float64(pk), snap.ts); v != nil {
				sc.rids = append(sc.rids, v.rid)
			}
		}
	} else {
		for _, id := range tres.IDs {
			sc.rids = append(sc.rids, storage.RID(id))
		}
	}
	err := t.store.ScanColumn(hostCol, func(rid storage.RID, nv float64) bool {
		for _, r := range tres.Ranges {
			if nv >= r.Lo && nv <= r.Hi {
				sc.rids = append(sc.rids, rid)
				break
			}
		}
		return true
	})
	if err != nil {
		return nil, QueryStats{Kind: KindHermit}, err
	}
	// Deduplicate (a row can be both an outlier and inside a predicted
	// range), then validate against the target column and resolve
	// visibility. Every version of a matching key is its own candidate, so
	// the visible incarnation is always present.
	slices.Sort(sc.rids)
	st := QueryStats{Kind: KindHermit}
	out := resultBuf(dst, len(sc.rids))
	var prev storage.RID
	for i, rid := range sc.rids {
		if i > 0 && rid == prev {
			continue
		}
		prev = rid
		st.Candidates++
		m, err := t.store.Value(rid, col)
		if err != nil {
			continue // reclaimed between harvest and validation
		}
		if m >= lo && m <= hi && t.versionVisible(rid, snap.ts) {
			out = append(out, rid)
		}
	}
	st.Rows = len(out)
	return out, st, nil
}
