package engine

import (
	"math"
	"testing"
)

// TestPartitionOfBoundsAndDegenerate: results stay in [0, n) for every
// input, and degenerate partition counts collapse to partition 0.
func TestPartitionOfBoundsAndDegenerate(t *testing.T) {
	keys := []float64{0, -0.0, 1, -1, 0.5, 1e308, -1e308, 5e-324,
		math.NaN(), math.Inf(1), math.Inf(-1), 12345.6789}
	for _, n := range []int{-3, 0, 1} {
		for _, k := range keys {
			if p := PartitionOf(k, n); p != 0 {
				t.Fatalf("PartitionOf(%v, %d) = %d, want 0", k, n, p)
			}
		}
	}
	for _, n := range []int{2, 3, 7, 64} {
		for _, k := range keys {
			if p := PartitionOf(k, n); p < 0 || p >= n {
				t.Fatalf("PartitionOf(%v, %d) = %d out of range", k, n, p)
			}
		}
	}
}

// TestPartitionOfNegativeZero: -0 and +0 compare equal as keys, so they
// must route to the same partition.
func TestPartitionOfNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if math.Float64bits(negZero) == math.Float64bits(0) {
		t.Fatal("test setup: -0 not distinct at the bit level")
	}
	for _, n := range []int{2, 3, 5, 17, 1024} {
		if PartitionOf(negZero, n) != PartitionOf(0, n) {
			t.Fatalf("n=%d: -0 routes to %d, +0 to %d",
				n, PartitionOf(negZero, n), PartitionOf(0, n))
		}
	}
}

// TestPartitionOfNonFinite: NaN and the infinities are legal float64 keys
// (the engine stores them bit-exactly), so routing must be deterministic
// for them too.
func TestPartitionOfNonFinite(t *testing.T) {
	for _, k := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for _, n := range []int{2, 5, 16} {
			a, b := PartitionOf(k, n), PartitionOf(k, n)
			if a != b {
				t.Fatalf("PartitionOf(%v, %d) unstable: %d then %d", k, n, a, b)
			}
		}
	}
	// The two NaN payloads the engine can realistically see hash by their
	// bit patterns; any answer is fine as long as it is deterministic and
	// in range (covered above), and +Inf != -Inf routing is allowed.
}

// TestPartitionOfStability: the hash is pure — the same (key, n) pair
// always routes identically across calls (recovery routes logged records
// by recomputing it, so instability would corrupt partitioned replay).
func TestPartitionOfStability(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := float64(i) * 1.618033988749
		for _, n := range []int{2, 3, 8} {
			want := PartitionOf(k, n)
			for r := 0; r < 3; r++ {
				if got := PartitionOf(k, n); got != want {
					t.Fatalf("PartitionOf(%v, %d) unstable", k, n)
				}
			}
		}
	}
}

// TestPartitionOfSpread: splitmix64 over adjacent integer keys must not
// degenerate — every partition of a small count receives a fair share.
func TestPartitionOfSpread(t *testing.T) {
	const n, keys = 8, 8000
	var counts [n]int
	for i := 0; i < keys; i++ {
		counts[PartitionOf(float64(i), n)]++
	}
	for p, c := range counts {
		if c < keys/n/2 || c > keys/n*2 {
			t.Fatalf("partition %d holds %d of %d keys (expected ~%d)", p, c, keys, keys/n)
		}
	}
}

// TestPartitionNameReserved: the generated per-partition names use the
// reserved '#' separator and embed the partition index.
func TestPartitionNameReserved(t *testing.T) {
	if got := PartitionName("orders", 3); got != "orders#3" {
		t.Fatalf("PartitionName = %q", got)
	}
	if got := PartitionName("a#b", 0); got != "a#b#0" {
		t.Fatalf("PartitionName = %q", got)
	}
}
