package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/pager"
	"hermit/internal/trstree"
)

// DiskTable is the disk-based engine used for the paper's PostgreSQL
// experiments (§7.8): the base table is a slotted-page heap file, host and
// baseline indexes are page-based B+-trees behind a buffer pool, and — as
// in the paper's integration — Hermit's TRS-Tree stays in memory while
// everything it resolves against lives on disk. Physical tuple pointers
// only, matching PostgreSQL.
type DiskTable struct {
	pool  *pager.Pool
	pgr   *pager.Pager
	heap  *pager.HeapFile
	cols  []string
	pkCol int

	secondary map[int]*pager.DiskTree
	hermits   map[int]*DiskHermit
	profile   bool
}

// OpenDiskTable creates a disk table backed by a file in dir, with a buffer
// pool of poolPages frames.
func OpenDiskTable(dir string, cols []string, pkCol int, poolPages int) (*DiskTable, error) {
	if pkCol < 0 || pkCol >= len(cols) {
		return nil, ErrNoSuchColumn
	}
	p, err := pager.Open(filepath.Join(dir, "table.db"))
	if err != nil {
		return nil, err
	}
	pool := pager.NewPool(p, poolPages)
	return &DiskTable{
		pool:      pool,
		pgr:       p,
		heap:      pager.NewHeapFile(pool, len(cols)),
		cols:      append([]string(nil), cols...),
		pkCol:     pkCol,
		secondary: make(map[int]*pager.DiskTree),
		hermits:   make(map[int]*DiskHermit),
	}, nil
}

// Close flushes dirty pages and closes the file. The file is closed even
// when the flush fails (e.g. ErrDirtyPinned from a page still pinned), so
// the descriptor never leaks; both errors are reported.
func (t *DiskTable) Close() error {
	flushErr := t.pool.FlushAll()
	return errors.Join(flushErr, t.pgr.Close())
}

// SetProfile toggles per-phase query timing.
func (t *DiskTable) SetProfile(on bool) { t.profile = on }

// Pool exposes the buffer pool (for I/O statistics).
func (t *DiskTable) Pool() *pager.Pool { return t.pool }

// Len returns the number of live rows.
func (t *DiskTable) Len() int { return t.heap.Len() }

// Insert appends a row, maintaining every index.
func (t *DiskTable) Insert(row []float64) (pager.HeapRID, error) {
	rid, err := t.heap.Insert(row)
	if err != nil {
		return 0, err
	}
	for col, tr := range t.secondary {
		if err := tr.Insert(row[col], uint64(rid)); err != nil {
			return 0, err
		}
	}
	for col, hx := range t.hermits {
		hx.tree.Insert(row[col], row[hx.hostCol], uint64(rid))
	}
	return rid, nil
}

// CreateDiskBTreeIndex bulk-builds a page-based B+-tree index on col.
func (t *DiskTable) CreateDiskBTreeIndex(col int) (*pager.DiskTree, error) {
	if col < 0 || col >= len(t.cols) {
		return nil, ErrNoSuchColumn
	}
	if _, dup := t.secondary[col]; dup {
		return nil, ErrDupIndex
	}
	type entry struct {
		k float64
		v uint64
	}
	var entries []entry
	err := t.heap.Scan(func(rid pager.HeapRID, row []float64) bool {
		entries = append(entries, entry{k: row[col], v: uint64(rid)})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].k != entries[b].k {
			return entries[a].k < entries[b].k
		}
		return entries[a].v < entries[b].v
	})
	keys := make([]float64, len(entries))
	ids := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i], ids[i] = e.k, e.v
	}
	tr, err := pager.NewDiskTree(t.pool)
	if err != nil {
		return nil, err
	}
	if err := tr.BulkLoad(keys, ids); err != nil {
		return nil, err
	}
	t.secondary[col] = tr
	return tr, nil
}

// DiskHermit is a Hermit index whose host index and base table live on
// disk while the TRS-Tree is memory-resident.
type DiskHermit struct {
	table     *DiskTable
	tree      *trstree.Tree
	host      *pager.DiskTree
	targetCol int
	hostCol   int
}

// Tree exposes the in-memory TRS-Tree.
func (hx *DiskHermit) Tree() *trstree.Tree { return hx.tree }

// CreateDiskHermitIndex builds a Hermit index on col using the disk B+-tree
// on hostCol as host.
func (t *DiskTable) CreateDiskHermitIndex(col, hostCol int, params trstree.Params) (*DiskHermit, error) {
	if col < 0 || col >= len(t.cols) || hostCol < 0 || hostCol >= len(t.cols) {
		return nil, ErrNoSuchColumn
	}
	host, ok := t.secondary[hostCol]
	if !ok {
		return nil, ErrNoHostIndex
	}
	if _, dup := t.hermits[col]; dup {
		return nil, ErrDupIndex
	}
	var pairs []trstree.Pair
	err := t.heap.ScanPairs(col, hostCol, func(rid pager.HeapRID, m, n float64) bool {
		pairs = append(pairs, trstree.Pair{M: m, N: n, ID: uint64(rid)})
		return true
	})
	if err != nil {
		return nil, err
	}
	lo, hi, ok, err := t.heap.ColumnBounds(col)
	if err != nil {
		return nil, err
	}
	if !ok {
		lo, hi = 0, 1
	}
	tree, err := trstree.Build(pairs, lo, hi, params)
	if err != nil {
		return nil, err
	}
	hx := &DiskHermit{table: t, tree: tree, host: host, targetCol: col, hostCol: hostCol}
	t.hermits[col] = hx
	return hx, nil
}

// RangeQuery answers lo <= col <= hi through the best index. The breakdown
// uses the Fig. 24b categories: TRS-Tree, (host) index, validation (base
// table); the baseline spends everything in index + base table.
func (t *DiskTable) RangeQuery(col int, lo, hi float64) ([]pager.HeapRID, QueryStats, error) {
	if col < 0 || col >= len(t.cols) {
		return nil, QueryStats{}, ErrNoSuchColumn
	}
	if hx, ok := t.hermits[col]; ok {
		return hx.lookup(lo, hi)
	}
	if tr, ok := t.secondary[col]; ok {
		return t.baselineDiskRange(tr, lo, hi)
	}
	// Unindexed fallback: heap scan.
	var rids []pager.HeapRID
	st := QueryStats{Kind: KindNone}
	err := t.heap.Scan(func(rid pager.HeapRID, row []float64) bool {
		if row[col] >= lo && row[col] <= hi {
			rids = append(rids, rid)
		}
		return true
	})
	st.Rows, st.Candidates = len(rids), len(rids)
	return rids, st, err
}

func (hx *DiskHermit) lookup(lo, hi float64) ([]pager.HeapRID, QueryStats, error) {
	t := hx.table
	st := QueryStats{Kind: KindHermit}
	var t0 time.Time
	if t.profile {
		t0 = time.Now()
	}
	tres := hx.tree.Lookup(lo, hi)
	if t.profile {
		st.Breakdown[hermit.PhaseTRSTree] += time.Since(t0)
		t0 = time.Now()
	}
	ids := tres.IDs
	for _, r := range tres.Ranges {
		err := hx.host.Scan(r.Lo, r.Hi, func(_ float64, id uint64) bool {
			ids = append(ids, id)
			return true
		})
		if err != nil {
			return nil, st, err
		}
	}
	if t.profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var out []pager.HeapRID
	var prev uint64
	for i, id := range ids {
		if i > 0 && id == prev {
			continue
		}
		prev = id
		rid := pager.HeapRID(id)
		st.Candidates++
		m, err := t.heap.Value(rid, hx.targetCol)
		if err != nil {
			continue
		}
		if m >= lo && m <= hi {
			out = append(out, rid)
		}
	}
	if t.profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(out)
	return out, st, nil
}

func (t *DiskTable) baselineDiskRange(tr *pager.DiskTree, lo, hi float64) ([]pager.HeapRID, QueryStats, error) {
	st := QueryStats{Kind: KindBTree}
	var t0 time.Time
	if t.profile {
		t0 = time.Now()
	}
	var rids []pager.HeapRID
	err := tr.Scan(lo, hi, func(_ float64, id uint64) bool {
		rids = append(rids, pager.HeapRID(id))
		return true
	})
	if err != nil {
		return nil, st, err
	}
	if t.profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	out := rids[:0]
	for _, rid := range rids {
		if _, err := t.heap.Value(rid, t.pkCol); err == nil {
			out = append(out, rid)
		}
	}
	if t.profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows, st.Candidates = len(out), len(out)
	return out, st, nil
}

// DiskMemory reports the on-disk/and in-memory footprints: heap pages,
// index pages, and the memory-resident TRS-Trees.
func (t *DiskTable) DiskMemory() (heapBytes, indexBytes, trsBytes uint64) {
	heapBytes = t.heap.SizeBytes()
	for _, tr := range t.secondary {
		indexBytes += tr.SizeBytes()
	}
	for _, hx := range t.hermits {
		trsBytes += hx.tree.SizeBytes()
	}
	return
}

// String describes the table.
func (t *DiskTable) String() string {
	return fmt.Sprintf("disktable(cols=%d rows=%d pool=%d)", len(t.cols), t.Len(), t.pool.Capacity())
}
