package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
	"hermit/internal/wal"
)

// DurableDB wraps the in-memory engine with the persistence scheme §6
// sketches for main-memory RDBMSs: write-ahead logging plus checkpointing.
// Every mutation (DML and DDL) is appended to the WAL before it is applied;
// Checkpoint persists a full image (catalog manifest + row files) and
// truncates the log; OpenDurable recovers by loading the last checkpoint
// and replaying the log tail. Indexes — including Hermit's TRS-Trees — are
// rebuilt from their recorded definitions during recovery, which is the
// cheap option the paper's construction numbers (§7.5) justify.
type DurableDB struct {
	db     *DB
	dir    string
	log    *wal.Log
	tables map[string]*durableMeta
}

type durableMeta struct {
	Cols  []string   `json:"cols"`
	PKCol int        `json:"pk"`
	Defs  []IndexDef `json:"defs"`
}

// IndexDef records how to rebuild one index during recovery.
type IndexDef struct {
	Kind    string         `json:"kind"` // "btree" | "hermit" | "composite-btree" | "composite-hermit"
	Col     int            `json:"col"`
	Host    int            `json:"host,omitempty"`
	ACol    int            `json:"acol,omitempty"`
	MarkNew bool           `json:"new,omitempty"`
	Params  trstree.Params `json:"params,omitempty"`
}

type manifest struct {
	Scheme int                     `json:"scheme"`
	Tables map[string]*durableMeta `json:"tables"`
}

type ddlTable struct {
	Cols  []string `json:"cols"`
	PKCol int      `json:"pk"`
}

type ddlIndex struct {
	Def IndexDef `json:"def"`
}

// OpenDurable opens (or creates) a durable database in dir: it loads the
// last checkpoint if present, replays the WAL tail, and opens the log for
// appending.
func (f durablePaths) String() string { return f.dir }

type durablePaths struct{ dir string }

func (f durablePaths) manifest() string { return filepath.Join(f.dir, "manifest.json") }
func (f durablePaths) rows(t string) string {
	return filepath.Join(f.dir, "table_"+t+".rows")
}
func (f durablePaths) wal() string { return filepath.Join(f.dir, "wal.log") }

// OpenDurable opens the durable database stored in dir.
func OpenDurable(dir string, scheme hermit.PointerScheme) (*DurableDB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := durablePaths{dir}
	d := &DurableDB{
		db:     NewDB(scheme),
		dir:    dir,
		tables: make(map[string]*durableMeta),
	}
	// Phase 1: checkpoint image.
	if raw, err := os.ReadFile(p.manifest()); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("engine: corrupt manifest: %w", err)
		}
		if m.Scheme != int(scheme) {
			return nil, fmt.Errorf("engine: checkpoint scheme %d != requested %d", m.Scheme, scheme)
		}
		for name, meta := range m.Tables {
			if err := d.restoreTable(p, name, meta); err != nil {
				return nil, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// Phase 2: WAL tail.
	if err := wal.Replay(p.wal(), d.apply); err != nil {
		return nil, err
	}
	// Phase 3: open the log for appending.
	log, err := wal.Open(p.wal())
	if err != nil {
		return nil, err
	}
	d.log = log
	return d, nil
}

func (d *DurableDB) restoreTable(p durablePaths, name string, meta *durableMeta) error {
	tb, err := d.db.CreateTable(name, meta.Cols, meta.PKCol)
	if err != nil {
		return err
	}
	rows, err := readRowsFile(p.rows(name), len(meta.Cols))
	if err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := tb.Insert(row); err != nil {
			return fmt.Errorf("engine: restoring %q: %w", name, err)
		}
	}
	for _, def := range meta.Defs {
		if err := applyIndexDef(tb, def); err != nil {
			return err
		}
	}
	d.tables[name] = meta
	return nil
}

func applyIndexDef(tb *Table, def IndexDef) error {
	var err error
	switch def.Kind {
	case "btree":
		_, err = tb.CreateBTreeIndex(def.Col, def.MarkNew)
	case "hermit":
		_, err = tb.CreateHermitIndex(def.Col, def.Host, WithParams(def.Params))
	case "composite-btree":
		_, err = tb.CreateCompositeBTreeIndex(def.ACol, def.Col, def.MarkNew)
	case "composite-hermit":
		_, err = tb.CreateCompositeHermitIndex(def.ACol, def.Col, def.Host, WithParams(def.Params))
	default:
		err = fmt.Errorf("engine: unknown index kind %q", def.Kind)
	}
	return err
}

// apply executes one WAL record against the in-memory state (no logging).
func (d *DurableDB) apply(rec wal.Record) error {
	switch rec.Op {
	case wal.OpCreateTable:
		var ddl ddlTable
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		if _, err := d.db.CreateTable(rec.Table, ddl.Cols, ddl.PKCol); err != nil {
			return err
		}
		d.tables[rec.Table] = &durableMeta{Cols: ddl.Cols, PKCol: ddl.PKCol}
		return nil
	case wal.OpCreateIndex:
		var ddl ddlIndex
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		tb, err := d.db.Table(rec.Table)
		if err != nil {
			return err
		}
		if err := applyIndexDef(tb, ddl.Def); err != nil {
			return err
		}
		d.tables[rec.Table].Defs = append(d.tables[rec.Table].Defs, ddl.Def)
		return nil
	case wal.OpInsert:
		tb, err := d.db.Table(rec.Table)
		if err != nil {
			return err
		}
		row := decodeFloats(rec.Payload)
		_, err = tb.Insert(row)
		return err
	case wal.OpDelete:
		tb, err := d.db.Table(rec.Table)
		if err != nil {
			return err
		}
		vals := decodeFloats(rec.Payload)
		if len(vals) != 1 {
			return fmt.Errorf("engine: malformed delete record")
		}
		_, err = tb.Delete(vals[0])
		return err
	case wal.OpUpdate:
		tb, err := d.db.Table(rec.Table)
		if err != nil {
			return err
		}
		vals := decodeFloats(rec.Payload)
		if len(vals) != 3 {
			return fmt.Errorf("engine: malformed update record")
		}
		return tb.UpdateColumn(vals[0], int(vals[1]), vals[2])
	default:
		return fmt.Errorf("engine: unknown WAL op %d", rec.Op)
	}
}

// CreateTable creates and logs a table.
func (d *DurableDB) CreateTable(name string, cols []string, pkCol int) (*Table, error) {
	tb, err := d.db.CreateTable(name, cols, pkCol)
	if err != nil {
		return nil, err
	}
	d.tables[name] = &durableMeta{Cols: cols, PKCol: pkCol}
	payload, err := json.Marshal(ddlTable{Cols: cols, PKCol: pkCol})
	if err != nil {
		return nil, err
	}
	if err := d.log.Append(wal.Record{Op: wal.OpCreateTable, Table: name, Payload: payload}); err != nil {
		return nil, err
	}
	return tb, nil
}

// Table returns the named table for querying. Mutations must go through
// the durable methods below to be logged.
func (d *DurableDB) Table(name string) (*Table, error) { return d.db.Table(name) }

// CreateIndex creates and logs an index per def.
func (d *DurableDB) CreateIndex(table string, def IndexDef) error {
	tb, err := d.db.Table(table)
	if err != nil {
		return err
	}
	if err := applyIndexDef(tb, def); err != nil {
		return err
	}
	d.tables[table].Defs = append(d.tables[table].Defs, def)
	payload, err := json.Marshal(ddlIndex{Def: def})
	if err != nil {
		return err
	}
	return d.log.Append(wal.Record{Op: wal.OpCreateIndex, Table: table, Payload: payload})
}

// Insert logs and applies a row insert.
func (d *DurableDB) Insert(table string, row []float64) (storage.RID, error) {
	tb, err := d.db.Table(table)
	if err != nil {
		return 0, err
	}
	if err := d.log.Append(wal.Record{Op: wal.OpInsert, Table: table, Payload: encodeFloats(row)}); err != nil {
		return 0, err
	}
	return tb.Insert(row)
}

// Delete logs and applies a delete by primary key.
func (d *DurableDB) Delete(table string, pk float64) (bool, error) {
	tb, err := d.db.Table(table)
	if err != nil {
		return false, err
	}
	if err := d.log.Append(wal.Record{Op: wal.OpDelete, Table: table, Payload: encodeFloats([]float64{pk})}); err != nil {
		return false, err
	}
	return tb.Delete(pk)
}

// UpdateColumn logs and applies a single-column update.
func (d *DurableDB) UpdateColumn(table string, pk float64, col int, v float64) error {
	tb, err := d.db.Table(table)
	if err != nil {
		return err
	}
	rec := wal.Record{
		Op:      wal.OpUpdate,
		Table:   table,
		Payload: encodeFloats([]float64{pk, float64(col), v}),
	}
	if err := d.log.Append(rec); err != nil {
		return err
	}
	return tb.UpdateColumn(pk, col, v)
}

// Sync flushes the WAL to stable storage (group-commit boundary).
func (d *DurableDB) Sync() error { return d.log.Sync() }

// Checkpoint persists a full image (manifest + per-table row files) and
// truncates the WAL.
func (d *DurableDB) Checkpoint() error {
	p := durablePaths{d.dir}
	for name := range d.tables {
		tb, err := d.db.Table(name)
		if err != nil {
			return err
		}
		if err := writeRowsFile(p.rows(name), tb.Store()); err != nil {
			return err
		}
	}
	m := manifest{Scheme: int(d.db.Scheme()), Tables: d.tables}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := p.manifest() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, p.manifest()); err != nil {
		return err
	}
	if err := d.log.Sync(); err != nil {
		return err
	}
	return d.log.Truncate()
}

// Close syncs and closes the WAL. The checkpoint files stay on disk.
func (d *DurableDB) Close() error {
	if err := d.log.Sync(); err != nil {
		d.log.Close()
		return err
	}
	return d.log.Close()
}

func encodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func decodeFloats(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

// writeRowsFile dumps live rows: u32 width, u64 count, then raw rows.
func writeRowsFile(path string, st *storage.Table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(st.Width()))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(st.Len()))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var werr error
	st.Scan(func(_ storage.RID, row []float64) bool {
		if _, err := f.Write(encodeFloats(row)); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		f.Close()
		return werr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readRowsFile loads a row dump written by writeRowsFile.
func readRowsFile(path string, width int) ([][]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // empty table at checkpoint time
		}
		return nil, err
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("engine: truncated rows file %q", path)
	}
	w := int(binary.LittleEndian.Uint32(raw[0:4]))
	count := int(binary.LittleEndian.Uint64(raw[4:12]))
	if w != width {
		return nil, fmt.Errorf("engine: rows file width %d != schema %d", w, width)
	}
	need := 12 + count*w*8
	if len(raw) < need {
		return nil, fmt.Errorf("engine: rows file %q shorter than declared", path)
	}
	rows := make([][]float64, count)
	off := 12
	for i := range rows {
		rows[i] = decodeFloats(raw[off : off+w*8])
		off += w * 8
	}
	return rows, nil
}
