package engine

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hermit/internal/block"
	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
	"hermit/internal/wal"
)

// DurableDB wraps the in-memory engine with the persistence scheme §6
// sketches for main-memory RDBMSs: write-ahead logging plus checkpointing
// — here in tiered block form, so checkpoint cost tracks the write rate,
// not the table size.
//
// Concurrency contract: DurableDB is safe for concurrent use. Mutations
// (Insert/Delete/UpdateColumn and the batched ExecuteBatch) coordinate
// through a reader/writer latch plus a per-primary-key stripe, so writers
// on different keys proceed in parallel; DDL quiesces them, and Checkpoint
// holds the latch only for a short swap window while the block image is
// written unlatched. The WAL itself serialises frames through a single
// appender goroutine with group commit. Queries may use the *Table
// returned by Table directly — but mutations through that handle bypass
// both the log and the durable layer's coordination, so they must go
// through the DurableDB methods.
//
// Durability protocol: every mutation is applied to the engine (which
// validates it) and then appended to the WAL under its key's stripe, so a
// rejected operation — e.g. a duplicate primary key — never poisons the
// log, and per-key apply order equals log order. The call returns when the
// record is acknowledged under the configured sync policy (no-sync /
// group-commit / sync-every-op); an acknowledged synced write is never
// lost by a crash.
//
// Checkpoint is incremental: it harvests only the versions committed
// since the last flush cut (Table.DeltaVersions) into one immutable,
// sorted block file per changed physical table, then atomically publishes
// a new epoch — a blocklist manifest naming every live block plus the
// (WAL segment, offset) pair replay resumes from — by renaming
// manifest.json. A crash anywhere leaves either the old manifest (old
// blocks + old replay window, nothing lost) or the new one (new blocks +
// the tail past the new cut), never a double apply. A background
// compactor merges same-level block runs (size-tiered), dropping
// superseded entries and bottom-level tombstones, and runs the MVCC
// version-GC pass — both off the checkpoint critical path. The WAL
// segment rotates only when it exceeds DurableOptions.WALRotateBytes;
// rotation quiesces mutations for the whole flush (still only a delta)
// so no acknowledged record can land in a segment the manifest no longer
// replays.
//
// OpenDurableOptions recovers by replaying the manifest's blocklist —
// oldest block to newest, later entries winning per key — truncating the
// current WAL segment to its last valid frame, and replaying the tail.
// Records whose replay fails are counted and skipped — surfaced through
// RecoverySkipped — rather than permanently aborting recovery. Indexes,
// including Hermit's TRS-Trees, are rebuilt from their recorded
// definitions, the cheap option the paper's construction numbers (§7.5)
// justify. Manifests of earlier layouts (one rows file per table) are
// rejected loudly, matching the v3→v4 precedent.
type DurableDB struct {
	db   *DB
	dir  string
	opts DurableOptions

	// mu is the durable layer's latch: mutations hold it shared (plus a
	// rows stripe); DDL and the checkpoint swap window hold it
	// exclusively. It protects tables (map and Defs slices), the log
	// pointer, and the published storage state (epoch, lists, handles,
	// manifestTables, pubWAL*).
	mu      sync.RWMutex
	log     *wal.Log
	epoch   uint64
	walSeg  uint64
	tables  map[string]*durableMeta
	rows    stripedLock
	orphans []*wal.Log // pre-rotation logs left open by a simulated crash

	// walBase is the global LSN the current segment continues from (the
	// last LSN of the previous segment; 0 for the first segment ever).
	// It keeps LSNs strictly increasing across rotations — the coordinate
	// system replication subscriptions live in. Guarded by mu.
	walBase uint64
	// walWatchers holds every channel registered through WatchWAL; a
	// rotation re-registers them on the successor segment's log so a
	// tailer's wakeup source survives the swap. Guarded by mu.
	walWatchers []chan struct{}

	// ckptMu serialises the flush/compaction pipeline: Checkpoint,
	// Compact and Close. It is always acquired before mu.
	ckptMu sync.Mutex

	// lists is the published blocklist per physical table (the blocks the
	// current manifest epoch names, oldest first); handles caches an open
	// block.Handle per live block ID so repeated cold reads reuse loaded
	// fences, blooms and entries.
	lists   map[string][]block.Desc
	handles map[uint64]*block.Handle

	// manifestTables, pubWALSeg and pubWALStart are the catalog and replay
	// coordinates of the last published manifest. Compaction republishes
	// exactly these (never the live d.tables), so a manifest rewritten for
	// a block merge cannot shift the replay window past DDL or mutations
	// that only the WAL tail records.
	manifestTables map[string]*durableMeta
	pubWALSeg      uint64
	pubWALStart    int64

	// lastFlushTS is the commit timestamp of the last flush cut. Version
	// GC (which runs during compaction) caps its horizon here so it can
	// never reclaim a chain whose death no block has recorded yet.
	lastFlushTS uint64

	// blockSeq issues block file IDs, monotonic per database directory.
	blockSeq atomic.Uint64

	// Storage counters (see StorageStats).
	flushes        atomic.Int64
	compactions    atomic.Int64
	flushedBytes   atomic.Int64
	compactedBytes atomic.Int64

	// compactErrs counts failed compaction rounds; compactErr holds the
	// most recent failure (cleared by the next successful round). The
	// background compactor stops merging on error, so without these a
	// stalled compactor is indistinguishable from an idle one.
	compactErrs  atomic.Int64
	compactErrMu sync.Mutex
	compactErr   error

	// compactKick wakes the background compactor; compactStop/compactDone
	// manage its shutdown.
	compactKick chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
	stopOnce    sync.Once

	// txnSeq issues transaction ids for the WAL's txn-begin/commit
	// framing; seeded past the largest id seen during recovery.
	txnSeq atomic.Uint64

	skipped     int
	lastSkipErr error
	uncommitted int // transactions whose commit record never hit the log

	// recPending holds the mutation records of transactions whose commit
	// record never reached the log, keyed by txn id — the uncommitted
	// tails recovery rolled back. A replication follower seeds its apply
	// buffers from this: the frames are already in its WAL, so the leader
	// resumes past them and only the commit decision is still owed.
	recPending map[uint64][]wal.Record

	// failpoint, when non-nil, is invoked at every step boundary of
	// Checkpoint and Compact with a step label; a returned error simulates
	// a crash at that boundary (the operation aborts with the on-disk
	// state exactly as a process kill would leave it). Test hook only.
	failpoint func(step string) error
}

// SyncPolicy selects when a durable mutation is acknowledged.
type SyncPolicy = wal.Policy

// Sync policies, re-exported from the wal package.
const (
	// SyncNever acknowledges after the OS write (fast; survives process
	// crashes, not power loss). The default.
	SyncNever = wal.SyncNever
	// SyncGroup batches fsyncs across concurrent writers (group commit).
	SyncGroup = wal.SyncGroup
	// SyncAlways fsyncs before acknowledging each mutation.
	SyncAlways = wal.SyncAlways
)

// Default storage tuning (see DurableOptions).
const (
	// DefaultCompactFanIn is the same-level run length that triggers a
	// block merge.
	DefaultCompactFanIn = 4
	// DefaultWALRotateBytes is the segment size beyond which a checkpoint
	// rotates to a fresh WAL segment.
	DefaultWALRotateBytes = 4 << 20
)

// DurableOptions configures the durability/latency trade-off and the
// block-storage tuning.
type DurableOptions struct {
	// Policy is the WAL sync policy (default SyncNever).
	Policy SyncPolicy
	// GroupInterval is the group-commit interval for SyncGroup
	// (wal.DefaultGroupInterval when zero).
	GroupInterval time.Duration
	// CompactFanIn is the number of contiguous same-level blocks that
	// triggers a merge (DefaultCompactFanIn when zero; minimum 2).
	CompactFanIn int
	// WALRotateBytes is the WAL segment size at which a checkpoint
	// rotates to a fresh segment — rotation quiesces mutations for the
	// whole flush, so it is kept rare (DefaultWALRotateBytes when zero;
	// negative disables rotation).
	WALRotateBytes int64
	// DisableAutoCompact turns off the background compactor goroutine;
	// compaction then runs only through explicit Compact calls. Used by
	// deterministic tests.
	DisableAutoCompact bool
	// ReplRetainWALSegments is how many pre-rotation WAL segments to keep
	// on disk for replication catch-up (0 — the default — deletes them at
	// the first GC after rotation, the historical behaviour). A leader
	// sets this so a briefly-disconnected follower can resume from its
	// LSN by tailing retained segments; a follower further behind than
	// the oldest retained segment falls back to snapshot bootstrap, which
	// is what bounds disk growth under an arbitrarily slow subscriber.
	ReplRetainWALSegments int
}

func (o DurableOptions) walOptions() wal.Options {
	return wal.Options{Policy: o.Policy, GroupInterval: o.GroupInterval}
}

func (o DurableOptions) fanIn() int {
	switch {
	case o.CompactFanIn == 0:
		return DefaultCompactFanIn
	case o.CompactFanIn < 2:
		return 2
	}
	return o.CompactFanIn
}

func (o DurableOptions) rotateBytes() int64 {
	if o.WALRotateBytes == 0 {
		return DefaultWALRotateBytes
	}
	return o.WALRotateBytes
}

type durableMeta struct {
	Cols  []string   `json:"cols"`
	PKCol int        `json:"pk"`
	Defs  []IndexDef `json:"defs"`
	// Partitions is the hash-partition count of a partitioned table (0 for
	// a plain table). A partitioned logical table is backed by engine
	// tables PartitionName(name, 0..Partitions-1); mutations route by
	// PartitionOf and every WAL record carries its partition id, so replay
	// and checkpoints rebuild each partition exactly.
	Partitions int `json:"parts,omitempty"`
}

// copyMeta deep-copies one table's metadata (the slices a concurrent DDL
// could grow while an unlatched flush is marshalling the manifest).
func copyMeta(m *durableMeta) *durableMeta {
	cp := *m
	cp.Cols = append([]string(nil), m.Cols...)
	cp.Defs = append([]IndexDef(nil), m.Defs...)
	return &cp
}

func copyTables(src map[string]*durableMeta) map[string]*durableMeta {
	out := make(map[string]*durableMeta, len(src))
	for name, m := range src {
		out[name] = copyMeta(m)
	}
	return out
}

// IndexDef records how to rebuild one index during recovery.
type IndexDef struct {
	Kind    string         `json:"kind"` // "btree" | "hermit" | "composite-btree" | "composite-hermit"
	Col     int            `json:"col"`
	Host    int            `json:"host,omitempty"`
	ACol    int            `json:"acol,omitempty"`
	MarkNew bool           `json:"new,omitempty"`
	Params  trstree.Params `json:"params,omitempty"`
}

// manifestVersion identifies the on-disk layout. Version 3 added
// hash-partitioned tables; version 4 moved the WAL to frame format v4
// (txn framing). Version 5 replaced the one-rows-file-per-table
// checkpoint image with tiered block storage: the manifest names a
// blocklist file (epoch-stamped, listing every live block per physical
// table) and records the WAL segment number separately from the epoch,
// because incremental checkpoints share a segment and only rotation
// opens a new one. Older manifests are rejected loudly.
const manifestVersion = 5

// manifest is the durably-published checkpoint descriptor. Epoch names
// the blocklist file; WALSeg/WALStart are the segment and byte offset
// replay resumes from. The triple makes recovery idempotent: the blocks
// reproduce exactly the rows live at the flush cut and the tail replays
// only records committed after it.
type manifest struct {
	Version  int    `json:"version"`
	Scheme   int    `json:"scheme"`
	Epoch    uint64 `json:"epoch"`
	WALSeg   uint64 `json:"wal_seg"`
	WALStart int64  `json:"wal_start"`
	// WALBase is the global LSN the manifest's segment continues from
	// (the previous segment's last LSN). Additive in v5: older manifests
	// decode it as 0, which reproduces the historical per-segment
	// numbering exactly.
	WALBase uint64                  `json:"wal_base_lsn,omitempty"`
	Tables  map[string]*durableMeta `json:"tables"`
}

type ddlTable struct {
	Cols  []string `json:"cols"`
	PKCol int      `json:"pk"`
	Parts int      `json:"parts,omitempty"`
}

type ddlIndex struct {
	Def IndexDef `json:"def"`
}

type ddlDropIndex struct {
	Col  int    `json:"col"`
	Kind string `json:"kind"` // "btree" | "hermit" | "cm"
}

type durablePaths struct{ dir string }

func (f durablePaths) String() string   { return f.dir }
func (f durablePaths) manifest() string { return filepath.Join(f.dir, "manifest.json") }
func (f durablePaths) wal(seg uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("wal.%08d.log", seg))
}
func (f durablePaths) blocklist(epoch uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("blocklist.%08d", epoch))
}
func (f durablePaths) block(id uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("block.%016x.blk", id))
}

// OpenDurable opens (or creates) a durable database in dir with default
// options: it loads the last checkpoint if present, repairs and replays
// the WAL tail, and opens the log for appending.
func OpenDurable(dir string, scheme hermit.PointerScheme) (*DurableDB, error) {
	return OpenDurableOptions(dir, scheme, DurableOptions{})
}

// OpenDurableOptions opens the durable database stored in dir with the
// given options.
func OpenDurableOptions(dir string, scheme hermit.PointerScheme, opts DurableOptions) (*DurableDB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := durablePaths{dir}
	// A pre-epoch database stored its WAL at a fixed path; opening it as
	// epoch 0 would silently ignore every record in it.
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); err == nil {
		return nil, fmt.Errorf("engine: %s holds a pre-epoch WAL (wal.log); migrate it before opening", dir)
	}
	d := &DurableDB{
		db:             NewDB(scheme),
		dir:            dir,
		opts:           opts,
		tables:         make(map[string]*durableMeta),
		lists:          make(map[string][]block.Desc),
		handles:        make(map[uint64]*block.Handle),
		manifestTables: make(map[string]*durableMeta),
		compactKick:    make(chan struct{}, 1),
		compactStop:    make(chan struct{}),
		compactDone:    make(chan struct{}),
	}
	// Phase 1: the checkpoint image — blocklist replay per table.
	if raw, err := os.ReadFile(p.manifest()); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("engine: corrupt manifest: %w", err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("engine: checkpoint manifest version %d, want %d (older layouts must be migrated or discarded)", m.Version, manifestVersion)
		}
		if m.Scheme != int(scheme) {
			return nil, fmt.Errorf("engine: checkpoint scheme %d != requested %d", m.Scheme, scheme)
		}
		d.epoch = m.Epoch
		d.walSeg = m.WALSeg
		d.walBase = m.WALBase
		d.pubWALSeg = m.WALSeg
		d.pubWALStart = m.WALStart
		rawList, err := os.ReadFile(p.blocklist(m.Epoch))
		if err != nil {
			return nil, fmt.Errorf("engine: blocklist named by manifest: %w", err)
		}
		lists, err := block.DecodeBlocklist(rawList)
		if err != nil {
			return nil, fmt.Errorf("engine: blocklist %s: %w", p.blocklist(m.Epoch), err)
		}
		for _, l := range lists {
			d.lists[l.Table] = l.Blocks
			for _, desc := range l.Blocks {
				d.handles[desc.ID] = block.NewHandle(p.block(desc.ID), desc)
				if desc.ID > d.blockSeq.Load() {
					d.blockSeq.Store(desc.ID)
				}
			}
		}
		names := make([]string, 0, len(m.Tables))
		for name := range m.Tables {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := d.restoreTable(p, name, m.Tables[name]); err != nil {
				return nil, err
			}
		}
		d.manifestTables = copyTables(d.tables)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// Crash leftovers may hold block IDs above anything the manifest
	// references; seed the allocator past them so a new block can never
	// collide with a stray file.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if id, ok := parseBlockID(e.Name()); ok && id > d.blockSeq.Load() {
				d.blockSeq.Store(id)
			}
		}
	}
	// The flush cut: everything restored from blocks is flushed as of this
	// clock position; everything the WAL tail replays (below) commits
	// after it and lands in the next delta, and version GC never reaches
	// past it.
	d.lastFlushTS = d.db.clock.Now()
	// Phase 2: replay the WAL tail. Replay stops at the first torn or
	// corrupt frame on its own; a record that fails to apply is counted
	// and skipped, never aborting recovery. Records carrying a transaction
	// id buffer until their commit record arrives — a transaction whose
	// OpTxnCommit never reached the log is an uncommitted tail and rolls
	// back (its buffered mutations are simply dropped).
	walPath := p.wal(d.walSeg)
	pending := make(map[uint64][]wal.Record)
	var maxTxn uint64
	applyCounted := func(rec wal.Record) {
		if aerr := d.apply(rec); aerr != nil {
			d.skipped++
			d.lastSkipErr = aerr
		}
	}
	err := wal.ReplayFrom(walPath, d.pubWALStart, func(rec wal.Record) error {
		if rec.Txn > maxTxn {
			maxTxn = rec.Txn
		}
		switch {
		case rec.Op == wal.OpTxnBegin:
			pending[rec.Txn] = nil
		case rec.Op == wal.OpTxnCommit:
			recs, ok := pending[rec.Txn]
			if !ok {
				d.skipped++
				d.lastSkipErr = fmt.Errorf("engine: commit for unknown txn %d", rec.Txn)
				return nil
			}
			for _, r := range recs {
				applyCounted(r)
			}
			delete(pending, rec.Txn)
		case rec.Txn != 0:
			// Buffered records outlive the callback (until their commit
			// arrives, possibly forever via d.recPending), but rec.Payload
			// aliases replay's reused scratch — copy it.
			rec.Payload = append([]byte(nil), rec.Payload...)
			pending[rec.Txn] = append(pending[rec.Txn], rec)
		default:
			applyCounted(rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.uncommitted = len(pending)
	d.recPending = pending
	d.txnSeq.Store(maxTxn)
	// Phase 3: open the log for appending — wal.OpenWith truncates any
	// crash-torn tail, which is what keeps post-recovery appends reachable
	// — clear stale-epoch leftovers, and start the compactor.
	wo := opts.walOptions()
	wo.BaseLSN = d.walBase
	log, err := wal.OpenWith(walPath, wo)
	if err != nil {
		return nil, err
	}
	d.log = log
	d.gcStale()
	if !opts.DisableAutoCompact {
		go d.compactor()
	} else {
		close(d.compactDone)
	}
	return d, nil
}

// parseBlockID extracts the ID from a block filename ("block.<16hex>.blk").
func parseBlockID(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "block.") || !strings.HasSuffix(name, ".blk") {
		return 0, false
	}
	id, err := strconv.ParseUint(name[len("block."):len(name)-len(".blk")], 16, 64)
	return id, err == nil
}

// RecoverySkipped reports how many WAL records failed to apply during the
// last open (with the last such error), e.g. records from a log written by
// a buggy earlier version. Zero on a clean recovery.
func (d *DurableDB) RecoverySkipped() (int, error) { return d.skipped, d.lastSkipErr }

// RecoveryUncommitted reports how many transactions were rolled back
// during the last open because their commit record never reached the log —
// the crash-interrupted tails recovery must discard. These are not
// failures: an unacknowledged commit has made no durability promise.
func (d *DurableDB) RecoveryUncommitted() int { return d.uncommitted }

// Snapshot registers a consistent read snapshot on the database's commit
// clock (see DB.Snapshot).
func (d *DurableDB) Snapshot() *Snapshot { return d.db.Snapshot() }

// Clock returns the commit clock ordering every table in this database.
func (d *DurableDB) Clock() *Clock { return d.db.Clock() }

// GC runs one version-garbage-collection pass (see DB.GC). Compaction
// runs it automatically; this is the manual hook. The horizon is the
// oldest live snapshot, capped at the last flush cut — so GC can never
// erase a change no block has recorded.
func (d *DurableDB) GC() int {
	d.mu.RLock()
	cut := d.lastFlushTS
	d.mu.RUnlock()
	return d.db.GCBelow(cut)
}

// restoreTable rebuilds one logical table from its blocklists: each
// physical table's blocks replay oldest to newest, later entries winning
// per key, tombstones deleting.
func (d *DurableDB) restoreTable(p durablePaths, name string, meta *durableMeta) error {
	for _, phys := range physicalNames(name, meta) {
		tb, err := d.db.CreateTable(phys, meta.Cols, meta.PKCol)
		if err != nil {
			return err
		}
		// Keyed by block.KeyBits, not raw float64: a float64 map could
		// never overwrite or delete a NaN key, so a NaN tombstone would
		// fail to suppress an earlier upsert and the deleted row would
		// resurrect on recovery.
		live := make(map[uint64][]float64)
		for _, desc := range d.lists[phys] {
			entries, width, err := block.ReadAll(p.block(desc.ID))
			if err != nil {
				return fmt.Errorf("engine: restoring %q: %w", phys, err)
			}
			if width != len(meta.Cols) {
				return fmt.Errorf("engine: restoring %q: block %016x width %d != schema %d",
					phys, desc.ID, width, len(meta.Cols))
			}
			if uint64(len(entries)) != desc.Count {
				return fmt.Errorf("engine: restoring %q: block %016x holds %d entries, blocklist says %d",
					phys, desc.ID, len(entries), desc.Count)
			}
			for _, e := range entries {
				if e.Tombstone {
					delete(live, block.KeyBits(e.PK))
				} else {
					live[block.KeyBits(e.PK)] = e.Row
				}
			}
		}
		for _, row := range live {
			if _, err := tb.Insert(row); err != nil {
				return fmt.Errorf("engine: restoring %q: %w", phys, err)
			}
		}
		for _, def := range meta.Defs {
			if err := applyIndexDef(tb, def); err != nil {
				return err
			}
		}
	}
	d.tables[name] = meta
	return nil
}

// physicalNames lists the engine tables backing a logical table: the name
// itself for a plain table, one PartitionName per partition otherwise.
func physicalNames(name string, meta *durableMeta) []string {
	if meta.Partitions <= 0 {
		return []string{name}
	}
	names := make([]string, meta.Partitions)
	for i := range names {
		names[i] = PartitionName(name, i)
	}
	return names
}

func applyIndexDef(tb *Table, def IndexDef) error {
	var err error
	switch def.Kind {
	case "btree":
		_, err = tb.CreateBTreeIndex(def.Col, def.MarkNew)
	case "hermit":
		_, err = tb.CreateHermitIndex(def.Col, def.Host, WithParams(def.Params))
	case "composite-btree":
		_, err = tb.CreateCompositeBTreeIndex(def.ACol, def.Col, def.MarkNew)
	case "composite-hermit":
		_, err = tb.CreateCompositeHermitIndex(def.ACol, def.Col, def.Host, WithParams(def.Params))
	default:
		err = fmt.Errorf("engine: unknown index kind %q", def.Kind)
	}
	return err
}

// apply executes one WAL record against the in-memory state (no logging).
func (d *DurableDB) apply(rec wal.Record) error {
	switch rec.Op {
	case wal.OpCreateTable:
		var ddl ddlTable
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		if _, err := d.db.CreateTable(rec.Table, ddl.Cols, ddl.PKCol); err != nil {
			return err
		}
		d.tables[rec.Table] = &durableMeta{Cols: ddl.Cols, PKCol: ddl.PKCol}
		return nil
	case wal.OpCreatePartitioned:
		var ddl ddlTable
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		if ddl.Parts < 1 {
			return fmt.Errorf("engine: partitioned table %q with %d partitions", rec.Table, ddl.Parts)
		}
		meta := &durableMeta{Cols: ddl.Cols, PKCol: ddl.PKCol, Partitions: ddl.Parts}
		for _, phys := range physicalNames(rec.Table, meta) {
			if _, err := d.db.CreateTable(phys, ddl.Cols, ddl.PKCol); err != nil {
				return err
			}
		}
		d.tables[rec.Table] = meta
		return nil
	case wal.OpCreateIndex:
		var ddl ddlIndex
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		meta := d.tables[rec.Table]
		if meta == nil {
			return fmt.Errorf("%w: %q", ErrNoSuchTable, rec.Table)
		}
		for _, phys := range physicalNames(rec.Table, meta) {
			tb, err := d.db.Table(phys)
			if err != nil {
				return err
			}
			if err := applyIndexDef(tb, ddl.Def); err != nil {
				return err
			}
		}
		meta.Defs = append(meta.Defs, ddl.Def)
		return nil
	case wal.OpDropIndex:
		var ddl ddlDropIndex
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		meta := d.tables[rec.Table]
		if meta == nil {
			return fmt.Errorf("%w: %q", ErrNoSuchTable, rec.Table)
		}
		kind, err := kindFromString(ddl.Kind)
		if err != nil {
			return err
		}
		for _, phys := range physicalNames(rec.Table, meta) {
			tb, err := d.db.Table(phys)
			if err != nil {
				return err
			}
			if err := tb.DropIndex(ddl.Col, kind); err != nil {
				return err
			}
		}
		d.removeDef(rec.Table, ddl.Col, ddl.Kind)
		return nil
	case wal.OpInsert:
		tb, err := d.applyTarget(rec)
		if err != nil {
			return err
		}
		row := decodeFloats(rec.Payload)
		_, err = tb.Insert(row)
		return err
	case wal.OpDelete:
		tb, err := d.applyTarget(rec)
		if err != nil {
			return err
		}
		vals := decodeFloats(rec.Payload)
		if len(vals) != 1 {
			return fmt.Errorf("engine: malformed delete record")
		}
		_, err = tb.Delete(vals[0])
		return err
	case wal.OpUpdate:
		tb, err := d.applyTarget(rec)
		if err != nil {
			return err
		}
		vals := decodeFloats(rec.Payload)
		if len(vals) != 3 {
			return fmt.Errorf("engine: malformed update record")
		}
		return tb.UpdateColumn(vals[0], int(vals[1]), vals[2])
	default:
		return fmt.Errorf("engine: unknown WAL op %d", rec.Op)
	}
}

// applyTarget resolves the engine table a replayed mutation applies to,
// routing by the record's partition id for partitioned tables.
func (d *DurableDB) applyTarget(rec wal.Record) (*Table, error) {
	name := rec.Table
	if meta := d.tables[rec.Table]; meta != nil && meta.Partitions > 0 {
		if int(rec.Part) >= meta.Partitions {
			return nil, fmt.Errorf("engine: record partition %d out of range for %q (%d partitions)",
				rec.Part, rec.Table, meta.Partitions)
		}
		name = PartitionName(rec.Table, int(rec.Part))
	}
	return d.db.Table(name)
}

// CreateTable creates and logs a table. Names containing '#' are rejected:
// the character is reserved for the per-partition tables backing
// CreatePartitionedTable.
func (d *DurableDB) CreateTable(name string, cols []string, pkCol int) (*Table, error) {
	if strings.Contains(name, "#") {
		return nil, fmt.Errorf("engine: table name %q: '#' is reserved for partitions", name)
	}
	d.mu.Lock()
	// Check the durable catalog, not just the engine one: a partitioned
	// logical table exists only as name#i tables in the engine, so the
	// engine-level duplicate check would miss it and the plain table
	// would silently overwrite the partitioned metadata.
	if d.tables[name] != nil {
		d.mu.Unlock()
		return nil, ErrDupTable
	}
	tb, err := d.db.CreateTable(name, cols, pkCol)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	d.tables[name] = &durableMeta{Cols: cols, PKCol: pkCol}
	payload, err := json.Marshal(ddlTable{Cols: cols, PKCol: pkCol})
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpCreateTable, Table: name, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if _, err := tk.Wait(); err != nil {
		return nil, err
	}
	return tb, nil
}

// CreatePartitionedTable creates and logs a hash-partitioned table: parts
// engine tables (each with its own indexes, latches and planner state)
// behind one logical name. Mutations on the logical name route by
// PartitionOf over the primary key and are WAL-logged with their partition
// id; checkpoints flush one block stream per partition and recovery
// rebuilds each partition from its blocklist plus the routed WAL tail.
// Queries scatter-gather through the internal/partition wrapper (see
// partition.OpenDurable), which is also how per-partition handles are
// obtained.
func (d *DurableDB) CreatePartitionedTable(name string, cols []string, pkCol, parts int) error {
	if strings.Contains(name, "#") {
		return fmt.Errorf("engine: table name %q: '#' is reserved for partitions", name)
	}
	if parts < 1 {
		return fmt.Errorf("engine: partitioned table %q needs at least 1 partition, got %d", name, parts)
	}
	d.mu.Lock()
	if d.tables[name] != nil {
		d.mu.Unlock()
		return ErrDupTable
	}
	meta := &durableMeta{Cols: append([]string(nil), cols...), PKCol: pkCol, Partitions: parts}
	for i, phys := range physicalNames(name, meta) {
		if _, err := d.db.CreateTable(phys, cols, pkCol); err != nil {
			// Unwind the partitions already created so a failed create
			// leaves no orphan engine tables.
			for j := 0; j < i; j++ {
				d.db.dropTable(PartitionName(name, j))
			}
			d.mu.Unlock()
			return err
		}
	}
	d.tables[name] = meta
	payload, err := json.Marshal(ddlTable{Cols: cols, PKCol: pkCol, Parts: parts})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpCreatePartitioned, Table: name, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// Partitions reports the partition count of the named logical table: 0 for
// a plain table, >= 1 for one created by CreatePartitionedTable.
func (d *DurableDB) Partitions(name string) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	meta := d.tables[name]
	if meta == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return meta.Partitions, nil
}

// Table returns the named table. Queries through it are safe; mutations
// through it bypass the WAL and the durable layer's latching — use the
// DurableDB mutation methods instead.
func (d *DurableDB) Table(name string) (*Table, error) { return d.db.Table(name) }

// CreateIndex creates and logs an index per def. On a partitioned table
// the definition is applied to every partition (indexes are uniform across
// partitions, so routing never changes which access paths exist); only
// single-column kinds are supported there, because a partial failure is
// unwound with DropIndex and composites are not droppable.
func (d *DurableDB) CreateIndex(table string, def IndexDef) error {
	d.mu.Lock()
	meta := d.tables[table]
	if meta == nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if meta.Partitions > 0 && (def.Kind == "composite-btree" || def.Kind == "composite-hermit") {
		d.mu.Unlock()
		return fmt.Errorf("engine: %s indexes are not supported on partitioned tables", def.Kind)
	}
	names := physicalNames(table, meta)
	for i, phys := range names {
		tb, err := d.db.Table(phys)
		if err == nil {
			err = applyIndexDef(tb, def)
		}
		if err != nil {
			// Unwind the partitions already indexed so state stays uniform.
			if kind, kerr := kindFromString(def.Kind); kerr == nil {
				for j := 0; j < i; j++ {
					if tb, terr := d.db.Table(names[j]); terr == nil {
						tb.DropIndex(def.Col, kind)
					}
				}
			}
			d.mu.Unlock()
			return err
		}
	}
	meta.Defs = append(meta.Defs, def)
	payload, err := json.Marshal(ddlIndex{Def: def})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpCreateIndex, Table: table, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// kindFromString maps an IndexDef kind string to the engine's IndexKind
// vocabulary (single-column kinds only; composites are not droppable).
func kindFromString(s string) (IndexKind, error) {
	switch s {
	case "btree":
		return KindBTree, nil
	case "hermit":
		return KindHermit, nil
	case "cm":
		return KindCM, nil
	default:
		return KindNone, fmt.Errorf("engine: unknown droppable index kind %q", s)
	}
}

// removeDef deletes the first recorded index definition matching (col,
// kind) so post-drop checkpoints no longer rebuild the index.
func (d *DurableDB) removeDef(table string, col int, kind string) {
	meta := d.tables[table]
	if meta == nil {
		return
	}
	for i, def := range meta.Defs {
		if def.Col == col && def.Kind == kind {
			meta.Defs = append(meta.Defs[:i], meta.Defs[i+1:]...)
			return
		}
	}
}

// DropIndex drops and logs the removal of the index of the given kind
// ("btree", "hermit" or "cm") on col: the advisor's durable reclamation
// path. Like all durable DDL it quiesces mutations via the exclusive
// latch, and the drop is WAL-logged so recovery replays it; the index
// also leaves the recorded definitions, so later checkpoints do not
// resurrect it.
func (d *DurableDB) DropIndex(table string, col int, kind string) error {
	d.mu.Lock()
	meta := d.tables[table]
	if meta == nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	k, err := kindFromString(kind)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	for _, phys := range physicalNames(table, meta) {
		tb, err := d.db.Table(phys)
		if err == nil {
			err = tb.DropIndex(col, k)
		}
		if err != nil {
			// DDL is uniform across partitions, so a drop that fails on one
			// partition fails on the first — before any partition changed.
			d.mu.Unlock()
			return err
		}
	}
	d.removeDef(table, col, kind)
	payload, err := json.Marshal(ddlDropIndex{Col: col, Kind: kind})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpDropIndex, Table: table, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// mutate applies one validated mutation and logs it, holding the shared
// latch (vs the checkpoint swap window and DDL) and the primary key's
// stripe (so per-key log order equals apply order). On a partitioned
// table the mutation routes to the primary key's hash partition and the
// WAL record carries the partition id. It returns once the record is
// acknowledged under the sync policy. A failed apply is returned without
// logging — validate-then-log, the fix for WAL poisoning.
func (d *DurableDB) mutate(table string, pk float64, apply func(tb *Table) error, rec func() wal.Record) error {
	d.mu.RLock()
	phys, part := table, uint32(0)
	if meta := d.tables[table]; meta != nil && meta.Partitions > 0 {
		p := PartitionOf(pk, meta.Partitions)
		phys, part = PartitionName(table, p), uint32(p)
	}
	tb, err := d.db.Table(phys)
	if err != nil {
		d.mu.RUnlock()
		return err
	}
	stripe := d.rows.mu(pk)
	stripe.Lock()
	var tk *wal.Ticket
	if err = apply(tb); err == nil {
		r := rec()
		r.Part = part
		if tk, err = d.log.Submit(r); err != nil {
			err = fmt.Errorf("engine: wal submit after apply (in-memory state ahead of log until next checkpoint): %w", err)
		}
	}
	stripe.Unlock()
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	if _, werr := tk.Wait(); werr != nil {
		return fmt.Errorf("engine: wal append after apply (in-memory state ahead of log until next checkpoint): %w", werr)
	}
	return nil
}

// Insert validates+applies a row insert, then logs it.
func (d *DurableDB) Insert(table string, row []float64) (storage.RID, error) {
	var pk float64
	d.mu.RLock()
	if meta := d.tables[table]; meta != nil && meta.PKCol < len(row) {
		pk = row[meta.PKCol]
	}
	d.mu.RUnlock()
	var rid storage.RID
	err := d.mutate(table, pk,
		func(tb *Table) error {
			var aerr error
			rid, aerr = tb.Insert(row)
			return aerr
		},
		func() wal.Record {
			return wal.Record{Op: wal.OpInsert, Table: table, Payload: encodeFloats(row)}
		})
	return rid, err
}

// Delete validates+applies a delete by primary key, then logs it. A delete
// of an absent key is applied but not logged (found=false, no record
// needed for replay).
func (d *DurableDB) Delete(table string, pk float64) (bool, error) {
	var found bool
	err := d.mutate(table, pk,
		func(tb *Table) error {
			var aerr error
			found, aerr = tb.Delete(pk)
			if aerr != nil || !found {
				return errSkipLog{aerr}
			}
			return nil
		},
		func() wal.Record {
			return wal.Record{Op: wal.OpDelete, Table: table, Payload: encodeFloats([]float64{pk})}
		})
	if e, ok := err.(errSkipLog); ok {
		return found, e.err
	}
	return found, err
}

// errSkipLog aborts logging inside mutate while carrying the apply outcome.
type errSkipLog struct{ err error }

func (e errSkipLog) Error() string {
	if e.err == nil {
		return "engine: not logged"
	}
	return e.err.Error()
}

// UpdateColumn validates+applies a single-column update, then logs it.
func (d *DurableDB) UpdateColumn(table string, pk float64, col int, v float64) error {
	return d.mutate(table, pk,
		func(tb *Table) error { return tb.UpdateColumn(pk, col, v) },
		func() wal.Record {
			return wal.Record{
				Op:      wal.OpUpdate,
				Table:   table,
				Payload: encodeFloats([]float64{pk, float64(col), v}),
			}
		})
}

// Sync forces an fsync covering every mutation acknowledged so far — a
// durability barrier regardless of the configured policy. The latch is
// held across the fsync so a concurrent checkpoint cannot rotate (and
// close) the segment out from under the barrier.
func (d *DurableDB) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.log.Sync()
}

// fp triggers the failpoint hook (tests only; no-op otherwise).
func (d *DurableDB) fp(step string) error {
	if d.failpoint != nil {
		return d.failpoint(step)
	}
	return nil
}

// flushCut is everything a checkpoint captures during its swap window:
// the state it needs to build and publish a new epoch without the latch.
type flushCut struct {
	flushTS uint64
	prevTS  uint64
	tables  map[string]*durableMeta
	phys    []physTable
	lists   map[string][]block.Desc
	rotate  bool
	next    uint64
	// walSeg/walStart are the replay coordinates the manifest will record
	// (the current segment at its synced offset, or a fresh segment at 0
	// when rotating).
	walSeg   uint64
	walStart int64
	// walBase is the global LSN the manifest's segment continues from: the
	// current segment's base, or — when rotating — the old segment's last
	// LSN, which the fresh segment numbers onward from.
	walBase uint64
}

type physTable struct {
	name string
	tb   *Table
}

// Checkpoint flushes the delta since the last flush — only versions
// committed after the previous cut — as one sorted block per changed
// physical table, then atomically publishes a new epoch. The protocol,
// with the crash outcome of each window:
//
//  1. Swap window (exclusive latch, short): flush the WAL, capture the
//     cut — flush timestamp, catalog copy, current blocklists, and the
//     replay offset (the synced WAL size). Crash: old manifest, full
//     old-window replay — nothing lost.
//  2. Unlatched write phase: harvest each table's delta (DeltaVersions)
//     and write it as an immutable block (tmp + fsync + rename).
//     Mutations proceed concurrently; they commit after the cut, so they
//     belong to the next delta and to the WAL tail both manifests replay.
//     Crash: the new blocks are unreferenced garbage, GC'd later.
//  3. Write the next epoch's blocklist file naming old + new blocks.
//     Crash: same.
//  4. Write manifest.tmp and rename it over manifest.json, fsyncing file
//     and directory — the commit point. Before the rename recovery uses
//     the old epoch in full; after it, the blocks plus the tail past the
//     new cut. Replay can never start before its image's cut, so recovery
//     never double-applies.
//  5. Re-latch briefly to publish the new epoch in memory, advance the
//     flush cut, delete stale files and kick the compactor.
//
// When the WAL segment has outgrown DurableOptions.WALRotateBytes the
// checkpoint instead rotates: it holds the latch across the whole flush
// (still only a delta) so no acknowledged record can land in the old
// segment after the cut, and the manifest names a fresh, empty segment.
func (d *DurableDB) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.checkpointLocked()
}

func (d *DurableDB) checkpointLocked() error {
	p := durablePaths{d.dir}

	// --- Swap window: capture the cut under the exclusive latch. ---
	d.mu.Lock()
	latched := true
	unlatch := func() {
		if latched {
			d.mu.Unlock()
			latched = false
		}
	}
	defer unlatch()
	if err := d.fp("begin"); err != nil {
		return err
	}
	if err := d.log.Sync(); err != nil {
		return err
	}
	if err := d.fp("after-wal-sync"); err != nil {
		return err
	}
	rb := d.opts.rotateBytes()
	cut := flushCut{
		flushTS:  d.db.clock.Now(),
		prevTS:   d.lastFlushTS,
		tables:   copyTables(d.tables),
		lists:    make(map[string][]block.Desc, len(d.lists)),
		rotate:   rb > 0 && d.log.Size() >= rb,
		next:     d.epoch + 1,
		walSeg:   d.walSeg,
		walStart: d.log.Size(),
		walBase:  d.walBase,
	}
	if cut.rotate {
		// The latch is held across the whole rotating flush, so the old
		// segment's last LSN is final here — the fresh segment continues
		// the global sequence from it.
		cut.walBase = d.log.LastLSN()
	}
	for phys, descs := range d.lists {
		cut.lists[phys] = descs
	}
	names := make([]string, 0, len(cut.tables))
	for name := range cut.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, phys := range physicalNames(name, cut.tables[name]) {
			tb, err := d.db.Table(phys)
			if err != nil {
				return err
			}
			cut.phys = append(cut.phys, physTable{phys, tb})
		}
	}
	// An incremental (non-rotating) checkpoint releases the latch here:
	// the delta is frozen by the cut timestamps, not by quiescence, so
	// mutations and the block writes proceed in parallel. Rotation keeps
	// the latch — the manifest will abandon the current segment, so
	// nothing may append to it past the cut.
	if !cut.rotate {
		unlatch()
		if err := d.fp("after-swap"); err != nil {
			return err
		}
	}

	// --- Write phase: delta blocks, blocklist, manifest. ---
	newLog, newLists, flushed, err := d.writeEpoch(p, &cut)
	if err != nil {
		return err
	}

	// --- Publish: commit point passed, swap the in-memory state. ---
	if !latched {
		d.mu.Lock()
		latched = true
	}
	d.epoch = cut.next
	d.setLists(p, newLists)
	d.manifestTables = cut.tables
	d.pubWALSeg = cut.walSeg
	d.pubWALStart = cut.walStart
	var oldLog *wal.Log
	var rotatedWatchers []chan struct{}
	if cut.rotate {
		oldLog, d.log = d.log, newLog
		d.walSeg = cut.next
		d.walBase = cut.walBase
		// Re-home registered tailer wakeups onto the successor segment and
		// remember them for a post-swap nudge, so a tailer parked at the old
		// segment's EOF notices the rotation.
		rotatedWatchers = append(rotatedWatchers, d.walWatchers...)
		for _, ch := range rotatedWatchers {
			newLog.Watch(ch)
		}
	}
	d.lastFlushTS = cut.flushTS
	unlatch()
	for _, ch := range rotatedWatchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	d.flushes.Add(1)
	d.flushedBytes.Add(flushed)
	if err := d.fp("after-manifest-rename"); err != nil {
		if oldLog != nil {
			d.mu.Lock()
			d.orphans = append(d.orphans, oldLog) // closed by Close; simulated crash
			d.mu.Unlock()
		}
		return err
	}
	if oldLog != nil {
		if err := oldLog.Close(); err != nil {
			return fmt.Errorf("engine: closing rotated wal: %w", err)
		}
	}
	d.gcStale()
	d.kickCompactor()
	return d.fp("after-gc")
}

// writeEpoch writes the cut's delta blocks, blocklist and manifest, and
// returns the new segment's log (rotation only), the new blocklists, and
// the flushed byte count. On error nothing has been published: any files
// already written are unreferenced and will be garbage-collected.
func (d *DurableDB) writeEpoch(p durablePaths, cut *flushCut) (newLog *wal.Log, newLists map[string][]block.Desc, flushed int64, err error) {
	defer func() {
		if err != nil && newLog != nil {
			newLog.Close()
		}
	}()
	newLists = make(map[string][]block.Desc, len(cut.lists))
	for phys, descs := range cut.lists {
		newLists[phys] = descs
	}
	for _, pt := range cut.phys {
		entries := pt.tb.DeltaVersions(cut.prevTS, cut.flushTS)
		if len(entries) == 0 {
			continue // unchanged since the last flush: no block
		}
		id := d.blockSeq.Add(1)
		desc, werr := block.Write(p.block(id), pt.tb.Store().Width(), 0, entries)
		if werr != nil {
			return newLog, nil, 0, werr
		}
		desc.ID = id
		newLists[pt.name] = append(append([]block.Desc(nil), newLists[pt.name]...), desc)
		flushed += desc.Bytes
		if ferr := d.fp("after-block:" + pt.name); ferr != nil {
			return newLog, nil, 0, ferr
		}
	}
	if cut.rotate {
		wo := d.opts.walOptions()
		wo.BaseLSN = cut.walBase
		var werr error
		newLog, werr = wal.OpenWith(p.wal(cut.next), wo)
		if werr != nil {
			return newLog, nil, 0, werr
		}
		cut.walSeg, cut.walStart = cut.next, 0
		if ferr := d.fp("after-new-wal"); ferr != nil {
			return newLog, nil, 0, ferr
		}
	}
	rawList, werr := block.EncodeBlocklist(listsFor(newLists, cut.tables))
	if werr != nil {
		return newLog, nil, 0, werr
	}
	if werr := writeFileSync(p.blocklist(cut.next), rawList); werr != nil {
		return newLog, nil, 0, werr
	}
	// Make the block renames, the blocklist and (on rotation) the new
	// segment durable before the manifest can name them: without this
	// ordering, a power loss right after the manifest rename could
	// publish an epoch whose files the directory lost.
	syncDir(d.dir)
	if ferr := d.fp("after-blocklist"); ferr != nil {
		return newLog, nil, 0, ferr
	}
	m := manifest{
		Version:  manifestVersion,
		Scheme:   int(d.db.Scheme()),
		Epoch:    cut.next,
		WALSeg:   cut.walSeg,
		WALStart: cut.walStart,
		WALBase:  cut.walBase,
		Tables:   cut.tables,
	}
	raw, werr := json.MarshalIndent(m, "", "  ")
	if werr != nil {
		return newLog, nil, 0, werr
	}
	tmp := p.manifest() + ".tmp"
	if werr := writeFileSync(tmp, raw); werr != nil {
		return newLog, nil, 0, werr
	}
	if ferr := d.fp("after-manifest-tmp"); ferr != nil {
		return newLog, nil, 0, ferr
	}
	if werr := os.Rename(tmp, p.manifest()); werr != nil {
		return newLog, nil, 0, werr
	}
	syncDir(d.dir)
	return newLog, newLists, flushed, nil
}

// listsFor shapes the per-phys blocklist map for encoding: one List per
// physical table that has blocks, sorted by name for determinism. Only
// tables present in the catalog are included, so a block list cannot
// outlive its table.
func listsFor(lists map[string][]block.Desc, tables map[string]*durableMeta) []block.List {
	known := make(map[string]bool)
	for name, meta := range tables {
		for _, phys := range physicalNames(name, meta) {
			known[phys] = true
		}
	}
	out := make([]block.List, 0, len(lists))
	for phys, descs := range lists {
		if len(descs) > 0 && known[phys] {
			out = append(out, block.List{Table: phys, Blocks: descs})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// setLists publishes new blocklists and refreshes the handle cache,
// reusing open handles for surviving blocks. Caller holds d.mu.
func (d *DurableDB) setLists(p durablePaths, newLists map[string][]block.Desc) {
	d.lists = newLists
	fresh := make(map[uint64]*block.Handle)
	for _, descs := range newLists {
		for _, desc := range descs {
			if h, ok := d.handles[desc.ID]; ok {
				fresh[desc.ID] = h
			} else {
				fresh[desc.ID] = block.NewHandle(p.block(desc.ID), desc)
			}
		}
	}
	d.handles = fresh
}

// Compact runs one compaction round: it merges the first contiguous run
// of CompactFanIn same-level blocks found in any table's blocklist into
// one block at the next level (dropping superseded entries, and
// tombstones when the run starts at the bottom of the list), publishes
// the result as a new epoch — reusing the last published catalog and
// replay coordinates verbatim, so the WAL tail is untouched — and then
// runs a version-GC pass. It reports whether a merge happened; the GC
// pass runs either way (GC rides compaction, not checkpoints). The
// background compactor calls this in a loop; it is also the manual hook
// for deterministic tests.
func (d *DurableDB) Compact() (bool, error) {
	merged, err := d.compact()
	d.compactErrMu.Lock()
	d.compactErr = err
	d.compactErrMu.Unlock()
	if err != nil {
		d.compactErrs.Add(1)
	}
	return merged, err
}

func (d *DurableDB) compact() (bool, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	merged, err := d.compactOnce()
	if err != nil {
		return merged, err
	}
	d.mu.RLock()
	cut := d.lastFlushTS
	d.mu.RUnlock()
	d.db.GCBelow(cut)
	return merged, d.fp("compact-after-gc")
}

// compactOnce performs at most one merge. Caller holds ckptMu.
func (d *DurableDB) compactOnce() (bool, error) {
	p := durablePaths{d.dir}
	d.mu.RLock()
	lists := make(map[string][]block.Desc, len(d.lists))
	for phys, descs := range d.lists {
		lists[phys] = descs
	}
	next := d.epoch + 1
	tables := d.manifestTables
	walSeg, walStart := d.pubWALSeg, d.pubWALStart
	walBase := d.walBase
	d.mu.RUnlock()

	phys, start, n := pickRun(lists, d.opts.fanIn())
	if n == 0 {
		return false, nil
	}
	if err := d.fp("compact-begin"); err != nil {
		return false, err
	}
	run := lists[phys][start : start+n]
	merged, width, err := mergeBlocks(p, run, start == 0)
	if err != nil {
		return false, err
	}
	var replacement []block.Desc
	var mergedBytes int64
	if len(merged) > 0 {
		id := d.blockSeq.Add(1)
		desc, err := block.Write(p.block(id), width, maxLevel(run)+1, merged)
		if err != nil {
			return false, err
		}
		desc.ID = id
		replacement = []block.Desc{desc}
		mergedBytes = desc.Bytes
	}
	if err := d.fp("compact-after-block"); err != nil {
		return false, err
	}
	newLists := make(map[string][]block.Desc, len(lists))
	for ph, descs := range lists {
		newLists[ph] = descs
	}
	spliced := make([]block.Desc, 0, len(lists[phys])-n+len(replacement))
	spliced = append(spliced, lists[phys][:start]...)
	spliced = append(spliced, replacement...)
	spliced = append(spliced, lists[phys][start+n:]...)
	if len(spliced) == 0 {
		delete(newLists, phys)
	} else {
		newLists[phys] = spliced
	}

	rawList, err := block.EncodeBlocklist(listsFor(newLists, tables))
	if err != nil {
		return false, err
	}
	if err := writeFileSync(p.blocklist(next), rawList); err != nil {
		return false, err
	}
	syncDir(d.dir)
	if err := d.fp("compact-after-blocklist"); err != nil {
		return false, err
	}
	// The manifest republishes the last published catalog and replay
	// coordinates verbatim: compaction changes how the flushed state is
	// stored, never what it is or where the tail begins.
	m := manifest{
		Version:  manifestVersion,
		Scheme:   int(d.db.Scheme()),
		Epoch:    next,
		WALSeg:   walSeg,
		WALStart: walStart,
		WALBase:  walBase,
		Tables:   tables,
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return false, err
	}
	tmp := p.manifest() + ".tmp"
	if err := writeFileSync(tmp, raw); err != nil {
		return false, err
	}
	if err := d.fp("compact-after-manifest-tmp"); err != nil {
		return false, err
	}
	if err := os.Rename(tmp, p.manifest()); err != nil {
		return false, err
	}
	syncDir(d.dir)

	d.mu.Lock()
	d.epoch = next
	d.setLists(p, newLists)
	d.mu.Unlock()
	d.compactions.Add(1)
	d.compactedBytes.Add(mergedBytes)
	if err := d.fp("compact-after-manifest-rename"); err != nil {
		return true, err
	}
	d.gcStale()
	return true, nil
}

// pickRun finds the first contiguous run of fanIn blocks at one level in
// any table's blocklist (tables scanned in sorted order for determinism).
func pickRun(lists map[string][]block.Desc, fanIn int) (phys string, start, n int) {
	names := make([]string, 0, len(lists))
	for name := range lists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		descs := lists[name]
		i := 0
		for i < len(descs) {
			j := i + 1
			for j < len(descs) && descs[j].Level == descs[i].Level {
				j++
			}
			if j-i >= fanIn {
				return name, i, j - i
			}
			i = j
		}
	}
	return "", 0, 0
}

func maxLevel(run []block.Desc) uint32 {
	var lvl uint32
	for _, d := range run {
		if d.Level > lvl {
			lvl = d.Level
		}
	}
	return lvl
}

// mergeBlocks merges a run oldest-to-newest, later entries winning per
// key. Tombstones are dropped when the run is at the bottom of the
// blocklist (nothing older exists for them to shadow); otherwise they are
// preserved so older blocks stay masked.
func mergeBlocks(p durablePaths, run []block.Desc, bottom bool) ([]block.Entry, int, error) {
	width := 0
	// Keyed by block.KeyBits (the same identity block.Encode sorts and
	// dedupes under): a float64-keyed map would keep every NaN entry of
	// the run as a distinct key, and the merged block would carry
	// duplicates Encode rejects — wedging compaction permanently.
	live := make(map[uint64]block.Entry)
	for _, desc := range run {
		entries, w, err := block.ReadAll(p.block(desc.ID))
		if err != nil {
			return nil, 0, fmt.Errorf("engine: compacting block %016x: %w", desc.ID, err)
		}
		if width == 0 {
			width = w
		} else if w != width {
			return nil, 0, fmt.Errorf("engine: compacting block %016x: width %d != run width %d", desc.ID, w, width)
		}
		for _, e := range entries {
			live[block.KeyBits(e.PK)] = e
		}
	}
	merged := make([]block.Entry, 0, len(live))
	for _, e := range live {
		if e.Tombstone && bottom {
			continue
		}
		merged = append(merged, e)
	}
	block.SortEntries(merged)
	return merged, width, nil
}

// compactor is the background merge goroutine: it sleeps until a
// checkpoint kicks it, then compacts until no run is ready.
func (d *DurableDB) compactor() {
	defer close(d.compactDone)
	for {
		select {
		case <-d.compactStop:
			return
		case <-d.compactKick:
			for {
				select {
				case <-d.compactStop:
					return
				default:
				}
				merged, err := d.Compact()
				if err != nil || !merged {
					break
				}
			}
		}
	}
}

func (d *DurableDB) kickCompactor() {
	select {
	case d.compactKick <- struct{}{}:
	default:
	}
}

// stopCompactor shuts the background compactor down (idempotent) and
// waits for any in-flight round to finish.
func (d *DurableDB) stopCompactor() {
	d.stopOnce.Do(func() { close(d.compactStop) })
	<-d.compactDone
}

// StorageStats summarises the block storage tier (see /v1/stats on the
// serving side).
type StorageStats struct {
	// Epoch is the published manifest epoch; WALSegment the segment
	// currently appended to.
	Epoch      uint64 `json:"epoch"`
	WALSegment uint64 `json:"wal_segment"`
	// Blocks/BlockEntries/BlockBytes describe the live block set;
	// MaxLevel is the deepest compaction tier present.
	Blocks       int    `json:"blocks"`
	BlockEntries uint64 `json:"block_entries"`
	BlockBytes   int64  `json:"block_bytes"`
	MaxLevel     uint32 `json:"max_level"`
	// CompactionBacklog counts the same-level runs currently eligible to
	// merge (0 = fully compacted).
	CompactionBacklog int `json:"compaction_backlog"`
	// Flushes/Compactions count completed operations; FlushedBytes and
	// CompactedBytes the block bytes they wrote. WriteAmplification is
	// (flushed+compacted)/flushed — 1.0 means no rewrite cost yet.
	Flushes            int64   `json:"flushes"`
	Compactions        int64   `json:"compactions"`
	FlushedBytes       int64   `json:"flushed_bytes"`
	CompactedBytes     int64   `json:"compacted_bytes"`
	WriteAmplification float64 `json:"write_amplification"`
	// CompactErrors counts failed compaction rounds; LastCompactError is
	// the most recent failure, empty once a later round succeeds. A
	// growing CompactionBacklog alongside a non-empty LastCompactError
	// means the compactor is stalled, not idle.
	CompactErrors    int64  `json:"compact_errors"`
	LastCompactError string `json:"last_compact_error,omitempty"`
}

// StorageStats snapshots the block storage tier's counters.
func (d *DurableDB) StorageStats() StorageStats {
	d.mu.RLock()
	st := StorageStats{
		Epoch:      d.epoch,
		WALSegment: d.walSeg,
	}
	for _, descs := range d.lists {
		st.Blocks += len(descs)
		for _, desc := range descs {
			st.BlockEntries += desc.Count
			st.BlockBytes += desc.Bytes
			if desc.Level > st.MaxLevel {
				st.MaxLevel = desc.Level
			}
		}
	}
	lists := d.lists
	fanIn := d.opts.fanIn()
	st.CompactionBacklog = countBacklog(lists, fanIn)
	d.mu.RUnlock()
	st.Flushes = d.flushes.Load()
	st.Compactions = d.compactions.Load()
	st.FlushedBytes = d.flushedBytes.Load()
	st.CompactedBytes = d.compactedBytes.Load()
	if st.FlushedBytes > 0 {
		st.WriteAmplification = float64(st.FlushedBytes+st.CompactedBytes) / float64(st.FlushedBytes)
	}
	st.CompactErrors = d.compactErrs.Load()
	d.compactErrMu.Lock()
	if d.compactErr != nil {
		st.LastCompactError = d.compactErr.Error()
	}
	d.compactErrMu.Unlock()
	return st
}

// countBacklog counts merge-eligible same-level runs across all lists.
func countBacklog(lists map[string][]block.Desc, fanIn int) int {
	backlog := 0
	for _, descs := range lists {
		i := 0
		for i < len(descs) {
			j := i + 1
			for j < len(descs) && descs[j].Level == descs[i].Level {
				j++
			}
			if j-i >= fanIn {
				backlog++
			}
			i = j
		}
	}
	return backlog
}

// TableBlockStats describes one physical table's blocklist.
type TableBlockStats struct {
	// Table is the physical table name (partitions appear individually).
	Table string `json:"table"`
	// Blocks/Entries/Bytes/MaxLevel summarise its live blocks.
	Blocks   int    `json:"blocks"`
	Entries  uint64 `json:"entries"`
	Bytes    int64  `json:"bytes"`
	MaxLevel uint32 `json:"max_level"`
}

// TableBlocks reports the blocklist behind each physical table of the
// named logical table (one element per partition for partitioned tables).
func (d *DurableDB) TableBlocks(name string) ([]TableBlockStats, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	meta := d.tables[name]
	if meta == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	out := make([]TableBlockStats, 0, len(physicalNames(name, meta)))
	for _, phys := range physicalNames(name, meta) {
		st := TableBlockStats{Table: phys}
		for _, desc := range d.lists[phys] {
			st.Blocks++
			st.Entries += desc.Count
			st.Bytes += desc.Bytes
			if desc.Level > st.MaxLevel {
				st.MaxLevel = desc.Level
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// BlockRead answers a point read from the block tier alone — the path a
// cold (evicted or larger-than-RAM) table would take. Blocks are probed
// newest to oldest; each block's key fence and bloom filter exclude it
// before any entry load, so a read outside a block's key range costs
// nothing. probed counts the blocks whose entries were actually
// consulted. The answer reflects the last flush cut, not the WAL tail:
// found=false means the key was absent (or deleted) as of the last
// checkpoint.
func (d *DurableDB) BlockRead(table string, pk float64) (row []float64, found bool, probed int, err error) {
	for {
		d.mu.RLock()
		meta := d.tables[table]
		if meta == nil {
			d.mu.RUnlock()
			return nil, false, probed, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
		}
		phys := table
		if meta.Partitions > 0 {
			phys = PartitionName(table, PartitionOf(pk, meta.Partitions))
		}
		epoch := d.epoch
		descs := d.lists[phys]
		handles := make([]*block.Handle, len(descs))
		for i, desc := range descs {
			handles[i] = d.handles[desc.ID]
		}
		d.mu.RUnlock()
		row, found, n, perr := probeBlocks(handles, pk)
		probed += n
		if perr == nil || !errors.Is(perr, fs.ErrNotExist) {
			return row, found, probed, perr
		}
		// The probe raced a compaction: between the handle snapshot above
		// and the file load, a new epoch was published and gcStale unlinked
		// a merged-away block that this snapshot still references but never
		// loaded. The freshly published blocklist describes the same
		// flushed state, so retry against it. If the epoch has not moved,
		// the file is genuinely missing — surface the error.
		d.mu.RLock()
		cur := d.epoch
		d.mu.RUnlock()
		if cur == epoch {
			return nil, false, probed, perr
		}
	}
}

// probeBlocks probes a blocklist snapshot newest to oldest for pk,
// returning the first entry found. probed counts blocks whose entries
// were consulted (fence/bloom exclusions are free).
func probeBlocks(handles []*block.Handle, pk float64) (row []float64, found bool, probed int, err error) {
	for i := len(handles) - 1; i >= 0; i-- {
		h := handles[i]
		if h == nil || !h.MaybeContains(pk) {
			continue
		}
		probed++
		e, ok, gerr := h.Get(pk)
		if gerr != nil {
			return nil, false, probed, gerr
		}
		if !ok {
			continue // bloom false positive
		}
		if e.Tombstone {
			return nil, false, probed, nil
		}
		return e.Row, true, probed, nil
	}
	return nil, false, probed, nil
}

// gcStale removes artifacts no longer referenced by the published epoch:
// temp files, WAL segments other than the appended-to one (minus the
// ReplRetainWALSegments newest predecessors kept for replication
// catch-up), blocklists of other epochs, unreferenced block files, and
// rows files from the pre-block layout. Best-effort: failures leave
// garbage that the next pass retries.
func (d *DurableDB) gcStale() {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	d.mu.RLock()
	epoch, walSeg := d.epoch, d.walSeg
	referenced := make(map[uint64]bool)
	for _, descs := range d.lists {
		for _, desc := range descs {
			referenced[desc.ID] = true
		}
	}
	d.mu.RUnlock()
	// Retention keeps the newest K segments older than the current one;
	// anything older still, plus any segment numbered past the current
	// (a crash leftover from an unpublished rotation), is stale.
	retained := make(map[uint64]bool)
	if k := d.opts.ReplRetainWALSegments; k > 0 {
		var old []uint64
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, "wal.") && strings.HasSuffix(name, ".log") {
				if seg, ok := parseEpoch(name[len("wal.") : len(name)-len(".log")]); ok && seg < walSeg {
					old = append(old, seg)
				}
			}
		}
		sort.Slice(old, func(i, j int) bool { return old[i] > old[j] })
		if len(old) > k {
			old = old[:k]
		}
		for _, seg := range old {
			retained[seg] = true
		}
	}
	for _, e := range entries {
		name := e.Name()
		stale := false
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = true
		case strings.HasPrefix(name, "wal.") && strings.HasSuffix(name, ".log"):
			seg, ok := parseEpoch(name[len("wal.") : len(name)-len(".log")])
			stale = ok && seg != walSeg && !retained[seg]
		case strings.HasPrefix(name, "blocklist."):
			ep, ok := parseEpoch(name[len("blocklist."):])
			stale = ok && ep != epoch
		case strings.HasSuffix(name, ".blk"):
			id, ok := parseBlockID(name)
			stale = ok && !referenced[id]
		case strings.HasPrefix(name, "table_") && strings.HasSuffix(name, ".rows"):
			// Pre-block layout leftovers; a v5 manifest never names them.
			stale = true
		}
		if stale {
			os.Remove(filepath.Join(d.dir, name))
		}
	}
}

func parseEpoch(s string) (uint64, bool) {
	epoch, err := strconv.ParseUint(s, 10, 64)
	return epoch, err == nil
}

// Close stops the compactor, syncs and closes the WAL. The checkpoint
// files stay on disk.
func (d *DurableDB) Close() error {
	d.stopCompactor()
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, o := range d.orphans {
		o.Close()
	}
	d.orphans = nil
	return d.log.Close()
}

func encodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func decodeFloats(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable. Best-effort
// (some platforms reject directory fsync).
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
