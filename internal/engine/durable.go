package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
	"hermit/internal/wal"
)

// DurableDB wraps the in-memory engine with the persistence scheme §6
// sketches for main-memory RDBMSs: write-ahead logging plus checkpointing.
//
// Concurrency contract: DurableDB is safe for concurrent use. Mutations
// (Insert/Delete/UpdateColumn and the batched ExecuteBatch) coordinate
// through a reader/writer latch plus a per-primary-key stripe, so writers
// on different keys proceed in parallel while Checkpoint and DDL quiesce
// them; the WAL itself serialises frames through a single appender
// goroutine with group commit. Queries may use the *Table returned by
// Table directly — but mutations through that handle bypass both the log
// and the durable layer's coordination, so they must go through the
// DurableDB methods.
//
// Durability protocol: every mutation is applied to the engine (which
// validates it) and then appended to the WAL under its key's stripe, so a
// rejected operation — e.g. a duplicate primary key — never poisons the
// log, and per-key apply order equals log order. The call returns when the
// record is acknowledged under the configured sync policy (no-sync /
// group-commit / sync-every-op); an acknowledged synced write is never
// lost by a crash.
//
// Checkpoint persists a full image under the next checkpoint epoch —
// per-table row files and a fresh WAL segment, all epoch-stamped — and
// atomically publishes it by renaming the manifest, which records the
// (epoch, WAL start position) pair recovery resumes from. Replay therefore
// never double-applies on top of a checkpoint image: a crash anywhere in
// Checkpoint leaves either the old manifest (old image + old WAL replayed
// in full) or the new one (new image + the new, empty segment). Stale
// epochs are garbage-collected on open and after each checkpoint.
//
// OpenDurable recovers by loading the manifest's checkpoint image,
// truncating the current WAL segment to its last valid frame (so a
// crash-torn tail can never shadow later appends), and replaying the tail.
// Records whose replay fails are counted and skipped — surfaced through
// RecoverySkipped — rather than permanently aborting recovery. Indexes,
// including Hermit's TRS-Trees, are rebuilt from their recorded
// definitions, the cheap option the paper's construction numbers (§7.5)
// justify.
type DurableDB struct {
	db   *DB
	dir  string
	opts DurableOptions

	// mu is the durable layer's latch: mutations hold it shared (plus a
	// rows stripe); DDL, Checkpoint and Close hold it exclusively. It
	// protects tables (map and Defs slices) and the log pointer, which
	// Checkpoint swaps at segment rotation.
	mu      sync.RWMutex
	log     *wal.Log
	epoch   uint64
	tables  map[string]*durableMeta
	rows    stripedLock
	orphans []*wal.Log // pre-rotation logs left open by a simulated crash

	// txnSeq issues transaction ids for the WAL's txn-begin/commit
	// framing; seeded past the largest id seen during recovery.
	txnSeq atomic.Uint64

	skipped     int
	lastSkipErr error
	uncommitted int // transactions whose commit record never hit the log

	// failpoint, when non-nil, is invoked at every step boundary of
	// Checkpoint with a step label; a returned error simulates a crash at
	// that boundary (the checkpoint aborts with the on-disk state exactly
	// as a process kill would leave it). Test hook only.
	failpoint func(step string) error
}

// SyncPolicy selects when a durable mutation is acknowledged.
type SyncPolicy = wal.Policy

// Sync policies, re-exported from the wal package.
const (
	// SyncNever acknowledges after the OS write (fast; survives process
	// crashes, not power loss). The default.
	SyncNever = wal.SyncNever
	// SyncGroup batches fsyncs across concurrent writers (group commit).
	SyncGroup = wal.SyncGroup
	// SyncAlways fsyncs before acknowledging each mutation.
	SyncAlways = wal.SyncAlways
)

// DurableOptions configures the durability/latency trade-off.
type DurableOptions struct {
	// Policy is the WAL sync policy (default SyncNever).
	Policy SyncPolicy
	// GroupInterval is the group-commit interval for SyncGroup
	// (wal.DefaultGroupInterval when zero).
	GroupInterval time.Duration
}

func (o DurableOptions) walOptions() wal.Options {
	return wal.Options{Policy: o.Policy, GroupInterval: o.GroupInterval}
}

type durableMeta struct {
	Cols  []string   `json:"cols"`
	PKCol int        `json:"pk"`
	Defs  []IndexDef `json:"defs"`
	// Partitions is the hash-partition count of a partitioned table (0 for
	// a plain table). A partitioned logical table is backed by engine
	// tables PartitionName(name, 0..Partitions-1); mutations route by
	// PartitionOf and every WAL record carries its partition id, so replay
	// and checkpoints rebuild each partition exactly.
	Partitions int `json:"parts,omitempty"`
}

// IndexDef records how to rebuild one index during recovery.
type IndexDef struct {
	Kind    string         `json:"kind"` // "btree" | "hermit" | "composite-btree" | "composite-hermit"
	Col     int            `json:"col"`
	Host    int            `json:"host,omitempty"`
	ACol    int            `json:"acol,omitempty"`
	MarkNew bool           `json:"new,omitempty"`
	Params  trstree.Params `json:"params,omitempty"`
}

// manifestVersion identifies the epoch-based checkpoint layout. Version 3
// added hash-partitioned tables: a partition id in every WAL frame and a
// partition count in table metadata. Version 4 moved the WAL to frame
// format v4 (per-record transaction ids plus txn-begin/commit records), so
// recovery replays only committed transactions; checkpoints now dump the
// rows visible at the latest commit timestamp after a version-GC pass.
const manifestVersion = 4

// manifest is the durably-published checkpoint descriptor. Epoch names the
// row files and WAL segment of the image; WALStart is the byte offset in
// that segment where replay begins (0 after a rotation). The pair makes
// recovery idempotent: replay can never start before the image's cut.
type manifest struct {
	Version  int                     `json:"version"`
	Scheme   int                     `json:"scheme"`
	Epoch    uint64                  `json:"epoch"`
	WALStart int64                   `json:"wal_start"`
	Tables   map[string]*durableMeta `json:"tables"`
}

type ddlTable struct {
	Cols  []string `json:"cols"`
	PKCol int      `json:"pk"`
	Parts int      `json:"parts,omitempty"`
}

type ddlIndex struct {
	Def IndexDef `json:"def"`
}

type ddlDropIndex struct {
	Col  int    `json:"col"`
	Kind string `json:"kind"` // "btree" | "hermit" | "cm"
}

type durablePaths struct{ dir string }

func (f durablePaths) String() string   { return f.dir }
func (f durablePaths) manifest() string { return filepath.Join(f.dir, "manifest.json") }
func (f durablePaths) rows(t string, epoch uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("table_%s.%08d.rows", t, epoch))
}
func (f durablePaths) wal(epoch uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("wal.%08d.log", epoch))
}

// OpenDurable opens (or creates) a durable database in dir with default
// options: it loads the last checkpoint if present, repairs and replays
// the WAL tail, and opens the log for appending.
func OpenDurable(dir string, scheme hermit.PointerScheme) (*DurableDB, error) {
	return OpenDurableOptions(dir, scheme, DurableOptions{})
}

// OpenDurableOptions opens the durable database stored in dir with the
// given sync policy.
func OpenDurableOptions(dir string, scheme hermit.PointerScheme, opts DurableOptions) (*DurableDB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := durablePaths{dir}
	// A pre-epoch database stored its WAL at a fixed path; opening it as
	// epoch 0 would silently ignore every record in it.
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); err == nil {
		return nil, fmt.Errorf("engine: %s holds a pre-epoch WAL (wal.log); migrate it before opening", dir)
	}
	d := &DurableDB{
		db:     NewDB(scheme),
		dir:    dir,
		opts:   opts,
		tables: make(map[string]*durableMeta),
	}
	// Phase 1: checkpoint image.
	var walStart int64
	if raw, err := os.ReadFile(p.manifest()); err == nil {
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("engine: corrupt manifest: %w", err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("engine: checkpoint manifest version %d, want %d", m.Version, manifestVersion)
		}
		if m.Scheme != int(scheme) {
			return nil, fmt.Errorf("engine: checkpoint scheme %d != requested %d", m.Scheme, scheme)
		}
		d.epoch = m.Epoch
		walStart = m.WALStart
		for name, meta := range m.Tables {
			if err := d.restoreTable(p, name, meta); err != nil {
				return nil, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// Phase 2: replay the WAL tail. Replay stops at the first torn or
	// corrupt frame on its own; a record that fails to apply is counted
	// and skipped, never aborting recovery. Records carrying a transaction
	// id buffer until their commit record arrives — a transaction whose
	// OpTxnCommit never reached the log is an uncommitted tail and rolls
	// back (its buffered mutations are simply dropped).
	walPath := p.wal(d.epoch)
	pending := make(map[uint64][]wal.Record)
	var maxTxn uint64
	applyCounted := func(rec wal.Record) {
		if aerr := d.apply(rec); aerr != nil {
			d.skipped++
			d.lastSkipErr = aerr
		}
	}
	err := wal.ReplayFrom(walPath, walStart, func(rec wal.Record) error {
		if rec.Txn > maxTxn {
			maxTxn = rec.Txn
		}
		switch {
		case rec.Op == wal.OpTxnBegin:
			pending[rec.Txn] = nil
		case rec.Op == wal.OpTxnCommit:
			recs, ok := pending[rec.Txn]
			if !ok {
				d.skipped++
				d.lastSkipErr = fmt.Errorf("engine: commit for unknown txn %d", rec.Txn)
				return nil
			}
			for _, r := range recs {
				applyCounted(r)
			}
			delete(pending, rec.Txn)
		case rec.Txn != 0:
			pending[rec.Txn] = append(pending[rec.Txn], rec)
		default:
			applyCounted(rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.uncommitted = len(pending)
	d.txnSeq.Store(maxTxn)
	// Phase 3: open the log for appending — wal.OpenWith truncates any
	// crash-torn tail, which is what keeps post-recovery appends reachable
	// — and clear stale-epoch leftovers.
	log, err := wal.OpenWith(walPath, opts.walOptions())
	if err != nil {
		return nil, err
	}
	d.log = log
	d.gcStale()
	return d, nil
}

// RecoverySkipped reports how many WAL records failed to apply during the
// last open (with the last such error), e.g. records from a log written by
// a buggy earlier version. Zero on a clean recovery.
func (d *DurableDB) RecoverySkipped() (int, error) { return d.skipped, d.lastSkipErr }

// RecoveryUncommitted reports how many transactions were rolled back
// during the last open because their commit record never reached the log —
// the crash-interrupted tails recovery must discard. These are not
// failures: an unacknowledged commit has made no durability promise.
func (d *DurableDB) RecoveryUncommitted() int { return d.uncommitted }

// Snapshot registers a consistent read snapshot on the database's commit
// clock (see DB.Snapshot).
func (d *DurableDB) Snapshot() *Snapshot { return d.db.Snapshot() }

// Clock returns the commit clock ordering every table in this database.
func (d *DurableDB) Clock() *Clock { return d.db.Clock() }

// GC runs one version-garbage-collection pass (see DB.GC). Checkpoint runs
// it automatically; this is the manual hook.
func (d *DurableDB) GC() int { return d.db.GC() }

func (d *DurableDB) restoreTable(p durablePaths, name string, meta *durableMeta) error {
	for _, phys := range physicalNames(name, meta) {
		tb, err := d.db.CreateTable(phys, meta.Cols, meta.PKCol)
		if err != nil {
			return err
		}
		rows, err := readRowsFile(p.rows(phys, d.epoch), len(meta.Cols))
		if err != nil {
			return err
		}
		for _, row := range rows {
			if _, err := tb.Insert(row); err != nil {
				return fmt.Errorf("engine: restoring %q: %w", phys, err)
			}
		}
		for _, def := range meta.Defs {
			if err := applyIndexDef(tb, def); err != nil {
				return err
			}
		}
	}
	d.tables[name] = meta
	return nil
}

// physicalNames lists the engine tables backing a logical table: the name
// itself for a plain table, one PartitionName per partition otherwise.
func physicalNames(name string, meta *durableMeta) []string {
	if meta.Partitions <= 0 {
		return []string{name}
	}
	names := make([]string, meta.Partitions)
	for i := range names {
		names[i] = PartitionName(name, i)
	}
	return names
}

func applyIndexDef(tb *Table, def IndexDef) error {
	var err error
	switch def.Kind {
	case "btree":
		_, err = tb.CreateBTreeIndex(def.Col, def.MarkNew)
	case "hermit":
		_, err = tb.CreateHermitIndex(def.Col, def.Host, WithParams(def.Params))
	case "composite-btree":
		_, err = tb.CreateCompositeBTreeIndex(def.ACol, def.Col, def.MarkNew)
	case "composite-hermit":
		_, err = tb.CreateCompositeHermitIndex(def.ACol, def.Col, def.Host, WithParams(def.Params))
	default:
		err = fmt.Errorf("engine: unknown index kind %q", def.Kind)
	}
	return err
}

// apply executes one WAL record against the in-memory state (no logging).
func (d *DurableDB) apply(rec wal.Record) error {
	switch rec.Op {
	case wal.OpCreateTable:
		var ddl ddlTable
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		if _, err := d.db.CreateTable(rec.Table, ddl.Cols, ddl.PKCol); err != nil {
			return err
		}
		d.tables[rec.Table] = &durableMeta{Cols: ddl.Cols, PKCol: ddl.PKCol}
		return nil
	case wal.OpCreatePartitioned:
		var ddl ddlTable
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		if ddl.Parts < 1 {
			return fmt.Errorf("engine: partitioned table %q with %d partitions", rec.Table, ddl.Parts)
		}
		meta := &durableMeta{Cols: ddl.Cols, PKCol: ddl.PKCol, Partitions: ddl.Parts}
		for _, phys := range physicalNames(rec.Table, meta) {
			if _, err := d.db.CreateTable(phys, ddl.Cols, ddl.PKCol); err != nil {
				return err
			}
		}
		d.tables[rec.Table] = meta
		return nil
	case wal.OpCreateIndex:
		var ddl ddlIndex
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		meta := d.tables[rec.Table]
		if meta == nil {
			return fmt.Errorf("%w: %q", ErrNoSuchTable, rec.Table)
		}
		for _, phys := range physicalNames(rec.Table, meta) {
			tb, err := d.db.Table(phys)
			if err != nil {
				return err
			}
			if err := applyIndexDef(tb, ddl.Def); err != nil {
				return err
			}
		}
		meta.Defs = append(meta.Defs, ddl.Def)
		return nil
	case wal.OpDropIndex:
		var ddl ddlDropIndex
		if err := json.Unmarshal(rec.Payload, &ddl); err != nil {
			return err
		}
		meta := d.tables[rec.Table]
		if meta == nil {
			return fmt.Errorf("%w: %q", ErrNoSuchTable, rec.Table)
		}
		kind, err := kindFromString(ddl.Kind)
		if err != nil {
			return err
		}
		for _, phys := range physicalNames(rec.Table, meta) {
			tb, err := d.db.Table(phys)
			if err != nil {
				return err
			}
			if err := tb.DropIndex(ddl.Col, kind); err != nil {
				return err
			}
		}
		d.removeDef(rec.Table, ddl.Col, ddl.Kind)
		return nil
	case wal.OpInsert:
		tb, err := d.applyTarget(rec)
		if err != nil {
			return err
		}
		row := decodeFloats(rec.Payload)
		_, err = tb.Insert(row)
		return err
	case wal.OpDelete:
		tb, err := d.applyTarget(rec)
		if err != nil {
			return err
		}
		vals := decodeFloats(rec.Payload)
		if len(vals) != 1 {
			return fmt.Errorf("engine: malformed delete record")
		}
		_, err = tb.Delete(vals[0])
		return err
	case wal.OpUpdate:
		tb, err := d.applyTarget(rec)
		if err != nil {
			return err
		}
		vals := decodeFloats(rec.Payload)
		if len(vals) != 3 {
			return fmt.Errorf("engine: malformed update record")
		}
		return tb.UpdateColumn(vals[0], int(vals[1]), vals[2])
	default:
		return fmt.Errorf("engine: unknown WAL op %d", rec.Op)
	}
}

// applyTarget resolves the engine table a replayed mutation applies to,
// routing by the record's partition id for partitioned tables.
func (d *DurableDB) applyTarget(rec wal.Record) (*Table, error) {
	name := rec.Table
	if meta := d.tables[rec.Table]; meta != nil && meta.Partitions > 0 {
		if int(rec.Part) >= meta.Partitions {
			return nil, fmt.Errorf("engine: record partition %d out of range for %q (%d partitions)",
				rec.Part, rec.Table, meta.Partitions)
		}
		name = PartitionName(rec.Table, int(rec.Part))
	}
	return d.db.Table(name)
}

// CreateTable creates and logs a table. Names containing '#' are rejected:
// the character is reserved for the per-partition tables backing
// CreatePartitionedTable.
func (d *DurableDB) CreateTable(name string, cols []string, pkCol int) (*Table, error) {
	if strings.Contains(name, "#") {
		return nil, fmt.Errorf("engine: table name %q: '#' is reserved for partitions", name)
	}
	d.mu.Lock()
	// Check the durable catalog, not just the engine one: a partitioned
	// logical table exists only as name#i tables in the engine, so the
	// engine-level duplicate check would miss it and the plain table
	// would silently overwrite the partitioned metadata.
	if d.tables[name] != nil {
		d.mu.Unlock()
		return nil, ErrDupTable
	}
	tb, err := d.db.CreateTable(name, cols, pkCol)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	d.tables[name] = &durableMeta{Cols: cols, PKCol: pkCol}
	payload, err := json.Marshal(ddlTable{Cols: cols, PKCol: pkCol})
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpCreateTable, Table: name, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if _, err := tk.Wait(); err != nil {
		return nil, err
	}
	return tb, nil
}

// CreatePartitionedTable creates and logs a hash-partitioned table: parts
// engine tables (each with its own indexes, latches and planner state)
// behind one logical name. Mutations on the logical name route by
// PartitionOf over the primary key and are WAL-logged with their partition
// id; checkpoints write one rows file per partition and recovery rebuilds
// each partition from its file plus the routed WAL tail. Queries
// scatter-gather through the internal/partition wrapper (see
// partition.OpenDurable), which is also how per-partition handles are
// obtained.
func (d *DurableDB) CreatePartitionedTable(name string, cols []string, pkCol, parts int) error {
	if strings.Contains(name, "#") {
		return fmt.Errorf("engine: table name %q: '#' is reserved for partitions", name)
	}
	if parts < 1 {
		return fmt.Errorf("engine: partitioned table %q needs at least 1 partition, got %d", name, parts)
	}
	d.mu.Lock()
	if d.tables[name] != nil {
		d.mu.Unlock()
		return ErrDupTable
	}
	meta := &durableMeta{Cols: append([]string(nil), cols...), PKCol: pkCol, Partitions: parts}
	for i, phys := range physicalNames(name, meta) {
		if _, err := d.db.CreateTable(phys, cols, pkCol); err != nil {
			// Unwind the partitions already created so a failed create
			// leaves no orphan engine tables.
			for j := 0; j < i; j++ {
				d.db.dropTable(PartitionName(name, j))
			}
			d.mu.Unlock()
			return err
		}
	}
	d.tables[name] = meta
	payload, err := json.Marshal(ddlTable{Cols: cols, PKCol: pkCol, Parts: parts})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpCreatePartitioned, Table: name, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// Partitions reports the partition count of the named logical table: 0 for
// a plain table, >= 1 for one created by CreatePartitionedTable.
func (d *DurableDB) Partitions(name string) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	meta := d.tables[name]
	if meta == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return meta.Partitions, nil
}

// Table returns the named table. Queries through it are safe; mutations
// through it bypass the WAL and the durable layer's latching — use the
// DurableDB mutation methods instead.
func (d *DurableDB) Table(name string) (*Table, error) { return d.db.Table(name) }

// CreateIndex creates and logs an index per def. On a partitioned table
// the definition is applied to every partition (indexes are uniform across
// partitions, so routing never changes which access paths exist); only
// single-column kinds are supported there, because a partial failure is
// unwound with DropIndex and composites are not droppable.
func (d *DurableDB) CreateIndex(table string, def IndexDef) error {
	d.mu.Lock()
	meta := d.tables[table]
	if meta == nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if meta.Partitions > 0 && (def.Kind == "composite-btree" || def.Kind == "composite-hermit") {
		d.mu.Unlock()
		return fmt.Errorf("engine: %s indexes are not supported on partitioned tables", def.Kind)
	}
	names := physicalNames(table, meta)
	for i, phys := range names {
		tb, err := d.db.Table(phys)
		if err == nil {
			err = applyIndexDef(tb, def)
		}
		if err != nil {
			// Unwind the partitions already indexed so state stays uniform.
			if kind, kerr := kindFromString(def.Kind); kerr == nil {
				for j := 0; j < i; j++ {
					if tb, terr := d.db.Table(names[j]); terr == nil {
						tb.DropIndex(def.Col, kind)
					}
				}
			}
			d.mu.Unlock()
			return err
		}
	}
	meta.Defs = append(meta.Defs, def)
	payload, err := json.Marshal(ddlIndex{Def: def})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpCreateIndex, Table: table, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// kindFromString maps an IndexDef kind string to the engine's IndexKind
// vocabulary (single-column kinds only; composites are not droppable).
func kindFromString(s string) (IndexKind, error) {
	switch s {
	case "btree":
		return KindBTree, nil
	case "hermit":
		return KindHermit, nil
	case "cm":
		return KindCM, nil
	default:
		return KindNone, fmt.Errorf("engine: unknown droppable index kind %q", s)
	}
}

// removeDef deletes the first recorded index definition matching (col,
// kind) so post-drop checkpoints no longer rebuild the index.
func (d *DurableDB) removeDef(table string, col int, kind string) {
	meta := d.tables[table]
	if meta == nil {
		return
	}
	for i, def := range meta.Defs {
		if def.Col == col && def.Kind == kind {
			meta.Defs = append(meta.Defs[:i], meta.Defs[i+1:]...)
			return
		}
	}
}

// DropIndex drops and logs the removal of the index of the given kind
// ("btree", "hermit" or "cm") on col: the advisor's durable reclamation
// path. Like all durable DDL it quiesces mutations and checkpoints via the
// exclusive latch, and the drop is WAL-logged so recovery replays it; the
// index also leaves the recorded definitions, so later checkpoints do not
// resurrect it.
func (d *DurableDB) DropIndex(table string, col int, kind string) error {
	d.mu.Lock()
	meta := d.tables[table]
	if meta == nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	k, err := kindFromString(kind)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	for _, phys := range physicalNames(table, meta) {
		tb, err := d.db.Table(phys)
		if err == nil {
			err = tb.DropIndex(col, k)
		}
		if err != nil {
			// DDL is uniform across partitions, so a drop that fails on one
			// partition fails on the first — before any partition changed.
			d.mu.Unlock()
			return err
		}
	}
	d.removeDef(table, col, kind)
	payload, err := json.Marshal(ddlDropIndex{Col: col, Kind: kind})
	if err != nil {
		d.mu.Unlock()
		return err
	}
	tk, err := d.log.Submit(wal.Record{Op: wal.OpDropIndex, Table: table, Payload: payload})
	d.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// mutate applies one validated mutation and logs it, holding the shared
// latch (vs Checkpoint/DDL) and the primary key's stripe (so per-key log
// order equals apply order). On a partitioned table the mutation routes to
// the primary key's hash partition and the WAL record carries the
// partition id. It returns once the record is acknowledged under the sync
// policy. A failed apply is returned without logging — validate-then-log,
// the fix for WAL poisoning.
func (d *DurableDB) mutate(table string, pk float64, apply func(tb *Table) error, rec func() wal.Record) error {
	d.mu.RLock()
	phys, part := table, uint32(0)
	if meta := d.tables[table]; meta != nil && meta.Partitions > 0 {
		p := PartitionOf(pk, meta.Partitions)
		phys, part = PartitionName(table, p), uint32(p)
	}
	tb, err := d.db.Table(phys)
	if err != nil {
		d.mu.RUnlock()
		return err
	}
	unlock := d.rows.lock(pk)
	var tk *wal.Ticket
	if err = apply(tb); err == nil {
		r := rec()
		r.Part = part
		if tk, err = d.log.Submit(r); err != nil {
			err = fmt.Errorf("engine: wal submit after apply (in-memory state ahead of log until next checkpoint): %w", err)
		}
	}
	unlock()
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	if _, werr := tk.Wait(); werr != nil {
		return fmt.Errorf("engine: wal append after apply (in-memory state ahead of log until next checkpoint): %w", werr)
	}
	return nil
}

// Insert validates+applies a row insert, then logs it.
func (d *DurableDB) Insert(table string, row []float64) (storage.RID, error) {
	var pk float64
	d.mu.RLock()
	if meta := d.tables[table]; meta != nil && meta.PKCol < len(row) {
		pk = row[meta.PKCol]
	}
	d.mu.RUnlock()
	var rid storage.RID
	err := d.mutate(table, pk,
		func(tb *Table) error {
			var aerr error
			rid, aerr = tb.Insert(row)
			return aerr
		},
		func() wal.Record {
			return wal.Record{Op: wal.OpInsert, Table: table, Payload: encodeFloats(row)}
		})
	return rid, err
}

// Delete validates+applies a delete by primary key, then logs it. A delete
// of an absent key is applied but not logged (found=false, no record
// needed for replay).
func (d *DurableDB) Delete(table string, pk float64) (bool, error) {
	var found bool
	err := d.mutate(table, pk,
		func(tb *Table) error {
			var aerr error
			found, aerr = tb.Delete(pk)
			if aerr != nil || !found {
				return errSkipLog{aerr}
			}
			return nil
		},
		func() wal.Record {
			return wal.Record{Op: wal.OpDelete, Table: table, Payload: encodeFloats([]float64{pk})}
		})
	if e, ok := err.(errSkipLog); ok {
		return found, e.err
	}
	return found, err
}

// errSkipLog aborts logging inside mutate while carrying the apply outcome.
type errSkipLog struct{ err error }

func (e errSkipLog) Error() string {
	if e.err == nil {
		return "engine: not logged"
	}
	return e.err.Error()
}

// UpdateColumn validates+applies a single-column update, then logs it.
func (d *DurableDB) UpdateColumn(table string, pk float64, col int, v float64) error {
	return d.mutate(table, pk,
		func(tb *Table) error { return tb.UpdateColumn(pk, col, v) },
		func() wal.Record {
			return wal.Record{
				Op:      wal.OpUpdate,
				Table:   table,
				Payload: encodeFloats([]float64{pk, float64(col), v}),
			}
		})
}

// Sync forces an fsync covering every mutation acknowledged so far — a
// durability barrier regardless of the configured policy. The latch is
// held across the fsync so a concurrent Checkpoint cannot rotate (and
// close) the segment out from under the barrier.
func (d *DurableDB) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.log.Sync()
}

// fp triggers the checkpoint failpoint hook (tests only; no-op otherwise).
func (d *DurableDB) fp(step string) error {
	if d.failpoint != nil {
		return d.failpoint(step)
	}
	return nil
}

// Checkpoint persists a full image under the next epoch and atomically
// publishes it. The protocol, with the crash outcome of each window:
//
//  1. Quiesce mutations and flush the WAL (crash: old manifest, full
//     old-WAL replay — nothing lost).
//  2. Write each table's rows under the next epoch (tmp + fsync + rename;
//     crash: new-epoch files are unreferenced garbage, GC'd later).
//  3. Create the next epoch's empty WAL segment (crash: same).
//  4. Write manifest.tmp and rename it over manifest.json, fsyncing file
//     and directory — the commit point. A crash before the rename recovers
//     the old epoch in full; after it, the new image plus the new (empty)
//     segment. Replay can never be applied on top of the wrong image, so
//     recovery never double-applies.
//  5. Switch appending to the new segment and delete stale-epoch files
//     (crash: recovery GCs them instead).
func (d *DurableDB) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := durablePaths{d.dir}
	if err := d.fp("begin"); err != nil {
		return err
	}
	if err := d.log.Sync(); err != nil {
		return err
	}
	if err := d.fp("after-wal-sync"); err != nil {
		return err
	}
	// Version-GC pass: with mutations quiesced, reclaim every row version
	// older than the oldest live snapshot (concurrent snapshot readers are
	// registered on the clock and bound the horizon), so the rows files
	// below stay one-version-per-key and superseded versions stop
	// accumulating in the store and indexes.
	d.db.GC()
	next := d.epoch + 1
	names := make([]string, 0, len(d.tables))
	for name := range d.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// One rows file per physical table: a plain table writes one, a
		// partitioned table one per partition.
		for _, phys := range physicalNames(name, d.tables[name]) {
			tb, err := d.db.Table(phys)
			if err != nil {
				return err
			}
			if err := writeRowsFile(p.rows(phys, next), tb); err != nil {
				return err
			}
			if err := d.fp("after-rows:" + phys); err != nil {
				return err
			}
		}
	}
	newLog, err := wal.OpenWith(p.wal(next), d.opts.walOptions())
	if err != nil {
		return err
	}
	// Make the rows-file renames and the new segment durable before the
	// manifest can name them: without this ordering, a power loss right
	// after the manifest rename could publish an epoch whose files the
	// directory lost.
	syncDir(d.dir)
	if err := d.fp("after-new-wal"); err != nil {
		newLog.Close()
		return err
	}
	m := manifest{
		Version:  manifestVersion,
		Scheme:   int(d.db.Scheme()),
		Epoch:    next,
		WALStart: 0,
		Tables:   d.tables,
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		newLog.Close()
		return err
	}
	tmp := p.manifest() + ".tmp"
	if err := writeFileSync(tmp, raw); err != nil {
		newLog.Close()
		return err
	}
	if err := d.fp("after-manifest-tmp"); err != nil {
		newLog.Close()
		return err
	}
	if err := os.Rename(tmp, p.manifest()); err != nil {
		newLog.Close()
		return err
	}
	syncDir(d.dir)
	// Commit point passed: publish the new epoch in memory before anything
	// else can fail, so a post-commit failpoint leaves d consistent with
	// the on-disk manifest.
	old := d.log
	d.log = newLog
	d.epoch = next
	if err := d.fp("after-manifest-rename"); err != nil {
		d.orphans = append(d.orphans, old) // closed by Close; simulated crash
		return err
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("engine: closing rotated wal: %w", err)
	}
	d.gcStale()
	return d.fp("after-gc")
}

// gcStale removes artifacts from other epochs and leftover temp files.
// Best-effort: failures leave garbage that the next pass retries.
func (d *DurableDB) gcStale() {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var epoch uint64
		var ok bool
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(d.dir, name))
			continue
		case strings.HasPrefix(name, "wal.") && strings.HasSuffix(name, ".log"):
			epoch, ok = parseEpoch(name[len("wal.") : len(name)-len(".log")])
		case strings.HasPrefix(name, "table_") && strings.HasSuffix(name, ".rows"):
			base := name[:len(name)-len(".rows")]
			if i := strings.LastIndex(base, "."); i >= 0 {
				epoch, ok = parseEpoch(base[i+1:])
			}
		}
		if ok && epoch != d.epoch {
			os.Remove(filepath.Join(d.dir, name))
		}
	}
}

func parseEpoch(s string) (uint64, bool) {
	epoch, err := strconv.ParseUint(s, 10, 64)
	return epoch, err == nil
}

// Close syncs and closes the WAL. The checkpoint files stay on disk.
func (d *DurableDB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, o := range d.orphans {
		o.Close()
	}
	d.orphans = nil
	return d.log.Close()
}

func encodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func decodeFloats(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable. Best-effort
// (some platforms reject directory fsync).
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// writeRowsFile dumps the rows live at the latest commit timestamp — one
// version per key — as u32 width, u64 count, then raw rows. The caller
// (Checkpoint) holds the durable latch exclusively, so the live set is
// stable while we stream it.
func writeRowsFile(path string, tb *Table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tb.Store().Width()))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(tb.Len()))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var werr error
	tb.ScanLive(func(_ storage.RID, row []float64) bool {
		if _, err := f.Write(encodeFloats(row)); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		f.Close()
		return werr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readRowsFile loads a row dump written by writeRowsFile.
func readRowsFile(path string, width int) ([][]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			// writeRowsFile creates a file even for an empty table, so a
			// manifest-referenced rows file can only be missing through
			// corruption or external deletion: fail loudly rather than
			// silently recovering zero rows.
			return nil, fmt.Errorf("engine: rows file %q named by manifest is missing", path)
		}
		return nil, err
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("engine: truncated rows file %q", path)
	}
	w := int(binary.LittleEndian.Uint32(raw[0:4]))
	count := int(binary.LittleEndian.Uint64(raw[4:12]))
	if w != width {
		return nil, fmt.Errorf("engine: rows file width %d != schema %d", w, width)
	}
	need := 12 + count*w*8
	if len(raw) < need {
		return nil, fmt.Errorf("engine: rows file %q shorter than declared", path)
	}
	rows := make([][]float64, count)
	off := 12
	for i := range rows {
		rows[i] = decodeFloats(raw[off : off+w*8])
		off += w * 8
	}
	return rows, nil
}
