package engine

import (
	"errors"
	"fmt"
	"sort"

	"hermit/internal/btree"
	"hermit/internal/cm"
	"hermit/internal/correlation"
	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// CreateBTreeIndex builds a complete B+-tree secondary index on col via
// single-thread bulk loading (the baseline construction path of §7.5).
// markNew tags the index as "newly created" for the insert-cost breakdown.
func (t *Table) CreateBTreeIndex(col int, markNew bool) (*btree.Tree, error) {
	if col < 0 || col >= len(t.cols) {
		return nil, ErrNoSuchColumn
	}
	t.catalog.Lock()
	defer t.catalog.Unlock()
	if _, dup := t.secondary[col]; dup {
		return nil, ErrDupIndex
	}
	// Build the key/id arrays BulkLoad consumes directly and sort them
	// jointly — no intermediate entries slice to materialise and copy out
	// (the build peak is the tree plus exactly one pair of arrays).
	keys := make([]float64, 0, t.store.Len())
	ids := make([]uint64, 0, t.store.Len())
	buf := make([]float64, len(t.cols))
	t.store.Scan(func(rid storage.RID, row []float64) bool {
		copy(buf, row)
		keys = append(keys, row[col])
		ids = append(ids, t.identify(rid, buf))
		return true
	})
	sort.Sort(keyIDSorter{keys: keys, ids: ids})
	tr := btree.New(btree.DefaultOrder)
	if err := tr.BulkLoad(keys, ids); err != nil {
		return nil, err
	}
	t.secondary[col] = tr
	t.secondaryMu.add(col)
	if markNew {
		t.newCols[col] = true
	}
	return tr, nil
}

// keyIDSorter orders the parallel key/id bulk-load arrays jointly by
// (key, id), swapping both slices in lockstep.
type keyIDSorter struct {
	keys []float64
	ids  []uint64
}

func (s keyIDSorter) Len() int { return len(s.keys) }

func (s keyIDSorter) Less(a, b int) bool {
	if s.keys[a] != s.keys[b] {
		return s.keys[a] < s.keys[b]
	}
	return s.ids[a] < s.ids[b]
}

func (s keyIDSorter) Swap(a, b int) {
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
	s.ids[a], s.ids[b] = s.ids[b], s.ids[a]
}

// HermitOption customises Hermit index creation.
type HermitOption func(*hermitOpts)

type hermitOpts struct {
	params  trstree.Params
	workers int
	profile bool
}

// WithParams overrides the TRS-Tree parameters (default: paper defaults).
func WithParams(p trstree.Params) HermitOption {
	return func(o *hermitOpts) { o.params = p }
}

// WithBuildWorkers enables parallel TRS-Tree construction.
func WithBuildWorkers(n int) HermitOption {
	return func(o *hermitOpts) { o.workers = n }
}

// WithProfile enables per-phase lookup timing on the index.
func WithProfile() HermitOption {
	return func(o *hermitOpts) { o.profile = true }
}

// CreateHermitIndex builds a Hermit index on col using hostCol's complete
// index as the host. The host column must already carry a B+-tree index
// (or be the primary key, which §5.2 notes can serve as the host).
func (t *Table) CreateHermitIndex(col, hostCol int, opts ...HermitOption) (*hermit.Index, error) {
	if col < 0 || col >= len(t.cols) || hostCol < 0 || hostCol >= len(t.cols) {
		return nil, ErrNoSuchColumn
	}
	t.catalog.Lock()
	defer t.catalog.Unlock()
	if _, dup := t.hermits[col]; dup {
		return nil, ErrDupIndex
	}
	host, ok := t.secondary[hostCol]
	if !ok {
		if hostCol == t.pkCol {
			// The primary index maps pk -> RID; under physical pointers it
			// already stores RIDs, so it can host directly. Under logical
			// pointers secondary indexes store pks, and an index on the pk
			// column storing pks is the identity — host on primary either way.
			host = t.primary
		} else {
			return nil, ErrNoHostIndex
		}
	}
	o := hermitOpts{params: trstree.DefaultParams()}
	for _, opt := range opts {
		opt(&o)
	}
	cfg := hermit.Config{
		TargetCol:    col,
		HostCol:      hostCol,
		PKCol:        t.pkCol,
		Scheme:       t.scheme,
		Params:       o.params,
		BuildWorkers: o.workers,
		Profile:      o.profile,
	}
	// Hosting on the primary index is only sound when it stores the same
	// identifier kind the Hermit lookup expects.
	if hostCol == t.pkCol && t.scheme == hermit.LogicalPointers {
		return nil, fmt.Errorf("engine: primary index cannot host under logical pointers (stores RIDs, not pks)")
	}
	hx, err := hermit.New(t.store, host, t.primary, cfg)
	if err != nil {
		return nil, err
	}
	t.hermits[col] = hx
	t.hostOf[col] = hostCol
	// Bind the latch of the structure the lookup will actually scan.
	t.hermitHostMu[col] = t.hostLatchFor(hostCol, host)
	return hx, nil
}

// CreateIndexAuto implements the paper's index-creation flow (§3): on an
// index request for col, the engine runs correlation discovery against the
// already-indexed columns; if a usable correlation exists it builds a
// Hermit index on the best host, otherwise it falls back to a complete
// B+-tree. It returns the kind actually built.
func (t *Table) CreateIndexAuto(col int, disc correlation.Config, opts ...HermitOption) (IndexKind, error) {
	t.catalog.RLock()
	hosts := make([]int, 0, len(t.secondary))
	for hc := range t.secondary {
		hosts = append(hosts, hc)
	}
	t.catalog.RUnlock()
	if t.scheme == hermit.PhysicalPointers {
		hosts = append(hosts, t.pkCol)
	}
	sort.Ints(hosts)
	m, ok, err := correlation.BestHost(t.store, col, hosts, disc)
	if err != nil {
		return KindNone, err
	}
	if ok {
		if _, err := t.CreateHermitIndex(col, m.Host, opts...); err != nil {
			return KindNone, err
		}
		return KindHermit, nil
	}
	if _, err := t.CreateBTreeIndex(col, true); err != nil {
		return KindNone, err
	}
	return KindBTree, nil
}

// CreateCMIndex builds a Correlation Map index on col against hostCol, for
// the Appendix E comparison. Physical pointers only (as in CM's original
// evaluation).
func (t *Table) CreateCMIndex(col, hostCol int, cfg cm.Config) (*cm.Index, error) {
	if col < 0 || col >= len(t.cols) || hostCol < 0 || hostCol >= len(t.cols) {
		return nil, ErrNoSuchColumn
	}
	t.catalog.Lock()
	defer t.catalog.Unlock()
	if _, dup := t.cms[col]; dup {
		return nil, ErrDupIndex
	}
	if t.scheme != hermit.PhysicalPointers {
		return nil, fmt.Errorf("engine: CM indexes require physical pointers")
	}
	host, ok := t.secondary[hostCol]
	if !ok {
		if hostCol != t.pkCol {
			return nil, ErrNoHostIndex
		}
		host = t.primary
	}
	cfg.TargetCol, cfg.HostCol = col, hostCol
	cx, err := cm.NewIndex(t.store, host, cfg)
	if err != nil {
		return nil, err
	}
	t.cms[col] = cx
	t.cmMu.add(col)
	t.cmHostOf[col] = hostCol
	t.cmHostMu[col] = t.hostLatchFor(hostCol, host)
	return cx, nil
}

// Errors returned by DropIndex.
var (
	// ErrNoSuchIndex is returned when no index of the requested kind exists
	// on the column.
	ErrNoSuchIndex = errors.New("engine: no such index")
	// ErrHostInUse is returned when a complete index still hosts a Hermit
	// or CM index; drop the dependents first.
	ErrHostInUse = errors.New("engine: index hosts a Hermit or CM index; drop dependents first")
)

// DropIndex removes the index of the given kind (KindBTree, KindHermit or
// KindCM) from col. A complete B+-tree cannot be dropped while a Hermit or
// CM index is bound to it as a host (the dependents' lookups scan it), and
// primary/composite indexes cannot be dropped at all. DDL takes the catalog
// latch exclusively, so in-flight queries drain before the structure goes
// away. It is the advisor's reclamation hook, but callers can use it
// directly.
func (t *Table) DropIndex(col int, kind IndexKind) error {
	if col < 0 || col >= len(t.cols) {
		return ErrNoSuchColumn
	}
	t.catalog.Lock()
	defer t.catalog.Unlock()
	switch kind {
	case KindHermit:
		if t.hermits[col] == nil {
			return fmt.Errorf("%w: no hermit index on column %d", ErrNoSuchIndex, col)
		}
		delete(t.hermits, col)
		delete(t.hostOf, col)
		delete(t.hermitHostMu, col)
		t.resetPathStats(col, PathHermit, PathTRSDirect)
	case KindCM:
		if t.cms[col] == nil {
			return fmt.Errorf("%w: no cm index on column %d", ErrNoSuchIndex, col)
		}
		delete(t.cms, col)
		delete(t.cmHostOf, col)
		delete(t.cmHostMu, col)
		t.resetPathStats(col, PathCM)
	case KindBTree:
		if t.secondary[col] == nil {
			return fmt.Errorf("%w: no btree index on column %d", ErrNoSuchIndex, col)
		}
		for target, host := range t.hostOf {
			if host == col {
				return fmt.Errorf("%w (hermit on column %d)", ErrHostInUse, target)
			}
		}
		for target, host := range t.cmHostOf {
			if host == col {
				return fmt.Errorf("%w (cm on column %d)", ErrHostInUse, target)
			}
		}
		delete(t.secondary, col)
		delete(t.newCols, col)
		t.resetPathStats(col, PathBTree)
		// The latchSet entry stays: queries racing past DDL resolve the
		// column's structures under the catalog latch and find the map
		// empty, never the latch.
	default:
		return fmt.Errorf("%w: kind %v is not droppable", ErrNoSuchIndex, kind)
	}
	return nil
}

// IndexKind identifies which mechanism serves a column.
type IndexKind int

const (
	// KindNone means the column has no index (queries fall back to scans).
	KindNone IndexKind = iota
	// KindBTree is a complete B+-tree secondary index (the Baseline).
	KindBTree
	// KindHermit is a Hermit (TRS-Tree + host index) index.
	KindHermit
	// KindCM is a Correlation Map index.
	KindCM
	// KindPrimary is the primary index.
	KindPrimary
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case KindBTree:
		return "btree"
	case KindHermit:
		return "hermit"
	case KindCM:
		return "cm"
	case KindPrimary:
		return "primary"
	default:
		return "none"
	}
}

// IndexOn reports which index kind serves queries on col (the routing
// priority Lookup uses).
func (t *Table) IndexOn(col int) IndexKind {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	return t.indexOnLocked(col)
}

// indexOnLocked is IndexOn with t.catalog already held.
func (t *Table) indexOnLocked(col int) IndexKind {
	switch {
	case t.hermits[col] != nil:
		return KindHermit
	case t.cms[col] != nil:
		return KindCM
	case t.secondary[col] != nil:
		return KindBTree
	case col == t.pkCol:
		return KindPrimary
	default:
		return KindNone
	}
}

// Hermit returns the Hermit index on col, if any.
func (t *Table) Hermit(col int) *hermit.Index {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	return t.hermits[col]
}

// Secondary returns the complete B+-tree index on col, if any.
func (t *Table) Secondary(col int) *btree.Tree {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	return t.secondary[col]
}

// CM returns the Correlation Map index on col, if any.
func (t *Table) CM(col int) *cm.Index {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	return t.cms[col]
}

// MemoryStats is the storage breakdown the paper's memory figures report.
type MemoryStats struct {
	TableBytes    uint64
	PrimaryBytes  uint64
	ExistingBytes uint64 // complete secondary indexes not marked new
	NewBytes      uint64 // new complete indexes + Hermit TRS-Trees + CMs
}

// Total returns the summed footprint.
func (m MemoryStats) Total() uint64 {
	return m.TableBytes + m.PrimaryBytes + m.ExistingBytes + m.NewBytes
}

// Memory returns the table's memory breakdown.
func (t *Table) Memory() MemoryStats {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	var m MemoryStats
	m.TableBytes = t.store.SizeBytes()
	t.primaryMu.RLock()
	m.PrimaryBytes = t.primary.SizeBytes()
	t.primaryMu.RUnlock()
	for col, tr := range t.secondary {
		mu := t.secondaryMu.get(col)
		mu.RLock()
		sz := tr.SizeBytes()
		mu.RUnlock()
		if t.newCols[col] {
			m.NewBytes += sz
		} else {
			m.ExistingBytes += sz
		}
	}
	for _, hx := range t.hermits {
		m.NewBytes += hx.SizeBytes() // TRS-Tree self-latches
	}
	for col, cx := range t.cms {
		mu := t.cmMu.get(col)
		mu.RLock()
		m.NewBytes += cx.SizeBytes()
		mu.RUnlock()
	}
	for key, tr := range t.composites {
		mu := t.compositeMu.get(key)
		mu.RLock()
		sz := tr.SizeBytes()
		mu.RUnlock()
		if t.compositeNew[key] {
			m.NewBytes += sz
		} else {
			m.ExistingBytes += sz
		}
	}
	for _, hx := range t.compositeHermits {
		m.NewBytes += hx.SizeBytes()
	}
	return m
}
