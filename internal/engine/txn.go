package engine

import (
	"errors"
	"fmt"
	"sort"

	"hermit/internal/storage"
)

// Errors returned by the transaction layer.
var (
	// ErrWriteConflict is returned by Txn.Commit when another transaction
	// committed a change to one of this transaction's written keys after
	// the snapshot was taken (first committer wins); nothing was applied.
	ErrWriteConflict = errors.New("engine: write-write conflict (first committer wins)")
	// ErrTxnDone is returned for operations on a committed or rolled-back
	// transaction.
	ErrTxnDone = errors.New("engine: transaction already committed or rolled back")
)

// Txn is a snapshot-isolation transaction: reads resolve against the
// snapshot taken at Begin, writes are buffered privately and become
// visible atomically at Commit, which detects write-write conflicts under
// the first-committer-wins rule. A transaction may span every table
// ordered by the same commit clock — including the per-partition tables of
// a partitioned table — and is not safe for concurrent use by multiple
// goroutines.
type Txn struct {
	clock  *Clock
	snap   *Snapshot
	writes map[*Table]map[float64]*txnWrite
	done   bool
}

// txnWrite is the buffered final state of one written key: a full row
// image (insert or update collapse to "this row exists with these values")
// or a deletion.
type txnWrite struct {
	row []float64 // nil for a delete
	del bool
}

// BeginTxn starts a transaction on the given commit clock. DB.Begin is the
// common entry point; partitioned tables begin on their shared clock.
func BeginTxn(clock *Clock) *Txn {
	return &Txn{
		clock:  clock,
		snap:   clock.Snapshot(),
		writes: make(map[*Table]map[float64]*txnWrite),
	}
}

// Begin starts a snapshot-isolation transaction on the database's clock.
func (db *DB) Begin() *Txn { return BeginTxn(db.clock) }

// Snapshot returns the transaction's read snapshot, valid until Commit or
// Rollback. Queries run through Table.RangeQueryAt against it observe the
// database as of Begin (buffered writes excluded; use Get for
// read-your-own-writes point lookups).
func (x *Txn) Snapshot() *Snapshot { return x.snap }

// effective returns the transaction's view of pk in t: the buffered write
// if any, else the version visible at the snapshot.
func (x *Txn) effective(t *Table, pk float64) (row []float64, live bool, err error) {
	if w := x.writes[t][pk]; w != nil {
		if w.del {
			return nil, false, nil
		}
		return w.row, true, nil
	}
	v := t.resolveVisible(pk, x.snap.ts)
	if v == nil {
		return nil, false, nil
	}
	r, err := t.store.Get(v.rid, nil)
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

func (x *Txn) buffer(t *Table, pk float64, w *txnWrite) {
	m := x.writes[t]
	if m == nil {
		m = make(map[float64]*txnWrite)
		x.writes[t] = m
	}
	m[pk] = w
}

// check validates that the transaction can still buffer writes against t.
func (x *Txn) check(t *Table) error {
	if x.done {
		return ErrTxnDone
	}
	if t.clock != x.clock {
		return fmt.Errorf("engine: table %q is ordered by a different commit clock", t.name)
	}
	return nil
}

// Insert buffers a row insert. Duplicate keys — visible at the snapshot or
// inserted earlier in this transaction — are rejected immediately.
func (x *Txn) Insert(t *Table, row []float64) error {
	if err := x.check(t); err != nil {
		return err
	}
	if len(row) != len(t.cols) {
		return storage.ErrBadRow
	}
	pk := row[t.pkCol]
	_, live, err := x.effective(t, pk)
	if err != nil {
		return err
	}
	if live {
		return fmt.Errorf("%w: %v", ErrDupKey, pk)
	}
	x.buffer(t, pk, &txnWrite{row: append([]float64(nil), row...)})
	return nil
}

// Delete buffers a delete, reporting whether the key was live in the
// transaction's view. Deletes of absent keys are not buffered (there is
// nothing to commit).
func (x *Txn) Delete(t *Table, pk float64) (bool, error) {
	if err := x.check(t); err != nil {
		return false, err
	}
	_, live, err := x.effective(t, pk)
	if err != nil || !live {
		return false, err
	}
	x.buffer(t, pk, &txnWrite{del: true})
	return true, nil
}

// Update buffers a single-column update against the transaction's view of
// the row (its own writes included). The primary-key column cannot change.
func (x *Txn) Update(t *Table, pk float64, col int, v float64) error {
	if err := x.check(t); err != nil {
		return err
	}
	if col == t.pkCol {
		return fmt.Errorf("engine: update: cannot change primary-key column %q (delete and re-insert)", t.cols[col])
	}
	if col < 0 || col >= len(t.cols) {
		return ErrNoSuchColumn
	}
	row, live, err := x.effective(t, pk)
	if err != nil {
		return err
	}
	if !live {
		return fmt.Errorf("engine: update: no row with pk %v", pk)
	}
	nw := append([]float64(nil), row...)
	nw[col] = v
	x.buffer(t, pk, &txnWrite{row: nw})
	return nil
}

// Get returns the transaction's view of pk: its own buffered write when
// present, else the row visible at the snapshot.
func (x *Txn) Get(t *Table, pk float64) ([]float64, bool, error) {
	if err := x.check(t); err != nil {
		return nil, false, err
	}
	row, live, err := x.effective(t, pk)
	if err != nil || !live {
		return nil, false, err
	}
	return append([]float64(nil), row...), true, nil
}

// Rollback discards the buffered writes and releases the snapshot. Safe to
// call after Commit (a no-op), so `defer x.Rollback()` always cleans up.
func (x *Txn) Rollback() {
	if x.done {
		return
	}
	x.done = true
	x.snap.Release()
}

// stamped describes one version stamping to perform under the commit lock.
type stamped struct {
	t    *Table
	pk   float64
	rid  storage.RID // new version's row (zero for pure deletes)
	old  *version    // superseded/deleted head (nil for pure inserts)
	kind byte        // 'i' insert, 'u' update, 'd' delete
}

// CommitResult reports where a committed transaction's writes landed.
type CommitResult struct {
	// TS is the commit timestamp.
	TS uint64
	// RIDs maps each written (table, key) to the new version's RID; pure
	// deletes are absent.
	RIDs map[*Table]map[float64]storage.RID
}

// Commit atomically applies the buffered writes: it validates every
// written key against the latest committed state (ErrWriteConflict when a
// later commit touched one — first committer wins), applies the version
// rows and index entries, and stamps them all with one new commit
// timestamp, so concurrent snapshots observe either the whole transaction
// or none of it. On any error nothing is applied. The transaction is done
// afterwards either way.
func (x *Txn) Commit() (CommitResult, error) {
	res := CommitResult{}
	if x.done {
		return res, ErrTxnDone
	}
	x.done = true
	defer x.snap.Release()
	if len(x.writes) == 0 {
		return res, nil
	}

	// Deterministic lock order: tables by tid, then stripes by index —
	// concurrent multi-key committers can never deadlock.
	tables := make([]*Table, 0, len(x.writes))
	for t := range x.writes {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(a, b int) bool { return tables[a].tid < tables[b].tid })
	for _, t := range tables {
		t.catalog.RLock()
		defer t.catalog.RUnlock()
	}
	type stripeRef struct {
		t *Table
		s uint64
	}
	var stripes []stripeRef
	for _, t := range tables {
		seen := make(map[uint64]bool)
		for pk := range x.writes[t] {
			s := stripeOf(pk)
			if !seen[s] {
				seen[s] = true
				stripes = append(stripes, stripeRef{t, s})
			}
		}
	}
	sort.Slice(stripes, func(a, b int) bool {
		if stripes[a].t.tid != stripes[b].t.tid {
			return stripes[a].t.tid < stripes[b].t.tid
		}
		return stripes[a].s < stripes[b].s
	})
	for _, sr := range stripes {
		sr.t.rows.stripes[sr.s].Lock()
		defer sr.t.rows.stripes[sr.s].Unlock()
	}

	// Validate: first committer wins. Chain heads are stable under the
	// stripes, so a clean validation here cannot be invalidated before the
	// stamp below.
	for _, t := range tables {
		for pk := range x.writes[t] {
			h := t.head(pk)
			if h != nil && (h.beginTS > x.snap.ts || (h.endTS != 0 && h.endTS > x.snap.ts)) {
				return res, fmt.Errorf("%w: key %v in table %q", ErrWriteConflict, pk, t.name)
			}
		}
	}

	// Apply: append version rows and index entries. Unstamped versions are
	// invisible, so readers cannot observe a partial transaction here.
	var pend []stamped
	for _, t := range tables {
		pks := make([]float64, 0, len(x.writes[t]))
		for pk := range x.writes[t] {
			pks = append(pks, pk)
		}
		sort.Float64s(pks) // deterministic apply order within a table
		for _, pk := range pks {
			w := x.writes[t][pk]
			h := t.head(pk)
			if w.del {
				if h != nil && h.endTS == 0 {
					pend = append(pend, stamped{t: t, pk: pk, old: h, kind: 'd'})
					t.writes.Add(1)
				}
				continue
			}
			rid, err := t.store.Insert(w.row)
			if err != nil {
				// Unreachable in practice (width validated at buffer time);
				// surface loudly rather than commit a partial transaction.
				return res, fmt.Errorf("engine: txn apply: %w", err)
			}
			t.movePrimary(pk, h, rid)
			t.insertIndexEntries(rid, w.row)
			t.writes.Add(1)
			for i, v := range w.row {
				t.runtime[i].widen(v)
			}
			st := stamped{t: t, pk: pk, rid: rid, old: h, kind: 'i'}
			if h != nil && h.endTS == 0 {
				st.kind = 'u'
			}
			pend = append(pend, st)
		}
	}

	// Stamp and publish: one commit timestamp for the whole transaction.
	c := x.clock
	c.commitMu.Lock()
	commitTS := c.ts.Load() + 1
	for _, s := range pend {
		switch s.kind {
		case 'i':
			s.t.stampInsert(s.rid, s.pk, commitTS)
		case 'u':
			s.t.stampUpdate(s.old, s.rid, commitTS)
		default:
			s.t.stampDelete(s.old, commitTS)
		}
	}
	c.ts.Store(commitTS)
	c.commitMu.Unlock()

	res.TS = commitTS
	res.RIDs = make(map[*Table]map[float64]storage.RID)
	for _, s := range pend {
		if s.kind == 'd' {
			continue
		}
		m := res.RIDs[s.t]
		if m == nil {
			m = make(map[float64]storage.RID)
			res.RIDs[s.t] = m
		}
		m[s.pk] = s.rid
	}
	return res, nil
}
