package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hermit/internal/hermit"
	"hermit/internal/pager"
	"hermit/internal/trstree"
)

// newDiskFixture loads a sensor-like table: col0 timestamp (pk), col1
// average reading (host), col2 sensor reading (target, nonlinear in avg).
func newDiskFixture(t testing.TB, n, poolPages int, seed int64) *DiskTable {
	t.Helper()
	dt, err := OpenDiskTable(t.TempDir(), []string{"ts", "avg", "s0"}, 0, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dt.Close() })
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		avg := rng.Float64() * 100
		s0 := 5 * math.Sqrt(avg) * avg / 10
		if rng.Float64() < 0.01 { // sparse sensor glitches -> outliers
			s0 = rng.Float64() * 500
		}
		if _, err := dt.Insert([]float64{float64(i), avg, s0}); err != nil {
			t.Fatal(err)
		}
	}
	return dt
}

func diskExpected(t *testing.T, dt *DiskTable, col int, lo, hi float64) []pager.HeapRID {
	t.Helper()
	var out []pager.HeapRID
	err := dt.heap.Scan(func(rid pager.HeapRID, row []float64) bool {
		if row[col] >= lo && row[col] <= hi {
			out = append(out, rid)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameHeapRIDs(a, b []pager.HeapRID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]pager.HeapRID(nil), a...)
	bs := append([]pager.HeapRID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestDiskTableValidation(t *testing.T) {
	if _, err := OpenDiskTable(t.TempDir(), []string{"a"}, 5, 8); err != ErrNoSuchColumn {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
	dt := newDiskFixture(t, 100, 8, 1)
	if _, err := dt.CreateDiskBTreeIndex(9); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
	if _, err := dt.CreateDiskHermitIndex(2, 1, trstree.DefaultParams()); err != ErrNoHostIndex {
		t.Fatal(err)
	}
	if _, err := dt.CreateDiskHermitIndex(9, 1, trstree.DefaultParams()); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
	if dt.String() == "" || dt.Len() != 100 {
		t.Fatal("accessors")
	}
}

func TestDiskHermitVsBaseline(t *testing.T) {
	dtH := newDiskFixture(t, 20000, 64, 2)
	dtB := newDiskFixture(t, 20000, 64, 2)
	if _, err := dtH.CreateDiskBTreeIndex(1); err != nil { // host
		t.Fatal(err)
	}
	if _, err := dtH.CreateDiskHermitIndex(2, 1, trstree.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := dtB.CreateDiskBTreeIndex(2); err != nil { // baseline complete index
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		lo := rng.Float64() * 400
		hi := lo + rng.Float64()*50
		rh, sh, err := dtH.RangeQuery(2, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		rb, sb, err := dtB.RangeQuery(2, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := diskExpected(t, dtH, 2, lo, hi)
		if !sameHeapRIDs(rh, want) {
			t.Fatalf("disk hermit wrong for [%v,%v]: got %d want %d", lo, hi, len(rh), len(want))
		}
		if !sameHeapRIDs(rb, want) {
			t.Fatalf("disk baseline wrong for [%v,%v]", lo, hi)
		}
		if sh.Kind != KindHermit || sb.Kind != KindBTree {
			t.Fatal("kinds")
		}
	}
}

func TestDiskProfileAndStats(t *testing.T) {
	dt := newDiskFixture(t, 10000, 32, 4)
	if _, err := dt.CreateDiskBTreeIndex(1); err != nil {
		t.Fatal(err)
	}
	hx, err := dt.CreateDiskHermitIndex(2, 1, trstree.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if hx.Tree() == nil {
		t.Fatal("Tree nil")
	}
	dt.SetProfile(true)
	dt.Pool().ResetStats()
	_, st, err := dt.RangeQuery(2, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if st.Breakdown[hermit.PhaseHostIndex] == 0 || st.Breakdown[hermit.PhaseBaseTable] == 0 {
		t.Fatalf("breakdown=%v", st.Breakdown)
	}
	ps := dt.Pool().Stats()
	if ps.Hits+ps.Misses == 0 {
		t.Fatal("no pool traffic recorded")
	}
	heapB, idxB, trsB := dt.DiskMemory()
	if heapB == 0 || idxB == 0 || trsB == 0 {
		t.Fatalf("memory: %d %d %d", heapB, idxB, trsB)
	}
	// TRS-Tree is tiny compared to the disk index (the §7.8 argument for
	// saving SSD budget).
	if trsB*4 > idxB {
		t.Fatalf("trs=%d not ≪ disk index=%d", trsB, idxB)
	}
}

func TestDiskUnindexedScanFallback(t *testing.T) {
	dt := newDiskFixture(t, 2000, 16, 5)
	rids, st, err := dt.RangeQuery(2, 10, 20)
	if err != nil || st.Kind != KindNone {
		t.Fatalf("kind=%v err=%v", st.Kind, err)
	}
	if !sameHeapRIDs(rids, diskExpected(t, dt, 2, 10, 20)) {
		t.Fatal("scan fallback wrong")
	}
	if _, _, err := dt.RangeQuery(9, 0, 1); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
}

func TestDiskInsertMaintainsIndexes(t *testing.T) {
	dt := newDiskFixture(t, 5000, 32, 6)
	if _, err := dt.CreateDiskBTreeIndex(1); err != nil {
		t.Fatal(err)
	}
	if _, err := dt.CreateDiskHermitIndex(2, 1, trstree.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	row := []float64{99999, 55, 123.456}
	if _, err := dt.Insert(row); err != nil {
		t.Fatal(err)
	}
	rids, _, err := dt.RangeQuery(2, 123.456, 123.456)
	if err != nil {
		t.Fatal(err)
	}
	if !sameHeapRIDs(rids, diskExpected(t, dt, 2, 123.456, 123.456)) {
		t.Fatal("inserted row not found through disk hermit")
	}
}

func TestDiskTinyPoolStillCorrect(t *testing.T) {
	// Squeeze everything through 4 frames: heavy eviction, same answers.
	dt := newDiskFixture(t, 5000, 4, 7)
	if _, err := dt.CreateDiskBTreeIndex(1); err != nil {
		t.Fatal(err)
	}
	if _, err := dt.CreateDiskHermitIndex(2, 1, trstree.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	rids, _, err := dt.RangeQuery(2, 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !sameHeapRIDs(rids, diskExpected(t, dt, 2, 50, 150)) {
		t.Fatal("tiny pool results wrong")
	}
	if dt.Pool().Stats().Evictions == 0 {
		t.Fatal("expected evictions with 4-frame pool")
	}
}
