package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hermit/internal/hermit"
	"hermit/internal/workload"
)

// buildConcurrentTable creates a Synthetic table with every single-column
// access path in play: primary on colA, complete B+-tree on colB (the
// host), Hermit on colC, and an unindexed payload colD.
func buildConcurrentTable(t *testing.T, rows int) *Table {
	t.Helper()
	db := NewDB(hermit.PhysicalPointers)
	spec := workload.SyntheticSpec{Rows: rows, Fn: workload.Linear, Noise: 0.05, Seed: 7}
	tb, err := db.CreateTable("synthetic", spec.Columns(), spec.PKCol())
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := tb.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateHermitIndex(spec.TargetCol(), spec.HostCol()); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestConcurrentReadersAndWriters hammers one table with parallel point,
// range and Hermit-index queries while writers insert, delete and update.
// It must pass under -race; result correctness is checked by validating
// every returned tuple against its predicate.
func TestConcurrentReadersAndWriters(t *testing.T) {
	const (
		rows       = 4000
		readers    = 6
		writers    = 3
		opsPerGoro = 400
	)
	tb := buildConcurrentTable(t, rows)
	spec := workload.SyntheticSpec{}

	var wg sync.WaitGroup
	var failures atomic.Int32
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	// Readers: one third point queries on the primary key, one third range
	// queries on the complete B+-tree, one third Hermit range queries.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			pointGen := workload.PointGen(0, rows, int64(100+r))
			rangeGen := workload.QueryGen(100, 2100, 0.02, int64(200+r))
			hermitGen := workload.QueryGen(0, workload.SyntheticSpan, 0.02, int64(300+r))
			for i := 0; i < opsPerGoro; i++ {
				switch r % 3 {
				case 0:
					pk := float64(int(pointGen()))
					rids, st, err := tb.PointQuery(spec.PKCol(), pk)
					if err != nil {
						fail("point query: %v", err)
						return
					}
					if st.Kind != KindPrimary || len(rids) > 1 {
						fail("point query on pk: kind %v, %d rids", st.Kind, len(rids))
						return
					}
				case 1:
					q := rangeGen()
					rids, st, err := tb.RangeQuery(spec.HostCol(), q.Lo, q.Hi)
					if err != nil {
						fail("btree range query: %v", err)
						return
					}
					if st.Kind != KindBTree {
						fail("host column served by %v, want btree", st.Kind)
						return
					}
					for _, rid := range rids {
						v, err := tb.Store().Value(rid, spec.HostCol())
						// A concurrent delete may tombstone a returned row;
						// a surviving row must satisfy the predicate.
						if err == nil && (v < q.Lo || v > q.Hi) {
							fail("btree range returned %v outside [%v, %v]", v, q.Lo, q.Hi)
							return
						}
					}
				default:
					q := hermitGen()
					_, st, err := tb.RangeQuery(spec.TargetCol(), q.Lo, q.Hi)
					if err != nil {
						fail("hermit range query: %v", err)
						return
					}
					if st.Kind != KindHermit {
						fail("target column served by %v, want hermit", st.Kind)
						return
					}
				}
			}
		}(r)
	}

	// Writers: each owns a disjoint pk band, cycling insert -> update ->
	// delete so writer-writer conflicts exercise the stripes without
	// double-insert errors.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := float64(rows + w*opsPerGoro)
			for i := 0; i < opsPerGoro; i++ {
				pk := base + float64(i)
				c := float64(i%1000) + 0.5
				row := []float64{pk, 2*c + 100, c, 0.25}
				if _, err := tb.Insert(row); err != nil {
					fail("insert pk %v: %v", pk, err)
					return
				}
				if err := tb.UpdateColumn(pk, 3, 0.75); err != nil {
					fail("update pk %v: %v", pk, err)
					return
				}
				if i%2 == 0 {
					found, err := tb.Delete(pk)
					if err != nil || !found {
						fail("delete pk %v: found=%v err=%v", pk, found, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d concurrent-access failures", failures.Load())
	}

	// The table must be structurally intact afterwards: every surviving
	// writer key answers a point query.
	for w := 0; w < writers; w++ {
		base := float64(rows + w*opsPerGoro)
		for i := 1; i < opsPerGoro; i += 2 {
			pk := base + float64(i)
			rids, _, err := tb.PointQuery(spec.PKCol(), pk)
			if err != nil {
				t.Fatalf("post-check pk %v: %v", pk, err)
			}
			if len(rids) != 1 {
				t.Fatalf("post-check pk %v: %d rids, want 1", pk, len(rids))
			}
		}
	}
}

// TestExecuteBatchMatchesSerial runs the same query batch through the
// worker pool and serially, and requires identical results.
func TestExecuteBatchMatchesSerial(t *testing.T) {
	tb := buildConcurrentTable(t, 3000)
	spec := workload.SyntheticSpec{}
	gen := workload.QueryGen(0, workload.SyntheticSpan, 0.05, 42)
	var ops []Op
	for i := 0; i < 200; i++ {
		q := gen()
		col := spec.TargetCol()
		if i%3 == 0 {
			col = spec.PKCol()
		}
		ops = append(ops, Op{Kind: OpRange, Col: col, Lo: q.Lo, Hi: q.Hi})
	}
	parallel := tb.ExecuteBatch(ops, 8)
	for i, op := range ops {
		rids, _, err := tb.RangeQuery(op.Col, op.Lo, op.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].Err != nil {
			t.Fatalf("op %d: %v", i, parallel[i].Err)
		}
		got := make(map[uint64]bool, len(parallel[i].RIDs))
		for _, rid := range parallel[i].RIDs {
			got[uint64(rid)] = true
		}
		if len(parallel[i].RIDs) != len(rids) {
			t.Fatalf("op %d: parallel %d rids, serial %d", i, len(parallel[i].RIDs), len(rids))
		}
		for _, rid := range rids {
			if !got[uint64(rid)] {
				t.Fatalf("op %d: missing rid %v", i, rid)
			}
		}
	}
}

// TestExecuteBatchMixed drives reads and writes through the executor
// across two tables and checks per-op results land at their positions.
func TestExecuteBatchMixed(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	for _, name := range []string{"a", "b"} {
		tb, err := db.CreateTable(name, []string{"id", "v"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := tb.Insert([]float64{float64(i), float64(i * 2)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var ops []Op
	for i := 0; i < 50; i++ {
		name := []string{"a", "b"}[i%2]
		switch i % 4 {
		case 0:
			ops = append(ops, Op{Table: name, Kind: OpInsert, Row: []float64{float64(1000 + i), 1}})
		case 1:
			ops = append(ops, Op{Table: name, Kind: OpPoint, Col: 0, Lo: float64(i)})
		case 2:
			ops = append(ops, Op{Table: name, Kind: OpUpdate, PK: float64(i), Col: 1, Value: -1})
		default:
			ops = append(ops, Op{Table: name, Kind: OpDelete, PK: float64(90 + i%10)})
		}
	}
	ops = append(ops, Op{Table: "missing", Kind: OpPoint, Col: 0, Lo: 1})
	results := db.ExecuteBatch(ops, 4)
	for i, op := range ops {
		r := results[i]
		if op.Table == "missing" {
			if r.Err == nil {
				t.Fatal("expected error for missing table")
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("op %d (%v on %s): %v", i, op.Kind, op.Table, r.Err)
		}
		if op.Kind == OpPoint && len(r.RIDs) != 1 {
			t.Fatalf("op %d: point query found %d rows", i, len(r.RIDs))
		}
	}
	// Inserted rows are queryable afterwards.
	for i := 0; i < 50; i += 4 {
		tb, _ := db.Table([]string{"a", "b"}[i%2])
		rids, _, err := tb.PointQuery(0, float64(1000+i))
		if err != nil || len(rids) != 1 {
			t.Fatalf("inserted pk %d: rids=%d err=%v", 1000+i, len(rids), err)
		}
	}
}

// TestExecuteBatchMalformedOps: batches are atomic transactions, so a
// malformed mutation must abort the whole batch — every mutation errors
// (the malformed one with its specific error, the rest with
// ErrTxnAborted), nothing is applied, and the process stays up.
func TestExecuteBatchMalformedOps(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("t", []string{"id", "v"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	results := tb.ExecuteBatch([]Op{
		{Kind: OpInsert, Row: []float64{7, 8}},     // valid, but aborted below
		{Kind: OpRange, Col: 99, Lo: 0, Hi: 1},     // bad column: per-op query error
		{Kind: OpInsert},                           // nil row: aborts the txn
		{Kind: OpInsert, Row: []float64{1}},        // never attempted
		{Kind: OpUpdate, PK: 7, Col: 99, Value: 0}, // never attempted
		{Kind: OpKind(42), Row: []float64{1, 2}},   // never attempted
	}, 4)
	for i, wantErr := range []bool{true, true, true, true, true, true} {
		if (results[i].Err != nil) != wantErr {
			t.Fatalf("op %d: err=%v, wantErr=%v", i, results[i].Err, wantErr)
		}
	}
	if !errors.Is(results[0].Err, ErrTxnAborted) {
		t.Fatalf("valid mutation in aborted batch: err=%v, want ErrTxnAborted", results[0].Err)
	}
	if errors.Is(results[2].Err, ErrTxnAborted) {
		t.Fatalf("failing op should carry its own error, got ErrTxnAborted")
	}
	if rids, _, err := tb.PointQuery(0, 7); err != nil || len(rids) != 0 {
		t.Fatalf("aborted batch leaked a row: rids=%d err=%v", len(rids), err)
	}
	// The same valid insert in a clean batch applies.
	clean := tb.ExecuteBatch([]Op{{Kind: OpInsert, Row: []float64{7, 8}}}, 1)
	if clean[0].Err != nil {
		t.Fatalf("clean batch: %v", clean[0].Err)
	}
	if rids, _, err := tb.PointQuery(0, 7); err != nil || len(rids) != 1 {
		t.Fatalf("clean batch not applied: rids=%d err=%v", len(rids), err)
	}
}

// TestQueryConcurrentAcrossIndexes issues batches that fan out over all
// index kinds at once, the "concurrent readers on different indexes never
// contend" property the latching is for.
func TestQueryConcurrentAcrossIndexes(t *testing.T) {
	tb := buildConcurrentTable(t, 3000)
	spec := workload.SyntheticSpec{}
	var reqs []RangeReq
	gen := workload.QueryGen(0, workload.SyntheticSpan, 0.03, 5)
	for i := 0; i < 120; i++ {
		q := gen()
		switch i % 3 {
		case 0:
			reqs = append(reqs, RangeReq{Col: spec.PKCol(), Lo: q.Lo, Hi: q.Hi})
		case 1:
			reqs = append(reqs, RangeReq{Col: spec.HostCol(), Lo: 2*q.Lo + 100, Hi: 2*q.Hi + 100})
		default:
			reqs = append(reqs, RangeReq{Col: spec.TargetCol(), Lo: q.Lo, Hi: q.Hi})
		}
	}
	for _, workers := range []int{1, 4, 16} {
		results := tb.QueryConcurrent(reqs, workers)
		if len(results) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d reqs", workers, len(results), len(reqs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d req %d: %v", workers, i, r.Err)
			}
		}
	}
}

// TestConcurrentInsertDuplicateKeys races many goroutines inserting the
// same keys; exactly one insert per key must win.
func TestConcurrentInsertDuplicateKeys(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("dup", []string{"id", "v"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 50
	const contenders = 8
	var wins atomic.Int32
	var wg sync.WaitGroup
	for c := 0; c < contenders; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				if _, err := tb.Insert([]float64{float64(k), float64(c)}); err == nil {
					wins.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if got := wins.Load(); got != keys {
		t.Fatalf("%d successful inserts for %d keys", got, keys)
	}
	if tb.Len() != keys {
		t.Fatalf("table has %d rows, want %d", tb.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		rids, _, err := tb.PointQuery(0, float64(k))
		if err != nil || len(rids) != 1 {
			t.Fatalf("key %d: rids=%d err=%v", k, len(rids), err)
		}
	}
}

// TestHermitHostLatchBoundAtCreation regression-tests the latch binding:
// a Hermit index hosted on the primary index must keep latching the
// primary even after a secondary B+-tree appears on the pk column, and
// lookups must stay race-free against concurrent writers.
func TestHermitHostLatchBoundAtCreation(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("t", []string{"id", "v"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := tb.Insert([]float64{float64(i), float64(i) * 1.5}); err != nil {
			t.Fatal(err)
		}
	}
	// Hermit on "v" hosted on the primary index (§5.2's pk-as-host case).
	if _, err := tb.CreateHermitIndex(1, 0); err != nil {
		t.Fatal(err)
	}
	if tb.hermitHostMu[1] != &tb.primaryMu {
		t.Fatal("hermit host latch not bound to primary")
	}
	// A complete index on the pk column created later must not steal the
	// binding: the lookup still scans the primary B+-tree.
	if _, err := tb.CreateBTreeIndex(0, true); err != nil {
		t.Fatal(err)
	}
	if tb.hermitHostMu[1] != &tb.primaryMu {
		t.Fatal("hermit host latch rebound away from primary by later DDL")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if _, err := tb.Insert([]float64{float64(10000 + i), float64(i)}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if _, _, err := tb.RangeQuery(1, 100, 200); err != nil {
				t.Errorf("hermit lookup: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestUpdatePrimaryKeyRejected: changing the pk column would desynchronise
// the primary index and the per-key stripes, so it must be refused
// unconditionally (even a same-value update, for consistent behaviour).
func TestUpdatePrimaryKeyRejected(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("t", []string{"id", "v"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert([]float64{5, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.UpdateColumn(5, 0, 9); err == nil {
		t.Fatal("pk change accepted")
	}
	if err := tb.UpdateColumn(5, 0, 5); err == nil {
		t.Fatal("same-value pk update accepted; rejection should be unconditional")
	}
	rids, _, err := tb.PointQuery(0, 5)
	if err != nil || len(rids) != 1 {
		t.Fatalf("row lost after rejected pk update: rids=%d err=%v", len(rids), err)
	}
}

// TestUpdateMaintainsCompositeIndexes: UpdateColumn must reindex composite
// B+-trees and composite Hermit indexes on either component, so RangeQuery2
// neither returns stale entries nor misses moved rows.
func TestUpdateMaintainsCompositeIndexes(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("t", []string{"id", "a", "n", "m"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		f := float64(i)
		// m tracks n so the composite Hermit correlation is usable.
		if _, err := tb.Insert([]float64{f, f / 10, f * 2, f*2 + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.CreateCompositeBTreeIndex(1, 2, false); err != nil { // (a, n)
		t.Fatal(err)
	}
	if _, err := tb.CreateCompositeHermitIndex(1, 3, 2); err != nil { // (a, m) over (a, n)
		t.Fatal(err)
	}
	// Move row 100's second component n: 200 -> 9000.
	if err := tb.UpdateColumn(100, 2, 9000); err != nil {
		t.Fatal(err)
	}
	if rids, _, err := tb.RangeQuery2(1, 10, 10, 2, 200, 200); err != nil || len(rids) != 0 {
		t.Fatalf("stale composite entry after n update: rids=%d err=%v", len(rids), err)
	}
	if rids, _, err := tb.RangeQuery2(1, 10, 10, 2, 9000, 9000); err != nil || len(rids) != 1 {
		t.Fatalf("moved row not found via composite: rids=%d err=%v", len(rids), err)
	}
	// Move row 200's leading component a: 20 -> 777.
	if err := tb.UpdateColumn(200, 1, 777); err != nil {
		t.Fatal(err)
	}
	if rids, _, err := tb.RangeQuery2(1, 20, 20, 2, 400, 400); err != nil || len(rids) != 0 {
		t.Fatalf("stale composite entry after a update: rids=%d err=%v", len(rids), err)
	}
	if rids, _, err := tb.RangeQuery2(1, 777, 777, 2, 400, 400); err != nil || len(rids) != 1 {
		t.Fatalf("moved row not found after a update: rids=%d err=%v", len(rids), err)
	}
	// Move row 300's composite-Hermit target m: 601 -> 5555; the (a, m)
	// lookup must validate correctly against the moved value.
	if err := tb.UpdateColumn(300, 3, 5555); err != nil {
		t.Fatal(err)
	}
	if rids, _, err := tb.RangeQuery2(1, 30, 30, 3, 601, 601); err != nil || len(rids) != 0 {
		t.Fatalf("stale composite hermit result: rids=%d err=%v", len(rids), err)
	}
	if rids, _, err := tb.RangeQuery2(1, 30, 30, 3, 5555, 5555); err != nil || len(rids) != 1 {
		t.Fatalf("moved target not found via composite hermit: rids=%d err=%v", len(rids), err)
	}
}

// TestConcurrentHermitReorg keeps Hermit lookups and writes running while
// forcing TRS-Tree reorganizations, the §4.4/Appendix B protocol.
func TestConcurrentHermitReorg(t *testing.T) {
	tb := buildConcurrentTable(t, 3000)
	spec := workload.SyntheticSpec{}
	hx := tb.Hermit(spec.TargetCol())
	if hx == nil {
		t.Fatal("no hermit index")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := workload.QueryGen(0, workload.SyntheticSpan, 0.05, 11)
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := gen()
			if _, _, err := tb.RangeQuery(spec.TargetCol(), q.Lo, q.Hi); err != nil {
				t.Errorf("lookup during reorg: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			pk := float64(100000 + i)
			c := float64(i % 1000)
			// Uncorrelated colB values land in outlier buffers and trigger
			// reorganization candidates.
			if _, err := tb.Insert([]float64{pk, 9e6, c, 0}); err != nil {
				t.Errorf("insert during reorg: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := hx.Tree().ReorgOnce(hx.Source()); err != nil {
			t.Fatalf("reorg: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
