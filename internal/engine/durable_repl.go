package engine

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"hermit/internal/storage"
	"hermit/internal/wal"
)

// This file is the DurableDB surface the replication layer (internal/repl)
// builds on. A leader ships raw WAL frames — tailed from the on-disk
// segments in LSN order — and a follower mirrors them into its own log
// with ReplAppend (so the follower's WAL is byte-for-byte a prefix of the
// leader's) while applying each committed group's effects atomically with
// ReplApplyGroup. Global LSNs (strictly increasing across segment
// rotations, see wal.Options.BaseLSN) are the stream's coordinate system.

// LastLSN returns the LSN of the last record written to the WAL — the
// database's position in the global replication sequence.
func (d *DurableDB) LastLSN() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.log.LastLSN()
}

// WALSize returns the current WAL segment's byte length. A replication
// follower uses it to decide when a checkpoint (and segment rotation) is
// due on its side.
func (d *DurableDB) WALSize() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.log.Size()
}

// WALPosition reports the current segment number, the global LSN it
// continues from (its base), and the last LSN written. A subscriber whose
// resume point is at or past base can be served from the live segment
// alone; one further behind needs a retained predecessor segment or a
// snapshot bootstrap.
func (d *DurableDB) WALPosition() (seg, base, last uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.walSeg, d.walBase, d.log.LastLSN()
}

// WatchWAL registers ch for non-blocking wakeups whenever the WAL grows
// (and on segment rotation, re-registered onto the successor segment).
// Tokens coalesce; a woken tailer reads until it runs dry. There is no
// unregister — channels live as long as the DurableDB.
func (d *DurableDB) WatchWAL(ch chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.walWatchers = append(d.walWatchers, ch)
	d.log.Watch(ch)
}

// Dir returns the database directory (where WAL segments live).
func (d *DurableDB) Dir() string { return d.dir }

// BumpTxnSeq advances the transaction-id sequence to at least floor. A
// promoted follower calls this with the largest transaction id seen in
// mirrored frames: those carried the old leader's ids, which may run past
// what this database's own recovery seeded, and a reused id would tangle
// a new transaction's frames with an orphaned in-flight group's.
func (d *DurableDB) BumpTxnSeq(floor uint64) {
	for {
		cur := d.txnSeq.Load()
		if cur >= floor || d.txnSeq.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// ReplSegment names one on-disk WAL segment a shipper can tail.
type ReplSegment struct {
	// Seg is the segment number; Path its file path.
	Seg  uint64
	Path string
	// Current marks the segment being appended to: its tail grows, while
	// every older segment is immutable.
	Current bool
}

// ReplWALSegments lists the WAL segments currently on disk, oldest first.
// Older segments are retained only up to DurableOptions.
// ReplRetainWALSegments, so a slow subscriber can find its resume point
// gone between a listing and an open — it must then re-list or fall back
// to snapshot bootstrap.
func (d *DurableDB) ReplWALSegments() []ReplSegment {
	d.mu.RLock()
	cur := d.walSeg
	d.mu.RUnlock()
	p := durablePaths{d.dir}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal.") && strings.HasSuffix(name, ".log") {
			if seg, ok := parseEpoch(name[len("wal.") : len(name)-len(".log")]); ok && seg <= cur {
				segs = append(segs, seg)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	out := make([]ReplSegment, len(segs))
	for i, seg := range segs {
		out[i] = ReplSegment{Seg: seg, Path: p.wal(seg), Current: seg == cur}
	}
	return out
}

// RecoveredPending returns the mutation records of transactions whose
// commit record had not reached the log when the database was last
// opened, keyed by transaction id. The frames are already durable here;
// only the commit decision is missing. A replication follower seeds its
// apply buffers from this so a group torn across a crash still applies
// exactly once when the leader re-ships its commit record.
func (d *DurableDB) RecoveredPending() map[uint64][]wal.Record {
	out := make(map[uint64][]wal.Record, len(d.recPending))
	for id, recs := range d.recPending {
		out[id] = append([]wal.Record(nil), recs...)
	}
	return out
}

// ReplAppend mirrors leader WAL records — with their original LSNs — into
// this database's log, in order. It does not apply their effects (that is
// ReplApplyGroup's job, gated on the commit record), so the follower's
// log can run ahead of its state by at most one in-flight transaction
// group, exactly like a leader crash mid-group. Records are submitted
// under the shared latch in one hold, so a concurrent checkpoint cannot
// rotate the segment mid-batch.
func (d *DurableDB) ReplAppend(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	d.mu.RLock()
	tks := make([]*wal.Ticket, 0, len(recs))
	var serr error
	for _, rec := range recs {
		tk, err := d.log.SubmitRaw(rec)
		if err != nil {
			serr = err
			break
		}
		tks = append(tks, tk)
	}
	d.mu.RUnlock()
	for _, tk := range tks {
		if _, err := tk.Wait(); err != nil && serr == nil {
			serr = err
		}
	}
	return serr
}

// isDDLOp reports whether op changes the catalog (and so must apply under
// the exclusive latch, as a group of its own).
func isDDLOp(op wal.Op) bool {
	switch op {
	case wal.OpCreateTable, wal.OpCreatePartitioned, wal.OpCreateIndex, wal.OpDropIndex:
		return true
	}
	return false
}

// ReplApplyGroup applies the effects of one committed record group — a
// transaction's mutations (without its begin/commit framing), a single
// auto-committed mutation, or a single DDL record. Mutation groups apply
// through an engine transaction, so every row becomes visible at one
// commit timestamp and snapshot reads on a follower can never observe a
// half-applied group. The records must already be in the local log (see
// ReplAppend); this call changes state only.
func (d *DurableDB) ReplApplyGroup(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if isDDLOp(recs[0].Op) {
		if len(recs) != 1 {
			return fmt.Errorf("engine: repl DDL group of %d records", len(recs))
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.apply(recs[0])
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	tx := BeginTxn(d.db.clock)
	for _, rec := range recs {
		tb, err := d.applyTarget(rec)
		if err != nil {
			tx.Rollback()
			return err
		}
		vals := decodeFloats(rec.Payload)
		switch rec.Op {
		case wal.OpInsert:
			err = tx.Insert(tb, vals)
		case wal.OpDelete:
			if len(vals) != 1 {
				err = fmt.Errorf("engine: malformed repl delete record")
				break
			}
			var found bool
			found, err = tx.Delete(tb, vals[0])
			if err == nil && !found {
				// The leader only logs deletes of present keys, so an absent
				// key here means the replica has diverged.
				err = fmt.Errorf("engine: repl delete of absent key %v in %q", vals[0], rec.Table)
			}
		case wal.OpUpdate:
			if len(vals) != 3 {
				err = fmt.Errorf("engine: malformed repl update record")
				break
			}
			err = tx.Update(tb, vals[0], int(vals[1]), vals[2])
		default:
			err = fmt.Errorf("engine: repl group carries op %d", rec.Op)
		}
		if err != nil {
			tx.Rollback()
			return err
		}
	}
	_, err := tx.Commit()
	return err
}

// ReplTableSnap is one logical table's full state in a snapshot bootstrap:
// schema, index definitions, and every live row (rows from all partitions
// merged — routing is a pure function of the primary key, so the receiver
// re-derives placement).
type ReplTableSnap struct {
	Name  string
	Cols  []string
	PKCol int
	Parts int
	Defs  []IndexDef
	Rows  [][]float64
}

// ReplSnap is a snapshot bootstrap image: the database's full state as of
// LSN, for initialising a follower too far behind the retained WAL.
type ReplSnap struct {
	// LSN is the cut: the image holds every effect with LSN <= this, and
	// none after. The receiver resumes its subscription at LSN.
	LSN    uint64
	Tables []ReplTableSnap
}

// ReplSnapshot captures a bootstrap image under the exclusive latch:
// writers are quiesced, the WAL is flushed, and the cut LSN plus every
// table's live rows are read in one consistent moment. Bootstrap is the
// rare path (a new or long-dead follower), so stalling writes for the
// scan is the simplicity-correctness trade taken here.
func (d *DurableDB) ReplSnapshot() (*ReplSnap, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.log.Sync(); err != nil {
		return nil, err
	}
	snap := &ReplSnap{LSN: d.log.LastLSN()}
	names := make([]string, 0, len(d.tables))
	for name := range d.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		meta := d.tables[name]
		ts := ReplTableSnap{
			Name:  name,
			Cols:  append([]string(nil), meta.Cols...),
			PKCol: meta.PKCol,
			Parts: meta.Partitions,
			Defs:  append([]IndexDef(nil), meta.Defs...),
		}
		for _, phys := range physicalNames(name, meta) {
			tb, err := d.db.Table(phys)
			if err != nil {
				return nil, err
			}
			tb.ScanLive(func(_ storage.RID, row []float64) bool {
				ts.Rows = append(ts.Rows, append([]float64(nil), row...))
				return true
			})
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap, nil
}

// ReplRestore initialises a freshly-created database from a bootstrap
// image: tables, rows and indexes apply unlogged, the WAL's base is reset
// to the image's cut LSN, and a checkpoint persists the whole state — so
// a restart recovers to exactly the cut, and the follower resumes its
// subscription at snap.LSN. The database must be empty (no tables, no
// logged records); anything else is a caller bug, rejected before any
// state changes. A crash before the checkpoint's manifest rename leaves a
// directory that recovers behind the cut, which the subscription
// handshake detects and answers with a fresh bootstrap.
func (d *DurableDB) ReplRestore(snap *ReplSnap) error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	d.mu.Lock()
	if len(d.tables) != 0 || d.log.Size() != wal.HeaderLen {
		d.mu.Unlock()
		return fmt.Errorf("engine: ReplRestore needs an empty database")
	}
	for _, ts := range snap.Tables {
		meta := &durableMeta{
			Cols:       append([]string(nil), ts.Cols...),
			PKCol:      ts.PKCol,
			Partitions: ts.Parts,
			Defs:       append([]IndexDef(nil), ts.Defs...),
		}
		for _, phys := range physicalNames(ts.Name, meta) {
			if _, err := d.db.CreateTable(phys, meta.Cols, meta.PKCol); err != nil {
				d.mu.Unlock()
				return err
			}
		}
		d.tables[ts.Name] = meta
		for _, row := range ts.Rows {
			phys := ts.Name
			if meta.Partitions > 0 {
				var pk float64
				if meta.PKCol < len(row) {
					pk = row[meta.PKCol]
				}
				phys = PartitionName(ts.Name, PartitionOf(pk, meta.Partitions))
			}
			tb, err := d.db.Table(phys)
			if err != nil {
				d.mu.Unlock()
				return err
			}
			if _, err := tb.Insert(row); err != nil {
				d.mu.Unlock()
				return fmt.Errorf("engine: restoring snapshot row in %q: %w", ts.Name, err)
			}
		}
		for _, phys := range physicalNames(ts.Name, meta) {
			tb, err := d.db.Table(phys)
			if err != nil {
				d.mu.Unlock()
				return err
			}
			for _, def := range meta.Defs {
				if err := applyIndexDef(tb, def); err != nil {
					d.mu.Unlock()
					return err
				}
			}
		}
	}
	if err := d.resetWALBaseLocked(snap.LSN); err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	return d.checkpointLocked()
}

// resetWALBaseLocked re-bases an empty current segment at lsn, so the next
// record appended (or mirrored via ReplAppend) numbers from lsn+1. Caller
// holds d.mu exclusively and d.ckptMu.
func (d *DurableDB) resetWALBaseLocked(lsn uint64) error {
	if d.log.Size() != wal.HeaderLen {
		return fmt.Errorf("engine: wal base reset on a non-empty segment")
	}
	if err := d.log.Close(); err != nil {
		return err
	}
	p := durablePaths{d.dir}
	wo := d.opts.walOptions()
	wo.BaseLSN = lsn
	log, err := wal.OpenWith(p.wal(d.walSeg), wo)
	if err != nil {
		return err
	}
	d.log = log
	d.walBase = lsn
	for _, ch := range d.walWatchers {
		log.Watch(ch)
	}
	return nil
}
