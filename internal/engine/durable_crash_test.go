package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hermit/internal/hermit"
)

// This file is the crash-injection suite: it simulates a process kill at
// every step boundary of the checkpoint and compaction protocols (via the
// failpoint hook) and after torn WAL appends, then verifies that recovery
// restores exactly the acknowledged state — no lost writes, no
// double-applied rows or blocks.

var errInjectedCrash = errors.New("injected crash")

// crashOpts disables the background compactor so failpoint wiring cannot
// race with a concurrent compaction round; rotation stays off by default
// (the incremental path) and is forced per-test with WALRotateBytes: 1.
func crashOpts(rotate bool) DurableOptions {
	opts := DurableOptions{DisableAutoCompact: true, WALRotateBytes: -1}
	if rotate {
		opts.WALRotateBytes = 1
	}
	return opts
}

// checkpointSteps probes the failpoint labels a checkpoint of the given
// database emits, in order, so the crash sweep stays in sync with the
// protocol if steps are added or renamed.
func checkpointSteps(t *testing.T, build func(t *testing.T, dir string) *DurableDB) []string {
	t.Helper()
	dir := t.TempDir()
	d := build(t, dir)
	var steps []string
	d.failpoint = func(step string) error {
		steps = append(steps, step)
		return nil
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if len(steps) < 5 {
		t.Fatalf("checkpoint probe saw only %d steps: %v", len(steps), steps)
	}
	return steps
}

// buildCrashDBOpts creates the standard crash-test database: a
// checkpointed prefix (so the sweep exercises a second, incremental
// checkpoint over a previous one — the double-apply window) plus a logged
// tail of inserts, a delete and an update.
func buildCrashDBOpts(opts DurableOptions) func(t *testing.T, dir string) *DurableDB {
	return func(t *testing.T, dir string) *DurableDB {
		t.Helper()
		d, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
		if err != nil {
			t.Fatal(err)
		}
		populateDurable(t, d, 600, 11)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 600; i < 700; i++ {
			c := float64(i % 1000)
			if _, err := d.Insert("syn", []float64{float64(i), 2*c + 100, c, 0}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Delete("syn", 42); err != nil {
			t.Fatal(err)
		}
		if err := d.UpdateColumn("syn", 43, 2, 1234.5); err != nil {
			t.Fatal(err)
		}
		return d
	}
}

// verifyCrashDB checks the exact acknowledged state of buildCrashDBOpts.
func verifyCrashDB(t *testing.T, d *DurableDB, ctx string) {
	t.Helper()
	tb, err := d.Table("syn")
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if tb.Len() != 699 { // 700 inserts - 1 delete; a double apply or a lost write breaks this
		t.Fatalf("%s: recovered %d rows, want 699", ctx, tb.Len())
	}
	if n, err := d.RecoverySkipped(); n != 0 {
		t.Fatalf("%s: %d records skipped during recovery (last: %v)", ctx, n, err)
	}
	if tb.IndexOn(2) != KindHermit {
		t.Fatalf("%s: hermit index not rebuilt", ctx)
	}
	if rids, _, err := tb.PointQuery(0, 42); err != nil || len(rids) != 0 {
		t.Fatalf("%s: deleted row resurrected: %v %v", ctx, rids, err)
	}
	if rids, _, err := tb.RangeQuery(2, 1234.5, 1234.5); err != nil || len(rids) != 1 {
		t.Fatalf("%s: updated row wrong: %v %v", ctx, rids, err)
	}
}

// TestCheckpointCrashAtEveryStep kills a checkpoint at each step boundary
// of its protocol — in both incremental (shared WAL segment) and rotating
// modes — and verifies full recovery, including that the database keeps
// working (mutations + a clean checkpoint) after the recovery.
func TestCheckpointCrashAtEveryStep(t *testing.T) {
	for _, mode := range []struct {
		name   string
		rotate bool
	}{{"incremental", false}, {"rotating", true}} {
		t.Run(mode.name, func(t *testing.T) {
			opts := crashOpts(mode.rotate)
			build := buildCrashDBOpts(opts)
			steps := checkpointSteps(t, build)
			t.Logf("checkpoint protocol steps (%s): %v", mode.name, steps)
			if mode.rotate {
				if !containsStep(steps, "after-new-wal") || containsStep(steps, "after-swap") {
					t.Fatalf("rotating checkpoint took the wrong path: %v", steps)
				}
			} else if containsStep(steps, "after-new-wal") || !containsStep(steps, "after-swap") {
				t.Fatalf("incremental checkpoint took the wrong path: %v", steps)
			}
			for _, step := range steps {
				t.Run(step, func(t *testing.T) {
					dir := t.TempDir()
					d := build(t, dir)
					d.failpoint = func(s string) error {
						if s == step {
							return fmt.Errorf("%w at %s", errInjectedCrash, s)
						}
						return nil
					}
					if err := d.Checkpoint(); !errors.Is(err, errInjectedCrash) {
						// "after-gc" is past the checkpoint's effects, but the
						// error must still be surfaced.
						t.Fatalf("failpoint not hit: %v", err)
					}
					// The crashed process's in-memory state dies with it; Close
					// only releases file handles (it appends nothing).
					if err := d.Close(); err != nil {
						t.Fatal(err)
					}

					d2, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
					if err != nil {
						t.Fatalf("recovery after crash at %q: %v", step, err)
					}
					verifyCrashDB(t, d2, "after recovery")

					// The recovered database must be fully operational: more
					// mutations, a clean checkpoint, and a second recovery.
					for i := 700; i < 750; i++ {
						c := float64(i % 1000)
						if _, err := d2.Insert("syn", []float64{float64(i), 2*c + 100, c, 0}); err != nil {
							t.Fatal(err)
						}
					}
					if err := d2.Checkpoint(); err != nil {
						t.Fatalf("checkpoint after recovery: %v", err)
					}
					if err := d2.Close(); err != nil {
						t.Fatal(err)
					}
					d3, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
					if err != nil {
						t.Fatal(err)
					}
					defer d3.Close()
					tb, _ := d3.Table("syn")
					if tb.Len() != 749 {
						t.Fatalf("post-recovery state lost: %d rows, want 749", tb.Len())
					}
				})
			}
		})
	}
}

func containsStep(steps []string, want string) bool {
	for _, s := range steps {
		if s == want {
			return true
		}
	}
	return false
}

// TestCheckpointCrashDoubleApplyWindow pins the historical bug: a crash
// after the manifest publish but before the rotated-out WAL segment is
// discarded must not replay the old segment on top of the new blocks.
func TestCheckpointCrashDoubleApplyWindow(t *testing.T) {
	dir := t.TempDir()
	d := buildCrashDBOpts(crashOpts(true))(t, dir)
	d.failpoint = func(s string) error {
		if s == "after-manifest-rename" {
			return errInjectedCrash
		}
		return nil
	}
	if err := d.Checkpoint(); !errors.Is(err, errInjectedCrash) {
		t.Fatalf("failpoint not hit: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Both WAL segments exist on disk at this point — the crash window.
	p := durablePaths{dir}
	if _, err := os.Stat(p.wal(1)); err != nil {
		t.Fatalf("old segment missing, window not reproduced: %v", err)
	}
	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatalf("recovery double-applied the WAL: %v", err)
	}
	defer d2.Close()
	verifyCrashDB(t, d2, "double-apply window")
	// Recovery must have garbage-collected the superseded segment.
	if _, err := os.Stat(p.wal(1)); !os.IsNotExist(err) {
		t.Fatalf("stale WAL segment not collected: %v", err)
	}
}

// buildCompactDB creates a database with a compaction-ready blocklist:
// four incremental checkpoints leave four level-0 blocks on one table
// (with overlapping keys and a tombstone), so a fan-in-2 compactor has
// work at every level.
func buildCompactDB(t *testing.T, dir string) *DurableDB {
	t.Helper()
	opts := crashOpts(false)
	opts.CompactFanIn = 2
	d, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 4; ck++ {
		for i := 0; i < 30; i++ {
			pk := float64(ck*20 + i) // overlapping ranges across checkpoints
			if _, err := d.Insert("t", []float64{pk, float64(ck)}); err != nil && ck == 0 {
				t.Fatal(err)
			} else if err != nil {
				// Overlap rows already exist: update them instead so every
				// delta block carries the key again.
				if uerr := d.UpdateColumn("t", pk, 1, float64(ck)); uerr != nil {
					t.Fatal(uerr)
				}
			}
		}
		if ck == 2 {
			if _, err := d.Delete("t", 5); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// verifyCompactDB checks buildCompactDB's logical state: pks 0..89 with
// pk 5 deleted, latest value per key.
func verifyCompactDB(t *testing.T, d *DurableDB, ctx string) {
	t.Helper()
	tb, err := d.Table("t")
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if tb.Len() != 89 {
		t.Fatalf("%s: %d rows, want 89", ctx, tb.Len())
	}
	if rids, _, err := tb.PointQuery(0, 5); err != nil || len(rids) != 0 {
		t.Fatalf("%s: tombstoned row resurrected: %v %v", ctx, rids, err)
	}
	// pk 60 was written only by the last checkpoint (ck=3): value 3.
	rids, _, err := tb.PointQuery(0, 60)
	if err != nil || len(rids) != 1 {
		t.Fatalf("%s: pk 60: %v %v", ctx, rids, err)
	}
	if v, _ := tb.Store().Value(rids[0], 1); v != 3 {
		t.Fatalf("%s: pk 60 v=%v, want 3", ctx, v)
	}
}

// compactionSteps probes the failpoint labels one compaction round emits.
func compactionSteps(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	d := buildCompactDB(t, dir)
	var steps []string
	d.failpoint = func(step string) error {
		steps = append(steps, step)
		return nil
	}
	merged, err := d.Compact()
	if err != nil || !merged {
		t.Fatalf("compaction probe: merged=%v err=%v", merged, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if len(steps) < 4 {
		t.Fatalf("compaction probe saw only %d steps: %v", len(steps), steps)
	}
	return steps
}

// TestCompactionCrashAtEveryStep kills a compaction round at each step
// boundary and verifies that recovery sees the same logical state — a
// merge either fully publishes or fully vanishes, never a double apply.
func TestCompactionCrashAtEveryStep(t *testing.T) {
	steps := compactionSteps(t)
	t.Logf("compaction protocol steps: %v", steps)
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			d := buildCompactDB(t, dir)
			d.failpoint = func(s string) error {
				if s == step {
					return fmt.Errorf("%w at %s", errInjectedCrash, s)
				}
				return nil
			}
			if _, err := d.Compact(); !errors.Is(err, errInjectedCrash) {
				t.Fatalf("failpoint not hit: %v", err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, err := OpenDurable(dir, hermit.LogicalPointers)
			if err != nil {
				t.Fatalf("recovery after compaction crash at %q: %v", step, err)
			}
			verifyCompactDB(t, d2, "after recovery")
			// And the blocklist must still compact to completion afterwards.
			for {
				merged, err := d2.Compact()
				if err != nil {
					t.Fatal(err)
				}
				if !merged {
					break
				}
			}
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			d3, err := OpenDurable(dir, hermit.LogicalPointers)
			if err != nil {
				t.Fatal(err)
			}
			defer d3.Close()
			verifyCompactDB(t, d3, "after full compaction")
		})
	}
}

// TestCheckpointBoundedStall is the regression for the latch-across-flush
// bug: an incremental checkpoint must release the durable latch before
// writing blocks, so concurrent mutations see only the short swap window,
// not a stall proportional to the delta size.
func TestCheckpointBoundedStall(t *testing.T) {
	dir := t.TempDir()
	d := buildCrashDBOpts(crashOpts(false))(t, dir)
	defer d.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	d.failpoint = func(s string) error {
		if s == "after-swap" {
			close(entered)
			<-release
		}
		return nil
	}
	ckptDone := make(chan error, 1)
	go func() { ckptDone <- d.Checkpoint() }()
	<-entered
	// The checkpoint is parked inside its write phase. A mutation must
	// complete anyway — it may not block until the checkpoint finishes.
	insDone := make(chan error, 1)
	go func() {
		_, err := d.Insert("syn", []float64{9000, 1, 2, 3})
		insDone <- err
	}()
	select {
	case err := <-insDone:
		if err != nil {
			t.Fatalf("insert during checkpoint write phase: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mutation stalled for the whole checkpoint write phase (latch held across flush)")
	}
	close(release)
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}
	// The concurrent insert committed after the cut: it must survive via
	// the WAL tail both before and after the next checkpoint.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb, _ := d2.Table("syn")
	if rids, _, err := tb.PointQuery(0, 9000); err != nil || len(rids) != 1 {
		t.Fatalf("insert overlapping checkpoint lost: %v %v", rids, err)
	}
}

// TestDurableDuplicatePKDoesNotPoisonWAL is the regression for the WAL
// poisoning bug: a rejected mutation (duplicate primary key) must not leave
// a record that aborts every subsequent recovery.
func TestDurableDuplicatePKDoesNotPoisonWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("t", []float64{1, 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("t", []float64{1, 11}); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	// The same classes of rejection for the other mutations.
	if err := d.UpdateColumn("t", 1, 0, 2); err == nil {
		t.Fatal("primary-key update accepted")
	}
	if _, err := d.Insert("t", []float64{2}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := d.Insert("t", []float64{3, 30}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatalf("reopen after rejected mutations: %v", err)
	}
	defer d2.Close()
	if n, serr := d2.RecoverySkipped(); n != 0 {
		t.Fatalf("%d poisoned records hit replay (last: %v)", n, serr)
	}
	tb, _ := d2.Table("t")
	if tb.Len() != 2 {
		t.Fatalf("recovered %d rows, want 2", tb.Len())
	}
	rids, _, err := tb.PointQuery(1, 10)
	if err != nil || len(rids) != 1 {
		t.Fatalf("first insert's value lost: %v %v", rids, err)
	}
}

// TestDurableTornTailThenMoreWrites is the regression for the torn-tail
// append bug: writes accepted after recovering from a torn tail must be
// replayable (the tail must be truncated before reopening for append).
func TestDurableTornTailThenMoreWrites(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := d.Insert("t", []float64{float64(i), float64(i) * 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: tear the final frame.
	walPath := durablePaths{dir}.wal(0)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := d2.Table("t")
	if tb.Len() != 49 { // the torn insert is lost (it was never acknowledged as synced)
		t.Fatalf("recovered %d rows, want 49", tb.Len())
	}
	// Writes after the torn-tail recovery — the bug made these unreachable.
	for i := 100; i < 120; i++ {
		if _, err := d2.Insert("t", []float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	d3, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	tb3, _ := d3.Table("t")
	if tb3.Len() != 69 {
		t.Fatalf("recovered %d rows, want 69 (post-tear writes shadowed behind the torn tail)", tb3.Len())
	}
	for _, pk := range []float64{0, 48, 100, 119} {
		if rids, _, err := tb3.PointQuery(0, pk); err != nil || len(rids) != 1 {
			t.Fatalf("pk %v lost: %v %v", pk, rids, err)
		}
	}
}

// TestDurableSyncPoliciesRecover exercises each sync policy end to end:
// acknowledged writes must recover regardless of policy.
func TestDurableSyncPoliciesRecover(t *testing.T) {
	for _, opts := range []DurableOptions{
		{Policy: SyncNever},
		{Policy: SyncGroup, GroupInterval: 200 * time.Microsecond},
		{Policy: SyncAlways},
	} {
		t.Run(opts.Policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				if _, err := d.Insert("t", []float64{float64(i), 1}); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			tb, _ := d2.Table("t")
			if tb.Len() != 40 {
				t.Fatalf("recovered %d rows, want 40", tb.Len())
			}
		})
	}
}

// TestDurableCheckpointRotatesEpochs verifies the on-disk layout across
// repeated rotating checkpoints: exactly one segment and one blocklist
// epoch survive, and only referenced block files remain.
func TestDurableCheckpointRotatesEpochs(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableOptions(dir, hermit.LogicalPointers, crashOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 3; ck++ {
		for i := 0; i < 20; i++ {
			pk := float64(ck*100 + i)
			if _, err := d.Insert("t", []float64{pk, pk}); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := d.StorageStats()
	if st.Epoch != 3 || st.WALSegment != 3 || st.Blocks != 3 {
		t.Fatalf("unexpected storage state: %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	p := durablePaths{dir}
	if _, err := os.Stat(p.wal(3)); err != nil {
		t.Fatalf("segment-3 WAL missing: %v", err)
	}
	if _, err := os.Stat(p.blocklist(3)); err != nil {
		t.Fatalf("epoch-3 blocklist missing: %v", err)
	}
	for _, stale := range []string{p.wal(0), p.wal(1), p.wal(2), p.blocklist(1), p.blocklist(2)} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Fatalf("stale artifact %s survived rotation", stale)
		}
	}
	// Exactly the three delta blocks the checkpoints flushed remain.
	blks, err := filepath.Glob(filepath.Join(dir, "*.blk"))
	if err != nil || len(blks) != 3 {
		t.Fatalf("want 3 block files, got %v (%v)", blks, err)
	}
	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb, _ := d2.Table("t")
	if tb.Len() != 60 {
		t.Fatalf("recovered %d rows, want 60", tb.Len())
	}
}

// TestDurableOldManifestRejected: a pre-block manifest (version 4, one
// rows file per table) must be rejected loudly, not silently reopened as
// an empty database.
func TestDurableOldManifestRejected(t *testing.T) {
	dir := t.TempDir()
	old := `{"version": 4, "scheme": 0, "epoch": 2, "wal_start": 0, "tables": {}}`
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, hermit.LogicalPointers); err == nil {
		t.Fatal("version-4 manifest accepted")
	}
}
