package engine

import (
	"sync"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// QueryStats describes one query's execution for the throughput and
// breakdown experiments.
type QueryStats struct {
	// Kind is the index mechanism that served the query.
	Kind IndexKind
	// Path is the access path the planner executed (finer-grained than
	// Kind: PathHermit and PathTRSDirect both report KindHermit).
	Path AccessPath
	// Rows is the number of qualifying tuples.
	Rows int
	// Candidates counts tuples fetched before validation (equals Rows for
	// exact mechanisms).
	Candidates int
	// Breakdown holds per-phase time when the table's profile flag is on.
	// For the baseline the phases map to: secondary index (PhaseHostIndex),
	// primary index (PhasePrimaryIndex), base table (PhaseBaseTable).
	Breakdown hermit.Breakdown
}

// FalsePositiveRatio of this query.
func (q QueryStats) FalsePositiveRatio() float64 {
	if q.Candidates == 0 {
		return 0
	}
	return 1 - float64(q.Rows)/float64(q.Candidates)
}

// RangeQuery returns the RIDs of rows with lo <= col <= hi, routed through
// the access path the cost-based planner estimates cheapest (see
// planner.go); SetRouting(RouteStatic) restores the fixed pre-planner
// priority (Hermit, then CM, then a complete B+-tree, then the primary
// index, then a full scan). Execution results — hit counts, false-positive
// ratios, sampled latencies — are fed back into the planner's per-path
// statistics. Queries hold only the catalog read latch (shared with all
// other queries and writers) plus the read latch of the index structures
// they traverse, so concurrent queries on different indexes do not contend.
func (t *Table) RangeQuery(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	if col < 0 || col >= len(t.cols) {
		return nil, QueryStats{}, ErrNoSuchColumn
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	var chosen AccessPath
	var modelCost float64
	if RoutingMode(t.routing.Load()) == RouteCost {
		var ests [numPaths]PathEstimate
		chosen, ests, _, _ = t.planLocked(col, lo, hi)
		modelCost = ests[chosen].Cost
	} else {
		chosen = t.staticPathLocked(col)
	}
	// Latency is sampled (1 in latencySampleMask+1) so the feedback loop
	// does not tax every query with clock reads.
	timed := t.runtime[col].paths[chosen].count.Load()&latencySampleMask == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	rids, st, err := t.execPathLocked(chosen, col, lo, hi)
	if err != nil {
		return nil, st, err
	}
	var elapsed time.Duration
	if timed {
		elapsed = time.Since(t0)
	}
	t.recordQuery(col, chosen, modelCost, elapsed, st)
	st.Path = chosen
	return rids, st, nil
}

// staticPathLocked is the fixed pre-planner routing priority; t.catalog is
// held shared.
func (t *Table) staticPathLocked(col int) AccessPath {
	return pathForKind(t.indexOnLocked(col))
}

// rangeQueryLocked routes a single-column predicate through the static
// priority; t.catalog is held shared. (The composite two-column fallback
// uses it so RangeQuery2's behaviour is independent of the planner.)
func (t *Table) rangeQueryLocked(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	return t.execPathLocked(t.staticPathLocked(col), col, lo, hi)
}

// execPathLocked executes the predicate over one access path; t.catalog is
// held shared. The caller guarantees the path is available (planLocked or
// staticPathLocked).
func (t *Table) execPathLocked(path AccessPath, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	switch path {
	case PathHermit:
		// The Hermit lookup traverses its self-latching TRS-Tree, then the
		// host index, then (under logical pointers) the primary index; the
		// latter two are engine-latched. Acquire host before primary — the
		// reader-side lock order writers never invert (latches.go).
		hostMu := t.hermitHostMu[col]
		hostMu.RLock()
		var pMu *sync.RWMutex
		if t.scheme == hermit.LogicalPointers && hostMu != &t.primaryMu {
			pMu = &t.primaryMu
			pMu.RLock()
		}
		res := t.hermits[col].Lookup(lo, hi)
		if pMu != nil {
			pMu.RUnlock()
		}
		hostMu.RUnlock()
		return res.RIDs, QueryStats{
			Kind:       KindHermit,
			Rows:       len(res.RIDs),
			Candidates: res.Candidates,
			Breakdown:  res.Breakdown,
		}, nil
	case PathCM:
		// CM lookups read the bucket map and scan the host index (CM is
		// physical-pointers only, so no primary hop).
		cmMu := t.cmMu.get(col)
		cmMu.RLock()
		hostMu := t.cmHostMu[col]
		hostMu.RLock()
		res := t.cms[col].Lookup(lo, hi)
		hostMu.RUnlock()
		cmMu.RUnlock()
		return res.RIDs, QueryStats{
			Kind:       KindCM,
			Rows:       len(res.RIDs),
			Candidates: res.Candidates,
		}, nil
	case PathBTree:
		return t.baselineRange(t.secondary[col], t.secondaryMu.get(col), KindBTree, lo, hi)
	case PathPrimary:
		return t.primaryRange(lo, hi)
	case PathTRSDirect:
		return t.trsDirectRange(col, lo, hi)
	default:
		return t.scanRange(col, lo, hi)
	}
}

// PointQuery returns the RIDs of rows with col == v.
func (t *Table) PointQuery(col int, v float64) ([]storage.RID, QueryStats, error) {
	return t.RangeQuery(col, v, v)
}

// baselineRange executes the conventional secondary-index plan: index scan,
// optional primary-index resolution (logical pointers), base-table fetch.
// This is the Baseline of every figure. mu is the scanned index's latch.
func (t *Table) baselineRange(idx interface {
	Scan(lo, hi float64, fn func(key float64, id uint64) bool)
}, mu *sync.RWMutex, kind IndexKind, lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: kind}
	profile := t.profile.Load()
	var t0 time.Time
	if profile {
		t0 = time.Now()
	}
	var ids []uint64
	mu.RLock()
	idx.Scan(lo, hi, func(_ float64, id uint64) bool {
		ids = append(ids, id)
		return true
	})
	mu.RUnlock()
	if profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	var rids []storage.RID
	if t.scheme == hermit.LogicalPointers {
		rids = make([]storage.RID, 0, len(ids))
		t.primaryMu.RLock()
		for _, pk := range ids {
			if v, ok := t.primary.First(float64(pk)); ok {
				rids = append(rids, storage.RID(v))
			}
		}
		t.primaryMu.RUnlock()
		if profile {
			st.Breakdown[hermit.PhasePrimaryIndex] += time.Since(t0)
			t0 = time.Now()
		}
	} else {
		rids = make([]storage.RID, len(ids))
		for i, id := range ids {
			rids[i] = storage.RID(id)
		}
	}
	// Base-table access: the baseline also touches every returned tuple
	// (the query fetches the rows), which is where the physical-pointer
	// bottleneck shifts in Figs. 10–11.
	out := rids[:0]
	for _, rid := range rids {
		if _, err := t.store.Value(rid, t.pkCol); err == nil {
			out = append(out, rid)
		}
	}
	if profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(out)
	st.Candidates = len(out)
	return out, st, nil
}

// primaryRange serves range queries on the primary-key column. The
// base-table touch doubles as a liveness filter: a concurrent Delete that
// completes after the primary latch is released below can tombstone rows
// whose RIDs were already harvested into rids. (Delete removes the primary
// entry before tombstoning the store row, so a held latch never observes a
// primary entry pointing at a tombstone — the window is entirely in this
// local buffer.)
func (t *Table) primaryRange(lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindPrimary}
	var rids []storage.RID
	t.primaryMu.RLock()
	t.primary.Scan(lo, hi, func(_ float64, v uint64) bool {
		rids = append(rids, storage.RID(v))
		return true
	})
	t.primaryMu.RUnlock()
	out := rids[:0]
	for _, rid := range rids {
		if _, err := t.store.Value(rid, t.pkCol); err == nil {
			out = append(out, rid)
		}
	}
	st.Rows, st.Candidates = len(out), len(out)
	return out, st, nil
}

// scanRange is the unindexed fallback: a full table scan.
func (t *Table) scanRange(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindNone}
	var rids []storage.RID
	err := t.store.ScanColumn(col, func(rid storage.RID, v float64) bool {
		if v >= lo && v <= hi {
			rids = append(rids, rid)
		}
		return true
	})
	if err != nil {
		return nil, st, err
	}
	st.Rows, st.Candidates = len(rids), len(rids)
	return rids, st, nil
}

// FetchRows materialises rows for a RID list (what a real query plan would
// do after index retrieval); the buffer is reused across calls via dst.
func (t *Table) FetchRows(rids []storage.RID, dst [][]float64) ([][]float64, error) {
	if cap(dst) < len(rids) {
		dst = make([][]float64, 0, len(rids))
	}
	dst = dst[:0]
	for _, rid := range rids {
		row, err := t.store.Get(rid, nil)
		if err != nil {
			return nil, err
		}
		dst = append(dst, row)
	}
	return dst, nil
}
