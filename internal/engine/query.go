package engine

import (
	"time"

	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// QueryStats describes one query's execution for the throughput and
// breakdown experiments.
type QueryStats struct {
	// Kind is the index mechanism that served the query.
	Kind IndexKind
	// Rows is the number of qualifying tuples.
	Rows int
	// Candidates counts tuples fetched before validation (equals Rows for
	// exact mechanisms).
	Candidates int
	// Breakdown holds per-phase time when the table's profile flag is on.
	// For the baseline the phases map to: secondary index (PhaseHostIndex),
	// primary index (PhasePrimaryIndex), base table (PhaseBaseTable).
	Breakdown hermit.Breakdown
}

// FalsePositiveRatio of this query.
func (q QueryStats) FalsePositiveRatio() float64 {
	if q.Candidates == 0 {
		return 0
	}
	return 1 - float64(q.Rows)/float64(q.Candidates)
}

// RangeQuery returns the RIDs of rows with lo <= col <= hi, routed through
// the best available index: Hermit, then CM, then a complete B+-tree, then
// the primary index, then a full scan.
func (t *Table) RangeQuery(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	if col < 0 || col >= len(t.cols) {
		return nil, QueryStats{}, ErrNoSuchColumn
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rangeQueryLocked(col, lo, hi)
}

// rangeQueryLocked routes a single-column predicate; t.mu is held.
func (t *Table) rangeQueryLocked(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	switch kind := t.IndexOn(col); kind {
	case KindHermit:
		res := t.hermits[col].Lookup(lo, hi)
		return res.RIDs, QueryStats{
			Kind:       kind,
			Rows:       len(res.RIDs),
			Candidates: res.Candidates,
			Breakdown:  res.Breakdown,
		}, nil
	case KindCM:
		res := t.cms[col].Lookup(lo, hi)
		return res.RIDs, QueryStats{
			Kind:       kind,
			Rows:       len(res.RIDs),
			Candidates: res.Candidates,
		}, nil
	case KindBTree:
		return t.baselineRange(t.secondary[col], kind, lo, hi)
	case KindPrimary:
		return t.primaryRange(lo, hi)
	default:
		return t.scanRange(col, lo, hi)
	}
}

// PointQuery returns the RIDs of rows with col == v.
func (t *Table) PointQuery(col int, v float64) ([]storage.RID, QueryStats, error) {
	return t.RangeQuery(col, v, v)
}

// baselineRange executes the conventional secondary-index plan: index scan,
// optional primary-index resolution (logical pointers), base-table fetch.
// This is the Baseline of every figure.
func (t *Table) baselineRange(idx interface {
	Scan(lo, hi float64, fn func(key float64, id uint64) bool)
}, kind IndexKind, lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: kind}
	var t0 time.Time
	if t.profile {
		t0 = time.Now()
	}
	var ids []uint64
	idx.Scan(lo, hi, func(_ float64, id uint64) bool {
		ids = append(ids, id)
		return true
	})
	if t.profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	var rids []storage.RID
	if t.scheme == hermit.LogicalPointers {
		rids = make([]storage.RID, 0, len(ids))
		for _, pk := range ids {
			if v, ok := t.primary.First(float64(pk)); ok {
				rids = append(rids, storage.RID(v))
			}
		}
		if t.profile {
			st.Breakdown[hermit.PhasePrimaryIndex] += time.Since(t0)
			t0 = time.Now()
		}
	} else {
		rids = make([]storage.RID, len(ids))
		for i, id := range ids {
			rids[i] = storage.RID(id)
		}
	}
	// Base-table access: the baseline also touches every returned tuple
	// (the query fetches the rows), which is where the physical-pointer
	// bottleneck shifts in Figs. 10–11.
	out := rids[:0]
	for _, rid := range rids {
		if _, err := t.store.Value(rid, t.pkCol); err == nil {
			out = append(out, rid)
		}
	}
	if t.profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(out)
	st.Candidates = len(out)
	return out, st, nil
}

// primaryRange serves range queries on the primary-key column.
func (t *Table) primaryRange(lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindPrimary}
	var rids []storage.RID
	t.primary.Scan(lo, hi, func(_ float64, v uint64) bool {
		rids = append(rids, storage.RID(v))
		return true
	})
	st.Rows, st.Candidates = len(rids), len(rids)
	return rids, st, nil
}

// scanRange is the unindexed fallback: a full table scan.
func (t *Table) scanRange(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindNone}
	var rids []storage.RID
	err := t.store.ScanColumn(col, func(rid storage.RID, v float64) bool {
		if v >= lo && v <= hi {
			rids = append(rids, rid)
		}
		return true
	})
	if err != nil {
		return nil, st, err
	}
	st.Rows, st.Candidates = len(rids), len(rids)
	return rids, st, nil
}

// FetchRows materialises rows for a RID list (what a real query plan would
// do after index retrieval); the buffer is reused across calls via dst.
func (t *Table) FetchRows(rids []storage.RID, dst [][]float64) ([][]float64, error) {
	if cap(dst) < len(rids) {
		dst = make([][]float64, 0, len(rids))
	}
	dst = dst[:0]
	for _, rid := range rids {
		row, err := t.store.Get(rid, nil)
		if err != nil {
			return nil, err
		}
		dst = append(dst, row)
	}
	return dst, nil
}
