package engine

import (
	"sync"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// QueryStats describes one query's execution for the throughput and
// breakdown experiments.
type QueryStats struct {
	// Kind is the index mechanism that served the query.
	Kind IndexKind
	// Path is the access path the planner executed (finer-grained than
	// Kind: PathHermit and PathTRSDirect both report KindHermit).
	Path AccessPath
	// Rows is the number of qualifying tuples.
	Rows int
	// Candidates counts tuples fetched before validation (equals Rows for
	// exact mechanisms).
	Candidates int
	// Breakdown holds per-phase time when the table's profile flag is on.
	// For the baseline the phases map to: secondary index (PhaseHostIndex),
	// primary index (PhasePrimaryIndex), base table (PhaseBaseTable).
	Breakdown hermit.Breakdown
}

// FalsePositiveRatio of this query.
func (q QueryStats) FalsePositiveRatio() float64 {
	if q.Candidates == 0 {
		return 0
	}
	return 1 - float64(q.Rows)/float64(q.Candidates)
}

// RangeQuery returns the RIDs of rows with lo <= col <= hi, reading at a
// snapshot of the latest commit timestamp. It routes through the access
// path the cost-based planner estimates cheapest (see planner.go);
// SetRouting(RouteStatic) restores the fixed pre-planner priority (Hermit,
// then CM, then a complete B+-tree, then the primary index, then a full
// scan). Execution results — hit counts, false-positive ratios, sampled
// latencies — are fed back into the planner's per-path statistics. Queries
// hold only the catalog read latch (shared with all other queries and
// writers) plus the read latch of the index structures they traverse, so
// concurrent queries on different indexes do not contend, and writers
// never block snapshot reads.
func (t *Table) RangeQuery(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	snap := t.clock.Snapshot()
	defer snap.Release()
	return t.RangeQueryAt(snap, col, lo, hi)
}

// RangeQueryAt is RangeQuery reading at the caller's snapshot: every index
// still returns candidate RIDs, but visibility is resolved per candidate
// against the snapshot's commit timestamp, so the result reflects exactly
// the state at Snapshot time no matter what commits concurrently.
func (t *Table) RangeQueryAt(snap *Snapshot, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	if col < 0 || col >= len(t.cols) {
		return nil, QueryStats{}, ErrNoSuchColumn
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	var chosen AccessPath
	var modelCost float64
	if RoutingMode(t.routing.Load()) == RouteCost {
		var ests [numPaths]PathEstimate
		chosen, ests, _, _ = t.planLocked(col, lo, hi)
		modelCost = ests[chosen].Cost
	} else {
		chosen = t.staticPathLocked(col)
	}
	// Latency is sampled (1 in latencySampleMask+1) so the feedback loop
	// does not tax every query with clock reads.
	timed := t.runtime[col].paths[chosen].count.Load()&latencySampleMask == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	rids, st, err := t.execPathLocked(snap, chosen, col, lo, hi)
	if err != nil {
		return nil, st, err
	}
	var elapsed time.Duration
	if timed {
		elapsed = time.Since(t0)
	}
	t.recordQuery(col, chosen, modelCost, elapsed, st)
	st.Path = chosen
	return rids, st, nil
}

// staticPathLocked is the fixed pre-planner routing priority; t.catalog is
// held shared.
func (t *Table) staticPathLocked(col int) AccessPath {
	return pathForKind(t.indexOnLocked(col))
}

// rangeQueryLocked routes a single-column predicate through the static
// priority; t.catalog is held shared. (The composite two-column fallback
// uses it so RangeQuery2's behaviour is independent of the planner.)
func (t *Table) rangeQueryLocked(snap *Snapshot, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	return t.execPathLocked(snap, t.staticPathLocked(col), col, lo, hi)
}

// execPathLocked executes the predicate over one access path at the given
// snapshot; t.catalog is held shared. The caller guarantees the path is
// available (planLocked or staticPathLocked).
func (t *Table) execPathLocked(snap *Snapshot, path AccessPath, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	switch path {
	case PathHermit:
		if t.scheme == hermit.LogicalPointers {
			return t.hermitLogicalRange(snap, col, lo, hi)
		}
		// The Hermit lookup traverses its self-latching TRS-Tree, then the
		// host index; both candidate harvesting and validation run against
		// immutable version rows, so the engine only filters visibility.
		hostMu := t.hermitHostMu[col]
		hostMu.RLock()
		res := t.hermits[col].Lookup(lo, hi)
		hostMu.RUnlock()
		rids := t.filterVersions(snap, res.RIDs)
		return rids, QueryStats{
			Kind:       KindHermit,
			Rows:       len(rids),
			Candidates: res.Candidates,
			Breakdown:  res.Breakdown,
		}, nil
	case PathCM:
		// CM lookups read the bucket map and scan the host index (CM is
		// physical-pointers only, so candidates are version RIDs).
		cmMu := t.cmMu.get(col)
		cmMu.RLock()
		hostMu := t.cmHostMu[col]
		hostMu.RLock()
		res := t.cms[col].Lookup(lo, hi)
		hostMu.RUnlock()
		cmMu.RUnlock()
		rids := t.filterVersions(snap, res.RIDs)
		return rids, QueryStats{
			Kind:       KindCM,
			Rows:       len(rids),
			Candidates: res.Candidates,
		}, nil
	case PathBTree:
		return t.baselineRange(snap, t.secondary[col], t.secondaryMu.get(col), KindBTree, col, lo, hi)
	case PathPrimary:
		return t.primaryRange(snap, lo, hi)
	case PathTRSDirect:
		return t.trsDirectRange(snap, col, lo, hi)
	default:
		return t.scanRange(snap, col, lo, hi)
	}
}

// filterVersions keeps the candidates whose version is visible at the
// snapshot. Exact for candidate sets that are per-version (every index
// keeps one entry per version, and a version's row is immutable, so a
// validated candidate either is the visible incarnation of its key or is
// filtered here; the visible incarnation always appears among the
// candidates through its own entries).
func (t *Table) filterVersions(snap *Snapshot, rids []storage.RID) []storage.RID {
	out := rids[:0]
	t.verMu.RLock()
	for _, rid := range rids {
		if visibleAt(t.verOf[rid], snap.ts) {
			out = append(out, rid)
		}
	}
	t.verMu.RUnlock()
	return out
}

// hermitLogicalRange executes the Hermit mechanism under logical pointers
// with MVCC-aware resolution: TRS-Tree ranges are scanned on the host
// index as usual, but the harvested primary keys resolve through the
// version chains to the incarnation visible at the snapshot (instead of
// the primary index's newest entry), which is then validated against the
// target predicate.
func (t *Table) hermitLogicalRange(snap *Snapshot, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	hx := t.hermits[col]
	st := QueryStats{Kind: KindHermit}
	profile := t.profile.Load()
	var t0 time.Time
	if profile {
		t0 = time.Now()
	}
	tres := hx.Tree().Lookup(lo, hi)
	if profile {
		st.Breakdown[hermit.PhaseTRSTree] += time.Since(t0)
		t0 = time.Now()
	}
	ids := tres.IDs // outlier identifiers are primary keys under this scheme
	hostMu := t.hermitHostMu[col]
	hostMu.RLock()
	host := t.secondary[t.hostOf[col]]
	if host == nil {
		// pk-hosted indexes are rejected at creation under logical
		// pointers, so the host B+-tree always exists here; guard anyway.
		hostMu.RUnlock()
		return nil, st, ErrNoHostIndex
	}
	for _, r := range tres.Ranges {
		host.Scan(r.Lo, r.Hi, func(_ float64, id uint64) bool {
			ids = append(ids, id)
			return true
		})
	}
	hostMu.RUnlock()
	if profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	// Resolve each candidate key to its visible incarnation (the MVCC
	// replacement for the primary-index hop) ...
	seen := make(map[uint64]struct{}, len(ids))
	resolved := make([]storage.RID, 0, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if v := t.resolveVisible(float64(id), snap.ts); v != nil {
			resolved = append(resolved, v.rid)
		}
	}
	st.Candidates = len(seen)
	if profile {
		st.Breakdown[hermit.PhasePrimaryIndex] += time.Since(t0)
		t0 = time.Now()
	}
	// ... then validate the target predicate against the base table.
	rids := resolved[:0]
	for _, rid := range resolved {
		m, err := t.store.Value(rid, col)
		if err == nil && m >= lo && m <= hi {
			rids = append(rids, rid)
		}
	}
	if profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(rids)
	return rids, st, nil
}

// PointQuery returns the RIDs of rows with col == v at a snapshot of the
// latest commit timestamp.
func (t *Table) PointQuery(col int, v float64) ([]storage.RID, QueryStats, error) {
	return t.RangeQuery(col, v, v)
}

// PointQueryAt is PointQuery reading at the caller's snapshot.
func (t *Table) PointQueryAt(snap *Snapshot, col int, v float64) ([]storage.RID, QueryStats, error) {
	return t.RangeQueryAt(snap, col, v, v)
}

// baselineRange executes the conventional secondary-index plan: index
// scan, then visibility resolution. This is the Baseline of every figure.
// mu is the scanned index's latch. Under physical pointers candidates are
// version RIDs filtered directly; under logical pointers they are primary
// keys resolved through the version chains, with the predicate re-checked
// on the visible incarnation (whose value may differ from the harvested
// entry's version).
func (t *Table) baselineRange(snap *Snapshot, idx interface {
	Scan(lo, hi float64, fn func(key float64, id uint64) bool)
}, mu *sync.RWMutex, kind IndexKind, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: kind}
	profile := t.profile.Load()
	var t0 time.Time
	if profile {
		t0 = time.Now()
	}
	var ids []uint64
	mu.RLock()
	idx.Scan(lo, hi, func(_ float64, id uint64) bool {
		ids = append(ids, id)
		return true
	})
	mu.RUnlock()
	if profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	var rids []storage.RID
	if t.scheme == hermit.LogicalPointers {
		rids = make([]storage.RID, 0, len(ids))
		seen := make(map[uint64]struct{}, len(ids))
		for _, pk := range ids {
			if _, dup := seen[pk]; dup {
				continue
			}
			seen[pk] = struct{}{}
			v := t.resolveVisible(float64(pk), snap.ts)
			if v == nil {
				continue
			}
			m, err := t.store.Value(v.rid, col)
			if err == nil && m >= lo && m <= hi {
				rids = append(rids, v.rid)
			}
		}
		if profile {
			st.Breakdown[hermit.PhasePrimaryIndex] += time.Since(t0)
			t0 = time.Now()
		}
		st.Rows, st.Candidates = len(rids), len(seen)
		return rids, st, nil
	}
	rids = make([]storage.RID, len(ids))
	for i, id := range ids {
		rids[i] = storage.RID(id)
	}
	out := t.filterVersions(snap, rids)
	if profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(out)
	st.Candidates = len(ids)
	return out, st, nil
}

// primaryRange serves range queries on the primary-key column. The
// primary index keeps one entry per key (pointing at the newest version),
// so each harvested key resolves through its version chain to the
// incarnation visible at the snapshot; the key value itself is shared by
// every version, so no predicate re-check is needed.
func (t *Table) primaryRange(snap *Snapshot, lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindPrimary}
	var pks []float64
	t.primaryMu.RLock()
	t.primary.Scan(lo, hi, func(pk float64, _ uint64) bool {
		pks = append(pks, pk)
		return true
	})
	t.primaryMu.RUnlock()
	rids := make([]storage.RID, 0, len(pks))
	for _, pk := range pks {
		if v := t.resolveVisible(pk, snap.ts); v != nil {
			rids = append(rids, v.rid)
		}
	}
	st.Rows, st.Candidates = len(rids), len(pks)
	return rids, st, nil
}

// scanRange is the unindexed fallback: a full table scan over every
// version row, filtered by predicate and visibility.
func (t *Table) scanRange(snap *Snapshot, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindNone}
	var rids []storage.RID
	err := t.store.ScanColumn(col, func(rid storage.RID, v float64) bool {
		if v >= lo && v <= hi {
			rids = append(rids, rid)
		}
		return true
	})
	if err != nil {
		return nil, st, err
	}
	st.Candidates = len(rids)
	rids = t.filterVersions(snap, rids)
	st.Rows = len(rids)
	return rids, st, nil
}

// FetchRows materialises rows for a RID list (what a real query plan would
// do after index retrieval); the buffer is reused across calls via dst.
func (t *Table) FetchRows(rids []storage.RID, dst [][]float64) ([][]float64, error) {
	if cap(dst) < len(rids) {
		dst = make([][]float64, 0, len(rids))
	}
	dst = dst[:0]
	for _, rid := range rids {
		row, err := t.store.Get(rid, nil)
		if err != nil {
			return nil, err
		}
		dst = append(dst, row)
	}
	return dst, nil
}
