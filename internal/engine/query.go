package engine

import (
	"sync"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// QueryStats describes one query's execution for the throughput and
// breakdown experiments.
type QueryStats struct {
	// Kind is the index mechanism that served the query.
	Kind IndexKind
	// Path is the access path the planner executed (finer-grained than
	// Kind: PathHermit and PathTRSDirect both report KindHermit).
	Path AccessPath
	// Rows is the number of qualifying tuples.
	Rows int
	// Candidates counts tuples fetched before validation (equals Rows for
	// exact mechanisms).
	Candidates int
	// Breakdown holds per-phase time when the table's profile flag is on.
	// For the baseline the phases map to: secondary index (PhaseHostIndex),
	// primary index (PhasePrimaryIndex), base table (PhaseBaseTable).
	Breakdown hermit.Breakdown
}

// FalsePositiveRatio of this query.
func (q QueryStats) FalsePositiveRatio() float64 {
	if q.Candidates == 0 {
		return 0
	}
	return 1 - float64(q.Rows)/float64(q.Candidates)
}

// queryScratch holds the harvest buffers one query execution reuses. The
// objects are pooled package-wide so a steady-state read allocates
// nothing: candidate keys, ids, and RIDs land in recycled backing arrays,
// and the pre-bound append callbacks (method values created once per
// scratch object) keep index Scan calls from minting a fresh closure per
// query. Scratch memory never escapes into query results — results go to
// the caller's dst buffer or a fresh allocation — so returning the object
// to the pool is always safe.
//
// Pool discipline: scratch is acquired after all latches the path takes
// are decided and is released before the query returns; it interacts with
// no latch, so it adds nothing to the lock order.
type queryScratch struct {
	pks  []float64
	ids  []uint64
	rids []storage.RID
	res  []storage.RID
	seen map[uint64]struct{}

	// appendPK/appendID append a scanned entry into pks/ids; bound once
	// here so Scan callbacks do not allocate per query.
	appendPK func(pk float64, id uint64) bool
	appendID func(key float64, id uint64) bool
}

// Scratch retention caps: a query that harvested an unusually large
// candidate set (a full-table scan, say) must not pin that memory in the
// pool forever.
const (
	maxScratchEntries = 1 << 16
	maxScratchSeen    = 1 << 12
)

var queryScratchPool = sync.Pool{New: func() any {
	sc := &queryScratch{seen: make(map[uint64]struct{})}
	sc.appendPK = func(pk float64, _ uint64) bool { sc.pks = append(sc.pks, pk); return true }
	sc.appendID = func(_ float64, id uint64) bool { sc.ids = append(sc.ids, id); return true }
	return sc
}}

// getScratch draws a scratch object from the pool.
func getScratch() *queryScratch { return queryScratchPool.Get().(*queryScratch) }

// putScratch resets and returns a scratch object to the pool, dropping
// oversized backing arrays.
func putScratch(sc *queryScratch) {
	if cap(sc.pks) > maxScratchEntries {
		sc.pks = nil
	}
	if cap(sc.ids) > maxScratchEntries {
		sc.ids = nil
	}
	if cap(sc.rids) > maxScratchEntries {
		sc.rids = nil
	}
	if cap(sc.res) > maxScratchEntries {
		sc.res = nil
	}
	sc.pks, sc.ids = sc.pks[:0], sc.ids[:0]
	sc.rids, sc.res = sc.rids[:0], sc.res[:0]
	if len(sc.seen) > maxScratchSeen {
		sc.seen = make(map[uint64]struct{})
	} else {
		clear(sc.seen)
	}
	queryScratchPool.Put(sc)
}

// resultBuf returns the buffer query results are appended into: the
// caller's dst (reset to length zero), or a fresh allocation sized for n
// results when no dst was supplied.
func resultBuf(dst []storage.RID, n int) []storage.RID {
	if dst == nil && n > 0 {
		return make([]storage.RID, 0, n)
	}
	return dst[:0]
}

// RangeQuery returns the RIDs of rows with lo <= col <= hi, reading at a
// snapshot of the latest commit timestamp. It routes through the access
// path the cost-based planner estimates cheapest (see planner.go);
// SetRouting(RouteStatic) restores the fixed pre-planner priority (Hermit,
// then CM, then a complete B+-tree, then the primary index, then a full
// scan). Execution results — hit counts, false-positive ratios, sampled
// latencies — are fed back into the planner's per-path statistics. Queries
// hold only the catalog read latch (shared with all other queries and
// writers) plus the read latch of the index structures they traverse, so
// concurrent queries on different indexes do not contend, and writers
// never block snapshot reads.
func (t *Table) RangeQuery(col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	snap := t.clock.Snapshot()
	defer snap.Recycle()
	return t.RangeQueryAtInto(snap, col, lo, hi, nil)
}

// RangeQueryInto is RangeQuery with a caller-supplied result buffer: the
// matching RIDs are appended into dst[:0] and the (possibly grown) buffer
// is returned. A caller that carries dst across queries amortises the
// result allocation away entirely; dst may be nil for a fresh buffer.
func (t *Table) RangeQueryInto(col int, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	snap := t.clock.Snapshot()
	defer snap.Recycle()
	return t.RangeQueryAtInto(snap, col, lo, hi, dst)
}

// RangeQueryAt is RangeQuery reading at the caller's snapshot: every index
// still returns candidate RIDs, but visibility is resolved per candidate
// against the snapshot's commit timestamp, so the result reflects exactly
// the state at Snapshot time no matter what commits concurrently.
func (t *Table) RangeQueryAt(snap *Snapshot, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	return t.RangeQueryAtInto(snap, col, lo, hi, nil)
}

// RangeQueryAtInto is RangeQueryAt with a caller-supplied result buffer
// (see RangeQueryInto for the dst contract). With a reused dst a warm
// query on an exact path allocates nothing.
func (t *Table) RangeQueryAtInto(snap *Snapshot, col int, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	if col < 0 || col >= len(t.cols) {
		return nil, QueryStats{}, ErrNoSuchColumn
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	var chosen AccessPath
	var modelCost float64
	if RoutingMode(t.routing.Load()) == RouteCost {
		var ests [numPaths]PathEstimate
		chosen, ests, _, _ = t.planLocked(col, lo, hi)
		modelCost = ests[chosen].Cost
	} else {
		chosen = t.staticPathLocked(col)
	}
	// Latency is sampled (1 in latencySampleMask+1) so the feedback loop
	// does not tax every query with clock reads.
	timed := t.runtime[col].paths[chosen].count.Load()&latencySampleMask == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	rids, st, err := t.execPathLocked(snap, chosen, col, lo, hi, dst)
	if err != nil {
		return nil, st, err
	}
	var elapsed time.Duration
	if timed {
		elapsed = time.Since(t0)
	}
	t.recordQuery(col, chosen, modelCost, elapsed, st)
	st.Path = chosen
	return rids, st, nil
}

// staticPathLocked is the fixed pre-planner routing priority; t.catalog is
// held shared.
func (t *Table) staticPathLocked(col int) AccessPath {
	return pathForKind(t.indexOnLocked(col))
}

// rangeQueryLocked routes a single-column predicate through the static
// priority; t.catalog is held shared. (The composite two-column fallback
// uses it so RangeQuery2's behaviour is independent of the planner.)
func (t *Table) rangeQueryLocked(snap *Snapshot, col int, lo, hi float64) ([]storage.RID, QueryStats, error) {
	return t.execPathLocked(snap, t.staticPathLocked(col), col, lo, hi, nil)
}

// execPathLocked executes the predicate over one access path at the given
// snapshot; t.catalog is held shared. The caller guarantees the path is
// available (planLocked or staticPathLocked). Results are appended into
// dst when non-nil (see RangeQueryInto); with nil dst each path falls back
// to its own allocation.
func (t *Table) execPathLocked(snap *Snapshot, path AccessPath, col int, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	switch path {
	case PathHermit:
		if t.scheme == hermit.LogicalPointers {
			return t.hermitLogicalRange(snap, col, lo, hi, dst)
		}
		// The Hermit lookup traverses its self-latching TRS-Tree, then the
		// host index; both candidate harvesting and validation run against
		// immutable version rows, so the engine only filters visibility.
		hostMu := t.hermitHostMu[col]
		hostMu.RLock()
		res := t.hermits[col].Lookup(lo, hi)
		hostMu.RUnlock()
		var rids []storage.RID
		if dst != nil {
			rids = t.filterVersionsAppend(snap, res.RIDs, dst)
		} else {
			rids = t.filterVersions(snap, res.RIDs)
		}
		return rids, QueryStats{
			Kind:       KindHermit,
			Rows:       len(rids),
			Candidates: res.Candidates,
			Breakdown:  res.Breakdown,
		}, nil
	case PathCM:
		// CM lookups read the bucket map and scan the host index (CM is
		// physical-pointers only, so candidates are version RIDs).
		cmMu := t.cmMu.get(col)
		cmMu.RLock()
		hostMu := t.cmHostMu[col]
		hostMu.RLock()
		res := t.cms[col].Lookup(lo, hi)
		hostMu.RUnlock()
		cmMu.RUnlock()
		var rids []storage.RID
		if dst != nil {
			rids = t.filterVersionsAppend(snap, res.RIDs, dst)
		} else {
			rids = t.filterVersions(snap, res.RIDs)
		}
		return rids, QueryStats{
			Kind:       KindCM,
			Rows:       len(rids),
			Candidates: res.Candidates,
		}, nil
	case PathBTree:
		return t.baselineRange(snap, t.secondary[col], t.secondaryMu.get(col), KindBTree, col, lo, hi, dst)
	case PathPrimary:
		return t.primaryRange(snap, lo, hi, dst)
	case PathTRSDirect:
		return t.trsDirectRange(snap, col, lo, hi, dst)
	default:
		return t.scanRange(snap, col, lo, hi, dst)
	}
}

// filterVersions keeps the candidates whose version is visible at the
// snapshot, filtering in place (the caller owns rids). Exact for candidate
// sets that are per-version (every index keeps one entry per version, and
// a version's row is immutable, so a validated candidate either is the
// visible incarnation of its key or is filtered here; the visible
// incarnation always appears among the candidates through its own
// entries).
func (t *Table) filterVersions(snap *Snapshot, rids []storage.RID) []storage.RID {
	out := rids[:0]
	t.verMu.RLock()
	for _, rid := range rids {
		if visibleAt(t.verOf[rid], snap.ts) {
			out = append(out, rid)
		}
	}
	t.verMu.RUnlock()
	return out
}

// filterVersionsAppend is filterVersions into a separate buffer: the
// visible candidates are appended into dst[:0] (freshly allocated when dst
// is nil), leaving src intact — the form the pooled-scratch paths need,
// since scratch memory must never escape into results.
func (t *Table) filterVersionsAppend(snap *Snapshot, src, dst []storage.RID) []storage.RID {
	out := resultBuf(dst, len(src))
	t.verMu.RLock()
	for _, rid := range src {
		if visibleAt(t.verOf[rid], snap.ts) {
			out = append(out, rid)
		}
	}
	t.verMu.RUnlock()
	return out
}

// hermitLogicalRange executes the Hermit mechanism under logical pointers
// with MVCC-aware resolution: TRS-Tree ranges are scanned on the host
// index as usual, but the harvested primary keys resolve through the
// version chains to the incarnation visible at the snapshot (instead of
// the primary index's newest entry), which is then validated against the
// target predicate.
func (t *Table) hermitLogicalRange(snap *Snapshot, col int, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	hx := t.hermits[col]
	st := QueryStats{Kind: KindHermit}
	profile := t.profile.Load()
	var t0 time.Time
	if profile {
		t0 = time.Now()
	}
	tres := hx.Tree().Lookup(lo, hi)
	if profile {
		st.Breakdown[hermit.PhaseTRSTree] += time.Since(t0)
		t0 = time.Now()
	}
	sc := getScratch()
	defer putScratch(sc)
	// Outlier identifiers are primary keys under this scheme. Harvest into
	// the scratch so the host-index appends never grow the index-owned
	// backing array.
	sc.ids = append(sc.ids[:0], tres.IDs...)
	hostMu := t.hermitHostMu[col]
	hostMu.RLock()
	host := t.secondary[t.hostOf[col]]
	if host == nil {
		// pk-hosted indexes are rejected at creation under logical
		// pointers, so the host B+-tree always exists here; guard anyway.
		hostMu.RUnlock()
		return nil, st, ErrNoHostIndex
	}
	for _, r := range tres.Ranges {
		host.Scan(r.Lo, r.Hi, sc.appendID)
	}
	hostMu.RUnlock()
	if profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	// Resolve each candidate key to its visible incarnation (the MVCC
	// replacement for the primary-index hop), batched under one chain-latch
	// acquisition instead of one per key ...
	sc.res = sc.res[:0]
	t.verMu.RLock()
	for _, id := range sc.ids {
		if _, dup := sc.seen[id]; dup {
			continue
		}
		sc.seen[id] = struct{}{}
		if v := t.resolveVisibleLocked(float64(id), snap.ts); v != nil {
			sc.res = append(sc.res, v.rid)
		}
	}
	t.verMu.RUnlock()
	st.Candidates = len(sc.seen)
	if profile {
		st.Breakdown[hermit.PhasePrimaryIndex] += time.Since(t0)
		t0 = time.Now()
	}
	// ... then validate the target predicate against the base table.
	out := resultBuf(dst, len(sc.res))
	for _, rid := range sc.res {
		m, err := t.store.Value(rid, col)
		if err == nil && m >= lo && m <= hi {
			out = append(out, rid)
		}
	}
	if profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(out)
	return out, st, nil
}

// PointQuery returns the RIDs of rows with col == v at a snapshot of the
// latest commit timestamp.
func (t *Table) PointQuery(col int, v float64) ([]storage.RID, QueryStats, error) {
	return t.RangeQuery(col, v, v)
}

// PointQueryAt is PointQuery reading at the caller's snapshot.
func (t *Table) PointQueryAt(snap *Snapshot, col int, v float64) ([]storage.RID, QueryStats, error) {
	return t.RangeQueryAt(snap, col, v, v)
}

// PointQueryInto is PointQuery with a caller-supplied result buffer (see
// RangeQueryInto for the dst contract).
func (t *Table) PointQueryInto(col int, v float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	return t.RangeQueryInto(col, v, v, dst)
}

// PointQueryAtInto is PointQueryAt with a caller-supplied result buffer
// (see RangeQueryInto for the dst contract).
func (t *Table) PointQueryAtInto(snap *Snapshot, col int, v float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	return t.RangeQueryAtInto(snap, col, v, v, dst)
}

// baselineRange executes the conventional secondary-index plan: index
// scan, then visibility resolution. This is the Baseline of every figure.
// mu is the scanned index's latch. Under physical pointers candidates are
// version RIDs filtered directly; under logical pointers they are primary
// keys resolved through the version chains, with the predicate re-checked
// on the visible incarnation (whose value may differ from the harvested
// entry's version).
func (t *Table) baselineRange(snap *Snapshot, idx interface {
	Scan(lo, hi float64, fn func(key float64, id uint64) bool)
}, mu *sync.RWMutex, kind IndexKind, col int, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: kind}
	profile := t.profile.Load()
	var t0 time.Time
	if profile {
		t0 = time.Now()
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.ids = sc.ids[:0]
	mu.RLock()
	idx.Scan(lo, hi, sc.appendID)
	mu.RUnlock()
	if profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	if t.scheme == hermit.LogicalPointers {
		// Resolve the harvested keys through the version chains under one
		// latch hold, then re-check the predicate on the visible
		// incarnations.
		sc.res = sc.res[:0]
		t.verMu.RLock()
		for _, pk := range sc.ids {
			if _, dup := sc.seen[pk]; dup {
				continue
			}
			sc.seen[pk] = struct{}{}
			if v := t.resolveVisibleLocked(float64(pk), snap.ts); v != nil {
				sc.res = append(sc.res, v.rid)
			}
		}
		t.verMu.RUnlock()
		out := resultBuf(dst, len(sc.res))
		for _, rid := range sc.res {
			m, err := t.store.Value(rid, col)
			if err == nil && m >= lo && m <= hi {
				out = append(out, rid)
			}
		}
		if profile {
			st.Breakdown[hermit.PhasePrimaryIndex] += time.Since(t0)
			t0 = time.Now()
		}
		st.Rows, st.Candidates = len(out), len(sc.seen)
		return out, st, nil
	}
	sc.rids = sc.rids[:0]
	for _, id := range sc.ids {
		sc.rids = append(sc.rids, storage.RID(id))
	}
	out := t.filterVersionsAppend(snap, sc.rids, dst)
	if profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(out)
	st.Candidates = len(sc.ids)
	return out, st, nil
}

// primaryRange serves range queries on the primary-key column. The
// primary index keeps one entry per key (pointing at the newest version),
// so each harvested key resolves through its version chain to the
// incarnation visible at the snapshot; the key value itself is shared by
// every version, so no predicate re-check is needed. With a reused dst
// this path — the PK point read — allocates nothing.
func (t *Table) primaryRange(snap *Snapshot, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindPrimary}
	sc := getScratch()
	defer putScratch(sc)
	sc.pks = sc.pks[:0]
	t.primaryMu.RLock()
	t.primary.Scan(lo, hi, sc.appendPK)
	t.primaryMu.RUnlock()
	out := resultBuf(dst, len(sc.pks))
	t.verMu.RLock()
	for _, pk := range sc.pks {
		if v := t.resolveVisibleLocked(pk, snap.ts); v != nil {
			out = append(out, v.rid)
		}
	}
	t.verMu.RUnlock()
	st.Rows, st.Candidates = len(out), len(sc.pks)
	return out, st, nil
}

// scanRange is the unindexed fallback: a full table scan over every
// version row, filtered by predicate and visibility.
func (t *Table) scanRange(snap *Snapshot, col int, lo, hi float64, dst []storage.RID) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindNone}
	sc := getScratch()
	defer putScratch(sc)
	sc.rids = sc.rids[:0]
	err := t.store.ScanColumn(col, func(rid storage.RID, v float64) bool {
		if v >= lo && v <= hi {
			sc.rids = append(sc.rids, rid)
		}
		return true
	})
	if err != nil {
		return nil, st, err
	}
	st.Candidates = len(sc.rids)
	out := t.filterVersionsAppend(snap, sc.rids, dst)
	st.Rows = len(out)
	return out, st, nil
}

// FetchRows materialises rows for a RID list (what a real query plan would
// do after index retrieval); the buffer is reused across calls via dst.
func (t *Table) FetchRows(rids []storage.RID, dst [][]float64) ([][]float64, error) {
	if cap(dst) < len(rids) {
		dst = make([][]float64, 0, len(rids))
	}
	dst = dst[:0]
	for _, rid := range rids {
		row, err := t.store.Get(rid, nil)
		if err != nil {
			return nil, err
		}
		dst = append(dst, row)
	}
	return dst, nil
}
