package engine

import (
	"testing"

	"hermit/internal/advisor"
	"hermit/internal/hermit"
)

// driveQueries runs n range queries against col so the column's query
// counter crosses the advisor's MinQueries gate.
func driveQueries(t *testing.T, tb *Table, col, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		lo := float64(i%40) * 20
		if _, _, err := tb.RangeQuery(col, lo, lo+10); err != nil {
			t.Fatal(err)
		}
	}
}

// manualAdvisor returns deterministic (RunOnce-only) advisor options.
func manualAdvisor() AdvisorOptions {
	return AdvisorOptions{Interval: 0, MinQueries: 32}
}

func TestAdvisorAutoCreatesHermitInMemory(t *testing.T) {
	db, tb := newSynthetic(t, hermit.PhysicalPointers, 6000, linearFn, 0, 21)
	driveQueries(t, tb, 2, 50) // served by scans for now
	if tb.IndexOn(2) != KindNone {
		t.Fatal("precondition: col 2 indexed")
	}
	a := db.EnableAdvisor(manualAdvisor())
	defer a.Stop()
	acts, err := a.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].Kind != advisor.CreatedHermit || acts[0].Col != 2 || acts[0].Host != 1 {
		t.Fatalf("actions: %+v", acts)
	}
	if tb.IndexOn(2) != KindHermit {
		t.Fatalf("col 2 served by %v", tb.IndexOn(2))
	}
	// The planner now routes through the auto-created index, exactly.
	plan, err := tb.Explain(2, 100, 140)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen != PathHermit {
		t.Fatalf("planner chose %v after auto-create\n%+v", plan.Chosen, plan.Candidates)
	}
	rids, st, err := tb.RangeQuery(2, 100, 140)
	if err != nil || st.Path != PathHermit {
		t.Fatalf("query path %v err %v", st.Path, err)
	}
	if !sameRIDs(rids, expected(tb, 2, 100, 140)) {
		t.Fatal("auto-indexed results wrong")
	}
}

func TestAdvisorUncorrelatedColumnGetsBTree(t *testing.T) {
	db, tb := newSynthetic(t, hermit.PhysicalPointers, 6000, linearFn, 0, 23)
	driveQueries(t, tb, 3, 50) // colD is random noise: no usable host
	a := db.EnableAdvisor(manualAdvisor())
	defer a.Stop()
	acts, err := a.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].Kind != advisor.CreatedBTree || acts[0].Col != 3 {
		t.Fatalf("actions: %+v", acts)
	}
	if tb.IndexOn(3) != KindBTree {
		t.Fatalf("col 3 served by %v", tb.IndexOn(3))
	}
}

// TestAdvisorDurableEndToEnd is the acceptance flow: the advisor discovers
// a correlated pair on a durable database, auto-creates a Hermit index
// through the WAL-logged DDL path, the planner uses it — and the index
// survives a close/reopen (WAL replay), then a checkpoint plus reopen
// (manifest defs), then a logged drop.
func TestAdvisorDurableEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("syn", synthCols, 0); err != nil {
		t.Fatal(err)
	}
	tb, err := d.Table("syn")
	if err != nil {
		t.Fatal(err)
	}
	loadDurableSynthetic(t, d, 4000)
	if err := d.CreateIndex("syn", IndexDef{Kind: "btree", Col: 1}); err != nil {
		t.Fatal(err)
	}
	driveQueries(t, tb, 2, 50)

	a := d.EnableAdvisor(manualAdvisor())
	defer a.Stop()
	acts, err := a.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].Kind != advisor.CreatedHermit || acts[0].Col != 2 || acts[0].Host != 1 {
		t.Fatalf("actions: %+v", acts)
	}
	if plan, _ := tb.Explain(2, 100, 140); plan.Chosen != PathHermit {
		t.Fatalf("planner chose %v after durable auto-create", plan.Chosen)
	}
	want := expected(tb, 2, 100, 140)

	// Reopen #1: the advisor's DDL replays from the WAL.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if n, serr := d.RecoverySkipped(); n != 0 {
		t.Fatalf("recovery skipped %d records: %v", n, serr)
	}
	tb, err = d.Table("syn")
	if err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn(2) != KindHermit {
		t.Fatalf("after reopen col 2 served by %v", tb.IndexOn(2))
	}
	rids, st, err := tb.RangeQuery(2, 100, 140)
	if err != nil || st.Path != PathHermit {
		t.Fatalf("after reopen: path %v err %v", st.Path, err)
	}
	if !sameRIDs(rids, want) {
		t.Fatal("after reopen: results wrong")
	}

	// Reopen #2: the index definition also lives through a checkpoint
	// (manifest defs, fresh WAL segment).
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	tb, err = d.Table("syn")
	if err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn(2) != KindHermit {
		t.Fatalf("after checkpoint+reopen col 2 served by %v", tb.IndexOn(2))
	}

	// A logged drop survives its own reopen and leaves the manifest defs.
	if err := d.DropIndex("syn", 2, "hermit"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tb, err = d.Table("syn")
	if err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn(2) != KindNone {
		t.Fatalf("dropped index resurrected as %v", tb.IndexOn(2))
	}
}

// loadDurableSynthetic inserts the linear Synthetic layout through the
// logged mutation path.
func loadDurableSynthetic(t *testing.T, d *DurableDB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c := float64((i * 37) % 1000)
		row := []float64{float64(i), linearFn(c), c, float64(i % 17)}
		if _, err := d.Insert("syn", row); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDurableDropIndexRejectsUnknownKind(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.DropIndex("t", 1, "composite-btree"); err == nil {
		t.Fatal("composite drop accepted")
	}
	if err := d.DropIndex("t", 1, "btree"); err == nil {
		t.Fatal("drop of absent index accepted")
	}
}
