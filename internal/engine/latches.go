package engine

import (
	"math"
	"sync"
)

// The engine's concurrency protocol (this file plus the call sites in
// engine.go, query.go, indexes.go and composite.go):
//
//   - t.catalog (RWMutex) guards the *catalog*: the index maps and their
//     latch maps. Index creation takes it exclusively; every row operation
//     and query takes it shared, so queries and writes never wait on each
//     other here — only on DDL.
//   - One latch per index structure. The B+-trees (primary, secondary,
//     composite) and Correlation Maps are not internally synchronised, so
//     each carries its own RWMutex; readers of different indexes share
//     nothing. TRS-Trees latch themselves (see trstree), so Hermit indexes
//     need no engine latch for the tree — only for the host structures
//     their lookups traverse.
//   - t.rows is a striped writer lock keyed by primary key. It serialises
//     logical row operations (insert/delete/update) on the same key — the
//     check-then-act sequences such as duplicate-key detection — while
//     writes to different keys proceed in parallel and only serialise
//     briefly on the individual structure latches they touch.
//   - The row store (storage.Table) has its own internal latch and is
//     always the innermost lock.
//
// Lock ordering (outer to inner): catalog -> row stripe -> index latch
// (secondary/cm/composite before primary) -> store. Writers hold at most
// one index latch at a time; readers may hold a host-index latch and the
// primary latch together, always acquiring the primary latch last.

// stripeBits sizes the striped writer lock: lockStripes = 2^stripeBits.
// stripeOf takes the top stripeBits of the mixed hash (Fibonacci hashing
// concentrates entropy in the high bits), so the two constants must move
// together — hence the derivation.
const (
	stripeBits  = 6
	lockStripes = 1 << stripeBits
)

// stripedLock serialises row mutations per primary key.
type stripedLock struct {
	stripes [lockStripes]sync.Mutex
}

// mu returns the stripe mutex covering pk. Callers lock/unlock it
// directly: handing back the mutex instead of a bound unlock function
// keeps the write path free of the method-value allocation the old
// `lock(pk) func()` shape paid on every row mutation.
func (s *stripedLock) mu(pk float64) *sync.Mutex {
	return &s.stripes[stripeOf(pk)]
}

// lock acquires the stripe covering pk and returns its unlock function.
// Prefer mu on hot paths (the returned method value allocates).
func (s *stripedLock) lock(pk float64) func() {
	m := s.mu(pk)
	m.Lock()
	return m.Unlock
}

// stripeOf hashes a primary key to a stripe index. Keys are float64s, so
// the hash mixes the raw bits (Fibonacci multiplicative hashing); +0 and
// -0 compare equal as keys and must map to the same stripe.
func stripeOf(pk float64) uint64 {
	if pk == 0 {
		return 0 // ±0 compare equal as keys; normalise to one stripe
	}
	b := math.Float64bits(pk)
	return (b * 0x9e3779b97f4a7c15) >> (64 - stripeBits)
}

// latchSet hands out one RWMutex per index structure. Entries are created
// under the catalog write latch (index creation) and only read afterwards.
type latchSet[K comparable] struct {
	m map[K]*sync.RWMutex
}

func newLatchSet[K comparable]() latchSet[K] {
	return latchSet[K]{m: make(map[K]*sync.RWMutex)}
}

// add registers a latch for key; called with t.catalog held exclusively.
func (l *latchSet[K]) add(key K) *sync.RWMutex {
	if l.m == nil {
		l.m = make(map[K]*sync.RWMutex)
	}
	mu := &sync.RWMutex{}
	l.m[key] = mu
	return mu
}

// get returns the latch for key; called with t.catalog held (shared is
// enough — the map is immutable between DDL operations).
func (l *latchSet[K]) get(key K) *sync.RWMutex { return l.m[key] }
