package engine

import (
	"sync"
	"testing"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/trstree"
)

// Concurrent durable-layer tests, mirroring concurrent_test.go for the
// in-memory engine: mutations, queries, DDL and checkpoints race under the
// -race CI job, and the acknowledged state must survive recovery.

// TestDurableConcurrentMutations drives writers on disjoint key ranges
// through the durable batched executor while readers query, then recovers
// and verifies nothing acknowledged was lost.
func TestDurableConcurrentMutations(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableOptions(dir, hermit.LogicalPointers,
		DurableOptions{Policy: SyncGroup, GroupInterval: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	populateDurable(t, d, 1000, 21)

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 10_000 + w*perWriter
			ops := make([]Op, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				pk := float64(base + i)
				c := float64(int(pk) % 1000)
				ops = append(ops, Op{Table: "syn", Kind: OpInsert, Row: []float64{pk, 2*c + 100, c, 0}})
			}
			for _, r := range d.ExecuteBatch(ops, 4) {
				if r.Err != nil {
					t.Error(r.Err)
				}
			}
			// Update then delete a slice of this writer's own keys.
			for i := 0; i < 20; i++ {
				if err := d.UpdateColumn("syn", float64(base+i), 3, 7); err != nil {
					t.Error(err)
				}
			}
			for i := 20; i < 40; i++ {
				if found, err := d.Delete("syn", float64(base+i)); err != nil || !found {
					t.Errorf("delete %d: %v %v", base+i, found, err)
				}
			}
		}(w)
	}
	// Readers race the writers through the durable query surface.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			reqs := []RangeReq{{Col: 2, Lo: 100, Hi: 200}, {Col: 1, Lo: 300, Hi: 500}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, res := range d.QueryConcurrent("syn", reqs, 2) {
					if res.Err != nil {
						t.Error(res.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	wantLen := 1000 + writers*(perWriter-20)
	tb, _ := d.Table("syn")
	if tb.Len() != wantLen {
		t.Fatalf("%d rows after concurrent batch, want %d", tb.Len(), wantLen)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n, serr := d2.RecoverySkipped(); n != 0 {
		t.Fatalf("%d records skipped in recovery (last: %v)", n, serr)
	}
	tb2, _ := d2.Table("syn")
	if tb2.Len() != wantLen {
		t.Fatalf("recovered %d rows, want %d", tb2.Len(), wantLen)
	}
	// Spot-check an update and a delete survived.
	if rids, _, err := tb2.PointQuery(0, 10_000); err != nil || len(rids) != 1 {
		t.Fatalf("updated key lost: %v %v", rids, err)
	}
	if rids, _, err := tb2.PointQuery(0, 10_020); err != nil || len(rids) != 0 {
		t.Fatalf("deleted key resurrected: %v %v", rids, err)
	}
}

// TestDurableCheckpointDuringTraffic races checkpoints and index creation
// against a stream of durable mutations: the historical data races were
// exactly here (tables-map writes vs checkpoint marshalling Defs, and WAL
// frame interleaving).
func TestDurableCheckpointDuringTraffic(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("syn", synthCols, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		c := float64(i % 1000)
		if _, err := d.Insert("syn", []float64{float64(i), 2*c + 100, c, 0}); err != nil {
			t.Fatal(err)
		}
	}

	const writers, perWriter = 3, 150
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 50_000 + w*perWriter
			for i := 0; i < perWriter; i++ {
				pk := float64(base + i)
				c := float64(int(pk) % 1000)
				if _, err := d.Insert("syn", []float64{pk, 2*c + 100, c, 0}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// DDL while mutations stream: CreateIndex appends to the same Defs
	// slice Checkpoint marshals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.CreateIndex("syn", IndexDef{Kind: "btree", Col: 1}); err != nil {
			t.Error(err)
		}
		if err := d.CreateIndex("syn", IndexDef{Kind: "hermit", Col: 2, Host: 1, Params: trstree.DefaultParams()}); err != nil {
			t.Error(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := d.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	wantLen := 500 + writers*perWriter
	tb, _ := d.Table("syn")
	if tb.Len() != wantLen {
		t.Fatalf("%d rows, want %d", tb.Len(), wantLen)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb2, _ := d2.Table("syn")
	if tb2.Len() != wantLen {
		t.Fatalf("recovered %d rows, want %d", tb2.Len(), wantLen)
	}
	if tb2.IndexOn(1) != KindBTree || tb2.IndexOn(2) != KindHermit {
		t.Fatalf("indexes not recovered: %v %v", tb2.IndexOn(1), tb2.IndexOn(2))
	}
}

// TestDurableMixedBatchAcrossTables exercises the durable executor's
// cross-table dispatch, including per-op errors for missing tables.
func TestDurableMixedBatchAcrossTables(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("a", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("b", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Table: "a", Kind: OpInsert, Row: []float64{1, 10}},
		{Table: "b", Kind: OpInsert, Row: []float64{1, 20}},
		{Table: "a", Kind: OpInsert, Row: []float64{2, 30}},
		{Table: "missing", Kind: OpRange, Col: 0, Lo: 0, Hi: 1},
	}
	res := d.ExecuteBatch(ops, 4)
	for i := 0; i < 3; i++ {
		if res[i].Err != nil {
			t.Fatalf("op %d: %v", i, res[i].Err)
		}
	}
	// Committed inserts report the RID their version landed at.
	tbA, _ := d.Table("a")
	if v, err := tbA.Store().Value(res[0].RID, 1); err != nil || v != 10 {
		t.Fatalf("insert RID not reported: val=%v err=%v", v, err)
	}
	if res[3].Err == nil {
		t.Fatal("query on missing table accepted")
	}
	// A mutation on a missing table aborts the whole (atomic) batch.
	bad := d.ExecuteBatch([]Op{
		{Table: "a", Kind: OpInsert, Row: []float64{50, 1}},
		{Table: "missing", Kind: OpInsert, Row: []float64{1, 0}},
	}, 2)
	if bad[0].Err == nil || bad[1].Err == nil {
		t.Fatalf("batch with missing-table mutation not aborted: %v %v", bad[0].Err, bad[1].Err)
	}
	probe := d.ExecuteBatch([]Op{{Table: "a", Kind: OpPoint, Col: 0, Lo: 50}}, 1)[0]
	if probe.Err != nil || len(probe.RIDs) != 0 {
		t.Fatalf("aborted durable batch leaked a row: %d err=%v", len(probe.RIDs), probe.Err)
	}
	// Queries in a batch see the tables.
	qres := d.ExecuteBatch([]Op{
		{Table: "a", Kind: OpRange, Col: 0, Lo: 0, Hi: 10},
		{Table: "b", Kind: OpPoint, Col: 0, Lo: 1},
	}, 2)
	if qres[0].Err != nil || len(qres[0].RIDs) != 2 {
		t.Fatalf("query a: %v", qres[0])
	}
	if qres[1].Err != nil || len(qres[1].RIDs) != 1 {
		t.Fatalf("query b: %v", qres[1])
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	ta, _ := d2.Table("a")
	tb, _ := d2.Table("b")
	if ta.Len() != 2 || tb.Len() != 1 {
		t.Fatalf("recovered a=%d b=%d, want 2/1", ta.Len(), tb.Len())
	}
}
