package engine

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hermit/internal/cm"
	"hermit/internal/correlation"
	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// loadSynthetic fills a table in the Appendix A Synthetic layout:
// colA (pk), colB (host = fn(colC), noisy), colC (target), colD (payload).
func loadSynthetic(t testing.TB, tb *Table, n int, fn func(float64) float64, noise float64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := rng.Float64() * 1000
		b := fn(c)
		if rng.Float64() < noise {
			b = rng.Float64() * 3000
		}
		if _, err := tb.Insert([]float64{float64(i), b, c, rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
}

func linearFn(c float64) float64  { return 2*c + 100 }
func sigmoidFn(c float64) float64 { return 10000 / (1 + math.Exp(-(c-500)/80)) }

var synthCols = []string{"colA", "colB", "colC", "colD"}

func newSynthetic(t testing.TB, scheme hermit.PointerScheme, n int, fn func(float64) float64, noise float64, seed int64) (*DB, *Table) {
	t.Helper()
	db := NewDB(scheme)
	tb, err := db.CreateTable("synthetic", synthCols, 0)
	if err != nil {
		t.Fatal(err)
	}
	loadSynthetic(t, tb, n, fn, noise, seed)
	if _, err := tb.CreateBTreeIndex(1, false); err != nil { // host index on colB
		t.Fatal(err)
	}
	return db, tb
}

// expected computes the ground truth by scanning the live rows (the raw
// store also holds superseded/deleted versions awaiting GC).
func expected(tb *Table, col int, lo, hi float64) []storage.RID {
	var out []storage.RID
	tb.ScanLive(func(rid storage.RID, row []float64) bool {
		if v := row[col]; v >= lo && v <= hi {
			out = append(out, rid)
		}
		return true
	})
	return out
}

func sameRIDs(a, b []storage.RID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]storage.RID(nil), a...)
	bs := append([]storage.RID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	if _, err := db.CreateTable("t", synthCols, 9); err != ErrNoSuchColumn {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
	if _, err := db.CreateTable("t", synthCols, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", synthCols, 0); err != ErrDupTable {
		t.Fatalf("want ErrDupTable, got %v", err)
	}
	if _, err := db.Table("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
	tb, err := db.Table("t")
	if err != nil || tb.Name() != "t" {
		t.Fatalf("table lookup: %v", err)
	}
	if db.Scheme() != hermit.PhysicalPointers {
		t.Fatal("scheme")
	}
	if got := tb.Columns(); len(got) != 4 || got[0] != "colA" {
		t.Fatalf("columns=%v", got)
	}
	if _, err := tb.colIndex("colC"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.colIndex("nope"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatal("colIndex missing")
	}
}

func TestDuplicatePKRejected(t *testing.T) {
	db := NewDB(hermit.PhysicalPointers)
	tb, _ := db.CreateTable("t", synthCols, 0)
	if _, err := tb.Insert([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert([]float64{1, 9, 9, 9}); !errors.Is(err, ErrDupKey) {
		t.Fatalf("want ErrDupKey, got %v", err)
	}
}

func TestHermitVsBaselineSameResults(t *testing.T) {
	for _, scheme := range []hermit.PointerScheme{hermit.PhysicalPointers, hermit.LogicalPointers} {
		dbH, tbH := newSynthetic(t, scheme, 20000, sigmoidFn, 0.05, 1)
		_, tbB := newSynthetic(t, scheme, 20000, sigmoidFn, 0.05, 1)
		_ = dbH
		if _, err := tbH.CreateHermitIndex(2, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := tbB.CreateBTreeIndex(2, true); err != nil {
			t.Fatal(err)
		}
		if tbH.IndexOn(2) != KindHermit || tbB.IndexOn(2) != KindBTree {
			t.Fatal("routing wrong")
		}
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 25; trial++ {
			lo := rng.Float64() * 1000
			hi := lo + rng.Float64()*80
			rh, sh, err := tbH.RangeQuery(2, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			rb, sb, err := tbB.RangeQuery(2, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			want := expected(tbH, 2, lo, hi)
			if !sameRIDs(rh, want) {
				t.Fatalf("%v hermit wrong for [%v,%v]", scheme, lo, hi)
			}
			if !sameRIDs(rb, want) {
				t.Fatalf("%v baseline wrong for [%v,%v]", scheme, lo, hi)
			}
			if sh.Rows != len(want) || sb.Rows != len(want) {
				t.Fatal("row counts wrong")
			}
		}
	}
}

func TestQueryRouting(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 5000, linearFn, 0.01, 3)
	// Primary-key routing.
	rids, st, err := tb.RangeQuery(0, 10, 20)
	if err != nil || st.Kind != KindPrimary {
		t.Fatalf("pk routing kind=%v err=%v", st.Kind, err)
	}
	if !sameRIDs(rids, expected(tb, 0, 10, 20)) {
		t.Fatal("pk results")
	}
	// Unindexed column falls back to a scan.
	rids, st, err = tb.RangeQuery(3, 0.1, 0.2)
	if err != nil || st.Kind != KindNone {
		t.Fatalf("scan routing kind=%v err=%v", st.Kind, err)
	}
	if !sameRIDs(rids, expected(tb, 3, 0.1, 0.2)) {
		t.Fatal("scan results")
	}
	// Host column uses its complete index.
	_, st, err = tb.RangeQuery(1, 200, 400)
	if err != nil || st.Kind != KindBTree {
		t.Fatalf("host routing kind=%v err=%v", st.Kind, err)
	}
	// Out-of-range column.
	if _, _, err := tb.RangeQuery(99, 0, 1); err != ErrNoSuchColumn {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
	// Point query.
	pk := 1234.0
	rids, _, err = tb.PointQuery(0, pk)
	if err != nil || len(rids) != 1 {
		t.Fatalf("point query: %v %v", rids, err)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 1000, linearFn, 0, 4)
	if _, err := tb.CreateBTreeIndex(99, false); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
	if _, err := tb.CreateBTreeIndex(1, false); err != ErrDupIndex {
		t.Fatal(err)
	}
	if _, err := tb.CreateHermitIndex(2, 3); err != ErrNoHostIndex {
		t.Fatalf("unindexed host accepted: %v", err)
	}
	if _, err := tb.CreateHermitIndex(99, 1); err != ErrNoSuchColumn {
		t.Fatal(err)
	}
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateHermitIndex(2, 1); err != ErrDupIndex {
		t.Fatal(err)
	}
	if tb.Hermit(2) == nil || tb.Secondary(1) == nil || tb.CM(2) != nil {
		t.Fatal("accessors")
	}
}

func TestHermitOnPrimaryHost(t *testing.T) {
	// §5.2: "a primary index can also serve as the host index".
	db := NewDB(hermit.PhysicalPointers)
	tb, _ := db.CreateTable("t", []string{"pk", "corr"}, 0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		pk := float64(i)
		tb.Insert([]float64{pk, 3*pk + 7 + rng.NormFloat64()})
	}
	if _, err := tb.CreateHermitIndex(1, 0); err != nil {
		t.Fatal(err)
	}
	lo, hi := 3000.0, 3300.0
	rids, _, err := tb.RangeQuery(1, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRIDs(rids, expected(tb, 1, lo, hi)) {
		t.Fatal("primary-hosted hermit wrong")
	}
	// Logical pointers cannot host on the primary index.
	db2 := NewDB(hermit.LogicalPointers)
	tb2, _ := db2.CreateTable("t", []string{"pk", "corr"}, 0)
	tb2.Insert([]float64{1, 2})
	if _, err := tb2.CreateHermitIndex(1, 0); err == nil {
		t.Fatal("logical-pointer primary host accepted")
	}
}

func TestCreateIndexAuto(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 8000, linearFn, 0.02, 6)
	kind, err := tb.CreateIndexAuto(2, correlation.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindHermit {
		t.Fatalf("correlated column built %v, want hermit", kind)
	}
	// colD is uncorrelated: falls back to a complete index.
	kind, err = tb.CreateIndexAuto(3, correlation.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindBTree {
		t.Fatalf("uncorrelated column built %v, want btree", kind)
	}
	rids, _, err := tb.RangeQuery(3, 0.2, 0.4)
	if err != nil || !sameRIDs(rids, expected(tb, 3, 0.2, 0.4)) {
		t.Fatal("auto btree results wrong")
	}
}

func TestDeleteMaintainsAllIndexes(t *testing.T) {
	_, tb := newSynthetic(t, hermit.LogicalPointers, 5000, linearFn, 0.02, 7)
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	// Delete a third of the rows.
	for pk := 0; pk < 5000; pk += 3 {
		ok, err := tb.Delete(float64(pk))
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", pk, ok, err)
		}
	}
	if ok, err := tb.Delete(999999); err != nil || ok {
		t.Fatalf("delete missing: ok=%v err=%v", ok, err)
	}
	rids, _, err := tb.RangeQuery(2, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRIDs(rids, expected(tb, 2, 0, 1000)) {
		t.Fatal("results wrong after deletes")
	}
	if tb.Len() != 5000-1667 {
		t.Fatalf("len=%d", tb.Len())
	}
}

func TestUpdateColumnPaths(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 3000, linearFn, 0, 8)
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	// Update the host column of one row (col as hermit host + secondary).
	if err := tb.UpdateColumn(42, 1, 99999); err != nil {
		t.Fatal(err)
	}
	// Update the target column of one row.
	if err := tb.UpdateColumn(43, 2, 777.77); err != nil {
		t.Fatal(err)
	}
	// No-op update.
	if err := tb.UpdateColumn(44, 3, mustValue(t, tb, 44, 3)); err != nil {
		t.Fatal(err)
	}
	// Missing pk.
	if err := tb.UpdateColumn(1e9, 1, 0); err == nil {
		t.Fatal("update of missing pk succeeded")
	}
	rids, _, err := tb.RangeQuery(2, 777, 778)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRIDs(rids, expected(tb, 2, 777, 778)) {
		t.Fatal("updated target not queryable")
	}
	rids, _, err = tb.RangeQuery(2, 0, 1000)
	if err != nil || !sameRIDs(rids, expected(tb, 2, 0, 1000)) {
		t.Fatal("full range wrong after updates")
	}
}

func mustValue(t *testing.T, tb *Table, pk float64, col int) float64 {
	t.Helper()
	v, ok := tb.Primary().First(pk)
	if !ok {
		t.Fatal("pk missing")
	}
	x, err := tb.Store().Value(storage.RID(v), col)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestInsertProfiledBreakdown(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 2000, linearFn, 0.01, 9)
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	tb.SetProfile(true)
	_, st, err := tb.InsertProfiled([]float64{111111, 300, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Table == 0 {
		t.Fatal("no table time recorded")
	}
}

func TestMemoryBreakdown(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 10000, linearFn, 0.01, 10)
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	m := tb.Memory()
	if m.TableBytes == 0 || m.PrimaryBytes == 0 || m.ExistingBytes == 0 || m.NewBytes == 0 {
		t.Fatalf("memory breakdown has zero component: %+v", m)
	}
	if m.Total() != m.TableBytes+m.PrimaryBytes+m.ExistingBytes+m.NewBytes {
		t.Fatal("total mismatch")
	}
	// Hermit's new-index bytes must be far below a complete index.
	_, tb2 := newSynthetic(t, hermit.PhysicalPointers, 10000, linearFn, 0.01, 10)
	if _, err := tb2.CreateBTreeIndex(2, true); err != nil {
		t.Fatal(err)
	}
	m2 := tb2.Memory()
	if m.NewBytes*3 > m2.NewBytes {
		t.Fatalf("hermit new=%d not ≪ baseline new=%d", m.NewBytes, m2.NewBytes)
	}
}

func TestCMIndexInEngine(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 10000, linearFn, 0.05, 11)
	// Pin static routing: this test exercises the CM mechanism itself, and
	// the cost planner would (correctly) abandon CM for a scan once it
	// observes CM's coarse-bucket false-positive ratio.
	tb.SetRouting(RouteStatic)
	cfg := cm.Config{TargetBucket: 16, HostBucket: 64}
	if _, err := tb.CreateCMIndex(2, 1, cfg); err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn(2) != KindCM {
		t.Fatal("routing")
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*60
		rids, st, err := tb.RangeQuery(2, lo, hi)
		if err != nil || st.Kind != KindCM {
			t.Fatalf("err=%v kind=%v", err, st.Kind)
		}
		if !sameRIDs(rids, expected(tb, 2, lo, hi)) {
			t.Fatal("cm results wrong")
		}
	}
	// Dup and scheme errors.
	if _, err := tb.CreateCMIndex(2, 1, cfg); err != ErrDupIndex {
		t.Fatal(err)
	}
	db2 := NewDB(hermit.LogicalPointers)
	tb2, _ := db2.CreateTable("t", synthCols, 0)
	tb2.Insert([]float64{1, 2, 3, 4})
	tb2.CreateBTreeIndex(1, false)
	if _, err := tb2.CreateCMIndex(2, 1, cfg); err == nil {
		t.Fatal("cm under logical pointers accepted")
	}
}

func TestProfileQueryBreakdown(t *testing.T) {
	_, tb := newSynthetic(t, hermit.LogicalPointers, 10000, sigmoidFn, 0.02, 13)
	// Pin static routing: the breakdown assertions target the Hermit and
	// baseline mechanisms specifically, and these wide predicates are ones
	// the cost planner would route to a scan under logical pointers.
	tb.SetRouting(RouteStatic)
	if _, err := tb.CreateHermitIndex(2, 1, WithProfile()); err != nil {
		t.Fatal(err)
	}
	tb.SetProfile(true)
	_, st, err := tb.RangeQuery(2, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if st.Breakdown.Total() == 0 {
		t.Fatal("hermit breakdown empty")
	}
	// Baseline breakdown on the host column.
	_, st, err = tb.RangeQuery(1, 2000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Breakdown[hermit.PhaseHostIndex] == 0 {
		t.Fatal("baseline index phase missing")
	}
	if st.Breakdown[hermit.PhasePrimaryIndex] == 0 {
		t.Fatal("baseline primary phase missing under logical pointers")
	}
	if st.FalsePositiveRatio() != 0 {
		t.Fatal("baseline should have no false positives")
	}
}

func TestFetchRows(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 1000, linearFn, 0, 14)
	rids, _, err := tb.RangeQuery(0, 10, 14)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tb.FetchRows(rids, nil)
	if err != nil || len(rows) != len(rids) {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	for _, r := range rows {
		if r[0] < 10 || r[0] > 14 {
			t.Fatalf("row %v out of range", r)
		}
	}
}

func TestIndexKindString(t *testing.T) {
	want := map[IndexKind]string{
		KindNone: "none", KindBTree: "btree", KindHermit: "hermit",
		KindCM: "cm", KindPrimary: "primary",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
}

// Property: hermit-routed queries equal baseline-routed queries on an
// identical table for random shapes/noise/predicates/schemes.
func TestQuickEngineEquivalence(t *testing.T) {
	fns := []func(float64) float64{linearFn, sigmoidFn,
		func(c float64) float64 { return 500 - c/3 }}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scheme := hermit.PointerScheme(rng.Intn(2))
		fn := fns[rng.Intn(len(fns))]
		noise := rng.Float64() * 0.1
		_, tbH := newSynthetic(t, scheme, 3000, fn, noise, seed)
		_, tbB := newSynthetic(t, scheme, 3000, fn, noise, seed)
		params := trstree.DefaultParams()
		if _, err := tbH.CreateHermitIndex(2, 1, WithParams(params)); err != nil {
			return false
		}
		if _, err := tbB.CreateBTreeIndex(2, true); err != nil {
			return false
		}
		for trial := 0; trial < 6; trial++ {
			lo := rng.Float64() * 1000
			hi := lo + rng.Float64()*100
			rh, _, err := tbH.RangeQuery(2, lo, hi)
			if err != nil {
				return false
			}
			rb, _, err := tbB.RangeQuery(2, lo, hi)
			if err != nil {
				return false
			}
			if !sameRIDs(rh, rb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
