package engine

import (
	"fmt"
	"math"
)

// This file holds the engine-level vocabulary of hash-partitioned tables:
// the primary-key hash that assigns rows to partitions and the naming
// convention under which a logical partitioned table's per-partition engine
// tables live in a catalog. The scatter-gather execution layer on top of
// both is internal/partition; the durable layer (durable.go) uses them to
// route logged mutations and to checkpoint/recover each partition.

// PartitionOf returns the hash partition (0 <= p < n) owning the primary
// key pk among n partitions. The hash is a splitmix64 finalizer over the
// key's bit pattern, so adjacent keys spread uniformly; -0 is normalised to
// +0 first (the two compare equal as keys and must route identically).
func PartitionOf(pk float64, n int) int {
	if n <= 1 {
		return 0
	}
	if pk == 0 {
		pk = 0 // collapse -0 onto +0
	}
	h := math.Float64bits(pk)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}

// PartitionName returns the catalog name of partition i of the logical
// partitioned table name ("orders#3"). The '#' separator is reserved:
// DurableDB rejects user table names containing it so replay can never
// confuse a user table with a partition.
func PartitionName(name string, i int) string {
	return fmt.Sprintf("%s#%d", name, i)
}

// PKCol returns the primary-key column index.
func (t *Table) PKCol() int { return t.pkCol }
