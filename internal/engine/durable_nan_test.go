package engine

import (
	"errors"
	"io/fs"
	"math"
	"sync"
	"testing"

	"hermit/internal/block"
	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// NaN is a legal float64 primary key (see partition_test.go), but NaN
// never equals itself, so any float64-keyed map silently loses it. The
// version chains key by bit pattern instead: duplicate NaN inserts are
// rejected, delete/update find the chain, and a delta flush emits exactly
// one entry per NaN payload — not one per insert, which block.Encode
// would reject as duplicates.
func TestNaNPrimaryKeyEngine(t *testing.T) {
	db := NewDB(hermit.LogicalPointers)
	tb, err := db.CreateTable("t", []string{"k", "v"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	if _, err := tb.Insert([]float64{nan, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert([]float64{nan, 2}); !errors.Is(err, ErrDupKey) {
		t.Fatalf("duplicate NaN insert: got %v, want ErrDupKey", err)
	}
	if err := tb.UpdateColumn(nan, 1, 3); err != nil {
		t.Fatalf("update by NaN key: %v", err)
	}
	entries := tb.DeltaVersions(0, db.Clock().Now())
	if len(entries) != 1 || !math.IsNaN(entries[0].PK) || entries[0].Row[1] != 3 {
		t.Fatalf("delta = %+v, want exactly one NaN upsert with v=3", entries)
	}
	if found, err := tb.Delete(nan); err != nil || !found {
		t.Fatalf("delete by NaN key: found=%v err=%v", found, err)
	}
	if found, _ := tb.Delete(nan); found {
		t.Fatal("second delete found an already-deleted NaN key")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after deleting the only row", tb.Len())
	}
	// Re-insert over the dead chain.
	if _, err := tb.Insert([]float64{nan, 4}); err != nil {
		t.Fatalf("re-insert after delete: %v", err)
	}
}

// A NaN key must survive the whole block pipeline: repeated delta
// flushes, a merge (which dedupes by key bits — by float it would emit
// duplicates and wedge compaction forever), cold point reads, a
// tombstone, and recovery (where a float-keyed replay map could not
// suppress the earlier upsert, resurrecting the deleted row).
func TestDurableNaNKeyCheckpointCompactRecover(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{CompactFanIn: 2, DisableAutoCompact: true}
	d, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"k", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	if _, err := d.Insert("t", []float64{nan, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("t", []float64{7, 7}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("first checkpoint with NaN key: %v", err)
	}
	if err := d.UpdateColumn("t", nan, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("second checkpoint (NaN in two blocks): %v", err)
	}
	if merged, err := d.Compact(); err != nil || !merged {
		t.Fatalf("compacting blocks sharing a NaN key: merged=%v err=%v", merged, err)
	}
	row, found, _, err := d.BlockRead("t", nan)
	if err != nil || !found || row[1] != 2 {
		t.Fatalf("cold NaN read = %v found=%v err=%v, want v=2", row, found, err)
	}
	if _, err := d.Delete("t", nan); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint flushing NaN tombstone: %v", err)
	}
	if _, found, _, err := d.BlockRead("t", nan); err != nil || found {
		t.Fatalf("cold read after delete: found=%v err=%v", found, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurableOptions(dir, hermit.LogicalPointers, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb, err := d2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("recovered %d rows, want 1 (the deleted NaN row must not resurrect)", tb.Len())
	}
	tb.ScanLive(func(_ storage.RID, row []float64) bool {
		if math.IsNaN(row[0]) {
			t.Errorf("deleted NaN row resurrected: %v", row)
		}
		return true
	})
}

// A point read that snapshots the blocklist just before a compaction
// publishes must retry against the fresh list when the merged-away files
// are already unlinked — not surface a spurious ENOENT.
func TestBlockReadRetriesAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableOptions(dir, hermit.LogicalPointers,
		DurableOptions{CompactFanIn: 2, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.CreateTable("t", []string{"k", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Insert("t", []float64{float64(i), float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot handles the way a concurrent BlockRead would, before the
	// compaction publishes and gcStale unlinks the merged-away files.
	d.mu.RLock()
	descs := d.lists["t"]
	stale := make([]*block.Handle, len(descs))
	for i, desc := range descs {
		stale[i] = d.handles[desc.ID]
	}
	d.mu.RUnlock()
	if merged, err := d.Compact(); err != nil || !merged {
		t.Fatalf("compact: merged=%v err=%v", merged, err)
	}
	// The stale snapshot now references unlinked files: a raw probe hits
	// ENOENT (the trigger for the retry path)...
	if _, _, _, err := probeBlocks(stale, 0); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stale probe error = %v, want fs.ErrNotExist", err)
	}
	// ...and BlockRead retries against the published blocklist.
	row, found, _, err := d.BlockRead("t", 0)
	if err != nil || !found || row[1] != 0 {
		t.Fatalf("BlockRead after compaction = %v found=%v err=%v", row, found, err)
	}
}

// Cold point reads hammered while checkpoints and compactions republish
// the blocklist must never fail: before BlockRead retried on unlinked
// files, this raced into spurious ENOENTs.
func TestBlockReadUnderCompactionChurn(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableOptions(dir, hermit.LogicalPointers,
		DurableOptions{CompactFanIn: 2, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.CreateTable("t", []string{"k", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("t", []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var readErr error
	var mu sync.Mutex
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, found, _, err := d.BlockRead("t", 0); err != nil || !found {
					mu.Lock()
					if readErr == nil {
						readErr = errors.Join(err, errors.New("key 0 not found"))
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	for i := 1; i < 40; i++ {
		if _, err := d.Insert("t", []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if readErr != nil {
		t.Fatalf("cold read failed during compaction churn: %v", readErr)
	}
}

// A failing compaction round must be visible in StorageStats — the
// background compactor stops on error, and without the counters a
// stalled compactor with a growing backlog looks idle.
func TestCompactErrorSurfacedInStats(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableOptions(dir, hermit.LogicalPointers,
		DurableOptions{CompactFanIn: 2, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.CreateTable("t", []string{"k", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Insert("t", []float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	d.failpoint = func(step string) error {
		if step == "compact-begin" {
			return boom
		}
		return nil
	}
	if _, err := d.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact error = %v, want boom", err)
	}
	st := d.StorageStats()
	if st.CompactErrors != 1 || st.LastCompactError != "boom" {
		t.Fatalf("stats after failed round: errors=%d last=%q", st.CompactErrors, st.LastCompactError)
	}
	d.failpoint = nil
	if merged, err := d.Compact(); err != nil || !merged {
		t.Fatalf("retry compact: merged=%v err=%v", merged, err)
	}
	st = d.StorageStats()
	if st.LastCompactError != "" {
		t.Fatalf("LastCompactError = %q after a successful round, want cleared", st.LastCompactError)
	}
	if st.CompactErrors != 1 {
		t.Fatalf("CompactErrors = %d, want the counter to persist at 1", st.CompactErrors)
	}
}
