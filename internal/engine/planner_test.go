package engine

import (
	"errors"
	"testing"

	"hermit/internal/hermit"
)

// explain is a test helper that fails on error.
func explain(t *testing.T, tb *Table, col int, lo, hi float64) Plan {
	t.Helper()
	plan, err := tb.Explain(col, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// estFor digs one path's estimate out of a plan.
func estFor(t *testing.T, plan Plan, p AccessPath) PathEstimate {
	t.Helper()
	for _, e := range plan.Candidates {
		if e.Path == p {
			return e
		}
	}
	t.Fatalf("path %v missing from plan", p)
	return PathEstimate{}
}

// TestExplainPathChoice is the table-driven planner matrix the advisor's
// decisions lean on: Hermit wins under high correlation / low outlier
// ratio; as the outlier ratio rises (noisy data, or churn pushed through
// updates) the planner falls back to a complete B+-tree when one exists,
// or to a scan for unselective predicates.
func TestExplainPathChoice(t *testing.T) {
	cases := []struct {
		name    string
		noise   float64 // fraction of rows with junk host values (outliers)
		btree   bool    // also build a complete B+-tree on the target
		lo, hi  float64
		want    AccessPath
		altWant AccessPath // KindNone-sentinel -1 means exact match only
	}{
		{"hermit wins: high correlation, low outliers, selective", 0.0, false, 100, 140, PathHermit, -1},
		{"btree fallback: outlier ratio high, btree available", 0.5, true, 100, 140, PathBTree, -1},
		{"scan fallback: outlier ratio high, unselective, no btree", 0.5, false, 0, 1000, PathScan, -1},
		{"scan fallback: full-range predicate even on a clean hermit", 0.0, false, 0, 1000, PathScan, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, tb := newSynthetic(t, hermit.PhysicalPointers, 10000, linearFn, tc.noise, 7)
			if _, err := tb.CreateHermitIndex(2, 1); err != nil {
				t.Fatal(err)
			}
			if tc.btree {
				if _, err := tb.CreateBTreeIndex(2, true); err != nil {
					t.Fatal(err)
				}
			}
			plan := explain(t, tb, 2, tc.lo, tc.hi)
			if plan.Chosen != tc.want && (tc.altWant < 0 || plan.Chosen != tc.altWant) {
				t.Fatalf("chose %v, want %v\nplan: %+v", plan.Chosen, tc.want, plan.Candidates)
			}
			// The chosen path heads the available candidates.
			if plan.Candidates[0].Path != plan.Chosen {
				t.Fatalf("candidates not sorted: head %v, chosen %v",
					plan.Candidates[0].Path, plan.Chosen)
			}
			// Executing must agree with the plan and return exact results.
			rids, st, err := tb.RangeQuery(2, tc.lo, tc.hi)
			if err != nil {
				t.Fatal(err)
			}
			if st.Path != plan.Chosen {
				t.Fatalf("executed %v, planned %v", st.Path, plan.Chosen)
			}
			if !sameRIDs(rids, expected(tb, 2, tc.lo, tc.hi)) {
				t.Fatalf("path %v returned wrong rows", st.Path)
			}
		})
	}
}

// TestExplainDegradesUnderUpdates drives host-column churn through
// UpdateColumn: the moved pairs land in the TRS-Tree's outlier buffers, the
// refreshed outlier fraction inflates Hermit's false-positive estimate, and
// the planner abandons Hermit for the complete B+-tree.
func TestExplainDegradesUnderUpdates(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 8000, linearFn, 0, 11)
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateBTreeIndex(2, true); err != nil {
		t.Fatal(err)
	}
	if plan := explain(t, tb, 2, 100, 150); plan.Chosen == PathScan {
		t.Fatalf("clean table should not scan: %+v", plan.Candidates)
	}
	before := explain(t, tb, 2, 100, 150)
	// Update rate rises: half the table's host values drift off the model.
	for pk := 0; pk < 4000; pk++ {
		junk := 50000 + float64(pk)
		if err := tb.UpdateColumn(float64(pk), 1, junk); err != nil {
			t.Fatal(err)
		}
	}
	after := explain(t, tb, 2, 100, 150)
	if after.Chosen != PathBTree {
		t.Fatalf("after churn chose %v, want btree\nplan: %+v", after.Chosen, after.Candidates)
	}
	hb := estFor(t, before, PathHermit)
	ha := estFor(t, after, PathHermit)
	if ha.FPEstimate <= hb.FPEstimate {
		t.Fatalf("hermit fp estimate did not rise under churn: %.3f -> %.3f",
			hb.FPEstimate, ha.FPEstimate)
	}
}

// TestPlannerRuntimeFeedback checks that execution populates the per-path
// statistics Explain reports: hit counts, false-positive EWMAs and sampled
// latency EWMAs.
func TestPlannerRuntimeFeedback(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 5000, linearFn, 0.02, 3)
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		lo := float64(i % 40 * 20)
		if _, _, err := tb.RangeQuery(2, lo, lo+15); err != nil {
			t.Fatal(err)
		}
	}
	e := estFor(t, explain(t, tb, 2, 100, 120), PathHermit)
	if e.ObservedQueries < 64 {
		t.Fatalf("observed queries %d, want >= 64", e.ObservedQueries)
	}
	if e.ObservedLatency <= 0 {
		t.Fatal("latency EWMA not populated")
	}
	cs, err := tb.QueryStatsFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Queries < 64 || cs.ServingPath != PathHermit {
		t.Fatalf("column stats: %+v", cs)
	}
	if tb.Writes() == 0 {
		t.Fatal("writes counter empty after loading")
	}
}

// TestTRSDirectPath executes the TRS-direct access path explicitly (the
// cost model rarely picks it in this row-store — a plain scan qualifies the
// target column at the same per-row price — but it must stay correct) and
// checks it appears costed in plans under both pointer schemes.
func TestTRSDirectPath(t *testing.T) {
	for _, scheme := range []hermit.PointerScheme{hermit.PhysicalPointers, hermit.LogicalPointers} {
		_, tb := newSynthetic(t, scheme, 6000, sigmoidFn, 0.05, 9)
		if _, err := tb.CreateHermitIndex(2, 1); err != nil {
			t.Fatal(err)
		}
		for _, q := range [][2]float64{{100, 150}, {0, 1000}, {900, 910}} {
			snap := tb.clock.Snapshot()
			tb.catalog.RLock()
			rids, st, err := tb.execPathLocked(snap, PathTRSDirect, 2, q[0], q[1], nil)
			tb.catalog.RUnlock()
			snap.Release()
			if err != nil {
				t.Fatal(err)
			}
			if st.Kind != KindHermit {
				t.Fatalf("trs-direct kind %v", st.Kind)
			}
			if !sameRIDs(rids, expected(tb, 2, q[0], q[1])) {
				t.Fatalf("%v trs-direct wrong for [%v,%v]", scheme, q[0], q[1])
			}
		}
		e := estFor(t, explain(t, tb, 2, 100, 150), PathTRSDirect)
		if !e.Available || e.Cost <= 0 {
			t.Fatalf("trs-direct estimate: %+v", e)
		}
	}
}

// TestExplainUnavailablePaths checks unavailability reporting and argument
// validation.
func TestExplainUnavailablePaths(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 3000, linearFn, 0, 5)
	plan := explain(t, tb, 3, 0.2, 0.4) // colD: unindexed
	if plan.Chosen != PathScan {
		t.Fatalf("unindexed column chose %v", plan.Chosen)
	}
	for _, p := range []AccessPath{PathHermit, PathBTree, PathCM, PathPrimary, PathTRSDirect} {
		if e := estFor(t, plan, p); e.Available {
			t.Fatalf("%v reported available on unindexed column", p)
		} else if e.Reason == "" {
			t.Fatalf("%v has no unavailability reason", p)
		}
	}
	if plan := explain(t, tb, 0, 10, 20); plan.Chosen != PathPrimary {
		t.Fatalf("pk column chose %v", plan.Chosen)
	}
	if _, err := tb.Explain(99, 0, 1); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("want ErrNoSuchColumn, got %v", err)
	}
}

// TestDropIndex covers the DDL surface the advisor reclaims indexes with.
func TestDropIndex(t *testing.T) {
	_, tb := newSynthetic(t, hermit.PhysicalPointers, 3000, linearFn, 0, 6)
	if _, err := tb.CreateHermitIndex(2, 1); err != nil {
		t.Fatal(err)
	}
	// The host B+-tree cannot go while the Hermit index scans it.
	if err := tb.DropIndex(1, KindBTree); !errors.Is(err, ErrHostInUse) {
		t.Fatalf("want ErrHostInUse, got %v", err)
	}
	// Accrue some hermit-path history first, so the drop has stats to clear.
	if _, _, err := tb.RangeQuery(2, 100, 140); err != nil {
		t.Fatal(err)
	}
	if err := tb.DropIndex(2, KindHermit); err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn(2) != KindNone {
		t.Fatalf("hermit still routed after drop: %v", tb.IndexOn(2))
	}
	// A recreated index must not inherit the dropped index's feedback.
	if e := estFor(t, explain(t, tb, 2, 100, 140), PathHermit); e.ObservedQueries != 0 || e.ObservedFP != 0 {
		t.Fatalf("path stats survived the drop: %+v", e)
	}
	// Queries survive the drop (scan fallback) and stay correct.
	rids, st, err := tb.RangeQuery(2, 100, 140)
	if err != nil || st.Path == PathHermit {
		t.Fatalf("post-drop query: path %v err %v", st.Path, err)
	}
	if !sameRIDs(rids, expected(tb, 2, 100, 140)) {
		t.Fatal("post-drop results wrong")
	}
	// Dependent gone: the host drops now.
	if err := tb.DropIndex(1, KindBTree); err != nil {
		t.Fatal(err)
	}
	if err := tb.DropIndex(1, KindBTree); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("double drop: %v", err)
	}
	if err := tb.DropIndex(0, KindPrimary); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("primary drop accepted: %v", err)
	}
	if err := tb.DropIndex(99, KindBTree); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("bad column: %v", err)
	}
}
