package engine

import (
	"runtime/debug"
	"testing"

	"hermit/internal/hermit"
	"hermit/internal/storage"
)

// Allocation regression guards for the read hot paths. The zero-alloc
// contract is part of the engine's performance surface (see
// ARCHITECTURE.md "Hot paths & allocation discipline"): a PK point read
// with a reused result buffer and a warm snapshot read must not allocate
// at steady state. testing.AllocsPerRun under the race detector counts
// the detector's own bookkeeping, so the guards skip under -race.

// guardTable builds a small two-column table with static routing (the
// planner's sampled latency clock reads are fine, but static routing keeps
// the guard focused on the execution path).
func guardTable(t testing.TB, n int) *Table {
	t.Helper()
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("guard", []string{"pk", "val"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.SetRouting(RouteStatic)
	row := make([]float64, 2)
	for i := 0; i < n; i++ {
		row[0], row[1] = float64(i), float64(i%97)
		if _, err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// measureAllocs runs fn under AllocsPerRun with GC pinned off so the
// collector cannot recycle pooled scratch mid-measurement.
func measureAllocs(t *testing.T, runs int, fn func()) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector bookkeeping under -race")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	fn() // warm pools and result buffers outside the measured window
	return testing.AllocsPerRun(runs, fn)
}

func TestPointReadZeroAllocs(t *testing.T) {
	tb := guardTable(t, 4096)
	dst := make([]storage.RID, 0, 8)
	i := 0
	allocs := measureAllocs(t, 200, func() {
		i = (i*31 + 17) % 4096
		var err error
		dst, _, err = tb.PointQueryInto(0, float64(i), dst)
		if err != nil || len(dst) != 1 {
			t.Fatalf("point read: %v rows=%d", err, len(dst))
		}
	})
	if allocs != 0 {
		t.Fatalf("PK point read allocates %.2f/op, want 0", allocs)
	}
}

func TestWarmSnapshotReadZeroAllocs(t *testing.T) {
	tb := guardTable(t, 4096)
	snap := tb.clock.Snapshot()
	defer snap.Release()
	dst := make([]storage.RID, 0, 8)
	i := 0
	allocs := measureAllocs(t, 200, func() {
		i = (i*31 + 17) % 4096
		var err error
		dst, _, err = tb.PointQueryAtInto(snap, 0, float64(i), dst)
		if err != nil || len(dst) != 1 {
			t.Fatalf("snapshot read: %v rows=%d", err, len(dst))
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PointQueryAtInto allocates %.2f/op, want 0", allocs)
	}
}

// TestRangeReadIntoSteadyState pins the range path's steady state: with a
// carried dst the only tolerated allocations are the planner/runtime
// incidentals, and today there are none.
func TestRangeReadIntoSteadyState(t *testing.T) {
	tb := guardTable(t, 4096)
	dst := make([]storage.RID, 0, 64)
	lo := 0.0
	allocs := measureAllocs(t, 200, func() {
		lo += 13
		if lo > 4000 {
			lo = 0
		}
		var err error
		dst, _, err = tb.RangeQueryInto(0, lo, lo+31, dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm RangeQueryInto allocates %.2f/op, want 0", allocs)
	}
}
