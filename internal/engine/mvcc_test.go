package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hermit/internal/hermit"
	"hermit/internal/wal"
)

func newTxnTable(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("t", []string{"pk", "a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert([]float64{float64(i), float64(i * 2), float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	return db, tb
}

// TestSnapshotIsolationReads: a snapshot keeps resolving the state it was
// taken at while later commits land — updates, deletes and inserts.
func TestSnapshotIsolationReads(t *testing.T) {
	db, tb := newTxnTable(t)
	snap := db.Snapshot()
	defer snap.Release()

	if err := tb.UpdateColumn(10, 1, 999); err != nil {
		t.Fatal(err)
	}
	if ok, err := tb.Delete(20); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, err := tb.Insert([]float64{500, 1, 2}); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still sees the pre-mutation state.
	rids, _, err := tb.PointQueryAt(snap, 0, 10)
	if err != nil || len(rids) != 1 {
		t.Fatalf("snapshot pk 10: %d rids, err %v", len(rids), err)
	}
	if v, _ := tb.Store().Value(rids[0], 1); v != 20 {
		t.Fatalf("snapshot read col a = %v, want pre-update 20", v)
	}
	if rids, _, _ := tb.PointQueryAt(snap, 0, 20); len(rids) != 1 {
		t.Fatalf("snapshot lost deleted row: %d rids", len(rids))
	}
	if rids, _, _ := tb.PointQueryAt(snap, 0, 500); len(rids) != 0 {
		t.Fatalf("snapshot sees later insert: %d rids", len(rids))
	}

	// A fresh read sees the new state.
	if rids, _, _ := tb.PointQuery(0, 20); len(rids) != 0 {
		t.Fatalf("latest read sees deleted row")
	}
	rids, _, _ = tb.PointQuery(0, 10)
	if v, _ := tb.Store().Value(rids[0], 1); v != 999 {
		t.Fatalf("latest read col a = %v, want 999", v)
	}
}

// TestTxnCommitAtomicVisibility: no snapshot may ever see part of a
// transaction — readers hammer the table while a txn updates many rows.
func TestTxnCommitAtomicVisibility(t *testing.T) {
	db, tb := newTxnTable(t)
	const rounds = 30
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Column b of rows 0..9 must always be uniform: each txn sets
			// all ten to the same generation value.
			rids, _, err := tb.RangeQuery(0, 0, 9)
			if err != nil || len(rids) != 10 {
				t.Errorf("reader: %d rids err=%v", len(rids), err)
				return
			}
			first, _ := tb.Store().Value(rids[0], 2)
			for _, rid := range rids[1:] {
				v, _ := tb.Store().Value(rid, 2)
				if v != first {
					t.Errorf("torn transaction observed: b=%v and b=%v", first, v)
					return
				}
			}
		}
	}()
	for g := 1; g <= rounds; g++ {
		x := db.Begin()
		for pk := 0; pk < 10; pk++ {
			if err := x.Update(tb, float64(pk), 2, 1000+float64(g)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := x.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTxnFirstCommitterWins: two transactions writing the same key — the
// second committer aborts with ErrWriteConflict and applies nothing.
func TestTxnFirstCommitterWins(t *testing.T) {
	db, tb := newTxnTable(t)
	x1 := db.Begin()
	x2 := db.Begin()
	if err := x1.Update(tb, 5, 1, 111); err != nil {
		t.Fatal(err)
	}
	if err := x2.Update(tb, 5, 1, 222); err != nil {
		t.Fatal(err)
	}
	if err := x2.Update(tb, 6, 1, 333); err != nil {
		t.Fatal(err)
	}
	if _, err := x1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if _, err := x2.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second committer: %v, want ErrWriteConflict", err)
	}
	// x2 applied nothing, not even its non-conflicting write.
	rids, _, _ := tb.PointQuery(0, 5)
	if v, _ := tb.Store().Value(rids[0], 1); v != 111 {
		t.Fatalf("pk 5 col a = %v, want x1's 111", v)
	}
	rids, _, _ = tb.PointQuery(0, 6)
	if v, _ := tb.Store().Value(rids[0], 1); v != 12 {
		t.Fatalf("pk 6 col a = %v, want untouched 12", v)
	}
	// Delete-after-snapshot also conflicts.
	x3 := db.Begin()
	if err := x3.Update(tb, 7, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Delete(7); err != nil {
		t.Fatal(err)
	}
	if _, err := x3.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("update-vs-delete: %v, want ErrWriteConflict", err)
	}
}

// TestTxnRollbackAndReadYourWrites: buffered writes are visible to the
// transaction's own Get, invisible to everyone else, and vanish on
// rollback.
func TestTxnRollbackAndReadYourWrites(t *testing.T) {
	db, tb := newTxnTable(t)
	x := db.Begin()
	if err := x.Insert(tb, []float64{777, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := x.Update(tb, 3, 1, 42); err != nil {
		t.Fatal(err)
	}
	if found, err := x.Delete(tb, 4); err != nil || !found {
		t.Fatalf("txn delete: %v %v", found, err)
	}
	if row, ok, _ := x.Get(tb, 777); !ok || row[1] != 1 {
		t.Fatalf("read-your-writes insert: %v %v", row, ok)
	}
	if row, ok, _ := x.Get(tb, 3); !ok || row[1] != 42 {
		t.Fatalf("read-your-writes update: %v %v", row, ok)
	}
	if _, ok, _ := x.Get(tb, 4); ok {
		t.Fatal("read-your-writes delete still visible")
	}
	// Other readers see none of it.
	if rids, _, _ := tb.PointQuery(0, 777); len(rids) != 0 {
		t.Fatal("uncommitted insert visible")
	}
	x.Rollback()
	if rids, _, _ := tb.PointQuery(0, 4); len(rids) != 1 {
		t.Fatal("rolled-back delete applied")
	}
	if _, err := x.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after rollback: %v", err)
	}
	// Duplicate insert inside a txn is caught at buffer time.
	y := db.Begin()
	defer y.Rollback()
	if err := y.Insert(tb, []float64{3, 0, 0}); !errors.Is(err, ErrDupKey) {
		t.Fatalf("dup insert in txn: %v", err)
	}
	// Delete then re-insert in one txn replaces the row.
	z := db.Begin()
	if found, err := z.Delete(tb, 8); err != nil || !found {
		t.Fatal("txn delete for replace")
	}
	if err := z.Insert(tb, []float64{8, 4242, 0}); err != nil {
		t.Fatalf("reinsert after delete in txn: %v", err)
	}
	if _, err := z.Commit(); err != nil {
		t.Fatal(err)
	}
	rids, _, _ := tb.PointQuery(0, 8)
	if len(rids) != 1 {
		t.Fatalf("replaced row: %d rids", len(rids))
	}
	if v, _ := tb.Store().Value(rids[0], 1); v != 4242 {
		t.Fatalf("replaced row col a = %v", v)
	}
}

// TestVersionGC: superseded and deleted versions vanish once no snapshot
// can reach them — and survive while one can.
func TestVersionGC(t *testing.T) {
	db, tb := newTxnTable(t)
	snap := db.Snapshot()
	for i := 0; i < 10; i++ {
		if err := tb.UpdateColumn(1, 1, float64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := tb.Delete(2); !ok {
		t.Fatal("delete")
	}
	// The held snapshot pins everything it could read: only versions
	// superseded before it may go (none here are old enough to matter for
	// the chains it reads).
	db.GC()
	if rids, _, _ := tb.PointQueryAt(snap, 0, 1); len(rids) != 1 {
		t.Fatal("GC broke a pinned snapshot (update chain)")
	}
	if rids, _, _ := tb.PointQueryAt(snap, 0, 2); len(rids) != 1 {
		t.Fatal("GC broke a pinned snapshot (deleted row)")
	}
	snap.Release()
	n := db.GC()
	if n == 0 {
		t.Fatal("GC reclaimed nothing after snapshot release")
	}
	// Latest state intact: pk 1 updated, pk 2 gone, everything queryable.
	rids, _, err := tb.RangeQuery(0, 0, 99)
	if err != nil || len(rids) != 99 {
		t.Fatalf("after GC: %d rids err=%v", len(rids), err)
	}
	rids, _, _ = tb.PointQuery(0, 1)
	if v, _ := tb.Store().Value(rids[0], 1); v != 1009 {
		t.Fatalf("after GC pk 1 col a = %v", v)
	}
	if rids, _, _ := tb.PointQuery(1, 1009); len(rids) != 1 {
		t.Fatalf("secondary-path query after GC broken")
	}
	// Deleted key's chain is fully reclaimed: a re-insert starts fresh.
	if _, err := tb.Insert([]float64{2, 5, 5}); err != nil {
		t.Fatalf("reinsert after GC: %v", err)
	}
	// Repeated GC with no garbage is a no-op.
	if n := db.GC(); n != 0 {
		t.Fatalf("idle GC reclaimed %d", n)
	}
}

// TestDurableTxnRoundTrip: committed durable transactions survive
// close/reopen; a rolled-back one leaves no trace.
func TestDurableTxnRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := d.Insert("t", []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tx := d.Begin()
	if err := tx.Insert("t", []float64{100, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", 5, 1, 55); err != nil {
		t.Fatal(err)
	}
	if found, err := tx.Delete("t", 6); err != nil || !found {
		t.Fatal("durable txn delete")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rb := d.Begin()
	if err := rb.Insert("t", []float64{200, 2}); err != nil {
		t.Fatal(err)
	}
	rb.Rollback()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n, serr := d2.RecoverySkipped(); n != 0 {
		t.Fatalf("recovery skipped %d (%v)", n, serr)
	}
	if n := d2.RecoveryUncommitted(); n != 0 {
		t.Fatalf("clean shutdown left %d uncommitted txns", n)
	}
	tb, err := d2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 20 { // 20 inserts + 1 txn insert - 1 txn delete
		t.Fatalf("recovered %d rows, want 20", tb.Len())
	}
	if rids, _, _ := tb.PointQuery(0, 100); len(rids) != 1 {
		t.Fatal("committed txn insert lost")
	}
	if rids, _, _ := tb.PointQuery(0, 200); len(rids) != 0 {
		t.Fatal("rolled-back txn insert recovered")
	}
	rids, _, _ := tb.PointQuery(0, 5)
	if v, _ := tb.Store().Value(rids[0], 1); v != 55 {
		t.Fatalf("committed txn update lost: %v", v)
	}
	if rids, _, _ := tb.PointQuery(0, 6); len(rids) != 0 {
		t.Fatal("committed txn delete lost")
	}
}

// TestRecoveryDiscardsUncommittedTail injects a crash between a durable
// transaction's apply and its commit record: the log holds txn-begin and
// the mutations but no commit. Recovery must roll the transaction back —
// and count it — while keeping every acknowledged auto-commit.
func TestRecoveryDiscardsUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := d.Insert("t", []float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash simulation: append the transaction's records by hand, without
	// the commit — byte-identical to a process kill after the mutation
	// frames were written but before OpTxnCommit.
	walPath := fmt.Sprintf("%s/wal.%08d.log", dir, 0)
	l, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	const txnID = 7777
	if _, err := l.Append(wal.Record{Op: wal.OpTxnBegin, Txn: txnID}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(wal.Record{
			Op: wal.OpInsert, Txn: txnID, Table: "t",
			Payload: encodeFloats([]float64{float64(100 + i), 1}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := d2.RecoveryUncommitted(); n != 1 {
		t.Fatalf("RecoveryUncommitted = %d, want 1", n)
	}
	if n, serr := d2.RecoverySkipped(); n != 0 {
		t.Fatalf("recovery skipped %d (%v)", n, serr)
	}
	tb, err := d2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 10 {
		t.Fatalf("recovered %d rows, want 10 (uncommitted tail must roll back)", tb.Len())
	}
	for i := 0; i < 3; i++ {
		if rids, _, _ := tb.PointQuery(0, float64(100+i)); len(rids) != 0 {
			t.Fatalf("uncommitted insert %d recovered", 100+i)
		}
	}
	// A committed transaction in the same log still applies after reopen.
	tx := d2.Begin()
	if err := tx.Insert("t", []float64{300, 9}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	tb3, _ := d3.Table("t")
	if rids, _, _ := tb3.PointQuery(0, 300); len(rids) != 1 {
		t.Fatal("committed txn lost after second recovery")
	}
}

// TestCheckpointRunsVersionGC: the version-GC pass rides compaction (off
// the checkpoint critical path), so after a checkpoint plus one compaction
// round the store stops accumulating dead versions, and recovery rebuilds
// cleanly even after heavy update churn.
func TestCheckpointRunsVersionGC(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableOptions(dir, hermit.PhysicalPointers, DurableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []string{"pk", "v"}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := d.Insert("t", []float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			if err := d.UpdateColumn("t", float64(i), 1, float64(round+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tb, _ := d.Table("t")
	if tb.Store().Len() <= 50 {
		t.Fatalf("precondition: expected dead versions in store, len=%d", tb.Store().Len())
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint itself no longer GCs; the compaction round that
	// follows it does (the flush snapshot has advanced past the churn).
	if _, err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := tb.Store().Len(); got != 50 {
		t.Fatalf("store holds %d rows after compaction GC, want 50", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb2, _ := d2.Table("t")
	if tb2.Len() != 50 {
		t.Fatalf("recovered %d rows, want 50", tb2.Len())
	}
	rids, _, _ := tb2.PointQuery(0, 7)
	if v, _ := tb2.Store().Value(rids[0], 1); v != 5 {
		t.Fatalf("recovered pk 7 v = %v, want 5", v)
	}
}
