package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hermit/internal/storage"
)

// This file is the batched executor. Since the MVCC rework a batch that
// contains mutations is one atomic snapshot-isolation transaction: queries
// in the batch read the snapshot taken when the batch starts, mutations
// buffer into the transaction and commit together — all of them or none.
// Read-only batches keep the PR-1 behaviour of draining across a worker
// pool, now with every worker sharing one snapshot so the whole batch
// observes a single consistent state.

// ErrTxnAborted marks the other mutations of an atomic batch whose
// transaction aborted because one mutation failed (that op carries the
// specific error) or because the commit hit a write-write conflict.
var ErrTxnAborted = errors.New("engine: atomic batch aborted; no mutation was applied")

// OpKind selects what an Op does.
type OpKind int

const (
	// OpRange is a single-column range query (Col, Lo, Hi).
	OpRange OpKind = iota
	// OpPoint is a single-column equality query (Col, Lo).
	OpPoint
	// OpRange2 is a conjunctive two-column range query
	// (Col, Lo, Hi) AND (BCol, BLo, BHi).
	OpRange2
	// OpInsert appends Row to the table.
	OpInsert
	// OpDelete removes the row with primary key PK.
	OpDelete
	// OpUpdate sets column Col of the row with primary key PK to Value.
	OpUpdate
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRange:
		return "range"
	case OpPoint:
		return "point"
	case OpRange2:
		return "range2"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "update"
	}
}

// isMutation reports whether the op kind writes (unknown kinds count as
// mutations so a malformed batch aborts rather than half-applies).
func (k OpKind) isMutation() bool {
	switch k {
	case OpRange, OpPoint, OpRange2:
		return false
	default:
		return true
	}
}

// Op is one operation in a batch.
type Op struct {
	// Table names the target table (DB.ExecuteBatch only; Table-level
	// batches ignore it).
	Table string
	Kind  OpKind

	// Query operands.
	Col    int
	Lo, Hi float64
	// Second predicate for OpRange2.
	BCol     int
	BLo, BHi float64

	// Write operands.
	Row   []float64 // OpInsert
	PK    float64   // OpDelete, OpUpdate
	Value float64   // OpUpdate
}

// OpResult is the outcome of one Op, at the batch position of its Op.
type OpResult struct {
	// RIDs holds the matching tuples of a query.
	RIDs []storage.RID
	// Stats describes a query's execution.
	Stats QueryStats
	// RID is the location of an inserted row's committed version.
	RID storage.RID
	// Found reports whether an OpDelete removed a row.
	Found bool
	// Err is the per-operation failure, if any. In a batch with mutations
	// a failing mutation aborts the whole transaction: the failing op
	// carries its error and every other mutation carries ErrTxnAborted.
	Err error
}

// runOps drains ops[next..] across workers goroutines, executing each Op
// through exec and writing results in order.
func runOps(ops []Op, workers int, exec func(Op) OpResult) []OpResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	results := make([]OpResult, len(ops))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				results[i] = exec(ops[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// abortBatch finishes an aborted atomic batch: queries after the failing
// op still execute (against the batch snapshot, via query), and every
// sibling mutation — attempted or not — is marked ErrTxnAborted, while
// the failing op keeps its specific error.
func abortBatch(ops []Op, results []OpResult, failed int, query func(Op) OpResult) {
	for i := failed + 1; i < len(ops); i++ {
		if !ops[i].Kind.isMutation() {
			results[i] = query(ops[i])
		}
	}
	for i, op := range ops {
		if op.Kind.isMutation() && i != failed && results[i].Err == nil {
			results[i].Err = ErrTxnAborted
		}
	}
}

// hasMutations reports whether any op in the batch writes.
func hasMutations(ops []Op) bool {
	for _, op := range ops {
		if op.Kind.isMutation() {
			return true
		}
	}
	return false
}

// queryOpAt executes one read-only op against the snapshot.
func (t *Table) queryOpAt(snap *Snapshot, op Op) OpResult {
	var r OpResult
	switch op.Kind {
	case OpRange:
		r.RIDs, r.Stats, r.Err = t.RangeQueryAt(snap, op.Col, op.Lo, op.Hi)
	case OpPoint:
		r.RIDs, r.Stats, r.Err = t.PointQueryAt(snap, op.Col, op.Lo)
	case OpRange2:
		r.RIDs, r.Stats, r.Err = t.RangeQuery2At(snap, op.Col, op.Lo, op.Hi, op.BCol, op.BLo, op.BHi)
	default:
		r.Err = fmt.Errorf("engine: unknown op kind %d", op.Kind)
	}
	return r
}

// executeAtomic runs a batch containing mutations as one transaction on
// clock. resolve maps an op to its table. Queries read the transaction's
// snapshot; mutations buffer and commit together. Any mutation failure —
// including an unresolvable table or a commit conflict — aborts the whole
// transaction, leaving every mutation unapplied.
func executeAtomic(clock *Clock, ops []Op, resolve func(Op) (*Table, error)) []OpResult {
	results := make([]OpResult, len(ops))
	x := BeginTxn(clock)
	defer x.Rollback()
	type ins struct {
		i  int
		t  *Table
		pk float64
	}
	var (
		inserts []ins
		mutIdx  []int
		failed  = -1
	)
	for i, op := range ops {
		tb, err := resolve(op)
		if err != nil {
			results[i].Err = err
			if op.Kind.isMutation() {
				failed = i
				break
			}
			continue
		}
		if !op.Kind.isMutation() {
			results[i] = tb.queryOpAt(x.Snapshot(), op)
			continue
		}
		mutIdx = append(mutIdx, i)
		switch op.Kind {
		case OpInsert:
			if results[i].Err = x.Insert(tb, op.Row); results[i].Err == nil {
				inserts = append(inserts, ins{i: i, t: tb, pk: op.Row[tb.pkCol]})
			}
		case OpDelete:
			results[i].Found, results[i].Err = x.Delete(tb, op.PK)
		case OpUpdate:
			results[i].Err = x.Update(tb, op.PK, op.Col, op.Value)
		default:
			results[i].Err = fmt.Errorf("engine: unknown op kind %d", op.Kind)
		}
		if results[i].Err != nil {
			failed = i
			break
		}
	}
	if failed >= 0 {
		abortBatch(ops, results, failed, func(op Op) OpResult {
			tb, err := resolve(op)
			if err != nil {
				return OpResult{Err: err}
			}
			return tb.queryOpAt(x.Snapshot(), op)
		})
		return results
	}
	res, err := x.Commit()
	if err != nil {
		for _, i := range mutIdx {
			results[i].Err = err
		}
		return results
	}
	for _, in := range inserts {
		results[in.i].RID = res.RIDs[in.t][in.pk]
	}
	return results
}

// ExecuteBatch runs a batch of operations across tables. A batch with any
// mutation executes as one atomic snapshot-isolation transaction: queries
// read the batch-start snapshot, mutations apply all-or-nothing (a failed
// mutation or a write-write conflict aborts every mutation — see
// OpResult.Err), and workers is ignored for the transactional part. A
// read-only batch drains across a pool of workers goroutines (<= 0 selects
// GOMAXPROCS) sharing one snapshot. Results are positionally aligned with
// ops.
func (db *DB) ExecuteBatch(ops []Op, workers int) []OpResult {
	resolve := func(op Op) (*Table, error) { return db.Table(op.Table) }
	if hasMutations(ops) {
		return executeAtomic(db.clock, ops, resolve)
	}
	snap := db.Snapshot()
	defer snap.Release()
	return runOps(ops, workers, func(op Op) OpResult {
		tb, err := resolve(op)
		if err != nil {
			return OpResult{Err: err}
		}
		return tb.queryOpAt(snap, op)
	})
}

// ExecuteBatch runs a batch of operations against this table; Op.Table is
// ignored. See DB.ExecuteBatch for the atomicity contract.
func (t *Table) ExecuteBatch(ops []Op, workers int) []OpResult {
	resolve := func(Op) (*Table, error) { return t, nil }
	if hasMutations(ops) {
		return executeAtomic(t.clock, ops, resolve)
	}
	snap := t.clock.Snapshot()
	defer snap.Release()
	return runOps(ops, workers, func(op Op) OpResult { return t.queryOpAt(snap, op) })
}

// QueryConcurrent serves a slice of single-column range queries against
// one table on a pool of workers goroutines: the durable counterpart of
// Table.QueryConcurrent.
func (d *DurableDB) QueryConcurrent(table string, queries []RangeReq, workers int) []OpResult {
	ops := make([]Op, len(queries))
	for i, q := range queries {
		ops[i] = Op{Table: table, Kind: OpRange, Col: q.Col, Lo: q.Lo, Hi: q.Hi}
	}
	return d.ExecuteBatch(ops, workers)
}

// QueryConcurrent serves a slice of single-column range queries on a pool
// of workers goroutines, all reading one shared snapshot: the read-only
// fast path of ExecuteBatch. Queries on different indexes proceed without
// contention, and none of them can observe a concurrent batch partially.
func (t *Table) QueryConcurrent(queries []RangeReq, workers int) []OpResult {
	ops := make([]Op, len(queries))
	for i, q := range queries {
		ops[i] = Op{Kind: OpRange, Col: q.Col, Lo: q.Lo, Hi: q.Hi}
	}
	return t.ExecuteBatch(ops, workers)
}

// RangeReq is one single-column range predicate for QueryConcurrent.
type RangeReq struct {
	Col    int
	Lo, Hi float64
}
