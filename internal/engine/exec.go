package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hermit/internal/storage"
)

// This file is the batched executor: a worker pool that drains a slice of
// operations across goroutines, relying on the engine's fine-grained
// latching (latches.go) for correctness. It is the serving surface a real
// deployment would put behind a network front end, and the machinery the
// concurrency benchmark drives.

// OpKind selects what an Op does.
type OpKind int

const (
	// OpRange is a single-column range query (Col, Lo, Hi).
	OpRange OpKind = iota
	// OpPoint is a single-column equality query (Col, Lo).
	OpPoint
	// OpRange2 is a conjunctive two-column range query
	// (Col, Lo, Hi) AND (BCol, BLo, BHi).
	OpRange2
	// OpInsert appends Row to the table.
	OpInsert
	// OpDelete removes the row with primary key PK.
	OpDelete
	// OpUpdate sets column Col of the row with primary key PK to Value.
	OpUpdate
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRange:
		return "range"
	case OpPoint:
		return "point"
	case OpRange2:
		return "range2"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "update"
	}
}

// Op is one operation in a batch.
type Op struct {
	// Table names the target table (DB.ExecuteBatch only; Table-level
	// batches ignore it).
	Table string
	Kind  OpKind

	// Query operands.
	Col    int
	Lo, Hi float64
	// Second predicate for OpRange2.
	BCol     int
	BLo, BHi float64

	// Write operands.
	Row   []float64 // OpInsert
	PK    float64   // OpDelete, OpUpdate
	Value float64   // OpUpdate
}

// OpResult is the outcome of one Op, at the batch position of its Op.
type OpResult struct {
	// RIDs holds the matching tuples of a query.
	RIDs []storage.RID
	// Stats describes a query's execution.
	Stats QueryStats
	// RID is the location of an inserted row.
	RID storage.RID
	// Found reports whether an OpDelete removed a row.
	Found bool
	// Err is the per-operation failure, if any.
	Err error
}

// runOps drains ops[next..] across workers goroutines, executing each Op
// through exec and writing results in order.
func runOps(ops []Op, workers int, exec func(Op) OpResult) []OpResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	results := make([]OpResult, len(ops))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				results[i] = exec(ops[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// execOp dispatches one operation against the table.
func (t *Table) execOp(op Op) OpResult {
	var r OpResult
	switch op.Kind {
	case OpRange:
		r.RIDs, r.Stats, r.Err = t.RangeQuery(op.Col, op.Lo, op.Hi)
	case OpPoint:
		r.RIDs, r.Stats, r.Err = t.PointQuery(op.Col, op.Lo)
	case OpRange2:
		r.RIDs, r.Stats, r.Err = t.RangeQuery2(op.Col, op.Lo, op.Hi, op.BCol, op.BLo, op.BHi)
	case OpInsert:
		r.RID, r.Err = t.Insert(op.Row)
	case OpDelete:
		r.Found, r.Err = t.Delete(op.PK)
	case OpUpdate:
		r.Err = t.UpdateColumn(op.PK, op.Col, op.Value)
	default:
		r.Err = fmt.Errorf("engine: unknown op kind %d", op.Kind)
	}
	return r
}

// ExecuteBatch runs a batch of operations across tables on a pool of
// workers goroutines (<= 0 selects GOMAXPROCS). Results are positionally
// aligned with ops; per-operation failures land in OpResult.Err rather
// than aborting the batch. Operations in one batch may be reordered by
// scheduling — callers needing an order between two ops must put them in
// separate batches.
func (db *DB) ExecuteBatch(ops []Op, workers int) []OpResult {
	return runOps(ops, workers, func(op Op) OpResult {
		tb, err := db.Table(op.Table)
		if err != nil {
			return OpResult{Err: err}
		}
		return tb.execOp(op)
	})
}

// ExecuteBatch runs a batch of operations against this table; Op.Table is
// ignored. See DB.ExecuteBatch.
func (t *Table) ExecuteBatch(ops []Op, workers int) []OpResult {
	return runOps(ops, workers, t.execOp)
}

// ExecuteBatch runs a batch of operations on a pool of workers goroutines,
// with mutations logged through the WAL: the durable counterpart of
// DB.ExecuteBatch. Writes in one batch are acknowledged under the sync
// policy individually, so under group commit the batch amortises fsyncs
// across its workers. See DB.ExecuteBatch for ordering semantics.
func (d *DurableDB) ExecuteBatch(ops []Op, workers int) []OpResult {
	return runOps(ops, workers, d.execOp)
}

// execOp dispatches one operation: mutations through the logged durable
// methods, queries straight at the table.
func (d *DurableDB) execOp(op Op) OpResult {
	var r OpResult
	switch op.Kind {
	case OpInsert:
		r.RID, r.Err = d.Insert(op.Table, op.Row)
	case OpDelete:
		r.Found, r.Err = d.Delete(op.Table, op.PK)
	case OpUpdate:
		r.Err = d.UpdateColumn(op.Table, op.PK, op.Col, op.Value)
	default:
		tb, err := d.db.Table(op.Table)
		if err != nil {
			return OpResult{Err: err}
		}
		r = tb.execOp(op)
	}
	return r
}

// QueryConcurrent serves a slice of single-column range queries against
// one table on a pool of workers goroutines: the durable counterpart of
// Table.QueryConcurrent.
func (d *DurableDB) QueryConcurrent(table string, queries []RangeReq, workers int) []OpResult {
	ops := make([]Op, len(queries))
	for i, q := range queries {
		ops[i] = Op{Table: table, Kind: OpRange, Col: q.Col, Lo: q.Lo, Hi: q.Hi}
	}
	return d.ExecuteBatch(ops, workers)
}

// QueryConcurrent serves a slice of single-column range queries on a pool
// of workers goroutines. It is the read-only fast path of ExecuteBatch:
// queries on different indexes proceed without contention.
func (t *Table) QueryConcurrent(queries []RangeReq, workers int) []OpResult {
	ops := make([]Op, len(queries))
	for i, q := range queries {
		ops[i] = Op{Kind: OpRange, Col: q.Col, Lo: q.Lo, Hi: q.Hi}
	}
	return t.ExecuteBatch(ops, workers)
}

// RangeReq is one single-column range predicate for QueryConcurrent.
type RangeReq struct {
	Col    int
	Lo, Hi float64
}
