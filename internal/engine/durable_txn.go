package engine

import (
	"fmt"
	"sort"

	"hermit/internal/wal"
)

// DurableTxn is a snapshot-isolation transaction over a DurableDB:
// mutations buffer in an engine transaction and, at Commit, apply
// atomically and are WAL-logged as a txn-begin / mutations / txn-commit
// record group under one transaction id. Recovery replays the group only
// if the commit record reached the log, so a crash mid-commit rolls the
// whole transaction back. Mutations on partitioned tables route by
// primary-key hash exactly like the auto-commit paths, each record
// carrying its partition id. Like engine.Txn it is not safe for
// concurrent use by multiple goroutines.
type DurableTxn struct {
	d    *DurableDB
	x    *Txn
	recs []wal.Record // mutation records, in buffer order
	pks  []float64    // the d.rows stripe keys Commit must hold
	res  CommitResult // where the committed writes landed (after Commit)
	done bool
}

// Begin starts a durable snapshot-isolation transaction. Only DML is
// transactional; DDL keeps its own logged paths.
func (d *DurableDB) Begin() *DurableTxn {
	return &DurableTxn{d: d, x: BeginTxn(d.db.clock)}
}

// Snapshot returns the transaction's read snapshot (see Txn.Snapshot).
func (tx *DurableTxn) Snapshot() *Snapshot { return tx.x.Snapshot() }

// Result reports where a committed transaction's writes landed (the zero
// value before Commit succeeds).
func (tx *DurableTxn) Result() CommitResult { return tx.res }

// route resolves the engine table and partition id a mutation on (table,
// pk) targets, mirroring DurableDB.mutate.
func (tx *DurableTxn) route(table string, pk float64) (*Table, uint32, error) {
	tx.d.mu.RLock()
	phys, part := table, uint32(0)
	if meta := tx.d.tables[table]; meta != nil && meta.Partitions > 0 {
		p := PartitionOf(pk, meta.Partitions)
		phys, part = PartitionName(table, p), uint32(p)
	}
	tx.d.mu.RUnlock()
	tb, err := tx.d.db.Table(phys)
	return tb, part, err
}

// record buffers the WAL record for one accepted mutation.
func (tx *DurableTxn) record(rec wal.Record, pk float64) {
	tx.recs = append(tx.recs, rec)
	tx.pks = append(tx.pks, pk)
}

// Insert buffers a row insert (see Txn.Insert).
func (tx *DurableTxn) Insert(table string, row []float64) error {
	if tx.done {
		return ErrTxnDone
	}
	var pk float64
	tx.d.mu.RLock()
	meta := tx.d.tables[table]
	if meta == nil {
		tx.d.mu.RUnlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if meta.PKCol < len(row) {
		pk = row[meta.PKCol]
	}
	tx.d.mu.RUnlock()
	tb, part, err := tx.route(table, pk)
	if err != nil {
		return err
	}
	if err := tx.x.Insert(tb, row); err != nil {
		return err
	}
	tx.record(wal.Record{Op: wal.OpInsert, Table: table, Part: part, Payload: encodeFloats(row)}, pk)
	return nil
}

// Delete buffers a delete (see Txn.Delete). Deletes of absent keys are
// not logged — there is nothing to replay.
func (tx *DurableTxn) Delete(table string, pk float64) (bool, error) {
	if tx.done {
		return false, ErrTxnDone
	}
	tb, part, err := tx.route(table, pk)
	if err != nil {
		return false, err
	}
	found, err := tx.x.Delete(tb, pk)
	if err != nil || !found {
		return found, err
	}
	tx.record(wal.Record{Op: wal.OpDelete, Table: table, Part: part, Payload: encodeFloats([]float64{pk})}, pk)
	return true, nil
}

// Update buffers a single-column update (see Txn.Update).
func (tx *DurableTxn) Update(table string, pk float64, col int, v float64) error {
	if tx.done {
		return ErrTxnDone
	}
	tb, part, err := tx.route(table, pk)
	if err != nil {
		return err
	}
	if err := tx.x.Update(tb, pk, col, v); err != nil {
		return err
	}
	tx.record(wal.Record{
		Op: wal.OpUpdate, Table: table, Part: part,
		Payload: encodeFloats([]float64{pk, float64(col), v}),
	}, pk)
	return nil
}

// Rollback discards the transaction; nothing was applied or logged.
func (tx *DurableTxn) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.x.Rollback()
}

// Commit applies the buffered writes atomically in memory (first committer
// wins — ErrWriteConflict aborts with nothing applied or logged), then
// logs the whole group under a fresh transaction id and returns once the
// commit record is acknowledged under the sync policy. The write keys'
// durable stripes are held from the in-memory commit through the log
// submits, so per-key log order equals apply order exactly as on the
// auto-commit paths.
func (tx *DurableTxn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	tx.done = true
	d := tx.d
	d.mu.RLock()
	if len(tx.recs) == 0 {
		_, err := tx.x.Commit()
		d.mu.RUnlock()
		return err
	}
	stripes := make([]uint64, 0, len(tx.pks))
	seen := make(map[uint64]bool, len(tx.pks))
	for _, pk := range tx.pks {
		if s := stripeOf(pk); !seen[s] {
			seen[s] = true
			stripes = append(stripes, s)
		}
	}
	sort.Slice(stripes, func(a, b int) bool { return stripes[a] < stripes[b] })
	for _, s := range stripes {
		d.rows.stripes[s].Lock()
	}
	unlock := func() {
		for i := len(stripes) - 1; i >= 0; i-- {
			d.rows.stripes[stripes[i]].Unlock()
		}
	}
	res, err := tx.x.Commit()
	if err != nil {
		unlock()
		d.mu.RUnlock()
		return err
	}
	tx.res = res
	id := d.txnSeq.Add(1)
	var commitTk *wal.Ticket
	submit := func(rec wal.Record) error {
		rec.Txn = id
		tk, err := d.log.Submit(rec)
		commitTk = tk
		return err
	}
	serr := submit(wal.Record{Op: wal.OpTxnBegin})
	for _, rec := range tx.recs {
		if serr != nil {
			break
		}
		serr = submit(rec)
	}
	if serr == nil {
		serr = submit(wal.Record{Op: wal.OpTxnCommit})
	}
	err = serr
	unlock()
	d.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("engine: wal submit after txn apply (in-memory state ahead of log until next checkpoint): %w", err)
	}
	if _, werr := commitTk.Wait(); werr != nil {
		return fmt.Errorf("engine: wal append after txn apply (in-memory state ahead of log until next checkpoint): %w", werr)
	}
	return nil
}

// ExecuteBatch runs a batch of operations with the same atomicity contract
// as DB.ExecuteBatch, durably: a batch containing mutations executes as
// one DurableTxn (queries read the batch-start snapshot; mutations apply
// and are WAL-logged all-or-nothing under one transaction id), while a
// read-only batch drains across a pool of workers goroutines sharing one
// snapshot.
func (d *DurableDB) ExecuteBatch(ops []Op, workers int) []OpResult {
	resolveQuery := func(op Op) (*Table, error) { return d.db.Table(op.Table) }
	if !hasMutations(ops) {
		snap := d.Snapshot()
		defer snap.Release()
		return runOps(ops, workers, func(op Op) OpResult {
			tb, err := resolveQuery(op)
			if err != nil {
				return OpResult{Err: err}
			}
			return tb.queryOpAt(snap, op)
		})
	}
	results := make([]OpResult, len(ops))
	tx := d.Begin()
	defer tx.Rollback()
	type ins struct {
		i  int
		t  *Table
		pk float64
	}
	var (
		inserts []ins
		mutIdx  []int
		failed  = -1
	)
	for i, op := range ops {
		if !op.Kind.isMutation() {
			if tb, err := resolveQuery(op); err != nil {
				results[i].Err = err
			} else {
				results[i] = tb.queryOpAt(tx.Snapshot(), op)
			}
			continue
		}
		mutIdx = append(mutIdx, i)
		switch op.Kind {
		case OpInsert:
			if results[i].Err = tx.Insert(op.Table, op.Row); results[i].Err == nil {
				// Remember where the row routed so the committed version's
				// RID can be reported (the last buffered record is this op's).
				pk := tx.pks[len(tx.pks)-1]
				if tb, _, err := tx.route(op.Table, pk); err == nil {
					inserts = append(inserts, ins{i: i, t: tb, pk: pk})
				}
			}
		case OpDelete:
			results[i].Found, results[i].Err = tx.Delete(op.Table, op.PK)
		case OpUpdate:
			results[i].Err = tx.Update(op.Table, op.PK, op.Col, op.Value)
		default:
			results[i].Err = fmt.Errorf("engine: unknown op kind %d", op.Kind)
		}
		if results[i].Err != nil {
			failed = i
			break
		}
	}
	if failed >= 0 {
		abortBatch(ops, results, failed, func(op Op) OpResult {
			tb, err := resolveQuery(op)
			if err != nil {
				return OpResult{Err: err}
			}
			return tb.queryOpAt(tx.Snapshot(), op)
		})
		return results
	}
	if err := tx.Commit(); err != nil {
		for _, i := range mutIdx {
			results[i].Err = err
		}
		return results
	}
	for _, in := range inserts {
		results[in.i].RID = tx.Result().RIDs[in.t][in.pk]
	}
	return results
}
