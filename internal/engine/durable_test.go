package engine

import (
	"math/rand"
	"os"
	"testing"

	"hermit/internal/hermit"
	"hermit/internal/trstree"
)

// populateDurable creates the Synthetic table with a host index and a
// Hermit index through the durable layer.
func populateDurable(t *testing.T, d *DurableDB, n int, seed int64) {
	t.Helper()
	if _, err := d.CreateTable("syn", synthCols, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := rng.Float64() * 1000
		if _, err := d.Insert("syn", []float64{float64(i), 2*c + 100, c, rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CreateIndex("syn", IndexDef{Kind: "btree", Col: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateIndex("syn", IndexDef{Kind: "hermit", Col: 2, Host: 1, Params: trstree.DefaultParams()}); err != nil {
		t.Fatal(err)
	}
}

// snapshotResults captures query answers for later comparison.
func snapshotResults(t *testing.T, tb *Table) map[[2]float64]int {
	t.Helper()
	out := map[[2]float64]int{}
	for _, q := range [][2]float64{{0, 100}, {250, 300}, {500, 501}, {900, 1000}} {
		rids, _, err := tb.RangeQuery(2, q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		out[q] = len(rids)
	}
	return out
}

func TestDurableRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	populateDurable(t, d, 3000, 1)
	tb, _ := d.Table("syn")
	want := snapshotResults(t, tb)
	// Simulate crash: close without checkpoint.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb2, err := d2.Table("syn")
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != 3000 {
		t.Fatalf("recovered %d rows", tb2.Len())
	}
	if tb2.IndexOn(2) != KindHermit {
		t.Fatalf("hermit index not rebuilt: %v", tb2.IndexOn(2))
	}
	got := snapshotResults(t, tb2)
	for q, n := range want {
		if got[q] != n {
			t.Fatalf("query %v: got %d rows, want %d", q, got[q], n)
		}
	}
}

func TestDurableCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	populateDurable(t, d, 2000, 2)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: more inserts, updates, deletes.
	for i := 2000; i < 2500; i++ {
		c := float64(i % 1000)
		if _, err := d.Insert("syn", []float64{float64(i), 2*c + 100, c, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Delete("syn", 100); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateColumn("syn", 200, 2, 777.5); err != nil {
		t.Fatal(err)
	}
	tb, _ := d.Table("syn")
	want := snapshotResults(t, tb)
	wantLen := tb.Len()
	d.Close()

	d2, err := OpenDurable(dir, hermit.LogicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb2, _ := d2.Table("syn")
	if tb2.Len() != wantLen {
		t.Fatalf("recovered %d rows, want %d", tb2.Len(), wantLen)
	}
	got := snapshotResults(t, tb2)
	for q, n := range want {
		if got[q] != n {
			t.Fatalf("query %v: got %d want %d", q, got[q], n)
		}
	}
	// The update must be visible.
	rids, _, err := tb2.RangeQuery(2, 777.5, 777.5)
	if err != nil || len(rids) != 1 {
		t.Fatalf("updated row not recovered: %v %v", rids, err)
	}
}

func TestDurableTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	populateDurable(t, d, 500, 3)
	// The record that will be torn: one extra insert after index creation.
	if _, err := d.Insert("syn", []float64{99999, 300, 100, 0}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Tear the final WAL record mid-frame (crash during append).
	walPath := durablePaths{dir}.wal(0)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb, err := d2.Table("syn")
	if err != nil {
		t.Fatal(err)
	}
	// The torn insert is lost; everything before is intact, including the
	// index DDL.
	if tb.Len() != 500 {
		t.Fatalf("recovered %d rows, want 500", tb.Len())
	}
	if tb.IndexOn(2) != KindHermit {
		t.Fatal("index DDL before the torn record lost")
	}
	rids, _, err := tb.PointQuery(0, 99999)
	if err != nil || len(rids) != 0 {
		t.Fatalf("torn insert visible: %v %v", rids, err)
	}
}

func TestDurableSchemeMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	populateDurable(t, d, 100, 4)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenDurable(dir, hermit.LogicalPointers); err == nil {
		t.Fatal("scheme mismatch accepted")
	}
}

func TestDurableCompositeIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("sh", []string{"TIME", "DJ", "SP", "VOL"}, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	dj := 2500.0
	for day := 0; day < 2000; day++ {
		dj *= 1 + rng.NormFloat64()*0.01
		if _, err := d.Insert("sh", []float64{float64(day), dj, dj / 8, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CreateIndex("sh", IndexDef{Kind: "composite-btree", ACol: 0, Col: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateIndex("sh", IndexDef{
		Kind: "composite-hermit", ACol: 0, Col: 2, Host: 1, Params: trstree.DefaultParams(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tb, _ := d2.Table("sh")
	if tb.CompositeHermit(0, 2) == nil {
		t.Fatal("composite hermit not rebuilt")
	}
	rids, _, err := tb.RangeQuery2(0, 100, 200, 2, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 101 {
		t.Fatalf("recovered composite query returned %d rows", len(rids))
	}
}

func TestDurableUnknownIndexKind(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.CreateTable("t", []string{"a", "b"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateIndex("t", IndexDef{Kind: "voodoo"}); err == nil {
		t.Fatal("unknown index kind accepted")
	}
	if _, err := d.Insert("nope", []float64{1}); err == nil {
		t.Fatal("insert into missing table accepted")
	}
}
