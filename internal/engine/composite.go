package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hermit/internal/btree"
	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// colPair identifies a two-column index by its (leading, second) columns.
type colPair [2]int

// CreateCompositeBTreeIndex bulk-builds a complete composite B+-tree index
// on (aCol, bCol) — the shape of the paper's (TIME, DJ) host index.
// Composite indexes store physical RIDs, so they require the physical
// tuple-identifier scheme.
func (t *Table) CreateCompositeBTreeIndex(aCol, bCol int, markNew bool) (*btree.CompositeTree, error) {
	if aCol < 0 || aCol >= len(t.cols) || bCol < 0 || bCol >= len(t.cols) {
		return nil, ErrNoSuchColumn
	}
	if t.scheme != hermit.PhysicalPointers {
		return nil, fmt.Errorf("engine: composite indexes require physical pointers")
	}
	t.catalog.Lock()
	defer t.catalog.Unlock()
	key := colPair{aCol, bCol}
	if t.composites == nil {
		t.composites = make(map[colPair]*btree.CompositeTree)
	}
	if _, dup := t.composites[key]; dup {
		return nil, ErrDupIndex
	}
	// As in CreateBTreeIndex, fill the bulk-load arrays directly and sort
	// them jointly rather than staging an intermediate entries slice.
	as := make([]float64, 0, t.store.Len())
	bs := make([]float64, 0, t.store.Len())
	ids := make([]uint64, 0, t.store.Len())
	t.store.Scan(func(rid storage.RID, row []float64) bool {
		as = append(as, row[aCol])
		bs = append(bs, row[bCol])
		ids = append(ids, uint64(rid))
		return true
	})
	sort.Sort(abIDSorter{as: as, bs: bs, ids: ids})
	tr := btree.NewComposite(btree.DefaultOrder)
	if err := tr.BulkLoad(as, bs, ids); err != nil {
		return nil, err
	}
	t.composites[key] = tr
	t.compositeMu.add(key)
	if markNew {
		if t.compositeNew == nil {
			t.compositeNew = make(map[colPair]bool)
		}
		t.compositeNew[key] = true
	}
	return tr, nil
}

// abIDSorter orders the parallel composite bulk-load arrays jointly by
// (a, b, id), swapping all three slices in lockstep.
type abIDSorter struct {
	as, bs []float64
	ids    []uint64
}

func (s abIDSorter) Len() int { return len(s.as) }

func (s abIDSorter) Less(x, y int) bool {
	if s.as[x] != s.as[y] {
		return s.as[x] < s.as[y]
	}
	if s.bs[x] != s.bs[y] {
		return s.bs[x] < s.bs[y]
	}
	return s.ids[x] < s.ids[y]
}

func (s abIDSorter) Swap(x, y int) {
	s.as[x], s.as[y] = s.as[y], s.as[x]
	s.bs[x], s.bs[y] = s.bs[y], s.bs[x]
	s.ids[x], s.ids[y] = s.ids[y], s.ids[x]
}

// CreateCompositeHermitIndex builds a multi-column Hermit index on
// (aCol, mCol) using the existing composite index on (aCol, nCol) as host
// (paper §3; the running example's (TIME, SP) over (TIME, DJ)).
func (t *Table) CreateCompositeHermitIndex(aCol, mCol, nCol int, opts ...HermitOption) (*hermit.CompositeIndex, error) {
	if aCol < 0 || aCol >= len(t.cols) || mCol < 0 || mCol >= len(t.cols) || nCol < 0 || nCol >= len(t.cols) {
		return nil, ErrNoSuchColumn
	}
	if t.scheme != hermit.PhysicalPointers {
		return nil, fmt.Errorf("engine: composite indexes require physical pointers")
	}
	t.catalog.Lock()
	defer t.catalog.Unlock()
	host, ok := t.composites[colPair{aCol, nCol}]
	if !ok {
		return nil, ErrNoHostIndex
	}
	key := colPair{aCol, mCol}
	if t.compositeHermits == nil {
		t.compositeHermits = make(map[colPair]*hermit.CompositeIndex)
	}
	if _, dup := t.compositeHermits[key]; dup {
		return nil, ErrDupIndex
	}
	o := hermitOpts{params: trstree.DefaultParams()}
	for _, opt := range opts {
		opt(&o)
	}
	hx, err := hermit.NewComposite(t.store, host, hermit.CompositeConfig{
		ACol: aCol, TargetCol: mCol, HostCol: nCol,
		Params: o.params, Profile: o.profile,
	})
	if err != nil {
		return nil, err
	}
	t.compositeHermits[key] = hx
	if t.compositeHostOf == nil {
		t.compositeHostOf = make(map[colPair]int)
	}
	t.compositeHostOf[key] = nCol
	return hx, nil
}

// CompositeHermit returns the composite Hermit index on (aCol, mCol), if any.
func (t *Table) CompositeHermit(aCol, mCol int) *hermit.CompositeIndex {
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	return t.compositeHermits[colPair{aCol, mCol}]
}

// RangeQuery2 answers the conjunctive predicate
//
//	aLo <= aCol <= aHi AND bLo <= bCol <= bHi
//
// through the best available two-column access path: a composite Hermit
// index on (aCol, bCol), a complete composite index, or a single-column
// plan on whichever column has an index (fetch + residual filter), falling
// back to a table scan.
func (t *Table) RangeQuery2(aCol int, aLo, aHi float64, bCol int, bLo, bHi float64) ([]storage.RID, QueryStats, error) {
	snap := t.clock.Snapshot()
	defer snap.Release()
	return t.RangeQuery2At(snap, aCol, aLo, aHi, bCol, bLo, bHi)
}

// RangeQuery2At is RangeQuery2 reading at the caller's snapshot.
// Composite indexes are physical-pointer-only, so candidates are version
// RIDs and visibility filters them directly.
func (t *Table) RangeQuery2At(snap *Snapshot, aCol int, aLo, aHi float64, bCol int, bLo, bHi float64) ([]storage.RID, QueryStats, error) {
	if aCol < 0 || aCol >= len(t.cols) || bCol < 0 || bCol >= len(t.cols) {
		return nil, QueryStats{}, ErrNoSuchColumn
	}
	t.catalog.RLock()
	defer t.catalog.RUnlock()
	if hx, ok := t.compositeHermits[colPair{aCol, bCol}]; ok {
		// The composite Hermit lookup traverses its self-latching TRS-Tree
		// plus the hosting composite B+-tree, which is engine-latched.
		hostMu := t.compositeMu.get(colPair{aCol, t.compositeHostOf[colPair{aCol, bCol}]})
		hostMu.RLock()
		res := hx.Lookup(aLo, aHi, bLo, bHi)
		hostMu.RUnlock()
		rids := t.filterVersions(snap, res.RIDs)
		return rids, QueryStats{
			Kind: KindHermit, Rows: len(rids),
			Candidates: res.Candidates, Breakdown: res.Breakdown,
		}, nil
	}
	if tr, ok := t.composites[colPair{aCol, bCol}]; ok {
		return t.compositeBaseline(snap, tr, t.compositeMu.get(colPair{aCol, bCol}), aLo, aHi, bLo, bHi)
	}
	// Single-column plan with residual filter (version rows are immutable,
	// so the residual check against the returned visible versions is exact).
	rids, st, err := t.rangeQueryLocked(snap, aCol, aLo, aHi)
	if err != nil {
		return nil, st, err
	}
	out := rids[:0]
	for _, rid := range rids {
		v, err := t.store.Value(rid, bCol)
		if err == nil && v >= bLo && v <= bHi {
			out = append(out, rid)
		}
	}
	st.Rows = len(out)
	return out, st, nil
}

// compositeBaseline is the conventional composite-index plan; mu is the
// scanned composite index's latch.
func (t *Table) compositeBaseline(snap *Snapshot, tr *btree.CompositeTree, mu *sync.RWMutex, aLo, aHi, bLo, bHi float64) ([]storage.RID, QueryStats, error) {
	st := QueryStats{Kind: KindBTree}
	profile := t.profile.Load()
	var t0 time.Time
	if profile {
		t0 = time.Now()
	}
	var rids []storage.RID
	mu.RLock()
	tr.Scan(aLo, aHi, bLo, bHi, func(_, _ float64, id uint64) bool {
		rids = append(rids, storage.RID(id))
		return true
	})
	mu.RUnlock()
	if profile {
		st.Breakdown[hermit.PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	st.Candidates = len(rids)
	out := t.filterVersions(snap, rids)
	if profile {
		st.Breakdown[hermit.PhaseBaseTable] += time.Since(t0)
	}
	st.Rows = len(out)
	return out, st, nil
}
