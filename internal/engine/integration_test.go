package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"hermit/internal/hermit"
	"hermit/internal/workload"
)

// TestIntegrationWorkloadLifecycle drives a full lifecycle on the Sensor
// workload: bulk load, hermit + baseline indexing, mixed reads/writes,
// online reorganization in the background, and a final exactness audit.
func TestIntegrationWorkloadLifecycle(t *testing.T) {
	spec := workload.DefaultSensorSpec(15000)
	db := NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("sensor", spec.Columns(), spec.PKCol())
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := tb.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateBTreeIndex(spec.AvgCol(), false); err != nil {
		t.Fatal(err)
	}
	hx, err := tb.CreateHermitIndex(spec.ReadingCol(3), spec.AvgCol())
	if err != nil {
		t.Fatal(err)
	}

	// Background reorganizer fed by the live table.
	hx.Tree().StartReorg(hx.Source(), 20*time.Millisecond)
	defer hx.Tree().StopReorg()

	// Concurrent readers while a writer mutates.
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := rng.Float64() * 400
				if _, _, err := tb.RangeQuery(spec.ReadingCol(3), lo, lo+20); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}

	// Writer: inserts (some badly off-model), updates, deletes.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		row := make([]float64, len(spec.Columns()))
		row[0] = float64(100000 + i)
		var sum float64
		for s := 0; s < spec.Sensors; s++ {
			v := rng.Float64() * 300 // uncorrelated: lands in outlier buffers
			row[spec.ReadingCol(s)] = v
			sum += v
		}
		row[spec.AvgCol()] = sum / float64(spec.Sensors)
		if _, err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if _, err := tb.Delete(float64(100000 + i)); err != nil {
				t.Fatal(err)
			}
		} else if i%11 == 0 {
			if err := tb.UpdateColumn(float64(100000+i), spec.ReadingCol(3), rng.Float64()*300); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	readers.Wait()

	// Give the reorganizer a moment to drain, then audit exactness.
	deadline := time.Now().Add(2 * time.Second)
	for hx.Tree().PendingReorg() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for trial := 0; trial < 20; trial++ {
		lo := rng.Float64() * 400
		hi := lo + rng.Float64()*50
		rids, _, err := tb.RangeQuery(spec.ReadingCol(3), lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRIDs(rids, expected(tb, spec.ReadingCol(3), lo, hi)) {
			t.Fatalf("inexact results after lifecycle for [%v,%v]", lo, hi)
		}
	}
}

// TestIntegrationMultiHermitSharedHost checks several Hermit indexes
// hosted on the same column (the Fig. 20/22 configuration) staying exact
// under updates to the shared host column.
func TestIntegrationMultiHermitSharedHost(t *testing.T) {
	db := NewDB(hermit.LogicalPointers)
	cols := []string{"pk", "host", "t0", "t1", "t2"}
	tb, err := db.CreateTable("multi", cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		h := rng.Float64() * 1000
		if _, err := tb.Insert([]float64{float64(i), h, 2 * h, 3*h + 5, h / 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.CreateBTreeIndex(1, false); err != nil {
		t.Fatal(err)
	}
	for col := 2; col <= 4; col++ {
		if _, err := tb.CreateHermitIndex(col, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Mutate the shared host column for some rows.
	for pk := 0; pk < 500; pk++ {
		if err := tb.UpdateColumn(float64(pk), 1, rng.Float64()*1000); err != nil {
			t.Fatal(err)
		}
	}
	for col := 2; col <= 4; col++ {
		lo := rng.Float64() * 500
		hi := lo + 100
		rids, _, err := tb.RangeQuery(col, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRIDs(rids, expected(tb, col, lo, hi)) {
			t.Fatalf("col %d inexact after host updates", col)
		}
	}
}
