package partition

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hermit/internal/advisor"
	"hermit/internal/correlation"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/trstree"
	"hermit/internal/workload"
)

// newSynthetic builds a partitioned Synthetic table with nrows rows, a
// complete index on the host column and a Hermit index on the target.
func newSynthetic(t *testing.T, parts, nrows int) *Table {
	t.Helper()
	spec := workload.SyntheticSpec{Rows: nrows, Fn: workload.Linear, Noise: 0.01, Seed: 7}
	pt, err := New(hermit.PhysicalPointers, "syn", spec.Columns(), spec.PKCol(),
		Options{Partitions: parts, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := pt.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateHermitIndex(spec.TargetCol(), spec.HostCol(), trstree.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestRoutingSpreadsRows(t *testing.T) {
	pt := newSynthetic(t, 4, 4000)
	if pt.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", pt.Len())
	}
	for i := 0; i < pt.Partitions(); i++ {
		n := pt.Part(i).Len()
		// A uniform hash over 4000 keys should land near 1000 per partition.
		if n < 700 || n > 1300 {
			t.Fatalf("partition %d holds %d rows; hash is skewed", i, n)
		}
	}
}

func TestPointQueryRoutesToOwner(t *testing.T) {
	pt := newSynthetic(t, 4, 2000)
	for pk := float64(0); pk < 50; pk++ {
		rids, st, err := pt.PointQuery(0, pk)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Routed || st.FanOut != 1 {
			t.Fatalf("pk point query: Routed=%v FanOut=%d, want routed single partition", st.Routed, st.FanOut)
		}
		if len(rids) != 1 {
			t.Fatalf("pk %v: %d matches, want 1", pk, len(rids))
		}
		if want := engine.PartitionOf(pk, 4); rids[0].Part != want {
			t.Fatalf("pk %v served by partition %d, owner is %d", pk, rids[0].Part, want)
		}
	}
}

// TestRangeQueryMatchesUnpartitioned checks the scatter-gather result set
// and order against a single-engine table over the same rows.
func TestRangeQueryMatchesUnpartitioned(t *testing.T) {
	spec := workload.SyntheticSpec{Rows: 3000, Fn: workload.Linear, Noise: 0.01, Seed: 7}
	pt := newSynthetic(t, 4, spec.Rows)

	db := engine.NewDB(hermit.PhysicalPointers)
	tb, err := db.CreateTable("flat", spec.Columns(), spec.PKCol())
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := tb.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		col := []int{0, 1, 2}[trial%3]
		lo := rng.Float64() * 900
		hi := lo + rng.Float64()*200
		if col == 1 { // host column values live in [100, 2100]
			lo, hi = 2*lo+100, 2*hi+100
		}
		prids, _, err := pt.RangeQuery(col, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		frids, _, err := tb.RangeQuery(col, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(prids) != len(frids) {
			t.Fatalf("col %d [%v,%v]: partitioned %d rows, flat %d", col, lo, hi, len(prids), len(frids))
		}
		// Same multiset of rows: compare by primary key.
		ppks := make([]float64, len(prids))
		for i, r := range prids {
			v, err := pt.Part(r.Part).Store().Value(r.RID, spec.PKCol())
			if err != nil {
				t.Fatal(err)
			}
			ppks[i] = v
		}
		fpks := make([]float64, len(frids))
		for i, r := range frids {
			v, err := tb.Store().Value(r, spec.PKCol())
			if err != nil {
				t.Fatal(err)
			}
			fpks[i] = v
		}
		sortedP := append([]float64(nil), ppks...)
		sort.Float64s(sortedP)
		sort.Float64s(fpks)
		for i := range fpks {
			if sortedP[i] != fpks[i] {
				t.Fatalf("col %d [%v,%v]: result sets differ at %d", col, lo, hi, i)
			}
		}
		// Ordered merge: results must be sorted by the predicate column.
		prev := lo
		for _, r := range prids {
			v, err := pt.Part(r.Part).Store().Value(r.RID, col)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("col %d: merge out of order (%v after %v)", col, v, prev)
			}
			prev = v
		}
	}
}

func TestMutationsRouteAndMaintainIndexes(t *testing.T) {
	pt := newSynthetic(t, 3, 1000)
	if found, err := pt.Delete(17); err != nil || !found {
		t.Fatalf("Delete(17) = %v, %v", found, err)
	}
	if found, err := pt.Delete(17); err != nil || found {
		t.Fatalf("second Delete(17) = %v, %v; want absent", found, err)
	}
	if rids, _, err := pt.PointQuery(0, 17); err != nil || len(rids) != 0 {
		t.Fatalf("deleted key still visible: %v, %v", rids, err)
	}
	if err := pt.UpdateColumn(18, 2, 123.5); err != nil {
		t.Fatal(err)
	}
	rids, st, err := pt.RangeQuery(2, 123.4, 123.6)
	if err != nil {
		t.Fatal(err)
	}
	if st.FanOut != 3 {
		t.Fatalf("range fan-out %d, want 3", st.FanOut)
	}
	foundPK := false
	for _, r := range rids {
		pk, err := pt.Part(r.Part).Store().Value(r.RID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pk == 18 {
			foundPK = true
		}
	}
	if !foundPK {
		t.Fatal("updated row not found through Hermit index after UpdateColumn")
	}
	// Updating the primary key is rejected on every partition.
	if err := pt.UpdateColumn(18, 0, 9999); err == nil {
		t.Fatal("UpdateColumn on pk column succeeded; want error")
	}
	// Duplicate insert is rejected by the owning partition.
	if _, err := pt.Insert([]float64{18, 1, 2, 3}); err == nil {
		t.Fatal("duplicate insert succeeded; want error")
	}
}

func TestExecuteBatchMixed(t *testing.T) {
	pt := newSynthetic(t, 4, 1000)
	ops := []engine.Op{
		{Kind: engine.OpRange, Col: 2, Lo: 100, Hi: 200},
		{Kind: engine.OpInsert, Row: []float64{5000, 300, 100, 0.5}},
		{Kind: engine.OpPoint, Col: 0, Lo: 42},
		{Kind: engine.OpDelete, PK: 43},
		{Kind: engine.OpUpdate, PK: 44, Col: 3, Value: 0.25},
		{Kind: engine.OpRange2, Col: 2, Lo: 0, Hi: 500, BCol: 3, BLo: 0, BHi: 1},
	}
	res := pt.ExecuteBatch(ops, 3)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d failed: %v", i, r.Err)
		}
	}
	if !res[2].Stats.Routed {
		t.Fatal("pk point op did not route")
	}
	if !res[3].Found {
		t.Fatal("delete op did not find its key")
	}
	if res[5].Stats.FanOut != 4 {
		t.Fatalf("range2 fan-out %d, want 4", res[5].Stats.FanOut)
	}
}

func TestExplainReportsFanOut(t *testing.T) {
	pt := newSynthetic(t, 4, 2000)
	plan, err := pt.Explain(2, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Routed || plan.FanOut != 4 {
		t.Fatalf("range Explain: Routed=%v FanOut=%d, want scatter over 4", plan.Routed, plan.FanOut)
	}
	if len(plan.PerPartition) != 4 {
		t.Fatalf("PerPartition has %d plans", len(plan.PerPartition))
	}
	if plan.TotalCostNS <= 0 || plan.CriticalCostNS <= 0 || plan.CriticalCostNS > plan.TotalCostNS {
		t.Fatalf("cost aggregation: total=%v critical=%v", plan.TotalCostNS, plan.CriticalCostNS)
	}
	point, err := pt.Explain(0, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !point.Routed || point.FanOut != 1 {
		t.Fatalf("pk point Explain: Routed=%v FanOut=%d, want routed", point.Routed, point.FanOut)
	}
	if point.Part != engine.PartitionOf(12, 4) {
		t.Fatalf("Explain routed to %d, owner is %d", point.Part, engine.PartitionOf(12, 4))
	}
}

func TestCreateIndexAutoUniform(t *testing.T) {
	spec := workload.SyntheticSpec{Rows: 3000, Fn: workload.Linear, Noise: 0.01, Seed: 7}
	pt, err := New(hermit.PhysicalPointers, "syn", spec.Columns(), spec.PKCol(),
		Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := pt.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	kind, err := pt.CreateIndexAuto(spec.TargetCol(), correlation.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if kind != engine.KindHermit {
		t.Fatalf("CreateIndexAuto built %v on a linearly correlated column, want hermit", kind)
	}
	for i := 0; i < pt.Partitions(); i++ {
		if got := pt.Part(i).IndexOn(spec.TargetCol()); got != engine.KindHermit {
			t.Fatalf("partition %d serves target with %v, want hermit (uniform DDL)", i, got)
		}
	}
	// Dropping removes it everywhere.
	if err := pt.DropIndex(spec.TargetCol(), engine.KindHermit); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pt.Partitions(); i++ {
		if got := pt.Part(i).IndexOn(spec.TargetCol()); got == engine.KindHermit {
			t.Fatalf("partition %d still serves hermit after DropIndex", i)
		}
	}
}

func TestAdvisorAggregatesAndTunesAllPartitions(t *testing.T) {
	spec := workload.SyntheticSpec{Rows: 4000, Fn: workload.Linear, Noise: 0.01, Seed: 7}
	pt, err := New(hermit.PhysicalPointers, "syn", spec.Columns(), spec.PKCol(),
		Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := pt.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	// Drive queries at the unindexed target column so the advisor sees a
	// hot column in the aggregated counters.
	for i := 0; i < 200; i++ {
		if _, _, err := pt.RangeQuery(spec.TargetCol(), float64(i%900), float64(i%900)+20); err != nil {
			t.Fatal(err)
		}
	}
	opts := advisor.DefaultOptions()
	opts.Interval = 0 // manual: act only on RunOnce
	adv := pt.EnableAdvisor(opts)
	defer adv.Stop()
	if _, err := adv.RunOnce(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pt.Partitions(); i++ {
		if got := pt.Part(i).IndexOn(spec.TargetCol()); got == engine.KindNone {
			t.Fatalf("advisor left partition %d unindexed on the hot column", i)
		}
	}
	// All partitions must agree on the mechanism (uniform DDL).
	want := pt.Part(0).IndexOn(spec.TargetCol())
	for i := 1; i < pt.Partitions(); i++ {
		if got := pt.Part(i).IndexOn(spec.TargetCol()); got != want {
			t.Fatalf("partition %d built %v, partition 0 built %v", i, got, want)
		}
	}
}

// TestConcurrentScatterGather exercises the bounded pool under concurrent
// readers and writers (meaningful under -race).
func TestConcurrentScatterGather(t *testing.T) {
	pt := newSynthetic(t, 4, 2000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					lo := rng.Float64() * 900
					if _, _, err := pt.RangeQuery(2, lo, lo+30); err != nil {
						t.Error(err)
						return
					}
				case 1:
					pk := float64(10000 + w*1000 + i)
					if _, err := pt.Insert([]float64{pk, 300, 100, 0.5}); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, _, err := pt.PointQuery(0, float64(rng.Intn(2000))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPartitionOfDeterministicAndInRange(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for pk := float64(-100); pk < 100; pk += 0.5 {
			p := engine.PartitionOf(pk, n)
			if p < 0 || p >= n {
				t.Fatalf("PartitionOf(%v, %d) = %d out of range", pk, n, p)
			}
			if p != engine.PartitionOf(pk, n) {
				t.Fatalf("PartitionOf(%v, %d) unstable", pk, n)
			}
		}
	}
	negZero := math_Copysign0()
	if engine.PartitionOf(negZero, 7) != engine.PartitionOf(0, 7) {
		t.Fatal("-0 and +0 route to different partitions")
	}
}

// math_Copysign0 returns -0 without tripping constant folding.
func math_Copysign0() float64 {
	z := 0.0
	return -z
}

// TestPartitionedVersionGC: update churn leaves dead versions in the
// per-partition stores; GC reclaims them once no snapshot needs them, and
// a held snapshot pins its versions.
func TestPartitionedVersionGC(t *testing.T) {
	pt, err := New(hermit.PhysicalPointers, "g", []string{"pk", "v"}, 0, Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := pt.Insert([]float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	snap := pt.Snapshot()
	for round := 1; round <= 4; round++ {
		for i := 0; i < 60; i++ {
			if err := pt.UpdateColumn(float64(i), 1, float64(round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	storeRows := func() int {
		n := 0
		for i := 0; i < pt.Partitions(); i++ {
			n += pt.Part(i).Store().Len()
		}
		return n
	}
	if storeRows() <= 60 {
		t.Fatalf("precondition: expected dead versions, store holds %d", storeRows())
	}
	// The held snapshot pins the pre-update versions.
	pt.GC()
	if rids, _, err := pt.RangeQueryAt(snap, 1, 0, 0); err != nil || len(rids) != 60 {
		t.Fatalf("pinned snapshot broken by GC: %d rids err=%v", len(rids), err)
	}
	snap.Release()
	if n := pt.GC(); n == 0 {
		t.Fatal("GC reclaimed nothing after release")
	}
	if got := storeRows(); got != 60 {
		t.Fatalf("store holds %d rows after GC, want 60", got)
	}
	rids, _, err := pt.RangeQuery(1, 4, 4)
	if err != nil || len(rids) != 60 {
		t.Fatalf("latest state after GC: %d rids err=%v", len(rids), err)
	}
}
