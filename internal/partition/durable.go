package partition

import (
	"fmt"

	"hermit/internal/engine"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// This file is the durable face of partitioned tables. The engine owns the
// persistence protocol — DurableDB routes logged mutations by primary-key
// hash, stamps every WAL record with its partition id, flushes one delta
// block stream per partition at checkpoints, and recovers each partition
// from its blocklist plus the routed WAL tail — so the wrapper here only
// has to send writes and DDL through the logged DurableDB paths and run
// queries against the recovered per-partition handles.

// CreateDurable creates a WAL-logged partitioned table in d and returns
// its scatter-gather wrapper. The partition count is fixed for the life of
// the table (it is recorded in the checkpoint manifest and implied by
// every logged record's routing).
func CreateDurable(d *engine.DurableDB, name string, cols []string, pkCol int, opts Options) (*Table, error) {
	opts = opts.sanitized()
	if err := d.CreatePartitionedTable(name, cols, pkCol, opts.Partitions); err != nil {
		return nil, err
	}
	return OpenDurable(d, name, opts)
}

// OpenDurable wraps an existing durable partitioned table (created by
// CreateDurable or recovered by OpenDurable on the engine side) in its
// scatter-gather wrapper. Options.Partitions is ignored — the recovered
// count wins; Options.Workers sizes the scatter pool.
func OpenDurable(d *engine.DurableDB, name string, opts Options) (*Table, error) {
	n, err := d.Partitions(name)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("partition: table %q is not partitioned", name)
	}
	opts.Partitions = n
	opts = opts.sanitized()
	parts := make([]*engine.Table, n)
	for i := range parts {
		tb, err := d.Table(engine.PartitionName(name, i))
		if err != nil {
			return nil, err
		}
		parts[i] = tb
	}
	t := &Table{
		name:  name,
		cols:  parts[0].Columns(),
		pkCol: parts[0].PKCol(),
		clock: d.Clock(), // one clock for the whole DurableDB
		parts: parts,
		sem:   make(chan struct{}, opts.Workers),
	}
	t.mut = durMutator{d: d, name: name}
	return t, nil
}

// BlockStats reports the block-tier backing of each partition (one
// element per partition, in partition order). It errors on a table that
// was not opened through OpenDurable — an in-memory partitioned table has
// no block tier.
func (t *Table) BlockStats() ([]engine.TableBlockStats, error) {
	m, ok := t.mut.(durMutator)
	if !ok {
		return nil, fmt.Errorf("partition: table %q is not durable", t.name)
	}
	return m.d.TableBlocks(m.name)
}

// ColdPoint answers a point read for pk from the block tier alone — the
// partition is derived from the key, then only that partition's blocks
// are consulted (fences and bloom filters first), exactly the fan-out a
// cold scatter-gather read would take. probed counts the blocks whose
// entries were loaded. The answer reflects the last flush cut.
func (t *Table) ColdPoint(pk float64) (row []float64, found bool, probed int, err error) {
	m, ok := t.mut.(durMutator)
	if !ok {
		return nil, false, 0, fmt.Errorf("partition: table %q is not durable", t.name)
	}
	return m.d.BlockRead(m.name, pk)
}

// durMutator sends writes and DDL through the WAL-logged DurableDB paths;
// the engine re-derives the partition from the primary key, so the part
// argument is only the caller's routing decision, never trusted state.
type durMutator struct {
	d    *engine.DurableDB
	name string
}

func (m durMutator) insert(_ int, row []float64) (storage.RID, error) {
	return m.d.Insert(m.name, row)
}

func (m durMutator) remove(_ int, pk float64) (bool, error) {
	return m.d.Delete(m.name, pk)
}

func (m durMutator) update(_ int, pk float64, col int, v float64) error {
	return m.d.UpdateColumn(m.name, pk, col, v)
}

func (m durMutator) createBTree(col int, markNew bool) error {
	return m.d.CreateIndex(m.name, engine.IndexDef{Kind: "btree", Col: col, MarkNew: markNew})
}

func (m durMutator) createHermit(col, host int, params trstree.Params) error {
	return m.d.CreateIndex(m.name, engine.IndexDef{Kind: "hermit", Col: col, Host: host, Params: params})
}

func (m durMutator) dropIndex(col int, kind engine.IndexKind) error {
	return m.d.DropIndex(m.name, col, kind.String())
}

func (m durMutator) begin() partTxn {
	return &durTxn{name: m.name, tx: m.d.Begin()}
}

// durTxn is an atomic cross-partition transaction over a durable
// partitioned table: a DurableTxn addressed by the logical name, which
// routes each mutation to its hash partition and WAL-logs the whole group
// under one transaction id.
type durTxn struct {
	name string
	tx   *engine.DurableTxn
}

func (x *durTxn) insert(_ int, row []float64) error { return x.tx.Insert(x.name, row) }

func (x *durTxn) remove(_ int, pk float64) (bool, error) { return x.tx.Delete(x.name, pk) }

func (x *durTxn) update(_ int, pk float64, col int, v float64) error {
	return x.tx.Update(x.name, pk, col, v)
}

func (x *durTxn) snapshot() *engine.Snapshot { return x.tx.Snapshot() }

func (x *durTxn) commit() error { return x.tx.Commit() }

func (x *durTxn) rollback() { x.tx.Rollback() }
