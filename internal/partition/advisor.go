package partition

import (
	"fmt"

	"hermit/internal/advisor"
	"hermit/internal/engine"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// EnableAdvisor attaches a self-tuning advisor scoped to this partitioned
// table and starts its background loop (Options.Interval <= 0 yields a
// manual advisor that only acts on RunOnce). The advisor sees one logical
// table whose counters aggregate every partition's observed workload —
// per-column query/update counts summed, false-positive EWMAs merged by
// observation weight — so its decisions reflect the whole table, and the
// DDL it issues is applied uniformly to every partition (through the WAL
// on durable tables). Call Stop on the returned advisor to halt it.
func (t *Table) EnableAdvisor(opts engine.AdvisorOptions) *advisor.Advisor {
	a := advisor.New(catalog{t}, opts)
	a.Start()
	return a
}

// catalog adapts the partitioned table to the advisor's Catalog interface.
type catalog struct{ t *Table }

func (c catalog) TableNames() []string { return []string{c.t.name} }

// Info aggregates the per-partition advisor snapshots into one logical
// view.
func (c catalog) Info(table string) (advisor.TableInfo, error) {
	if table != c.t.name {
		return advisor.TableInfo{}, fmt.Errorf("partition: unknown table %q", table)
	}
	agg := c.t.parts[0].AdvisorInfo()
	agg.Name = c.t.name
	for _, p := range c.t.parts[1:] {
		in := p.AdvisorInfo()
		agg.Rows += in.Rows
		agg.Writes += in.Writes
		for i := range agg.Columns {
			a, b := &agg.Columns[i], in.Columns[i]
			a.Queries += b.Queries
			a.Updates += b.Updates
			a.IndexBytes += b.IndexBytes
			if tot := a.FPObservations + b.FPObservations; tot > 0 {
				a.ObservedFP = (a.ObservedFP*float64(a.FPObservations) +
					b.ObservedFP*float64(b.FPObservations)) / float64(tot)
				a.FPObservations = tot
			}
		}
	}
	return agg, nil
}

// Store exposes partition 0's row store for sampling: the primary-key hash
// spreads rows uniformly, so any single partition is an unbiased sample of
// the logical table's value distributions.
func (c catalog) Store(table string) (*storage.Table, error) {
	if table != c.t.name {
		return nil, fmt.Errorf("partition: unknown table %q", table)
	}
	return c.t.parts[0].Store(), nil
}

func (c catalog) CreateHermitIndex(table string, col, host int, params trstree.Params) error {
	return c.t.CreateHermitIndex(col, host, params)
}

func (c catalog) CreateBTreeIndex(table string, col int) error {
	return c.t.CreateBTreeIndex(col, true)
}

func (c catalog) DropIndex(table string, col int, kind advisor.IndexKind) error {
	return c.t.DropIndex(col, engine.KindFromAdvisor(kind))
}
