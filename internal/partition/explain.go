package partition

import (
	"hermit/internal/engine"
)

// Plan is the partitioned planner's costed decision for one predicate, as
// returned by Table.Explain: the fan-out shape plus one engine plan per
// executing partition (each partition's planner costs the predicate
// against its own statistics and runtime feedback, so two partitions may
// legitimately choose different access paths).
type Plan struct {
	// Table and Column identify the predicate target; Lo/Hi its range.
	Table  string
	Column string
	Col    int
	Lo, Hi float64
	// FanOut is the number of partitions the query would execute on.
	FanOut int
	// Routed reports whether the predicate routes to a single partition by
	// the primary-key hash; Part is that partition when it does.
	Routed bool
	Part   int
	// PerPartition holds each executing partition's costed plan, indexed
	// by partition (only Part's entry is set for routed predicates).
	PerPartition []engine.Plan
	// TotalCostNS sums the chosen path's predicted latency across
	// executing partitions — the work the scatter performs.
	TotalCostNS float64
	// CriticalCostNS is the largest per-partition predicted latency — the
	// parallel lower bound the gather waits for.
	CriticalCostNS float64
}

// Explain plans the range predicate lo <= col <= hi without executing it:
// it reports whether the query routes or fans out, and each executing
// partition's costed engine plan.
func (t *Table) Explain(col int, lo, hi float64) (Plan, error) {
	plan := Plan{
		Table:        t.name,
		Col:          col,
		Lo:           lo,
		Hi:           hi,
		PerPartition: make([]engine.Plan, len(t.parts)),
	}
	if col >= 0 && col < len(t.cols) {
		plan.Column = t.cols[col]
	}
	if col == t.pkCol && lo == hi {
		p := t.owner(lo)
		ep, err := t.parts[p].Explain(col, lo, hi)
		if err != nil {
			return Plan{}, err
		}
		plan.FanOut, plan.Routed, plan.Part = 1, true, p
		plan.PerPartition[p] = ep
		cost := chosenCostNS(ep)
		plan.TotalCostNS, plan.CriticalCostNS = cost, cost
		return plan, nil
	}
	plan.FanOut = len(t.parts)
	for i, part := range t.parts {
		ep, err := part.Explain(col, lo, hi)
		if err != nil {
			return Plan{}, err
		}
		plan.PerPartition[i] = ep
		cost := chosenCostNS(ep)
		plan.TotalCostNS += cost
		if cost > plan.CriticalCostNS {
			plan.CriticalCostNS = cost
		}
	}
	return plan, nil
}

// chosenCostNS extracts the chosen path's predicted latency from an engine
// plan.
func chosenCostNS(p engine.Plan) float64 {
	for _, c := range p.Candidates {
		if c.Path == p.Chosen {
			return c.CostNS
		}
	}
	return 0
}
