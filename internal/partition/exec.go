package partition

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hermit/internal/engine"
)

// OpResult is the outcome of one engine.Op executed against a partitioned
// table, at the batch position of its op. It mirrors engine.OpResult with
// partition-qualified identifiers and fan-out stats.
type OpResult struct {
	// RIDs holds the merged, ordered matches of a query op.
	RIDs []RID
	// Stats describes a query op's execution (fan-out, merge counts).
	Stats Stats
	// RID is the location of an inserted row.
	RID RID
	// Found reports whether an OpDelete removed a row.
	Found bool
	// Err is the per-operation failure, if any.
	Err error
}

// ExecuteBatch drains a batch of operations across a pool of workers
// goroutines (<= 0 selects GOMAXPROCS): the partitioned counterpart of
// engine.Table.ExecuteBatch, and the serving surface the partition bench
// drives. Mutations and primary-key point queries route to their hash
// partition; range legs scatter-gather through the table's bounded pool,
// so total scan parallelism stays capped at Options.Workers regardless of
// the batch worker count. Results align positionally with ops; Op.Table is
// ignored. Ops in one batch may be reordered by scheduling, exactly as in
// the engine executor.
func (t *Table) ExecuteBatch(ops []engine.Op, workers int) []OpResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	results := make([]OpResult, len(ops))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				results[i] = t.execOp(ops[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// execOp dispatches one operation against the partitioned table.
func (t *Table) execOp(op engine.Op) OpResult {
	var r OpResult
	switch op.Kind {
	case engine.OpRange:
		r.RIDs, r.Stats, r.Err = t.RangeQuery(op.Col, op.Lo, op.Hi)
	case engine.OpPoint:
		r.RIDs, r.Stats, r.Err = t.PointQuery(op.Col, op.Lo)
	case engine.OpRange2:
		r.RIDs, r.Stats, r.Err = t.RangeQuery2(op.Col, op.Lo, op.Hi, op.BCol, op.BLo, op.BHi)
	case engine.OpInsert:
		r.RID, r.Err = t.Insert(op.Row)
	case engine.OpDelete:
		r.Found, r.Err = t.Delete(op.PK)
	case engine.OpUpdate:
		r.Err = t.UpdateColumn(op.PK, op.Col, op.Value)
	default:
		r.Err = fmt.Errorf("partition: unknown op kind %d", op.Kind)
	}
	return r
}
