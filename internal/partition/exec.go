package partition

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hermit/internal/engine"
)

// OpResult is the outcome of one engine.Op executed against a partitioned
// table, at the batch position of its op. It mirrors engine.OpResult with
// partition-qualified identifiers and fan-out stats.
type OpResult struct {
	// RIDs holds the merged, ordered matches of a query op.
	RIDs []RID
	// Stats describes a query op's execution (fan-out, merge counts).
	Stats Stats
	// RID is the location of an inserted row (zero until the batch's
	// transaction commits; absent on durable tables, where versions are
	// addressed through queries).
	RID RID
	// Found reports whether an OpDelete removed a row.
	Found bool
	// Err is the per-operation failure, if any. In a batch with mutations
	// a failing mutation aborts the whole transaction: the failing op
	// carries its error and every other mutation engine.ErrTxnAborted.
	Err error
}

// ExecuteBatch runs a batch of operations with the engine executor's
// atomicity contract, across partitions: a batch containing mutations
// executes as one cross-partition snapshot-isolation transaction (queries
// read the batch-start snapshot; mutations route to their hash partitions,
// buffer, and commit with a single commit-clock advance — so no
// concurrent reader, on any partition, can observe the batch partially;
// on durable tables the group is WAL-logged under one transaction id). A
// read-only batch drains across a pool of workers goroutines (<= 0
// selects GOMAXPROCS) sharing one snapshot; range legs still scatter
// through the table's bounded pool, so total scan parallelism stays
// capped at Options.Workers. Results align positionally with ops;
// Op.Table is ignored.
func (t *Table) ExecuteBatch(ops []engine.Op, workers int) []OpResult {
	if hasMutations(ops) {
		return t.executeAtomic(ops)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	snap := t.Snapshot()
	defer snap.Release()
	results := make([]OpResult, len(ops))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				results[i] = t.queryOpAt(snap, ops[i])
			}
		}()
	}
	wg.Wait()
	return results
}

func hasMutations(ops []engine.Op) bool {
	for _, op := range ops {
		switch op.Kind {
		case engine.OpRange, engine.OpPoint, engine.OpRange2:
		default:
			return true
		}
	}
	return false
}

// queryOpAt dispatches one read-only op at the snapshot.
func (t *Table) queryOpAt(snap *engine.Snapshot, op engine.Op) OpResult {
	var r OpResult
	switch op.Kind {
	case engine.OpRange:
		r.RIDs, r.Stats, r.Err = t.RangeQueryAt(snap, op.Col, op.Lo, op.Hi)
	case engine.OpPoint:
		r.RIDs, r.Stats, r.Err = t.PointQueryAt(snap, op.Col, op.Lo)
	case engine.OpRange2:
		r.RIDs, r.Stats, r.Err = t.RangeQuery2At(snap, op.Col, op.Lo, op.Hi, op.BCol, op.BLo, op.BHi)
	default:
		r.Err = fmt.Errorf("partition: unknown op kind %d", op.Kind)
	}
	return r
}

// executeAtomic runs a batch with mutations as one cross-partition
// transaction, mirroring the engine executor's contract.
func (t *Table) executeAtomic(ops []engine.Op) []OpResult {
	results := make([]OpResult, len(ops))
	x := t.mut.begin()
	defer x.rollback()
	var mutIdx []int
	failed := -1
	for i, op := range ops {
		switch op.Kind {
		case engine.OpRange, engine.OpPoint, engine.OpRange2:
			results[i] = t.queryOpAt(x.snapshot(), op)
			continue
		}
		mutIdx = append(mutIdx, i)
		switch op.Kind {
		case engine.OpInsert:
			if len(op.Row) != len(t.cols) {
				results[i].Err = fmt.Errorf("partition: insert row width %d, schema %d", len(op.Row), len(t.cols))
			} else {
				results[i].Err = x.insert(t.owner(op.Row[t.pkCol]), op.Row)
			}
		case engine.OpDelete:
			results[i].Found, results[i].Err = x.remove(t.owner(op.PK), op.PK)
		case engine.OpUpdate:
			results[i].Err = x.update(t.owner(op.PK), op.PK, op.Col, op.Value)
		default:
			results[i].Err = fmt.Errorf("partition: unknown op kind %d", op.Kind)
		}
		if results[i].Err != nil {
			failed = i
			break
		}
	}
	if failed >= 0 {
		for i := failed + 1; i < len(ops); i++ {
			switch ops[i].Kind {
			case engine.OpRange, engine.OpPoint, engine.OpRange2:
				results[i] = t.queryOpAt(x.snapshot(), ops[i])
			}
		}
		for i, op := range ops {
			switch op.Kind {
			case engine.OpRange, engine.OpPoint, engine.OpRange2:
			default:
				if i != failed && results[i].Err == nil {
					results[i].Err = engine.ErrTxnAborted
				}
			}
		}
		return results
	}
	if err := x.commit(); err != nil {
		for _, i := range mutIdx {
			results[i].Err = err
		}
	}
	return results
}
