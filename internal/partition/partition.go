// Package partition implements hash-partitioned tables with parallel
// scatter-gather execution: a PartitionedTable splits rows across N
// per-partition engine instances by a hash of the primary key, so each
// partition carries its own indexes, latches and planner state (Hermit's
// succinct secondary indexes keep many of them affordable per partition —
// the paper's space argument is what makes partition-parallelism cheap).
//
// Execution follows the classic scatter-gather shape:
//
//   - Mutations and primary-key point queries route to exactly one
//     partition (the hash owner), adding only a hash to the unpartitioned
//     cost.
//   - Range queries — and the range/point legs of ExecuteBatch — fan out
//     across a bounded worker pool, one task per partition, and the
//     per-partition results are merged with an ordered k-way merge, so a
//     range scan returns rows ordered by the predicate column exactly as a
//     single-partition index scan would.
//
// The same wrapper fronts the in-memory engine (New) and the durable
// engine (CreateDurable/OpenDurable), where mutations go through the
// WAL-logged DurableDB paths: each record carries its partition id, and
// checkpoint/recovery rebuild every partition (see engine.DurableDB).
// Explain reports the fan-out with one costed engine plan per partition,
// and EnableAdvisor runs the self-tuning advisor over aggregated
// per-partition counters, applying its DDL uniformly to all partitions.
package partition

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"hermit/internal/correlation"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// DefaultPartitions is the partition count used when Options leaves it zero.
const DefaultPartitions = 4

// Options configures a partitioned table.
type Options struct {
	// Partitions is the hash-partition count (DefaultPartitions when zero).
	// OpenDurable ignores it: the count is fixed at creation and recovered
	// from the manifest.
	Partitions int
	// Workers bounds how many per-partition scan tasks run concurrently
	// across all scatter-gather queries on the table (GOMAXPROCS when
	// zero). Routed operations bypass the pool entirely.
	Workers int
}

func (o Options) sanitized() Options {
	if o.Partitions <= 0 {
		o.Partitions = DefaultPartitions
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// RID identifies a row in a partitioned table: the owning partition plus
// the row's record identifier within that partition's store.
type RID struct {
	// Part is the partition index.
	Part int
	// RID is the row's identifier inside the partition.
	RID storage.RID
}

// Stats describes one partitioned query's execution.
type Stats struct {
	// FanOut is the number of partitions the query executed on.
	FanOut int
	// Routed reports whether the query was routed to a single partition by
	// the primary-key hash (no scatter, no merge).
	Routed bool
	// Rows is the number of qualifying tuples after the merge.
	Rows int
	// Candidates sums the per-partition candidate counts.
	Candidates int
	// PerPartition holds each executed partition's engine stats, indexed
	// by partition (only the owner's entry is set for routed queries).
	PerPartition []engine.QueryStats
}

// Table is a hash-partitioned table: N per-partition engine tables behind
// one logical name, with scatter-gather query execution. It is safe for
// concurrent use — partitions inherit the engine's fine-grained latching,
// and cross-partition state (the scatter pool) is its own synchronisation.
type Table struct {
	name  string
	cols  []string
	pkCol int
	clock *engine.Clock // shared by every partition: one commit order
	parts []*engine.Table
	sem   chan struct{}
	mut   mutator
}

// mutator is the write/DDL backend: direct engine calls for in-memory
// tables, the WAL-logged DurableDB paths for durable ones.
type mutator interface {
	insert(part int, row []float64) (storage.RID, error)
	remove(part int, pk float64) (bool, error)
	update(part int, pk float64, col int, v float64) error
	createBTree(col int, markNew bool) error
	createHermit(col, host int, params trstree.Params) error
	dropIndex(col int, kind engine.IndexKind) error
	// begin starts an atomic cross-partition transaction (ExecuteBatch's
	// substrate): mutations buffer, route by primary key, and commit with
	// one clock advance, so no snapshot ever observes a partial batch.
	begin() partTxn
}

// partTxn is one atomic cross-partition transaction.
type partTxn interface {
	insert(part int, row []float64) error
	remove(part int, pk float64) (bool, error)
	update(part int, pk float64, col int, v float64) error
	snapshot() *engine.Snapshot
	commit() error
	rollback()
}

// New creates an in-memory partitioned table: one private engine.DB per
// partition (so partitions share nothing but the commit clock — the
// shared clock is what makes cross-partition snapshots and atomic batches
// consistent), each holding one table of the given schema. Names
// containing '#' are rejected — the character is reserved for partition
// naming.
func New(scheme hermit.PointerScheme, name string, cols []string, pkCol int, opts Options) (*Table, error) {
	if strings.Contains(name, "#") {
		return nil, fmt.Errorf("partition: table name %q: '#' is reserved for partitions", name)
	}
	opts = opts.sanitized()
	clock := engine.NewClock()
	parts := make([]*engine.Table, opts.Partitions)
	for i := range parts {
		tb, err := engine.NewDBWithClock(scheme, clock).CreateTable(name, cols, pkCol)
		if err != nil {
			return nil, err
		}
		parts[i] = tb
	}
	t := &Table{
		name:  name,
		cols:  append([]string(nil), cols...),
		pkCol: pkCol,
		clock: clock,
		parts: parts,
		sem:   make(chan struct{}, opts.Workers),
	}
	t.mut = memMutator{t}
	return t, nil
}

// Snapshot registers a consistent read view across every partition: all
// fan-out legs of a query (or any sequence of queries) run against it
// observe one commit-clock instant, so a concurrently committing batch is
// seen entirely or not at all.
func (t *Table) Snapshot() *engine.Snapshot { return t.clock.Snapshot() }

// GC runs one version-garbage-collection pass over every partition,
// reclaiming row versions no live snapshot can resolve (see engine.DB.GC).
// On durable tables DurableDB.Checkpoint already runs this; in-memory
// tables under update/delete churn should call it periodically or dead
// versions accumulate unboundedly.
func (t *Table) GC() int {
	horizon := t.clock.OldestActive()
	n := 0
	for _, p := range t.parts {
		n += p.GCVersions(horizon)
	}
	return n
}

// Name returns the logical table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names.
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// PKCol returns the primary-key column index.
func (t *Table) PKCol() int { return t.pkCol }

// Partitions returns the partition count.
func (t *Table) Partitions() int { return len(t.parts) }

// Part returns partition i's engine table — the escape hatch tests and
// benchmarks use to inspect a single partition. Mutating through it
// bypasses routing (and, on durable tables, the WAL); use the Table
// methods instead.
func (t *Table) Part(i int) *engine.Table { return t.parts[i] }

// Len returns the number of live rows across all partitions.
func (t *Table) Len() int {
	n := 0
	for _, p := range t.parts {
		n += p.Len()
	}
	return n
}

// Memory returns the summed memory breakdown of all partitions.
func (t *Table) Memory() engine.MemoryStats {
	var m engine.MemoryStats
	for _, p := range t.parts {
		pm := p.Memory()
		m.TableBytes += pm.TableBytes
		m.PrimaryBytes += pm.PrimaryBytes
		m.ExistingBytes += pm.ExistingBytes
		m.NewBytes += pm.NewBytes
	}
	return m
}

// SetRouting selects every partition's routing mode.
func (t *Table) SetRouting(m engine.RoutingMode) {
	for _, p := range t.parts {
		p.SetRouting(m)
	}
}

// SetProfile toggles per-phase timing on every partition.
func (t *Table) SetProfile(on bool) {
	for _, p := range t.parts {
		p.SetProfile(on)
	}
}

// owner returns the partition owning primary key pk.
func (t *Table) owner(pk float64) int { return engine.PartitionOf(pk, len(t.parts)) }

// Insert routes the row to its primary key's hash partition.
func (t *Table) Insert(row []float64) (RID, error) {
	if len(row) != len(t.cols) {
		return RID{}, storage.ErrBadRow
	}
	p := t.owner(row[t.pkCol])
	rid, err := t.mut.insert(p, row)
	if err != nil {
		return RID{}, err
	}
	return RID{Part: p, RID: rid}, nil
}

// Delete removes the row with the given primary key from its partition,
// reporting whether the key existed.
func (t *Table) Delete(pk float64) (bool, error) {
	return t.mut.remove(t.owner(pk), pk)
}

// UpdateColumn changes one column of the row with the given primary key in
// its partition. The primary-key column itself cannot be changed (it would
// have to migrate partitions); delete and re-insert instead.
func (t *Table) UpdateColumn(pk float64, col int, v float64) error {
	return t.mut.update(t.owner(pk), pk, col, v)
}

// PointQuery returns the rows with col == v. A predicate on the
// primary-key column routes to the hash owner; any other column fans out.
func (t *Table) PointQuery(col int, v float64) ([]RID, Stats, error) {
	return t.RangeQuery(col, v, v)
}

// PointQueryAt is PointQuery reading at the caller's snapshot.
func (t *Table) PointQueryAt(snap *engine.Snapshot, col int, v float64) ([]RID, Stats, error) {
	return t.RangeQueryAt(snap, col, v, v)
}

// RangeQuery returns the rows with lo <= col <= hi, ordered by the
// predicate column (ties broken by partition then RID, so results are
// deterministic). A primary-key point predicate (col == pkCol, lo == hi)
// routes to one partition; everything else scatters across the worker
// pool and gathers with an ordered merge. The whole query — every fan-out
// leg — runs against one commit-clock snapshot, so it can never observe a
// concurrent atomic batch partially, even across partitions.
func (t *Table) RangeQuery(col int, lo, hi float64) ([]RID, Stats, error) {
	snap := t.Snapshot()
	defer snap.Release()
	return t.RangeQueryAt(snap, col, lo, hi)
}

// RangeQueryAt is RangeQuery reading at the caller's snapshot.
func (t *Table) RangeQueryAt(snap *engine.Snapshot, col int, lo, hi float64) ([]RID, Stats, error) {
	if col == t.pkCol && lo == hi {
		return t.routed(snap, col, lo, hi)
	}
	return t.gather(col, func(p *engine.Table, dst []storage.RID) ([]storage.RID, engine.QueryStats, error) {
		return p.RangeQueryAtInto(snap, col, lo, hi, dst)
	})
}

// RangeQuery2 serves the conjunctive two-column predicate
// (col in [lo, hi]) AND (bcol in [blo, bhi]) by scatter-gather against one
// snapshot, ordered by the first column.
func (t *Table) RangeQuery2(col int, lo, hi float64, bcol int, blo, bhi float64) ([]RID, Stats, error) {
	snap := t.Snapshot()
	defer snap.Release()
	return t.RangeQuery2At(snap, col, lo, hi, bcol, blo, bhi)
}

// RangeQuery2At is RangeQuery2 reading at the caller's snapshot.
func (t *Table) RangeQuery2At(snap *engine.Snapshot, col int, lo, hi float64, bcol int, blo, bhi float64) ([]RID, Stats, error) {
	return t.gather(col, func(p *engine.Table, _ []storage.RID) ([]storage.RID, engine.QueryStats, error) {
		// The composite path has no Into variant; its fan-out legs allocate
		// their results as before.
		return p.RangeQuery2At(snap, col, lo, hi, bcol, blo, bhi)
	})
}

// routed executes a primary-key point predicate on its single owner.
func (t *Table) routed(snap *engine.Snapshot, col int, lo, hi float64) ([]RID, Stats, error) {
	p := t.owner(lo)
	st := Stats{FanOut: 1, Routed: true, PerPartition: make([]engine.QueryStats, len(t.parts))}
	rids, qs, err := t.parts[p].RangeQueryAt(snap, col, lo, hi)
	if err != nil {
		return nil, st, err
	}
	st.PerPartition[p] = qs
	st.Rows, st.Candidates = qs.Rows, qs.Candidates
	out := make([]RID, len(rids))
	for i, rid := range rids {
		out[i] = RID{Part: p, RID: rid}
	}
	return out, st, nil
}

// entry is one merge candidate: the ordering key plus the global RID.
type entry struct {
	key float64
	rid RID
}

// gatherScratch holds one scatter-gather execution's fan-out buffers —
// per-partition result and merge-entry slices, the error slate, and the
// merge heap — pooled so a steady-state range query stops allocating
// O(partitions + candidate rows) per call. The returned RID list and
// Stats.PerPartition escape to the caller and are always fresh; nothing
// handed out aliases scratch memory. Per-partition slots are written by
// the fan-out goroutines at disjoint indexes and the WaitGroup barrier
// orders those writes before reuse.
type gatherScratch struct {
	lists [][]entry
	rids  [][]storage.RID
	errs  []error
	heads []mergeHead
}

// maxGatherEntries caps the per-slot buffer capacity retained in the
// pool, so one huge scan does not pin its footprint forever.
const maxGatherEntries = 1 << 16

var gatherPool = sync.Pool{New: func() any { return &gatherScratch{} }}

// slots sizes the per-partition slots for a fan-out of n, preserving the
// pooled backing buffers inside each slot.
func (sc *gatherScratch) slots(n int) {
	for cap(sc.lists) < n {
		sc.lists = append(sc.lists[:cap(sc.lists)], nil)
	}
	for cap(sc.rids) < n {
		sc.rids = append(sc.rids[:cap(sc.rids)], nil)
	}
	for cap(sc.errs) < n {
		sc.errs = append(sc.errs[:cap(sc.errs)], nil)
	}
	sc.lists, sc.rids, sc.errs = sc.lists[:n], sc.rids[:n], sc.errs[:n]
	for i := 0; i < n; i++ {
		sc.errs[i] = nil
	}
}

func putGatherScratch(sc *gatherScratch) {
	for i := range sc.lists {
		if cap(sc.lists[i]) > maxGatherEntries {
			sc.lists[i] = nil
		}
	}
	for i := range sc.rids {
		if cap(sc.rids[i]) > maxGatherEntries {
			sc.rids[i] = nil
		}
	}
	gatherPool.Put(sc)
}

// gather scatters run across every partition on the bounded pool, orders
// each partition's hits by the predicate column, and k-way merges. run
// receives a reusable result buffer (the Into contract: results are
// appended into dst[:0]); legs without an Into variant may ignore it.
func (t *Table) gather(col int, run func(p *engine.Table, dst []storage.RID) ([]storage.RID, engine.QueryStats, error)) ([]RID, Stats, error) {
	n := len(t.parts)
	sc := gatherPool.Get().(*gatherScratch)
	defer putGatherScratch(sc)
	sc.slots(n)
	stats := make([]engine.QueryStats, n) // escapes via Stats.PerPartition
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t.sem <- struct{}{} // bounded pool: at most Workers tasks in flight
			defer func() { <-t.sem }()
			rids, qs, err := run(t.parts[i], sc.rids[i])
			sc.rids[i] = rids[:0] // keep the (possibly regrown) buffer pooled
			if err != nil {
				sc.errs[i] = err
				return
			}
			stats[i] = qs
			sc.lists[i] = t.keyedInto(i, col, rids, sc.lists[i])
		}(i)
	}
	wg.Wait()
	st := Stats{FanOut: n, PerPartition: stats}
	for _, err := range sc.errs {
		if err != nil {
			return nil, st, err
		}
	}
	for _, qs := range stats {
		st.Candidates += qs.Candidates
	}
	var out []RID
	out, sc.heads = mergeSorted(sc.lists, sc.heads)
	st.Rows = len(out)
	return out, st, nil
}

// keyedInto pairs each hit with its ordering key and sorts the
// partition's list (index paths already return key order; scan paths
// return RID order), appending into buf[:0]. Version rows are immutable,
// so the keys are exactly the values the snapshot query matched; a row
// reclaimed by a racing GC pass (only possible once no snapshot needs it)
// is dropped.
func (t *Table) keyedInto(part, col int, rids []storage.RID, buf []entry) []entry {
	store := t.parts[part].Store()
	out := buf[:0]
	for _, rid := range rids {
		v, err := store.Value(rid, col)
		if err != nil {
			continue
		}
		out = append(out, entry{key: v, rid: RID{Part: part, RID: rid}})
	}
	slices.SortFunc(out, cmpEntry)
	return out
}

// cmpEntry orders one partition's merge entries by (key, RID); within a
// partition the partition component is constant.
func cmpEntry(a, b entry) int {
	switch {
	case a.key != b.key:
		return cmp.Compare(a.key, b.key)
	default:
		return cmp.Compare(a.rid.RID, b.rid.RID)
	}
}

// less orders merge entries by (key, partition, RID) — a total,
// deterministic order.
func less(a, b entry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.rid.Part != b.rid.Part {
		return a.rid.Part < b.rid.Part
	}
	return a.rid.RID < b.rid.RID
}

// mergeHead is one per-list cursor in the k-way merge heap.
type mergeHead struct {
	list, pos int
}

// headAt dereferences a heap cursor.
func headAt(lists [][]entry, h mergeHead) entry { return lists[h.list][h.pos] }

// siftDown restores the min-heap property at index i (top-level rather
// than a closure so the merge loop allocates nothing).
func siftDown(lists [][]entry, heap []mergeHead, i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(heap) && less(headAt(lists, heap[l]), headAt(lists, heap[min])) {
			min = l
		}
		if r < len(heap) && less(headAt(lists, heap[r]), headAt(lists, heap[min])) {
			min = r
		}
		if min == i {
			return
		}
		heap[i], heap[min] = heap[min], heap[i]
		i = min
	}
}

// mergeSorted k-way merges per-partition sorted lists with a binary heap
// of list heads. The heap buffer is caller-supplied and returned for
// reuse; the merged RID list is freshly allocated (it escapes to the
// query's caller).
func mergeSorted(lists [][]entry, heap []mergeHead) ([]RID, []mergeHead) {
	heap = heap[:0]
	total := 0
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			heap = append(heap, mergeHead{i, 0})
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(lists, heap, i)
	}
	out := make([]RID, 0, total)
	for len(heap) > 0 {
		h := heap[0]
		out = append(out, headAt(lists, h).rid)
		if h.pos+1 < len(lists[h.list]) {
			heap[0].pos++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(lists, heap, 0)
	}
	return out, heap
}

// FetchRow materialises the row behind a partitioned RID.
func (t *Table) FetchRow(rid RID) ([]float64, error) {
	if rid.Part < 0 || rid.Part >= len(t.parts) {
		return nil, fmt.Errorf("partition: RID partition %d out of range", rid.Part)
	}
	return t.parts[rid.Part].Store().Get(rid.RID, nil)
}

// CreateBTreeIndex builds a complete B+-tree index on col in every
// partition. markNew tags the indexes for the insert-cost breakdown.
func (t *Table) CreateBTreeIndex(col int, markNew bool) error {
	return t.mut.createBTree(col, markNew)
}

// CreateHermitIndex builds a Hermit index on col hosted by host in every
// partition. The zero Params value selects the paper defaults.
func (t *Table) CreateHermitIndex(col, host int, params trstree.Params) error {
	if params == (trstree.Params{}) {
		params = trstree.DefaultParams()
	}
	return t.mut.createHermit(col, host, params)
}

// DropIndex removes the index of the given kind on col from every
// partition.
func (t *Table) DropIndex(col int, kind engine.IndexKind) error {
	return t.mut.dropIndex(col, kind)
}

// CreateIndexAuto runs the paper's index-creation flow on the partitioned
// table: correlation discovery against partition 0 (hash partitioning
// makes any partition a uniform sample of the table), then the chosen
// mechanism — Hermit on the best host, else a complete B+-tree — is built
// uniformly across every partition. It returns the kind built.
func (t *Table) CreateIndexAuto(col int, disc correlation.Config) (engine.IndexKind, error) {
	p0 := t.parts[0]
	hosts := make([]int, 0, len(t.cols))
	for c := range t.cols {
		if p0.Secondary(c) != nil {
			hosts = append(hosts, c)
		}
	}
	if p0.Scheme() == hermit.PhysicalPointers {
		hosts = append(hosts, t.pkCol)
	}
	sort.Ints(hosts)
	m, ok, err := correlation.BestHost(p0.Store(), col, hosts, disc)
	if err != nil {
		return engine.KindNone, err
	}
	if ok {
		if err := t.CreateHermitIndex(col, m.Host, trstree.DefaultParams()); err != nil {
			return engine.KindNone, err
		}
		return engine.KindHermit, nil
	}
	if err := t.CreateBTreeIndex(col, true); err != nil {
		return engine.KindNone, err
	}
	return engine.KindBTree, nil
}

// memMutator applies writes and DDL directly to the in-memory partitions.
type memMutator struct{ t *Table }

func (m memMutator) insert(part int, row []float64) (storage.RID, error) {
	return m.t.parts[part].Insert(row)
}

func (m memMutator) remove(part int, pk float64) (bool, error) {
	return m.t.parts[part].Delete(pk)
}

func (m memMutator) update(part int, pk float64, col int, v float64) error {
	return m.t.parts[part].UpdateColumn(pk, col, v)
}

func (m memMutator) createBTree(col int, markNew bool) error {
	return m.ddl(col, engine.KindBTree, func(p *engine.Table) error {
		_, err := p.CreateBTreeIndex(col, markNew)
		return err
	})
}

func (m memMutator) createHermit(col, host int, params trstree.Params) error {
	return m.ddl(col, engine.KindHermit, func(p *engine.Table) error {
		_, err := p.CreateHermitIndex(col, host, engine.WithParams(params))
		return err
	})
}

// ddl applies one index build to every partition, unwinding the partitions
// already built on partial failure so index state stays uniform.
func (m memMutator) ddl(col int, kind engine.IndexKind, build func(p *engine.Table) error) error {
	for i, p := range m.t.parts {
		if err := build(p); err != nil {
			for j := 0; j < i; j++ {
				m.t.parts[j].DropIndex(col, kind)
			}
			return err
		}
	}
	return nil
}

func (m memMutator) dropIndex(col int, kind engine.IndexKind) error {
	for _, p := range m.t.parts {
		if err := p.DropIndex(col, kind); err != nil {
			// Uniform DDL means a refused drop fails on partition 0, before
			// any partition changed.
			return err
		}
	}
	return nil
}

func (m memMutator) begin() partTxn {
	return &memTxn{t: m.t, x: engine.BeginTxn(m.t.clock)}
}

// memTxn is an atomic cross-partition transaction over the in-memory
// partitions: one engine.Txn spanning the per-partition tables, which all
// share the table's commit clock.
type memTxn struct {
	t *Table
	x *engine.Txn
}

func (x *memTxn) insert(part int, row []float64) error {
	return x.x.Insert(x.t.parts[part], row)
}

func (x *memTxn) remove(part int, pk float64) (bool, error) {
	return x.x.Delete(x.t.parts[part], pk)
}

func (x *memTxn) update(part int, pk float64, col int, v float64) error {
	return x.x.Update(x.t.parts[part], pk, col, v)
}

func (x *memTxn) snapshot() *engine.Snapshot { return x.x.Snapshot() }

func (x *memTxn) commit() error {
	_, err := x.x.Commit()
	return err
}

func (x *memTxn) rollback() { x.x.Rollback() }
