package partition

import (
	"sort"
	"testing"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/trstree"
	"hermit/internal/workload"
)

// pks materialises the primary keys behind a partitioned result set,
// sorted.
func pks(t *testing.T, pt *Table, rids []RID) []float64 {
	t.Helper()
	out := make([]float64, 0, len(rids))
	for _, r := range rids {
		v, err := pt.Part(r.Part).Store().Value(r.RID, pt.PKCol())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

func TestDurablePartitionedCloseReopen(t *testing.T) {
	dir := t.TempDir()
	spec := workload.SyntheticSpec{Rows: 1200, Fn: workload.Linear, Noise: 0.01, Seed: 5}

	d, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := CreateDurable(d, "syn", spec.Columns(), spec.PKCol(), Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := pt.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateHermitIndex(spec.TargetCol(), spec.HostCol(), trstree.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if found, err := pt.Delete(100); err != nil || !found {
		t.Fatalf("Delete(100) = %v, %v", found, err)
	}
	if err := pt.UpdateColumn(101, 2, 55.5); err != nil {
		t.Fatal(err)
	}
	wantRange, _, err := pt.RangeQuery(2, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	wantPKs := pks(t, pt, wantRange)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from WAL replay alone (no checkpoint yet).
	d2, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if n, serr := d2.RecoverySkipped(); n != 0 {
		t.Fatalf("recovery skipped %d records (%v)", n, serr)
	}
	pt2, err := OpenDurable(d2, "syn", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt2.Partitions() != 4 {
		t.Fatalf("recovered %d partitions, want 4", pt2.Partitions())
	}
	if pt2.Len() != spec.Rows-1 {
		t.Fatalf("recovered %d rows, want %d", pt2.Len(), spec.Rows-1)
	}
	got, st, err := pt2.RangeQuery(2, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if st.FanOut != 4 {
		t.Fatalf("fan-out %d after recovery", st.FanOut)
	}
	gotPKs := pks(t, pt2, got)
	if len(gotPKs) != len(wantPKs) {
		t.Fatalf("range after reopen: %d rows, want %d", len(gotPKs), len(wantPKs))
	}
	for i := range wantPKs {
		if gotPKs[i] != wantPKs[i] {
			t.Fatalf("range after reopen differs at %d: %v vs %v", i, gotPKs[i], wantPKs[i])
		}
	}
	// The Hermit index was rebuilt on every partition.
	for i := 0; i < 4; i++ {
		if kind := pt2.Part(i).IndexOn(spec.TargetCol()); kind != engine.KindHermit {
			t.Fatalf("partition %d recovered with %v on target, want hermit", i, kind)
		}
	}

	// Checkpoint, mutate past it, close, reopen: image + routed tail.
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := pt2.Insert([]float64{90001, 2*500 + 100, 500, 0.5}); err != nil {
		t.Fatal(err)
	}
	if found, err := pt2.Delete(101); err != nil || !found {
		t.Fatalf("post-checkpoint Delete(101) = %v, %v", found, err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if n, serr := d3.RecoverySkipped(); n != 0 {
		t.Fatalf("recovery skipped %d records (%v)", n, serr)
	}
	pt3, err := OpenDurable(d3, "syn", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt3.Len() != spec.Rows-1 { // -2 deletes +1 insert
		t.Fatalf("after checkpoint+tail: %d rows, want %d", pt3.Len(), spec.Rows-1)
	}
	if rids, _, err := pt3.PointQuery(0, 90001); err != nil || len(rids) != 1 {
		t.Fatalf("post-checkpoint insert lost: %v, %v", rids, err)
	}
	if rids, _, err := pt3.PointQuery(0, 101); err != nil || len(rids) != 0 {
		t.Fatalf("post-checkpoint delete lost: %v, %v", rids, err)
	}
}

func TestDurablePartitionedDDLAndGuards(t *testing.T) {
	dir := t.TempDir()
	d, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.CreatePartitionedTable("bad#name", []string{"a", "b"}, 0, 2); err == nil {
		t.Fatal("'#' in partitioned table name accepted")
	}
	if _, err := d.CreateTable("user#0", []string{"a"}, 0); err == nil {
		t.Fatal("'#' in plain durable table name accepted")
	}
	if err := d.CreatePartitionedTable("p", []string{"a", "b"}, 0, 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if err := d.CreatePartitionedTable("p", []string{"a", "b", "c"}, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.CreatePartitionedTable("p", []string{"a"}, 0, 2); err == nil {
		t.Fatal("duplicate partitioned table accepted")
	}
	// A plain table must not be able to shadow (and overwrite the metadata
	// of) an existing partitioned logical table.
	if _, err := d.CreateTable("p", []string{"a"}, 0); err == nil {
		t.Fatal("plain CreateTable over a partitioned logical name accepted")
	}
	if n, err := d.Partitions("p"); err != nil || n != 3 {
		t.Fatalf("Partitions(p) = %d, %v", n, err)
	}
	// Composite defs are rejected on partitioned tables.
	err = d.CreateIndex("p", engine.IndexDef{Kind: "composite-btree", ACol: 1, Col: 2})
	if err == nil {
		t.Fatal("composite index on partitioned table accepted")
	}
	// A bad def must not leave partial per-partition state behind.
	if err := d.CreateIndex("p", engine.IndexDef{Kind: "hermit", Col: 2, Host: 1}); err == nil {
		t.Fatal("hermit without host index accepted")
	}
	pt, err := OpenDurable(d, "p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if kind := pt.Part(i).IndexOn(2); kind != engine.KindNone {
			t.Fatalf("failed CreateIndex left %v on partition %d", kind, i)
		}
	}
	if err := pt.CreateBTreeIndex(1, false); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateHermitIndex(2, 1, trstree.Params{}); err != nil {
		t.Fatal(err)
	}
	// Host drop is refused while the Hermit depends on it, on every
	// partition.
	if err := pt.DropIndex(1, engine.KindBTree); err == nil {
		t.Fatal("host drop accepted while hermit depends on it")
	}
	if err := pt.DropIndex(2, engine.KindHermit); err != nil {
		t.Fatal(err)
	}
	if err := pt.DropIndex(1, engine.KindBTree); err != nil {
		t.Fatal(err)
	}
	// OpenDurable on a plain table refuses.
	if _, err := d.CreateTable("plain", []string{"x"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(d, "plain", Options{}); err == nil {
		t.Fatal("OpenDurable on unpartitioned table accepted")
	}
}

// TestDurablePartitionedBlockTier: checkpoints flush one block stream per
// partition, BlockStats exposes them, and ColdPoint answers from the
// blocks of the owning partition alone (fences/blooms keep the probe
// count at one block for a key written once).
func TestDurablePartitionedBlockTier(t *testing.T) {
	dir := t.TempDir()
	d, err := engine.OpenDurableOptions(dir, hermit.PhysicalPointers,
		engine.DurableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	pt, err := CreateDurable(d, "p", []string{"pk", "v"}, 0, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := pt.Insert([]float64{float64(i), float64(i) * 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pt.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stats, err := pt.BlockStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("BlockStats returned %d partitions, want 4", len(stats))
	}
	var entries uint64
	for i, st := range stats {
		if st.Blocks != 1 {
			t.Fatalf("partition %d has %d blocks after one checkpoint, want 1", i, st.Blocks)
		}
		entries += st.Entries
	}
	if entries != 400 { // 399 live rows + 1 tombstone, spread across partitions
		t.Fatalf("block tier holds %d entries, want 400", entries)
	}
	row, found, probed, err := pt.ColdPoint(42)
	if err != nil || !found || row[1] != 84 {
		t.Fatalf("ColdPoint(42) = %v found=%v err=%v", row, found, err)
	}
	if probed != 1 {
		t.Fatalf("ColdPoint(42) probed %d blocks, want 1", probed)
	}
	if _, found, _, err := pt.ColdPoint(7); err != nil || found {
		t.Fatalf("ColdPoint(7) resurrected a tombstoned key: found=%v err=%v", found, err)
	}
	if _, found, probed, err := pt.ColdPoint(99999); err != nil || found || probed != 0 {
		t.Fatalf("ColdPoint(99999): found=%v probed=%d err=%v (fence should exclude)", found, probed, err)
	}
	// An in-memory partitioned table has no block tier.
	memT, err := New(hermit.PhysicalPointers, "m", []string{"pk"}, 0, Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memT.BlockStats(); err == nil {
		t.Fatal("BlockStats on in-memory table accepted")
	}
}
