package partition

import (
	"sort"
	"testing"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/trstree"
	"hermit/internal/workload"
)

// pks materialises the primary keys behind a partitioned result set,
// sorted.
func pks(t *testing.T, pt *Table, rids []RID) []float64 {
	t.Helper()
	out := make([]float64, 0, len(rids))
	for _, r := range rids {
		v, err := pt.Part(r.Part).Store().Value(r.RID, pt.PKCol())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

func TestDurablePartitionedCloseReopen(t *testing.T) {
	dir := t.TempDir()
	spec := workload.SyntheticSpec{Rows: 1200, Fn: workload.Linear, Noise: 0.01, Seed: 5}

	d, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := CreateDurable(d, "syn", spec.Columns(), spec.PKCol(), Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(func(row []float64) error {
		_, err := pt.Insert(row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateBTreeIndex(spec.HostCol(), false); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateHermitIndex(spec.TargetCol(), spec.HostCol(), trstree.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if found, err := pt.Delete(100); err != nil || !found {
		t.Fatalf("Delete(100) = %v, %v", found, err)
	}
	if err := pt.UpdateColumn(101, 2, 55.5); err != nil {
		t.Fatal(err)
	}
	wantRange, _, err := pt.RangeQuery(2, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	wantPKs := pks(t, pt, wantRange)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from WAL replay alone (no checkpoint yet).
	d2, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	if n, serr := d2.RecoverySkipped(); n != 0 {
		t.Fatalf("recovery skipped %d records (%v)", n, serr)
	}
	pt2, err := OpenDurable(d2, "syn", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt2.Partitions() != 4 {
		t.Fatalf("recovered %d partitions, want 4", pt2.Partitions())
	}
	if pt2.Len() != spec.Rows-1 {
		t.Fatalf("recovered %d rows, want %d", pt2.Len(), spec.Rows-1)
	}
	got, st, err := pt2.RangeQuery(2, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if st.FanOut != 4 {
		t.Fatalf("fan-out %d after recovery", st.FanOut)
	}
	gotPKs := pks(t, pt2, got)
	if len(gotPKs) != len(wantPKs) {
		t.Fatalf("range after reopen: %d rows, want %d", len(gotPKs), len(wantPKs))
	}
	for i := range wantPKs {
		if gotPKs[i] != wantPKs[i] {
			t.Fatalf("range after reopen differs at %d: %v vs %v", i, gotPKs[i], wantPKs[i])
		}
	}
	// The Hermit index was rebuilt on every partition.
	for i := 0; i < 4; i++ {
		if kind := pt2.Part(i).IndexOn(spec.TargetCol()); kind != engine.KindHermit {
			t.Fatalf("partition %d recovered with %v on target, want hermit", i, kind)
		}
	}

	// Checkpoint, mutate past it, close, reopen: image + routed tail.
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := pt2.Insert([]float64{90001, 2*500 + 100, 500, 0.5}); err != nil {
		t.Fatal(err)
	}
	if found, err := pt2.Delete(101); err != nil || !found {
		t.Fatalf("post-checkpoint Delete(101) = %v, %v", found, err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if n, serr := d3.RecoverySkipped(); n != 0 {
		t.Fatalf("recovery skipped %d records (%v)", n, serr)
	}
	pt3, err := OpenDurable(d3, "syn", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt3.Len() != spec.Rows-1 { // -2 deletes +1 insert
		t.Fatalf("after checkpoint+tail: %d rows, want %d", pt3.Len(), spec.Rows-1)
	}
	if rids, _, err := pt3.PointQuery(0, 90001); err != nil || len(rids) != 1 {
		t.Fatalf("post-checkpoint insert lost: %v, %v", rids, err)
	}
	if rids, _, err := pt3.PointQuery(0, 101); err != nil || len(rids) != 0 {
		t.Fatalf("post-checkpoint delete lost: %v, %v", rids, err)
	}
}

func TestDurablePartitionedDDLAndGuards(t *testing.T) {
	dir := t.TempDir()
	d, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.CreatePartitionedTable("bad#name", []string{"a", "b"}, 0, 2); err == nil {
		t.Fatal("'#' in partitioned table name accepted")
	}
	if _, err := d.CreateTable("user#0", []string{"a"}, 0); err == nil {
		t.Fatal("'#' in plain durable table name accepted")
	}
	if err := d.CreatePartitionedTable("p", []string{"a", "b"}, 0, 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if err := d.CreatePartitionedTable("p", []string{"a", "b", "c"}, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.CreatePartitionedTable("p", []string{"a"}, 0, 2); err == nil {
		t.Fatal("duplicate partitioned table accepted")
	}
	// A plain table must not be able to shadow (and overwrite the metadata
	// of) an existing partitioned logical table.
	if _, err := d.CreateTable("p", []string{"a"}, 0); err == nil {
		t.Fatal("plain CreateTable over a partitioned logical name accepted")
	}
	if n, err := d.Partitions("p"); err != nil || n != 3 {
		t.Fatalf("Partitions(p) = %d, %v", n, err)
	}
	// Composite defs are rejected on partitioned tables.
	err = d.CreateIndex("p", engine.IndexDef{Kind: "composite-btree", ACol: 1, Col: 2})
	if err == nil {
		t.Fatal("composite index on partitioned table accepted")
	}
	// A bad def must not leave partial per-partition state behind.
	if err := d.CreateIndex("p", engine.IndexDef{Kind: "hermit", Col: 2, Host: 1}); err == nil {
		t.Fatal("hermit without host index accepted")
	}
	pt, err := OpenDurable(d, "p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if kind := pt.Part(i).IndexOn(2); kind != engine.KindNone {
			t.Fatalf("failed CreateIndex left %v on partition %d", kind, i)
		}
	}
	if err := pt.CreateBTreeIndex(1, false); err != nil {
		t.Fatal(err)
	}
	if err := pt.CreateHermitIndex(2, 1, trstree.Params{}); err != nil {
		t.Fatal(err)
	}
	// Host drop is refused while the Hermit depends on it, on every
	// partition.
	if err := pt.DropIndex(1, engine.KindBTree); err == nil {
		t.Fatal("host drop accepted while hermit depends on it")
	}
	if err := pt.DropIndex(2, engine.KindHermit); err != nil {
		t.Fatal(err)
	}
	if err := pt.DropIndex(1, engine.KindBTree); err != nil {
		t.Fatal(err)
	}
	// OpenDurable on a plain table refuses.
	if _, err := d.CreateTable("plain", []string{"x"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(d, "plain", Options{}); err == nil {
		t.Fatal("OpenDurable on unpartitioned table accepted")
	}
}
