package hermit

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"hermit/internal/btree"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// CompositeIndex is Hermit's multi-column form (§3): when queries constrain
// columns (A, M) together and a complete index already exists on (A, N)
// with N correlated to M, Hermit answers (A, M) predicates through the
// (A, N) host index plus a TRS-Tree on M→N. This is exactly the paper's
// running example: host (TIME, DJ), new index (TIME, SP).
//
// The TRS-Tree is the same single-column structure — only the host probe
// and validation change — so maintenance and reorganization are inherited.
type CompositeIndex struct {
	cfg   CompositeConfig
	table *storage.Table
	tree  *trstree.Tree
	host  *btree.CompositeTree

	candidates atomic.Uint64
	qualified  atomic.Uint64
}

// CompositeConfig describes a composite Hermit index.
type CompositeConfig struct {
	// ACol is the leading column shared with the host index.
	ACol int
	// TargetCol is M, the correlated column the index is requested on.
	TargetCol int
	// HostCol is N, the correlated column of the existing (A, N) index.
	HostCol int
	// Params configures the TRS-Tree.
	Params trstree.Params
	// Profile enables per-phase timing.
	Profile bool
}

// NewComposite builds the composite Hermit index from the table and the
// existing (A, N) host index. Physical tuple pointers are assumed: the host
// stores RIDs (the composite form with logical pointers only adds the same
// primary hop as the single-column index and is omitted for clarity).
func NewComposite(table *storage.Table, host *btree.CompositeTree, cfg CompositeConfig) (*CompositeIndex, error) {
	if table == nil {
		return nil, ErrNilTable
	}
	if host == nil {
		return nil, ErrNilHostIndex
	}
	w := table.Width()
	if cfg.ACol < 0 || cfg.ACol >= w || cfg.TargetCol < 0 || cfg.TargetCol >= w ||
		cfg.HostCol < 0 || cfg.HostCol >= w {
		return nil, fmt.Errorf("hermit: composite column out of range")
	}
	pairs := make([]trstree.Pair, 0, table.Len())
	err := table.ScanPairs(cfg.TargetCol, cfg.HostCol, func(rid storage.RID, m, n float64) bool {
		pairs = append(pairs, trstree.Pair{M: m, N: n, ID: uint64(rid)})
		return true
	})
	if err != nil {
		return nil, err
	}
	lo, hi, ok := table.ColumnBounds(cfg.TargetCol)
	if !ok {
		lo, hi = 0, 1
	}
	tree, err := trstree.Build(pairs, lo, hi, cfg.Params)
	if err != nil {
		return nil, err
	}
	return &CompositeIndex{cfg: cfg, table: table, tree: tree, host: host}, nil
}

// Tree exposes the TRS-Tree for statistics and maintenance.
func (x *CompositeIndex) Tree() *trstree.Tree { return x.tree }

// SizeBytes returns the index's own footprint (the TRS-Tree only; the host
// belongs to the (A, N) pair).
func (x *CompositeIndex) SizeBytes() uint64 { return x.tree.SizeBytes() }

// Lookup answers the conjunctive predicate
//
//	aLo <= A <= aHi AND mLo <= M <= mHi
//
// following §3: the M-range is translated to N-ranges by the TRS-Tree, the
// (A, N) host index is probed with both ranges, outlier identifiers are
// unioned in, and base-table validation restores exactness on both columns.
func (x *CompositeIndex) Lookup(aLo, aHi, mLo, mHi float64) Result {
	var res Result
	var t0 time.Time
	if x.cfg.Profile {
		t0 = time.Now()
	}
	tres := x.tree.Lookup(mLo, mHi)
	if x.cfg.Profile {
		res.Breakdown[PhaseTRSTree] += time.Since(t0)
		t0 = time.Now()
	}
	ids := tres.IDs // outliers: validated on both predicates below
	for _, r := range tres.Ranges {
		x.host.Scan(aLo, aHi, r.Lo, r.Hi, func(_, _ float64, id uint64) bool {
			ids = append(ids, id)
			return true
		})
	}
	if x.cfg.Profile {
		res.Breakdown[PhaseHostIndex] += time.Since(t0)
		t0 = time.Now()
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	out := make([]storage.RID, 0, len(ids))
	var prev uint64
	row := make([]float64, 0, x.table.Width())
	for i, id := range ids {
		if i > 0 && id == prev {
			continue
		}
		prev = id
		rid := storage.RID(id)
		res.Candidates++
		var err error
		row, err = x.table.Get(rid, row)
		if err != nil {
			continue
		}
		if row[x.cfg.ACol] >= aLo && row[x.cfg.ACol] <= aHi &&
			row[x.cfg.TargetCol] >= mLo && row[x.cfg.TargetCol] <= mHi {
			out = append(out, rid)
			res.Qualified++
		}
	}
	if x.cfg.Profile {
		res.Breakdown[PhaseBaseTable] += time.Since(t0)
	}
	res.RIDs = out
	x.candidates.Add(uint64(res.Candidates))
	x.qualified.Add(uint64(res.Qualified))
	return res
}

// LifetimeFalsePositiveRatio aggregates over every lookup served.
func (x *CompositeIndex) LifetimeFalsePositiveRatio() float64 {
	c := x.candidates.Load()
	if c == 0 {
		return 0
	}
	return 1 - float64(x.qualified.Load())/float64(c)
}

// Insert maintains the index for a new tuple.
func (x *CompositeIndex) Insert(rid storage.RID, m, n float64) {
	x.tree.Insert(m, n, uint64(rid))
}

// Delete maintains the index for a removed tuple.
func (x *CompositeIndex) Delete(rid storage.RID, m, n float64) {
	x.tree.Delete(m, n, uint64(rid))
}

// Source returns the reorganization data source for the index.
func (x *CompositeIndex) Source() trstree.DataSource {
	return compositeSource{x}
}

type compositeSource struct{ x *CompositeIndex }

func (s compositeSource) ScanMRange(lo, hi float64, fn func(m, n float64, id uint64) bool) error {
	return s.x.table.ScanPairs(s.x.cfg.TargetCol, s.x.cfg.HostCol,
		func(rid storage.RID, m, n float64) bool {
			if m < lo || m > hi {
				return true
			}
			return fn(m, n, uint64(rid))
		})
}
