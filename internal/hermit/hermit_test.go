package hermit

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hermit/internal/btree"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// fixture is a synthetic table in the paper's Appendix A layout:
// col0 = colA (primary key), col1 = colB (host, correlated with colC),
// col2 = colC (target), col3 = colD (payload).
type fixture struct {
	table   *storage.Table
	host    *btree.Tree // colB -> id
	primary *btree.Tree // colA -> rid
	rows    [][4]float64
	rids    []storage.RID
}

func newFixture(t testing.TB, n int, fn func(c float64) float64, noise float64, scheme PointerScheme, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := &fixture{
		table:   storage.NewTable(4),
		host:    btree.New(btree.DefaultOrder),
		primary: btree.New(btree.DefaultOrder),
	}
	for i := 0; i < n; i++ {
		c := rng.Float64() * 1000
		b := fn(c)
		if rng.Float64() < noise {
			b = rng.Float64() * 3000
		}
		row := [4]float64{float64(i), b, c, rng.Float64()}
		rid, err := f.table.Insert(row[:])
		if err != nil {
			t.Fatal(err)
		}
		f.rows = append(f.rows, row)
		f.rids = append(f.rids, rid)
		f.primary.Insert(row[0], uint64(rid))
		if scheme == PhysicalPointers {
			f.host.Insert(row[1], uint64(rid))
		} else {
			f.host.Insert(row[1], uint64(row[0]))
		}
	}
	return f
}

func linearFn(c float64) float64 { return 2*c + 100 }

func sigmoidFn(c float64) float64 {
	return 10000 / (1 + math.Exp(-(c-500)/80))
}

func newIndex(t testing.TB, f *fixture, scheme PointerScheme, profile bool) *Index {
	t.Helper()
	cfg := Config{
		TargetCol: 2, HostCol: 1, PKCol: 0,
		Scheme:  scheme,
		Params:  trstree.DefaultParams(),
		Profile: profile,
	}
	idx, err := New(f.table, f.host, f.primary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// expected returns the RIDs whose colC value lies in [lo, hi].
func (f *fixture) expected(lo, hi float64) []storage.RID {
	var out []storage.RID
	for i, row := range f.rows {
		if row[2] >= lo && row[2] <= hi {
			out = append(out, f.rids[i])
		}
	}
	return out
}

func sameRIDs(a, b []storage.RID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]storage.RID(nil), a...)
	bs := append([]storage.RID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t, 100, linearFn, 0, PhysicalPointers, 1)
	if _, err := New(nil, f.host, nil, Config{}); err != ErrNilTable {
		t.Fatalf("want ErrNilTable, got %v", err)
	}
	if _, err := New(f.table, nil, nil, Config{}); err != ErrNilHostIndex {
		t.Fatalf("want ErrNilHostIndex, got %v", err)
	}
	if _, err := New(f.table, f.host, nil, Config{Scheme: LogicalPointers}); err != ErrNeedPrimary {
		t.Fatalf("want ErrNeedPrimary, got %v", err)
	}
}

func TestExactRangeResultsLinear(t *testing.T) {
	for _, scheme := range []PointerScheme{PhysicalPointers, LogicalPointers} {
		f := newFixture(t, 20000, linearFn, 0.02, scheme, 2)
		idx := newIndex(t, f, scheme, false)
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 30; trial++ {
			lo := rng.Float64() * 1000
			hi := lo + rng.Float64()*50
			res := idx.Lookup(lo, hi)
			if !sameRIDs(res.RIDs, f.expected(lo, hi)) {
				t.Fatalf("%v scheme: wrong result for [%v,%v]", scheme, lo, hi)
			}
			if res.Qualified != len(res.RIDs) {
				t.Fatalf("qualified=%d rids=%d", res.Qualified, len(res.RIDs))
			}
		}
	}
}

func TestExactRangeResultsSigmoid(t *testing.T) {
	f := newFixture(t, 20000, sigmoidFn, 0.05, PhysicalPointers, 4)
	idx := newIndex(t, f, PhysicalPointers, false)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*80
		res := idx.Lookup(lo, hi)
		if !sameRIDs(res.RIDs, f.expected(lo, hi)) {
			t.Fatalf("wrong result for [%v,%v]", lo, hi)
		}
	}
}

func TestPointLookup(t *testing.T) {
	f := newFixture(t, 10000, linearFn, 0.02, LogicalPointers, 6)
	idx := newIndex(t, f, LogicalPointers, false)
	for trial := 0; trial < 50; trial++ {
		i := trial * 131 % len(f.rows)
		v := f.rows[i][2]
		res := idx.LookupPoint(v)
		if !sameRIDs(res.RIDs, f.expected(v, v)) {
			t.Fatalf("point lookup %v wrong", v)
		}
	}
	// Missing key.
	res := idx.LookupPoint(-1234.5)
	if len(res.RIDs) != 0 {
		t.Fatalf("missing key returned %d rows", len(res.RIDs))
	}
}

func TestFalsePositiveCounters(t *testing.T) {
	f := newFixture(t, 20000, sigmoidFn, 0.05, PhysicalPointers, 7)
	idx := newIndex(t, f, PhysicalPointers, false)
	res := idx.Lookup(100, 200)
	if res.Candidates < res.Qualified {
		t.Fatalf("candidates=%d < qualified=%d", res.Candidates, res.Qualified)
	}
	fp := res.FalsePositiveRatio()
	if fp < 0 || fp >= 1 {
		t.Fatalf("fp ratio %v out of range", fp)
	}
	if idx.LifetimeFalsePositiveRatio() < 0 {
		t.Fatal("lifetime ratio negative")
	}
	idx.ResetCounters()
	if idx.LifetimeFalsePositiveRatio() != 0 {
		t.Fatal("reset failed")
	}
	var empty Result
	if empty.FalsePositiveRatio() != 0 {
		t.Fatal("empty result fp ratio")
	}
}

func TestLargeErrorBoundIncreasesFalsePositives(t *testing.T) {
	f := newFixture(t, 20000, linearFn, 0.01, PhysicalPointers, 8)
	small := trstree.DefaultParams()
	small.ErrorBound = 2
	large := trstree.DefaultParams()
	large.ErrorBound = 10000
	mk := func(p trstree.Params) *Index {
		idx, err := New(f.table, f.host, f.primary, Config{
			TargetCol: 2, HostCol: 1, Scheme: PhysicalPointers, Params: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	idxS, idxL := mk(small), mk(large)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		lo := rng.Float64() * 900
		hi := lo + 0.1 // near-point query exposes eps
		rs := idxS.Lookup(lo, hi)
		rl := idxL.Lookup(lo, hi)
		if !sameRIDs(rs.RIDs, rl.RIDs) {
			t.Fatal("results differ between error bounds")
		}
	}
	if idxL.LifetimeFalsePositiveRatio() < idxS.LifetimeFalsePositiveRatio() {
		t.Fatalf("fp(eb=10000)=%v < fp(eb=2)=%v, contradicts Fig. 17",
			idxL.LifetimeFalsePositiveRatio(), idxS.LifetimeFalsePositiveRatio())
	}
}

func TestProfileBreakdown(t *testing.T) {
	f := newFixture(t, 20000, sigmoidFn, 0.02, LogicalPointers, 10)
	idx := newIndex(t, f, LogicalPointers, true)
	var total Breakdown
	for trial := 0; trial < 10; trial++ {
		res := idx.Lookup(float64(trial*90), float64(trial*90+50))
		total.Add(res.Breakdown)
	}
	if total.Total() == 0 {
		t.Fatal("profiling captured no time")
	}
	fr := total.Fractions()
	var sum float64
	for _, v := range fr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	// Logical scheme must attribute time to the primary-index phase.
	if total[PhasePrimaryIndex] == 0 {
		t.Fatal("no primary-index time under logical pointers")
	}
	var zero Breakdown
	if f := zero.Fractions(); f[0] != 0 {
		t.Fatal("zero breakdown fractions")
	}
}

func TestInsertDeleteUpdateMaintenance(t *testing.T) {
	f := newFixture(t, 10000, linearFn, 0.01, PhysicalPointers, 11)
	idx := newIndex(t, f, PhysicalPointers, false)

	// Insert a new row (an outlier: host value off the line).
	row := []float64{999999, 2500, 321.5, 0}
	rid, err := f.table.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	f.host.Insert(row[1], uint64(rid))
	idx.Insert(rid, row[2], row[1])
	res := idx.Lookup(321.5, 321.5)
	found := false
	for _, r := range res.RIDs {
		if r == rid {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted row not visible")
	}

	// Update the host value: the tuple moves on the correlation plane.
	newB := linearFn(321.5)
	if err := f.table.Set(rid, 1, newB); err != nil {
		t.Fatal(err)
	}
	f.host.Delete(row[1], uint64(rid))
	f.host.Insert(newB, uint64(rid))
	idx.Update(rid, 321.5, row[1], newB)
	res = idx.Lookup(321.5, 321.5)
	found = false
	for _, r := range res.RIDs {
		if r == rid {
			found = true
		}
	}
	if !found {
		t.Fatal("updated row not visible")
	}

	// Delete it.
	idx.Delete(rid, 321.5, newB)
	f.host.Delete(newB, uint64(rid))
	if err := f.table.Delete(rid); err != nil {
		t.Fatal(err)
	}
	res = idx.Lookup(321.5, 321.5)
	for _, r := range res.RIDs {
		if r == rid {
			t.Fatal("deleted row still visible")
		}
	}
}

func TestDeletedTupleFilteredDuringValidation(t *testing.T) {
	// A tuple deleted from the table but stale in the host index must be
	// dropped by the validation step, not returned or crashed on.
	f := newFixture(t, 1000, linearFn, 0, PhysicalPointers, 12)
	idx := newIndex(t, f, PhysicalPointers, false)
	victim := f.rids[500]
	if err := f.table.Delete(victim); err != nil {
		t.Fatal(err)
	}
	res := idx.Lookup(0, 1000)
	for _, r := range res.RIDs {
		if r == victim {
			t.Fatal("tombstoned tuple returned")
		}
	}
}

func TestSizeBytesSuccinct(t *testing.T) {
	f := newFixture(t, 50000, linearFn, 0.01, PhysicalPointers, 13)
	idx := newIndex(t, f, PhysicalPointers, false)
	full := btree.New(btree.DefaultOrder)
	for i, row := range f.rows {
		full.Insert(row[2], uint64(f.rids[i]))
	}
	if idx.SizeBytes()*5 > full.SizeBytes() {
		t.Fatalf("hermit %d bytes not ≪ full index %d bytes (Fig. 19)",
			idx.SizeBytes(), full.SizeBytes())
	}
	if idx.Tree() == nil {
		t.Fatal("Tree() nil")
	}
}

func TestReorgThroughSource(t *testing.T) {
	f := newFixture(t, 10000, linearFn, 0, PhysicalPointers, 14)
	cfg := Config{TargetCol: 2, HostCol: 1, Scheme: PhysicalPointers, Params: trstree.DefaultParams()}
	cfg.Params.SampleRate = 0
	idx, err := New(f.table, f.host, f.primary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flood a narrow region with off-model rows.
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 3000; i++ {
		c := 400 + rng.Float64()*5
		b := 9*c + 50000
		row := []float64{float64(100000 + i), b, c, 0}
		rid, err := f.table.Insert(row)
		if err != nil {
			t.Fatal(err)
		}
		f.rows = append(f.rows, [4]float64{row[0], row[1], row[2], row[3]})
		f.rids = append(f.rids, rid)
		f.host.Insert(b, uint64(rid))
		idx.Insert(rid, c, b)
	}
	if idx.Tree().PendingReorg() == 0 {
		t.Fatal("no reorg candidates queued")
	}
	before := idx.SizeBytes()
	n, err := idx.Tree().ReorgOnce(idx.Source())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing rebuilt")
	}
	if idx.SizeBytes() >= before {
		t.Fatalf("reorg did not shrink index: %d -> %d", before, idx.SizeBytes())
	}
	res := idx.Lookup(400, 405)
	if !sameRIDs(res.RIDs, f.expected(400, 405)) {
		t.Fatal("results wrong after reorg")
	}
}

func TestBuildParallelWorkers(t *testing.T) {
	f := newFixture(t, 30000, sigmoidFn, 0.02, PhysicalPointers, 16)
	cfg := Config{
		TargetCol: 2, HostCol: 1, Scheme: PhysicalPointers,
		Params: trstree.DefaultParams(), BuildWorkers: 4,
	}
	idx, err := New(f.table, f.host, f.primary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Lookup(200, 300)
	if !sameRIDs(res.RIDs, f.expected(200, 300)) {
		t.Fatal("parallel-built index returned wrong results")
	}
}

func TestEmptyTableIndex(t *testing.T) {
	tb := storage.NewTable(4)
	host := btree.New(btree.DefaultOrder)
	idx, err := New(tb, host, nil, Config{TargetCol: 2, HostCol: 1, Params: trstree.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if res := idx.Lookup(0, 100); len(res.RIDs) != 0 {
		t.Fatal("empty index returned rows")
	}
	// Rows inserted later are found via outlier/edge-leaf handling.
	row := []float64{1, 50, 10, 0}
	rid, _ := tb.Insert(row)
	host.Insert(row[1], uint64(rid))
	idx.Insert(rid, row[2], row[1])
	res := idx.Lookup(10, 10)
	if len(res.RIDs) != 1 || res.RIDs[0] != rid {
		t.Fatalf("late insert not found: %+v", res)
	}
}

func TestSchemeAndPhaseStrings(t *testing.T) {
	if PhysicalPointers.String() != "physical" || LogicalPointers.String() != "logical" {
		t.Fatal("PointerScheme.String")
	}
	want := []string{"trs-tree", "host-index", "primary-index", "base-table"}
	for i, w := range want {
		if Phase(i).String() != w {
			t.Fatalf("Phase(%d)=%q want %q", i, Phase(i).String(), w)
		}
	}
}

// Property: Hermit's results match a full table scan for random correlation
// shapes, noise, schemes and predicates — exactness is the paper's
// correctness guarantee (§5.2).
func TestQuickExactness(t *testing.T) {
	fns := []func(float64) float64{linearFn, sigmoidFn,
		func(c float64) float64 { return c*c/50 + 10 },
		func(c float64) float64 { return 800 - c/4 },
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scheme := PointerScheme(rng.Intn(2))
		fx := newFixture(t, 4000, fns[rng.Intn(len(fns))], rng.Float64()*0.15, scheme, seed)
		params := trstree.DefaultParams()
		params.ErrorBound = []float64{1, 2, 100, 10000}[rng.Intn(4)]
		idx, err := New(fx.table, fx.host, fx.primary, Config{
			TargetCol: 2, HostCol: 1, PKCol: 0, Scheme: scheme, Params: params,
		})
		if err != nil {
			return false
		}
		for trial := 0; trial < 8; trial++ {
			lo := rng.Float64() * 1000
			hi := lo + rng.Float64()*120
			if !sameRIDs(idx.Lookup(lo, hi).RIDs, fx.expected(lo, hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHermitRange1pct(b *testing.B) {
	f := newFixture(b, 200000, linearFn, 0.01, PhysicalPointers, 1)
	idx := newIndex(b, f, PhysicalPointers, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64(i%990) + 0.1
		idx.Lookup(lo, lo+10) // ~1% selectivity over [0,1000)
	}
}

func BenchmarkHermitPoint(b *testing.B) {
	f := newFixture(b, 200000, linearFn, 0.01, PhysicalPointers, 1)
	idx := newIndex(b, f, PhysicalPointers, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.LookupPoint(f.rows[i%len(f.rows)][2])
	}
}
