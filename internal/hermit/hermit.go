// Package hermit implements the Hermit secondary indexing mechanism (paper
// §3 and §5): instead of a complete index on a target column M, it keeps a
// succinct TRS-Tree that maps M-ranges to ranges on a correlated host
// column N, resolves those ranges against N's existing host index, and
// validates candidates against the base table to remove false positives.
//
// Both tuple-identifier schemes of §5.1 are supported:
//
//   - Physical pointers: indexes store record IDs ("blockID+offset"); the
//     PostgreSQL-style scheme. Lookups go TRS-Tree → host index → base table.
//   - Logical pointers: indexes store primary keys; the MySQL-style scheme.
//     Lookups add a primary-index hop before the base table.
package hermit

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"hermit/internal/btree"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// PointerScheme selects how indexes identify tuples (§5.1).
type PointerScheme int

const (
	// PhysicalPointers stores record IDs directly in indexes.
	PhysicalPointers PointerScheme = iota
	// LogicalPointers stores primary keys; every secondary lookup resolves
	// them through the primary index.
	LogicalPointers
)

// String implements fmt.Stringer.
func (s PointerScheme) String() string {
	if s == LogicalPointers {
		return "logical"
	}
	return "physical"
}

// Phase identifies one stage of Hermit's lookup workflow (Fig. 3); the
// breakdown experiments (Figs. 10, 14) report time per phase.
type Phase int

const (
	PhaseTRSTree Phase = iota
	PhaseHostIndex
	PhasePrimaryIndex
	PhaseBaseTable
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseTRSTree:
		return "trs-tree"
	case PhaseHostIndex:
		return "host-index"
	case PhasePrimaryIndex:
		return "primary-index"
	default:
		return "base-table"
	}
}

// Breakdown accumulates per-phase wall time across lookups.
type Breakdown [numPhases]time.Duration

// Add merges another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Total returns the summed duration of all phases.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Fractions returns each phase's share of the total, or zeros for an empty
// breakdown.
func (b Breakdown) Fractions() [numPhases]float64 {
	var out [numPhases]float64
	total := b.Total()
	if total == 0 {
		return out
	}
	for i, d := range b {
		out[i] = float64(d) / float64(total)
	}
	return out
}

// Config describes a Hermit index over one column pair.
type Config struct {
	// TargetCol is the column the index is requested on (M).
	TargetCol int
	// HostCol is the correlated column whose complete index already exists (N).
	HostCol int
	// PKCol is the primary-key column; required for LogicalPointers.
	PKCol int
	// Scheme selects the tuple-identifier format.
	Scheme PointerScheme
	// Params configures the TRS-Tree.
	Params trstree.Params
	// BuildWorkers > 1 enables the parallel construction of Appendix D.2.
	BuildWorkers int
	// Profile enables per-phase timing; leave off in throughput runs to
	// avoid clock overhead.
	Profile bool
}

// Index is a Hermit secondary index. Create one with New.
type Index struct {
	cfg     Config
	table   *storage.Table
	tree    *trstree.Tree
	host    *btree.Tree
	primary *btree.Tree // nil under PhysicalPointers

	// Lifetime counters for the false-positive experiments (Fig. 17);
	// atomic so concurrent readers do not race.
	candidates atomic.Uint64 // tuples fetched for validation
	qualified  atomic.Uint64 // tuples that passed validation
}

// Errors returned by New.
var (
	ErrNilTable     = errors.New("hermit: nil table")
	ErrNilHostIndex = errors.New("hermit: nil host index")
	ErrNeedPrimary  = errors.New("hermit: logical pointers require a primary index")
)

// New builds a Hermit index: it scans the table's (target, host) projection
// and constructs the TRS-Tree. The host index must already map host-column
// values to tuple identifiers in the same scheme.
func New(table *storage.Table, host, primary *btree.Tree, cfg Config) (*Index, error) {
	if table == nil {
		return nil, ErrNilTable
	}
	if host == nil {
		return nil, ErrNilHostIndex
	}
	if cfg.Scheme == LogicalPointers && primary == nil {
		return nil, ErrNeedPrimary
	}
	idx := &Index{cfg: cfg, table: table, host: host, primary: primary}
	pairs := make([]trstree.Pair, 0, table.Len())
	err := table.ScanPairs(cfg.TargetCol, cfg.HostCol, func(rid storage.RID, m, n float64) bool {
		pairs = append(pairs, trstree.Pair{M: m, N: n, ID: idx.identify(rid)})
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("hermit: scanning table: %w", err)
	}
	lo, hi, ok := table.ColumnBounds(cfg.TargetCol)
	if !ok {
		lo, hi = 0, 1 // empty table: any range works; inserts extend via edge leaves
	}
	var tree *trstree.Tree
	if cfg.BuildWorkers > 1 {
		tree, err = trstree.BuildParallel(pairs, lo, hi, cfg.Params, cfg.BuildWorkers)
	} else {
		tree, err = trstree.Build(pairs, lo, hi, cfg.Params)
	}
	if err != nil {
		return nil, err
	}
	idx.tree = tree
	return idx, nil
}

// identify converts a physical RID into the identifier stored in indexes
// under the configured scheme.
func (x *Index) identify(rid storage.RID) uint64 {
	if x.cfg.Scheme == PhysicalPointers {
		return uint64(rid)
	}
	pk, err := x.table.Value(rid, x.cfg.PKCol)
	if err != nil {
		return 0
	}
	return uint64(pk)
}

// Tree exposes the underlying TRS-Tree for statistics and maintenance.
func (x *Index) Tree() *trstree.Tree { return x.tree }

// SizeBytes returns the Hermit index's own footprint: just the TRS-Tree
// (the host index is owned by the host column).
func (x *Index) SizeBytes() uint64 { return x.tree.SizeBytes() }

// Result is the outcome of one lookup.
type Result struct {
	// RIDs are the qualifying tuples' physical locations.
	RIDs []storage.RID
	// Candidates counts tuples fetched for validation (including false
	// positives); Qualified counts those that matched.
	Candidates int
	Qualified  int
	// Breakdown has per-phase timings when Profile is enabled.
	Breakdown Breakdown
}

// FalsePositiveRatio returns 1 - qualified/candidates for this result.
func (r Result) FalsePositiveRatio() float64 {
	if r.Candidates == 0 {
		return 0
	}
	return 1 - float64(r.Qualified)/float64(r.Candidates)
}

// Lookup runs Hermit's multi-phase search (Fig. 3) for the predicate
// lo <= M <= hi and returns the exact matching tuples.
func (x *Index) Lookup(lo, hi float64) Result {
	var res Result
	var t0 time.Time

	// Step 1: TRS-Tree lookup.
	if x.cfg.Profile {
		t0 = time.Now()
	}
	tres := x.tree.Lookup(lo, hi)
	if x.cfg.Profile {
		res.Breakdown[PhaseTRSTree] += time.Since(t0)
	}

	// Step 2: host index lookup over the returned ranges; union with the
	// outlier identifiers from step 1.
	if x.cfg.Profile {
		t0 = time.Now()
	}
	ids := tres.IDs
	for _, r := range tres.Ranges {
		x.host.Scan(r.Lo, r.Hi, func(_ float64, id uint64) bool {
			ids = append(ids, id)
			return true
		})
	}
	if x.cfg.Profile {
		res.Breakdown[PhaseHostIndex] += time.Since(t0)
	}

	// Step 3 (logical pointers only): resolve primary keys to locations.
	var rids []storage.RID
	if x.cfg.Scheme == LogicalPointers {
		if x.cfg.Profile {
			t0 = time.Now()
		}
		rids = make([]storage.RID, 0, len(ids))
		for _, pk := range ids {
			if v, ok := x.primary.First(float64(pk)); ok {
				rids = append(rids, storage.RID(v))
			}
		}
		if x.cfg.Profile {
			res.Breakdown[PhasePrimaryIndex] += time.Since(t0)
		}
	} else {
		rids = make([]storage.RID, len(ids))
		for i, id := range ids {
			rids[i] = storage.RID(id)
		}
	}

	// Step 4: base-table validation removes false positives. Candidates are
	// deduplicated by sorting, which beats a hash set on the sizes range
	// queries produce.
	if x.cfg.Profile {
		t0 = time.Now()
	}
	sort.Slice(rids, func(a, b int) bool { return rids[a] < rids[b] })
	out := rids[:0]
	var prev storage.RID
	for i, rid := range rids {
		if i > 0 && rid == prev {
			continue
		}
		prev = rid
		res.Candidates++
		m, err := x.table.Value(rid, x.cfg.TargetCol)
		if err != nil {
			continue // tuple deleted between index read and fetch
		}
		if m >= lo && m <= hi {
			out = append(out, rid)
			res.Qualified++
		}
	}
	if x.cfg.Profile {
		res.Breakdown[PhaseBaseTable] += time.Since(t0)
	}
	res.RIDs = out
	x.candidates.Add(uint64(res.Candidates))
	x.qualified.Add(uint64(res.Qualified))
	return res
}

// LookupPoint answers an equality predicate M = v.
func (x *Index) LookupPoint(v float64) Result { return x.Lookup(v, v) }

// LifetimeFalsePositiveRatio aggregates the false-positive ratio over every
// lookup served so far, the quantity Fig. 17 plots.
func (x *Index) LifetimeFalsePositiveRatio() float64 {
	c := x.candidates.Load()
	if c == 0 {
		return 0
	}
	return 1 - float64(x.qualified.Load())/float64(c)
}

// ResetCounters clears the lifetime false-positive counters.
func (x *Index) ResetCounters() {
	x.candidates.Store(0)
	x.qualified.Store(0)
}

// Insert maintains the index for a newly inserted tuple. The caller supplies
// the row's physical location; the identifier scheme is applied internally.
// Only the TRS-Tree is touched — the host index belongs to the host column
// and is maintained by its own code path, which is exactly why Hermit
// inserts are cheap (§7.6).
func (x *Index) Insert(rid storage.RID, m, n float64) {
	x.tree.Insert(m, n, x.identify(rid))
}

// Delete maintains the index for a deleted tuple.
func (x *Index) Delete(rid storage.RID, m, n float64) {
	x.tree.Delete(m, n, x.identify(rid))
}

// Update maintains the index when the host value of a tuple changes.
func (x *Index) Update(rid storage.RID, m, oldN, newN float64) {
	x.tree.Update(m, oldN, newN, x.identify(rid))
}

// Source returns a trstree.DataSource view of the base table for the
// reorganizer: it projects (target, host, identifier) for rows whose target
// value falls in the requested range.
func (x *Index) Source() trstree.DataSource {
	return tableSource{x}
}

type tableSource struct{ x *Index }

func (s tableSource) ScanMRange(lo, hi float64, fn func(m, n float64, id uint64) bool) error {
	return s.x.table.ScanPairs(s.x.cfg.TargetCol, s.x.cfg.HostCol,
		func(rid storage.RID, m, n float64) bool {
			if m < lo || m > hi {
				return true
			}
			return fn(m, n, s.x.identify(rid))
		})
}
