package hermit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hermit/internal/btree"
	"hermit/internal/storage"
	"hermit/internal/trstree"
)

// compositeFixture models the paper's running example: columns
// 0=TIME (days), 1=DJ (host), 2=SP (target, near-linear in DJ), 3=VOL.
type compositeFixture struct {
	table *storage.Table
	host  *btree.CompositeTree // (TIME, DJ) -> rid
	rows  [][4]float64
	rids  []storage.RID
}

func newCompositeFixture(t testing.TB, n int, noise float64, seed int64) *compositeFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := &compositeFixture{
		table: storage.NewTable(4),
		host:  btree.NewComposite(btree.DefaultOrder),
	}
	dj := 2500.0
	for day := 0; day < n; day++ {
		dj *= 1 + rng.NormFloat64()*0.01
		sp := dj/8 + rng.NormFloat64()*0.05 // S&P tracks Dow/8 tightly
		if rng.Float64() < noise {
			sp = rng.Float64() * dj / 4 // regime-shift day
		}
		row := [4]float64{float64(day), dj, sp, rng.Float64() * 1e6}
		rid, err := f.table.Insert(row[:])
		if err != nil {
			t.Fatal(err)
		}
		f.rows = append(f.rows, row)
		f.rids = append(f.rids, rid)
		f.host.Insert(row[0], row[1], uint64(rid))
	}
	return f
}

func (f *compositeFixture) expected(aLo, aHi, mLo, mHi float64) map[storage.RID]bool {
	out := map[storage.RID]bool{}
	for i, row := range f.rows {
		if row[0] >= aLo && row[0] <= aHi && row[2] >= mLo && row[2] <= mHi {
			out[f.rids[i]] = true
		}
	}
	return out
}

func newCompositeIndex(t testing.TB, f *compositeFixture, profile bool) *CompositeIndex {
	t.Helper()
	idx, err := NewComposite(f.table, f.host, CompositeConfig{
		ACol: 0, TargetCol: 2, HostCol: 1,
		Params:  trstree.DefaultParams(),
		Profile: profile,
	})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func matches(res Result, want map[storage.RID]bool) bool {
	if len(res.RIDs) != len(want) {
		return false
	}
	for _, rid := range res.RIDs {
		if !want[rid] {
			return false
		}
	}
	return true
}

func TestCompositeValidation(t *testing.T) {
	f := newCompositeFixture(t, 100, 0, 1)
	if _, err := NewComposite(nil, f.host, CompositeConfig{}); err != ErrNilTable {
		t.Fatalf("want ErrNilTable, got %v", err)
	}
	if _, err := NewComposite(f.table, nil, CompositeConfig{}); err != ErrNilHostIndex {
		t.Fatalf("want ErrNilHostIndex, got %v", err)
	}
	if _, err := NewComposite(f.table, f.host, CompositeConfig{ACol: 9}); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestCompositeRunningExampleQuery(t *testing.T) {
	// "WHERE TIME BETWEEN ? AND ? AND SP BETWEEN ? AND ?" (paper §3).
	f := newCompositeFixture(t, 15000, 0.005, 2)
	idx := newCompositeIndex(t, f, false)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		aLo := rng.Float64() * 14000
		aHi := aLo + rng.Float64()*1000
		spLo := 100 + rng.Float64()*400
		spHi := spLo + rng.Float64()*100
		res := idx.Lookup(aLo, aHi, spLo, spHi)
		if !matches(res, f.expected(aLo, aHi, spLo, spHi)) {
			t.Fatalf("wrong result for TIME [%v,%v] SP [%v,%v]", aLo, aHi, spLo, spHi)
		}
		if res.Qualified != len(res.RIDs) || res.Candidates < res.Qualified {
			t.Fatalf("counters inconsistent: %+v", res)
		}
	}
	if idx.LifetimeFalsePositiveRatio() < 0 || idx.LifetimeFalsePositiveRatio() >= 1 {
		t.Fatalf("fp ratio %v", idx.LifetimeFalsePositiveRatio())
	}
}

func TestCompositeBothPredicatesFilter(t *testing.T) {
	f := newCompositeFixture(t, 5000, 0.01, 4)
	idx := newCompositeIndex(t, f, false)
	// Narrow TIME window: the A predicate must prune rows whose SP matches.
	res := idx.Lookup(100, 110, 0, 1e9)
	if len(res.RIDs) != 11 {
		t.Fatalf("TIME window returned %d rows, want 11", len(res.RIDs))
	}
	// Empty intersections.
	if res := idx.Lookup(5, 1, 0, 1e9); len(res.RIDs) != 0 {
		t.Fatal("inverted TIME range")
	}
	if res := idx.Lookup(0, 1e9, -5, -1); len(res.RIDs) != 0 {
		t.Fatal("impossible SP range")
	}
}

func TestCompositeMaintenance(t *testing.T) {
	f := newCompositeFixture(t, 2000, 0, 5)
	idx := newCompositeIndex(t, f, false)
	// Insert a regime-shift row (outlier).
	row := []float64{99999, 5000, 9999, 0}
	rid, err := f.table.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	f.rows = append(f.rows, [4]float64{row[0], row[1], row[2], row[3]})
	f.rids = append(f.rids, rid)
	f.host.Insert(row[0], row[1], uint64(rid))
	idx.Insert(rid, row[2], row[1])
	res := idx.Lookup(99999, 99999, 9999, 9999)
	if len(res.RIDs) != 1 || res.RIDs[0] != rid {
		t.Fatalf("inserted row not found: %+v", res)
	}
	// Delete it.
	idx.Delete(rid, row[2], row[1])
	f.host.Delete(row[0], row[1], uint64(rid))
	if err := f.table.Delete(rid); err != nil {
		t.Fatal(err)
	}
	res = idx.Lookup(99999, 99999, 9999, 9999)
	if len(res.RIDs) != 0 {
		t.Fatal("deleted row still visible")
	}
}

func TestCompositeProfileAndReorg(t *testing.T) {
	f := newCompositeFixture(t, 10000, 0.02, 6)
	idx := newCompositeIndex(t, f, true)
	res := idx.Lookup(0, 5000, 200, 400)
	if res.Breakdown.Total() == 0 {
		t.Fatal("no profile time recorded")
	}
	if idx.Tree() == nil || idx.SizeBytes() == 0 {
		t.Fatal("accessors")
	}
	// Reorg through the composite source keeps results exact.
	if _, err := idx.Tree().ReorgOnce(idx.Source()); err != nil {
		t.Fatal(err)
	}
	if err := idx.Tree().ReorgSubtree(0, idx.Source()); err != nil {
		t.Fatal(err)
	}
	res = idx.Lookup(0, 10000, 200, 400)
	if !matches(res, f.expected(0, 10000, 200, 400)) {
		t.Fatal("results wrong after reorg")
	}
}

// Property: composite lookups equal the two-predicate reference filter for
// random windows.
func TestQuickCompositeExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := newCompositeFixture(t, 3000, rng.Float64()*0.1, seed)
		params := trstree.DefaultParams()
		params.ErrorBound = []float64{1, 2, 100}[rng.Intn(3)]
		idx, err := NewComposite(fx.table, fx.host, CompositeConfig{
			ACol: 0, TargetCol: 2, HostCol: 1, Params: params,
		})
		if err != nil {
			return false
		}
		for trial := 0; trial < 8; trial++ {
			aLo := rng.Float64() * 3000
			aHi := aLo + rng.Float64()*500
			mLo := rng.Float64() * 600
			mHi := mLo + rng.Float64()*200
			if !matches(idx.Lookup(aLo, aHi, mLo, mHi), fx.expected(aLo, aHi, mLo, mHi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompositeLookup(b *testing.B) {
	f := newCompositeFixture(b, 100000, 0.005, 1)
	idx := newCompositeIndex(b, f, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aLo := float64(i % 90000)
		idx.Lookup(aLo, aLo+5000, 200, 260)
	}
}
