// Package mlmodels implements the complex regression models the paper uses
// in Appendix D.3 (Table 1) to justify TRS-Tree's choice of plain linear
// regression: epsilon-Support-Vector-Regression with RBF, linear and
// polynomial kernels. Training cost is the point of the comparison — SVR is
// orders of magnitude slower than the closed-form OLS fit — so the solver
// favours clarity over peak speed and supports a wall-clock budget for the
// large problem sizes where the paper simply reports "> 60 s".
package mlmodels

import (
	"errors"
	"math"
	"time"
)

// KernelKind selects the SVR kernel.
type KernelKind int

const (
	// KernelRBF is exp(-gamma * (x-y)^2).
	KernelRBF KernelKind = iota
	// KernelLinear is x*y.
	KernelLinear
	// KernelPoly is (x*y + 1)^degree.
	KernelPoly
)

// String implements fmt.Stringer.
func (k KernelKind) String() string {
	switch k {
	case KernelRBF:
		return "rbf"
	case KernelLinear:
		return "linear"
	default:
		return "polynomial"
	}
}

// SVRConfig configures training.
type SVRConfig struct {
	Kernel KernelKind
	// C bounds the dual coefficients. Default 1.
	C float64
	// Epsilon is the insensitive-loss tube width. Default 0.1.
	Epsilon float64
	// Gamma is the RBF bandwidth. Default 1.
	Gamma float64
	// Degree is the polynomial degree. Default 3.
	Degree int
	// MaxEpochs caps full coordinate-descent passes. Default 50.
	MaxEpochs int
	// Tol stops training when the largest coefficient change in an epoch
	// falls below it. Default 1e-4.
	Tol float64
	// Budget aborts training after this wall-clock duration (0 = none);
	// the model trained so far is returned along with ErrBudgetExceeded.
	Budget time.Duration
}

// DefaultSVRConfig returns usable defaults for unit-scaled data.
func DefaultSVRConfig(kernel KernelKind) SVRConfig {
	return SVRConfig{
		Kernel:    kernel,
		C:         1,
		Epsilon:   0.1,
		Gamma:     1,
		Degree:    3,
		MaxEpochs: 50,
		Tol:       1e-4,
	}
}

// Errors returned by TrainSVR.
var (
	ErrNoTrainingData  = errors.New("mlmodels: no training data")
	ErrBudgetExceeded  = errors.New("mlmodels: training budget exceeded")
	ErrLengthsMismatch = errors.New("mlmodels: xs and ys lengths differ")
)

// SVR is a trained univariate support-vector regressor. Prediction is
// f(x) = sum_i beta_i * K(x_i, x); the bias is absorbed by augmenting the
// kernel with a +1 term.
type SVR struct {
	cfg     SVRConfig
	xs      []float64
	beta    []float64
	Epochs  int // epochs actually run
	Support int // number of nonzero coefficients
}

func (s *SVR) kernel(a, b float64) float64 {
	switch s.cfg.Kernel {
	case KernelRBF:
		d := a - b
		return math.Exp(-s.cfg.Gamma*d*d) + 1
	case KernelLinear:
		return a*b + 1
	default:
		return math.Pow(a*b+1, float64(s.cfg.Degree)) + 1
	}
}

// Predict evaluates the regressor at x.
func (s *SVR) Predict(x float64) float64 {
	var f float64
	for i, b := range s.beta {
		if b != 0 {
			f += b * s.kernel(s.xs[i], x)
		}
	}
	return f
}

// TrainSVR fits an epsilon-SVR by cyclic coordinate descent on the
// bias-augmented dual:
//
//	min_beta  1/2 beta' K beta - y' beta + eps * |beta|_1,  |beta_i| <= C
//
// Each coordinate has the closed-form soft-threshold update, and the kernel
// row is computed on the fly so memory stays O(n) even for the 100K-point
// problem of Table 1 (where the time budget, not memory, is the limit).
func TrainSVR(xs, ys []float64, cfg SVRConfig) (*SVR, error) {
	if len(xs) == 0 {
		return nil, ErrNoTrainingData
	}
	if len(xs) != len(ys) {
		return nil, ErrLengthsMismatch
	}
	cfg = sanitizeSVR(cfg)
	s := &SVR{cfg: cfg, xs: xs, beta: make([]float64, len(xs))}
	// f caches the current prediction at every training point so a single
	// coordinate update costs O(n) instead of O(n^2).
	f := make([]float64, len(xs))
	start := time.Now()
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		s.Epochs = epoch + 1
		var maxDelta float64
		for i := range xs {
			kii := s.kernel(xs[i], xs[i])
			if kii == 0 {
				continue
			}
			// Residual excluding coordinate i's own contribution.
			g := f[i] - s.beta[i]*kii
			target := ys[i] - g
			b := softThreshold(target, cfg.Epsilon) / kii
			b = clamp(b, -cfg.C, cfg.C)
			delta := b - s.beta[i]
			if delta == 0 {
				continue
			}
			s.beta[i] = b
			for j := range xs {
				f[j] += delta * s.kernel(xs[i], xs[j])
			}
			if d := math.Abs(delta); d > maxDelta {
				maxDelta = d
			}
			if cfg.Budget > 0 && time.Since(start) > cfg.Budget {
				s.countSupport()
				return s, ErrBudgetExceeded
			}
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	s.countSupport()
	return s, nil
}

func (s *SVR) countSupport() {
	s.Support = 0
	for _, b := range s.beta {
		if b != 0 {
			s.Support++
		}
	}
}

func sanitizeSVR(cfg SVRConfig) SVRConfig {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Epsilon < 0 {
		cfg.Epsilon = 0.1
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 1
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 3
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 50
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	return cfg
}

func softThreshold(v, eps float64) float64 {
	switch {
	case v > eps:
		return v - eps
	case v < -eps:
		return v + eps
	default:
		return 0
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
