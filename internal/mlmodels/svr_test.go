package mlmodels

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hermit/internal/stats"
)

func genLine(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*2 - 1
		ys[i] = 0.8*xs[i] + 0.3
	}
	return
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainSVR(nil, nil, DefaultSVRConfig(KernelLinear)); err != ErrNoTrainingData {
		t.Fatalf("want ErrNoTrainingData, got %v", err)
	}
	if _, err := TrainSVR([]float64{1}, []float64{1, 2}, DefaultSVRConfig(KernelLinear)); err != ErrLengthsMismatch {
		t.Fatalf("want ErrLengthsMismatch, got %v", err)
	}
}

func TestLinearKernelFitsLine(t *testing.T) {
	xs, ys := genLine(200, 1)
	cfg := DefaultSVRConfig(KernelLinear)
	cfg.Epsilon = 0.01
	cfg.C = 10
	cfg.MaxEpochs = 200
	s, err := TrainSVR(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-0.9, -0.2, 0.4, 0.8} {
		want := 0.8*x + 0.3
		if got := s.Predict(x); math.Abs(got-want) > 0.08 {
			t.Fatalf("predict(%v)=%v want≈%v", x, got, want)
		}
	}
	if s.Support == 0 {
		t.Fatal("no support vectors")
	}
}

func TestRBFFitsSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*4 - 2
		ys[i] = 1 / (1 + math.Exp(-3*xs[i]))
	}
	cfg := DefaultSVRConfig(KernelRBF)
	cfg.Epsilon = 0.02
	cfg.C = 10
	cfg.Gamma = 2
	cfg.MaxEpochs = 100
	s, err := TrainSVR(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, x := range []float64{-1.5, -0.5, 0, 0.5, 1.5} {
		want := 1 / (1 + math.Exp(-3*x))
		if d := math.Abs(s.Predict(x) - want); d > worst {
			worst = d
		}
	}
	if worst > 0.15 {
		t.Fatalf("rbf fit error %v too large", worst)
	}
}

func TestPolyKernelRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*2 - 1
		ys[i] = xs[i] * xs[i]
	}
	cfg := DefaultSVRConfig(KernelPoly)
	cfg.Degree = 2
	cfg.Epsilon = 0.02
	cfg.C = 5
	s, err := TrainSVR(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Predict(0.5)-0.25) > 0.2 {
		t.Fatalf("poly predict(0.5)=%v", s.Predict(0.5))
	}
}

func TestBudgetAborts(t *testing.T) {
	xs, ys := genLine(5000, 4)
	cfg := DefaultSVRConfig(KernelRBF)
	cfg.Budget = time.Millisecond
	s, err := TrainSVR(xs, ys, cfg)
	if err != ErrBudgetExceeded {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if s == nil {
		t.Fatal("partial model should still be returned")
	}
}

func TestSanitizeDefaults(t *testing.T) {
	cfg := sanitizeSVR(SVRConfig{})
	if cfg.C <= 0 || cfg.MaxEpochs <= 0 || cfg.Tol <= 0 || cfg.Gamma <= 0 || cfg.Degree <= 0 {
		t.Fatalf("sanitize produced %+v", cfg)
	}
}

func TestKernelStrings(t *testing.T) {
	if KernelRBF.String() != "rbf" || KernelLinear.String() != "linear" || KernelPoly.String() != "polynomial" {
		t.Fatal("KernelKind.String")
	}
}

func TestSoftThresholdClamp(t *testing.T) {
	if softThreshold(5, 1) != 4 || softThreshold(-5, 1) != -4 || softThreshold(0.5, 1) != 0 {
		t.Fatal("softThreshold")
	}
	if clamp(5, -1, 1) != 1 || clamp(-5, -1, 1) != -1 || clamp(0.5, -1, 1) != 0.5 {
		t.Fatal("clamp")
	}
}

// The point of Table 1: OLS is orders of magnitude faster than SVR on the
// same data.
func TestOLSFasterThanSVR(t *testing.T) {
	xs, ys := genLine(1000, 5)
	t0 := time.Now()
	if _, err := stats.FitLinear(xs, ys); err != nil {
		t.Fatal(err)
	}
	ols := time.Since(t0)
	t0 = time.Now()
	cfg := DefaultSVRConfig(KernelRBF)
	cfg.MaxEpochs = 5
	if _, err := TrainSVR(xs, ys, cfg); err != nil {
		t.Fatal(err)
	}
	svr := time.Since(t0)
	if svr < ols*20 {
		t.Fatalf("svr=%v should dwarf ols=%v", svr, ols)
	}
}

func BenchmarkTrainLinearRegression1K(b *testing.B) {
	xs, ys := genLine(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.FitLinear(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainSVRRBF1K(b *testing.B) {
	xs, ys := genLine(1000, 1)
	cfg := DefaultSVRConfig(KernelRBF)
	cfg.MaxEpochs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainSVR(xs, ys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
