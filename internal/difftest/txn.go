package difftest

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/partition"
	"hermit/internal/trstree"
)

// This file holds the two transactional differential configurations added
// with the MVCC layer:
//
//   - "txn" drives seeded random multi-operation batches through the
//     durable atomic executor and compares against an oracle that applies
//     each batch all-or-nothing — including batches built to fail partway,
//     which must leave the system byte-identical to the oracle's untouched
//     state. The database is closed, reopened and checkpointed mid-stream,
//     so committed transaction groups also round-trip the WAL.
//
//   - "snapshot-scan" pins the cross-partition snapshot guarantee: a
//     reader goroutine continuously scans a set of marker rows spread over
//     every partition while the main thread commits atomic batches that
//     rewrite all markers to a new generation. Every scan must observe one
//     generation exactly — a mixed scan is a torn (partially visible)
//     batch, the bug class MVCC exists to rule out.

// applyBatch applies a mutation batch to the model all-or-nothing,
// mirroring the engine's atomic-batch contract: ops apply in order against
// the batch's running state; the first failure rolls everything back. It
// returns the index of the failing op (-1 when the batch commits).
func (m *model) applyBatch(ops []engine.Op) int {
	type undo struct {
		pk  float64
		row []float64 // nil: pk was absent before the batch touched it
	}
	var undos []undo
	saved := make(map[float64]bool)
	save := func(pk float64) {
		if saved[pk] {
			return
		}
		saved[pk] = true
		if row, ok := m.rows[pk]; ok {
			undos = append(undos, undo{pk: pk, row: append([]float64(nil), row...)})
		} else {
			undos = append(undos, undo{pk: pk})
		}
	}
	rollback := func() {
		for _, u := range undos {
			if _, ok := m.rows[u.pk]; ok {
				m.remove(u.pk)
			}
			if u.row != nil {
				m.insert(u.row)
			}
		}
	}
	for i, op := range ops {
		switch op.Kind {
		case engine.OpInsert:
			save(op.Row[0])
			if !m.insert(op.Row) {
				rollback()
				return i
			}
		case engine.OpDelete:
			save(op.PK)
			m.remove(op.PK) // found=false is not a failure
		case engine.OpUpdate:
			save(op.PK)
			if !m.update(op.PK, op.Col, op.Value) {
				rollback()
				return i
			}
		}
	}
	return -1
}

// runTxn is the "txn" configuration driver.
func runTxn(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := genSchema(rng)
	sys, err := build("durable", cfg, s)
	if err != nil {
		return err
	}
	defer sys.close()
	ds := sys.(*durSystem)
	m := newModel()

	nextPK := float64(0)
	for i := 0; i < 300; i++ {
		row := s.row(rng, nextPK)
		nextPK++
		m.insert(row)
		if err := ds.insert(row); err != nil {
			return Failure{Step: -1, What: fmt.Sprintf("initial insert: %v", err)}
		}
	}

	batches := cfg.Ops / 5
	if batches < 20 {
		batches = 20
	}
	cyclePeriod := batches/4 + 1
	width := len(s.cols)
	for step := 0; step < batches; step++ {
		// Build a 2–8 op mutation batch; ~1/4 of batches contain an op
		// built to fail (duplicate insert or update of an absent key), so
		// the all-or-nothing abort path is exercised constantly.
		n := 2 + rng.Intn(7)
		ops := make([]engine.Op, 0, n)
		for i := 0; i < n; i++ {
			switch p := rng.Float64(); {
			case p < 0.40:
				var row []float64
				if pk, ok := m.pick(rng); ok && rng.Float64() < 0.12 {
					row = s.row(rng, pk) // duplicate: poisons the batch
				} else {
					row = s.row(rng, nextPK)
					nextPK++
				}
				ops = append(ops, engine.Op{Table: "t", Kind: engine.OpInsert, Row: row})
			case p < 0.65:
				pk, ok := m.pick(rng)
				if !ok || rng.Float64() < 0.25 {
					pk = nextPK + 5000 + rng.Float64() // absent: found=false, no failure
				}
				ops = append(ops, engine.Op{Table: "t", Kind: engine.OpDelete, PK: pk})
			default:
				col := 1 + rng.Intn(width-1)
				lo, hi := s.valueRange(col)
				pk, ok := m.pick(rng)
				if !ok || rng.Float64() < 0.15 {
					pk = nextPK + 9000 + rng.Float64() // absent: poisons the batch
				}
				ops = append(ops, engine.Op{
					Table: "t", Kind: engine.OpUpdate, PK: pk, Col: col,
					Value: lo + rng.Float64()*(hi-lo),
				})
			}
		}
		wantFail := m.applyBatch(ops)
		res := ds.d.ExecuteBatch(ops, 1+rng.Intn(4))
		for i, r := range res {
			// On an oracle-predicted abort every mutation must error; on a
			// committed batch none may. (Found-ness and row contents are
			// cross-checked by the periodic full-state audits.)
			if wantErr := wantFail >= 0; (r.Err != nil) != wantErr {
				return Failure{step, fmt.Sprintf(
					"batch op %d (%v): err=%v, oracle batch failure at %d", i, ops[i].Kind, r.Err, wantFail)}
			}
		}
		if step > 0 && step%cyclePeriod == 0 {
			if err := ds.cycle(rng.Intn(2) == 0); err != nil {
				return Failure{Step: step, What: fmt.Sprintf("cycle: %v", err)}
			}
		}
		if step%8 == 0 || step == batches-1 {
			if err := audit(m, ds, step); err != nil {
				return err
			}
		}
		// Interleave a plain query so index maintenance under transactional
		// churn is observed too.
		col := rng.Intn(width)
		lo, hi := s.valueRange(col)
		qlo := lo + rng.Float64()*(hi-lo)
		qhi := qlo + rng.Float64()*rng.Float64()*(hi-lo)
		want := m.query(col, qlo, qhi)
		got, err := ds.query(col, qlo, qhi)
		if err != nil {
			return Failure{step, fmt.Sprintf("range col=%d: %v", col, err)}
		}
		if err := samePKs(want, got); err != nil {
			return Failure{step, fmt.Sprintf("range col=%d [%v,%v]: %v", col, qlo, qhi, err)}
		}
	}
	return audit(m, ds, batches)
}

// runSnapshotScan is the "snapshot-scan" configuration driver.
func runSnapshotScan(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	parts := cfg.Partitions
	if parts <= 0 {
		parts = 3
	}
	// Schema: pk | gen (the generation every marker row carries) | tag
	// (1 for marker rows, 0 for churn rows).
	cols := []string{"pk", "gen", "tag"}
	pt, err := partition.New(hermit.PhysicalPointers, "t", cols, 0,
		partition.Options{Partitions: parts, Workers: 2})
	if err != nil {
		return err
	}
	if err := pt.CreateBTreeIndex(1, false); err != nil {
		return err
	}
	if err := pt.CreateHermitIndex(2, 1, trstree.DefaultParams()); err != nil {
		return err
	}
	const markers = 24 // enough keys to land on every partition
	for i := 0; i < markers; i++ {
		if _, err := pt.Insert([]float64{float64(i), 0, 1}); err != nil {
			return err
		}
	}

	rounds := cfg.Ops / 20
	if rounds < 30 {
		rounds = 30
	}
	var (
		stop    atomic.Bool
		scans   atomic.Int64
		readErr atomic.Value
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := pt.Snapshot()
			rids, _, err := pt.RangeQueryAt(snap, 2, 1, 1) // all marker rows
			if err != nil {
				readErr.Store(fmt.Errorf("marker scan: %w", err))
				snap.Release()
				return
			}
			if len(rids) != markers {
				readErr.Store(fmt.Errorf("marker scan saw %d rows, want %d", len(rids), markers))
				snap.Release()
				return
			}
			var gen float64
			for i, rid := range rids {
				row, err := pt.FetchRow(rid)
				if err != nil {
					readErr.Store(fmt.Errorf("fetch under snapshot: %w", err))
					snap.Release()
					return
				}
				if i == 0 {
					gen = row[1]
				} else if row[1] != gen {
					readErr.Store(fmt.Errorf(
						"torn batch observed: marker generations %v and %v in one scan", gen, row[1]))
					snap.Release()
					return
				}
			}
			snap.Release()
			scans.Add(1)
		}
	}()

	nextPK := float64(1000)
	for g := 1; g <= rounds && readErr.Load() == nil; g++ {
		// One atomic batch: rewrite every marker to generation g, plus
		// unrelated churn (inserts/deletes) that lands on random partitions.
		var ops []engine.Op
		for i := 0; i < markers; i++ {
			ops = append(ops, engine.Op{Kind: engine.OpUpdate, PK: float64(i), Col: 1, Value: float64(g)})
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			if rng.Float64() < 0.5 || nextPK < 1002 {
				ops = append(ops, engine.Op{Kind: engine.OpInsert, Row: []float64{nextPK, float64(g), 0}})
				nextPK++
			} else {
				ops = append(ops, engine.Op{Kind: engine.OpDelete, PK: 1000 + rng.Float64()*(nextPK-1000)})
			}
		}
		prev := scans.Load()
		res := pt.ExecuteBatch(ops, 1+rng.Intn(3))
		for i, r := range res {
			if r.Err != nil {
				stop.Store(true)
				wg.Wait()
				return Failure{g, fmt.Sprintf("batch op %d: %v", i, r.Err)}
			}
		}
		// Let the reader complete at least one scan against this
		// generation before the next batch commits — on a single-CPU box
		// the tight writer loop would otherwise starve it entirely.
		for spins := 0; scans.Load() == prev && readErr.Load() == nil && spins < 2000; spins++ {
			if spins%100 == 99 {
				time.Sleep(time.Millisecond)
			} else {
				runtime.Gosched()
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := readErr.Load(); err != nil {
		return Failure{Step: -1, What: err.(error).Error()}
	}
	if scans.Load() == 0 {
		return Failure{Step: -1, What: "reader completed zero scans (no concurrency exercised)"}
	}
	// Final state: every marker carries the last generation.
	for i := 0; i < markers; i++ {
		rids, _, err := pt.PointQuery(0, float64(i))
		if err != nil || len(rids) != 1 {
			return Failure{Step: -1, What: fmt.Sprintf("marker %d: rids=%d err=%v", i, len(rids), err)}
		}
		row, err := pt.FetchRow(rids[0])
		if err != nil || row[1] != float64(rounds) {
			return Failure{Step: -1, What: fmt.Sprintf("marker %d gen=%v, want %d", i, row[1], rounds)}
		}
	}
	return nil
}
