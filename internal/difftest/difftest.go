// Package difftest is the model-based differential fuzz harness that keeps
// the growing engine provably equivalent to a trivial oracle (in the
// spirit of in-database model checking à la Wang & Wang, arXiv:2204.09819):
// a seeded random operation stream — inserts, deletes, single-column
// updates, point and range queries over schemas with correlated columns
// from internal/workload — is applied simultaneously to a plain-map model
// and to a real database configuration, and every result is compared
// exactly. Because every value is a float64 that both sides store
// bit-identically, comparisons are exact equality, never tolerance-based.
//
// The harness runs the same stream against several configurations (see
// Configs): the in-memory engine under the cost planner and under static
// routing, the hash-partitioned scatter-gather table, and durable
// databases — plain and partitioned — that are closed, reopened and
// checkpointed mid-stream, asserting the recovered state still matches the
// oracle row for row, and the network serving tier: the same stream
// replayed over loopback TCP through the client package against a hermitd
// server that is drained and restarted mid-stream.
// It is driven by `go test ./internal/difftest` with
// the -difftest.ops flag scaling the stream length (CI runs ≥10k ops per
// configuration under -race).
package difftest

import (
	"fmt"
	"math/rand"
	"sort"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/partition"
	"hermit/internal/trstree"
	"hermit/internal/workload"
)

// Config parameterises one differential run.
type Config struct {
	// Seed drives every random choice (schema, data, op stream).
	Seed int64
	// Ops is the operation-stream length.
	Ops int
	// Partitions is the partition count for partitioned configurations.
	Partitions int
	// Dir hosts durable files for durable configurations (a test TempDir).
	Dir string
}

// Configs lists the differential configurations the harness covers.
var Configs = []string{
	"inmem-cost",          // in-memory engine, cost-based planner (default)
	"inmem-static",        // in-memory engine, fixed static routing
	"partitioned",         // hash-partitioned scatter-gather table
	"durable",             // WAL+checkpoint engine, close/reopen mid-stream
	"durable-partitioned", // partitioned durable table, close/reopen mid-stream
	"txn",                 // atomic multi-op batches vs an all-or-nothing oracle (durable)
	"snapshot-scan",       // concurrent reader asserting no scan observes a partial batch
	"server",              // op stream replayed over loopback TCP through the serving tier
	"blocks",              // durable engine under aggressive flush/compaction thresholds
	"replica",             // leader + tailing follower, three-way audits, follower restarts
}

// schema is the generated table shape: col 0 is the primary key, col 1 the
// host column b = fn(c) + noise, col 2 the correlated target c, and any
// further columns are uniform payload.
type schema struct {
	cols  []string
	fn    workload.CorrelationKind
	noise float64
}

func genSchema(rng *rand.Rand) schema {
	width := 3 + rng.Intn(4) // 3..6 columns
	cols := make([]string, width)
	cols[0], cols[1], cols[2] = "pk", "host", "target"
	for i := 3; i < width; i++ {
		cols[i] = fmt.Sprintf("x%d", i)
	}
	fns := []workload.CorrelationKind{workload.Linear, workload.Sigmoid, workload.Sin}
	return schema{
		cols:  cols,
		fn:    fns[rng.Intn(len(fns))],
		noise: []float64{0, 0.01, 0.05}[rng.Intn(3)],
	}
}

// row generates one fresh row with primary key pk and a correlated
// (host, target) pair.
func (s schema) row(rng *rand.Rand, pk float64) []float64 {
	row := make([]float64, len(s.cols))
	c := rng.Float64() * workload.SyntheticSpan
	b := s.fn.Eval(c)
	if s.noise > 0 && rng.Float64() < s.noise {
		b = rng.Float64() * 12000
	}
	row[0], row[1], row[2] = pk, b, c
	for i := 3; i < len(row); i++ {
		row[i] = rng.Float64()
	}
	return row
}

// valueRange returns the span queries and updates on col draw from.
func (s schema) valueRange(col int) (lo, hi float64) {
	switch col {
	case 1:
		return 0, 12000
	case 2:
		return 0, workload.SyntheticSpan
	default:
		return 0, 1
	}
}

// model is the trivial oracle: live rows in a map keyed by primary key,
// with a side slice for O(1) random picks of existing keys.
type model struct {
	rows  map[float64][]float64
	pks   []float64
	pkPos map[float64]int
}

func newModel() *model {
	return &model{rows: make(map[float64][]float64), pkPos: make(map[float64]int)}
}

func (m *model) insert(row []float64) bool {
	pk := row[0]
	if _, dup := m.rows[pk]; dup {
		return false
	}
	m.rows[pk] = append([]float64(nil), row...)
	m.pkPos[pk] = len(m.pks)
	m.pks = append(m.pks, pk)
	return true
}

func (m *model) remove(pk float64) bool {
	if _, ok := m.rows[pk]; !ok {
		return false
	}
	delete(m.rows, pk)
	pos := m.pkPos[pk]
	last := m.pks[len(m.pks)-1]
	m.pks[pos] = last
	m.pkPos[last] = pos
	m.pks = m.pks[:len(m.pks)-1]
	delete(m.pkPos, pk)
	return true
}

func (m *model) update(pk float64, col int, v float64) bool {
	row, ok := m.rows[pk]
	if !ok {
		return false
	}
	row[col] = v
	return true
}

// query returns the sorted primary keys of rows with lo <= row[col] <= hi.
func (m *model) query(col int, lo, hi float64) []float64 {
	var out []float64
	for pk, row := range m.rows {
		if row[col] >= lo && row[col] <= hi {
			out = append(out, pk)
		}
	}
	sort.Float64s(out)
	return out
}

// pick returns a uniformly random live primary key.
func (m *model) pick(rng *rand.Rand) (float64, bool) {
	if len(m.pks) == 0 {
		return 0, false
	}
	return m.pks[rng.Intn(len(m.pks))], true
}

// system is the real-database side of the comparison. Implementations
// must report results in oracle vocabulary: sorted matching primary keys
// for queries, the full live row set for state audits.
type system interface {
	insert(row []float64) error
	remove(pk float64) (bool, error)
	update(pk float64, col int, v float64) error
	query(col int, lo, hi float64) ([]float64, error)
	state() (map[float64][]float64, error)
	// cycle is the durability round-trip: optionally checkpoint, then
	// close and reopen, rebinding handles. Non-durable systems no-op.
	cycle(checkpoint bool) error
	close() error
}

// Failure describes a divergence between the oracle and the system.
type Failure struct {
	// Step is the op-stream position (or -1 for a state audit).
	Step int
	// What describes the divergence.
	What string
}

// Error implements the error interface.
func (f Failure) Error() string { return fmt.Sprintf("difftest: step %d: %s", f.Step, f.What) }

// Run drives one differential configuration to completion, returning the
// first divergence as a *Failure (nil when the system tracked the oracle
// exactly over the whole stream).
func Run(cfgName string, cfg Config) error {
	switch cfgName {
	case "txn":
		return runTxn(cfg)
	case "snapshot-scan":
		return runSnapshotScan(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := genSchema(rng)
	sys, err := build(cfgName, cfg, s)
	if err != nil {
		return err
	}
	defer sys.close()
	m := newModel()

	// Initial load: enough rows that index builds have signal.
	nextPK := float64(0)
	for i := 0; i < 300; i++ {
		row := s.row(rng, nextPK)
		nextPK++
		m.insert(row)
		if err := sys.insert(row); err != nil {
			return Failure{Step: -1, What: fmt.Sprintf("initial insert: %v", err)}
		}
	}

	cyclePeriod := cfg.Ops/4 + 1
	for step := 0; step < cfg.Ops; step++ {
		if err := runStep(rng, s, m, sys, step, &nextPK); err != nil {
			return err
		}
		if step > 0 && step%cyclePeriod == 0 {
			if err := sys.cycle(rng.Intn(2) == 0); err != nil {
				return Failure{Step: step, What: fmt.Sprintf("cycle: %v", err)}
			}
			if err := audit(m, sys, step); err != nil {
				return err
			}
		}
	}
	return audit(m, sys, cfg.Ops)
}

// runStep applies one random operation to both sides and compares.
func runStep(rng *rand.Rand, s schema, m *model, sys system, step int, nextPK *float64) error {
	width := len(s.cols)
	switch p := rng.Float64(); {
	case p < 0.30: // insert (sometimes a duplicate key)
		var row []float64
		if pk, ok := m.pick(rng); ok && rng.Float64() < 0.15 {
			row = s.row(rng, pk)
		} else {
			row = s.row(rng, *nextPK)
			*nextPK++
		}
		wantOK := m.insert(row)
		err := sys.insert(row)
		if wantOK && err != nil {
			return Failure{step, fmt.Sprintf("insert pk=%v: oracle accepts, system errors: %v", row[0], err)}
		}
		if !wantOK && err == nil {
			return Failure{step, fmt.Sprintf("insert pk=%v: duplicate accepted by system", row[0])}
		}
	case p < 0.42: // delete (sometimes an absent key)
		pk, ok := m.pick(rng)
		if !ok || rng.Float64() < 0.3 {
			pk = *nextPK + 1000 + rng.Float64()
		}
		want := m.remove(pk)
		got, err := sys.remove(pk)
		if err != nil {
			return Failure{step, fmt.Sprintf("delete pk=%v: %v", pk, err)}
		}
		if got != want {
			return Failure{step, fmt.Sprintf("delete pk=%v: found=%v, oracle=%v", pk, got, want)}
		}
	case p < 0.57: // update (sometimes an absent key)
		col := 1 + rng.Intn(width-1)
		lo, hi := s.valueRange(col)
		v := lo + rng.Float64()*(hi-lo)
		pk, ok := m.pick(rng)
		if !ok || rng.Float64() < 0.2 {
			pk = *nextPK + 2000 + rng.Float64()
		}
		want := m.update(pk, col, v)
		err := sys.update(pk, col, v)
		if want && err != nil {
			return Failure{step, fmt.Sprintf("update pk=%v col=%d: oracle accepts, system errors: %v", pk, col, err)}
		}
		if !want && err == nil {
			return Failure{step, fmt.Sprintf("update pk=%v col=%d: absent key accepted", pk, col)}
		}
	case p < 0.85: // range query on a random column
		col := rng.Intn(width)
		var lo, hi float64
		if col == 0 {
			lo = rng.Float64() * *nextPK
			hi = lo + rng.Float64()*rng.Float64()**nextPK
		} else {
			clo, chi := s.valueRange(col)
			lo = clo + rng.Float64()*(chi-clo)
			hi = lo + rng.Float64()*rng.Float64()*(chi-clo)
		}
		want := m.query(col, lo, hi)
		got, err := sys.query(col, lo, hi)
		if err != nil {
			return Failure{step, fmt.Sprintf("range col=%d [%v,%v]: %v", col, lo, hi, err)}
		}
		if err := samePKs(want, got); err != nil {
			return Failure{step, fmt.Sprintf("range col=%d [%v,%v]: %v", col, lo, hi, err)}
		}
	default: // point query, biased toward the primary key
		col := 0
		if rng.Float64() < 0.4 {
			col = rng.Intn(width)
		}
		var v float64
		if pk, ok := m.pick(rng); ok && col == 0 && rng.Float64() < 0.8 {
			v = pk
		} else if row, ok2 := m.rows[pickOrZero(m, rng)]; ok2 && rng.Float64() < 0.5 {
			v = row[col]
		} else {
			lo, hi := s.valueRange(col)
			v = lo + rng.Float64()*(hi-lo)
		}
		want := m.query(col, v, v)
		got, err := sys.query(col, v, v)
		if err != nil {
			return Failure{step, fmt.Sprintf("point col=%d v=%v: %v", col, v, err)}
		}
		if err := samePKs(want, got); err != nil {
			return Failure{step, fmt.Sprintf("point col=%d v=%v: %v", col, v, err)}
		}
	}
	return nil
}

func pickOrZero(m *model, rng *rand.Rand) float64 {
	pk, _ := m.pick(rng)
	return pk
}

// samePKs compares two sorted primary-key lists exactly.
func samePKs(want, got []float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d rows, oracle %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("row %d: pk %v, oracle %v", i, got[i], want[i])
		}
	}
	return nil
}

// audit compares the full live state row for row.
func audit(m *model, sys system, step int) error {
	got, err := sys.state()
	if err != nil {
		return Failure{step, fmt.Sprintf("state: %v", err)}
	}
	if len(got) != len(m.rows) {
		return Failure{step, fmt.Sprintf("state: %d live rows, oracle %d", len(got), len(m.rows))}
	}
	for pk, want := range m.rows {
		row, ok := got[pk]
		if !ok {
			return Failure{step, fmt.Sprintf("state: pk %v missing", pk)}
		}
		if len(row) != len(want) {
			return Failure{step, fmt.Sprintf("state: pk %v width %d, oracle %d", pk, len(row), len(want))}
		}
		for c := range want {
			if row[c] != want[c] {
				return Failure{step, fmt.Sprintf("state: pk %v col %d = %v, oracle %v", pk, c, row[c], want[c])}
			}
		}
	}
	return nil
}

// build constructs the named system over the generated schema, with the
// host B+-tree and target Hermit index in place (their maintenance under
// the mutation stream is much of what the harness exercises).
func build(cfgName string, cfg Config, s schema) (system, error) {
	parts := cfg.Partitions
	if parts <= 0 {
		parts = 3
	}
	switch cfgName {
	case "inmem-cost", "inmem-static":
		db := engine.NewDB(hermit.PhysicalPointers)
		tb, err := db.CreateTable("t", s.cols, 0)
		if err != nil {
			return nil, err
		}
		if cfgName == "inmem-static" {
			tb.SetRouting(engine.RouteStatic)
		}
		if _, err := tb.CreateBTreeIndex(1, false); err != nil {
			return nil, err
		}
		if _, err := tb.CreateHermitIndex(2, 1); err != nil {
			return nil, err
		}
		return &memSystem{tb: tb}, nil
	case "partitioned":
		pt, err := partition.New(hermit.PhysicalPointers, "t", s.cols, 0,
			partition.Options{Partitions: parts, Workers: 2})
		if err != nil {
			return nil, err
		}
		if err := pt.CreateBTreeIndex(1, false); err != nil {
			return nil, err
		}
		if err := pt.CreateHermitIndex(2, 1, trstree.DefaultParams()); err != nil {
			return nil, err
		}
		return &partSystem{pt: pt}, nil
	case "server":
		return buildServer(cfg, s)
	case "replica":
		return buildReplica(cfg, s)
	case "durable", "durable-partitioned", "blocks":
		var opts engine.DurableOptions
		if cfgName == "blocks" {
			// Aggressive thresholds so a short stream still crosses every
			// storage-tier edge: tiny WAL segments force rotating
			// checkpoints, fan-in 2 makes every pair of delta blocks a
			// compaction candidate, and the background compactor runs
			// concurrently with the op stream on top of the forced
			// mid-stream compactions the cycle adds.
			opts = engine.DurableOptions{CompactFanIn: 2, WALRotateBytes: 1}
		}
		d, err := engine.OpenDurableOptions(cfg.Dir, hermit.PhysicalPointers, opts)
		if err != nil {
			return nil, err
		}
		ds := &durSystem{dir: cfg.Dir, d: d, name: "t", opts: opts, compact: cfgName == "blocks"}
		if cfgName == "durable-partitioned" {
			ds.parts = parts
			if err := d.CreatePartitionedTable("t", s.cols, 0, parts); err != nil {
				return nil, err
			}
		} else {
			if _, err := d.CreateTable("t", s.cols, 0); err != nil {
				return nil, err
			}
		}
		if err := d.CreateIndex("t", engine.IndexDef{Kind: "btree", Col: 1}); err != nil {
			return nil, err
		}
		if err := d.CreateIndex("t", engine.IndexDef{
			Kind: "hermit", Col: 2, Host: 1, Params: trstree.DefaultParams(),
		}); err != nil {
			return nil, err
		}
		if err := ds.bind(); err != nil {
			return nil, err
		}
		return ds, nil
	default:
		return nil, fmt.Errorf("difftest: unknown config %q", cfgName)
	}
}
