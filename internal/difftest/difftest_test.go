package difftest

import (
	"flag"
	"fmt"
	"testing"
)

// difftestOps scales the operation stream per configuration × seed. CI
// runs the harness with -difftest.ops 10000 under -race; the default keeps
// a plain `go test ./...` quick.
var difftestOps = flag.Int("difftest.ops", 2000, "operations per differential configuration and seed")

// seedCorpus is the default seed set; every (config, seed) pair runs the
// full stream.
var seedCorpus = []int64{1, 2, 3}

// TestDifferential runs the oracle-vs-system comparison for every
// configuration over the seed corpus.
func TestDifferential(t *testing.T) {
	for _, cfgName := range Configs {
		for _, seed := range seedCorpus {
			cfgName, seed := cfgName, seed
			t.Run(fmt.Sprintf("%s/seed=%d", cfgName, seed), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Seed: seed, Ops: *difftestOps, Partitions: 2 + int(seed)%3}
				if cfgName == "durable" || cfgName == "durable-partitioned" ||
					cfgName == "txn" || cfgName == "server" || cfgName == "blocks" ||
					cfgName == "replica" {
					cfg.Dir = t.TempDir()
				}
				if err := Run(cfgName, cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestRunRejectsUnknownConfig pins the config vocabulary.
func TestRunRejectsUnknownConfig(t *testing.T) {
	if err := Run("no-such-config", Config{Seed: 1, Ops: 1}); err == nil {
		t.Fatal("unknown config accepted")
	}
}
