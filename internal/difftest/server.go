package difftest

import (
	"fmt"
	"math"
	"sort"

	"hermit/internal/client"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/server"
)

// srvSystem replays the op stream through the full serving tier: a
// loopback hermitd Server fronting a durable database, driven by the
// client package under a tenant namespace. Every operation — DDL
// included — crosses the wire, so the protocol encoding, session
// dispatch, backend routing and error mapping are all inside the
// differential comparison. cycle() restarts the whole stack (server
// drain, database close/reopen, re-dial), which is the harshest client
// a server sees: one that reconnects right after a recovery.
type srvSystem struct {
	dir  string
	name string

	d    *engine.DurableDB
	srv  *server.Server
	conn *client.Conn
}

// srvTenant namespaces the difftest table, so the physical table name
// the engine recovers ("dt@t") differs from the wire name ("t").
const srvTenant = "dt"

// start brings up the server over the current database and dials it.
func (s *srvSystem) start() error {
	s.srv = server.New(s.d, server.Options{})
	if err := s.srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	conn, err := client.Dial(s.srv.Addr().String(), client.Options{Tenant: srvTenant})
	if err != nil {
		s.srv.Close()
		return err
	}
	s.conn = conn
	return nil
}

func (s *srvSystem) insert(row []float64) error { return s.conn.Insert(s.name, row) }

func (s *srvSystem) remove(pk float64) (bool, error) { return s.conn.Delete(s.name, pk) }

func (s *srvSystem) update(pk float64, col int, v float64) error {
	return s.conn.Update(s.name, pk, col, v)
}

func (s *srvSystem) query(col int, lo, hi float64) ([]float64, error) {
	rows, err := s.conn.Range(s.name, col, lo, hi)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(rows))
	for _, row := range rows {
		out = append(out, row[0])
	}
	sort.Float64s(out)
	return out, nil
}

// state dumps the live row set with an unbounded primary-key range scan
// over the wire.
func (s *srvSystem) state() (map[float64][]float64, error) {
	rows, err := s.conn.Range(s.name, 0, -math.MaxFloat64, math.MaxFloat64)
	if err != nil {
		return nil, err
	}
	out := make(map[float64][]float64, len(rows))
	for _, row := range rows {
		out[row[0]] = append([]float64(nil), row...)
	}
	return out, nil
}

// cycle restarts the full stack: drain the server, optionally
// checkpoint, close and reopen the database, restart the server and
// re-dial. A recovery that skipped records is a divergence in itself.
func (s *srvSystem) cycle(checkpoint bool) error {
	s.conn.Close()
	if err := s.srv.Close(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if checkpoint {
		if err := s.d.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := s.d.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	d, err := engine.OpenDurable(s.dir, hermit.PhysicalPointers)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	if n, serr := d.RecoverySkipped(); n != 0 {
		return fmt.Errorf("recovery skipped %d records (last: %v)", n, serr)
	}
	s.d = d
	return s.start()
}

func (s *srvSystem) close() error {
	s.conn.Close()
	s.srv.Close()
	return s.d.Close()
}

// buildServer constructs the served system, issuing all DDL over the
// wire: the table plus the host B+-tree and target Hermit index.
func buildServer(cfg Config, s schema) (system, error) {
	d, err := engine.OpenDurable(cfg.Dir, hermit.PhysicalPointers)
	if err != nil {
		return nil, err
	}
	ss := &srvSystem{dir: cfg.Dir, name: "t", d: d}
	if err := ss.start(); err != nil {
		d.Close()
		return nil, err
	}
	if err := ss.conn.CreateTable("t", s.cols, 0, 0); err != nil {
		ss.close()
		return nil, err
	}
	if err := ss.conn.CreateBTreeIndex("t", 1); err != nil {
		ss.close()
		return nil, err
	}
	if err := ss.conn.CreateHermitIndex("t", 2, 1); err != nil {
		ss.close()
		return nil, err
	}
	return ss, nil
}
