package difftest

import (
	"fmt"
	"sort"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/partition"
	"hermit/internal/storage"
)

// memSystem adapts a single in-memory engine table.
type memSystem struct {
	tb *engine.Table
}

func (s *memSystem) insert(row []float64) error {
	_, err := s.tb.Insert(row)
	return err
}

func (s *memSystem) remove(pk float64) (bool, error) { return s.tb.Delete(pk) }

func (s *memSystem) update(pk float64, col int, v float64) error {
	return s.tb.UpdateColumn(pk, col, v)
}

func (s *memSystem) query(col int, lo, hi float64) ([]float64, error) {
	rids, _, err := s.tb.RangeQuery(col, lo, hi)
	if err != nil {
		return nil, err
	}
	return ridPKs(s.tb, rids)
}

func (s *memSystem) state() (map[float64][]float64, error) { return tableState(s.tb) }

func (s *memSystem) cycle(bool) error { return nil }
func (s *memSystem) close() error     { return nil }

// ridPKs maps engine RIDs to sorted primary keys.
func ridPKs(tb *engine.Table, rids []storage.RID) ([]float64, error) {
	out := make([]float64, 0, len(rids))
	for _, rid := range rids {
		v, err := tb.Store().Value(rid, tb.PKCol())
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	sort.Float64s(out)
	return out, nil
}

// tableState dumps a table's live rows keyed by primary key (col 0 in
// every generated schema). ScanLive resolves MVCC visibility — the raw
// store also holds superseded and deleted versions awaiting GC.
func tableState(tb *engine.Table) (map[float64][]float64, error) {
	out := make(map[float64][]float64, tb.Len())
	tb.ScanLive(func(_ storage.RID, row []float64) bool {
		out[row[0]] = append([]float64(nil), row...)
		return true
	})
	return out, nil
}

// partSystem adapts an in-memory partitioned table.
type partSystem struct {
	pt *partition.Table
}

func (s *partSystem) insert(row []float64) error {
	_, err := s.pt.Insert(row)
	return err
}

func (s *partSystem) remove(pk float64) (bool, error) { return s.pt.Delete(pk) }

func (s *partSystem) update(pk float64, col int, v float64) error {
	return s.pt.UpdateColumn(pk, col, v)
}

func (s *partSystem) query(col int, lo, hi float64) ([]float64, error) {
	rids, _, err := s.pt.RangeQuery(col, lo, hi)
	if err != nil {
		return nil, err
	}
	return partPKs(s.pt, rids)
}

func (s *partSystem) state() (map[float64][]float64, error) { return partState(s.pt) }

func (s *partSystem) cycle(bool) error { return nil }
func (s *partSystem) close() error     { return nil }

// partPKs maps partitioned RIDs to sorted primary keys.
func partPKs(pt *partition.Table, rids []partition.RID) ([]float64, error) {
	out := make([]float64, 0, len(rids))
	for _, r := range rids {
		row, err := pt.FetchRow(r)
		if err != nil {
			return nil, err
		}
		out = append(out, row[pt.PKCol()])
	}
	sort.Float64s(out)
	return out, nil
}

// partState unions every partition's live rows.
func partState(pt *partition.Table) (map[float64][]float64, error) {
	out := make(map[float64][]float64, pt.Len())
	for i := 0; i < pt.Partitions(); i++ {
		st, err := tableState(pt.Part(i))
		if err != nil {
			return nil, err
		}
		for pk, row := range st {
			if _, dup := out[pk]; dup {
				return nil, fmt.Errorf("pk %v present in two partitions", pk)
			}
			out[pk] = row
		}
	}
	return out, nil
}

// durSystem adapts a durable database — plain (parts == 0) or partitioned
// — and implements the mid-stream close/reopen cycle.
type durSystem struct {
	dir   string
	name  string
	parts int // 0 = unpartitioned

	// opts carries the storage tuning across reopens; compact forces a
	// full checkpoint + compaction drain on every cycle (the "blocks"
	// configuration), so recovery is exercised against a blocklist that
	// mixes fresh delta blocks with merged higher-level ones.
	opts    engine.DurableOptions
	compact bool

	d  *engine.DurableDB
	tb *engine.Table    // bound when parts == 0
	pt *partition.Table // bound when parts > 0
}

// bind resolves the table handles against the current DurableDB.
func (s *durSystem) bind() error {
	if s.parts > 0 {
		pt, err := partition.OpenDurable(s.d, s.name, partition.Options{Workers: 2})
		if err != nil {
			return err
		}
		s.pt = pt
		return nil
	}
	tb, err := s.d.Table(s.name)
	if err != nil {
		return err
	}
	s.tb = tb
	return nil
}

func (s *durSystem) insert(row []float64) error {
	_, err := s.d.Insert(s.name, row)
	return err
}

func (s *durSystem) remove(pk float64) (bool, error) { return s.d.Delete(s.name, pk) }

func (s *durSystem) update(pk float64, col int, v float64) error {
	return s.d.UpdateColumn(s.name, pk, col, v)
}

func (s *durSystem) query(col int, lo, hi float64) ([]float64, error) {
	if s.parts > 0 {
		rids, _, err := s.pt.RangeQuery(col, lo, hi)
		if err != nil {
			return nil, err
		}
		return partPKs(s.pt, rids)
	}
	rids, _, err := s.tb.RangeQuery(col, lo, hi)
	if err != nil {
		return nil, err
	}
	return ridPKs(s.tb, rids)
}

func (s *durSystem) state() (map[float64][]float64, error) {
	if s.parts > 0 {
		return partState(s.pt)
	}
	return tableState(s.tb)
}

// cycle optionally checkpoints, then closes and reopens the database —
// the crash-free durability round trip — and rebinds the handles. A
// recovery that skipped records is a divergence in itself. The "blocks"
// configuration always checkpoints and then drains the compactor, so the
// reopen replays a blocklist reshaped by merges mid-stream.
func (s *durSystem) cycle(checkpoint bool) error {
	if checkpoint || s.compact {
		if err := s.d.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if s.compact {
		for {
			merged, err := s.d.Compact()
			if err != nil {
				return fmt.Errorf("compact: %w", err)
			}
			if !merged {
				break
			}
		}
	}
	if err := s.d.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	d, err := engine.OpenDurableOptions(s.dir, hermit.PhysicalPointers, s.opts)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	if n, serr := d.RecoverySkipped(); n != 0 {
		return fmt.Errorf("recovery skipped %d records (last: %v)", n, serr)
	}
	s.d = d
	return s.bind()
}

func (s *durSystem) close() error { return s.d.Close() }
