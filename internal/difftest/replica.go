package difftest

import (
	"fmt"
	"path/filepath"
	"time"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/repl"
	"hermit/internal/server"
	"hermit/internal/trstree"
)

// replicaSystem runs the op stream against a replicated pair: a leader
// database fronted by a hermitd server (which serves the WAL-shipping
// subscription) and a tailing follower replaying into its own durable
// directory. Operations and queries hit the leader; every state audit
// first waits for the follower to catch up to the leader's LSN and then
// compares THREE states — oracle, leader, follower — row for row.
// cycle() restarts the follower mid-stream and checkpoints the leader
// with a tiny WAL-rotation threshold, so resumes cross segment
// boundaries and, when retention has dropped the resume segment, go
// through snapshot bootstrap.
type replicaSystem struct {
	name string
	fdir string

	d      *engine.DurableDB
	tb     *engine.Table
	leader *repl.Leader
	srv    *server.Server
	f      *repl.Follower
}

// replicaWait bounds the follower catch-up barrier at each audit.
const replicaWait = 60 * time.Second

// leaderReplicaOpts keeps WAL segments tiny (every checkpoint rotates)
// and retention short, so follower restarts exercise both tail-resume
// across rotations and the behind-retention snapshot-bootstrap path.
var leaderReplicaOpts = engine.DurableOptions{WALRotateBytes: 1, ReplRetainWALSegments: 2}

func buildReplica(cfg Config, s schema) (system, error) {
	ldir := filepath.Join(cfg.Dir, "leader")
	fdir := filepath.Join(cfg.Dir, "follower")
	d, err := engine.OpenDurableOptions(ldir, hermit.PhysicalPointers, leaderReplicaOpts)
	if err != nil {
		return nil, err
	}
	leader, err := repl.NewLeader(d, repl.LeaderOptions{})
	if err != nil {
		d.Close()
		return nil, err
	}
	rs := &replicaSystem{name: "t", fdir: fdir, d: d, leader: leader}
	rs.srv = server.New(d, server.Options{Leader: leader})
	if err := rs.srv.Start("127.0.0.1:0"); err != nil {
		d.Close()
		return nil, err
	}
	if _, err := d.CreateTable(rs.name, s.cols, 0); err != nil {
		rs.close()
		return nil, err
	}
	if err := d.CreateIndex(rs.name, engine.IndexDef{Kind: "btree", Col: 1}); err != nil {
		rs.close()
		return nil, err
	}
	if err := d.CreateIndex(rs.name, engine.IndexDef{
		Kind: "hermit", Col: 2, Host: 1, Params: trstree.DefaultParams(),
	}); err != nil {
		rs.close()
		return nil, err
	}
	tb, err := d.Table(rs.name)
	if err != nil {
		rs.close()
		return nil, err
	}
	rs.tb = tb
	if err := rs.startFollower(); err != nil {
		rs.close()
		return nil, err
	}
	return rs, nil
}

// startFollower opens (or reopens) the tailing follower against the
// leader's server endpoint.
func (s *replicaSystem) startFollower() error {
	f, err := repl.OpenFollower(repl.FollowerOptions{
		Dir: s.fdir, ID: "replica-1", LeaderAddr: s.srv.Addr().String(),
		Scheme:         hermit.PhysicalPointers,
		ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	f.Start()
	s.f = f
	return nil
}

func (s *replicaSystem) insert(row []float64) error {
	_, err := s.d.Insert(s.name, row)
	return err
}

func (s *replicaSystem) remove(pk float64) (bool, error) { return s.d.Delete(s.name, pk) }

func (s *replicaSystem) update(pk float64, col int, v float64) error {
	return s.d.UpdateColumn(s.name, pk, col, v)
}

func (s *replicaSystem) query(col int, lo, hi float64) ([]float64, error) {
	rids, _, err := s.tb.RangeQuery(col, lo, hi)
	if err != nil {
		return nil, err
	}
	return ridPKs(s.tb, rids)
}

// state is the three-way audit: wait for the follower to reach the
// leader's LSN, then require the follower's live rows to equal the
// leader's exactly before handing the leader state to the oracle
// comparison.
func (s *replicaSystem) state() (map[float64][]float64, error) {
	if err := s.f.WaitFor(s.d.LastLSN(), replicaWait); err != nil {
		return nil, err
	}
	lead, err := tableState(s.tb)
	if err != nil {
		return nil, err
	}
	ftb, err := s.f.DB().Table(s.name)
	if err != nil {
		return nil, fmt.Errorf("follower: %w", err)
	}
	fol, err := tableState(ftb)
	if err != nil {
		return nil, err
	}
	if err := sameState(lead, fol); err != nil {
		return nil, fmt.Errorf("follower diverged from leader: %w", err)
	}
	return lead, nil
}

// sameState compares two live-row states exactly.
func sameState(want, got map[float64][]float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d live rows, want %d", len(got), len(want))
	}
	for pk, wrow := range want {
		grow, ok := got[pk]
		if !ok {
			return fmt.Errorf("pk %v missing", pk)
		}
		if len(grow) != len(wrow) {
			return fmt.Errorf("pk %v width %d, want %d", pk, len(grow), len(wrow))
		}
		for c := range wrow {
			if grow[c] != wrow[c] {
				return fmt.Errorf("pk %v col %d = %v, want %v", pk, c, grow[c], wrow[c])
			}
		}
	}
	return nil
}

// cycle restarts the follower and, on checkpoint cycles, checkpoints the
// leader — which, at WALRotateBytes 1, always rotates the segment the
// follower must resume across. With retention 2 a long-enough gap drops
// the resume segment entirely and the reopened follower bootstraps from
// a snapshot instead; both paths must land in the same audited state.
func (s *replicaSystem) cycle(checkpoint bool) error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("follower close: %w", err)
	}
	if checkpoint {
		if err := s.d.Checkpoint(); err != nil {
			return fmt.Errorf("leader checkpoint: %w", err)
		}
	}
	return s.startFollower()
}

func (s *replicaSystem) close() error {
	var first error
	if s.f != nil {
		if err := s.f.Close(); first == nil {
			first = err
		}
	}
	if s.srv != nil {
		if err := s.srv.Close(); first == nil {
			first = err
		}
	}
	if err := s.d.Close(); first == nil {
		first = err
	}
	return first
}
