package block

import (
	"fmt"
	"hash/crc32"
)

// The blocklist manifest: the ordered set of blocks per physical table
// that, replayed oldest-to-newest, reconstructs the rows live at the
// last flush cut. The durable layer writes one blocklist file per
// checkpoint/compaction epoch and points the database manifest at it;
// the blocklist file itself is immutable once written.

// List is one physical table's ordered blocks, oldest first. Later
// blocks win per key during replay.
type List struct {
	// Table is the physical table name (partition tables appear as their
	// per-partition physical names).
	Table string
	// Blocks is the replay order, oldest first.
	Blocks []Desc
}

// maxBlocklistTables/maxNameLen bound decoder allocations; both are far
// above anything the engine writes.
const (
	maxBlocklistTables = 1 << 20
	maxNameLen         = 1 << 10
)

// EncodeBlocklist serialises the per-table blocklists. Layout, all
// little-endian:
//
//	magic "HBLL" + version
//	u32 tableCount
//	tableCount x ( u16 nameLen | name |
//	               u32 blockCount |
//	               blockCount x ( u64 id | u32 level | u64 count |
//	                              u64 bytes | f64 minKey | f64 maxKey ) )
//	u32 crc32 over everything after the magic
func EncodeBlocklist(lists []List) ([]byte, error) {
	out := append([]byte(nil), blocklistMagic...)
	out = appendU32(out, uint32(len(lists)))
	for _, l := range lists {
		if len(l.Table) == 0 || len(l.Table) > maxNameLen {
			return nil, fmt.Errorf("block: table name length %d out of range", len(l.Table))
		}
		out = append(out, byte(len(l.Table)), byte(len(l.Table)>>8))
		out = append(out, l.Table...)
		out = appendU32(out, uint32(len(l.Blocks)))
		for _, d := range l.Blocks {
			out = appendU64(out, d.ID)
			out = appendU32(out, d.Level)
			out = appendU64(out, d.Count)
			out = appendU64(out, uint64(d.Bytes))
			out = appendF64(out, d.MinKey)
			out = appendF64(out, d.MaxKey)
		}
	}
	return appendU32(out, crc32.ChecksumIEEE(out[len(blocklistMagic):])), nil
}

// DecodeBlocklist parses a blocklist manifest image. Wrong-magic input
// is ErrBadFormat; anything structurally invalid under a valid magic is
// ErrCorrupt. The decoder validates every count against the bytes
// remaining before allocating and never reads past the buffer.
func DecodeBlocklist(raw []byte) ([]List, error) {
	c := &cursor{buf: raw}
	c.checkMagic(blocklistMagic)
	if c.err != nil {
		return nil, c.err
	}
	c.checkCRC(len(blocklistMagic))
	nTables := int(c.u32())
	if c.err != nil {
		return nil, c.err
	}
	// Each table needs at least 6 bytes (nameLen + blockCount) plus a
	// non-empty name.
	if nTables > maxBlocklistTables || nTables > c.remaining()/7 {
		return nil, ErrCorrupt
	}
	lists := make([]List, 0, nTables)
	for i := 0; i < nTables; i++ {
		nameLen := int(c.u16())
		if c.err == nil && (nameLen == 0 || nameLen > maxNameLen) {
			c.fail()
		}
		name := c.take(nameLen)
		nBlocks := int(c.u32())
		if c.err != nil {
			return nil, c.err
		}
		// Each block descriptor is exactly 44 bytes.
		if nBlocks > c.remaining()/44 {
			return nil, ErrCorrupt
		}
		l := List{Table: string(name), Blocks: make([]Desc, 0, nBlocks)}
		for j := 0; j < nBlocks; j++ {
			d := Desc{
				ID:    c.u64(),
				Level: c.u32(),
				Count: c.u64(),
			}
			d.Bytes = int64(c.u64())
			d.MinKey = c.f64()
			d.MaxKey = c.f64()
			if c.err != nil {
				return nil, c.err
			}
			if d.Bytes < 0 {
				return nil, ErrCorrupt
			}
			l.Blocks = append(l.Blocks, d)
		}
		lists = append(lists, l)
	}
	if c.remaining() != 0 {
		return nil, ErrCorrupt
	}
	return lists, nil
}
