package block

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func mkEntries(n, width int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, 0, n)
	seen := map[uint64]bool{}
	for len(entries) < n {
		pk := float64(rng.Intn(n * 4))
		if seen[KeyBits(pk)] {
			continue
		}
		seen[KeyBits(pk)] = true
		e := Entry{PK: pk}
		if rng.Intn(4) == 0 {
			e.Tombstone = true
		} else {
			e.Row = make([]float64, width)
			for j := range e.Row {
				e.Row[j] = rng.NormFloat64()
			}
			e.Row[0] = pk
		}
		entries = append(entries, e)
	}
	SortEntries(entries)
	return entries
}

func TestBlockRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500} {
		entries := mkEntries(n, 3, int64(n)+1)
		raw, err := Encode(3, entries)
		if err != nil {
			t.Fatalf("Encode(n=%d): %v", n, err)
		}
		got, width, err := Decode(raw)
		if err != nil {
			t.Fatalf("Decode(n=%d): %v", n, err)
		}
		if width != 3 || len(got) != len(entries) {
			t.Fatalf("n=%d: got width %d, %d entries", n, width, len(got))
		}
		for i := range got {
			if got[i].PK != entries[i].PK || got[i].Tombstone != entries[i].Tombstone {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
			}
			if !got[i].Tombstone {
				for j := range got[i].Row {
					if got[i].Row[j] != entries[i].Row[j] {
						t.Fatalf("entry %d col %d mismatch", i, j)
					}
				}
			}
		}
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := Encode(0, nil); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := Encode(2, []Entry{{PK: 1, Row: []float64{1}}}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	if _, err := Encode(1, []Entry{{PK: 2, Row: []float64{2}}, {PK: 1, Row: []float64{1}}}); err == nil {
		t.Fatal("unsorted entries accepted")
	}
	if _, err := Encode(1, []Entry{{PK: 1, Row: []float64{1}}, {PK: 1, Tombstone: true}}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	raw, err := Encode(2, mkEntries(50, 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(raw[:4]); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("short magic: got %v", err)
	}
	wrong := append([]byte(nil), raw...)
	wrong[0] = 'X'
	if _, _, err := Decode(wrong); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("wrong magic: got %v", err)
	}
	// Flip one byte anywhere after the magic: crc must catch it.
	for _, off := range []int{8, 20, len(raw) / 2, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v", off, err)
		}
	}
}

func TestDecodeTruncationSweep(t *testing.T) {
	raw, err := Encode(2, mkEntries(40, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		if _, _, err := Decode(raw[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(raw))
		}
	}
}

func TestWriteReadHandle(t *testing.T) {
	dir := t.TempDir()
	entries := mkEntries(300, 4, 11)
	path := filepath.Join(dir, "b.blk")
	desc, err := Write(path, 4, 2, entries)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Level != 2 || desc.Count != uint64(len(entries)) {
		t.Fatalf("bad desc %+v", desc)
	}
	if desc.MinKey != entries[0].PK || desc.MaxKey != entries[len(entries)-1].PK {
		t.Fatalf("fence %v..%v vs %v..%v", desc.MinKey, desc.MaxKey, entries[0].PK, entries[len(entries)-1].PK)
	}
	got, width, err := ReadAll(path)
	if err != nil || width != 4 || len(got) != len(entries) {
		t.Fatalf("ReadAll: %v width=%d n=%d", err, width, len(got))
	}

	h := NewHandle(path, desc)
	for _, e := range entries {
		if !h.MaybeContains(e.PK) {
			t.Fatalf("false negative for pk %v", e.PK)
		}
		got, found, err := h.Get(e.PK)
		if err != nil || !found {
			t.Fatalf("Get(%v): %v found=%v", e.PK, err, found)
		}
		if got.Tombstone != e.Tombstone {
			t.Fatalf("Get(%v) tombstone mismatch", e.PK)
		}
	}
	// Fenced-out keys are excluded without I/O.
	out := NewHandle(path, desc)
	if out.MaybeContains(desc.MaxKey + 1) {
		t.Fatal("fence did not exclude key past max")
	}
	if out.entries != nil {
		t.Fatal("fence probe loaded entries")
	}
	if _, found, err := h.Get(desc.MaxKey + 1); err != nil || found {
		t.Fatalf("Get past fence: %v found=%v", err, found)
	}
}

func TestBloomSkipRate(t *testing.T) {
	entries := mkEntries(1000, 1, 3)
	present := map[uint64]bool{}
	for _, e := range entries {
		present[KeyBits(e.PK)] = true
	}
	bl := newBloom(len(entries))
	for _, e := range entries {
		bl.add(e.PK)
	}
	falsePos, probes := 0, 0
	for pk := float64(100000); pk < 110000; pk++ {
		if present[KeyBits(pk)] {
			continue
		}
		probes++
		if bl.maybeContains(pk) {
			falsePos++
		}
	}
	if rate := float64(falsePos) / float64(probes); rate > 0.05 {
		t.Fatalf("bloom false-positive rate %.3f > 5%%", rate)
	}
}

func TestKeyOrderTotal(t *testing.T) {
	keys := []float64{math.Inf(-1), -1e300, -2, -1, -0.5, 0, 0.5, 1, 2, 1e300, math.Inf(1)}
	for i := 1; i < len(keys); i++ {
		if keyOrder(keys[i-1]) >= keyOrder(keys[i]) {
			t.Fatalf("keyOrder not increasing at %v -> %v", keys[i-1], keys[i])
		}
	}
	if keyOrder(math.Copysign(0, -1)) != keyOrder(0) {
		t.Fatal("-0 and +0 should share a key")
	}
	if keyOrder(math.NaN()) <= keyOrder(math.Inf(1)) {
		t.Fatal("NaN should sort above +Inf")
	}
}

func TestBlocklistRoundTrip(t *testing.T) {
	lists := []List{
		{Table: "users", Blocks: []Desc{
			{ID: 1, Level: 0, Count: 10, Bytes: 512, MinKey: 0, MaxKey: 99},
			{ID: 7, Level: 1, Count: 40, Bytes: 2048, MinKey: -5, MaxKey: 120},
		}},
		{Table: "orders__p03", Blocks: nil},
	}
	raw, err := EncodeBlocklist(lists)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlocklist(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Table != "users" || got[1].Table != "orders__p03" {
		t.Fatalf("bad tables: %+v", got)
	}
	if len(got[0].Blocks) != 2 || got[0].Blocks[1] != lists[0].Blocks[1] {
		t.Fatalf("bad blocks: %+v", got[0].Blocks)
	}
	if len(got[1].Blocks) != 0 {
		t.Fatalf("expected empty list, got %+v", got[1].Blocks)
	}
}

func TestBlocklistTruncationSweep(t *testing.T) {
	raw, err := EncodeBlocklist([]List{{Table: "t", Blocks: []Desc{{ID: 3, Count: 5, Bytes: 77, MinKey: 1, MaxKey: 9}}}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeBlocklist(raw[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(raw))
		}
	}
	// Block-file magic on a blocklist decoder (and vice versa) is a
	// format error, not corruption.
	blk, _ := Encode(1, nil)
	if _, err := DecodeBlocklist(blk); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("block magic fed to blocklist decoder: %v", err)
	}
	if _, _, err := Decode(raw); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("blocklist magic fed to block decoder: %v", err)
	}
}

func TestHandleSurfacesIOErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gone.blk")
	desc, err := Write(path, 1, 0, []Entry{{PK: 1, Row: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	h := NewHandle(path, desc)
	// A handle that cannot load must not silently skip: MaybeContains
	// stays true and Get reports the error.
	if !h.MaybeContains(1) {
		t.Fatal("unloadable handle excluded a covered key")
	}
	if _, _, err := h.Get(1); err == nil {
		t.Fatal("Get on missing file succeeded")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	entries := mkEntries(100, 2, 8)
	a, _ := Encode(2, entries)
	b, _ := Encode(2, entries)
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}
