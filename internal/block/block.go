// Package block is the tiered block-storage layer under the durable
// engine: immutable, sorted, checksummed block files plus the versioned
// blocklist manifest that orders them.
//
// A block is one flush (or compaction merge) of row changes: upserts
// carrying a full row and tombstones marking a deleted key, sorted by
// primary key. Each block records a key-range fence (min/max key) and a
// bloom filter over its keys, so a point read can skip a cold block from
// its descriptor and file prefix alone. Replaying a table's blocklist
// oldest-to-newest — later entries winning per key — reconstructs exactly
// the rows live at the flush cut; the WAL tail past the manifest's cut
// finishes recovery.
//
// Layering: this package knows nothing about the engine, the WAL or
// MVCC timestamps — it only turns sorted entry sets into durable files
// and back. internal/engine's durable layer decides what goes into a
// block and when blocks merge.
//
// Both decoders (block files and the blocklist manifest) are sticky-error
// cursor parsers in the style of internal/server/proto: they never read
// past the buffer, validate every count against the bytes remaining
// before allocating, and reject trailing garbage, so arbitrary or
// truncated input can never panic or over-allocate (see fuzz_test.go).
package block

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"sync"
)

// Decoding errors.
var (
	// ErrBadFormat is returned for bytes that are not a block or blocklist
	// of this format version (wrong magic, or a later version's).
	ErrBadFormat = errors.New("block: not a block format this version reads")
	// ErrCorrupt is returned for structurally invalid or checksum-failing
	// contents under a valid header.
	ErrCorrupt = errors.New("block: corrupt contents")
)

// blockMagic heads every block file: "HBLK" plus a big-endian format
// version. blocklistMagic heads the blocklist manifest the same way.
var (
	blockMagic     = []byte{'H', 'B', 'L', 'K', 0, 0, 0, 1}
	blocklistMagic = []byte{'H', 'B', 'L', 'L', 0, 0, 0, 1}
)

// maxWidth bounds the row width a decoder accepts — far above any real
// schema, far below anything that could make count*width overflow.
const maxWidth = 1 << 16

// Entry is one key's change in a block: a full-row upsert, or a tombstone
// recording that the key was deleted (Row nil).
type Entry struct {
	// PK is the primary key the entry applies to.
	PK float64
	// Row is the full row for an upsert; nil for a tombstone.
	Row []float64
	// Tombstone marks a deletion.
	Tombstone bool
}

// Desc describes one block in a blocklist: identity, compaction level,
// shape and key-range fence. Descs live in the blocklist manifest so a
// reader can skip a block without opening its file.
type Desc struct {
	// ID is the block's file identity, unique per database directory.
	ID uint64
	// Level is the compaction tier: 0 for a fresh flush, +1 per merge.
	Level uint32
	// Count is the entry count (upserts + tombstones).
	Count uint64
	// Bytes is the encoded file size.
	Bytes int64
	// MinKey/MaxKey fence the keys present (by keyOrder; both inclusive).
	MinKey, MaxKey float64
}

// covers reports whether pk falls inside the descriptor's key fence.
func (d Desc) covers(pk float64) bool {
	k := keyOrder(pk)
	return k >= keyOrder(d.MinKey) && k <= keyOrder(d.MaxKey)
}

// SortEntries sorts entries by primary key under the package's total key
// order (the order Write requires).
func SortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		return keyOrder(entries[i].PK) < keyOrder(entries[j].PK)
	})
}

// Encode serialises a block of entries (sorted by key; width is the row
// width every upsert must have). The layout, all little-endian:
//
//	magic "HBLK" + version
//	u32 width | u64 count | f64 minKey | f64 maxKey
//	u32 bloomLen | bloom bytes
//	count x ( f64 pk | u8 tombstone | width x f64 row if not tombstone )
//	u32 crc32 over everything after the magic
func Encode(width int, entries []Entry) ([]byte, error) {
	if width <= 0 || width > maxWidth {
		return nil, fmt.Errorf("block: width %d out of range", width)
	}
	bl := newBloom(len(entries))
	var minKey, maxKey float64
	for i, e := range entries {
		if !e.Tombstone && len(e.Row) != width {
			return nil, fmt.Errorf("block: entry %d row width %d, want %d", i, len(e.Row), width)
		}
		if i > 0 && keyOrder(entries[i-1].PK) >= keyOrder(e.PK) {
			return nil, fmt.Errorf("block: entries unsorted or duplicated at %d", i)
		}
		bl.add(e.PK)
	}
	if len(entries) > 0 {
		minKey, maxKey = entries[0].PK, entries[len(entries)-1].PK
	}
	out := append([]byte(nil), blockMagic...)
	out = appendU32(out, uint32(width))
	out = appendU64(out, uint64(len(entries)))
	out = appendF64(out, minKey)
	out = appendF64(out, maxKey)
	out = appendU32(out, uint32(len(bl.bits)))
	out = append(out, bl.bits...)
	for _, e := range entries {
		out = appendF64(out, e.PK)
		if e.Tombstone {
			out = append(out, 1)
			continue
		}
		out = append(out, 0)
		for _, v := range e.Row {
			out = appendF64(out, v)
		}
	}
	return appendU32(out, crc32.ChecksumIEEE(out[len(blockMagic):])), nil
}

// cursor is a sticky-error bounds-checked reader: after the first failure
// every accessor returns zero values and the error survives to done().
type cursor struct {
	buf []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = ErrCorrupt
	}
}

// take returns the next n bytes, or nil after marking the cursor failed
// when fewer remain. It never reads past the buffer.
func (c *cursor) take(n int) []byte {
	if c.err != nil || n < 0 || n > len(c.buf)-c.off {
		c.fail()
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (c *cursor) u64() uint64 {
	lo := c.u32()
	hi := c.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// remaining reports the bytes not yet consumed.
func (c *cursor) remaining() int { return len(c.buf) - c.off }

// checkMagic consumes and verifies a file magic; a mismatch is
// ErrBadFormat (a different format, not corruption of this one).
func (c *cursor) checkMagic(magic []byte) {
	b := c.take(len(magic))
	if c.err != nil {
		c.err = ErrBadFormat
		return
	}
	for i := range magic {
		if b[i] != magic[i] {
			c.err = ErrBadFormat
			return
		}
	}
}

// checkCRC verifies that the last 4 bytes of the buffer checksum
// everything between the magic and them, and truncates the cursor's view
// so body parsing cannot run into the checksum.
func (c *cursor) checkCRC(magicLen int) {
	if c.err != nil {
		return
	}
	if len(c.buf) < magicLen+4 {
		c.fail()
		return
	}
	body := c.buf[magicLen : len(c.buf)-4]
	stored := uint32(c.buf[len(c.buf)-4]) | uint32(c.buf[len(c.buf)-3])<<8 |
		uint32(c.buf[len(c.buf)-2])<<16 | uint32(c.buf[len(c.buf)-1])<<24
	if crc32.ChecksumIEEE(body) != stored {
		c.fail()
		return
	}
	c.buf = c.buf[:len(c.buf)-4]
}

// header is a decoded block-file prefix: everything needed to answer
// MaybeContains without touching the entries.
type header struct {
	width  int
	count  uint64
	minKey float64
	maxKey float64
	filter *bloom
	// body is the entry region (after the bloom, before the crc).
	body []byte
}

// decodeHeader parses the fixed header + bloom from a full block image.
func decodeHeader(raw []byte) (header, error) {
	c := &cursor{buf: raw}
	c.checkMagic(blockMagic)
	if c.err != nil {
		return header{}, c.err
	}
	c.checkCRC(len(blockMagic))
	var h header
	h.width = int(c.u32())
	h.count = c.u64()
	h.minKey = c.f64()
	h.maxKey = c.f64()
	bloomLen := int(c.u32())
	if c.err == nil && (h.width <= 0 || h.width > maxWidth) {
		c.fail()
	}
	if c.err == nil && bloomLen > c.remaining() {
		c.fail()
	}
	h.filter = bloomFromBytes(c.take(bloomLen))
	if c.err != nil {
		return header{}, c.err
	}
	// Every entry is at least 9 bytes (pk + flag): reject a count the
	// remaining bytes cannot possibly hold before any allocation.
	if h.count > uint64(c.remaining())/9 {
		return header{}, ErrCorrupt
	}
	h.body = c.buf[c.off:]
	return h, nil
}

// Decode parses a full block image back into its entries.
func Decode(raw []byte) ([]Entry, int, error) {
	h, err := decodeHeader(raw)
	if err != nil {
		return nil, 0, err
	}
	c := &cursor{buf: h.body}
	entries := make([]Entry, 0, h.count)
	var prev uint64
	for i := uint64(0); i < h.count; i++ {
		e := Entry{PK: c.f64()}
		switch c.u8() {
		case 1:
			e.Tombstone = true
		case 0:
			if c.err == nil && c.remaining() < h.width*8 {
				c.fail()
			}
			if c.err == nil {
				e.Row = make([]float64, h.width)
				for j := 0; j < h.width; j++ {
					e.Row[j] = c.f64()
				}
			}
		default:
			c.fail()
		}
		if c.err != nil {
			return nil, 0, c.err
		}
		k := keyOrder(e.PK)
		if i > 0 && k <= prev {
			return nil, 0, ErrCorrupt
		}
		prev = k
		entries = append(entries, e)
	}
	if c.remaining() != 0 {
		return nil, 0, ErrCorrupt
	}
	return entries, h.width, nil
}

// Write encodes entries (sorted by key) and writes them as an immutable
// block file at path — temp file, fsync, atomic rename — returning the
// block's descriptor (ID zero; the caller owns identity and level).
func Write(path string, width int, level uint32, entries []Entry) (Desc, error) {
	raw, err := Encode(width, entries)
	if err != nil {
		return Desc{}, err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return Desc{}, err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return Desc{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return Desc{}, err
	}
	if err := f.Close(); err != nil {
		return Desc{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return Desc{}, err
	}
	d := Desc{Level: level, Count: uint64(len(entries)), Bytes: int64(len(raw))}
	if len(entries) > 0 {
		d.MinKey, d.MaxKey = entries[0].PK, entries[len(entries)-1].PK
	}
	return d, nil
}

// ReadAll loads and decodes the block file at path.
func ReadAll(path string) ([]Entry, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	entries, width, err := Decode(raw)
	if err != nil {
		return nil, 0, fmt.Errorf("block: %s: %w", path, err)
	}
	return entries, width, nil
}

// Handle is a lazily-loaded open block: the descriptor's fence answers
// the cheapest exclusion, the file's bloom the next, and only a surviving
// probe loads and caches the entries for binary search. Safe for
// concurrent use.
type Handle struct {
	path string
	desc Desc

	once    sync.Once
	loadErr error
	filter  *bloom
	entries []Entry
}

// NewHandle wraps the block file at path described by desc.
func NewHandle(path string, desc Desc) *Handle {
	return &Handle{path: path, desc: desc}
}

// Desc returns the handle's descriptor.
func (h *Handle) Desc() Desc { return h.desc }

// load reads the file once, caching bloom + entries.
func (h *Handle) load() error {
	h.once.Do(func() {
		raw, err := os.ReadFile(h.path)
		if err != nil {
			h.loadErr = err
			return
		}
		hd, err := decodeHeader(raw)
		if err != nil {
			h.loadErr = fmt.Errorf("block: %s: %w", h.path, err)
			return
		}
		// Copy the bloom out of the file buffer, then decode entries from
		// the same image.
		h.filter = bloomFromBytes(append([]byte(nil), hd.filter.bits...))
		entries, _, err := Decode(raw)
		if err != nil {
			h.loadErr = fmt.Errorf("block: %s: %w", h.path, err)
			return
		}
		h.entries = entries
	})
	return h.loadErr
}

// MaybeContains reports whether pk could be present: the key fence from
// the descriptor, then the bloom filter (loading the file on first use).
// An I/O or decode failure reports true — the caller's Get surfaces the
// real error rather than silently skipping a block.
func (h *Handle) MaybeContains(pk float64) bool {
	if h.desc.Count == 0 || !h.desc.covers(pk) {
		return false
	}
	if err := h.load(); err != nil {
		return true
	}
	return h.filter.maybeContains(pk)
}

// Get binary-searches the block for pk. found reports whether the block
// has an entry for the key (the entry may be a tombstone).
func (h *Handle) Get(pk float64) (e Entry, found bool, err error) {
	if err := h.load(); err != nil {
		return Entry{}, false, err
	}
	k := keyOrder(pk)
	i := sort.Search(len(h.entries), func(i int) bool {
		return keyOrder(h.entries[i].PK) >= k
	})
	if i < len(h.entries) && keyOrder(h.entries[i].PK) == k {
		return h.entries[i], true, nil
	}
	return Entry{}, false, nil
}
