package block

import (
	"encoding/binary"
	"math"
)

// The bloom filter each block carries so point reads can skip blocks that
// cannot contain a key, without loading their entries. The filter is sized
// at bloomBitsPerKey bits per entry and probed with bloomHashes
// double-hashed positions — roughly a 1% false-positive rate — and is
// serialized inside the block file right after the fixed header, so a
// reader can answer MaybeContains from the file prefix alone.

const (
	// bloomBitsPerKey sizes the filter (bits per distinct key).
	bloomBitsPerKey = 10
	// bloomHashes is the probe count per key (near-optimal for 10 bits/key).
	bloomHashes = 7
)

// bloom is a fixed-size bloom filter over primary-key bit patterns.
type bloom struct {
	bits []byte
}

// newBloom sizes a filter for n keys (never zero-length, so the modulus in
// probe positions is always valid).
func newBloom(n int) *bloom {
	nbits := n * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	return &bloom{bits: make([]byte, (nbits+7)/8)}
}

// bloomFromBytes wraps a serialized filter. A nil/empty filter behaves as
// "maybe contains everything" (no skipping), never as a false negative.
func bloomFromBytes(raw []byte) *bloom {
	return &bloom{bits: raw}
}

// KeyBits normalises a primary key to the bit pattern used for hashing,
// fences and sorting: -0 collapses onto +0 (the engine treats them as the
// same key). It is the map key for any per-primary-key bookkeeping that
// must agree with the block tier's notion of key identity — float64 map
// keys cannot be trusted for that (NaN never equals itself, so a NaN key
// could neither be found, overwritten nor deleted).
func KeyBits(pk float64) uint64 {
	if pk == 0 {
		pk = 0 // +0 and -0 are one key
	}
	return math.Float64bits(pk)
}

// keyOrder maps a key's bits onto a uint64 whose unsigned order is a total
// order over float64s (negatives before positives, NaNs at the top), so
// entries sort and binary-search consistently even for keys that ordinary
// float comparison cannot order.
func keyOrder(pk float64) uint64 {
	b := KeyBits(pk)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// splitmix64 is the avalanche mixer used to derive probe positions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// add inserts a key.
func (b *bloom) add(pk float64) {
	h1 := splitmix64(KeyBits(pk))
	h2 := splitmix64(h1) | 1
	m := uint64(len(b.bits)) * 8
	for i := uint64(0); i < bloomHashes; i++ {
		pos := (h1 + i*h2) % m
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

// maybeContains reports whether pk could be in the set. False positives
// are possible; false negatives are not.
func (b *bloom) maybeContains(pk float64) bool {
	if b == nil || len(b.bits) == 0 {
		return true
	}
	h1 := splitmix64(KeyBits(pk))
	h2 := splitmix64(h1) | 1
	m := uint64(len(b.bits)) * 8
	for i := uint64(0); i < bloomHashes; i++ {
		pos := (h1 + i*h2) % m
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// appendU32/appendU64/appendF64 are the little-endian encoding helpers the
// block and blocklist writers share.
func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}
