package block

import "testing"

// The decoder fuzzers mirror the WAL and proto fuzzers: arbitrary bytes
// must never panic, over-allocate, or decode into something that fails
// to re-encode to an equivalent image.

func FuzzDecodeBlock(f *testing.F) {
	seed, _ := Encode(2, mkEntries(20, 2, 1))
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add(blockMagic)
	f.Fuzz(func(t *testing.T, raw []byte) {
		entries, width, err := Decode(raw)
		if err != nil {
			return
		}
		// A clean decode must round-trip byte-identically.
		out, err := Encode(width, entries)
		if err != nil {
			t.Fatalf("re-encode of decoded block failed: %v", err)
		}
		if string(out) != string(raw) {
			t.Fatalf("decode/encode not identity: %d vs %d bytes", len(out), len(raw))
		}
	})
}

func FuzzDecodeBlocklist(f *testing.F) {
	seed, _ := EncodeBlocklist([]List{
		{Table: "users", Blocks: []Desc{{ID: 1, Count: 3, Bytes: 128, MinKey: 1, MaxKey: 5}}},
		{Table: "t2"},
	})
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte{})
	f.Add(blocklistMagic)
	f.Fuzz(func(t *testing.T, raw []byte) {
		lists, err := DecodeBlocklist(raw)
		if err != nil {
			return
		}
		out, err := EncodeBlocklist(lists)
		if err != nil {
			t.Fatalf("re-encode of decoded blocklist failed: %v", err)
		}
		if string(out) != string(raw) {
			t.Fatalf("decode/encode not identity: %d vs %d bytes", len(out), len(raw))
		}
	})
}
