package btree

import (
	"fmt"
	"sort"
)

// CompositeTree is a B+-tree over two-column composite keys (a, b), the
// index shape the paper's running example uses for (TIME, DJ) (§3). Entries
// are ordered lexicographically by (a, b, id); range scans constrain both
// key components, with the leading component driving navigation and the
// second filtered during the scan — the standard composite-index plan.
type CompositeTree struct {
	root  *cnode
	order int
	size  int
}

type cnode struct {
	leaf     bool
	a        []float64
	b        []float64
	tie      []uint64
	children []*cnode
	next     *cnode
}

// NewComposite creates an empty composite tree with the given node order.
func NewComposite(order int) *CompositeTree {
	if order < 4 {
		order = 4
	}
	return &CompositeTree{root: &cnode{leaf: true}, order: order}
}

// Len returns the number of entries.
func (t *CompositeTree) Len() int { return t.size }

func cmp3(a1, b1 float64, v1 uint64, a2, b2 float64, v2 uint64) int {
	switch {
	case a1 < a2:
		return -1
	case a1 > a2:
		return 1
	case b1 < b2:
		return -1
	case b1 > b2:
		return 1
	case v1 < v2:
		return -1
	case v1 > v2:
		return 1
	default:
		return 0
	}
}

func (n *cnode) search(a, b float64, v uint64) int {
	return sort.Search(len(n.a), func(i int) bool {
		return cmp3(n.a[i], n.b[i], n.tie[i], a, b, v) >= 0
	})
}

func (n *cnode) childIndex(a, b float64, v uint64) int {
	return sort.Search(len(n.a), func(i int) bool {
		return cmp3(n.a[i], n.b[i], n.tie[i], a, b, v) > 0
	})
}

// Insert adds the entry ((a, b), id).
func (t *CompositeTree) Insert(a, b float64, id uint64) {
	sa, sb, sTie, right := t.insert(t.root, a, b, id)
	if right != nil {
		t.root = &cnode{
			a:        []float64{sa},
			b:        []float64{sb},
			tie:      []uint64{sTie},
			children: []*cnode{t.root, right},
		}
	}
	t.size++
}

func (t *CompositeTree) insert(n *cnode, a, b float64, id uint64) (float64, float64, uint64, *cnode) {
	if n.leaf {
		i := n.search(a, b, id)
		n.a = append(n.a, 0)
		n.b = append(n.b, 0)
		n.tie = append(n.tie, 0)
		copy(n.a[i+1:], n.a[i:])
		copy(n.b[i+1:], n.b[i:])
		copy(n.tie[i+1:], n.tie[i:])
		n.a[i], n.b[i], n.tie[i] = a, b, id
		if len(n.a) > t.order {
			return t.splitLeaf(n)
		}
		return 0, 0, 0, nil
	}
	ci := n.childIndex(a, b, id)
	sa, sb, sTie, right := t.insert(n.children[ci], a, b, id)
	if right == nil {
		return 0, 0, 0, nil
	}
	n.a = append(n.a, 0)
	n.b = append(n.b, 0)
	n.tie = append(n.tie, 0)
	copy(n.a[ci+1:], n.a[ci:])
	copy(n.b[ci+1:], n.b[ci:])
	copy(n.tie[ci+1:], n.tie[ci:])
	n.a[ci], n.b[ci], n.tie[ci] = sa, sb, sTie
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.a) > t.order {
		return t.splitInternal(n)
	}
	return 0, 0, 0, nil
}

func (t *CompositeTree) splitLeaf(n *cnode) (float64, float64, uint64, *cnode) {
	mid := len(n.a) / 2
	right := &cnode{
		leaf: true,
		a:    append([]float64(nil), n.a[mid:]...),
		b:    append([]float64(nil), n.b[mid:]...),
		tie:  append([]uint64(nil), n.tie[mid:]...),
		next: n.next,
	}
	n.a = n.a[:mid:mid]
	n.b = n.b[:mid:mid]
	n.tie = n.tie[:mid:mid]
	n.next = right
	return right.a[0], right.b[0], right.tie[0], right
}

func (t *CompositeTree) splitInternal(n *cnode) (float64, float64, uint64, *cnode) {
	mid := len(n.a) / 2
	sa, sb, sTie := n.a[mid], n.b[mid], n.tie[mid]
	right := &cnode{
		a:        append([]float64(nil), n.a[mid+1:]...),
		b:        append([]float64(nil), n.b[mid+1:]...),
		tie:      append([]uint64(nil), n.tie[mid+1:]...),
		children: append([]*cnode(nil), n.children[mid+1:]...),
	}
	n.a = n.a[:mid:mid]
	n.b = n.b[:mid:mid]
	n.tie = n.tie[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sa, sb, sTie, right
}

// Delete removes the entry ((a, b), id), reporting whether it was found.
// Like Tree, underfull nodes are not rebalanced.
func (t *CompositeTree) Delete(a, b float64, id uint64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(a, b, id)]
	}
	i := n.search(a, b, id)
	if i >= len(n.a) || cmp3(n.a[i], n.b[i], n.tie[i], a, b, id) != 0 {
		return false
	}
	n.a = append(n.a[:i], n.a[i+1:]...)
	n.b = append(n.b[:i], n.b[i+1:]...)
	n.tie = append(n.tie[:i], n.tie[i+1:]...)
	t.size--
	return true
}

// Scan calls fn for every entry with aLo <= a <= aHi and bLo <= b <= bHi in
// ascending (a, b, id) order. Navigation seeks the leading component; the
// second component is filtered during the leaf walk.
func (t *CompositeTree) Scan(aLo, aHi, bLo, bHi float64, fn func(a, b float64, id uint64) bool) {
	if aLo > aHi || bLo > bHi {
		return
	}
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(aLo, bLo, 0)]
	}
	i := n.search(aLo, bLo, 0)
	for n != nil {
		for ; i < len(n.a); i++ {
			if n.a[i] > aHi {
				return
			}
			if n.b[i] < bLo || n.b[i] > bHi {
				continue
			}
			if !fn(n.a[i], n.b[i], n.tie[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// ScanPrefix calls fn for every entry with aLo <= a <= aHi, regardless of b.
func (t *CompositeTree) ScanPrefix(aLo, aHi float64, fn func(a, b float64, id uint64) bool) {
	t.Scan(aLo, aHi, negInf, posInf, fn)
}

const (
	negInf = -1.797693134862315708145274237317043567981e308
	posInf = 1.797693134862315708145274237317043567981e308
)

// SizeBytes estimates the heap footprint of the composite tree.
func (t *CompositeTree) SizeBytes() uint64 {
	return csize(t.root)
}

func csize(n *cnode) uint64 {
	s := uint64(104)
	s += uint64(cap(n.a))*8 + uint64(cap(n.b))*8 + uint64(cap(n.tie))*8
	s += uint64(cap(n.children)) * 8
	for _, c := range n.children {
		s += csize(c)
	}
	return s
}

// BulkLoad replaces the contents with entries sorted by (a, b, id).
func (t *CompositeTree) BulkLoad(as, bs []float64, ids []uint64) error {
	if len(as) != len(bs) || len(as) != len(ids) {
		return fmt.Errorf("btree: composite BulkLoad length mismatch")
	}
	for i := 1; i < len(as); i++ {
		if cmp3(as[i-1], bs[i-1], ids[i-1], as[i], bs[i], ids[i]) > 0 {
			return fmt.Errorf("btree: composite BulkLoad input not sorted at %d", i)
		}
	}
	t.root = &cnode{leaf: true}
	t.size = len(as)
	if len(as) == 0 {
		return nil
	}
	per := t.order * 85 / 100
	if per < 1 {
		per = 1
	}
	var leaves []*cnode
	for off := 0; off < len(as); off += per {
		end := off + per
		if end > len(as) {
			end = len(as)
		}
		leaves = append(leaves, &cnode{
			leaf: true,
			a:    append([]float64(nil), as[off:end]...),
			b:    append([]float64(nil), bs[off:end]...),
			tie:  append([]uint64(nil), ids[off:end]...),
		})
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	level := leaves
	for len(level) > 1 {
		var parents []*cnode
		for off := 0; off < len(level); off += per + 1 {
			end := off + per + 1
			if end > len(level) {
				end = len(level)
			}
			p := &cnode{children: append([]*cnode(nil), level[off:end]...)}
			for _, c := range p.children[1:] {
				ma, mb, mt := cminEntry(c)
				p.a = append(p.a, ma)
				p.b = append(p.b, mb)
				p.tie = append(p.tie, mt)
			}
			parents = append(parents, p)
		}
		level = parents
	}
	t.root = level[0]
	return nil
}

func cminEntry(n *cnode) (float64, float64, uint64) {
	for !n.leaf {
		n = n.children[0]
	}
	return n.a[0], n.b[0], n.tie[0]
}
