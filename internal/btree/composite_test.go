package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompositeInsertScan(t *testing.T) {
	tr := NewComposite(8)
	// Grid of (a, b) pairs.
	id := uint64(0)
	for a := 0; a < 50; a++ {
		for b := 0; b < 20; b++ {
			tr.Insert(float64(a), float64(b), id)
			id++
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len=%d", tr.Len())
	}
	count := 0
	tr.Scan(10, 19, 5, 9, func(a, b float64, _ uint64) bool {
		if a < 10 || a > 19 || b < 5 || b > 9 {
			t.Fatalf("entry (%v,%v) outside predicate", a, b)
		}
		count++
		return true
	})
	if count != 10*5 {
		t.Fatalf("count=%d want 50", count)
	}
	// Prefix scan ignores b.
	count = 0
	tr.ScanPrefix(10, 19, func(a, b float64, _ uint64) bool { count++; return true })
	if count != 10*20 {
		t.Fatalf("prefix count=%d", count)
	}
	// Inverted predicates.
	tr.Scan(5, 1, 0, 100, func(float64, float64, uint64) bool {
		t.Fatal("inverted a-range called fn")
		return false
	})
	tr.Scan(0, 100, 5, 1, func(float64, float64, uint64) bool {
		t.Fatal("inverted b-range called fn")
		return false
	})
}

func TestCompositeOrdering(t *testing.T) {
	tr := NewComposite(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		tr.Insert(math.Floor(rng.Float64()*20), math.Floor(rng.Float64()*20), uint64(i))
	}
	prevA, prevB := math.Inf(-1), math.Inf(-1)
	var prevID uint64
	first := true
	tr.Scan(math.Inf(-1), math.Inf(1), math.Inf(-1), math.Inf(1), func(a, b float64, id uint64) bool {
		if !first {
			if cmp3(prevA, prevB, prevID, a, b, id) > 0 {
				t.Fatalf("out of order: (%v,%v,%d) after (%v,%v,%d)", a, b, id, prevA, prevB, prevID)
			}
		}
		first = false
		prevA, prevB, prevID = a, b, id
		return true
	})
}

func TestCompositeDelete(t *testing.T) {
	tr := NewComposite(8)
	for i := 0; i < 500; i++ {
		tr.Insert(float64(i%10), float64(i%7), uint64(i))
	}
	// Entry 31 has key (31%10, 31%7) = (1, 3).
	if !tr.Delete(1, 3, 31) {
		t.Fatal("delete of existing entry failed")
	}
	if tr.Delete(999, 999, 999) {
		t.Fatal("deleted missing entry")
	}
	if tr.Len() != 499 {
		t.Fatalf("len=%d", tr.Len())
	}
}

func TestCompositeDeleteExact(t *testing.T) {
	tr := NewComposite(8)
	tr.Insert(1, 2, 7)
	tr.Insert(1, 2, 8)
	if !tr.Delete(1, 2, 7) {
		t.Fatal("delete failed")
	}
	if tr.Delete(1, 2, 7) {
		t.Fatal("double delete")
	}
	n := 0
	tr.Scan(1, 1, 2, 2, func(_, _ float64, id uint64) bool {
		if id != 8 {
			t.Fatalf("wrong survivor %d", id)
		}
		n++
		return true
	})
	if n != 1 || tr.Len() != 1 {
		t.Fatalf("n=%d len=%d", n, tr.Len())
	}
}

func TestCompositeBulkLoad(t *testing.T) {
	n := 10000
	as := make([]float64, n)
	bs := make([]float64, n)
	ids := make([]uint64, n)
	for i := range as {
		as[i] = float64(i / 100)
		bs[i] = float64(i % 100)
		ids[i] = uint64(i)
	}
	tr := NewComposite(DefaultOrder)
	if err := tr.BulkLoad(as, bs, ids); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("len=%d", tr.Len())
	}
	count := 0
	tr.Scan(10, 12, 50, 59, func(a, b float64, _ uint64) bool { count++; return true })
	if count != 3*10 {
		t.Fatalf("count=%d", count)
	}
	// Mutations after bulk load.
	tr.Insert(10.5, 1, 999999)
	found := false
	tr.Scan(10.5, 10.5, 0, 2, func(_, _ float64, id uint64) bool {
		found = id == 999999
		return false
	})
	if !found {
		t.Fatal("insert after bulk load lost")
	}
	if err := tr.BulkLoad([]float64{2, 1}, []float64{0, 0}, []uint64{0, 0}); err == nil {
		t.Fatal("unsorted accepted")
	}
	if err := tr.BulkLoad([]float64{1}, []float64{}, []uint64{}); err == nil {
		t.Fatal("mismatched accepted")
	}
	empty := NewComposite(DefaultOrder)
	if err := empty.BulkLoad(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeSizeBytes(t *testing.T) {
	tr := NewComposite(DefaultOrder)
	base := tr.SizeBytes()
	for i := 0; i < 10000; i++ {
		tr.Insert(float64(i), float64(i), uint64(i))
	}
	if tr.SizeBytes() <= base {
		t.Fatal("size did not grow")
	}
}

// Property: composite scans agree with a reference filter under random
// inserts and deletes.
func TestQuickCompositeReference(t *testing.T) {
	type entry struct {
		a, b float64
		id   uint64
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewComposite(4 + rng.Intn(20))
		var ref []entry
		for op := 0; op < 3000; op++ {
			if len(ref) > 0 && rng.Float64() < 0.2 {
				i := rng.Intn(len(ref))
				if !tr.Delete(ref[i].a, ref[i].b, ref[i].id) {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			} else {
				e := entry{a: float64(rng.Intn(30)), b: float64(rng.Intn(30)), id: uint64(op)}
				tr.Insert(e.a, e.b, e.id)
				ref = append(ref, e)
			}
		}
		for trial := 0; trial < 10; trial++ {
			aLo := rng.Float64() * 30
			aHi := aLo + rng.Float64()*10
			bLo := rng.Float64() * 30
			bHi := bLo + rng.Float64()*10
			var want []entry
			for _, e := range ref {
				if e.a >= aLo && e.a <= aHi && e.b >= bLo && e.b <= bHi {
					want = append(want, e)
				}
			}
			sort.Slice(want, func(x, y int) bool {
				return cmp3(want[x].a, want[x].b, want[x].id, want[y].a, want[y].b, want[y].id) < 0
			})
			var got []entry
			tr.Scan(aLo, aHi, bLo, bHi, func(a, b float64, id uint64) bool {
				got = append(got, entry{a, b, id})
				return true
			})
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompositeScan(b *testing.B) {
	tr := NewComposite(DefaultOrder)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500000; i++ {
		tr.Insert(rng.Float64()*1000, rng.Float64()*1000, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64(i % 900)
		n := 0
		tr.Scan(lo, lo+10, 0, 1000, func(float64, float64, uint64) bool { n++; return true })
	}
}
