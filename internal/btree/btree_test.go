package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New(DefaultOrder)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d h=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	called := false
	tr.Scan(0, 100, func(float64, uint64) bool { called = true; return true })
	if called {
		t.Fatal("scan on empty tree called fn")
	}
}

func TestInsertLookup(t *testing.T) {
	tr := New(DefaultOrder)
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i), uint64(i*10))
	}
	if tr.Len() != 1000 {
		t.Fatalf("len=%d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		id, ok := tr.First(float64(i))
		if !ok || id != uint64(i*10) {
			t.Fatalf("key %d: id=%d ok=%v", i, id, ok)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(4) // small order to force splits through duplicate runs
	const dups = 500
	for i := 0; i < dups; i++ {
		tr.Insert(42, uint64(i))
	}
	tr.Insert(41, 9999)
	tr.Insert(43, 9998)
	var got []uint64
	tr.Lookup(42, func(id uint64) bool { got = append(got, id); return true })
	if len(got) != dups {
		t.Fatalf("lookup returned %d of %d duplicates", len(got), dups)
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("duplicate ids out of order at %d: %d", i, id)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	tr := New(DefaultOrder)
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	var keys []float64
	tr.Scan(10, 20, func(k float64, _ uint64) bool { keys = append(keys, k); return true })
	if len(keys) != 11 || keys[0] != 10 || keys[10] != 20 {
		t.Fatalf("scan [10,20]: %v", keys)
	}
	// Inverted range is empty.
	n := 0
	tr.Scan(20, 10, func(float64, uint64) bool { n++; return true })
	if n != 0 {
		t.Fatal("inverted range returned entries")
	}
	// Early termination.
	n = 0
	tr.Scan(0, 99, func(float64, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop n=%d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := New(DefaultOrder)
	for i := 0; i < 200; i++ {
		tr.Insert(float64(i%50), uint64(i))
	}
	if !tr.Delete(7, 7) {
		t.Fatal("delete existing failed")
	}
	if tr.Delete(7, 7) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete(1000, 0) {
		t.Fatal("delete missing key succeeded")
	}
	if tr.Contains(7, 7) {
		t.Fatal("deleted entry still present")
	}
	if !tr.Contains(7, 57) {
		t.Fatal("sibling duplicate entry lost")
	}
	if tr.Len() != 199 {
		t.Fatalf("len=%d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	tr := New(DefaultOrder)
	for _, k := range []float64{5, -2, 8, 3} {
		tr.Insert(k, 1)
	}
	if mn, ok := tr.Min(); !ok || mn != -2 {
		t.Fatalf("min=%v", mn)
	}
	if mx, ok := tr.Max(); !ok || mx != 8 {
		t.Fatalf("max=%v", mx)
	}
}

func TestBulkLoad(t *testing.T) {
	n := 10000
	keys := make([]float64, n)
	ids := make([]uint64, n)
	for i := range keys {
		keys[i] = float64(i)
		ids[i] = uint64(i)
	}
	tr := New(DefaultOrder)
	if err := tr.BulkLoad(keys, ids); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("len=%d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	prev := math.Inf(-1)
	tr.Scan(math.Inf(-1), math.Inf(1), func(k float64, _ uint64) bool {
		if k < prev {
			t.Fatalf("out of order: %v after %v", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan count=%d", count)
	}
	// Mutations after bulk load still work.
	tr.Insert(0.5, 77)
	if !tr.Contains(0.5, 77) {
		t.Fatal("insert after bulk load")
	}
}

func TestBulkLoadErrors(t *testing.T) {
	tr := New(DefaultOrder)
	if err := tr.BulkLoad([]float64{1}, []uint64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if err := tr.BulkLoad([]float64{2, 1}, []uint64{0, 0}); err == nil {
		t.Fatal("want unsorted error")
	}
	if err := tr.BulkLoad(nil, nil); err != nil {
		t.Fatalf("empty bulk load: %v", err)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	tr := New(DefaultOrder)
	empty := tr.SizeBytes()
	for i := 0; i < 10000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if tr.SizeBytes() <= empty {
		t.Fatal("size did not grow")
	}
	// Rough sanity: at least 16 bytes/entry (key+id), at most ~100.
	per := float64(tr.SizeBytes()) / 10000
	if per < 16 || per > 100 {
		t.Fatalf("bytes/entry=%v outside sane range", per)
	}
}

func TestHeightGrows(t *testing.T) {
	tr := New(4)
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if tr.Height() < 4 {
		t.Fatalf("height=%d, expected deep tree at order 4", tr.Height())
	}
}

// Property: the tree agrees with a reference sorted slice under random
// inserts and deletes, for both orders and random key distributions.
func TestQuickAgainstReference(t *testing.T) {
	type entry struct {
		k float64
		v uint64
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 4 + rng.Intn(29)
		tr := New(order)
		var ref []entry
		for op := 0; op < 4000; op++ {
			if len(ref) > 0 && rng.Float64() < 0.25 {
				i := rng.Intn(len(ref))
				e := ref[i]
				if !tr.Delete(e.k, e.v) {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			} else {
				// Small key space to force duplicates.
				e := entry{k: float64(rng.Intn(50)), v: uint64(op)}
				tr.Insert(e.k, e.v)
				ref = append(ref, e)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].k != ref[b].k {
				return ref[a].k < ref[b].k
			}
			return ref[a].v < ref[b].v
		})
		i := 0
		okScan := true
		tr.Scan(math.Inf(-1), math.Inf(1), func(k float64, v uint64) bool {
			if i >= len(ref) || ref[i].k != k || ref[i].v != v {
				okScan = false
				return false
			}
			i++
			return true
		})
		return okScan && i == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: range scans return exactly the reference subset.
func TestQuickRangeScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(8)
		keys := make([]float64, 2000)
		for i := range keys {
			keys[i] = math.Floor(rng.Float64() * 300)
			tr.Insert(keys[i], uint64(i))
		}
		for trial := 0; trial < 20; trial++ {
			lo := rng.Float64() * 300
			hi := lo + rng.Float64()*100
			want := 0
			for _, k := range keys {
				if k >= lo && k <= hi {
					want++
				}
			}
			got := 0
			tr.Scan(lo, hi, func(k float64, _ uint64) bool {
				if k < lo || k > hi {
					return false
				}
				got++
				return true
			})
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: bulk load and incremental insert produce identical scans.
func TestQuickBulkLoadEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		keys := make([]float64, n)
		ids := make([]uint64, n)
		for i := range keys {
			keys[i] = math.Floor(rng.Float64() * 100)
			ids[i] = uint64(i)
		}
		inc := New(DefaultOrder)
		for i := range keys {
			inc.Insert(keys[i], ids[i])
		}
		type pair struct {
			k float64
			v uint64
		}
		sorted := make([]pair, n)
		for i := range keys {
			sorted[i] = pair{keys[i], ids[i]}
		}
		sort.Slice(sorted, func(a, b int) bool {
			if sorted[a].k != sorted[b].k {
				return sorted[a].k < sorted[b].k
			}
			return sorted[a].v < sorted[b].v
		})
		sk := make([]float64, n)
		sv := make([]uint64, n)
		for i, p := range sorted {
			sk[i], sv[i] = p.k, p.v
		}
		bl := New(DefaultOrder)
		if err := bl.BulkLoad(sk, sv); err != nil {
			return false
		}
		if err := bl.CheckInvariants(); err != nil {
			return false
		}
		var a, b []pair
		inc.Scan(math.Inf(-1), math.Inf(1), func(k float64, v uint64) bool {
			a = append(a, pair{k, v})
			return true
		})
		bl.Scan(math.Inf(-1), math.Inf(1), func(k float64, v uint64) bool {
			b = append(b, pair{k, v})
			return true
		})
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(DefaultOrder)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e6, uint64(i))
	}
}

func BenchmarkPointLookup(b *testing.B) {
	tr := New(DefaultOrder)
	for i := 0; i < 1_000_000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.First(float64(i % 1_000_000)); !ok {
			b.Fatal("missing")
		}
	}
}

func BenchmarkRangeScan1000(b *testing.B) {
	tr := New(DefaultOrder)
	for i := 0; i < 1_000_000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64((i * 997) % 999000)
		n := 0
		tr.Scan(lo, lo+999, func(float64, uint64) bool { n++; return true })
		if n != 1000 {
			b.Fatalf("n=%d", n)
		}
	}
}
