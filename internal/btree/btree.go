// Package btree implements the in-memory B+-tree that serves three roles in
// the reproduction: the conventional complete secondary index (the paper's
// Baseline), the host index Hermit piggybacks on, and the primary index used
// by the logical-pointer tuple-identifier scheme (§5.1).
//
// Keys are float64 column values; values are opaque uint64 tuple identifiers
// (either physical RIDs or logical primary keys). Duplicate column values
// are supported by ordering entries on the composite (key, value) pair,
// which keeps every entry unique and makes splits, scans and exact-entry
// deletes unambiguous even for heavily skewed data.
//
// The default node capacity is 16 entries, i.e. 256 bytes of keys per node,
// matching the 256-byte node size of the paper's DBMS-X B+-tree (§7.1).
package btree

import (
	"fmt"
	"math"
	"sort"
)

// DefaultOrder is the default maximum number of entries per node.
const DefaultOrder = 16

// Tree is a B+-tree mapping float64 keys to uint64 tuple identifiers.
// The zero value is not usable; call New.
//
// Tree is not internally synchronised. The engine layer serialises writers;
// concurrent readers are safe only in the absence of writers.
type Tree struct {
	root  *node
	order int
	size  int
}

type node struct {
	leaf bool
	// keys holds entry keys in a leaf, separator keys in an internal node.
	keys []float64
	// tie holds the value component of the composite ordering: entry values
	// in a leaf, separator value components in an internal node.
	tie      []uint64
	children []*node // internal nodes only
	next     *node   // leaf-level sibling link for range scans
}

// New creates an empty tree with the given node order (maximum entries per
// node). Orders below 4 are raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	return &Tree{
		root:  &node{leaf: true},
		order: order,
	}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels, 1 for a tree that is a single leaf.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// cmpKV orders composite (key, value) pairs.
func cmpKV(k1 float64, v1 uint64, k2 float64, v2 uint64) int {
	switch {
	case k1 < k2:
		return -1
	case k1 > k2:
		return 1
	case v1 < v2:
		return -1
	case v1 > v2:
		return 1
	default:
		return 0
	}
}

// search returns the index of the first entry in n that is >= (k, v).
func (n *node) search(k float64, v uint64) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return cmpKV(n.keys[i], n.tie[i], k, v) >= 0
	})
}

// childIndex returns the child to descend into for composite key (k, v):
// the number of separators <= (k, v). Separator i is the smallest entry of
// children[i+1].
func (n *node) childIndex(k float64, v uint64) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return cmpKV(n.keys[i], n.tie[i], k, v) > 0
	})
}

// Insert adds the entry (key, id). Inserting an entry that already exists
// (same key and id) is permitted and stores a second copy; the engine never
// does this for a well-formed table, and tolerating it keeps the tree free
// of policy.
func (t *Tree) Insert(key float64, id uint64) {
	sep, sepTie, right := t.insert(t.root, key, id)
	if right != nil {
		newRoot := &node{
			keys:     []float64{sep},
			tie:      []uint64{sepTie},
			children: []*node{t.root, right},
		}
		t.root = newRoot
	}
	t.size++
}

// insert descends into n; on child split it absorbs the separator, and on
// its own split returns the new right sibling with its separator.
func (t *Tree) insert(n *node, key float64, id uint64) (float64, uint64, *node) {
	if n.leaf {
		i := n.search(key, id)
		n.keys = append(n.keys, 0)
		n.tie = append(n.tie, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.tie[i+1:], n.tie[i:])
		n.keys[i] = key
		n.tie[i] = id
		if len(n.keys) > t.order {
			return t.splitLeaf(n)
		}
		return 0, 0, nil
	}
	ci := n.childIndex(key, id)
	sep, sepTie, right := t.insert(n.children[ci], key, id)
	if right == nil {
		return 0, 0, nil
	}
	n.keys = append(n.keys, 0)
	n.tie = append(n.tie, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	copy(n.tie[ci+1:], n.tie[ci:])
	n.keys[ci] = sep
	n.tie[ci] = sepTie
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.keys) > t.order {
		return t.splitInternal(n)
	}
	return 0, 0, nil
}

func (t *Tree) splitLeaf(n *node) (float64, uint64, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]float64(nil), n.keys[mid:]...),
		tie:  append([]uint64(nil), n.tie[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.tie = n.tie[:mid:mid]
	n.next = right
	return right.keys[0], right.tie[0], right
}

func (t *Tree) splitInternal(n *node) (float64, uint64, *node) {
	mid := len(n.keys) / 2
	sep, sepTie := n.keys[mid], n.tie[mid]
	right := &node{
		keys:     append([]float64(nil), n.keys[mid+1:]...),
		tie:      append([]uint64(nil), n.tie[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.tie = n.tie[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, sepTie, right
}

// Delete removes the entry (key, id) if present and reports whether it was
// found. Underfull nodes are not rebalanced: entries are simply removed,
// which preserves all ordering invariants and matches the lazy-deletion
// strategy common in main-memory B+-trees; the TRS-Tree reorganization
// experiments drive deletes through this path.
func (t *Tree) Delete(key float64, id uint64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key, id)]
	}
	i := n.search(key, id)
	if i >= len(n.keys) || cmpKV(n.keys[i], n.tie[i], key, id) != 0 {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.tie = append(n.tie[:i], n.tie[i+1:]...)
	t.size--
	return true
}

// Contains reports whether the exact entry (key, id) is present.
func (t *Tree) Contains(key float64, id uint64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key, id)]
	}
	i := n.search(key, id)
	return i < len(n.keys) && cmpKV(n.keys[i], n.tie[i], key, id) == 0
}

// Scan calls fn for every entry with lo <= key <= hi in ascending (key, id)
// order. Scanning stops early if fn returns false.
func (t *Tree) Scan(lo, hi float64, fn func(key float64, id uint64) bool) {
	if lo > hi {
		return
	}
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(lo, 0)]
	}
	i := n.search(lo, 0)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !fn(n.keys[i], n.tie[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Lookup calls fn for every entry whose key equals key.
func (t *Tree) Lookup(key float64, fn func(id uint64) bool) {
	t.Scan(key, key, func(_ float64, id uint64) bool { return fn(id) })
}

// First returns the entry whose key equals key with the smallest id. The
// primary index uses this for unique keys.
func (t *Tree) First(key float64) (uint64, bool) {
	var id uint64
	found := false
	t.Lookup(key, func(v uint64) bool {
		id = v
		found = true
		return false
	})
	return id, found
}

// Min returns the smallest key, with ok=false for an empty tree.
func (t *Tree) Min() (float64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], true
		}
		n = n.next
	}
	return 0, false
}

// Max returns the largest key, with ok=false for an empty tree.
func (t *Tree) Max() (float64, bool) {
	if t.size == 0 {
		return 0, false
	}
	best := math.Inf(-1)
	found := false
	// Rightmost descent can land on an emptied leaf after lazy deletes, so
	// fall back to checking the rightmost non-empty leaf reachable by the
	// sibling chain from the rightmost path.
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) > 0 {
		return n.keys[len(n.keys)-1], true
	}
	// Rare path: scan everything.
	t.Scan(math.Inf(-1), math.Inf(1), func(k float64, _ uint64) bool {
		best = k
		found = true
		return true
	})
	return best, found
}

// BulkLoad replaces the tree contents with the given entries, which must be
// sorted by (key, id). Leaves are packed to ~85% occupancy, mirroring the
// single-thread bulk loading used for the paper's baseline B+-tree (§7.5).
func (t *Tree) BulkLoad(keys []float64, ids []uint64) error {
	if len(keys) != len(ids) {
		return fmt.Errorf("btree: BulkLoad length mismatch: %d keys, %d ids", len(keys), len(ids))
	}
	for i := 1; i < len(keys); i++ {
		if cmpKV(keys[i-1], ids[i-1], keys[i], ids[i]) > 0 {
			return fmt.Errorf("btree: BulkLoad input not sorted at %d", i)
		}
	}
	t.root = &node{leaf: true}
	t.size = len(keys)
	if len(keys) == 0 {
		return nil
	}
	per := t.order * 85 / 100
	if per < 1 {
		per = 1
	}
	var leaves []*node
	for off := 0; off < len(keys); off += per {
		end := off + per
		if end > len(keys) {
			end = len(keys)
		}
		leaves = append(leaves, &node{
			leaf: true,
			keys: append([]float64(nil), keys[off:end]...),
			tie:  append([]uint64(nil), ids[off:end]...),
		})
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	level := leaves
	for len(level) > 1 {
		var parents []*node
		for off := 0; off < len(level); off += per + 1 {
			end := off + per + 1
			if end > len(level) {
				end = len(level)
			}
			p := &node{children: append([]*node(nil), level[off:end]...)}
			for _, c := range p.children[1:] {
				k, tie := minEntry(c)
				p.keys = append(p.keys, k)
				p.tie = append(p.tie, tie)
			}
			parents = append(parents, p)
		}
		level = parents
	}
	t.root = level[0]
	return nil
}

func minEntry(n *node) (float64, uint64) {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0], n.tie[0]
}

// SizeBytes estimates the heap footprint of the tree: key, tie and child
// arrays plus per-node overhead. This feeds the paper's memory-consumption
// figures, where the baseline's complete indexes dominate the budget.
func (t *Tree) SizeBytes() uint64 {
	return nodeSize(t.root)
}

func nodeSize(n *node) uint64 {
	// Struct header: flag + 3 slice headers + pointer ≈ 80 bytes.
	s := uint64(80)
	s += uint64(cap(n.keys)) * 8
	s += uint64(cap(n.tie)) * 8
	s += uint64(cap(n.children)) * 8
	for _, c := range n.children {
		s += nodeSize(c)
	}
	return s
}

// checkInvariants walks the tree verifying ordering and structure; it is
// exported to the package tests via export_test.go.
func (t *Tree) checkInvariants() error {
	count := 0
	var walk func(n *node, lo float64, loTie uint64, hasLo bool, hi float64, hiTie uint64, hasHi bool) error
	walk = func(n *node, lo float64, loTie uint64, hasLo bool, hi float64, hiTie uint64, hasHi bool) error {
		for i := 1; i < len(n.keys); i++ {
			if cmpKV(n.keys[i-1], n.tie[i-1], n.keys[i], n.tie[i]) > 0 {
				return fmt.Errorf("btree: unordered keys at %d", i)
			}
		}
		for i := range n.keys {
			if hasLo && cmpKV(n.keys[i], n.tie[i], lo, loTie) < 0 {
				return fmt.Errorf("btree: key below lower bound")
			}
			if hasHi && cmpKV(n.keys[i], n.tie[i], hi, hiTie) >= 0 && n.leaf {
				return fmt.Errorf("btree: leaf key above upper bound")
			}
		}
		if n.leaf {
			count += len(n.keys)
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal node with %d keys, %d children", len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			clo, cloTie, chasLo := lo, loTie, hasLo
			chi, chiTie, chasHi := hi, hiTie, hasHi
			if i > 0 {
				clo, cloTie, chasLo = n.keys[i-1], n.tie[i-1], true
			}
			if i < len(n.keys) {
				chi, chiTie, chasHi = n.keys[i], n.tie[i], true
			}
			if err := walk(c, clo, cloTie, chasLo, chi, chiTie, chasHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, 0, false, 0, 0, false); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries reachable", t.size, count)
	}
	return nil
}
