package btree

import (
	"math"
	"testing"
)

func TestMaxAfterRightmostDeletes(t *testing.T) {
	// Lazy deletion can empty the rightmost leaf; Max must fall back to the
	// scan path and still report the true maximum.
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	// Empty out the tail of the key space.
	for i := 90; i < 100; i++ {
		if !tr.Delete(float64(i), uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	mx, ok := tr.Max()
	if !ok || mx != 89 {
		t.Fatalf("max=%v ok=%v, want 89", mx, ok)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanWithInfiniteBounds(t *testing.T) {
	tr := New(DefaultOrder)
	for i := 0; i < 50; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	n := 0
	tr.Scan(math.Inf(-1), math.Inf(1), func(float64, uint64) bool { n++; return true })
	if n != 50 {
		t.Fatalf("inf scan saw %d", n)
	}
}

func TestInsertDuplicateEntryTolerated(t *testing.T) {
	tr := New(DefaultOrder)
	tr.Insert(1, 7)
	tr.Insert(1, 7) // documented as permitted
	if tr.Len() != 2 {
		t.Fatalf("len=%d", tr.Len())
	}
	if !tr.Delete(1, 7) || !tr.Delete(1, 7) {
		t.Fatal("deleting both copies failed")
	}
	if tr.Delete(1, 7) {
		t.Fatal("third delete succeeded")
	}
}
