package client_test

import (
	"errors"
	"testing"
	"time"

	"hermit/internal/client"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/repl"
	"hermit/internal/server"
)

// replicatedStack is a leader server plus n follower servers, each
// tailing the leader, for cluster-routing tests.
type replicatedStack struct {
	ld        *engine.DurableDB
	lsrv      *server.Server
	followers []*repl.Follower
	fsrvs     []*server.Server
}

func startReplicatedStack(t *testing.T, n int) *replicatedStack {
	t.Helper()
	ld, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ld.Close() })
	leader, err := repl.NewLeader(ld, repl.LeaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lsrv := server.New(ld, server.Options{Leader: leader})
	if err := lsrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lsrv.Close() })
	st := &replicatedStack{ld: ld, lsrv: lsrv}
	for i := 0; i < n; i++ {
		f, err := repl.OpenFollower(repl.FollowerOptions{
			Dir: t.TempDir(), ID: string(rune('a' + i)), LeaderAddr: lsrv.Addr().String(),
			Scheme:         hermit.PhysicalPointers,
			ReconnectDelay: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		fsrv := server.New(f.DB(), server.Options{Follower: f})
		f.SetOnEngineSwap(func(db *engine.DurableDB) { fsrv.SwapEngine(db) })
		f.Start()
		if err := fsrv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fsrv.Close() })
		st.followers = append(st.followers, f)
		st.fsrvs = append(st.fsrvs, fsrv)
	}
	return st
}

func (st *replicatedStack) followerAddrs() []string {
	addrs := make([]string, len(st.fsrvs))
	for i, s := range st.fsrvs {
		addrs[i] = s.Addr().String()
	}
	return addrs
}

func (st *replicatedStack) waitAll(t *testing.T) {
	t.Helper()
	last := st.ld.LastLSN()
	for _, f := range st.followers {
		if err := f.WaitFor(last, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterReadYourWrites routes writes to the leader and reads across
// followers with the min-applied-LSN token: every read must observe the
// cluster's own preceding writes no matter which endpoint serves it.
func TestClusterReadYourWrites(t *testing.T) {
	st := startReplicatedStack(t, 2)
	cl, err := client.DialCluster(st.lsrv.Addr().String(), st.followerAddrs(),
		client.ClusterOptions{ReadYourWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.CreateTable("t", []string{"id", "v"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Write-then-read, repeatedly: the token forces each read onto an
	// endpoint that already holds the write.
	for i := 0; i < 30; i++ {
		if err := cl.Insert("t", []float64{float64(i), float64(i * 2)}); err != nil {
			t.Fatal(err)
		}
		rows, err := cl.Point("t", 0, float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][1] != float64(i*2) {
			t.Fatalf("read-your-writes miss at %d: %v", i, rows)
		}
	}
	if err := cl.Update("t", 3, 1, 99); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Point("t", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != 99 {
		t.Fatalf("update not observed: %v", rows)
	}
	if _, err := cl.Delete("t", 4); err != nil {
		t.Fatal(err)
	}
	if rows, err := cl.Point("t", 0, 4); err != nil || len(rows) != 0 {
		t.Fatalf("delete not observed: %v %v", rows, err)
	}
	if rows, err := cl.Range("t", 0, 0, 100); err != nil || len(rows) != 29 {
		t.Fatalf("range after delete: %d rows, %v", len(rows), err)
	}
}

// TestClusterEventualReads: without ReadYourWrites the cluster spreads
// reads over followers with no freshness gate — once the followers have
// caught up, reads return the replicated data from follower connections.
func TestClusterEventualReads(t *testing.T) {
	st := startReplicatedStack(t, 2)
	cl, err := client.DialCluster(st.lsrv.Addr().String(), st.followerAddrs(),
		client.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.CreateTable("t", []string{"id"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := cl.Insert("t", []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st.waitAll(t)
	for i := 0; i < 10; i++ {
		rows, err := cl.Point("t", 0, float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("eventual read %d: %v", i, rows)
		}
	}
	// Range2 also routes through the read path.
	if _, err := cl.Range2("t", 0, 0, 5, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
}

// TestClusterLeaderFallback: with no followers at all, every read falls
// back to the leader connection.
func TestClusterLeaderFallback(t *testing.T) {
	st := startReplicatedStack(t, 0)
	cl, err := client.DialCluster(st.lsrv.Addr().String(), nil,
		client.ClusterOptions{ReadYourWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("t", []string{"id"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("t", []float64{1}); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Point("t", 0, 1)
	if err != nil || len(rows) != 1 {
		t.Fatalf("leader fallback read: %v %v", rows, err)
	}
	if cl.Leader() == nil {
		t.Fatal("no leader connection exposed")
	}
}

// TestClusterSkipsDeadFollowers: unreachable follower endpoints are
// skipped at dial time; the cluster still works on what remains.
func TestClusterSkipsDeadFollowers(t *testing.T) {
	st := startReplicatedStack(t, 1)
	addrs := append(st.followerAddrs(), "127.0.0.1:1")
	cl, err := client.DialCluster(st.lsrv.Addr().String(), addrs,
		client.ClusterOptions{ReadYourWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("t", []string{"id"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("t", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if rows, err := cl.Point("t", 0, 1); err != nil || len(rows) != 1 {
		t.Fatalf("read with dead follower in the list: %v %v", rows, err)
	}
	// A dead leader is fatal.
	if _, err := client.DialCluster("127.0.0.1:1", nil, client.ClusterOptions{}); err == nil {
		t.Fatal("dial with dead leader succeeded")
	}
}

// TestFollowerErrorSentinels: writes against a follower connection map
// CodeNotLeader onto client.ErrNotLeader.
func TestFollowerErrorSentinels(t *testing.T) {
	st := startReplicatedStack(t, 1)
	lc := dial(t, st.lsrv, client.Options{})
	if err := lc.CreateTable("t", []string{"id"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	fc := dial(t, st.fsrvs[0], client.Options{})
	if err := fc.Insert("t", []float64{1}); !errors.Is(err, client.ErrNotLeader) {
		t.Fatalf("follower insert error: %v", err)
	}
}
