package client

import (
	"fmt"
)

// ClusterOptions configures a Cluster.
type ClusterOptions struct {
	// Conn carries the per-connection settings (tenant, dial timeout).
	Conn Options
	// ReadYourWrites, when set, makes every read observe the cluster's
	// own preceding writes: each write refreshes a min-applied-LSN token
	// from the leader, and reads only go to a follower whose applied
	// watermark has reached it (falling back to the leader otherwise).
	// Without it reads are eventually consistent — any follower, any lag.
	ReadYourWrites bool
}

// Cluster routes requests over a replicated deployment: writes (and DDL,
// and transactions) go to the leader, reads are load-balanced round-robin
// across followers — falling back to the leader when no follower is
// usable. Like Conn it is not safe for concurrent use; open one per
// goroutine.
type Cluster struct {
	opts    ClusterOptions
	leader  *Conn
	readers []*reader
	next    int
	// token is the min applied LSN a follower must have reached to serve
	// this cluster's reads (ReadYourWrites only).
	token uint64
}

// reader is one follower connection plus the last applied watermark it
// reported, cached so reads don't pay an LSN round trip when the follower
// is known to be fresh enough.
type reader struct {
	conn    *Conn
	applied uint64
}

// DialCluster connects to the leader and every follower. Followers that
// fail to dial are skipped (reads then lean on the remaining endpoints);
// a leader dial failure fails the whole call.
func DialCluster(leaderAddr string, followerAddrs []string, opts ClusterOptions) (*Cluster, error) {
	leader, err := Dial(leaderAddr, opts.Conn)
	if err != nil {
		return nil, fmt.Errorf("client: dial leader %s: %w", leaderAddr, err)
	}
	cl := &Cluster{opts: opts, leader: leader}
	for _, addr := range followerAddrs {
		c, err := Dial(addr, opts.Conn)
		if err != nil {
			continue
		}
		cl.readers = append(cl.readers, &reader{conn: c})
	}
	return cl, nil
}

// Close closes every connection, returning the first error.
func (cl *Cluster) Close() error {
	err := cl.leader.Close()
	for _, r := range cl.readers {
		if cerr := r.conn.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Leader returns the leader connection (for transactions and pipelines,
// which are inherently single-connection).
func (cl *Cluster) Leader() *Conn { return cl.leader }

// bumpToken refreshes the read-your-writes token after a write.
func (cl *Cluster) bumpToken() error {
	if !cl.opts.ReadYourWrites {
		return nil
	}
	lsn, err := cl.leader.LSN()
	if err != nil {
		return err
	}
	if lsn > cl.token {
		cl.token = lsn
	}
	return nil
}

// readConn picks the connection for the next read: round-robin over
// followers fresh enough for the token, leader as the fallback.
func (cl *Cluster) readConn() *Conn {
	n := len(cl.readers)
	for i := 0; i < n; i++ {
		r := cl.readers[(cl.next+i)%n]
		if cl.token > r.applied {
			// Possibly stale; one watermark round trip refreshes the cache.
			lsn, err := r.conn.LSN()
			if err != nil {
				continue
			}
			r.applied = lsn
		}
		if cl.token <= r.applied {
			cl.next = (cl.next + i + 1) % n
			return r.conn
		}
	}
	return cl.leader
}

// Point returns the rows where column col equals v, served by a follower
// when one is fresh enough.
func (cl *Cluster) Point(table string, col int, v float64) ([][]float64, error) {
	return cl.readConn().Point(table, col, v)
}

// Range returns the rows where column col is in [lo, hi].
func (cl *Cluster) Range(table string, col int, lo, hi float64) ([][]float64, error) {
	return cl.readConn().Range(table, col, lo, hi)
}

// Range2 returns the rows matching both column ranges conjunctively.
func (cl *Cluster) Range2(table string, col int, lo, hi float64, bcol int, blo, bhi float64) ([][]float64, error) {
	return cl.readConn().Range2(table, col, lo, hi, bcol, blo, bhi)
}

// Insert appends a row via the leader.
func (cl *Cluster) Insert(table string, row []float64) error {
	if err := cl.leader.Insert(table, row); err != nil {
		return err
	}
	return cl.bumpToken()
}

// Update sets column col of the row with primary key pk to v via the
// leader.
func (cl *Cluster) Update(table string, pk float64, col int, v float64) error {
	if err := cl.leader.Update(table, pk, col, v); err != nil {
		return err
	}
	return cl.bumpToken()
}

// Delete removes the row with primary key pk via the leader.
func (cl *Cluster) Delete(table string, pk float64) (bool, error) {
	found, err := cl.leader.Delete(table, pk)
	if err != nil {
		return found, err
	}
	return found, cl.bumpToken()
}

// CreateTable creates a table via the leader.
func (cl *Cluster) CreateTable(table string, cols []string, pkCol, parts int) error {
	if err := cl.leader.CreateTable(table, cols, pkCol, parts); err != nil {
		return err
	}
	return cl.bumpToken()
}
