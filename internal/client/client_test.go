package client_test

import (
	"errors"
	"testing"

	"hermit/internal/client"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/server"
)

// startServer serves a fresh DurableDB on loopback, torn down with the
// test.
func startServer(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	d, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := server.New(d, opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, srv *server.Server, opts client.Options) *client.Conn {
	t.Helper()
	c, err := client.Dial(srv.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestConnSurface exercises every Conn method against a live server:
// DDL, the six data ops, and the error sentinels the codes map onto.
func TestConnSurface(t *testing.T) {
	srv := startServer(t, server.Options{})
	c := dial(t, srv, client.Options{Tenant: "app"})

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t", []string{"id", "x", "y"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBTreeIndex("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateHermitIndex("t", 2, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Insert("t", []float64{float64(i), float64(i * 2), float64(i * 3)}); err != nil {
			t.Fatal(err)
		}
	}

	rows, err := c.Point("t", 0, 7)
	if err != nil || len(rows) != 1 || rows[0][1] != 14 {
		t.Fatalf("point: rows=%v err=%v", rows, err)
	}
	rows, err = c.Range("t", 1, 10, 20)
	if err != nil || len(rows) != 6 {
		t.Fatalf("range: %d rows, err=%v", len(rows), err)
	}
	rows, err = c.Range2("t", 1, 10, 20, 2, 0, 24)
	if err != nil || len(rows) != 4 {
		t.Fatalf("range2: %d rows, err=%v", len(rows), err)
	}

	if err := c.Update("t", 7, 2, 99); err != nil {
		t.Fatal(err)
	}
	rows, _ = c.Point("t", 0, 7)
	if len(rows) != 1 || rows[0][2] != 99 {
		t.Fatalf("update not visible: %v", rows)
	}
	found, err := c.Delete("t", 7)
	if err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	found, err = c.Delete("t", 7)
	if err != nil || found {
		t.Fatalf("re-delete: found=%v err=%v", found, err)
	}

	// Error mapping: unknown table and duplicate key surface as sentinels
	// through errors.Is, with the wire code on the concrete *Error.
	if _, err := c.Point("missing", 0, 1); !errors.Is(err, client.ErrNoTable) {
		t.Fatalf("want ErrNoTable, got %v", err)
	}
	err = c.Insert("t", []float64{3, 0, 0})
	if !errors.Is(err, client.ErrDupKey) {
		t.Fatalf("want ErrDupKey, got %v", err)
	}
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Error() == "" {
		t.Fatalf("dup-key error not a *client.Error: %v", err)
	}
}

// TestBatchAndPipeline covers the atomic Batch surface and every
// Pipeline queueing method.
func TestBatchAndPipeline(t *testing.T) {
	srv := startServer(t, server.Options{})
	c := dial(t, srv, client.Options{})
	if err := c.CreateTable("t", []string{"id", "x"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Insert("t", []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	results, err := c.Batch([]client.Op{
		{Kind: client.OpInsert, Table: "t", Row: []float64{100, 1}},
		{Kind: client.OpPoint, Table: "t", Col: 0, Lo: 3},
		{Kind: client.OpRange, Table: "t", Col: 1, Lo: 0, Hi: 4},
		{Kind: client.OpRange2, Table: "t", Col: 0, Lo: 0, Hi: 9, BCol: 1, BLo: 2, BHi: 5},
		{Kind: client.OpUpdate, Table: "t", PK: 4, Col: 1, Value: 44},
		{Kind: client.OpDelete, Table: "t", PK: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch op %d: %v", i, r.Err)
		}
	}
	if len(results[1].Rows) != 1 || len(results[2].Rows) != 5 || len(results[3].Rows) != 4 {
		t.Fatalf("batch query results garbled: %+v", results)
	}
	if !results[5].Found {
		t.Fatal("batch delete did not find its row")
	}

	// An atomic batch with a failing mutation applies nothing: the dup
	// insert errors and the sibling mutation reports ErrAborted.
	results, err = c.Batch([]client.Op{
		{Kind: client.OpInsert, Table: "t", Row: []float64{200, 1}},
		{Kind: client.OpInsert, Table: "t", Row: []float64{3, 1}}, // dup pk
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[1].Err, client.ErrDupKey) {
		t.Fatalf("dup in batch: %v", results[1].Err)
	}
	if !errors.Is(results[0].Err, client.ErrAborted) {
		t.Fatalf("sibling not aborted: %v", results[0].Err)
	}
	if rows, _ := c.Point("t", 0, 200); len(rows) != 0 {
		t.Fatal("aborted batch leaked an insert")
	}

	p := c.Pipeline()
	p.Ping()
	p.Insert("t", []float64{300, 9})
	p.Point("t", 0, 300)
	p.Range("t", 0, 0, 2)
	p.Update("t", 300, 1, 10)
	p.Delete("t", 300)
	p.Op(client.Op{Kind: client.OpPoint, Table: "t", Col: 0, Lo: 1})
	if p.Len() != 7 {
		t.Fatalf("pipeline len %d", p.Len())
	}
	results, err = p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("pipeline returned %d results", len(results))
	}
	if len(results[2].Rows) != 1 || !results[5].Found || len(results[6].Rows) != 1 {
		t.Fatalf("pipeline results garbled: %+v", results)
	}
}

// TestTxnSurface covers the wire transaction: snapshot reads, buffered
// writes, commit, rollback, and the conflict sentinel.
func TestTxnSurface(t *testing.T) {
	srv := startServer(t, server.Options{})
	c := dial(t, srv, client.Options{})
	if err := c.CreateTable("t", []string{"id", "x"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Insert("t", []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", []float64{50, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", 1, 1, 11); err != nil {
		t.Fatal(err)
	}
	if found, err := tx.Delete("t", 2); err != nil || !found {
		t.Fatalf("txn delete: found=%v err=%v", found, err)
	}
	if rows, err := tx.Point("t", 0, 1); err != nil || len(rows) != 1 {
		t.Fatalf("txn point: %v err=%v", rows, err)
	}
	if rows, err := tx.Range("t", 0, 0, 10); err != nil || len(rows) != 5 {
		t.Fatalf("txn range sees %d rows (snapshot is pre-write), err=%v", len(rows), err)
	}
	// Writes are invisible to auto-commit reads until commit.
	if rows, _ := c.Point("t", 0, 50); len(rows) != 0 {
		t.Fatal("uncommitted insert visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if rows, _ := c.Point("t", 0, 50); len(rows) != 1 {
		t.Fatal("committed insert not visible")
	}

	// First-committer-wins: a rival auto-commit update to the same key
	// dooms the transaction.
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update("t", 3, 1, 33); err != nil {
		t.Fatal(err)
	}
	rival := dial(t, srv, client.Options{})
	if err := rival.Update("t", 3, 1, 42); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}

	// Rollback discards; after Commit it is a no-op.
	tx3, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.Insert("t", []float64{60, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Rollback(); err != nil {
		t.Fatal(err)
	}
	if rows, _ := c.Point("t", 0, 60); len(rows) != 0 {
		t.Fatal("rolled-back insert visible")
	}
}

// TestDialErrors covers transport-level failures and tenant validation.
func TestDialErrors(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1", client.Options{}); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	srv := startServer(t, server.Options{})
	if _, err := client.Dial(srv.Addr().String(), client.Options{Tenant: "bad@name"}); err == nil {
		t.Fatal("tenant with '@' accepted")
	}
}
