package client

import (
	"hermit/internal/server/proto"
)

// This file is the batch and pipelining surface. Batch is server-side
// atomicity (one request, all-or-nothing mutations); Pipeline is a wire
// optimisation (many requests written before any response is read, which
// the server coalesces into engine batch executions).

// OpKind names a batchable operation.
type OpKind int

// Batchable operation kinds.
const (
	// OpPoint is an equality query on Col with value Lo.
	OpPoint OpKind = iota
	// OpRange is a range query on Col over [Lo, Hi].
	OpRange
	// OpRange2 is a conjunctive two-column range query.
	OpRange2
	// OpInsert inserts Row.
	OpInsert
	// OpUpdate sets Col of the row with key PK to Value.
	OpUpdate
	// OpDelete removes the row with key PK.
	OpDelete
)

// Op is one operation inside a Batch.
type Op struct {
	Kind     OpKind
	Table    string
	Col      int
	Lo, Hi   float64
	BCol     int
	BLo, BHi float64
	Row      []float64
	PK       float64
	Value    float64
}

// Result is one operation's outcome inside a batch (or pipeline).
type Result struct {
	// Rows are a query's matches.
	Rows [][]float64
	// Found reports a delete's outcome.
	Found bool
	// Err is the per-op failure: inside an atomic batch a failing
	// mutation carries its own error and every sibling mutation reports
	// ErrAborted.
	Err error
}

func (op *Op) toRequest() proto.Request {
	r := proto.Request{
		Table: op.Table, Col: uint16(op.Col), Lo: op.Lo, Hi: op.Hi,
		BCol: uint16(op.BCol), BLo: op.BLo, BHi: op.BHi,
		Row: op.Row, PK: op.PK, Value: op.Value,
	}
	switch op.Kind {
	case OpPoint:
		r.Type = proto.ReqPoint
	case OpRange:
		r.Type = proto.ReqRange
	case OpRange2:
		r.Type = proto.ReqRange2
	case OpInsert:
		r.Type = proto.ReqInsert
	case OpUpdate:
		r.Type = proto.ReqUpdate
	case OpDelete:
		r.Type = proto.ReqDelete
	}
	return r
}

func resultOf(resp proto.Response) Result {
	var res Result
	switch resp.Type {
	case proto.RespRows:
		res.Rows = resp.Rows
	case proto.RespFound:
		res.Found = resp.Found
	case proto.RespError:
		res.Err = &Error{Code: resp.Code, Msg: resp.Msg}
	}
	return res
}

// Batch executes ops as one atomic server-side batch: mutations commit as
// a single transaction (all or nothing), queries read the batch's
// snapshot. Results align positionally with ops. The returned error
// covers batch-level failures only; per-op failures are in Result.Err.
func (c *Conn) Batch(ops []Op) ([]Result, error) {
	req := proto.Request{Type: proto.ReqBatch, Ops: make([]proto.Request, len(ops))}
	for i := range ops {
		req.Ops[i] = ops[i].toRequest()
	}
	resp, err := c.roundTrip(&req)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(resp.Results))
	for i, r := range resp.Results {
		results[i] = resultOf(r)
	}
	return results, nil
}

// Pipeline queues requests client-side and writes them all in one burst;
// Flush then reads every response in order. Unlike Batch, pipelined ops
// are independent auto-commit requests — no atomicity across them — but
// the server coalesces adjacent reads into engine batch executions, so a
// pipeline of point queries executes on the engine's worker pool instead
// of lockstep round trips.
type Pipeline struct {
	c    *Conn
	reqs []proto.Request
	err  error
}

// Pipeline starts an empty pipeline on the connection. The connection
// must not be used for other requests until Flush returns.
func (c *Conn) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Ping queues a no-op.
func (p *Pipeline) Ping() { p.add(proto.Request{Type: proto.ReqPing}) }

// Point queues an equality query.
func (p *Pipeline) Point(table string, col int, v float64) {
	p.add(proto.Request{Type: proto.ReqPoint, Table: table, Col: uint16(col), Lo: v})
}

// Range queues a range query.
func (p *Pipeline) Range(table string, col int, lo, hi float64) {
	p.add(proto.Request{Type: proto.ReqRange, Table: table, Col: uint16(col), Lo: lo, Hi: hi})
}

// Insert queues an insert.
func (p *Pipeline) Insert(table string, row []float64) {
	p.add(proto.Request{Type: proto.ReqInsert, Table: table, Row: row})
}

// Update queues a column update.
func (p *Pipeline) Update(table string, pk float64, col int, v float64) {
	p.add(proto.Request{Type: proto.ReqUpdate, Table: table, PK: pk, Col: uint16(col), Value: v})
}

// Delete queues a delete.
func (p *Pipeline) Delete(table string, pk float64) {
	p.add(proto.Request{Type: proto.ReqDelete, Table: table, PK: pk})
}

// Op queues any batchable op.
func (p *Pipeline) Op(op Op) { p.add(op.toRequest()) }

// Len reports the number of queued requests.
func (p *Pipeline) Len() int { return len(p.reqs) }

func (p *Pipeline) add(r proto.Request) { p.reqs = append(p.reqs, r) }

// Flush writes every queued request, reads every response in order, and
// resets the pipeline. Per-request failures (including overload
// rejections) land in the matching Result.Err; the returned error is a
// transport failure only.
func (p *Pipeline) Flush() ([]Result, error) {
	if p.err != nil {
		return nil, p.err
	}
	n := len(p.reqs)
	for i := range p.reqs {
		if err := proto.WriteRequest(p.c.bw, &p.reqs[i]); err != nil {
			p.err = err
			return nil, err
		}
	}
	p.reqs = p.reqs[:0]
	if err := p.c.bw.Flush(); err != nil {
		p.err = err
		return nil, err
	}
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		resp, err := proto.ReadResponse(p.c.br)
		if err != nil {
			p.err = err
			return nil, err
		}
		results[i] = resultOf(resp)
	}
	return results, nil
}
