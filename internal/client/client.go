// Package client is the Go client for hermitd's binary protocol. A Conn
// is one session: dial with Dial, issue requests with the typed methods,
// batch round trips with Pipeline, and run multi-statement transactions
// with Begin. A Conn is not safe for concurrent use — open one per
// goroutine (connections are cheap; the server multiplexes sessions).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"hermit/internal/server/proto"
)

// Sentinel errors a Conn maps wire error codes onto. Test with errors.Is;
// the full server message rides along in the wrapped Error.
var (
	// ErrOverloaded: admission control shed the request; back off and retry.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrQuota: the tenant's op quota is exhausted.
	ErrQuota = errors.New("client: tenant quota exhausted")
	// ErrConflict: first-committer-wins write-write conflict.
	ErrConflict = errors.New("client: write conflict")
	// ErrAborted: a sibling mutation aborted this op's atomic batch.
	ErrAborted = errors.New("client: batch aborted")
	// ErrNoTable: no such table in this tenant's namespace.
	ErrNoTable = errors.New("client: no such table")
	// ErrTxnUnknown: the transaction is not open on the server.
	ErrTxnUnknown = errors.New("client: unknown or finished transaction")
	// ErrDraining: the server is shutting down.
	ErrDraining = errors.New("client: server draining")
	// ErrDupKey: insert collided with an existing primary key (or table).
	ErrDupKey = errors.New("client: duplicate key")
	// ErrNotLeader: the node is a read-only replication follower; retry
	// the write against the leader.
	ErrNotLeader = errors.New("client: node is not the leader")
	// ErrFenced: the peer was fenced by a newer leader epoch.
	ErrFenced = errors.New("client: fenced by a newer epoch")
)

// Error is a server-reported failure (any RespError), wrapping the
// matching sentinel when one exists.
type Error struct {
	Code proto.ErrCode
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("server error %d: %s", e.Code, e.Msg) }

// Unwrap maps the code onto a sentinel so errors.Is works.
func (e *Error) Unwrap() error {
	switch e.Code {
	case proto.CodeOverloaded:
		return ErrOverloaded
	case proto.CodeQuota:
		return ErrQuota
	case proto.CodeConflict:
		return ErrConflict
	case proto.CodeAborted:
		return ErrAborted
	case proto.CodeNoTable:
		return ErrNoTable
	case proto.CodeTxnUnknown:
		return ErrTxnUnknown
	case proto.CodeDraining:
		return ErrDraining
	case proto.CodeDupKey:
		return ErrDupKey
	case proto.CodeNotLeader:
		return ErrNotLeader
	case proto.CodeFenced:
		return ErrFenced
	}
	return nil
}

// Options configures a Conn.
type Options struct {
	// Tenant is the namespace the session binds to ("" = the default
	// namespace). Sent as the session's first request.
	Tenant string
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
}

// Conn is one client session. Not safe for concurrent use.
type Conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	// wbuf/rbuf are the frame encode/decode scratch buffers. The Conn is
	// single-goroutine by contract, so plain fields suffice; oversized
	// buffers are dropped after use (see maxRetainedBuf).
	wbuf, rbuf []byte
}

// maxRetainedBuf caps the frame scratch a Conn keeps between requests
// (frames run up to proto.MaxFrame = 16 MiB; a rare huge row set should
// not pin that footprint on an idle connection).
const maxRetainedBuf = 64 << 10

// Dial connects to a hermitd address and binds the tenant namespace.
func Dial(addr string, opts Options) (*Conn, error) {
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		c:  nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
	if opts.Tenant != "" {
		if _, err := c.roundTrip(&proto.Request{Type: proto.ReqHello, Tenant: opts.Tenant}); err != nil {
			nc.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close closes the connection. Transactions still open server-side are
// rolled back by the session teardown.
func (c *Conn) Close() error { return c.c.Close() }

// roundTrip writes one request, flushes, and reads one response,
// converting RespError into *Error. Request frames encode into the
// connection's reused scratch, so a steady-state round trip allocates
// only the decoded response.
func (c *Conn) roundTrip(r *proto.Request) (proto.Response, error) {
	frame, err := proto.AppendRequest(c.wbuf[:0], r)
	if err != nil {
		return proto.Response{}, err
	}
	if cap(frame) <= maxRetainedBuf {
		c.wbuf = frame
	} else {
		c.wbuf = nil
	}
	if _, err := c.bw.Write(frame); err != nil {
		return proto.Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return proto.Response{}, err
	}
	return c.readResponse()
}

func (c *Conn) readResponse() (proto.Response, error) {
	payload, err := proto.ReadFrameBuf(c.br, c.rbuf)
	if err != nil {
		return proto.Response{}, err
	}
	if cap(payload) <= maxRetainedBuf {
		c.rbuf = payload // decoded responses never alias the payload
	} else {
		c.rbuf = nil
	}
	resp, err := proto.DecodeResponse(payload)
	if err != nil {
		return proto.Response{}, err
	}
	if resp.Type == proto.RespError {
		return resp, &Error{Code: resp.Code, Msg: resp.Msg}
	}
	return resp, nil
}

// Ping round-trips a no-op.
func (c *Conn) Ping() error {
	_, err := c.roundTrip(&proto.Request{Type: proto.ReqPing})
	return err
}

// LSN returns the node's replication watermark: its last written LSN on a
// leader, its applied LSN on a follower. Reads against a follower are
// consistent as of its watermark.
func (c *Conn) LSN() (uint64, error) {
	resp, err := c.roundTrip(&proto.Request{Type: proto.ReqLSN})
	if err != nil {
		return 0, err
	}
	return resp.LSN, nil
}

// Point returns the rows where column col equals v.
func (c *Conn) Point(table string, col int, v float64) ([][]float64, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: proto.ReqPoint, Table: table, Col: uint16(col), Lo: v,
	})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Range returns the rows where column col is in [lo, hi].
func (c *Conn) Range(table string, col int, lo, hi float64) ([][]float64, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: proto.ReqRange, Table: table, Col: uint16(col), Lo: lo, Hi: hi,
	})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Range2 returns the rows matching both column ranges conjunctively.
func (c *Conn) Range2(table string, col int, lo, hi float64, bcol int, blo, bhi float64) ([][]float64, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: proto.ReqRange2, Table: table,
		Col: uint16(col), Lo: lo, Hi: hi,
		BCol: uint16(bcol), BLo: blo, BHi: bhi,
	})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Insert appends a row.
func (c *Conn) Insert(table string, row []float64) error {
	_, err := c.roundTrip(&proto.Request{Type: proto.ReqInsert, Table: table, Row: row})
	return err
}

// Update sets column col of the row with primary key pk to v.
func (c *Conn) Update(table string, pk float64, col int, v float64) error {
	_, err := c.roundTrip(&proto.Request{
		Type: proto.ReqUpdate, Table: table, PK: pk, Col: uint16(col), Value: v,
	})
	return err
}

// Delete removes the row with primary key pk, reporting whether it existed.
func (c *Conn) Delete(table string, pk float64) (bool, error) {
	resp, err := c.roundTrip(&proto.Request{Type: proto.ReqDelete, Table: table, PK: pk})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// CreateTable creates a table in the session's namespace. parts 0 makes a
// plain table; parts >= 1 a hash-partitioned one.
func (c *Conn) CreateTable(table string, cols []string, pkCol, parts int) error {
	_, err := c.roundTrip(&proto.Request{
		Type: proto.ReqCreateTable, Table: table, Cols: cols,
		PKCol: uint16(pkCol), Parts: uint16(parts),
	})
	return err
}

// CreateBTreeIndex creates a complete B+-tree index on col.
func (c *Conn) CreateBTreeIndex(table string, col int) error {
	_, err := c.roundTrip(&proto.Request{
		Type: proto.ReqCreateIndex, Table: table, Kind: proto.IndexBTree, Col: uint16(col),
	})
	return err
}

// CreateHermitIndex creates a succinct Hermit index on col hosted by the
// complete index on host.
func (c *Conn) CreateHermitIndex(table string, col, host int) error {
	_, err := c.roundTrip(&proto.Request{
		Type: proto.ReqCreateIndex, Table: table, Kind: proto.IndexHermit,
		Col: uint16(col), Host: uint16(host),
	})
	return err
}
