package client

import (
	"hermit/internal/server/proto"
)

// Txn is a server-side transaction bound to the connection's session:
// snapshot-isolated reads at the transaction's begin timestamp, buffered
// writes, first-committer-wins commit (Commit returns ErrConflict on a
// write-write race). The transaction holds a snapshot on the server until
// Commit or Rollback — abandoning one (or dropping the connection) is
// safe, the session teardown rolls it back — but holding it open pins the
// server's version GC horizon.
type Txn struct {
	c    *Conn
	id   uint64
	done bool
}

// Begin opens a transaction on the session.
func (c *Conn) Begin() (*Txn, error) {
	resp, err := c.roundTrip(&proto.Request{Type: proto.ReqTxnBegin})
	if err != nil {
		return nil, err
	}
	return &Txn{c: c, id: resp.Txn}, nil
}

// Point is Conn.Point at the transaction's snapshot.
func (tx *Txn) Point(table string, col int, v float64) ([][]float64, error) {
	resp, err := tx.c.roundTrip(&proto.Request{
		Type: proto.ReqPoint, Txn: tx.id, Table: table, Col: uint16(col), Lo: v,
	})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Range is Conn.Range at the transaction's snapshot.
func (tx *Txn) Range(table string, col int, lo, hi float64) ([][]float64, error) {
	resp, err := tx.c.roundTrip(&proto.Request{
		Type: proto.ReqRange, Txn: tx.id, Table: table, Col: uint16(col), Lo: lo, Hi: hi,
	})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Insert buffers an insert into the transaction.
func (tx *Txn) Insert(table string, row []float64) error {
	_, err := tx.c.roundTrip(&proto.Request{
		Type: proto.ReqInsert, Txn: tx.id, Table: table, Row: row,
	})
	return err
}

// Update buffers a column update into the transaction.
func (tx *Txn) Update(table string, pk float64, col int, v float64) error {
	_, err := tx.c.roundTrip(&proto.Request{
		Type: proto.ReqUpdate, Txn: tx.id, Table: table, PK: pk, Col: uint16(col), Value: v,
	})
	return err
}

// Delete buffers a delete, reporting whether the row is visible to the
// transaction's snapshot (and not already deleted by it).
func (tx *Txn) Delete(table string, pk float64) (bool, error) {
	resp, err := tx.c.roundTrip(&proto.Request{
		Type: proto.ReqDelete, Txn: tx.id, Table: table, PK: pk,
	})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// Commit publishes the transaction's writes atomically. ErrConflict means
// a first-committer-wins race was lost and nothing was applied. The
// transaction is finished either way.
func (tx *Txn) Commit() error {
	tx.done = true
	_, err := tx.c.roundTrip(&proto.Request{Type: proto.ReqTxnCommit, Txn: tx.id})
	return err
}

// Rollback discards the transaction. Calling it after Commit (e.g. via
// defer) is a no-op.
func (tx *Txn) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	_, err := tx.c.roundTrip(&proto.Request{Type: proto.ReqTxnRollback, Txn: tx.id})
	return err
}
