// Package scenario is the trace-driven workload harness: a declarative
// JSON spec (key distribution, op mix with transaction batches, arrival
// pattern, tenants, value sizes, op budgets) compiles into a fully
// deterministic seeded op trace, and the trace replays against any target
// — the embedded engine, a durable or partitioned database, or a hermitd
// deployment over the wire (single node or a replicated cluster) — while
// recording per-op latencies so results report p50/p99/p999, the SLO
// language of serving systems, instead of mean ops/sec.
//
// The design is generate-then-replay (ReqBench-style): every random draw
// happens at compile time from the spec's seed, so the op stream is
// byte-identical across runs and across targets; the trace hash proves
// it. Replay only spends wall clock and records what it observed.
package scenario

import (
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strings"
)

// Target kinds a spec can name. The embedded kinds are built by this
// package; the wire kinds only need an address, so the harness stays
// deployment-agnostic.
const (
	// TargetEmbed replays against an in-memory engine.DB (or
	// partition.New tables when the spec partitions).
	TargetEmbed = "embed"
	// TargetDurable replays against a WAL-backed engine.DurableDB under a
	// temp dir (partitioned when the spec says so).
	TargetDurable = "durable"
	// TargetWire replays through internal/client against a hermitd
	// endpoint.
	TargetWire = "wire"
	// TargetCluster replays through client.DialCluster against a leader
	// plus followers with optional read-your-writes.
	TargetCluster = "cluster"
)

// Key distribution kinds.
const (
	// KeyUniform draws keys uniformly over the populated key space.
	KeyUniform = "uniform"
	// KeyZipf draws Zipf-ranked keys (rank 0 = hottest = key 0).
	KeyZipf = "zipf"
	// KeyRecent draws Zipf-ranked keys anchored at the newest key (rank
	// 0 = most recently inserted) — the time-series read pattern.
	KeyRecent = "recent"
	// KeyHotset sends HotProb of the draws into the first HotFraction of
	// the key space and the rest uniform — a two-tier hot/cold skew.
	KeyHotset = "hotset"
)

// Arrival kinds.
const (
	// ArrivalClosed is closed-loop: Workers goroutines issue ops
	// back-to-back; latency is service time.
	ArrivalClosed = "closed"
	// ArrivalPoisson is open-loop: ops arrive on a precomputed Poisson
	// schedule at RatePerSec (optionally bursty); latency is measured
	// from the scheduled arrival, so queueing delay counts (no
	// coordinated omission).
	ArrivalPoisson = "poisson"
)

// Spec is a complete scenario: one table shape shared by every tenant,
// plus an ordered list of phases replayed back to back.
type Spec struct {
	// Name identifies the scenario (canned specs are looked up by it).
	Name string `json:"name"`
	// Description says what the scenario exercises.
	Description string `json:"description,omitempty"`
	// Seed feeds every random draw at compile time. The compiled trace
	// is a pure function of (Spec, Seed, scale).
	Seed int64 `json:"seed"`
	// Target selects the default replay target kind (TargetEmbed when
	// empty). The caller may override it.
	Target string `json:"target,omitempty"`
	// Tenants is how many per-tenant tables the scenario spreads over
	// (default 1). Tenant i's table is named "ten<i>".
	Tenants int `json:"tenants,omitempty"`
	// Table is the shared table shape.
	Table TableSpec `json:"table"`
	// Advisor enables the self-tuning advisor on embedded targets, for
	// convergence scenarios (ignored over the wire).
	Advisor bool `json:"advisor,omitempty"`
	// Phases run in order; each reports its own latency quantiles.
	Phases []PhaseSpec `json:"phases"`
}

// TableSpec is the table shape every tenant gets.
type TableSpec struct {
	// ValueCols is how many payload columns follow the primary key — the
	// value-size knob (row width = 1 + ValueCols).
	ValueCols int `json:"value_cols"`
	// Partitions > 0 hash-partitions each table.
	Partitions int `json:"partitions,omitempty"`
	// BTreeCols are secondary B+-tree indexes built at setup.
	BTreeCols []int `json:"btree_cols,omitempty"`
	// Correlated makes column 1 a linear function of column 2
	// (col1 = 2*col2 + 100, col2 uniform in [0, 1000)) — the paper's
	// Synthetic-Linear pair, so the advisor can discover a Hermit index.
	// Requires ValueCols >= 2.
	Correlated bool `json:"correlated,omitempty"`
}

// PhaseSpec is one replay phase.
type PhaseSpec struct {
	// Name labels the phase in results ("load", "steady", ...).
	Name string `json:"name"`
	// Ops is the phase's nominal op budget; the compiler scales it (with
	// a floor) so one spec serves laptop smoke runs and full sweeps.
	Ops int `json:"ops"`
	// Arrival is the arrival pattern (closed-loop default).
	Arrival ArrivalSpec `json:"arrival"`
	// Keys is the key distribution reads/updates/deletes draw from.
	// Inserts always append the next sequential key.
	Keys KeySpec `json:"keys"`
	// Mix weights the op kinds; weights are normalized.
	Mix MixSpec `json:"mix"`
	// Selectivity is the fraction of the populated key space (or the
	// query column's domain) a range predicate covers (default 0.01).
	Selectivity float64 `json:"selectivity,omitempty"`
	// QueryCol is the column queries predicate on (0 = primary key).
	QueryCol int `json:"query_col,omitempty"`
	// TxnOps is how many read-modify-write member ops a txn batch holds
	// (default 4).
	TxnOps int `json:"txn_ops,omitempty"`
	// TenantWeights biases the per-op tenant draw (len == Tenants;
	// uniform when empty) — the noisy-neighbor knob.
	TenantWeights []float64 `json:"tenant_weights,omitempty"`
}

// ArrivalSpec is a phase's arrival pattern.
type ArrivalSpec struct {
	// Kind is ArrivalClosed or ArrivalPoisson (default closed).
	Kind string `json:"kind,omitempty"`
	// Workers is the replay concurrency: closed-loop goroutines, or the
	// open-loop executor pool (default 4).
	Workers int `json:"workers,omitempty"`
	// RatePerSec is the open-loop base arrival rate (required for
	// poisson). It is not scaled: op budgets shrink at small scales, the
	// offered load per second does not.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst overlays periodic rate multiplication on the schedule.
	Burst *BurstSpec `json:"burst,omitempty"`
}

// BurstSpec describes periodic open-loop bursts: every EveryMS
// milliseconds the arrival rate multiplies by Factor for DurationMS.
type BurstSpec struct {
	// EveryMS is the burst period in milliseconds.
	EveryMS int `json:"every_ms"`
	// DurationMS is how long each burst lasts.
	DurationMS int `json:"duration_ms"`
	// Factor multiplies the base rate during the burst.
	Factor float64 `json:"factor"`
}

// KeySpec is a phase's key distribution.
type KeySpec struct {
	// Kind is one of KeyUniform, KeyZipf, KeyRecent, KeyHotset (default
	// uniform).
	Kind string `json:"kind,omitempty"`
	// Zipf is the Zipf s parameter (> 1; default 1.2) for zipf/recent.
	Zipf float64 `json:"zipf,omitempty"`
	// HotFraction is the hot fraction of the key space (hotset only;
	// default 0.05).
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// HotProb is the probability a draw hits the hot set (hotset only;
	// default 0.9).
	HotProb float64 `json:"hot_prob,omitempty"`
}

// MixSpec weights a phase's op kinds. Zero-valued kinds never occur;
// weights need not sum to 1.
type MixSpec struct {
	// Point weights single-key equality reads.
	Point float64 `json:"point,omitempty"`
	// Range weights range scans.
	Range float64 `json:"range,omitempty"`
	// Insert weights sequential-key appends.
	Insert float64 `json:"insert,omitempty"`
	// Update weights single-column updates.
	Update float64 `json:"update,omitempty"`
	// Delete weights single-key deletes.
	Delete float64 `json:"delete,omitempty"`
	// Txn weights atomic read-modify-write batches of TxnOps members
	// (contended txns produce first-committer-wins aborts).
	Txn float64 `json:"txn,omitempty"`
}

// sum returns the total mix weight.
func (m MixSpec) sum() float64 {
	return m.Point + m.Range + m.Insert + m.Update + m.Delete + m.Txn
}

// Parse decodes and validates a spec from JSON.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's invariants (after applying no defaults; the
// compiler applies defaults at compile time so the hash covers the raw
// spec).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	switch s.Target {
	case "", TargetEmbed, TargetDurable, TargetWire, TargetCluster:
	default:
		return fmt.Errorf("scenario %s: unknown target %q", s.Name, s.Target)
	}
	if s.Tenants < 0 || s.Tenants > 64 {
		return fmt.Errorf("scenario %s: tenants %d outside [0, 64]", s.Name, s.Tenants)
	}
	if s.Table.ValueCols < 1 || s.Table.ValueCols > 32 {
		return fmt.Errorf("scenario %s: value_cols %d outside [1, 32]", s.Name, s.Table.ValueCols)
	}
	if s.Table.Partitions < 0 {
		return fmt.Errorf("scenario %s: negative partitions", s.Name)
	}
	if s.Table.Correlated && s.Table.ValueCols < 2 {
		return fmt.Errorf("scenario %s: correlated needs value_cols >= 2", s.Name)
	}
	for _, col := range s.Table.BTreeCols {
		if col < 1 || col > s.Table.ValueCols {
			return fmt.Errorf("scenario %s: btree col %d outside value columns [1, %d]",
				s.Name, col, s.Table.ValueCols)
		}
	}
	if s.Advisor && (s.Target == TargetWire || s.Target == TargetCluster) {
		return fmt.Errorf("scenario %s: advisor runs in-process; wire targets cannot enable it", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	for i, ph := range s.Phases {
		if ph.Name == "" {
			return fmt.Errorf("scenario %s: phase %d needs a name", s.Name, i)
		}
		if ph.Ops <= 0 {
			return fmt.Errorf("scenario %s/%s: ops must be positive", s.Name, ph.Name)
		}
		switch ph.Arrival.Kind {
		case "", ArrivalClosed:
		case ArrivalPoisson:
			if ph.Arrival.RatePerSec <= 0 {
				return fmt.Errorf("scenario %s/%s: poisson arrival needs rate_per_sec", s.Name, ph.Name)
			}
			if b := ph.Arrival.Burst; b != nil {
				if b.EveryMS <= 0 || b.DurationMS <= 0 || b.DurationMS > b.EveryMS || b.Factor <= 0 {
					return fmt.Errorf("scenario %s/%s: invalid burst %+v", s.Name, ph.Name, *b)
				}
			}
		default:
			return fmt.Errorf("scenario %s/%s: unknown arrival kind %q", s.Name, ph.Name, ph.Arrival.Kind)
		}
		if ph.Arrival.Workers < 0 || ph.Arrival.Workers > 256 {
			return fmt.Errorf("scenario %s/%s: workers %d outside [0, 256]", s.Name, ph.Name, ph.Arrival.Workers)
		}
		switch ph.Keys.Kind {
		case "", KeyUniform, KeyHotset:
		case KeyZipf, KeyRecent:
			if ph.Keys.Zipf != 0 && ph.Keys.Zipf <= 1 {
				return fmt.Errorf("scenario %s/%s: zipf s must be > 1", s.Name, ph.Name)
			}
		default:
			return fmt.Errorf("scenario %s/%s: unknown key kind %q", s.Name, ph.Name, ph.Keys.Kind)
		}
		if ph.Keys.HotFraction < 0 || ph.Keys.HotFraction > 1 || ph.Keys.HotProb < 0 || ph.Keys.HotProb > 1 {
			return fmt.Errorf("scenario %s/%s: hotset parameters outside [0, 1]", s.Name, ph.Name)
		}
		if ph.Mix.sum() <= 0 {
			return fmt.Errorf("scenario %s/%s: empty op mix", s.Name, ph.Name)
		}
		neg := func(v float64) bool { return v < 0 }
		if neg(ph.Mix.Point) || neg(ph.Mix.Range) || neg(ph.Mix.Insert) ||
			neg(ph.Mix.Update) || neg(ph.Mix.Delete) || neg(ph.Mix.Txn) {
			return fmt.Errorf("scenario %s/%s: negative mix weight", s.Name, ph.Name)
		}
		if ph.Selectivity < 0 || ph.Selectivity > 1 {
			return fmt.Errorf("scenario %s/%s: selectivity %g outside [0, 1]", s.Name, ph.Name, ph.Selectivity)
		}
		if ph.QueryCol < 0 || ph.QueryCol > s.Table.ValueCols {
			return fmt.Errorf("scenario %s/%s: query_col %d outside [0, %d]",
				s.Name, ph.Name, ph.QueryCol, s.Table.ValueCols)
		}
		if ph.TxnOps < 0 || ph.TxnOps > 64 {
			return fmt.Errorf("scenario %s/%s: txn_ops %d outside [0, 64]", s.Name, ph.Name, ph.TxnOps)
		}
		if len(ph.TenantWeights) != 0 {
			tenants := s.Tenants
			if tenants == 0 {
				tenants = 1
			}
			if len(ph.TenantWeights) != tenants {
				return fmt.Errorf("scenario %s/%s: %d tenant weights for %d tenants",
					s.Name, ph.Name, len(ph.TenantWeights), tenants)
			}
			var sum float64
			for _, w := range ph.TenantWeights {
				if w < 0 {
					return fmt.Errorf("scenario %s/%s: negative tenant weight", s.Name, ph.Name)
				}
				sum += w
			}
			if sum <= 0 {
				return fmt.Errorf("scenario %s/%s: tenant weights sum to zero", s.Name, ph.Name)
			}
		}
	}
	return nil
}

// Hash returns the spec's canonical hash: sha256 over the struct's JSON
// encoding (stable field order), truncated to 16 hex digits. Two specs
// with the same hash compile to the same trace at the same scale.
func (s *Spec) Hash() string {
	data, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// TableName returns tenant i's table name.
func TableName(i int) string { return fmt.Sprintf("ten%d", i) }

// Columns returns the schema for the spec's table shape: pk, v1..vN.
func (s *Spec) Columns() []string {
	cols := make([]string, 0, 1+s.Table.ValueCols)
	cols = append(cols, "pk")
	for i := 1; i <= s.Table.ValueCols; i++ {
		cols = append(cols, fmt.Sprintf("v%d", i))
	}
	return cols
}

// tenantCount returns the effective tenant count (>= 1).
func (s *Spec) tenantCount() int {
	if s.Tenants <= 0 {
		return 1
	}
	return s.Tenants
}

//go:embed specs/*.json
var cannedFS embed.FS

// Canned returns the checked-in scenario spec with the given name.
func Canned(name string) (*Spec, error) {
	data, err := cannedFS.ReadFile("specs/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenario: no canned scenario %q (have %s)",
			name, strings.Join(CannedNames(), ", "))
	}
	return Parse(data)
}

// CannedNames lists the checked-in scenarios in name order.
func CannedNames() []string {
	entries, err := fs.ReadDir(cannedFS, "specs")
	if err != nil {
		panic(err) // embedded FS: cannot fail
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}
