package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the replayer. It executes a compiled trace against a
// Target phase by phase, recording one latency sample per op so callers
// can report tail quantiles. Two arrival modes:
//
//   - Closed-loop: Workers goroutines drain the op sequence back to
//     back; a sample is pure service time.
//   - Open-loop: a dispatcher releases ops on the compiled Poisson
//     schedule into a Workers-sized executor pool, and a sample runs
//     from the op's *scheduled* arrival to its completion — queueing
//     delay counts, so an overloaded target shows its real tail instead
//     of the coordinated-omission artifact where slow responses throttle
//     the load that would have measured them.

// PhaseResult is one phase's replay outcome.
type PhaseResult struct {
	// Name is the phase name.
	Name string `json:"name"`
	// OpenLoop reports the arrival mode replayed.
	OpenLoop bool `json:"open_loop"`
	// Ops is how many ops executed (txn batches count once).
	Ops int `json:"ops"`
	// Rows is the total rows touched (query matches + mutations).
	Rows int64 `json:"rows"`
	// Aborts counts transaction aborts — expected under contention.
	Aborts int `json:"aborts"`
	// Errors counts non-abort op failures.
	Errors int `json:"errors"`
	// Elapsed is the phase's wall-clock time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// LatenciesUS holds one sample per op, in microseconds, in
	// completion order (callers sort for quantiles).
	LatenciesUS []float64 `json:"-"`
}

// OpsPerSec is the phase's completed-op throughput.
func (p *PhaseResult) OpsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Ops) / p.Elapsed.Seconds()
}

// Result is a full scenario replay.
type Result struct {
	// Scenario is the spec name.
	Scenario string `json:"scenario"`
	// SpecHash identifies the spec replayed.
	SpecHash string `json:"spec_hash"`
	// TraceHash is the hash of the op stream this replay executed,
	// recomputed from the trace by the replayer itself — compare it
	// across runs (or targets) to prove both executed the same ops.
	TraceHash string `json:"trace_hash"`
	// Phases are the per-phase outcomes, in trace order.
	Phases []PhaseResult `json:"phases"`
}

// Replay executes the trace against the target: Setup, then each phase
// in order. The target is NOT closed — the caller owns it (it may want
// to inspect state, e.g. advisor-created indexes, before teardown).
func Replay(tr *Trace, tg Target) (*Result, error) {
	if err := tg.Setup(tr.Spec); err != nil {
		return nil, fmt.Errorf("scenario %s: setup: %w", tr.Spec.Name, err)
	}
	res := &Result{
		Scenario: tr.Spec.Name,
		SpecHash: tr.SpecHash,
		// Recompute rather than copy: the replayer vouches for the ops
		// it actually walked, not for what Compile claimed.
		TraceHash: tr.Hash(),
	}
	for i := range tr.Phases {
		pr, err := replayPhase(&tr.Phases[i], tg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s/%s: %w", tr.Spec.Name, tr.Phases[i].Name, err)
		}
		res.Phases = append(res.Phases, pr)
	}
	return res, nil
}

// replayPhase runs one phase with per-worker sessions.
func replayPhase(ph *Phase, tg Target) (PhaseResult, error) {
	workers := ph.Workers
	if workers > len(ph.Ops) {
		workers = len(ph.Ops)
	}
	if workers < 1 {
		workers = 1
	}
	sessions := make([]Session, workers)
	for i := range sessions {
		s, err := tg.Session()
		if err != nil {
			for _, open := range sessions[:i] {
				open.Close()
			}
			return PhaseResult{}, fmt.Errorf("session: %w", err)
		}
		sessions[i] = s
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	if ph.OpenLoop {
		return replayOpen(ph, sessions)
	}
	return replayClosed(ph, sessions)
}

// workerTally accumulates one worker's counts locally so the hot loop
// takes no locks; tallies merge after the pool drains.
type workerTally struct {
	rows   int64
	aborts int
	errs   int
	lats   []float64
	err    error
}

// apply executes one op into the tally; sched is the latency origin.
func (w *workerTally) apply(s Session, op *Op, sched time.Time) {
	rows, err := s.Apply(op)
	// Nanosecond-resolution samples in float microseconds: embedded ops
	// finish well under 1us, and truncation would collapse their p50 to 0.
	w.lats = append(w.lats, float64(time.Since(sched).Nanoseconds())/1e3)
	switch {
	case err == nil:
		w.rows += int64(rows)
	case IsAbort(err):
		w.aborts++
	default:
		w.errs++
		if w.err == nil {
			w.err = err
		}
	}
}

// replayClosed drains the op sequence across the sessions back to back.
func replayClosed(ph *Phase, sessions []Session) (PhaseResult, error) {
	var next atomic.Int64
	tallies := make([]workerTally, len(sessions))
	start := time.Now()
	var wg sync.WaitGroup
	for w := range sessions {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ph.Ops) {
					return
				}
				tallies[w].apply(sessions[w], &ph.Ops[i], time.Now())
			}
		}(w)
	}
	wg.Wait()
	return merge(ph, tallies, time.Since(start))
}

// replayOpen releases ops on the compiled schedule into an executor
// pool. The dispatcher never blocks on a slow executor — the channel is
// sized for the whole phase — so arrivals stay on schedule and queueing
// delay lands in the samples, where it belongs.
func replayOpen(ph *Phase, sessions []Session) (PhaseResult, error) {
	type job struct {
		op    *Op
		sched time.Time
	}
	jobs := make(chan job, len(ph.Ops))
	tallies := make([]workerTally, len(sessions))
	var wg sync.WaitGroup
	for w := range sessions {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				tallies[w].apply(sessions[w], j.op, j.sched)
			}
		}(w)
	}
	start := time.Now()
	for i := range ph.Ops {
		op := &ph.Ops[i]
		sched := start.Add(time.Duration(op.ArrivalUS) * time.Microsecond)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		jobs <- job{op: op, sched: sched}
	}
	close(jobs)
	wg.Wait()
	return merge(ph, tallies, time.Since(start))
}

// merge folds the worker tallies into the phase result. A phase with
// nothing but errors fails loudly; scattered errors are reported in the
// counts and left to the caller's judgement.
func merge(ph *Phase, tallies []workerTally, elapsed time.Duration) (PhaseResult, error) {
	pr := PhaseResult{
		Name:     ph.Name,
		OpenLoop: ph.OpenLoop,
		Ops:      len(ph.Ops),
		Elapsed:  elapsed,
	}
	var firstErr error
	for i := range tallies {
		t := &tallies[i]
		pr.Rows += t.rows
		pr.Aborts += t.aborts
		pr.Errors += t.errs
		pr.LatenciesUS = append(pr.LatenciesUS, t.lats...)
		if firstErr == nil {
			firstErr = t.err
		}
	}
	if pr.Errors > 0 && pr.Errors >= pr.Ops/2 {
		return pr, fmt.Errorf("%d of %d ops failed; first: %w", pr.Errors, pr.Ops, firstErr)
	}
	return pr, nil
}
