package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"math/rand"
)

// This file is the trace compiler. Compile turns a Spec into the exact op
// sequence replay will execute: every random draw (tenant, key, op kind,
// predicate, value, arrival time) is made here from the spec's seed, so
// the trace — and its hash — is a pure function of (spec, scale). Replay
// spends no randomness at all; two replays of one trace against two
// different targets execute byte-identical op streams.

// Compiler defaults, applied at compile time so the spec hash covers the
// raw spec exactly as written.
const (
	defaultWorkers     = 4
	defaultTxnOps      = 4
	defaultSelectivity = 0.01
	defaultZipfS       = 1.2
	defaultHotFraction = 0.05
	defaultHotProb     = 0.9
	// opsFloor keeps per-phase sample counts statistically meaningful at
	// tiny scales (mirrors bench.Config.rows's floor).
	opsFloor = 200
	// valueDomain is the half-open range [0, valueDomain) payload columns
	// draw from (col 1 is 2*col2+100 when the table is correlated).
	valueDomain = 1000.0
)

// OpKind is a compiled op's kind.
type OpKind uint8

// Compiled op kinds.
const (
	// OpPoint is an equality read on Col at Key.
	OpPoint OpKind = iota
	// OpRange is a range read on Col over [Lo, Hi].
	OpRange
	// OpInsert appends Row (Row[0] is the sequential key).
	OpInsert
	// OpUpdate sets Col of the row keyed Key to Val.
	OpUpdate
	// OpDelete removes the row keyed Key.
	OpDelete
	// OpTxn atomically executes Members (a read-modify-write batch);
	// first-committer-wins conflicts abort the whole batch.
	OpTxn
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpPoint:
		return "point"
	case OpRange:
		return "range"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "txn"
	}
}

// Op is one compiled operation. Exactly the fields its Kind names are
// meaningful; the rest stay zero so the encoding is canonical.
type Op struct {
	// Tenant selects the target table (TableName(Tenant)).
	Tenant int
	// Kind is the op kind.
	Kind OpKind
	// Col is the predicate or update column.
	Col int
	// Key is the point/update/delete key.
	Key float64
	// Lo, Hi bound a range predicate.
	Lo, Hi float64
	// Val is the update value.
	Val float64
	// Row is the insert payload (Row[0] = key).
	Row []float64
	// Members are a txn's inner ops (never nested).
	Members []Op
	// ArrivalUS is the scheduled arrival offset from phase start in
	// microseconds (open-loop phases only; -1 when closed-loop).
	ArrivalUS int64
}

// Phase is one compiled phase: the ops plus the replay parameters that
// survived default application.
type Phase struct {
	// Name is the phase's spec name.
	Name string
	// OpenLoop reports Poisson-scheduled arrivals (ArrivalUS set).
	OpenLoop bool
	// Workers is the replay concurrency.
	Workers int
	// Ops is the compiled op sequence, in arrival order.
	Ops []Op
}

// Trace is a compiled scenario.
type Trace struct {
	// Spec is the source spec.
	Spec *Spec
	// SpecHash is Spec.Hash().
	SpecHash string
	// TraceHash is Hash() — the determinism witness.
	TraceHash string
	// Phases are the compiled phases, in spec order.
	Phases []Phase
}

// Ops returns the total op count across phases.
func (tr *Trace) Ops() int {
	n := 0
	for _, ph := range tr.Phases {
		n += len(ph.Ops)
	}
	return n
}

// Compile expands the spec into its deterministic op trace. scale
// multiplies every phase's op budget (<= 0 means 1.0) with a floor of
// 200 ops per phase; it is part of the trace identity, so a trace hash
// only reproduces at the same scale.
func Compile(spec *Spec, scale float64) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = 1
	}
	c := &compiler{
		spec:      spec,
		rng:       rand.New(rand.NewSource(spec.Seed)),
		populated: make([]int, spec.tenantCount()),
	}
	tr := &Trace{Spec: spec, SpecHash: spec.Hash()}
	for i := range spec.Phases {
		ph, err := c.compilePhase(&spec.Phases[i], scale)
		if err != nil {
			return nil, err
		}
		tr.Phases = append(tr.Phases, ph)
	}
	tr.TraceHash = tr.Hash()
	return tr, nil
}

// compiler carries the evolving compile state: one rng for every draw and
// the per-tenant populated key counts (inserts append key = populated).
type compiler struct {
	spec      *Spec
	rng       *rand.Rand
	populated []int
}

// compilePhase expands one phase.
func (c *compiler) compilePhase(ps *PhaseSpec, scale float64) (Phase, error) {
	n := int(float64(ps.Ops) * scale)
	if n < opsFloor {
		n = opsFloor
	}
	workers := ps.Arrival.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	ph := Phase{
		Name:     ps.Name,
		OpenLoop: ps.Arrival.Kind == ArrivalPoisson,
		Workers:  workers,
		Ops:      make([]Op, 0, n),
	}
	arrive := c.arrivals(ps, n)
	for i := 0; i < n; i++ {
		op := c.compileOp(ps)
		op.ArrivalUS = arrive[i]
		ph.Ops = append(ph.Ops, op)
	}
	return ph, nil
}

// arrivals precomputes the phase's arrival offsets: -1 for every op when
// closed-loop, else a Poisson schedule at RatePerSec with the burst
// overlay multiplying the instantaneous rate.
func (c *compiler) arrivals(ps *PhaseSpec, n int) []int64 {
	out := make([]int64, n)
	if ps.Arrival.Kind != ArrivalPoisson {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	tUS := 0.0
	for i := 0; i < n; i++ {
		rate := ps.Arrival.RatePerSec
		if b := ps.Arrival.Burst; b != nil {
			period := float64(b.EveryMS) * 1000
			if math.Mod(tUS, period) < float64(b.DurationMS)*1000 {
				rate *= b.Factor
			}
		}
		// Inverse-CDF exponential inter-arrival; 1-U avoids ln(0).
		dtSec := -math.Log(1-c.rng.Float64()) / rate
		tUS += dtSec * 1e6
		out[i] = int64(tUS)
	}
	return out
}

// compileOp draws one op from the phase's mix. Ops that need an existing
// key compile as inserts while the chosen tenant's table is still empty,
// so a trace can never read ahead of its own writes.
func (c *compiler) compileOp(ps *PhaseSpec) Op {
	tenant := c.drawTenant(ps)
	kind := c.drawKind(ps)
	if c.populated[tenant] == 0 && kind != OpInsert {
		kind = OpInsert
	}
	switch kind {
	case OpInsert:
		return Op{Tenant: tenant, Kind: OpInsert, Row: c.nextRow(tenant)}
	case OpPoint:
		return Op{Tenant: tenant, Kind: OpPoint, Col: 0, Key: float64(c.drawKey(ps, tenant))}
	case OpRange:
		lo, hi, col := c.rangePredicate(ps, tenant)
		return Op{Tenant: tenant, Kind: OpRange, Col: col, Lo: lo, Hi: hi}
	case OpUpdate:
		return Op{
			Tenant: tenant, Kind: OpUpdate, Col: 1,
			Key: float64(c.drawKey(ps, tenant)),
			Val: c.rng.Float64() * valueDomain,
		}
	case OpDelete:
		// Deletes target a drawn key but never shrink populated: the key
		// space stays append-only so later draws remain in range (a
		// second delete of the same key is a found=false no-op).
		return Op{Tenant: tenant, Kind: OpDelete, Key: float64(c.drawKey(ps, tenant))}
	default: // OpTxn
		txnOps := ps.TxnOps
		if txnOps <= 0 {
			txnOps = defaultTxnOps
		}
		members := make([]Op, 0, txnOps+1)
		first := float64(c.drawKey(ps, tenant))
		// Read-modify-write: one read anchors the snapshot, then txnOps
		// updates on distribution-drawn keys; under contention two such
		// batches collide on hot keys and one aborts.
		members = append(members, Op{Tenant: tenant, Kind: OpPoint, Col: 0, Key: first})
		for j := 0; j < txnOps; j++ {
			key := first
			if j > 0 {
				key = float64(c.drawKey(ps, tenant))
			}
			members = append(members, Op{
				Tenant: tenant, Kind: OpUpdate, Col: 1,
				Key: key, Val: c.rng.Float64() * valueDomain,
			})
		}
		return Op{Tenant: tenant, Kind: OpTxn, Members: members}
	}
}

// drawTenant picks the op's tenant, biased by TenantWeights when set.
func (c *compiler) drawTenant(ps *PhaseSpec) int {
	n := c.spec.tenantCount()
	if n == 1 {
		return 0
	}
	if len(ps.TenantWeights) == 0 {
		return c.rng.Intn(n)
	}
	var total float64
	for _, w := range ps.TenantWeights {
		total += w
	}
	r := c.rng.Float64() * total
	for i, w := range ps.TenantWeights {
		if r < w {
			return i
		}
		r -= w
	}
	return n - 1
}

// drawKind picks the op's kind from the normalized mix weights.
func (c *compiler) drawKind(ps *PhaseSpec) OpKind {
	m := ps.Mix
	r := c.rng.Float64() * m.sum()
	for _, e := range []struct {
		w float64
		k OpKind
	}{
		{m.Point, OpPoint}, {m.Range, OpRange}, {m.Insert, OpInsert},
		{m.Update, OpUpdate}, {m.Delete, OpDelete}, {m.Txn, OpTxn},
	} {
		if e.w <= 0 {
			continue
		}
		if r < e.w {
			return e.k
		}
		r -= e.w
	}
	return OpPoint
}

// drawKey draws an existing key index for the tenant from the phase's
// distribution over [0, populated).
func (c *compiler) drawKey(ps *PhaseSpec, tenant int) int {
	pop := c.populated[tenant]
	if pop <= 1 {
		return 0
	}
	switch ps.Keys.Kind {
	case KeyZipf:
		return c.zipfRank(ps, pop)
	case KeyRecent:
		// Rank 0 = newest key: the time-series pattern where readers
		// chase the append head.
		return pop - 1 - c.zipfRank(ps, pop)
	case KeyHotset:
		hotProb := ps.Keys.HotProb
		if hotProb == 0 {
			hotProb = defaultHotProb
		}
		hotFrac := ps.Keys.HotFraction
		if hotFrac == 0 {
			hotFrac = defaultHotFraction
		}
		if c.rng.Float64() < hotProb {
			hot := int(hotFrac * float64(pop))
			if hot < 1 {
				hot = 1
			}
			return c.rng.Intn(hot)
		}
		return c.rng.Intn(pop)
	default: // uniform
		return c.rng.Intn(pop)
	}
}

// zipfRank draws a Zipf rank in [0, pop). rand.NewZipf carries no state
// of its own (all state is in the rng), so constructing one per draw with
// the current key-space size stays deterministic.
func (c *compiler) zipfRank(ps *PhaseSpec, pop int) int {
	s := ps.Keys.Zipf
	if s == 0 {
		s = defaultZipfS
	}
	z := rand.NewZipf(c.rng, s, 1, uint64(pop-1))
	return int(z.Uint64())
}

// rangePredicate builds a range predicate for the phase: over the
// populated key space when QueryCol is 0 (start drawn from the key
// distribution, so skew concentrates scans too), else over the payload
// value domain.
func (c *compiler) rangePredicate(ps *PhaseSpec, tenant int) (lo, hi float64, col int) {
	sel := ps.Selectivity
	if sel == 0 {
		sel = defaultSelectivity
	}
	if ps.QueryCol == 0 {
		pop := float64(c.populated[tenant])
		width := sel * pop
		start := float64(c.drawKey(ps, tenant))
		if start+width > pop {
			start = pop - width
			if start < 0 {
				start = 0
			}
		}
		return start, start + width, 0
	}
	width := sel * valueDomain
	start := c.rng.Float64() * (valueDomain - width)
	return start, start + width, ps.QueryCol
}

// nextRow builds the tenant's next insert row: sequential key, payload
// columns uniform over the value domain — except the correlated pair,
// where col1 = 2*col2 + 100 (the paper's Synthetic-Linear shape).
func (c *compiler) nextRow(tenant int) []float64 {
	key := float64(c.populated[tenant])
	c.populated[tenant]++
	row := make([]float64, 1+c.spec.Table.ValueCols)
	row[0] = key
	for i := 1; i < len(row); i++ {
		row[i] = c.rng.Float64() * valueDomain
	}
	if c.spec.Table.Correlated {
		row[2] = c.rng.Float64() * valueDomain
		row[1] = 2*row[2] + 100
	}
	return row
}

// Hash returns the trace's determinism witness: sha256 over a canonical
// binary encoding of every phase and op in compile order, truncated to
// 16 hex digits. Two Compile calls agree on it iff they produced
// byte-identical op streams.
func (tr *Trace) Hash() string {
	h := sha256.New()
	for _, ph := range tr.Phases {
		h.Write([]byte(ph.Name))
		writeU64(h, uint64(len(ph.Ops)))
		for i := range ph.Ops {
			encodeOp(h, &ph.Ops[i])
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// encodeOp writes one op's canonical encoding (members one level deep;
// the compiler never nests txns).
func encodeOp(h hash.Hash, op *Op) {
	h.Write([]byte{byte(op.Kind)})
	writeU64(h, uint64(op.Tenant))
	writeU64(h, uint64(op.Col))
	writeF64(h, op.Key)
	writeF64(h, op.Lo)
	writeF64(h, op.Hi)
	writeF64(h, op.Val)
	writeU64(h, uint64(op.ArrivalUS))
	writeU64(h, uint64(len(op.Row)))
	for _, v := range op.Row {
		writeF64(h, v)
	}
	writeU64(h, uint64(len(op.Members)))
	for i := range op.Members {
		if len(op.Members[i].Members) != 0 {
			panic(fmt.Sprintf("scenario: nested txn members in %v", op.Kind))
		}
		encodeOp(h, &op.Members[i])
	}
}

func writeU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func writeF64(h hash.Hash, v float64) { writeU64(h, math.Float64bits(v)) }
