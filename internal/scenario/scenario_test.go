package scenario_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/scenario"
	"hermit/internal/server"
)

// testScale shrinks canned op budgets to the per-phase floor so the
// whole suite replays in well under a second per scenario.
const testScale = 0.001

// TestCannedSpecsRoundTrip: every checked-in spec must parse, validate,
// and survive a JSON round trip unchanged (DisallowUnknownFields in
// Parse catches typo'd knobs at decode time, this catches fields the
// struct encodes differently than the file spells them).
func TestCannedSpecsRoundTrip(t *testing.T) {
	names := scenario.CannedNames()
	if len(names) < 4 {
		t.Fatalf("want >= 4 canned scenarios, have %d: %v", len(names), names)
	}
	for _, name := range names {
		spec, err := scenario.Canned(name)
		if err != nil {
			t.Fatalf("canned %q: %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("canned %q: spec names itself %q (file and name field must agree)", name, spec.Name)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("canned %q: re-encode: %v", name, err)
		}
		again, err := scenario.Parse(data)
		if err != nil {
			t.Fatalf("canned %q: re-decode: %v", name, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Errorf("canned %q: round trip changed the spec:\n  was %+v\n  now %+v", name, spec, again)
		}
		if spec.Hash() != again.Hash() {
			t.Errorf("canned %q: round trip changed the spec hash", name)
		}
	}
}

// TestParseRejects covers the validator's fences.
func TestParseRejects(t *testing.T) {
	for _, tc := range []struct{ label, src string }{
		{"unknown field", `{"name":"x","seed":1,"table":{"value_cols":1},"phases":[{"name":"p","ops":10,"mix":{"point":1},"arival":{}}]}`},
		{"no phases", `{"name":"x","seed":1,"table":{"value_cols":1},"phases":[]}`},
		{"empty mix", `{"name":"x","seed":1,"table":{"value_cols":1},"phases":[{"name":"p","ops":10,"mix":{},"keys":{},"arrival":{}}]}`},
		{"poisson without rate", `{"name":"x","seed":1,"table":{"value_cols":1},"phases":[{"name":"p","ops":10,"mix":{"point":1},"keys":{},"arrival":{"kind":"poisson"}}]}`},
		{"zipf s below 1", `{"name":"x","seed":1,"table":{"value_cols":1},"phases":[{"name":"p","ops":10,"mix":{"point":1},"keys":{"kind":"zipf","zipf":0.5},"arrival":{}}]}`},
		{"advisor over the wire", `{"name":"x","seed":1,"target":"wire","advisor":true,"table":{"value_cols":1},"phases":[{"name":"p","ops":10,"mix":{"point":1},"keys":{},"arrival":{}}]}`},
		{"weights vs tenants", `{"name":"x","seed":1,"tenants":2,"table":{"value_cols":1},"phases":[{"name":"p","ops":10,"mix":{"point":1},"keys":{},"arrival":{},"tenant_weights":[1]}]}`},
		{"correlated needs cols", `{"name":"x","seed":1,"table":{"value_cols":1,"correlated":true},"phases":[{"name":"p","ops":10,"mix":{"point":1},"keys":{},"arrival":{}}]}`},
	} {
		if _, err := scenario.Parse([]byte(tc.src)); err == nil {
			t.Errorf("%s: Parse accepted an invalid spec", tc.label)
		}
	}
}

// TestCompileDeterminism: same spec + seed + scale → the same trace
// hash; a different seed or scale → a different op stream.
func TestCompileDeterminism(t *testing.T) {
	for _, name := range scenario.CannedNames() {
		spec, err := scenario.Canned(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := scenario.Compile(spec, testScale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := scenario.Compile(spec, testScale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.TraceHash != b.TraceHash {
			t.Errorf("%s: two compiles of one spec disagree: %s vs %s", name, a.TraceHash, b.TraceHash)
		}
		if a.Hash() != a.TraceHash {
			t.Errorf("%s: recomputed hash %s != compiled hash %s", name, a.Hash(), a.TraceHash)
		}
		reseeded := *spec
		reseeded.Seed += 1000
		c, err := scenario.Compile(&reseeded, testScale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.TraceHash == a.TraceHash {
			t.Errorf("%s: trace hash ignores the seed", name)
		}
	}
}

// TestCompileShapes spot-checks compiled op semantics: a load phase is
// all inserts with sequential keys, reads never reference keys the trace
// has not inserted, and open-loop phases carry a nondecreasing arrival
// schedule.
func TestCompileShapes(t *testing.T) {
	spec, err := scenario.Canned("timeseries")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := scenario.Compile(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	load := tr.Phases[0]
	next := 0.0
	for i := range load.Ops {
		op := &load.Ops[i]
		if op.Kind != scenario.OpInsert {
			t.Fatalf("load op %d: kind %v, want insert", i, op.Kind)
		}
		if op.Row[0] != next {
			t.Fatalf("load op %d: key %g, want sequential %g", i, op.Row[0], next)
		}
		if op.ArrivalUS != -1 {
			t.Fatalf("load op %d: closed-loop op has arrival %d", i, op.ArrivalUS)
		}
		next++
	}
	steady := tr.Phases[1]
	if !steady.OpenLoop {
		t.Fatal("steady phase should be open-loop")
	}
	populated := next
	var last int64
	for i := range steady.Ops {
		op := &steady.Ops[i]
		if op.ArrivalUS < last {
			t.Fatalf("steady op %d: arrival %d before previous %d", i, op.ArrivalUS, last)
		}
		last = op.ArrivalUS
		switch op.Kind {
		case scenario.OpInsert:
			if op.Row[0] != populated {
				t.Fatalf("steady op %d: insert key %g, want %g", i, op.Row[0], populated)
			}
			populated++
		case scenario.OpPoint:
			if op.Key < 0 || op.Key >= populated {
				t.Fatalf("steady op %d: point key %g outside populated [0, %g)", i, op.Key, populated)
			}
		}
	}
}

// startTestServer self-hosts a hermitd over a fresh durable engine and
// returns its address (the scenario package itself never imports the
// server — targets take addresses).
func startTestServer(t *testing.T) string {
	t.Helper()
	d, err := engine.OpenDurable(t.TempDir(), hermit.PhysicalPointers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := server.New(d, server.Options{MaxInflight: 1024, QueueDepth: 128, Workers: 2})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// replayOn compiles the named canned scenario and replays it on one
// target, asserting a clean run.
func replayOn(t *testing.T, name, kind string, opts scenario.TargetOptions) *scenario.Result {
	t.Helper()
	spec, err := scenario.Canned(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := scenario.Compile(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := scenario.NewTarget(kind, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tg.Close()
	res, err := scenario.Replay(tr, tg)
	if err != nil {
		t.Fatalf("%s on %s: %v", name, kind, err)
	}
	for _, ph := range res.Phases {
		if ph.Errors != 0 {
			t.Fatalf("%s on %s: phase %s had %d errors", name, kind, ph.Name, ph.Errors)
		}
		if len(ph.LatenciesUS) != ph.Ops {
			t.Fatalf("%s on %s: phase %s recorded %d samples for %d ops",
				name, kind, ph.Name, len(ph.LatenciesUS), ph.Ops)
		}
	}
	return res
}

// TestReplayDeterminismAcrossTargets is the PR's acceptance test: one
// spec, two full replays — embedded engine and over the wire against a
// self-hosted hermitd — must report byte-identical op-trace hashes, and
// both must match a third independent compile.
func TestReplayDeterminismAcrossTargets(t *testing.T) {
	embed := replayOn(t, "timeseries", scenario.TargetEmbed, scenario.TargetOptions{})
	wire := replayOn(t, "timeseries", scenario.TargetWire, scenario.TargetOptions{Addr: startTestServer(t)})
	if embed.TraceHash != wire.TraceHash {
		t.Fatalf("trace hash diverged across targets: embed %s vs wire %s", embed.TraceHash, wire.TraceHash)
	}
	spec, err := scenario.Canned("timeseries")
	if err != nil {
		t.Fatal(err)
	}
	check, err := scenario.Compile(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if check.TraceHash != embed.TraceHash {
		t.Fatalf("independent recompile hash %s != replayed hash %s", check.TraceHash, embed.TraceHash)
	}
	if embed.SpecHash != spec.Hash() {
		t.Fatalf("replay spec hash %s != spec hash %s", embed.SpecHash, spec.Hash())
	}
}

// TestReplayDurableWithTxns replays the contended OLTP scenario on the
// durable engine: aborts are an expected outcome (never errors), and the
// replay must still account one latency sample per op.
func TestReplayDurableWithTxns(t *testing.T) {
	res := replayOn(t, "zipf-oltp", scenario.TargetDurable, scenario.TargetOptions{Dir: t.TempDir()})
	contend := res.Phases[len(res.Phases)-1]
	if contend.Rows == 0 {
		t.Fatal("contended phase touched no rows")
	}
	t.Logf("contend: %d ops, %d aborts, %.0f ops/sec", contend.Ops, contend.Aborts, contend.OpsPerSec())
}

// TestReplayMultiTenantWire replays the noisy-neighbor scenario (4
// tenant tables, bursty open-loop arrivals, hotset keys) over the wire.
func TestReplayMultiTenantWire(t *testing.T) {
	res := replayOn(t, "noisy-neighbor", scenario.TargetWire, scenario.TargetOptions{Addr: startTestServer(t)})
	if got := len(res.Phases); got != 2 {
		t.Fatalf("want 2 phases, got %d", got)
	}
	if !res.Phases[1].OpenLoop {
		t.Fatal("noisy phase should replay open-loop")
	}
}

// TestReplayAdvisorScenario replays the bulk-load-then-advisor scenario
// embedded (the only place the advisor can run).
func TestReplayAdvisorScenario(t *testing.T) {
	replayOn(t, "bulkload-advisor", scenario.TargetEmbed, scenario.TargetOptions{})
}
