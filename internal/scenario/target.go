package scenario

import (
	"errors"
	"fmt"
	"time"

	"hermit/internal/advisor"
	"hermit/internal/client"
	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/partition"
)

// A Target is a deployment a trace replays against. Setup creates the
// spec's tables (and indexes, and the advisor when enabled); Session
// hands each replay worker its own handle — wire sessions are dedicated
// connections because client.Conn is not concurrency-safe, embedded
// sessions are thin wrappers over the thread-safe engine.
type Target interface {
	// Setup prepares the target for the spec's tables.
	Setup(spec *Spec) error
	// Session returns a per-worker handle.
	Session() (Session, error)
	// Close releases the target (advisors, connections, databases — but
	// not durable directories, which the caller owns).
	Close() error
}

// A Session executes ops for one replay worker.
type Session interface {
	// Apply executes one op and returns how many rows it touched.
	// Aborted transactions return an error satisfying IsAbort.
	Apply(op *Op) (rows int, err error)
	// Close releases the session.
	Close() error
}

// TargetOptions locates a target. Embedded kinds need nothing; durable
// needs Dir; wire needs Addr; cluster needs LeaderAddr (+ followers).
// The wire kinds take addresses only, so this package never imports the
// server — benches and tests self-host hermitd and pass its address in.
type TargetOptions struct {
	// Dir hosts a durable target's files.
	Dir string
	// Addr is a wire target's hermitd address.
	Addr string
	// LeaderAddr and FollowerAddrs locate a cluster target.
	LeaderAddr    string
	FollowerAddrs []string
	// ReadYourWrites enables the cluster's session-consistency mode.
	ReadYourWrites bool
}

// NewTarget builds a target of the given kind (TargetEmbed, ...).
func NewTarget(kind string, opts TargetOptions) (Target, error) {
	switch kind {
	case TargetEmbed:
		return &embedTarget{}, nil
	case TargetDurable:
		if opts.Dir == "" {
			return nil, fmt.Errorf("scenario: durable target needs a dir")
		}
		return &embedTarget{dir: opts.Dir}, nil
	case TargetWire:
		if opts.Addr == "" {
			return nil, fmt.Errorf("scenario: wire target needs an address")
		}
		return &wireTarget{opts: opts}, nil
	case TargetCluster:
		if opts.LeaderAddr == "" {
			return nil, fmt.Errorf("scenario: cluster target needs a leader address")
		}
		return &wireTarget{opts: opts, cluster: true}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown target kind %q", kind)
	}
}

// IsAbort reports whether an Apply error is a transaction abort — an
// expected outcome of contended txn scenarios, counted separately from
// real errors — at either the engine or the client layer.
func IsAbort(err error) bool {
	return errors.Is(err, engine.ErrTxnAborted) ||
		errors.Is(err, engine.ErrWriteConflict) ||
		errors.Is(err, client.ErrAborted) ||
		errors.Is(err, client.ErrConflict)
}

// table adapts the three embedded table flavours (engine, partitioned,
// durable flavours of both) behind one op surface.
type table interface {
	point(col int, v float64) (int, error)
	scan(col int, lo, hi float64) (int, error)
	insert(row []float64) error
	update(pk float64, col int, v float64) error
	del(pk float64) (bool, error)
	atomic(members []Op) error
}

// embedTarget hosts the in-process kinds: a volatile engine.DB when dir
// is empty, a WAL-backed DurableDB otherwise; per-tenant tables are
// hash-partitioned when the spec says so.
type embedTarget struct {
	dir      string
	d        *engine.DurableDB
	db       *engine.DB
	tables   []table
	advisors []*advisor.Advisor
}

// Setup implements Target.
func (t *embedTarget) Setup(spec *Spec) error {
	if t.dir != "" {
		d, err := engine.OpenDurable(t.dir, hermit.PhysicalPointers)
		if err != nil {
			return err
		}
		t.d = d
	} else {
		t.db = engine.NewDB(hermit.PhysicalPointers)
	}
	cols, parts := spec.Columns(), spec.Table.Partitions
	for i := 0; i < spec.tenantCount(); i++ {
		name := TableName(i)
		tb, err := t.createTable(name, cols, parts)
		if err != nil {
			return err
		}
		for _, col := range spec.Table.BTreeCols {
			if err := tb.(indexed).createBTree(col); err != nil {
				return err
			}
		}
		t.tables = append(t.tables, tb)
		if spec.Advisor {
			if pt, ok := tb.(*partTable); ok {
				t.advisors = append(t.advisors, pt.t.EnableAdvisor(advisorOpts()))
			}
		}
	}
	if spec.Advisor {
		// Non-partitioned tables share one DB-level advisor.
		switch {
		case t.d != nil && spec.Table.Partitions == 0:
			t.advisors = append(t.advisors, t.d.EnableAdvisor(advisorOpts()))
		case t.db != nil && spec.Table.Partitions == 0:
			t.advisors = append(t.advisors, t.db.EnableAdvisor(advisorOpts()))
		}
	}
	return nil
}

// advisorOpts is the advisor configuration convergence scenarios run
// with: a tight pass interval so auto-indexing lands inside a bench
// phase, deterministic sampling.
func advisorOpts() engine.AdvisorOptions {
	return engine.AdvisorOptions{
		Interval:   50 * time.Millisecond,
		MinQueries: 32,
		Seed:       1,
	}
}

// createTable creates one tenant table in whichever engine is open.
func (t *embedTarget) createTable(name string, cols []string, parts int) (table, error) {
	switch {
	case t.d != nil && parts > 0:
		pt, err := partition.CreateDurable(t.d, name, cols, 0, partition.Options{Partitions: parts})
		if err != nil {
			return nil, err
		}
		return &partTable{t: pt}, nil
	case t.d != nil:
		tb, err := t.d.CreateTable(name, cols, 0)
		if err != nil {
			return nil, err
		}
		return &engineTable{t: tb, d: t.d, name: name}, nil
	case parts > 0:
		pt, err := partition.New(hermit.PhysicalPointers, name, cols, 0, partition.Options{Partitions: parts})
		if err != nil {
			return nil, err
		}
		return &partTable{t: pt}, nil
	default:
		tb, err := t.db.CreateTable(name, cols, 0)
		if err != nil {
			return nil, err
		}
		return &engineTable{t: tb, db: t.db, name: name}, nil
	}
}

// Session implements Target; embedded sessions share the engine, which
// is safe for concurrent use.
func (t *embedTarget) Session() (Session, error) {
	return &embedSession{tables: t.tables}, nil
}

// Close implements Target.
func (t *embedTarget) Close() error {
	for _, a := range t.advisors {
		a.Stop()
	}
	if t.d != nil {
		return t.d.Close()
	}
	return nil
}

// indexed is the setup-time DDL surface of the embedded table adapters.
type indexed interface{ createBTree(col int) error }

// embedSession routes ops to the tenant's table adapter.
type embedSession struct{ tables []table }

// Apply implements Session.
func (s *embedSession) Apply(op *Op) (int, error) {
	tb := s.tables[op.Tenant]
	switch op.Kind {
	case OpPoint:
		return tb.point(op.Col, op.Key)
	case OpRange:
		return tb.scan(op.Col, op.Lo, op.Hi)
	case OpInsert:
		return 1, tb.insert(op.Row)
	case OpUpdate:
		return 1, tb.update(op.Key, op.Col, op.Val)
	case OpDelete:
		found, err := tb.del(op.Key)
		if err != nil {
			return 0, err
		}
		if found {
			return 1, nil
		}
		return 0, nil
	case OpTxn:
		return len(op.Members), tb.atomic(op.Members)
	default:
		return 0, fmt.Errorf("scenario: unknown op kind %d", op.Kind)
	}
}

// Close implements Session (embedded sessions hold no resources).
func (s *embedSession) Close() error { return nil }

// engineTable adapts a plain engine.Table; atomic batches go through the
// owning DB/DurableDB executor so they carry the table name.
type engineTable struct {
	t    *engine.Table
	db   *engine.DB
	d    *engine.DurableDB
	name string
}

func (e *engineTable) point(col int, v float64) (int, error) {
	rids, _, err := e.t.PointQuery(col, v)
	return len(rids), err
}

func (e *engineTable) scan(col int, lo, hi float64) (int, error) {
	rids, _, err := e.t.RangeQuery(col, lo, hi)
	return len(rids), err
}

func (e *engineTable) insert(row []float64) error {
	_, err := e.t.Insert(row)
	return err
}

func (e *engineTable) update(pk float64, col int, v float64) error {
	return e.t.UpdateColumn(pk, col, v)
}

func (e *engineTable) del(pk float64) (bool, error) { return e.t.Delete(pk) }

func (e *engineTable) createBTree(col int) error {
	_, err := e.t.CreateBTreeIndex(col, false)
	return err
}

func (e *engineTable) atomic(members []Op) error {
	ops := engineOps(members, e.name)
	var results []engine.OpResult
	if e.d != nil {
		results = e.d.ExecuteBatch(ops, 1)
	} else {
		results = e.db.ExecuteBatch(ops, 1)
	}
	return batchError(len(results), func(i int) error { return results[i].Err })
}

// partTable adapts a partitioned table (volatile or durable).
type partTable struct{ t *partition.Table }

func (p *partTable) point(col int, v float64) (int, error) {
	rids, _, err := p.t.PointQuery(col, v)
	return len(rids), err
}

func (p *partTable) scan(col int, lo, hi float64) (int, error) {
	rids, _, err := p.t.RangeQuery(col, lo, hi)
	return len(rids), err
}

func (p *partTable) insert(row []float64) error {
	_, err := p.t.Insert(row)
	return err
}

func (p *partTable) update(pk float64, col int, v float64) error {
	return p.t.UpdateColumn(pk, col, v)
}

func (p *partTable) del(pk float64) (bool, error) { return p.t.Delete(pk) }

func (p *partTable) createBTree(col int) error { return p.t.CreateBTreeIndex(col, false) }

func (p *partTable) atomic(members []Op) error {
	results := p.t.ExecuteBatch(engineOps(members, ""), 1)
	return batchError(len(results), func(i int) error { return results[i].Err })
}

// engineOps lowers compiled txn members to engine batch ops.
func engineOps(members []Op, tableName string) []engine.Op {
	ops := make([]engine.Op, len(members))
	for i, m := range members {
		switch m.Kind {
		case OpPoint:
			ops[i] = engine.Op{Table: tableName, Kind: engine.OpPoint, Col: m.Col, Lo: m.Key}
		case OpUpdate:
			ops[i] = engine.Op{Table: tableName, Kind: engine.OpUpdate, PK: m.Key, Col: m.Col, Value: m.Val}
		case OpInsert:
			ops[i] = engine.Op{Table: tableName, Kind: engine.OpInsert, Row: m.Row}
		case OpDelete:
			ops[i] = engine.Op{Table: tableName, Kind: engine.OpDelete, PK: m.Key}
		case OpRange:
			ops[i] = engine.Op{Table: tableName, Kind: engine.OpRange, Col: m.Col, Lo: m.Lo, Hi: m.Hi}
		}
	}
	return ops
}

// batchError folds a batch's per-op errors into one Apply error: aborts
// collapse to the abort (the whole batch rolled back — one logical
// outcome), anything else surfaces the first real failure.
func batchError(n int, errAt func(int) error) error {
	var abort error
	for i := 0; i < n; i++ {
		err := errAt(i)
		if err == nil {
			continue
		}
		if IsAbort(err) {
			abort = err
			continue
		}
		return err
	}
	return abort
}

// wireTarget replays over TCP: a single hermitd (cluster=false) or a
// replicated deployment via client.DialCluster. Setup DDL always goes to
// the leader; each session dials its own connection(s).
type wireTarget struct {
	opts    TargetOptions
	cluster bool
	spec    *Spec
}

// Setup implements Target: DDL over a short-lived leader connection.
func (t *wireTarget) Setup(spec *Spec) error {
	t.spec = spec
	addr := t.opts.Addr
	if t.cluster {
		addr = t.opts.LeaderAddr
	}
	conn, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	defer conn.Close()
	cols := spec.Columns()
	for i := 0; i < spec.tenantCount(); i++ {
		name := TableName(i)
		if err := conn.CreateTable(name, cols, 0, spec.Table.Partitions); err != nil {
			return err
		}
		for _, col := range spec.Table.BTreeCols {
			if err := conn.CreateBTreeIndex(name, col); err != nil {
				return err
			}
		}
	}
	return nil
}

// Session implements Target: one dedicated connection (or cluster of
// connections) per replay worker.
func (t *wireTarget) Session() (Session, error) {
	if t.cluster {
		cl, err := client.DialCluster(t.opts.LeaderAddr, t.opts.FollowerAddrs, client.ClusterOptions{
			ReadYourWrites: t.opts.ReadYourWrites,
		})
		if err != nil {
			return nil, err
		}
		return &wireSession{cl: cl}, nil
	}
	conn, err := client.Dial(t.opts.Addr, client.Options{})
	if err != nil {
		return nil, err
	}
	return &wireSession{conn: conn}, nil
}

// Close implements Target (per-session connections close with their
// sessions).
func (t *wireTarget) Close() error { return nil }

// wireSession holds one worker's connection: a Conn against a single
// node, or a Cluster that routes reads to followers.
type wireSession struct {
	conn *client.Conn
	cl   *client.Cluster
}

// Apply implements Session.
func (s *wireSession) Apply(op *Op) (int, error) {
	name := TableName(op.Tenant)
	switch op.Kind {
	case OpPoint:
		rows, err := s.point(name, op.Col, op.Key)
		return len(rows), err
	case OpRange:
		rows, err := s.scan(name, op.Col, op.Lo, op.Hi)
		return len(rows), err
	case OpInsert:
		return 1, s.insert(name, op.Row)
	case OpUpdate:
		return 1, s.update(name, op.Key, op.Col, op.Val)
	case OpDelete:
		found, err := s.del(name, op.Key)
		if err != nil {
			return 0, err
		}
		if found {
			return 1, nil
		}
		return 0, nil
	case OpTxn:
		return len(op.Members), s.atomic(name, op.Members)
	default:
		return 0, fmt.Errorf("scenario: unknown op kind %d", op.Kind)
	}
}

func (s *wireSession) point(table string, col int, v float64) ([][]float64, error) {
	if s.cl != nil {
		return s.cl.Point(table, col, v)
	}
	return s.conn.Point(table, col, v)
}

func (s *wireSession) scan(table string, col int, lo, hi float64) ([][]float64, error) {
	if s.cl != nil {
		return s.cl.Range(table, col, lo, hi)
	}
	return s.conn.Range(table, col, lo, hi)
}

func (s *wireSession) insert(table string, row []float64) error {
	if s.cl != nil {
		return s.cl.Insert(table, row)
	}
	return s.conn.Insert(table, row)
}

func (s *wireSession) update(table string, pk float64, col int, v float64) error {
	if s.cl != nil {
		return s.cl.Update(table, pk, col, v)
	}
	return s.conn.Update(table, pk, col, v)
}

func (s *wireSession) del(table string, pk float64) (bool, error) {
	if s.cl != nil {
		return s.cl.Delete(table, pk)
	}
	return s.conn.Delete(table, pk)
}

// atomic submits a txn's members as one server-side atomic batch
// (cluster writes go to the leader).
func (s *wireSession) atomic(table string, members []Op) error {
	conn := s.conn
	if s.cl != nil {
		conn = s.cl.Leader()
	}
	ops := make([]client.Op, len(members))
	for i, m := range members {
		switch m.Kind {
		case OpPoint:
			ops[i] = client.Op{Kind: client.OpPoint, Table: table, Col: m.Col, Lo: m.Key}
		case OpUpdate:
			ops[i] = client.Op{Kind: client.OpUpdate, Table: table, PK: m.Key, Col: m.Col, Value: m.Val}
		case OpInsert:
			ops[i] = client.Op{Kind: client.OpInsert, Table: table, Row: m.Row}
		case OpDelete:
			ops[i] = client.Op{Kind: client.OpDelete, Table: table, PK: m.Key}
		case OpRange:
			ops[i] = client.Op{Kind: client.OpRange, Table: table, Col: m.Col, Lo: m.Lo, Hi: m.Hi}
		}
	}
	results, err := conn.Batch(ops)
	if err != nil {
		return err
	}
	return batchError(len(results), func(i int) error { return results[i].Err })
}

// Close implements Session.
func (s *wireSession) Close() error {
	if s.cl != nil {
		return s.cl.Close()
	}
	return s.conn.Close()
}
