package cm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hermit/internal/btree"
	"hermit/internal/storage"
)

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(Config{TargetBucket: 0, HostBucket: 1}); err != ErrBadBuckets {
		t.Fatalf("want ErrBadBuckets, got %v", err)
	}
	if _, err := NewMap(Config{TargetBucket: 1, HostBucket: -1}); err != ErrBadBuckets {
		t.Fatalf("want ErrBadBuckets, got %v", err)
	}
}

func TestAddRemoveEntries(t *testing.T) {
	m, err := NewMap(Config{TargetBucket: 10, HostBucket: 10})
	if err != nil {
		t.Fatal(err)
	}
	m.Add(5, 5)  // buckets (0,0)
	m.Add(7, 3)  // same buckets
	m.Add(15, 5) // (1,0)
	if m.Entries() != 2 {
		t.Fatalf("entries=%d", m.Entries())
	}
	if !m.Remove(5, 5) {
		t.Fatal("remove existing")
	}
	if m.Entries() != 2 {
		t.Fatal("refcounted entry should survive one removal")
	}
	if !m.Remove(7, 3) {
		t.Fatal("remove second")
	}
	if m.Entries() != 1 {
		t.Fatalf("entries=%d after removing both", m.Entries())
	}
	if m.Remove(7, 3) {
		t.Fatal("remove of absent mapping succeeded")
	}
}

func TestLookupMergesAdjacentBuckets(t *testing.T) {
	m, _ := NewMap(Config{TargetBucket: 10, HostBucket: 10})
	m.Add(5, 5)  // host bucket 0
	m.Add(5, 15) // host bucket 1  (adjacent -> merged)
	m.Add(5, 95) // host bucket 9  (separate)
	rs := m.Lookup(0, 9)
	if len(rs) != 2 {
		t.Fatalf("ranges=%v", rs)
	}
	if rs[0].Lo != 0 || rs[0].Hi != 20 {
		t.Fatalf("merged range=%v", rs[0])
	}
	if rs[1].Lo != 90 || rs[1].Hi != 100 {
		t.Fatalf("second range=%v", rs[1])
	}
	if out := m.Lookup(9, 0); out != nil {
		t.Fatal("inverted predicate")
	}
	if out := m.Lookup(500, 600); out != nil {
		t.Fatal("unmapped region should return nil")
	}
}

func TestNegativeValues(t *testing.T) {
	m, _ := NewMap(Config{TargetBucket: 10, HostBucket: 10})
	m.Add(-5, -25) // target bucket -1, host bucket -3
	rs := m.Lookup(-10, -1)
	if len(rs) != 1 || rs[0].Lo != -30 || rs[0].Hi != -20 {
		t.Fatalf("ranges=%v", rs)
	}
}

func TestSizeBytesTracksEntries(t *testing.T) {
	m, _ := NewMap(Config{TargetBucket: 1, HostBucket: 1})
	if m.SizeBytes() != 0 {
		t.Fatal("empty map nonzero size")
	}
	for i := 0; i < 100; i++ {
		m.Add(float64(i), float64(i*7))
	}
	small := m.SizeBytes()
	for i := 0; i < 100; i++ {
		m.Add(float64(i), float64(i*7+5000)) // new host buckets
	}
	if m.SizeBytes() <= small {
		t.Fatal("size did not grow with new mappings")
	}
}

type fixture struct {
	table *storage.Table
	host  *btree.Tree
	rows  [][2]float64
	rids  []storage.RID
}

func newFixture(t testing.TB, n int, noise float64, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := &fixture{table: storage.NewTable(2), host: btree.New(btree.DefaultOrder)}
	for i := 0; i < n; i++ {
		m := rng.Float64() * 1000
		h := 2*m + 100
		if rng.Float64() < noise {
			h = rng.Float64() * 3000
		}
		rid, err := f.table.Insert([]float64{m, h})
		if err != nil {
			t.Fatal(err)
		}
		f.rows = append(f.rows, [2]float64{m, h})
		f.rids = append(f.rids, rid)
		f.host.Insert(h, uint64(rid))
	}
	return f
}

func (f *fixture) expected(lo, hi float64) []storage.RID {
	var out []storage.RID
	for i, r := range f.rows {
		if r[0] >= lo && r[0] <= hi {
			out = append(out, f.rids[i])
		}
	}
	return out
}

func sameRIDs(a, b []storage.RID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]storage.RID(nil), a...)
	bs := append([]storage.RID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestIndexExactResults(t *testing.T) {
	f := newFixture(t, 10000, 0.05, 1)
	idx, err := NewIndex(f.table, f.host, Config{
		TargetBucket: 16, HostBucket: 64, TargetCol: 0, HostCol: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*60
		res := idx.Lookup(lo, hi)
		if !sameRIDs(res.RIDs, f.expected(lo, hi)) {
			t.Fatalf("wrong result for [%v,%v]", lo, hi)
		}
		if res.Qualified != len(res.RIDs) || res.Candidates < res.Qualified {
			t.Fatalf("counters inconsistent: %+v", res)
		}
	}
}

func TestIndexMaintenance(t *testing.T) {
	f := newFixture(t, 1000, 0, 3)
	idx, err := NewIndex(f.table, f.host, Config{
		TargetBucket: 16, HostBucket: 64, TargetCol: 0, HostCol: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{321.5, 9999}
	rid, _ := f.table.Insert(row)
	f.rows = append(f.rows, [2]float64{row[0], row[1]})
	f.rids = append(f.rids, rid)
	f.host.Insert(row[1], uint64(rid))
	idx.Insert(row[0], row[1])
	res := idx.Lookup(321, 322)
	if !sameRIDs(res.RIDs, f.expected(321, 322)) {
		t.Fatal("inserted row not found")
	}
	idx.Delete(row[0], row[1])
	f.host.Delete(row[1], uint64(rid))
	f.table.Delete(rid)
	res = idx.Lookup(321, 322)
	for _, r := range res.RIDs {
		if r == rid {
			t.Fatal("deleted row returned")
		}
	}
}

func TestNoiseInflatesCM(t *testing.T) {
	// Appendix E: CM's mapped-bucket count balloons with sparse noise.
	clean := newFixture(t, 20000, 0, 4)
	noisy := newFixture(t, 20000, 0.10, 4)
	cfg := Config{TargetBucket: 16, HostBucket: 64, TargetCol: 0, HostCol: 1}
	ci, err := NewIndex(clean.table, clean.host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := NewIndex(noisy.table, noisy.host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ni.Map().Entries() <= ci.Map().Entries() {
		t.Fatalf("noise should add mappings: clean=%d noisy=%d",
			ci.Map().Entries(), ni.Map().Entries())
	}
	if ni.SizeBytes() <= ci.SizeBytes() {
		t.Fatal("noisy CM should be larger")
	}
}

func TestWiderBucketsSmallerMap(t *testing.T) {
	f := newFixture(t, 20000, 0.02, 5)
	mk := func(tb, hb float64) *Index {
		idx, err := NewIndex(f.table, f.host, Config{
			TargetBucket: tb, HostBucket: hb, TargetCol: 0, HostCol: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	fine := mk(16, 16)
	coarse := mk(1024, 1024)
	if coarse.SizeBytes() >= fine.SizeBytes() {
		t.Fatalf("coarse buckets %d >= fine buckets %d (compute-storage tradeoff)",
			coarse.SizeBytes(), fine.SizeBytes())
	}
}

// Property: CM lookup never misses a matching tuple (no false negatives),
// for random bucket widths, noise and predicates.
func TestQuickRecall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := newFixture(t, 3000, rng.Float64()*0.2, seed)
		cfg := Config{
			TargetBucket: []float64{4, 16, 64, 256}[rng.Intn(4)],
			HostBucket:   []float64{16, 64, 256, 1024}[rng.Intn(4)],
			TargetCol:    0, HostCol: 1,
		}
		idx, err := NewIndex(fx.table, fx.host, cfg)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			lo := rng.Float64() * 1000
			hi := lo + rng.Float64()*100
			if !sameRIDs(idx.Lookup(lo, hi).RIDs, fx.expected(lo, hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCMLookup(b *testing.B) {
	f := newFixture(b, 100000, 0.01, 1)
	idx, err := NewIndex(f.table, f.host, Config{
		TargetBucket: 16, HostBucket: 64, TargetCol: 0, HostCol: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64(i % 990)
		idx.Lookup(lo, lo+10)
	}
}
