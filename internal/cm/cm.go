// Package cm implements Correlation Maps (Kimura et al., VLDB 2009), the
// bucket-based correlated-access baseline the paper compares Hermit against
// in Appendix E (Figs. 27–30).
//
// A Correlation Map partitions the target column M and host column N into
// fixed-width value buckets and stores, for each target bucket, the set of
// host buckets that contain at least one co-occurring tuple. A lookup on M
// expands the predicate to whole target buckets, collects the mapped host
// buckets, converts them to host value ranges, and resolves those ranges
// against the host index — followed, as for Hermit, by base-table
// validation.
//
// Faithful to the original design (and to the paper's critique of it), CM
// has no outlier handling: a noisy tuple simply adds its bucket mapping, so
// sparse noise inflates the number of mapped host buckets and drags down
// lookup throughput, while Hermit isolates the same tuples in its outlier
// buffers.
package cm

import (
	"errors"
	"math"
	"sort"

	"hermit/internal/btree"
	"hermit/internal/storage"
)

// Config sizes the buckets. Bucket sizes are in value units of the
// respective column, matching the CM-X / host-bucket-size sweeps of
// Figs. 27–30.
type Config struct {
	// TargetBucket is the value width of each bucket on the target column.
	TargetBucket float64
	// HostBucket is the value width of each bucket on the host column.
	HostBucket float64
	// TargetCol and HostCol identify the columns in the base table.
	TargetCol, HostCol int
}

// ErrBadBuckets is returned for non-positive bucket widths.
var ErrBadBuckets = errors.New("cm: bucket widths must be positive")

// Map is the core bucket-mapping structure.
type Map struct {
	cfg Config
	// buckets maps target bucket id -> host bucket id -> tuple count.
	// Counts support deletes without rescanning the table.
	buckets map[int64]map[int64]int
	entries int // total (targetBucket, hostBucket) mappings
	tuples  int
}

// NewMap creates an empty Correlation Map.
func NewMap(cfg Config) (*Map, error) {
	if cfg.TargetBucket <= 0 || cfg.HostBucket <= 0 {
		return nil, ErrBadBuckets
	}
	return &Map{cfg: cfg, buckets: make(map[int64]map[int64]int)}, nil
}

func bucketOf(v, width float64) int64 {
	return int64(math.Floor(v / width))
}

// Add records a tuple's (m, n) co-occurrence.
func (c *Map) Add(m, n float64) {
	tb := bucketOf(m, c.cfg.TargetBucket)
	hb := bucketOf(n, c.cfg.HostBucket)
	inner, ok := c.buckets[tb]
	if !ok {
		inner = make(map[int64]int)
		c.buckets[tb] = inner
	}
	if inner[hb] == 0 {
		c.entries++
	}
	inner[hb]++
	c.tuples++
}

// Remove drops one tuple's co-occurrence. It reports whether the mapping
// existed.
func (c *Map) Remove(m, n float64) bool {
	tb := bucketOf(m, c.cfg.TargetBucket)
	hb := bucketOf(n, c.cfg.HostBucket)
	inner, ok := c.buckets[tb]
	if !ok || inner[hb] == 0 {
		return false
	}
	inner[hb]--
	c.tuples--
	if inner[hb] == 0 {
		delete(inner, hb)
		c.entries--
		if len(inner) == 0 {
			delete(c.buckets, tb)
		}
	}
	return true
}

// Entries returns the number of distinct (target bucket, host bucket)
// mappings — the quantity that grows with noise and shrinks with bucket
// width.
func (c *Map) Entries() int { return c.entries }

// Range is a closed host-column interval.
type Range struct{ Lo, Hi float64 }

// Lookup returns the host value ranges that may contain tuples whose target
// value lies in [lo, hi]. Adjacent host buckets are merged.
func (c *Map) Lookup(lo, hi float64) []Range {
	if lo > hi {
		return nil
	}
	tbLo := bucketOf(lo, c.cfg.TargetBucket)
	tbHi := bucketOf(hi, c.cfg.TargetBucket)
	hostSet := make(map[int64]struct{})
	for tb := tbLo; tb <= tbHi; tb++ {
		for hb := range c.buckets[tb] {
			hostSet[hb] = struct{}{}
		}
	}
	if len(hostSet) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(hostSet))
	for hb := range hostSet {
		ids = append(ids, hb)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var out []Range
	w := c.cfg.HostBucket
	start, end := ids[0], ids[0]
	flush := func() {
		out = append(out, Range{Lo: float64(start) * w, Hi: float64(end+1) * w})
	}
	for _, hb := range ids[1:] {
		if hb == end+1 {
			end = hb
			continue
		}
		flush()
		start, end = hb, hb
	}
	flush()
	return out
}

// SizeBytes estimates the heap footprint: inner-map buckets at ~48 bytes
// per entry (key, count, bucket overhead) plus outer-map entries.
func (c *Map) SizeBytes() uint64 {
	var s uint64
	for _, inner := range c.buckets {
		s += 48 // outer entry + map header
		s += uint64(len(inner)) * 48
	}
	return s
}

// Index wraps a Map with the same resolve-and-validate pipeline Hermit
// uses, so the comparison in Figs. 27–30 measures the structures, not the
// plumbing. Physical tuple pointers are assumed (the scheme CM's original
// evaluation used).
type Index struct {
	cfg   Config
	table *storage.Table
	host  *btree.Tree
	m     *Map
}

// NewIndex builds a Correlation Map index by scanning the table.
func NewIndex(table *storage.Table, host *btree.Tree, cfg Config) (*Index, error) {
	m, err := NewMap(cfg)
	if err != nil {
		return nil, err
	}
	idx := &Index{cfg: cfg, table: table, host: host, m: m}
	err = table.ScanPairs(cfg.TargetCol, cfg.HostCol, func(_ storage.RID, mv, nv float64) bool {
		m.Add(mv, nv)
		return true
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// Map returns the underlying bucket structure.
func (x *Index) Map() *Map { return x.m }

// SizeBytes returns the CM structure's footprint.
func (x *Index) SizeBytes() uint64 { return x.m.SizeBytes() }

// Result mirrors hermit.Result for the comparison harness.
type Result struct {
	RIDs       []storage.RID
	Candidates int
	Qualified  int
}

// Lookup answers lo <= M <= hi exactly: CM ranges -> host index -> base
// table validation.
func (x *Index) Lookup(lo, hi float64) Result {
	var res Result
	ranges := x.m.Lookup(lo, hi)
	seen := make(map[storage.RID]struct{})
	for _, r := range ranges {
		x.host.Scan(r.Lo, r.Hi, func(_ float64, id uint64) bool {
			rid := storage.RID(id)
			if _, dup := seen[rid]; dup {
				return true
			}
			seen[rid] = struct{}{}
			res.Candidates++
			m, err := x.table.Value(rid, x.cfg.TargetCol)
			if err == nil && m >= lo && m <= hi {
				res.RIDs = append(res.RIDs, rid)
				res.Qualified++
			}
			return true
		})
	}
	return res
}

// Insert maintains the map for a new tuple.
func (x *Index) Insert(m, n float64) { x.m.Add(m, n) }

// Delete maintains the map for a removed tuple.
func (x *Index) Delete(m, n float64) { x.m.Remove(m, n) }
