package bench

import (
	"fmt"
	"time"

	"hermit/internal/cm"
	"hermit/internal/hermit"
	"hermit/internal/trstree"
	"hermit/internal/workload"
)

// cmTargetBuckets are the CM-X variants of Figs. 27–30 (value-width of the
// target-column buckets).
var cmTargetBuckets = []float64{16, 64, 256, 1024, 4096}

// cmHostBuckets are the per-panel host bucket sizes (2^4 … 2^12).
var cmHostBuckets = []float64{16, 64, 256, 1024, 4096}

// cmNoiseLevels is the x-axis.
var cmNoiseLevels = []float64{0, 0.025, 0.05, 0.075, 0.10}

// queryFn is one competitor's range-lookup closure; the comparison drives
// every structure through the same measurement loop.
type queryFn func(lo, hi float64) error

// buildCMComparison builds all competitors for one (fn, noise, hostBucket)
// cell and returns measurement closures keyed by competitor name plus the
// memory of each structure.
func buildCMComparison(cfg Config, fn workload.CorrelationKind, noise, hostBucket float64) (map[string]queryFn, map[string]uint64, error) {
	n := cfg.rows(paperSyntheticRows)
	run := make(map[string]queryFn)
	mem := make(map[string]uint64)

	hermitTb, err := buildSynthetic(cfg, hermit.PhysicalPointers, n, fn, noise)
	if err != nil {
		return nil, nil, err
	}
	hx, err := hermitTb.CreateHermitIndex(2, 1)
	if err != nil {
		return nil, nil, err
	}
	run["HERMIT"] = func(lo, hi float64) error {
		_, _, err := hermitTb.RangeQuery(2, lo, hi)
		return err
	}
	mem["HERMIT"] = hx.SizeBytes()

	baseTb, err := buildSynthetic(cfg, hermit.PhysicalPointers, n, fn, noise)
	if err != nil {
		return nil, nil, err
	}
	full, err := baseTb.CreateBTreeIndex(2, true)
	if err != nil {
		return nil, nil, err
	}
	run["Baseline"] = func(lo, hi float64) error {
		_, _, err := baseTb.RangeQuery(2, lo, hi)
		return err
	}
	mem["Baseline"] = full.SizeBytes()

	// One table shared by all CM variants (CM reads, never mutates it).
	cmTb, err := buildSynthetic(cfg, hermit.PhysicalPointers, n, fn, noise)
	if err != nil {
		return nil, nil, err
	}
	for _, tbkt := range cmTargetBuckets {
		name := fmt.Sprintf("CM-%.0f", tbkt)
		cx, err := cm.NewIndex(cmTb.Store(), cmTb.Secondary(1), cm.Config{
			TargetBucket: tbkt, HostBucket: hostBucket, TargetCol: 2, HostCol: 1,
		})
		if err != nil {
			return nil, nil, err
		}
		run[name] = func(lo, hi float64) error {
			cx.Lookup(lo, hi)
			return nil
		}
		mem[name] = cx.SizeBytes()
	}
	return run, mem, nil
}

// cmCompetitors is the printing order.
var cmCompetitors = []string{"HERMIT", "Baseline", "CM-16", "CM-64", "CM-256", "CM-1024", "CM-4096"}

// cmThroughputFigure implements Figs. 27 and 29.
func cmThroughputFigure(cfg Config, id, title string, fn workload.CorrelationKind) error {
	cfg = cfg.sanitized()
	header(cfg.Out, id, title)
	for _, hb := range cmHostBuckets {
		fmt.Fprintf(cfg.Out, "-- host bucket size = %.0f --\n", hb)
		fmt.Fprintf(cfg.Out, "%-8s", "noise")
		for _, c := range cmCompetitors {
			fmt.Fprintf(cfg.Out, " %12s", c)
		}
		fmt.Fprintln(cfg.Out)
		for _, noise := range cmNoiseLevels {
			run, _, err := buildCMComparison(cfg, fn, noise, hb)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, "%-8s", fmt.Sprintf("%.1f%%", noise*100))
			for _, c := range cmCompetitors {
				gen := workload.QueryGen(0, workload.SyntheticSpan, 0.0001, cfg.Seed+51)
				start := time.Now()
				ops := 0
				for time.Since(start) < cfg.MeasureFor {
					q := gen()
					if err := run[c](q.Lo, q.Hi); err != nil {
						return err
					}
					ops++
				}
				fmt.Fprintf(cfg.Out, " %12s", fmtKops(float64(ops)/time.Since(start).Seconds()))
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	return nil
}

// cmMemoryFigure implements Figs. 28 and 30.
func cmMemoryFigure(cfg Config, id, title string, fn workload.CorrelationKind) error {
	cfg = cfg.sanitized()
	header(cfg.Out, id, title)
	for _, hb := range cmHostBuckets {
		fmt.Fprintf(cfg.Out, "-- host bucket size = %.0f --\n", hb)
		fmt.Fprintf(cfg.Out, "%-8s", "noise")
		for _, c := range cmCompetitors {
			fmt.Fprintf(cfg.Out, " %12s", c)
		}
		fmt.Fprintln(cfg.Out)
		for _, noise := range cmNoiseLevels {
			_, mem, err := buildCMComparison(cfg, fn, noise, hb)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, "%-8s", fmt.Sprintf("%.1f%%", noise*100))
			for _, c := range cmCompetitors {
				fmt.Fprintf(cfg.Out, " %12s", fmtBytes(mem[c]))
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	return nil
}

// Fig27CMLinearThroughput reproduces Fig. 27.
func Fig27CMLinearThroughput(cfg Config) error {
	return cmThroughputFigure(cfg, "fig27", "CM vs Hermit range throughput vs noise (Linear)", workload.Linear)
}

// Fig28CMLinearMemory reproduces Fig. 28.
func Fig28CMLinearMemory(cfg Config) error {
	return cmMemoryFigure(cfg, "fig28", "CM vs Hermit memory vs noise (Linear)", workload.Linear)
}

// Fig29CMSigmoidThroughput reproduces Fig. 29.
func Fig29CMSigmoidThroughput(cfg Config) error {
	return cmThroughputFigure(cfg, "fig29", "CM vs Hermit range throughput vs noise (Sigmoid)", workload.Sigmoid)
}

// Fig30CMSigmoidMemory reproduces Fig. 30.
func Fig30CMSigmoidMemory(cfg Config) error {
	return cmMemoryFigure(cfg, "fig30", "CM vs Hermit memory vs noise (Sigmoid)", workload.Sigmoid)
}

// Ablations benchmarks the design choices DESIGN.md calls out:
// sampling-based split pre-check (App. D.2), the host-range union
// (Alg. 2 line 15), and the outlier buffer itself.
func Ablations(cfg Config) error {
	cfg = cfg.sanitized()
	header(cfg.Out, "ablation", "Design-choice ablations")
	n := cfg.rows(paperSyntheticRows)
	spec := workload.SyntheticSpec{Rows: n, Fn: workload.Sigmoid, Noise: 0.05, Seed: cfg.Seed}
	pairs := make([]trstree.Pair, 0, n)
	var id uint64
	if err := spec.Generate(func(row []float64) error {
		pairs = append(pairs, trstree.Pair{M: row[2], N: row[1], ID: id})
		id++
		return nil
	}); err != nil {
		return err
	}

	// 1. Sampling pre-check on/off: construction time.
	for _, sample := range []float64{0, 0.05} {
		params := defaultParams()
		params.SampleRate = sample
		cp := append([]trstree.Pair(nil), pairs...)
		start := time.Now()
		if _, err := trstree.Build(cp, 0, workload.SyntheticSpan, params); err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "construction sample_rate=%.2f: %s\n",
			sample, time.Since(start).Round(time.Millisecond))
	}

	// 2. Range union on/off: host ranges returned per lookup.
	for _, union := range []bool{true, false} {
		params := defaultParams()
		params.UnionRanges = union
		cp := append([]trstree.Pair(nil), pairs...)
		tr, err := trstree.Build(cp, 0, workload.SyntheticSpan, params)
		if err != nil {
			return err
		}
		gen := workload.QueryGen(0, workload.SyntheticSpan, 0.01, cfg.Seed+61)
		ranges := 0
		const nq = 200
		for i := 0; i < nq; i++ {
			q := gen()
			res := tr.Lookup(q.Lo, q.Hi)
			ranges += len(res.Ranges)
		}
		fmt.Fprintf(cfg.Out, "lookup union=%v: %.1f host ranges/query\n",
			union, float64(ranges)/nq)
	}

	// 3. Outlier buffer: default vs a buffer-everything configuration
	// (outlier_ratio high enough that nothing splits, so the single leaf
	// buffers all uncovered pairs — the error_bound=0 extreme of §6).
	for _, mode := range []string{"default", "single-leaf"} {
		params := defaultParams()
		if mode == "single-leaf" {
			params.MaxHeight = 1
			params.OutlierRatio = 1
		}
		cp := append([]trstree.Pair(nil), pairs...)
		tr, err := trstree.Build(cp, 0, workload.SyntheticSpan, params)
		if err != nil {
			return err
		}
		st := tr.Stats()
		fmt.Fprintf(cfg.Out, "outliers mode=%s: leaves=%d outliers=%d size=%s\n",
			mode, st.Leaves, st.Outliers, fmtBytes(st.SizeBytes))
	}
	return nil
}
