package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"hermit/internal/engine"
	"hermit/internal/hermit"
	"hermit/internal/scenario"
	"hermit/internal/server"
)

// The scenarios experiment replays every canned scenario spec through
// the trace-driven harness and reports SLO-style tail latency per phase.
// Each spec compiles to a deterministic seeded op trace; the artifact
// records the trace hash alongside an independent recompile's hash, so
// benchcheck can prove the op stream reproduces — the latency numbers
// track the container, the hashes must not.

// scenarioCaveat is recorded verbatim in the JSON artifact.
const scenarioCaveat = "scenario replays share one CI container: absolute " +
	"ops/sec and latency quantiles track the machine; the durable signals " +
	"are the per-phase shape (tail vs median, abort counts under contention) " +
	"and the trace hashes, which must be identical across runs and targets " +
	"for the same spec, seed, and scale"

// scenarioClusterFollowers is the follower count behind the
// replica-fanout scenario's cluster target.
const scenarioClusterFollowers = 2

// scenarioPhase is one phase row of a scenario's result.
type scenarioPhase struct {
	Name       string  `json:"name"`
	OpenLoop   bool    `json:"open_loop"`
	Ops        int     `json:"ops"`
	Rows       int64   `json:"rows"`
	Aborts     int     `json:"aborts"`
	Errors     int     `json:"errors"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
}

// scenarioResult is one canned scenario's replay.
type scenarioResult struct {
	Name     string `json:"name"`
	Target   string `json:"target"`
	SpecHash string `json:"spec_hash"`
	// TraceHash is reported by the replayer from the ops it walked;
	// TraceHashRecheck comes from an independent recompile of the spec.
	// benchcheck requires them equal — the determinism proof.
	TraceHash        string `json:"trace_hash"`
	TraceHashRecheck string `json:"trace_hash_recheck"`
	Ops              int    `json:"ops"`
	// Allocator pressure over the whole replay (runtime.ReadMemStats
	// deltas): heap objects allocated and summed stop-the-world GC pause.
	// Process-wide, so meaningful for in-process targets and indicative
	// (client side only) for wire targets.
	Mallocs       uint64          `json:"mallocs"`
	GCPauseMicros float64         `json:"gc_pause_us"`
	Phases        []scenarioPhase `json:"phases"`
}

// scenarioReport is the schema of BENCH_scenarios.json.
type scenarioReport struct {
	Experiment string           `json:"experiment"`
	Scale      float64          `json:"scale"`
	Seed       int64            `json:"seed"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Caveat     string           `json:"caveat"`
	Scenarios  []scenarioResult `json:"scenarios"`
}

// RunScenarios drives every canned scenario.
func RunScenarios(cfg Config) error {
	cfg = cfg.sanitized()
	header(cfg.Out, "scenarios", "Trace-driven scenarios: per-phase SLO quantiles")
	fmt.Fprintf(cfg.Out, "scale=%g gomaxprocs=%d cpus=%d scenarios=%v\n",
		cfg.Scale, runtime.GOMAXPROCS(0), runtime.NumCPU(), scenario.CannedNames())
	fmt.Fprintf(cfg.Out, "note: %s\n", scenarioCaveat)

	rep := scenarioReport{
		Experiment: "scenarios",
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Caveat:     scenarioCaveat,
	}

	for _, name := range scenario.CannedNames() {
		spec, err := scenario.Canned(name)
		if err != nil {
			return err
		}
		sr, err := runOneScenario(cfg, spec)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		rep.Scenarios = append(rep.Scenarios, sr)
		fmt.Fprintf(cfg.Out, "\n%s (target=%s, spec=%s, trace=%s)\n",
			sr.Name, sr.Target, sr.SpecHash, sr.TraceHash)
		fmt.Fprintf(cfg.Out, "  allocator: %d mallocs, %.1fus GC pause total\n",
			sr.Mallocs, sr.GCPauseMicros)
		fmt.Fprintf(cfg.Out, "  %-12s %-6s %8s %14s %9s %9s %9s %7s\n",
			"phase", "loop", "ops", "throughput", "p50", "p99", "p999", "aborts")
		for _, ph := range sr.Phases {
			loop := "closed"
			if ph.OpenLoop {
				loop = "open"
			}
			fmt.Fprintf(cfg.Out, "  %-12s %-6s %8d %14s %8.1fus %8.1fus %8.1fus %7d\n",
				ph.Name, loop, ph.Ops, fmtKops(ph.OpsPerSec),
				ph.P50Micros, ph.P99Micros, ph.P999Micros, ph.Aborts)
		}
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_scenarios.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n[recorded %s]\n", path)
	}
	return nil
}

// RunScenarioSpec compiles and replays one spec (canned or caller-built,
// e.g. hermit-bench -scenario file.json) and prints its phase table
// through the scenarios formatting. addr optionally overrides the wire
// target's endpoint.
func RunScenarioSpec(cfg Config, spec *scenario.Spec, addr string) error {
	cfg = cfg.sanitized()
	header(cfg.Out, "scenario", spec.Name+": "+spec.Description)
	if addr != "" && spec.Target != scenario.TargetWire {
		return fmt.Errorf("scenario %s: -addr only applies to wire-target specs (target is %q)",
			spec.Name, spec.Target)
	}
	var sr scenarioResult
	var err error
	if addr != "" {
		sr, err = replayScenario(cfg, spec, scenario.TargetWire, scenario.TargetOptions{Addr: addr})
	} else {
		sr, err = runOneScenario(cfg, spec)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%s (target=%s, spec=%s, trace=%s)\n",
		sr.Name, sr.Target, sr.SpecHash, sr.TraceHash)
	fmt.Fprintf(cfg.Out, "  %-12s %-6s %8s %14s %9s %9s %9s %7s\n",
		"phase", "loop", "ops", "throughput", "p50", "p99", "p999", "aborts")
	for _, ph := range sr.Phases {
		loop := "closed"
		if ph.OpenLoop {
			loop = "open"
		}
		fmt.Fprintf(cfg.Out, "  %-12s %-6s %8d %14s %8.1fus %8.1fus %8.1fus %7d\n",
			ph.Name, loop, ph.Ops, fmtKops(ph.OpsPerSec),
			ph.P50Micros, ph.P99Micros, ph.P999Micros, ph.Aborts)
	}
	return nil
}

// runOneScenario provisions the spec's declared target kind — embedded,
// durable under a temp dir, a self-hosted hermitd for wire specs, or a
// leader-plus-followers cluster for cluster specs — and replays.
func runOneScenario(cfg Config, spec *scenario.Spec) (scenarioResult, error) {
	kind := spec.Target
	if kind == "" {
		kind = scenario.TargetEmbed
	}
	switch kind {
	case scenario.TargetEmbed:
		return replayScenario(cfg, spec, kind, scenario.TargetOptions{})

	case scenario.TargetDurable:
		dir, err := os.MkdirTemp(cfg.TmpDir, "hermit-scenario")
		if err != nil {
			return scenarioResult{}, err
		}
		defer os.RemoveAll(dir)
		return replayScenario(cfg, spec, kind, scenario.TargetOptions{Dir: dir})

	case scenario.TargetWire:
		dir, err := os.MkdirTemp(cfg.TmpDir, "hermit-scenario")
		if err != nil {
			return scenarioResult{}, err
		}
		defer os.RemoveAll(dir)
		d, err := engine.OpenDurable(dir, hermit.PhysicalPointers)
		if err != nil {
			return scenarioResult{}, err
		}
		defer d.Close()
		srv := server.New(d, server.Options{MaxInflight: 4096, QueueDepth: 256, Workers: cfg.Concurrency})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return scenarioResult{}, err
		}
		defer srv.Close()
		return replayScenario(cfg, spec, kind, scenario.TargetOptions{Addr: srv.Addr().String()})

	case scenario.TargetCluster:
		dir, err := os.MkdirTemp(cfg.TmpDir, "hermit-scenario")
		if err != nil {
			return scenarioResult{}, err
		}
		defer os.RemoveAll(dir)
		c, err := startReplCluster(cfg, dir, scenarioClusterFollowers)
		if err != nil {
			return scenarioResult{}, err
		}
		defer c.close()
		return replayScenario(cfg, spec, kind, scenario.TargetOptions{
			LeaderAddr:     c.lsrv.Addr().String(),
			FollowerAddrs:  c.followerAddrs(scenarioClusterFollowers),
			ReadYourWrites: true,
		})

	default:
		return scenarioResult{}, fmt.Errorf("unknown target kind %q", kind)
	}
}

// replayScenario compiles, replays, recompiles for the hash recheck, and
// folds latencies into the shared quantile helper.
func replayScenario(cfg Config, spec *scenario.Spec, kind string, opts scenario.TargetOptions) (scenarioResult, error) {
	tr, err := scenario.Compile(spec, cfg.Scale)
	if err != nil {
		return scenarioResult{}, err
	}
	tg, err := scenario.NewTarget(kind, opts)
	if err != nil {
		return scenarioResult{}, err
	}
	defer tg.Close()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := scenario.Replay(tr, tg)
	if err != nil {
		return scenarioResult{}, err
	}
	runtime.ReadMemStats(&m1)
	recheck, err := scenario.Compile(spec, cfg.Scale)
	if err != nil {
		return scenarioResult{}, err
	}
	sr := scenarioResult{
		Name:             spec.Name,
		Target:           kind,
		SpecHash:         res.SpecHash,
		TraceHash:        res.TraceHash,
		TraceHashRecheck: recheck.TraceHash,
		Ops:              tr.Ops(),
		Mallocs:          m1.Mallocs - m0.Mallocs,
		GCPauseMicros:    float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e3,
	}
	for i := range res.Phases {
		ph := &res.Phases[i]
		row := scenarioPhase{
			Name:      ph.Name,
			OpenLoop:  ph.OpenLoop,
			Ops:       ph.Ops,
			Rows:      ph.Rows,
			Aborts:    ph.Aborts,
			Errors:    ph.Errors,
			OpsPerSec: ph.OpsPerSec(),
		}
		row.P50Micros, row.P99Micros, row.P999Micros = quantiles(ph.LatenciesUS)
		sr.Phases = append(sr.Phases, row)
	}
	return sr, nil
}
